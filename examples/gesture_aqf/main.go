// gesture_aqf demonstrates the neuromorphic side of the paper: a gesture
// classifier on synthetic DVS event streams is attacked with the Sparse
// and Frame attacks, then defended with approximate quantization-aware
// filtering (AQF, Algorithm 2).
package main

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/defense"
	"repro/internal/dvs"
	"repro/internal/quant"
	"repro/internal/rng"
	"repro/internal/snn"
	"repro/internal/viz"
)

func main() {
	gcfg := dvs.DefaultGestureConfig()
	gcfg.Duration = 1000
	train := dvs.GenerateGestureSet(66, gcfg, 1)
	test := dvs.GenerateGestureSet(33, gcfg, 2)

	d := core.NewGestureDesigner(core.GestureConfig{
		Arch: func(cfg snn.Config, r *rng.RNG) *snn.Network {
			return snn.DVSNet(cfg, gcfg.H, gcfg.W, dvs.GestureClasses, true, r, rng.New(3))
		},
		Train: train,
		Test:  test,
		TrainOpts: func() snn.TrainOptions {
			return snn.TrainOptions{Epochs: 8, BatchSize: 8, Optimizer: snn.NewAdam(3e-3)}
		},
		Seed: 4,
	})

	// The paper's DVS structural point is Vth=1.0, T=80 (scaled to 12
	// bins here).
	accNet := d.TrainAccurate(1.0, 12)
	ax, _ := d.Approximate(accNet, 0.1, quant.FP32)
	fmt.Printf("clean:  AccSNN %.1f%%  AxSNN(0.1) %.1f%%\n",
		100*d.Evaluate(accNet, test, nil), 100*d.Evaluate(ax, test, nil))

	frame := attack.NewFrame()
	frame.Thickness = 4
	for _, atk := range []attack.StreamAttack{attack.NewSparse(), frame} {
		adv := d.CraftAdversarial(accNet, atk)
		aqf := defense.DefaultAQFParams(0.015) // qt = 15 ms
		fmt.Printf("%-7s attack: AxSNN %.1f%%  ->  with AQF %.1f%%\n",
			atk.Name(),
			100*d.Evaluate(ax, adv, nil),
			100*d.Evaluate(ax, adv, &aqf))
	}

	// Show what the frame attack and the filter do to one recording.
	adv := frame.Perturb(accNet, test.Samples[0].Stream, test.Samples[0].Label)
	filtered := defense.AQF(adv, defense.DefaultAQFParams(0.015))
	fmt.Printf("\nevent footprint: clean (%d ev) | frame-attacked (%d ev) | AQF-filtered (%d ev)\n",
		len(test.Samples[0].Stream.Events), len(adv.Events), len(filtered.Events))
	fmt.Println("--- attacked ---")
	fmt.Print(viz.Events(adv))
	fmt.Println("--- filtered ---")
	fmt.Print(viz.Events(filtered))
	fmt.Println("AQF removes uncorrelated adversarial events and recovers accuracy (Table II).")
}
