// mnist_robustness reproduces the paper's motivational study (Fig. 1) at
// example scale: an accurate SNN and its approximate counterpart are
// attacked with PGD at growing perturbation budgets, showing that the
// AxSNN degrades faster — the observation that motivates the paper's
// defenses.
package main

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/encoding"
	"repro/internal/quant"
	"repro/internal/rng"
	"repro/internal/snn"
)

func main() {
	dcfg := dataset.DefaultSynthConfig()
	dcfg.H, dcfg.W = 14, 14
	d := core.NewDesigner(core.Config{
		Arch: func(cfg snn.Config, r *rng.RNG) *snn.Network {
			return snn.DenseNet(cfg, 14*14, 64, 10, r)
		},
		Train:   dataset.GenerateSynth(600, dcfg, 1),
		Test:    dataset.GenerateSynth(120, dcfg, 2),
		Encoder: encoding.Rate{},
		TrainOpts: func() snn.TrainOptions {
			return snn.TrainOptions{Epochs: 4, BatchSize: 16, Optimizer: snn.NewAdam(2e-3)}
		},
		Seed: 7,
	})

	// Victim pair: the accurate SNN and its level-0.1 approximation.
	acc := d.TrainAccurate(0.25, 8)
	ax, _ := d.Approximate(acc, 0.1, quant.FP32)

	// Adversary: same architecture, independently trained (threat model
	// §III — parameters unknown), PGD with transfer.
	sur := d.TrainSurrogate(0.25, 8)

	eps := []float64{0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0, 1.5}
	mk := func(e float64) *attack.Gradient {
		a := attack.PGD(e)
		a.Encoder = encoding.Rate{}
		a.Alpha = e / (5 * float64(a.Steps)) // transfer-calibrated step
		return a
	}
	accCurve := d.RobustnessCurve(acc, sur, mk, eps)
	axCurve := d.RobustnessCurve(ax, sur, mk, eps)

	fmt.Printf("%6s %10s %10s\n", "eps", "AccSNN", "AxSNN(0.1)")
	for i, e := range eps {
		fmt.Printf("%6.2f %9.1f%% %9.1f%%\n", e, 100*accCurve[i], 100*axCurve[i])
	}
	fmt.Println("\nAxSNN should sit below AccSNN at every budget — the paper's Fig. 1.")
}
