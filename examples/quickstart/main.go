// Quickstart: train a spiking neural network on the synthetic digit
// corpus, approximate it (AxSNN), and compare accuracy and modelled
// energy — the library's core loop in ~60 lines.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/encoding"
	"repro/internal/quant"
	"repro/internal/rng"
	"repro/internal/snn"
	"repro/internal/viz"
)

func main() {
	// 1. Data: a 10-class digit task (synthetic stand-in for MNIST).
	dcfg := dataset.DefaultSynthConfig()
	train := dataset.GenerateSynth(600, dcfg, 1)
	test := dataset.GenerateSynth(150, dcfg, 2)

	// 2. A Designer owns data + architecture + training recipe.
	d := core.NewDesigner(core.Config{
		Arch: func(cfg snn.Config, r *rng.RNG) *snn.Network {
			return snn.DenseNet(cfg, dcfg.H*dcfg.W, 64, 10, r)
		},
		Train:   train,
		Test:    test,
		Encoder: encoding.Rate{}, // rate-coded spikes, as in the paper
		TrainOpts: func() snn.TrainOptions {
			return snn.TrainOptions{Epochs: 4, BatchSize: 16, Optimizer: snn.NewAdam(2e-3)}
		},
		Seed: 42,
	})

	// A glance at the workload.
	fmt.Printf("sample digit (label %d):\n%s\n", train.Samples[0].Label, viz.Image(train.Samples[0].Image))

	// 3. Train the accurate SNN at threshold voltage 0.25, 8 time steps.
	acc := d.TrainAccurate(0.25, 8)
	fmt.Printf("AccSNN accuracy: %.1f%%\n", 100*d.EvaluateSet(acc, test))

	// 4. Derive approximate SNNs at the paper's approximation levels.
	for _, level := range []float64{0.001, 0.01, 0.1} {
		ax, rep := d.Approximate(acc, level, quant.INT8)
		e := d.Energy(ax)
		fmt.Printf("AxSNN(level=%g, INT8): accuracy %.1f%%, %.0f%% synapses pruned, %.2fx energy savings\n",
			level, 100*d.EvaluateSet(ax, test), 100*rep.TotalPrunedFraction(), e.Savings())
	}
}
