// precision_search runs Algorithm 1: the precision-scaling robustness
// search that finds the (Vth, T, precision scale, approximation level)
// combination meeting a quality constraint under attack — the paper's
// Table I flow.
package main

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/defense"
	"repro/internal/encoding"
	"repro/internal/quant"
	"repro/internal/rng"
	"repro/internal/snn"
)

func main() {
	dcfg := dataset.DefaultSynthConfig()
	dcfg.H, dcfg.W = 12, 12
	d := core.NewDesigner(core.Config{
		Arch: func(cfg snn.Config, r *rng.RNG) *snn.Network {
			return snn.DenseNet(cfg, 144, 64, 10, r)
		},
		Train:   dataset.GenerateSynth(500, dcfg, 1),
		Test:    dataset.GenerateSynth(100, dcfg, 2),
		Encoder: encoding.Rate{},
		TrainOpts: func() snn.TrainOptions {
			return snn.TrainOptions{Epochs: 4, BatchSize: 16, Optimizer: snn.NewAdam(2e-3)}
		},
		Seed: 9,
	})

	res := d.SearchRobust(defense.SearchSpace{
		VThs:   []float32{0.25, 0.75, 1.25},
		Steps:  []int{8, 12},
		Scales: quant.Scales,
		Levels: []float64{0.009, 0.01, 0.011},
	}, func(e float64) *attack.Gradient {
		a := attack.PGD(e)
		a.Encoder = encoding.Rate{}
		a.Alpha = e / (5 * float64(a.Steps))
		return a
	}, 1.0, 0.55, 0)

	fmt.Printf("evaluated %d candidates\n", len(res.All))
	accepted := 0
	for _, c := range res.All {
		if c.Accepted {
			accepted++
		}
	}
	fmt.Printf("accepted (robustness >= Q): %d\n", accepted)
	if res.Best != nil {
		b := res.Best
		fmt.Printf("\nbest configuration: Vth=%.2f T=%d scale=%s level=%g\n", b.VTh, b.Steps, b.Scale, b.Level)
		fmt.Printf("clean accuracy %.1f%%, accuracy under PGD(eps=1.0) %.1f%%\n", 100*b.CleanAcc, 100*b.AdvAcc)
	}
}
