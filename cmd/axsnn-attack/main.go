// Command axsnn-attack evaluates a saved model (from axsnn-train) under
// the gradient-based attacks at a range of perturbation budgets,
// optionally after approximation and precision scaling.
//
// Usage:
//
//	axsnn-attack -model model.bin [-arch dense|conv] [-attack pgd|bim|fgsm]
//	             [-eps 0.1,0.5,1.0] [-level 0] [-precision fp32]
//	             [-test 120] [-size 14] [-seed N]
//
// The adversary follows the paper's threat model: a surrogate of the
// same architecture is trained locally and the examples transfer to the
// loaded victim.
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"repro/internal/approx"
	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/encoding"
	"repro/internal/quant"
	"repro/internal/rng"
	"repro/internal/snn"
	"repro/internal/tensor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("axsnn-attack: ")

	model := flag.String("model", "model.bin", "victim model path")
	arch := flag.String("arch", "dense", "architecture the model was trained with")
	atkName := flag.String("attack", "pgd", "attack: pgd, bim or fgsm")
	epsList := flag.String("eps", "0.1,0.5,1.0", "comma-separated perturbation budgets")
	level := flag.Float64("level", 0, "approximation level (0 = accurate)")
	precision := flag.String("precision", "fp32", "precision scale: fp32, fp16, int8")
	testN := flag.Int("test", 120, "test samples")
	trainN := flag.Int("train", 600, "surrogate training samples")
	size := flag.Int("size", 14, "image height/width")
	seed := flag.Uint64("seed", 1, "seed")
	workers := flag.Int("workers", 0, "worker budget for kernels and attack crafting (0 = all cores, 1 = deterministic serial)")
	flag.Parse()
	tensor.SetWorkers(*workers)

	scfg := dataset.DefaultSynthConfig()
	scfg.H, scfg.W = *size, *size
	test := dataset.GenerateSynth(*testN, scfg, *seed+2)
	train := dataset.GenerateSynth(*trainN, scfg, *seed)

	// Rebuild the architecture, then load the weights (the file stores
	// config + parameters; see snn.Save).
	cfg := snn.DefaultConfig(0.25, 8)
	build := func(c snn.Config, r *rng.RNG) *snn.Network {
		if *arch == "conv" {
			return snn.MNISTNet(c, 1, *size, *size, true, r)
		}
		return snn.DenseNet(c, (*size)*(*size), 64, 10, r)
	}
	victim := build(cfg, rng.New(*seed))
	if err := victim.LoadFile(*model); err != nil {
		log.Fatalf("loading %s: %v (train one with axsnn-train)", *model, err)
	}

	scale, err := quant.ParseScale(*precision)
	if err != nil {
		log.Fatal(err)
	}
	if *level > 0 || scale != quant.FP32 {
		calib := make([][]*tensor.Tensor, 0, 8)
		r := rng.New(*seed + 3)
		for i := 0; i < 8 && i < test.Len(); i++ {
			calib = append(calib, encoding.Rate{}.Encode(test.Samples[i].Image, victim.Cfg.Steps, r))
		}
		var rep approx.Report
		victim, rep = approx.Approximate(victim, approx.Params{Level: *level, Scale: scale}, calib)
		log.Printf("approximated: %s", strings.ReplaceAll(rep.String(), "\n", "; "))
	}

	// Surrogate for the transfer attack.
	sur := build(victim.Cfg, rng.New(*seed+10))
	snn.Train(sur, train, snn.TrainOptions{
		Epochs: 4, BatchSize: 16, Optimizer: snn.NewAdam(2e-3),
		Encoder: encoding.Rate{}, Seed: *seed + 11,
	})

	clean := snn.Accuracy(victim, test, encoding.Rate{}, *seed+4)
	fmt.Printf("clean accuracy: %.1f%%\n", 100*clean)

	for _, es := range strings.Split(*epsList, ",") {
		eps, err := strconv.ParseFloat(strings.TrimSpace(es), 64)
		if err != nil {
			log.Fatalf("bad eps %q: %v", es, err)
		}
		var atk *attack.Gradient
		switch *atkName {
		case "pgd":
			atk = attack.PGD(eps)
		case "bim":
			atk = attack.BIM(eps)
		case "fgsm":
			atk = attack.FGSM(eps)
		default:
			log.Fatalf("unknown attack %q", *atkName)
		}
		atk.Encoder = encoding.Rate{}
		adv := atk.PerturbSet(sur, test, rng.New(*seed+5))
		acc := snn.Accuracy(victim, adv, encoding.Rate{}, *seed+4)
		fmt.Printf("%s eps=%.2f: accuracy %.1f%% (robustness loss %.1f%%)\n",
			strings.ToUpper(*atkName), eps, 100*acc, 100*(clean-acc))
	}
}
