// Command axsnn-lint runs the repo's invariant analyzers: hotpathalloc
// (zero-allocation hot paths), poolrelease (deferred pool releases),
// atomicguard (atomic/mutex field discipline) and forbiddenapi (no
// time.Now, global math/rand, fmt or reflect in kernels).
//
// Two modes share one binary:
//
//	axsnn-lint ./...                   standalone over the module in cwd
//	go vet -vettool=$(which axsnn-lint) ./...   as a vet tool
//
// Standalone, packages load in dependency order and facts flow
// in-process. Under go vet, the go command drives one process per
// package through the vet config protocol: a JSON .cfg names the
// sources, the export data of every dependency, and the .vetx fact
// files earlier processes wrote; this process analyzes one package and
// serializes its accumulated facts to VetxOutput. Findings exit 2, the
// vet convention.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/atomicguard"
	"repro/internal/analysis/forbiddenapi"
	"repro/internal/analysis/hotpathalloc"
	"repro/internal/analysis/load"
	"repro/internal/analysis/poolrelease"
)

// modulePath is the module whose invariants the analyzers encode; under
// go vet, packages outside it are not analyzed.
const modulePath = "repro"

var analyzers = []*analysis.Analyzer{
	hotpathalloc.Analyzer,
	poolrelease.Analyzer,
	atomicguard.Analyzer,
	forbiddenapi.Analyzer,
}

func main() {
	args := os.Args[1:]
	if len(args) > 0 {
		switch {
		case args[0] == "-V=full" || args[0] == "--V=full":
			printVersion()
			return
		case args[0] == "-flags" || args[0] == "--flags":
			// The go command asks which flags the tool accepts; none.
			fmt.Println("[]")
			return
		case args[0] == "-help" || args[0] == "--help" || args[0] == "-h":
			usage()
			return
		case strings.HasSuffix(args[len(args)-1], ".cfg"):
			os.Exit(runUnit(args[len(args)-1]))
		}
	}
	os.Exit(runStandalone(args))
}

func usage() {
	fmt.Println("usage: axsnn-lint [packages]")
	fmt.Println("       go vet -vettool=$(command -v axsnn-lint) [packages]")
	fmt.Println()
	fmt.Println("analyzers:")
	for _, a := range analyzers {
		fmt.Printf("  %-14s %s\n", a.Name, a.Doc)
	}
}

// printVersion emits the cache key line the go command requires of a
// vet tool: "<name> version <id>". Hashing the executable makes every
// rebuild a new id, so stale vet caches never hide new checks.
func printVersion() {
	name := filepath.Base(os.Args[0])
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("%x", h.Sum(nil)[:12])
			}
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%s\n", name, id)
}

func runStandalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	fset, pkgs, err := load.Module(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "axsnn-lint:", err)
		return 1
	}
	findings, err := load.Run(fset, pkgs, analyzers, load.NewFactStore())
	if err != nil {
		fmt.Fprintln(os.Stderr, "axsnn-lint:", err)
		return 1
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// vetConfig is the subset of the go command's vet .cfg file the tool
// reads (cmd/go/internal/work writes it; the format is shared with
// x/tools' unitchecker).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "axsnn-lint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "axsnn-lint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// go vet drives the tool over every dependency, standard library
	// included, to build fact files. The analyzers encode this module's
	// invariants and trust the stdlib allowlists instead of stdlib
	// facts, so out-of-module packages get an empty fact file — exactly
	// what the standalone mode, which never loads their sources, sees.
	if cfg.ImportPath != modulePath && !strings.HasPrefix(cfg.ImportPath, modulePath+"/") {
		if cfg.VetxOutput != "" {
			if err := load.NewFactStore().Save(cfg.VetxOutput); err != nil {
				fmt.Fprintln(os.Stderr, "axsnn-lint:", err)
				return 1
			}
		}
		return 0
	}

	// Resolve imports through export data: source import path ->
	// canonical path (ImportMap) -> export file (PackageFile).
	exports := map[string]string{}
	for canonical, file := range cfg.PackageFile {
		exports[canonical] = file
	}
	for src, canonical := range cfg.ImportMap {
		if file, ok := cfg.PackageFile[canonical]; ok {
			exports[src] = file
		}
	}

	fset := token.NewFileSet()
	var files []string
	for _, gf := range cfg.GoFiles {
		if !filepath.IsAbs(gf) {
			gf = filepath.Join(cfg.Dir, gf)
		}
		files = append(files, gf)
	}
	pkg, err := load.Check(fset, load.ExportImporter(fset, exports), cfg.ImportPath, cfg.Dir, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "axsnn-lint:", err)
		return 1
	}

	store := load.NewFactStore()
	for _, vetx := range cfg.PackageVetx {
		if err := store.Merge(vetx); err != nil {
			fmt.Fprintf(os.Stderr, "axsnn-lint: reading facts %s: %v\n", vetx, err)
			return 1
		}
	}
	findings, err := load.RunPackage(fset, pkg, analyzers, store)
	if err != nil {
		fmt.Fprintln(os.Stderr, "axsnn-lint:", err)
		return 1
	}
	if cfg.VetxOutput != "" {
		if err := store.Save(cfg.VetxOutput); err != nil {
			fmt.Fprintln(os.Stderr, "axsnn-lint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
