// Command benchjson converts `go test -bench` output on stdin into the
// JSON benchmark artifact CI archives (BENCH_<pr>.json):
//
//	go test -run '^$' -bench 'Predict|TrainStep' -benchtime=1x . | benchjson > BENCH_pr3.json
//
// With -zeroalloc REGEXP it additionally fails (exit 1) unless every
// matching benchmark reported allocs/op == 0 — the CI gate on the
// arena'd hot paths.
//
// With -compare PREV.json it fails unless every benchmark matching
// -gated (default: everything) holds ns/op within -maxratio (default
// 1.2, i.e. a 20% budget) of the same benchmark in the previous
// artifact — the cross-run regression gate. Benchmarks without a
// previous measurement pass.
package main

import (
	"encoding/json"
	"flag"
	"log"
	"os"
	"regexp"

	"repro/internal/eval"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	zeroAlloc := flag.String("zeroalloc", "", "fail unless benchmarks matching this regexp report 0 allocs/op")
	compare := flag.String("compare", "", "previous BENCH_*.json artifact to gate ns/op regressions against")
	gated := flag.String("gated", "", "regexp selecting the benchmarks -compare gates (default: all)")
	maxRatio := flag.Float64("maxratio", 1.2, "ns/op budget for -compare as a ratio of the previous run")
	flag.Parse()

	results, err := eval.ParseBench(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	if len(results) == 0 {
		log.Fatal("no benchmark lines on stdin")
	}
	if *zeroAlloc != "" {
		re, err := regexp.Compile(*zeroAlloc)
		if err != nil {
			log.Fatal(err)
		}
		if err := eval.CheckZeroAllocs(results, re); err != nil {
			log.Fatal(err)
		}
	}
	if *compare != "" {
		blob, err := os.ReadFile(*compare)
		if err != nil {
			log.Fatal(err)
		}
		var prev []eval.BenchResult
		if err := json.Unmarshal(blob, &prev); err != nil {
			log.Fatalf("parsing %s: %v", *compare, err)
		}
		re := regexp.MustCompile("")
		if *gated != "" {
			if re, err = regexp.Compile(*gated); err != nil {
				log.Fatal(err)
			}
		}
		if err := eval.CompareBench(prev, results, re, *maxRatio); err != nil {
			log.Fatal(err)
		}
	}
	blob, err := eval.BenchJSON(results)
	if err != nil {
		log.Fatal(err)
	}
	blob = append(blob, '\n')
	if _, err := os.Stdout.Write(blob); err != nil {
		log.Fatal(err)
	}
}
