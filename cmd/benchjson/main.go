// Command benchjson converts `go test -bench` output on stdin into the
// JSON benchmark artifact CI archives (BENCH_<pr>.json):
//
//	go test -run '^$' -bench 'Predict|PerturbSet' -benchtime=1x . | benchjson > BENCH_pr2.json
package main

import (
	"log"
	"os"

	"repro/internal/eval"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	results, err := eval.ParseBench(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	if len(results) == 0 {
		log.Fatal("no benchmark lines on stdin")
	}
	blob, err := eval.BenchJSON(results)
	if err != nil {
		log.Fatal(err)
	}
	blob = append(blob, '\n')
	if _, err := os.Stdout.Write(blob); err != nil {
		log.Fatal(err)
	}
}
