// Command benchjson converts `go test -bench` output on stdin into the
// JSON benchmark artifact CI archives (BENCH_<pr>.json):
//
//	go test -run '^$' -bench 'Predict|TrainStep' -benchtime=1x . | benchjson > BENCH_pr3.json
//
// With -zeroalloc REGEXP it additionally fails (exit 1) unless every
// matching benchmark reported allocs/op == 0 — the CI gate on the
// arena'd hot paths.
package main

import (
	"flag"
	"log"
	"os"
	"regexp"

	"repro/internal/eval"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	zeroAlloc := flag.String("zeroalloc", "", "fail unless benchmarks matching this regexp report 0 allocs/op")
	flag.Parse()

	results, err := eval.ParseBench(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	if len(results) == 0 {
		log.Fatal("no benchmark lines on stdin")
	}
	if *zeroAlloc != "" {
		re, err := regexp.Compile(*zeroAlloc)
		if err != nil {
			log.Fatal(err)
		}
		if err := eval.CheckZeroAllocs(results, re); err != nil {
			log.Fatal(err)
		}
	}
	blob, err := eval.BenchJSON(results)
	if err != nil {
		log.Fatal(err)
	}
	blob = append(blob, '\n')
	if _, err := os.Stdout.Write(blob); err != nil {
		log.Fatal(err)
	}
}
