// Command axsnn-serve is the multi-session event-stream server: it
// serves windowed SNN classifications over the serve framing protocol,
// one session per TCP connection, drawing evaluation clones from a
// bounded shared pool and hot-swapping checkpoints without dropping
// traffic (SIGHUP reloads -checkpoint atomically; in-flight window
// batches finish on the weights they hold).
//
// Server mode:
//
//	axsnn-serve [-addr :7360] [-sessions 16] [-workers 0] [-pool 0]
//	            [-checkpoint model.gob] [-window 600] [-steps 8]
//	            [-batch 4] [-chunk 4096] [-reorder 1024] [-qt -1]
//	            [-perwindow] [-train 33] [-epochs 4] [-seed N]
//	            [-metrics :7361] [-idle-timeout 2m] [-write-timeout 30s]
//	            [-queue-timeout 0] [-result-window 256]
//	            [-shared-batch] [-max-batch 16] [-tick-interval 0]
//	            [-fair-share 4] [-admin-swap]
//
// Without -checkpoint a small gesture classifier is trained on
// synthetic 32×32 DVS streams at startup (the same quick model
// axsnn-stream builds); with -checkpoint the weights are loaded into
// that architecture instead, and SIGHUP re-reads the file for a live
// hot-swap. -qt >= 0 enables AQF denoising — cross-window incremental
// by default, the lossy per-window form with -perwindow.
//
// -metrics starts an HTTP observability listener serving the counter
// registry on /metrics — JSON by default, Prometheus text exposition
// with ?format=prometheus or a text/plain Accept header — and the
// process-global expvar namespace on /debug/vars. The hardening knobs
// map straight onto serve.ServerOptions: -idle-timeout and
// -write-timeout bound per-frame I/O, -queue-timeout opts connections
// at a full server into bounded admission queueing, and -result-window
// caps buffered undelivered results per session. -admin-swap enables
// the frameSwap checkpoint RPC on client connections (required on
// replicas fronted by a router; leave it off on servers exposed to
// untrusted clients).
//
// Router mode:
//
//	axsnn-serve -route 127.0.0.1:7401,127.0.0.1:7402[,...]
//	            [-addr :7360] [-spawn] [-health-interval 2s]
//	            [-checkpoint model.gob] [-metrics :7361]
//	            [-idle-timeout 2m] [-write-timeout 30s] [-dial-timeout 10s]
//
// The horizontal scale-out front tier: client connections are accepted
// on -addr and each session is placed onto one of the -route replicas
// by rendezvous hash, the framing relayed verbatim both ways (hello
// handshakes and credit grants included). Replicas are health-checked
// every -health-interval; a dying replica turns its in-flight sessions
// into clean frameErrors and new sessions re-place onto survivors, and
// a recovered replica is resynced to the last fanned-out checkpoint
// before rejoining. SIGHUP fans -checkpoint out to every replica as an
// all-or-nothing prepare/commit swap (rolled back everywhere if any
// replica fails to stage it). -spawn additionally starts one supervised
// replica subprocess per -route address — the same binary in server
// mode with -admin-swap, restarted with backoff if it exits — turning
// one command line into a small local fleet. -metrics serves the
// router's snapshot (sessions per replica, up/down, re-placements,
// proxy p50/p99) with the same JSON/Prometheus negotiation.
//
// Sessions share one continuous-batching scheduler by default: ready
// windows from every connection coalesce into classifier batches of up
// to -max-batch, with -fair-share capping any one session's take per
// batch and -tick-interval optionally trading latency for fill.
// -shared-batch=false reverts the server to per-session batching.
//
// Load-generator mode:
//
//	axsnn-serve -load [-addr host:7360] [-sessions 8] [-recordings 4]
//	            [-segments 6] [-window 600] [-seed N] [-credit-window 64]
//	            [-dial-timeout 10s] [-int8] [-private-batch] [-legacy]
//	            [-metrics host:7361]
//
// Opens -sessions concurrent sessions, streams -recordings synthetic
// multi-gesture flows on each, checks the protocol invariants (window
// order, declared counts) and reports aggregate windows/s. Sessions
// negotiate their config via the hello handshake: -credit-window sets
// the result window (negative disables credit flow), -private-batch
// opts every generator session out of the server's shared scheduler,
// -int8 requests the quantized INT8 precision tier (the server refuses
// the hello if the served model carries no int8 panels), and -legacy
// drives the pre-handshake bit-latching protocol instead — the
// regression path. The generator points at a server or a router
// unchanged; with -metrics the metrics endpoint is fetched and printed
// after the run.
package main

import (
	"bytes"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/defense"
	"repro/internal/dvs"
	"repro/internal/rng"
	"repro/internal/serve"
	"repro/internal/snn"
	"repro/internal/stream"
	"repro/internal/tensor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("axsnn-serve: ")

	addr := flag.String("addr", ":7360", "listen address (server) / server address (-load)")
	sessions := flag.Int("sessions", 16, "max concurrent sessions (server) / concurrent sessions to open (-load)")
	workers := flag.Int("workers", 0, "tensor worker budget (0 = all cores)")
	pool := flag.Int("pool", 0, "shared clone pool size (0 = worker budget)")
	checkpoint := flag.String("checkpoint", "", "checkpoint to serve; SIGHUP reloads it as a hot swap")
	window := flag.Float64("window", 600, "prediction window (ms)")
	steps := flag.Int("steps", 8, "voxel time bins per window")
	batch := flag.Int("batch", 4, "windows per batched inference call")
	chunk := flag.Int("chunk", 4096, "reader chunk size (events)")
	reorder := flag.Int("reorder", 1024, "reorder-buffer capacity (0 = require sorted)")
	qt := flag.Float64("qt", -1, "AQF quantization step in seconds; < 0 disables filtering")
	perWindow := flag.Bool("perwindow", false, "use the lossy per-window AQF instead of the cross-window incremental form")
	trainN := flag.Int("train", 33, "synthetic training streams when no -checkpoint is given")
	epochs := flag.Int("epochs", 4, "training epochs for the synthetic model")
	loadMode := flag.Bool("load", false, "run as load generator against -addr")
	recordings := flag.Int("recordings", 4, "recordings per session (-load)")
	segments := flag.Int("segments", 6, "gesture segments per recording (-load)")
	seed := flag.Uint64("seed", 4, "seed")
	metricsAddr := flag.String("metrics", "", "metrics HTTP listen address (server) / metrics endpoint to fetch after the run (-load)")
	idleTimeout := flag.Duration("idle-timeout", 0, "per-frame read deadline; 0 = 2m default, negative disables")
	writeTimeout := flag.Duration("write-timeout", 0, "per-frame write deadline; 0 = 30s default, negative disables")
	queueTimeout := flag.Duration("queue-timeout", 0, "how long a connection may queue at a full server; 0 = refuse immediately")
	resultWindow := flag.Int("result-window", 0, "undelivered results buffered per session under credit flow (0 = 256)")
	sharedBatch := flag.Bool("shared-batch", true, "coalesce windows from all sessions into shared classifier batches")
	maxBatch := flag.Int("max-batch", 0, "windows per shared classifier batch (0 = 16)")
	tickInterval := flag.Duration("tick-interval", 0, "how long a shared batch accumulates before classifying (0 = greedy)")
	fairShare := flag.Int("fair-share", 0, "max windows one session takes per shared batch (0 = max-batch/4)")
	creditWindow := flag.Int("credit-window", 0, "result credits a -load session keeps granted (0 = 64 default, negative disables credit flow)")
	dialTimeout := flag.Duration("dial-timeout", 0, "-load connection timeout (0 = 10s default)")
	privateBatch := flag.Bool("private-batch", false, "-load sessions opt out of the server's shared scheduler")
	int8Tier := flag.Bool("int8", false, "-load sessions request the quantized INT8 precision tier")
	legacy := flag.Bool("legacy", false, "-load sessions speak the pre-handshake bit-latching protocol")
	adminSwap := flag.Bool("admin-swap", false, "allow the frameSwap checkpoint RPC on client connections (required on routed replicas)")
	route := flag.String("route", "", "comma-separated replica addresses; run as router front tier instead of server")
	spawn := flag.Bool("spawn", false, "router spawns and supervises one replica subprocess per -route address")
	healthInterval := flag.Duration("health-interval", 0, "router replica health-check interval (0 = 2s default)")
	flag.Parse()
	tensor.SetWorkers(*workers)

	gcfg := dvs.DefaultGestureConfig()
	gcfg.Duration = *window

	if *loadMode {
		cw := *creditWindow
		if cw < 0 {
			cw = serve.Creditless
		}
		cfg := serve.SessionConfig{
			PrivateBatch: *privateBatch,
			CreditWindow: cw,
		}
		if *int8Tier {
			cfg.Tier = snn.TierINT8
		}
		copts := serve.ClientOptions{
			Config:       cfg,
			Legacy:       *legacy,
			DialTimeout:  *dialTimeout,
			IdleTimeout:  *idleTimeout,
			WriteTimeout: *writeTimeout,
		}
		runLoad(*addr, *sessions, *recordings, *segments, gcfg, *seed, copts)
		if *metricsAddr != "" {
			fetchMetrics(*metricsAddr)
		}
		return
	}

	if *route != "" {
		runRouter(*route, *addr, *spawn, *healthInterval, *checkpoint, *metricsAddr,
			*idleTimeout, *writeTimeout, *dialTimeout)
		return
	}

	net_ := snn.DVSNet(snn.DefaultConfig(1.0, *steps), gcfg.H, gcfg.W, dvs.GestureClasses, true,
		rng.New(*seed+1), rng.New(*seed+2))
	if *checkpoint != "" {
		if err := net_.LoadFile(*checkpoint); err != nil {
			log.Fatalf("loading %s: %v", *checkpoint, err)
		}
		fmt.Printf("serving checkpoint %s\n", *checkpoint)
	} else {
		trainSynthetic(net_, *trainN, *epochs, *steps, gcfg, *seed)
	}

	opts := stream.Options{
		WindowMS: *window, Steps: *steps, Batch: *batch,
		ChunkEvents: *chunk, ReorderWindow: *reorder,
		SensorW: gcfg.W, SensorH: gcfg.H,
	}
	if *qt >= 0 {
		p := defense.DefaultAQFParams(*qt)
		if *perWindow {
			opts.Filter = defense.AQFFilter{Params: p}
		} else {
			opts.AQF = &p
		}
	}
	srv, err := serve.NewServer(net_, serve.ServerOptions{
		Pipeline: opts, MaxSessions: *sessions, PoolSize: *pool,
		IdleTimeout: *idleTimeout, WriteTimeout: *writeTimeout,
		QueueTimeout: *queueTimeout, ResultWindow: *resultWindow,
		SharedBatch: serve.Bool(*sharedBatch), MaxBatch: *maxBatch,
		TickInterval: *tickInterval, FairShare: *fairShare,
		AdminSwap: *adminSwap,
	})
	if err != nil {
		log.Fatal(err)
	}

	if *metricsAddr != "" {
		srv.PublishExpvar("axsnn_serve")
		mux := http.NewServeMux()
		mux.Handle("/metrics", srv.MetricsHandler())
		mux.Handle("/debug/vars", expvar.Handler())
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatalf("metrics listener: %v", err)
		}
		fmt.Printf("metrics on http://%s/metrics\n", mln.Addr())
		go func() {
			if err := http.Serve(mln, mux); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
	}

	if *checkpoint != "" {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				if err := srv.LoadCheckpointFile(*checkpoint); err != nil {
					log.Printf("hot swap failed (still serving previous weights): %v", err)
					continue
				}
				log.Printf("hot-swapped %s (swap #%d)", *checkpoint, srv.Swaps())
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("listening on %s (max %d sessions, pool %d clones, %gms windows)\n",
		ln.Addr(), *sessions, effectivePool(*pool), *window)
	if err := srv.Serve(ln); err != nil {
		log.Fatal(err)
	}
}

// runRouter is router mode: the horizontal scale-out front tier placing
// sessions across the -route replica set.
func runRouter(route, addr string, spawn bool, healthInterval time.Duration,
	checkpoint, metricsAddr string, idleTimeout, writeTimeout, dialTimeout time.Duration) {
	replicas := strings.Split(route, ",")
	for i := range replicas {
		replicas[i] = strings.TrimSpace(replicas[i])
	}
	if spawn {
		for _, raddr := range replicas {
			go superviseReplica(raddr)
		}
	}
	rt, err := serve.NewRouter(serve.RouterOptions{
		Replicas:       replicas,
		HealthInterval: healthInterval,
		DialTimeout:    dialTimeout,
		IdleTimeout:    idleTimeout,
		WriteTimeout:   writeTimeout,
	})
	if err != nil {
		log.Fatal(err)
	}

	if metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", rt.MetricsHandler())
		mux.Handle("/debug/vars", expvar.Handler())
		mln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			log.Fatalf("metrics listener: %v", err)
		}
		fmt.Printf("router metrics on http://%s/metrics\n", mln.Addr())
		go func() {
			if err := http.Serve(mln, mux); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
	}

	if checkpoint != "" {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				statuses, err := rt.SwapAll(checkpoint)
				for _, st := range statuses {
					switch {
					case st.OK:
						log.Printf("swap %s: ok (generation %d, fingerprint %016x)", st.Addr, st.Generation, st.Fingerprint)
					case st.RolledBack:
						log.Printf("swap %s: staged, rolled back", st.Addr)
					default:
						log.Printf("swap %s: %s", st.Addr, st.Err)
					}
				}
				if err != nil {
					log.Printf("fleet swap failed (replicas keep previous weights): %v", err)
					continue
				}
				log.Printf("fleet hot-swapped %s across %d replicas", checkpoint, len(statuses))
			}
		}()
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("routing %s across %d replicas: %s\n", ln.Addr(), len(replicas), strings.Join(replicas, ", "))
	if err := rt.Serve(ln); err != nil {
		log.Fatal(err)
	}
}

// superviseReplica keeps one replica subprocess alive: the same binary
// in server mode listening on raddr with the swap RPC enabled,
// inheriting every explicitly-set serving flag from the router's command
// line, restarted with backoff when it exits.
func superviseReplica(raddr string) {
	args := []string{"-addr", raddr, "-admin-swap"}
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "addr", "admin-swap", "route", "spawn", "metrics", "load":
			return
		}
		args = append(args, "-"+f.Name+"="+f.Value.String())
	})
	backoff := time.Second
	for {
		cmd := exec.Command(os.Args[0], args...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		start := time.Now()
		err := cmd.Run()
		log.Printf("replica %s exited after %v: %v", raddr, time.Since(start).Round(time.Millisecond), err)
		if time.Since(start) > 30*time.Second {
			backoff = time.Second
		} else if backoff *= 2; backoff > 30*time.Second {
			backoff = 30 * time.Second
		}
		time.Sleep(backoff)
	}
}

// effectivePool mirrors the server's default so the banner is accurate.
func effectivePool(n int) int {
	if n <= 0 {
		return tensor.Workers()
	}
	return n
}

// trainSynthetic fits the quick demo classifier axsnn-stream also uses.
func trainSynthetic(net_ *snn.Network, trainN, epochs, steps int, gcfg dvs.GestureConfig, seed uint64) {
	train := dvs.GenerateGestureSet(trainN, gcfg, seed)
	frames := make([][]*tensor.Tensor, train.Len())
	labels := make([]int, train.Len())
	for i, sm := range train.Samples {
		frames[i] = sm.Stream.Voxelize(steps)
		labels[i] = sm.Label
	}
	fmt.Printf("training %d-stream gesture classifier (%d epochs, %d steps)...\n", trainN, epochs, steps)
	snn.TrainFrames(net_, frames, labels, snn.TrainOptions{
		Epochs: epochs, BatchSize: 8, Optimizer: snn.NewAdam(3e-3), Seed: seed + 3,
	})
}

// recordingBytes builds one synthetic multi-gesture flow as AEDAT.
func recordingBytes(segments int, gcfg dvs.GestureConfig, seed uint64) []byte {
	segs := make([]*dvs.Stream, segments)
	for k := range segs {
		class := int(rng.New(seed + uint64(k)).Intn(dvs.GestureClasses))
		segs[k] = dvs.GenerateGesture(class, gcfg, rng.New(seed+100+uint64(k)))
	}
	flow, err := dvs.ConcatStreams(segs...)
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dvs.WriteAEDAT(&buf, flow); err != nil {
		log.Fatal(err)
	}
	return buf.Bytes()
}

// runLoad is the load-generator client: concurrent sessions, each
// streaming several recordings, verifying protocol invariants and
// reporting aggregate throughput.
func runLoad(addr string, sessions, recordings, segments int, gcfg dvs.GestureConfig, seed uint64, copts serve.ClientOptions) {
	var totalWindows, totalEvents atomic.Int64
	var failures atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			cl, err := serve.Dial(addr, copts)
			if err != nil {
				log.Printf("session %d: dial: %v", s, err)
				failures.Add(1)
				return
			}
			defer cl.Close()
			for r := 0; r < recordings; r++ {
				data := recordingBytes(segments, gcfg, seed+uint64(1000*s+r))
				last := -1
				got := 0
				n, err := cl.Stream(bytes.NewReader(data), func(res stream.Result) error {
					if res.Window != last+1 {
						return fmt.Errorf("window %d after %d: out of order", res.Window, last)
					}
					last = res.Window
					got++
					totalEvents.Add(int64(res.Events))
					return nil
				})
				if err != nil {
					log.Printf("session %d recording %d: %v", s, r, err)
					failures.Add(1)
					return
				}
				if n != got {
					log.Printf("session %d recording %d: server declared %d windows, streamed %d", s, r, n, got)
					failures.Add(1)
					return
				}
				totalWindows.Add(int64(n))
			}
		}(s)
	}
	wg.Wait()
	elapsed := time.Since(start)
	fmt.Printf("%d sessions × %d recordings: %d windows, %d events in %v (%.0f windows/s)\n",
		sessions, recordings, totalWindows.Load(), totalEvents.Load(), elapsed.Round(time.Millisecond),
		float64(totalWindows.Load())/elapsed.Seconds())
	if failures.Load() > 0 {
		log.Fatalf("%d session failures", failures.Load())
	}
}

// fetchMetrics dumps the server's metrics endpoint after a load run.
func fetchMetrics(addr string) {
	url := "http://" + addr + "/metrics"
	resp, err := http.Get(url)
	if err != nil {
		log.Printf("fetching %s: %v", url, err)
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Printf("reading %s: %v", url, err)
		return
	}
	fmt.Printf("server metrics (%s):\n%s\n", url, bytes.TrimSpace(body))
}
