// Command axsnn-stream serves event recordings through the streaming
// pipeline: bounded-memory AEDAT decode, fixed-duration windowing,
// optional per-window AQF denoising, and batched zero-alloc inference
// over the shared worker pool — one class prediction per window,
// however long the recording runs.
//
// Usage:
//
//	axsnn-stream [-window 100] [-steps 8] [-workers 0] [-chunk 4096]
//	             [-batch 4] [-reorder 1024] [-qt -1] [-perwindow]
//	             [-train 33] [-epochs 4] [-segments 12] [-seed N]
//	             [file.aedat ...]
//
// A small gesture classifier is trained on synthetic 32×32 DVS streams
// first; the given .aedat files (which must be 32×32) are then
// streamed through it. With no files, a long synthetic flow of
// -segments back-to-back gestures is generated and streamed, printing
// the per-window timeline — a recording several times larger than the
// chunk buffer served in O(window) memory.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"repro/internal/defense"
	"repro/internal/dvs"
	"repro/internal/rng"
	"repro/internal/snn"
	"repro/internal/stream"
	"repro/internal/tensor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("axsnn-stream: ")

	window := flag.Float64("window", 600, "prediction window (ms)")
	steps := flag.Int("steps", 8, "voxel time bins per window")
	workers := flag.Int("workers", 0, "concurrent window predictors (0 = all cores, 1 = deterministic serial)")
	chunk := flag.Int("chunk", 4096, "reader chunk size (events)")
	batch := flag.Int("batch", 4, "windows per batched inference call")
	reorder := flag.Int("reorder", 1024, "reorder-buffer capacity for mildly unsorted recordings (0 = require sorted)")
	qt := flag.Float64("qt", -1, "AQF quantization step in seconds; < 0 disables filtering")
	perWindow := flag.Bool("perwindow", false, "use the lossy per-window AQF instead of the cross-window incremental form")
	trainN := flag.Int("train", 33, "synthetic training streams for the classifier")
	epochs := flag.Int("epochs", 4, "training epochs")
	segments := flag.Int("segments", 12, "gesture segments in the synthetic demo flow (no input files)")
	seed := flag.Uint64("seed", 4, "seed")
	flag.Parse()
	tensor.SetWorkers(*workers)

	// Train a quick classifier on synthetic gestures recorded at the
	// window duration, so a training sample and a serving window share
	// the same temporal binning; its time steps are the per-window
	// voxel bins.
	gcfg := dvs.DefaultGestureConfig()
	gcfg.Duration = *window
	train := dvs.GenerateGestureSet(*trainN, gcfg, *seed)
	net := snn.DVSNet(snn.DefaultConfig(1.0, *steps), gcfg.H, gcfg.W, dvs.GestureClasses, true,
		rng.New(*seed+1), rng.New(*seed+2))
	frames := make([][]*tensor.Tensor, train.Len())
	labels := make([]int, train.Len())
	for i, sm := range train.Samples {
		frames[i] = sm.Stream.Voxelize(*steps)
		labels[i] = sm.Label
	}
	fmt.Printf("training %d-stream gesture classifier (%d epochs, %d steps)...\n", *trainN, *epochs, *steps)
	snn.TrainFrames(net, frames, labels, snn.TrainOptions{
		Epochs: *epochs, BatchSize: 8, Optimizer: snn.NewAdam(3e-3), Seed: *seed + 3,
	})

	opts := stream.Options{
		WindowMS: *window, Steps: *steps, Workers: *workers,
		Batch: *batch, ChunkEvents: *chunk, ReorderWindow: *reorder,
		SensorW: gcfg.W, SensorH: gcfg.H,
	}
	if *qt >= 0 {
		p := defense.DefaultAQFParams(*qt)
		if *perWindow {
			opts.Filter = defense.AQFFilter{Params: p}
		} else {
			// Default: the cross-window incremental AQF — whole-stream
			// filter semantics at streaming memory cost.
			opts.AQF = &p
		}
	}
	p, err := stream.NewPipeline(net, opts)
	if err != nil {
		log.Fatal(err)
	}

	if flag.NArg() == 0 {
		data, truth := demoFlow(*segments, gcfg, *seed+7)
		fmt.Printf("\nstreaming synthetic flow: %d segments, %.1fs, %d bytes (chunk buffer %d bytes)\n",
			*segments, float64(*segments)*gcfg.Duration/1000, len(data), *chunk*16)
		serve(p, "synthetic", bytes.NewReader(data), *window, truth, gcfg.Duration)
		return
	}
	for _, path := range flag.Args() {
		// Run itself rejects recordings whose sensor does not match the
		// pipeline's declared dimensions.
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		serve(p, path, f, *window, nil, 0)
		f.Close()
	}
}

// demoFlow concatenates back-to-back synthetic gestures into one long
// recording, returning its AEDAT bytes and the true class per segment.
func demoFlow(segments int, gcfg dvs.GestureConfig, seed uint64) ([]byte, []int) {
	truth := make([]int, segments)
	segs := make([]*dvs.Stream, segments)
	for k := range segs {
		truth[k] = int(rng.New(seed + uint64(k)).Intn(dvs.GestureClasses))
		segs[k] = dvs.GenerateGesture(truth[k], gcfg, rng.New(seed+100+uint64(k)))
	}
	flow, err := dvs.ConcatStreams(segs...)
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dvs.WriteAEDAT(&buf, flow); err != nil {
		log.Fatal(err)
	}
	return buf.Bytes(), truth
}

// serve streams one recording and prints the windowed timeline.
func serve(p *stream.Pipeline, name string, r io.Reader, windowMS float64, truth []int, segMS float64) {
	events, windows, hits, judged := 0, 0, 0, 0
	startT := time.Now()
	err := p.Run(r, func(res stream.Result) error {
		events += res.Events
		windows++
		label := ""
		if truth != nil {
			seg := int(res.StartMS / segMS)
			if seg < len(truth) {
				judged++
				if res.Class == truth[seg] {
					hits++
					label = " ✓"
				} else {
					label = fmt.Sprintf(" ✗ (true %s)", dvs.GestureNames[truth[seg]])
				}
			}
		}
		fmt.Printf("  [%7.0f ms] window %3d: %-22s %5d events%s\n",
			res.StartMS, res.Window, dvs.GestureNames[res.Class%dvs.GestureClasses], res.Events, label)
		return nil
	})
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	el := time.Since(startT)
	fmt.Printf("%s: %d windows, %d events in %v (%.0f events/s, %.1f windows/s)\n",
		name, windows, events, el.Round(time.Millisecond),
		float64(events)/el.Seconds(), float64(windows)/el.Seconds())
	if judged > 0 {
		fmt.Printf("windowed accuracy against segment truth: %.1f%% (%d/%d)\n",
			100*float64(hits)/float64(judged), hits, judged)
	}
}
