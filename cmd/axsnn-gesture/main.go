// Command axsnn-gesture runs the neuromorphic pipeline end to end:
// train a gesture classifier on synthetic DVS event streams, attack it
// with the Sparse and Frame attacks, and defend with AQF (Algorithm 2).
//
// Usage:
//
//	axsnn-gesture [-vth 1.0] [-steps 12] [-epochs 8] [-train 66] [-test 33]
//	              [-level 0.1] [-qt 0.015] [-dump dir] [-seed N]
//
// With -dump, the clean, attacked and filtered event streams of the
// first test sample are written as .aedat files for inspection.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/defense"
	"repro/internal/dvs"
	"repro/internal/quant"
	"repro/internal/rng"
	"repro/internal/snn"
	"repro/internal/tensor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("axsnn-gesture: ")

	vth := flag.Float64("vth", 1.0, "LIF threshold voltage")
	steps := flag.Int("steps", 12, "voxelization time bins")
	epochs := flag.Int("epochs", 8, "training epochs")
	trainN := flag.Int("train", 66, "training streams")
	testN := flag.Int("test", 33, "test streams")
	level := flag.Float64("level", 0.1, "approximation level for the AxSNN")
	qt := flag.Float64("qt", 0.015, "AQF quantization step (seconds)")
	dump := flag.String("dump", "", "directory to dump example .aedat streams")
	seed := flag.Uint64("seed", 4, "seed")
	workers := flag.Int("workers", 0, "worker budget for kernels, attack crafting and AQF filtering (0 = all cores, 1 = deterministic serial)")
	flag.Parse()
	tensor.SetWorkers(*workers)

	gcfg := dvs.DefaultGestureConfig()
	gcfg.Duration = 1000
	train := dvs.GenerateGestureSet(*trainN, gcfg, *seed)
	test := dvs.GenerateGestureSet(*testN, gcfg, *seed+1)

	d := core.NewGestureDesigner(core.GestureConfig{
		Arch: func(cfg snn.Config, r *rng.RNG) *snn.Network {
			return snn.DVSNet(cfg, gcfg.H, gcfg.W, dvs.GestureClasses, true, r, rng.New(*seed+2))
		},
		Train: train,
		Test:  test,
		TrainOpts: func() snn.TrainOptions {
			return snn.TrainOptions{Epochs: *epochs, BatchSize: 8, Optimizer: snn.NewAdam(3e-3)}
		},
		Seed: *seed + 3,
	})

	acc := d.TrainAccurate(float32(*vth), *steps)
	ax, rep := d.Approximate(acc, *level, quant.FP32)
	fmt.Printf("clean accuracy: AccSNN %.1f%%, AxSNN(level=%g) %.1f%% (%.0f%% synapses pruned)\n",
		100*d.Evaluate(acc, test, nil), *level, 100*d.Evaluate(ax, test, nil),
		100*rep.TotalPrunedFraction())

	frame := attack.NewFrame()
	frame.Thickness = 4
	aqf := defense.DefaultAQFParams(*qt)
	for _, atk := range []attack.StreamAttack{attack.NewSparse(), frame} {
		adv := d.CraftAdversarial(acc, atk)
		fmt.Printf("%-7s attack: AccSNN %.1f%%  AxSNN %.1f%%  AxSNN+AQF %.1f%%\n",
			atk.Name(),
			100*d.Evaluate(acc, adv, nil),
			100*d.Evaluate(ax, adv, nil),
			100*d.Evaluate(ax, adv, &aqf))

		if *dump != "" {
			if err := os.MkdirAll(*dump, 0o755); err != nil {
				log.Fatal(err)
			}
			s := adv.Samples[0].Stream
			f := defense.AQF(s, aqf)
			for name, st := range map[string]*dvs.Stream{
				"clean":    test.Samples[0].Stream,
				"attacked": s,
				"filtered": f,
			} {
				p := filepath.Join(*dump, fmt.Sprintf("%s_%s.aedat", atk.Name(), name))
				if err := st.SaveAEDAT(p); err != nil {
					log.Fatal(err)
				}
				fmt.Printf("  wrote %s (%d events)\n", p, len(st.Events))
			}
		}
	}
}
