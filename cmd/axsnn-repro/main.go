// Command axsnn-repro regenerates the paper's tables and figures.
//
// Usage:
//
//	axsnn-repro [-scale tiny|small|paper] [-seed N] [-exp id[,id...]]
//	            [-csv dir] [-mnist dir] [-workers N]
//
// Without -exp it runs every experiment (fig1..fig7b, table1, table2,
// energy) and prints the rendered artifacts; with -csv it also writes
// machine-readable series per experiment.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("axsnn-repro: ")

	scaleFlag := flag.String("scale", "small", "experiment scale: tiny, small or paper")
	seed := flag.Uint64("seed", 7, "experiment seed")
	expFlag := flag.String("exp", "", "comma-separated experiment ids (default: all); one of "+strings.Join(exp.IDs(), ","))
	csvDir := flag.String("csv", "", "directory to write CSV series into")
	jsonDir := flag.String("json", "", "directory to write JSON results into")
	mnistDir := flag.String("mnist", "", "directory with real MNIST IDX files (optional)")
	workers := flag.Int("workers", 0, "grid parallelism (0 = GOMAXPROCS)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range exp.IDs() {
			fmt.Println(id)
		}
		return
	}

	scale, err := exp.ParseScale(*scaleFlag)
	if err != nil {
		log.Fatal(err)
	}
	o := exp.Options{Scale: scale, Seed: *seed, MNISTDir: *mnistDir, Workers: *workers}

	ids := exp.IDs()
	if *expFlag != "" {
		ids = strings.Split(*expFlag, ",")
	}

	for _, id := range ids {
		t0 := time.Now()
		r, err := exp.Run(strings.TrimSpace(id), o)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("════ %s — %s (scale=%s, %.1fs)\n\n%s\n", r.ID, r.Title, scale, time.Since(t0).Seconds(), r.Text)
		if r.Notes != "" {
			fmt.Printf("paper reference: %s\n\n", r.Notes)
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				log.Fatal(err)
			}
			for name, data := range r.CSV {
				p := filepath.Join(*csvDir, fmt.Sprintf("%s_%s.csv", r.ID, name))
				if err := os.WriteFile(p, []byte(data), 0o644); err != nil {
					log.Fatal(err)
				}
				fmt.Printf("wrote %s\n", p)
			}
		}
		if *jsonDir != "" {
			if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
				log.Fatal(err)
			}
			data, err := r.JSON()
			if err != nil {
				log.Fatal(err)
			}
			p := filepath.Join(*jsonDir, r.ID+".json")
			if err := os.WriteFile(p, data, 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n", p)
		}
	}
}
