// Command axsnn-train trains an accurate SNN on the synthetic digit
// corpus (or real MNIST IDX files, if provided) and saves the model.
//
// Usage:
//
//	axsnn-train [-vth 0.25] [-steps 8] [-epochs 4] [-train 600] [-test 120]
//	            [-arch dense|conv] [-mnist dir] [-o model.bin] [-seed N]
//	            [-workers N]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/dataset"
	"repro/internal/encoding"
	"repro/internal/rng"
	"repro/internal/snn"
	"repro/internal/tensor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("axsnn-train: ")

	vth := flag.Float64("vth", 0.25, "LIF threshold voltage")
	steps := flag.Int("steps", 8, "time steps per sample")
	epochs := flag.Int("epochs", 4, "training epochs")
	trainN := flag.Int("train", 600, "training samples")
	testN := flag.Int("test", 120, "test samples")
	arch := flag.String("arch", "dense", "architecture: dense or conv")
	size := flag.Int("size", 14, "image height/width")
	mnistDir := flag.String("mnist", "", "directory with real MNIST IDX files (optional)")
	out := flag.String("o", "model.bin", "output model path")
	seed := flag.Uint64("seed", 1, "seed")
	workers := flag.Int("workers", 0, "worker budget for the training and evaluation kernels (0 = all cores, 1 = deterministic serial)")
	flag.Parse()

	tensor.SetWorkers(*workers)

	scfg := dataset.DefaultSynthConfig()
	scfg.H, scfg.W = *size, *size
	train, test, real := dataset.MNISTOrSynth(*mnistDir, *trainN, *testN, scfg, *seed)
	if real {
		log.Printf("loaded real MNIST from %s (%d train / %d test)", *mnistDir, train.Len(), test.Len())
	} else {
		log.Printf("using synthetic digit corpus (%d train / %d test)", train.Len(), test.Len())
	}

	cfg := snn.DefaultConfig(float32(*vth), *steps)
	r := rng.New(*seed)
	var net *snn.Network
	switch *arch {
	case "conv":
		net = snn.MNISTNet(cfg, 1, train.H, train.W, true, r)
	case "dense":
		net = snn.DenseNet(cfg, train.H*train.W, 64, train.Classes, r)
	default:
		log.Fatalf("unknown architecture %q", *arch)
	}

	snn.Train(net, train, snn.TrainOptions{
		Epochs:    *epochs,
		BatchSize: 16,
		Optimizer: snn.NewAdam(2e-3),
		Encoder:   encoding.Rate{},
		Seed:      *seed + 1,
		OnEpoch: func(e int, loss float64) {
			log.Printf("epoch %d: mean loss %.4f", e, loss)
		},
	})
	acc := snn.Accuracy(net, test, encoding.Rate{}, *seed+2)
	fmt.Printf("test accuracy: %.1f%%\n", 100*acc)

	if err := net.SaveFile(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved model to %s\n", *out)
}
