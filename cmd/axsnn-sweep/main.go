// Command axsnn-sweep runs Algorithm 1 (precision-scaling robustness
// search) over a configurable structural grid and prints every candidate
// plus the accepted configuration.
//
// Usage:
//
//	axsnn-sweep [-vth 0.25,0.75] [-steps 8,12] [-levels 0.009,0.01,0.011]
//	            [-attack pgd] [-eps 1.0] [-q 0.5] [-scale small] [-seed N]
//	            [-workers N]
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/defense"
	"repro/internal/encoding"
	"repro/internal/quant"
	"repro/internal/rng"
	"repro/internal/snn"
	"repro/internal/tensor"
)

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("axsnn-sweep: ")

	vthFlag := flag.String("vth", "0.25,0.75,1.25", "threshold voltages")
	stepsFlag := flag.String("steps", "8,12", "time steps")
	levelsFlag := flag.String("levels", "0.009,0.01,0.011,0.0125", "approximation levels")
	atkName := flag.String("attack", "pgd", "attack: pgd or bim")
	eps := flag.Float64("eps", 1.0, "perturbation budget")
	q := flag.Float64("q", 0.5, "quality constraint Q (accuracy in [0,1])")
	trainN := flag.Int("train", 600, "training samples")
	testN := flag.Int("test", 120, "test samples")
	size := flag.Int("size", 14, "image height/width")
	seed := flag.Uint64("seed", 7, "seed")
	workers := flag.Int("workers", 0, "worker budget for kernels and parallel grid cells (0 = all cores, 1 = deterministic serial)")
	flag.Parse()

	// Like axsnn-attack/-gesture, the budget governs both the shared
	// kernel pool and the coarse-grained fan-out (here, grid cells).
	tensor.SetWorkers(*workers)

	vths64, err := parseFloats(*vthFlag)
	if err != nil {
		log.Fatal(err)
	}
	vths := make([]float32, len(vths64))
	for i, v := range vths64 {
		vths[i] = float32(v)
	}
	steps64, err := parseFloats(*stepsFlag)
	if err != nil {
		log.Fatal(err)
	}
	steps := make([]int, len(steps64))
	for i, v := range steps64 {
		steps[i] = int(v)
	}
	levels, err := parseFloats(*levelsFlag)
	if err != nil {
		log.Fatal(err)
	}

	mk := attack.PGD
	if *atkName == "bim" {
		mk = attack.BIM
	}

	scfg := dataset.DefaultSynthConfig()
	scfg.H, scfg.W = *size, *size
	res := defense.PrecisionScalingSearch(defense.SearchConfig{
		Space: defense.SearchSpace{
			VThs: vths, Steps: steps,
			Scales: quant.Scales, Levels: levels,
		},
		AttackFor: func(e float64) *attack.Gradient {
			a := mk(e)
			a.Encoder = encoding.Rate{}
			a.Alpha = e / (5 * float64(a.Steps))
			return a
		},
		Eps:   *eps,
		Q:     *q,
		Train: dataset.GenerateSynth(*trainN, scfg, *seed),
		Test:  dataset.GenerateSynth(*testN, scfg, *seed+1),
		BuildNet: func(c snn.Config, r *rng.RNG) *snn.Network {
			return snn.DenseNet(c, (*size)*(*size), 64, 10, r)
		},
		TrainOpts: func() snn.TrainOptions {
			return snn.TrainOptions{Epochs: 4, BatchSize: 16, Optimizer: snn.NewAdam(2e-3)}
		},
		Encoder: encoding.Rate{},
		CalibN:  12,
		Seed:    *seed,
		Workers: *workers,
	})

	fmt.Printf("%-28s %-10s %-8s %s\n", "candidate", "clean", "adv", "accepted")
	for _, c := range res.All {
		fmt.Printf("%-28s %8.1f%% %6.1f%% %v\n", c.String(), 100*c.CleanAcc, 100*c.AdvAcc, c.Accepted)
	}
	if res.Best != nil {
		fmt.Printf("\nbest: %s (robustness %.1f%%)\n", res.Best.String(), 100*res.Best.Robustness)
	} else {
		fmt.Println("\nno candidate passed the quality gate")
	}
}
