package tensor

import (
	"math"
	"testing"
)

// testPanel quantizes an (n×k) float32 weight matrix to a per-row
// symmetric int8 panel, the quant.Int8Panel layout, without importing
// quant (cycle).
func testPanel(w []float32, n, k int) ([]int8, []float32) {
	codes := make([]int8, n*k)
	steps := make([]float32, n)
	for j := 0; j < n; j++ {
		row := w[j*k : (j+1)*k]
		m := float32(0)
		for _, v := range row {
			if v < 0 {
				v = -v
			}
			if v > m {
				m = v
			}
		}
		step := float32(1)
		if m != 0 {
			step = m / 127
		}
		steps[j] = step
		for p, v := range row {
			q := math.Round(float64(v / step))
			if q > 127 {
				q = 127
			} else if q < -127 {
				q = -127
			}
			codes[j*k+p] = int8(q)
		}
	}
	return codes, steps
}

// int8Ref is the naive reference: quantize each A row, dense int32
// dots, the same epilogue expression.
func int8Ref(dst, a []float32, m, k int, codes []int8, steps []float32, n int) {
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		maxAbs := float32(0)
		for _, v := range arow {
			if v < 0 {
				v = -v
			}
			if v > maxAbs {
				maxAbs = v
			}
		}
		if maxAbs == 0 {
			for j := 0; j < n; j++ {
				dst[i*n+j] = 0
			}
			continue
		}
		aStep := maxAbs / 127
		q := make([]int32, k)
		for p, v := range arow {
			if v == 0 {
				continue
			}
			r := math.Round(float64(v / aStep))
			if r > 127 {
				r = 127
			} else if r < -127 {
				r = -127
			}
			q[p] = int32(r)
		}
		for j := 0; j < n; j++ {
			var acc int32
			for p := 0; p < k; p++ {
				acc += q[p] * int32(codes[j*k+p])
			}
			dst[i*n+j] = float32(acc) * (aStep * steps[j])
		}
	}
}

func int8Fixture(m, k, n int, density float64, seed uint64) (a, w []float32) {
	s := seed
	next := func() float64 {
		s = s*6364136223846793005 + 1442695040888963407
		return float64(s>>11) / float64(1<<53)
	}
	a = make([]float32, m*k)
	for i := range a {
		if next() < density {
			a[i] = float32(math.Floor(next()*3)) + 1 // spike-like small counts
		}
	}
	w = make([]float32, n*k)
	for i := range w {
		w[i] = float32(next()*2 - 1)
	}
	return a, w
}

func TestMatMulInt8MatchesReference(t *testing.T) {
	defer SetWorkers(0)
	for _, sh := range []struct{ m, k, n int }{
		{1, 8, 3}, {4, 32, 16}, {17, 100, 11}, {64, 288, 32}, {3, 7, 1},
	} {
		a, w := int8Fixture(sh.m, sh.k, sh.n, 0.3, uint64(sh.m*1000+sh.k))
		codes, steps := testPanel(w, sh.n, sh.k)
		want := make([]float32, sh.m*sh.n)
		int8Ref(want, a, sh.m, sh.k, codes, steps, sh.n)
		for _, workers := range []int{1, 2, 4} {
			SetWorkers(workers)
			got := make([]float32, sh.m*sh.n)
			var sc Int8Scratch
			MatMulInt8Into(got, a, sh.m, sh.k, codes, steps, sh.n, &sc)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("m=%d k=%d n=%d workers=%d: [%d] = %v, want %v",
						sh.m, sh.k, sh.n, workers, i, got[i], want[i])
				}
			}
		}
	}
}

// Each output row must be independent of what other rows ride in the
// batch: computing rows one at a time must reproduce the full-batch
// result bit-for-bit. This is what makes the INT8 serving tier
// batch-shape invariant under the coalescing scheduler.
func TestMatMulInt8BatchShapeInvariant(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(1)
	const m, k, n = 12, 96, 24
	a, w := int8Fixture(m, k, n, 0.4, 99)
	codes, steps := testPanel(w, n, k)
	full := make([]float32, m*n)
	var sc Int8Scratch
	MatMulInt8Into(full, a, m, k, codes, steps, n, &sc)
	single := make([]float32, n)
	for i := 0; i < m; i++ {
		var sc1 Int8Scratch
		MatMulInt8Into(single, a[i*k:(i+1)*k], 1, k, codes, steps, n, &sc1)
		for j := 0; j < n; j++ {
			if single[j] != full[i*n+j] {
				t.Fatalf("row %d col %d: solo %v vs batched %v", i, j, single[j], full[i*n+j])
			}
		}
	}
}

// The int8 result must track the fake-quantized float32 GEMM within
// the activation-quantization error bound.
func TestMatMulInt8AccuracyBound(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(1)
	const m, k, n = 8, 64, 16
	a, w := int8Fixture(m, k, n, 0.5, 7)
	codes, steps := testPanel(w, n, k)
	got := make([]float32, m*n)
	var sc Int8Scratch
	MatMulInt8Into(got, a, m, k, codes, steps, n, &sc)
	// Reference: dequantized weights against exact activations.
	wq := make([]float32, n*k)
	for j := 0; j < n; j++ {
		for p := 0; p < k; p++ {
			wq[j*k+p] = float32(codes[j*k+p]) * steps[j]
		}
	}
	at := FromSlice(a, m, k)
	wt := FromSlice(wq, n, k)
	ref := MatMulT(at, wt)
	for i := range got {
		diff := math.Abs(float64(got[i] - ref.Data[i]))
		// Activation quantization error: ≤ aStep/2 per nonzero term.
		if diff > 0.05*float64(k) {
			t.Fatalf("[%d] int8 %v vs fakequant %v (diff %v)", i, got[i], ref.Data[i], diff)
		}
	}
}

func TestMatMulInt8ZeroAllocSteadyState(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(1)
	const m, k, n = 16, 128, 32
	a, w := int8Fixture(m, k, n, 0.3, 21)
	codes, steps := testPanel(w, n, k)
	dst := make([]float32, m*n)
	var sc Int8Scratch
	MatMulInt8Into(dst, a, m, k, codes, steps, n, &sc) // warm scratch
	allocs := testing.AllocsPerRun(50, func() {
		MatMulInt8Into(dst, a, m, k, codes, steps, n, &sc)
	})
	if allocs != 0 {
		t.Fatalf("steady-state MatMulInt8Into allocates %v/op, want 0", allocs)
	}
}

func BenchmarkGEMMInt8(b *testing.B) {
	defer SetWorkers(0)
	SetWorkers(1)
	const m, k, n = 64, 288, 32 // the batched conv-lowering shape of BenchmarkGEMM
	a, w := int8Fixture(m, k, n, 0.3, 3)
	codes, steps := testPanel(w, n, k)
	dst := make([]float32, m*n)
	var sc Int8Scratch
	MatMulInt8Into(dst, a, m, k, codes, steps, n, &sc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInt8Into(dst, a, m, k, codes, steps, n, &sc)
	}
}
