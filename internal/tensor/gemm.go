// Blocked, pool-parallel GEMM kernels. Three layouts cover every use in
// the SNN substrate:
//
//	MatMul  C = A·B    (m×k)·(k×n)
//	MatMulT C = A·Bᵀ   (m×k)·(n×k)
//	TMatMul C = Aᵀ·B   (k×m)·(k×n)
//
// All three keep the skip-zero fast paths of the original serial
// kernels (spike activity is mostly zeros, so entire inner loops
// vanish), block the loops for cache locality, and split the output
// into row blocks claimed from the shared worker pool. MatMul and
// MatMulT preserve the exact per-element accumulation order of the
// serial kernels at any worker count; TMatMul reduces per-k-block
// partial sums in deterministic block order when parallel, and runs the
// exact serial kernel under SetWorkers(1).
package tensor

import "fmt"

const (
	// gemmKC / gemmNC block the k and n loops so a (gemmKC × gemmNC)
	// panel of B stays cache-resident while a row block of C streams.
	gemmKC = 240
	gemmNC = 1024
	// gemmSerialOps is the multiply-add count below which the pool
	// costs more than it saves and kernels stay serial.
	gemmSerialOps = 1 << 15
	// gemmGrainOps is the approximate per-task work target when
	// splitting rows across the pool.
	gemmGrainOps = 1 << 16
)

func checkGEMM(op string, a, b *Tensor) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: %s wants rank-2, got %v × %v", op, a.Shape, b.Shape)) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
	}
}

func gemmGrain(rows, opsPerRow int) int {
	if opsPerRow < 1 {
		opsPerRow = 1
	}
	g := gemmGrainOps / opsPerRow
	if g < 1 {
		g = 1
	}
	if g > rows {
		g = rows
	}
	return g
}

// MatMul computes C = A·B for A (m×k) and B (k×n), returning an m×n
// tensor. Zero elements of A skip their whole inner loop, which makes
// spike-matrix products cost O(nnz·n) instead of O(m·k·n).
func MatMul(a, b *Tensor) *Tensor {
	checkGEMM("MatMul", a, b)
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", k, k2)) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
	}
	c := New(m, n)
	matMulInto(c, a, b, m, k, n)
	return c
}

// MatMulInto computes dst = A·B into a caller-owned m×n tensor,
// overwriting its contents — the allocation-free form the inference
// arena uses. The kernels are exactly MatMul's, so the result is
// bit-identical to MatMul at any worker count.
func MatMulInto(dst, a, b *Tensor) {
	checkGEMM("MatMul", a, b)
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", k, k2)) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
	}
	if dst.Rank() != 2 || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto dst %v, want [%d %d]", dst.Shape, m, n)) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
	}
	clear(dst.Data)
	matMulInto(dst, a, b, m, k, n)
}

// matMulInto accumulates A·B into the zeroed dst.
func matMulInto(c, a, b *Tensor, m, k, n int) {
	w := Workers()
	if m*k*n < gemmSerialOps || w == 1 {
		matMulRows(c.Data, a.Data, b.Data, 0, m, k, n)
		return
	}
	if m >= 2*w {
		parallelFor(m, gemmGrain(m, k*n), func(lo, hi int) { //axsnn:allow-alloc parallel dispatch: one job closure per launch, amortized over its blocks
			matMulRows(c.Data, a.Data, b.Data, lo, hi, k, n)
		})
		return
	}
	// Few output rows (e.g. a narrow conv filter bank against a wide
	// batched im2col panel): split the columns instead. Stripes write
	// disjoint column ranges and keep the per-element accumulation
	// order, so this stays bit-identical too.
	parallelFor(n, gemmGrain(n, k*m), func(jlo, jhi int) { //axsnn:allow-alloc parallel dispatch: one job closure per launch, amortized over its blocks
		matMulStripe(c.Data, a.Data, b.Data, m, k, n, jlo, jhi)
	})
}

// matMulStripe computes columns [jlo,jhi) of C = A·B.
func matMulStripe(cd, ad, bd []float32, m, k, n, jlo, jhi int) {
	for i := 0; i < m; i++ {
		arow := ad[i*k : (i+1)*k]
		crow := cd[i*n+jlo : i*n+jhi]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := bd[p*n+jlo : p*n+jhi]
			for jj, bv := range brow {
				crow[jj] += av * bv
			}
		}
	}
}

// matMulRows computes rows [i0,i1) of C = A·B with k/n blocking. For
// every output element the k terms accumulate in ascending order, so
// the result is bit-identical to the naive ikj kernel regardless of
// blocking or row partitioning. Matrices that fit a single cache block
// take the tight unblocked loop: the blocked form's sub-slice
// arithmetic costs ~1.5× on small shapes.
func matMulRows(cd, ad, bd []float32, i0, i1, k, n int) {
	if k <= gemmKC && n <= gemmNC {
		for i := i0; i < i1; i++ {
			arow := ad[i*k : (i+1)*k]
			crow := cd[i*n : (i+1)*n]
			for p := 0; p < k; p++ {
				av := arow[p]
				if av == 0 {
					continue
				}
				brow := bd[p*n : (p+1)*n]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
		return
	}
	for kb := 0; kb < k; kb += gemmKC {
		kEnd := kb + gemmKC
		if kEnd > k {
			kEnd = k
		}
		for jb := 0; jb < n; jb += gemmNC {
			jEnd := jb + gemmNC
			if jEnd > n {
				jEnd = n
			}
			for i := i0; i < i1; i++ {
				arow := ad[i*k+kb : i*k+kEnd]
				crow := cd[i*n+jb : i*n+jEnd]
				for pp, av := range arow {
					if av == 0 {
						continue
					}
					brow := bd[(kb+pp)*n+jb : (kb+pp)*n+jEnd]
					for jj, bv := range brow {
						crow[jj] += av * bv
					}
				}
			}
		}
	}
}

// MatMulTInto computes dst = A·Bᵀ into a caller-owned m×n tensor,
// overwriting its contents — the allocation-free form for the training
// arena. The kernels are exactly MatMulT's, so the result is
// bit-identical to MatMulT at any worker count.
func MatMulTInto(dst, a, b *Tensor) {
	checkGEMM("MatMulT", a, b)
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulT inner dims %d vs %d", k, k2)) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
	}
	if dst.Rank() != 2 || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTInto dst %v, want [%d %d]", dst.Shape, m, n)) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
	}
	if m*k*n < gemmSerialOps || Workers() == 1 {
		matMulTRows(dst.Data, a.Data, b.Data, 0, m, k, n)
		return
	}
	parallelFor(m, gemmGrain(m, k*n), func(lo, hi int) { //axsnn:allow-alloc parallel dispatch: one job closure per launch, amortized over its blocks
		matMulTRows(dst.Data, a.Data, b.Data, lo, hi, k, n)
	})
}

// MatMulT computes C = A·Bᵀ for A (m×k) and B (n×k), returning m×n.
func MatMulT(a, b *Tensor) *Tensor {
	checkGEMM("MatMulT", a, b)
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulT inner dims %d vs %d", k, k2)) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
	}
	c := New(m, n)
	if m*k*n < gemmSerialOps || Workers() == 1 {
		matMulTRows(c.Data, a.Data, b.Data, 0, m, k, n)
		return c
	}
	parallelFor(m, gemmGrain(m, k*n), func(lo, hi int) { //axsnn:allow-alloc parallel dispatch: one job closure per launch, amortized over its blocks
		matMulTRows(c.Data, a.Data, b.Data, lo, hi, k, n)
	})
	return c
}

// matMulTRows computes rows [i0,i1) of C = A·Bᵀ. Each element is an
// independent dot product accumulated in ascending k order, identical
// to the serial kernel at any row partitioning.
func matMulTRows(cd, ad, bd []float32, i0, i1, k, n int) {
	for i := i0; i < i1; i++ {
		arow := ad[i*k : (i+1)*k]
		crow := cd[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := bd[j*k : (j+1)*k]
			var s float32
			for p, av := range arow {
				s += av * brow[p]
			}
			crow[j] = s
		}
	}
}

// MatMulTAcc accumulates dst += A·Bᵀ — the weight-gradient kernel
// (dst is accumulated across time steps, so no fresh tensor is
// allocated per step). Each element adds one dot product, computed in
// ascending k order exactly like MatMulT.
func MatMulTAcc(dst, a, b *Tensor) {
	checkGEMM("MatMulT", a, b)
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulT inner dims %d vs %d", k, k2)) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
	}
	if dst.Rank() != 2 || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTAcc dst %v, want [%d %d]", dst.Shape, m, n)) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
	}
	if m*k*n < gemmSerialOps || Workers() == 1 {
		matMulTAccRows(dst.Data, a.Data, b.Data, 0, m, k, n)
		return
	}
	parallelFor(m, gemmGrain(m, k*n), func(lo, hi int) { //axsnn:allow-alloc parallel dispatch: one job closure per launch, amortized over its blocks
		matMulTAccRows(dst.Data, a.Data, b.Data, lo, hi, k, n)
	})
}

func matMulTAccRows(cd, ad, bd []float32, i0, i1, k, n int) {
	for i := i0; i < i1; i++ {
		arow := ad[i*k : (i+1)*k]
		crow := cd[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := bd[j*k : (j+1)*k]
			var s float32
			for p, av := range arow {
				s += av * brow[p]
			}
			crow[j] += s
		}
	}
}

// MatMulTColSkipAcc accumulates dst += A·Bᵀ like MatMulTAcc, but
// exploits row sparsity of B: for every row j of B the nonzero column
// indices are gathered once into idx, and all m dot products against
// that row touch only those — O(n·k + m·nnz) instead of O(m·n·k). This
// is the spike-sparse weight-gradient kernel: in conv BPTT the cached
// im2col panel (mostly zero spike taps) is the transposed operand, so
// the backward GEMM rides the same sparsity the forward skip-zero paths
// do. idx is caller-owned scratch with len >= k, so the steady state
// allocates nothing.
//
// Every output element receives one completed dot product, accumulated
// over the nonzero k indices in ascending order. The skipped terms are
// exact zero products, so the result equals MatMulTAcc bit-for-bit
// (under the ==-comparison that treats ±0 alike) at any worker count.
func MatMulTColSkipAcc(dst, a, b *Tensor, idx []int) {
	checkGEMM("MatMulT", a, b)
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulT inner dims %d vs %d", k, k2)) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
	}
	if dst.Rank() != 2 || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTColSkipAcc dst %v, want [%d %d]", dst.Shape, m, n)) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
	}
	if len(idx) < k {
		panic(fmt.Sprintf("tensor: MatMulTColSkipAcc idx scratch %d, want >= %d", len(idx), k)) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
	}
	if m*k*n < gemmSerialOps || Workers() == 1 {
		matMulTColSkipRows(dst.Data, a.Data, b.Data, 0, n, m, k, n, idx)
		return
	}
	// Split the B rows (output columns): each stripe scans only its own
	// rows, so no nonzero gather is repeated, and every element is a
	// single completed-dot add — deterministic at any partitioning. The
	// per-block index scratch is the price of parallel dispatch (which
	// already allocates job state); serial mode reuses the caller's.
	parallelFor(n, gemmGrain(n, m*k/4+1), func(jlo, jhi int) { //axsnn:allow-alloc parallel dispatch: job closure plus per-stripe index scratch; serial mode reuses the caller's
		matMulTColSkipRows(dst.Data, a.Data, b.Data, jlo, jhi, m, k, n, make([]int, k))
	})
}

// matMulTColSkipRows accumulates columns [j0,j1) of C += A·Bᵀ (C rows
// have stride n), gathering each B row's nonzero indices before the m
// dot products against it.
func matMulTColSkipRows(cd, ad, bd []float32, j0, j1, m, k, n int, idx []int) {
	for j := j0; j < j1; j++ {
		brow := bd[j*k : (j+1)*k]
		nz := 0
		for p, v := range brow {
			if v != 0 {
				idx[nz] = p
				nz++
			}
		}
		if nz == 0 {
			continue
		}
		gather := idx[:nz]
		for i := 0; i < m; i++ {
			arow := ad[i*k : (i+1)*k]
			var s float32
			for _, p := range gather {
				s += arow[p] * brow[p]
			}
			cd[i*n+j] += s
		}
	}
}

// TMatMul computes C = Aᵀ·B for A (k×m) and B (k×n), returning m×n.
// Zero elements of A skip their inner loop (the spike fast path). When
// parallel, the k range is split into blocks whose partial products are
// reduced in deterministic block order; with SetWorkers(1) the exact
// serial kernel runs.
func TMatMul(a, b *Tensor) *Tensor {
	checkGEMM("TMatMul", a, b)
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: TMatMul inner dims %d vs %d", k, k2)) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
	}
	c := New(m, n)
	TMatMulAcc(c, a, b)
	return c
}

// TMatMulInto computes dst = Aᵀ·B into a caller-owned m×n tensor,
// overwriting its contents — the allocation-free form of TMatMul the
// training arena uses for per-step weight-gradient panels. Kernels and
// accumulation order are exactly TMatMul's.
func TMatMulInto(dst, a, b *Tensor) {
	checkGEMM("TMatMul", a, b)
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: TMatMul inner dims %d vs %d", k, k2)) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
	}
	if dst.Rank() != 2 || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: TMatMulInto dst %v, want [%d %d]", dst.Shape, m, n)) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
	}
	clear(dst.Data)
	TMatMulAcc(dst, a, b)
}

// TMatMulAcc accumulates dst += Aᵀ·B, the layout gradient kernels need
// (dst is a weight-gradient buffer accumulated across time steps).
func TMatMulAcc(dst, a, b *Tensor) {
	checkGEMM("TMatMul", a, b)
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: TMatMul inner dims %d vs %d", k, k2)) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
	}
	if dst.Rank() != 2 || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: TMatMulAcc dst %v, want [%d %d]", dst.Shape, m, n)) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
	}
	w := Workers()
	if w == 1 || k*m*n < gemmSerialOps {
		tMatMulRange(dst.Data, a.Data, b.Data, 0, k, m, n)
		return
	}
	if n >= 4*w {
		// Wide output (e.g. input gradients of a batched conv panel):
		// stripe the columns. Each stripe re-scans A but writes a
		// disjoint column range in the serial accumulation order, so
		// the result is bit-identical to the serial kernel.
		parallelFor(n, gemmGrain(n, k*m/4+1), func(jlo, jhi int) { //axsnn:allow-alloc parallel dispatch: one job closure per launch, amortized over its blocks
			tMatMulStripe(dst.Data, a.Data, b.Data, k, m, n, jlo, jhi)
		})
		return
	}
	// Narrow output: split k into ~4 blocks per worker for stealing
	// balance; each block accumulates into a private partial, reduced
	// in block order so the result never depends on scheduling.
	grain := (k + 4*w - 1) / (4 * w)
	if grain < 1 {
		grain = 1
	}
	blocks := (k + grain - 1) / grain
	partials := make([][]float32, blocks)    //axsnn:allow-alloc per-call partials: the price of the deterministic parallel reduction; serial path allocates nothing
	parallelFor(k, grain, func(lo, hi int) { //axsnn:allow-alloc parallel dispatch: job closure and per-block partial buffers
		buf := make([]float32, m*n)
		tMatMulRange(buf, a.Data, b.Data, lo, hi, m, n)
		partials[lo/grain] = buf
	})
	for _, p := range partials {
		for i, v := range p {
			dst.Data[i] += v
		}
	}
}

// tMatMulStripe accumulates columns [jlo,jhi) of C += Aᵀ·B.
func tMatMulStripe(cd, ad, bd []float32, k, m, n, jlo, jhi int) {
	for p := 0; p < k; p++ {
		arow := ad[p*m : (p+1)*m]
		brow := bd[p*n+jlo : p*n+jhi]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			crow := cd[i*n+jlo : i*n+jhi]
			for jj, bv := range brow {
				crow[jj] += av * bv
			}
		}
	}
}

// tMatMulRange accumulates rows [p0,p1) of A into C = Aᵀ·B. A rows
// stream contiguously, so the skip-zero check touches each element of
// the (typically sparse) A block exactly once.
func tMatMulRange(cd, ad, bd []float32, p0, p1, m, n int) {
	for p := p0; p < p1; p++ {
		arow := ad[p*m : (p+1)*m]
		brow := bd[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			crow := cd[i*n : (i+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// AddTransposed accumulates t += oᵀ for rank-2 tensors, the cheap final
// hop when a gradient was computed in transposed layout to exploit
// sparsity (e.g. dWᵀ = Xᵀ·G with spike-sparse X).
func (t *Tensor) AddTransposed(o *Tensor) *Tensor {
	if t.Rank() != 2 || o.Rank() != 2 || t.Shape[0] != o.Shape[1] || t.Shape[1] != o.Shape[0] {
		panic(fmt.Sprintf("tensor: AddTransposed %v += %vᵀ", t.Shape, o.Shape)) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
	}
	m, n := t.Shape[0], t.Shape[1]
	for i := 0; i < m; i++ {
		row := t.Data[i*n : (i+1)*n]
		for j := range row {
			row[j] += o.Data[j*m+i]
		}
	}
	return t
}
