package tensor

import "fmt"

// Im2Row lowers a (C,H,W) input to an (OutH*OutW, C*KH*KW) matrix — the
// transpose of Im2Col. Each row is one output position's receptive
// field, so a convolution becomes rows·Wᵀ with the weight matrix
// (OutC, C*KH*KW), and spike-sparse inputs give sparse *rows* that the
// MatMul skip-zero fast path elides wholesale. Batched convolution
// stacks the per-sample row blocks contiguously, which is why this
// layout (and not im2col) is the batched path's native one.
func Im2Row(x *Tensor, g Conv2DGeom) *Tensor {
	out := New(g.OutH()*g.OutW(), g.InC*g.KH*g.KW)
	Im2RowInto(out.Data, x, g)
	return out
}

// Im2RowInto writes Im2Row(x, g) into dst, which must have exactly
// OutH*OutW·C*KH*KW elements. When the input is mostly zeros (spike
// frames), it clears dst and scatters only the nonzero pixels —
// O(nnz·KH·KW) instead of O(C·KH·KW·OutH·OutW).
func Im2RowInto(dst []float32, x *Tensor, g Conv2DGeom) {
	if x.Rank() != 3 || x.Shape[0] != g.InC || x.Shape[1] != g.InH || x.Shape[2] != g.InW {
		panic(fmt.Sprintf("tensor: Im2Row input %v does not match geom %+v", x.Shape, g)) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
	}
	oh, ow := g.OutH(), g.OutW()
	ckk := g.InC * g.KH * g.KW
	if len(dst) != oh*ow*ckk {
		panic(fmt.Sprintf("tensor: Im2Row dst %d, want %d", len(dst), oh*ow*ckk)) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
	}
	nnz := 0
	for _, v := range x.Data {
		if v != 0 {
			nnz++
		}
	}
	// The dense path writes every dst element; the scatter path clears
	// dst (cheap) then touches nnz·KH·KW cells at roughly twice the
	// per-cell cost. Crossover sits near 40% density.
	if nnz*5 < 2*len(x.Data) {
		clear(dst)
		im2RowScatter(dst, x, g, ckk)
		return
	}
	im2RowDense(dst, x, g, oh, ow, ckk)
}

// im2RowScatter writes each nonzero input pixel into the receptive-field
// rows it participates in.
func im2RowScatter(dst []float32, x *Tensor, g Conv2DGeom, ckk int) {
	oh, ow := g.OutH(), g.OutW()
	idx := 0
	for c := 0; c < g.InC; c++ {
		base := c * g.KH * g.KW
		for si := 0; si < g.InH; si++ {
			for sj := 0; sj < g.InW; sj++ {
				v := x.Data[idx]
				idx++
				if v == 0 {
					continue
				}
				for ki := 0; ki < g.KH; ki++ {
					ti := si + g.Pad - ki
					if ti < 0 || ti%g.Stride != 0 {
						continue
					}
					oi := ti / g.Stride
					if oi >= oh {
						continue
					}
					for kj := 0; kj < g.KW; kj++ {
						tj := sj + g.Pad - kj
						if tj < 0 || tj%g.Stride != 0 {
							continue
						}
						oj := tj / g.Stride
						if oj >= ow {
							continue
						}
						dst[(oi*ow+oj)*ckk+base+ki*g.KW+kj] = v
					}
				}
			}
		}
	}
}

// im2RowDense is the gather form: every output row is filled from its
// receptive field, zero-padding out-of-range taps.
func im2RowDense(dst []float32, x *Tensor, g Conv2DGeom, oh, ow, ckk int) {
	for oi := 0; oi < oh; oi++ {
		for oj := 0; oj < ow; oj++ {
			row := dst[(oi*ow+oj)*ckk : (oi*ow+oj+1)*ckk]
			r := 0
			for c := 0; c < g.InC; c++ {
				plane := x.Data[c*g.InH*g.InW:]
				for ki := 0; ki < g.KH; ki++ {
					si := oi*g.Stride + ki - g.Pad
					for kj := 0; kj < g.KW; kj++ {
						sj := oj*g.Stride + kj - g.Pad
						if si >= 0 && si < g.InH && sj >= 0 && sj < g.InW {
							row[r] = plane[si*g.InW+sj]
						} else {
							row[r] = 0
						}
						r++
					}
				}
			}
		}
	}
}

// Im2ColStripeInto lowers x into one sample's column stripe of a
// batched im2col matrix: element (r, j) of the sample's (C*KH*KW,
// OutH*OutW) lowering lands at dst[r*rowStride + colOff + j]. With
// rowStride = OutH*OutW and colOff = 0 this is exactly Im2Col; batched
// convolution uses rowStride = B·OutH*OutW and colOff = b·OutH*OutW so
// one GEMM covers the whole batch. When the input is mostly zeros
// (spike frames — the training-forward hot case), the stripe is cleared
// and only the nonzero pixels scatter, O(nnz·KH·KW) instead of
// O(C·KH·KW·OutH·OutW); the panel contents are identical either way.
func Im2ColStripeInto(dst []float32, rowStride, colOff int, x *Tensor, g Conv2DGeom) {
	if x.Rank() != 3 || x.Shape[0] != g.InC || x.Shape[1] != g.InH || x.Shape[2] != g.InW {
		panic(fmt.Sprintf("tensor: Im2ColStripe input %v does not match geom %+v", x.Shape, g)) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
	}
	oh, ow := g.OutH(), g.OutW()
	nnz := 0
	for _, v := range x.Data {
		if v != 0 {
			nnz++
		}
	}
	// Same ~40% density crossover as Im2RowInto: below it, clearing the
	// stripe and scattering the live pixels beats the dense gather.
	if nnz*5 < 2*len(x.Data) {
		ckk := g.InC * g.KH * g.KW
		for r := 0; r < ckk; r++ {
			clear(dst[r*rowStride+colOff : r*rowStride+colOff+oh*ow])
		}
		im2ColStripeScatter(dst, rowStride, colOff, x, g, oh, ow)
		return
	}
	row := 0
	for c := 0; c < g.InC; c++ {
		plane := x.Data[c*g.InH*g.InW:]
		for ki := 0; ki < g.KH; ki++ {
			for kj := 0; kj < g.KW; kj++ {
				out := dst[row*rowStride+colOff : row*rowStride+colOff+oh*ow]
				idx := 0
				for oi := 0; oi < oh; oi++ {
					si := oi*g.Stride + ki - g.Pad
					for oj := 0; oj < ow; oj++ {
						sj := oj*g.Stride + kj - g.Pad
						if si >= 0 && si < g.InH && sj >= 0 && sj < g.InW {
							out[idx] = plane[si*g.InW+sj]
						} else {
							out[idx] = 0
						}
						idx++
					}
				}
				row++
			}
		}
	}
}

// im2ColStripeScatter writes each nonzero input pixel into every
// (kernel-tap row, output position) cell of the cleared stripe it
// participates in — the im2col transpose of im2RowScatter.
func im2ColStripeScatter(dst []float32, rowStride, colOff int, x *Tensor, g Conv2DGeom, oh, ow int) {
	idx := 0
	for c := 0; c < g.InC; c++ {
		base := c * g.KH * g.KW
		for si := 0; si < g.InH; si++ {
			for sj := 0; sj < g.InW; sj++ {
				v := x.Data[idx]
				idx++
				if v == 0 {
					continue
				}
				for ki := 0; ki < g.KH; ki++ {
					ti := si + g.Pad - ki
					if ti < 0 || ti%g.Stride != 0 {
						continue
					}
					oi := ti / g.Stride
					if oi >= oh {
						continue
					}
					for kj := 0; kj < g.KW; kj++ {
						tj := sj + g.Pad - kj
						if tj < 0 || tj%g.Stride != 0 {
							continue
						}
						oj := tj / g.Stride
						if oj >= ow {
							continue
						}
						dst[(base+ki*g.KW+kj)*rowStride+colOff+oi*ow+oj] = v
					}
				}
			}
		}
	}
}

// Col2ImStripeInto is the transpose of Im2ColStripeInto: it
// scatter-adds one sample's column stripe of a batched column-gradient
// matrix into the (C,H,W) input-gradient tensor x.
func Col2ImStripeInto(x *Tensor, src []float32, rowStride, colOff int, g Conv2DGeom) {
	if x.Rank() != 3 || x.Shape[0] != g.InC || x.Shape[1] != g.InH || x.Shape[2] != g.InW {
		panic(fmt.Sprintf("tensor: Col2ImStripe output %v does not match geom %+v", x.Shape, g)) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
	}
	oh, ow := g.OutH(), g.OutW()
	row := 0
	for c := 0; c < g.InC; c++ {
		plane := x.Data[c*g.InH*g.InW:]
		for ki := 0; ki < g.KH; ki++ {
			for kj := 0; kj < g.KW; kj++ {
				in := src[row*rowStride+colOff : row*rowStride+colOff+oh*ow]
				idx := 0
				for oi := 0; oi < oh; oi++ {
					si := oi*g.Stride + ki - g.Pad
					for oj := 0; oj < ow; oj++ {
						sj := oj*g.Stride + kj - g.Pad
						if si >= 0 && si < g.InH && sj >= 0 && sj < g.InW {
							plane[si*g.InW+sj] += in[idx]
						}
						idx++
					}
				}
				row++
			}
		}
	}
}

// Col2ImRow is the transpose of Im2Row: it scatters an
// (OutH*OutW, C*KH*KW) matrix of receptive-field gradients back into a
// (C,H,W) input-gradient tensor. It completes the im2row lowering pair;
// the conv backward currently runs on the im2col panel (training caches
// that layout), so this is exercised by the equivalence tests and
// reserved for a rows-layout backward.
func Col2ImRow(rows *Tensor, g Conv2DGeom) *Tensor {
	x := New(g.InC, g.InH, g.InW)
	Col2ImRowInto(x, rows.Data, g)
	return x
}

// Col2ImRowInto accumulates the scatter of rows (len OutH*OutW·C*KH*KW,
// im2row layout) into x, which must be (C,H,W) matching g.
func Col2ImRowInto(x *Tensor, rows []float32, g Conv2DGeom) {
	if x.Rank() != 3 || x.Shape[0] != g.InC || x.Shape[1] != g.InH || x.Shape[2] != g.InW {
		panic(fmt.Sprintf("tensor: Col2ImRow output %v does not match geom %+v", x.Shape, g)) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
	}
	oh, ow := g.OutH(), g.OutW()
	ckk := g.InC * g.KH * g.KW
	if len(rows) != oh*ow*ckk {
		panic(fmt.Sprintf("tensor: Col2ImRow input %d, want %d", len(rows), oh*ow*ckk)) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
	}
	for oi := 0; oi < oh; oi++ {
		for oj := 0; oj < ow; oj++ {
			row := rows[(oi*ow+oj)*ckk : (oi*ow+oj+1)*ckk]
			r := 0
			for c := 0; c < g.InC; c++ {
				plane := x.Data[c*g.InH*g.InW:]
				for ki := 0; ki < g.KH; ki++ {
					si := oi*g.Stride + ki - g.Pad
					for kj := 0; kj < g.KW; kj++ {
						sj := oj*g.Stride + kj - g.Pad
						if si >= 0 && si < g.InH && sj >= 0 && sj < g.InW {
							plane[si*g.InW+sj] += row[r]
						}
						r++
					}
				}
			}
		}
	}
}
