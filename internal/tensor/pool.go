package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The package keeps one shared, lazily-started worker pool that every
// parallel kernel draws from. Work is handed out as row blocks claimed
// from an atomic counter, so fast workers steal the blocks slow workers
// never reach, and a task's cost imbalance (e.g. the skip-zero fast
// path making sparse rows nearly free) self-balances.
//
// SetWorkers(1) opts out of all parallelism: every kernel then runs its
// serial code path, byte-for-byte identical to the pre-pool kernels, so
// single-threaded runs stay deterministic and reproducible.

var (
	// workerTarget is the configured worker budget; <= 0 means "use
	// runtime.GOMAXPROCS(0) at call time".
	workerTarget atomic.Int32

	poolOnce sync.Once
	poolJobs chan *poolJob
	poolCap  int // workers spawned by startPool, fixed at first use
)

// SetWorkers sets the kernel parallelism budget. n <= 0 restores the
// default (GOMAXPROCS). SetWorkers(1) forces the deterministic serial
// kernels. Targets above the pool size (GOMAXPROCS at first parallel
// use) are clamped at dispatch — they cannot buy more CPU-bound
// parallelism. Safe to call concurrently.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workerTarget.Store(int32(n))
}

// Workers reports the current kernel parallelism budget (>= 1).
func Workers() int {
	if w := workerTarget.Load(); w > 0 {
		return int(w)
	}
	w := runtime.GOMAXPROCS(0) //axsnn:allow-alloc runtime query; allocates nothing
	if w < 1 {
		w = 1
	}
	return w
}

// poolJob is one parallelFor invocation: blocks are claimed atomically
// from next until exhausted.
type poolJob struct {
	next   atomic.Int64
	blocks int
	run    func(block int)
	wg     sync.WaitGroup
}

// drain claims and runs blocks until none remain.
func (j *poolJob) drain() {
	for {
		b := int(j.next.Add(1)) - 1
		if b >= j.blocks {
			return
		}
		j.run(b)
	}
}

// startPool launches the persistent workers. They idle on an unbuffered
// channel, so a job submission only ever reaches a worker that is ready
// to run it; busy workers are simply not enlisted.
func startPool() {
	poolJobs = make(chan *poolJob)
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	poolCap = n
	for i := 0; i < n; i++ {
		go func() {
			for j := range poolJobs {
				j.drain()
				j.wg.Done()
			}
		}()
	}
}

// ParallelFor splits [0, n) into blocks of ~grain elements and runs body
// over them on the shared worker pool. It is the fan-out primitive the
// GEMM kernels use internally, exported so higher layers (per-stream
// event attacks, AQF set filtering, evaluation sweeps) can schedule
// coarse-grained work on the same budget instead of spawning their own
// goroutines. Blocks are claimed atomically, so cost imbalance between
// items self-balances; body invocations may run concurrently and must
// only write disjoint state. With SetWorkers(1) every block runs inline
// on the caller, in order — the deterministic serial path.
func ParallelFor(n, grain int, body func(lo, hi int)) {
	parallelFor(n, grain, body)
}

// parallelFor splits [0, n) into blocks of ~grain elements and runs body
// over them with up to Workers() goroutines. The caller always
// participates, so the call never blocks on a saturated pool; nested
// parallelFor calls degrade to serial instead of deadlocking. With one
// worker (or one block) body runs inline as body(0, n).
func parallelFor(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	w := Workers()
	blocks := (n + grain - 1) / grain
	if w <= 1 || blocks <= 1 {
		body(0, n)
		return
	}
	poolOnce.Do(startPool)
	// The pool is sized once (GOMAXPROCS at first use); a larger
	// SetWorkers target cannot buy more CPU-bound parallelism, so clamp
	// the partitioning to what can actually run (helpers + caller).
	if w > poolCap+1 {
		w = poolCap + 1
	}
	job := &poolJob{blocks: blocks} //axsnn:allow-alloc one job header per parallel launch, amortized over its blocks
	job.run = func(b int) {         //axsnn:allow-alloc one job closure per parallel launch, amortized over its blocks
		lo := b * grain
		hi := lo + grain
		if hi > n {
			hi = n
		}
		body(lo, hi)
	}
	if w > blocks {
		w = blocks
	}
	// Enlist up to w-1 idle workers; the try-send only succeeds when a
	// worker is parked on the channel, so a busy pool (nested kernels)
	// costs nothing and the caller just drains alone.
enlist:
	for i := 0; i < w-1; i++ {
		job.wg.Add(1)
		select {
		case poolJobs <- job:
		default:
			job.wg.Done()
			break enlist // no idle worker left
		}
	}
	job.drain()
	job.wg.Wait()
}
