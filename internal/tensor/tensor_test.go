package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewShapeAndLen(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 || x.Rank() != 3 || x.Dim(1) != 3 {
		t.Fatalf("bad tensor geometry: %v len=%d", x.Shape, x.Len())
	}
	for _, v := range x.Data {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestFromSliceValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad FromSlice length")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(3, 4)
	x.Set(7.5, 2, 1)
	if x.At(2, 1) != 7.5 {
		t.Fatal("At/Set mismatch")
	}
	if x.Data[2*4+1] != 7.5 {
		t.Fatal("row-major layout broken")
	}
}

func TestAtBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected out-of-bounds panic")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestReshapeSharesData(t *testing.T) {
	x := New(2, 6)
	y := x.Reshape(3, 4)
	y.Data[0] = 42
	if x.Data[0] != 42 {
		t.Fatal("reshape must share backing data")
	}
}

func TestCloneIndependent(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	y := x.Clone()
	y.Data[0] = 99
	if x.Data[0] != 1 {
		t.Fatal("clone must copy data")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 4)
	b := FromSlice([]float32{4, 3, 2, 1}, 4)
	a.Add(b)
	for _, v := range a.Data {
		if v != 5 {
			t.Fatalf("Add wrong: %v", a.Data)
		}
	}
	a.Sub(b)
	want := []float32{1, 2, 3, 4}
	for i, v := range a.Data {
		if v != want[i] {
			t.Fatalf("Sub wrong: %v", a.Data)
		}
	}
	a.Mul(b)
	wantM := []float32{4, 6, 6, 4}
	for i, v := range a.Data {
		if v != wantM[i] {
			t.Fatalf("Mul wrong: %v", a.Data)
		}
	}
	a.Scale(0.5)
	if a.Data[0] != 2 {
		t.Fatalf("Scale wrong: %v", a.Data)
	}
	a.AddScaled(2, b)
	if a.Data[0] != 10 {
		t.Fatalf("AddScaled wrong: %v", a.Data)
	}
}

func TestClampSignNorms(t *testing.T) {
	x := FromSlice([]float32{-3, -0.5, 0, 0.5, 3}, 5)
	c := x.Clone().Clamp(-1, 1)
	want := []float32{-1, -0.5, 0, 0.5, 1}
	for i, v := range c.Data {
		if v != want[i] {
			t.Fatalf("Clamp wrong: %v", c.Data)
		}
	}
	s := x.Clone().Sign()
	wantS := []float32{-1, -1, 0, 1, 1}
	for i, v := range s.Data {
		if v != wantS[i] {
			t.Fatalf("Sign wrong: %v", s.Data)
		}
	}
	if !almostEq(x.LInfNorm(), 3, 1e-9) {
		t.Fatalf("LInfNorm = %v", x.LInfNorm())
	}
	if !almostEq(x.L2Norm(), math.Sqrt(9+0.25+0.25+9), 1e-6) {
		t.Fatalf("L2Norm = %v", x.L2Norm())
	}
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float32{1, -2, 3, -4}, 4)
	if x.Sum() != -2 {
		t.Fatalf("Sum = %v", x.Sum())
	}
	if x.Mean() != -0.5 {
		t.Fatalf("Mean = %v", x.Mean())
	}
	if x.AbsMean() != 2.5 {
		t.Fatalf("AbsMean = %v", x.AbsMean())
	}
	if x.Max() != 3 || x.Min() != -4 {
		t.Fatalf("Max/Min = %v/%v", x.Max(), x.Min())
	}
	if x.Argmax() != 2 {
		t.Fatalf("Argmax = %v", x.Argmax())
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, v := range c.Data {
		if v != want[i] {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	r := rng.New(1)
	a := New(5, 5)
	for i := range a.Data {
		a.Data[i] = r.NormFloat32()
	}
	id := New(5, 5)
	for i := 0; i < 5; i++ {
		id.Data[i*5+i] = 1
	}
	c := MatMul(a, id)
	for i := range c.Data {
		if c.Data[i] != a.Data[i] {
			t.Fatal("A·I != A")
		}
	}
}

// MatMulT(a,b) must equal MatMul(a, Transpose(b)).
func TestMatMulTConsistency(t *testing.T) {
	r := rng.New(2)
	a, b := New(4, 6), New(5, 6)
	for i := range a.Data {
		a.Data[i] = r.NormFloat32()
	}
	for i := range b.Data {
		b.Data[i] = r.NormFloat32()
	}
	got := MatMulT(a, b)
	want := MatMul(a, Transpose(b))
	for i := range got.Data {
		if !almostEq(float64(got.Data[i]), float64(want.Data[i]), 1e-4) {
			t.Fatalf("MatMulT[%d] = %v, want %v", i, got.Data[i], want.Data[i])
		}
	}
}

// TMatMul(a,b) must equal MatMul(Transpose(a), b).
func TestTMatMulConsistency(t *testing.T) {
	r := rng.New(3)
	a, b := New(6, 4), New(6, 5)
	for i := range a.Data {
		a.Data[i] = r.NormFloat32()
	}
	for i := range b.Data {
		b.Data[i] = r.NormFloat32()
	}
	got := TMatMul(a, b)
	want := MatMul(Transpose(a), b)
	for i := range got.Data {
		if !almostEq(float64(got.Data[i]), float64(want.Data[i]), 1e-4) {
			t.Fatalf("TMatMul[%d] = %v, want %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		m := 1 + int(seed%5)
		n := 1 + int((seed>>8)%7)
		a := New(m, n)
		for i := range a.Data {
			a.Data[i] = r.NormFloat32()
		}
		b := Transpose(Transpose(a))
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// naiveConv is a direct convolution used as reference for the im2col path.
func naiveConv(x *Tensor, w *Tensor, g Conv2DGeom, outC int) *Tensor {
	oh, ow := g.OutH(), g.OutW()
	out := New(outC, oh, ow)
	for oc := 0; oc < outC; oc++ {
		for oi := 0; oi < oh; oi++ {
			for oj := 0; oj < ow; oj++ {
				var s float32
				for ic := 0; ic < g.InC; ic++ {
					for ki := 0; ki < g.KH; ki++ {
						for kj := 0; kj < g.KW; kj++ {
							i := oi*g.Stride + ki - g.Pad
							j := oj*g.Stride + kj - g.Pad
							if i < 0 || i >= g.InH || j < 0 || j >= g.InW {
								continue
							}
							wv := w.Data[((oc*g.InC+ic)*g.KH+ki)*g.KW+kj]
							s += wv * x.Data[(ic*g.InH+i)*g.InW+j]
						}
					}
				}
				out.Data[(oc*oh+oi)*ow+oj] = s
			}
		}
	}
	return out
}

func TestIm2ColConvMatchesNaive(t *testing.T) {
	r := rng.New(4)
	for _, tc := range []struct{ c, h, w, kh, kw, stride, pad, outC int }{
		{1, 5, 5, 3, 3, 1, 0, 2},
		{2, 6, 6, 3, 3, 1, 1, 3},
		{3, 8, 7, 3, 3, 2, 1, 4},
		{1, 4, 4, 2, 2, 2, 0, 1},
	} {
		g := Conv2DGeom{InC: tc.c, InH: tc.h, InW: tc.w, KH: tc.kh, KW: tc.kw, Stride: tc.stride, Pad: tc.pad}
		x := New(tc.c, tc.h, tc.w)
		for i := range x.Data {
			x.Data[i] = r.NormFloat32()
		}
		wt := New(tc.outC, tc.c*tc.kh*tc.kw)
		for i := range wt.Data {
			wt.Data[i] = r.NormFloat32()
		}
		cols := Im2Col(x, g)
		got := MatMul(wt, cols) // (outC, oh*ow)
		want := naiveConv(x, wt.Reshape(tc.outC, tc.c, tc.kh, tc.kw), g, tc.outC)
		for i := range got.Data {
			if !almostEq(float64(got.Data[i]), float64(want.Data[i]), 1e-3) {
				t.Fatalf("case %+v: conv[%d]=%v want %v", tc, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// Col2Im must be the adjoint of Im2Col: <Im2Col(x), y> == <x, Col2Im(y)>.
func TestCol2ImAdjoint(t *testing.T) {
	r := rng.New(5)
	g := Conv2DGeom{InC: 2, InH: 6, InW: 5, KH: 3, KW: 3, Stride: 1, Pad: 1}
	x := New(g.InC, g.InH, g.InW)
	for i := range x.Data {
		x.Data[i] = r.NormFloat32()
	}
	y := New(g.InC*g.KH*g.KW, g.OutH()*g.OutW())
	for i := range y.Data {
		y.Data[i] = r.NormFloat32()
	}
	lhs := 0.0
	cx := Im2Col(x, g)
	for i := range cx.Data {
		lhs += float64(cx.Data[i]) * float64(y.Data[i])
	}
	rhs := 0.0
	ci := Col2Im(y, g)
	for i := range ci.Data {
		rhs += float64(ci.Data[i]) * float64(x.Data[i])
	}
	if !almostEq(lhs, rhs, 1e-2) {
		t.Fatalf("adjoint mismatch: %v vs %v", lhs, rhs)
	}
}

func TestAvgPool(t *testing.T) {
	x := FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 4, 4)
	p := AvgPool2D(x, 2)
	want := []float32{3.5, 5.5, 11.5, 13.5}
	for i, v := range p.Data {
		if v != want[i] {
			t.Fatalf("AvgPool = %v, want %v", p.Data, want)
		}
	}
}

func TestAvgPoolBackwardConservesMass(t *testing.T) {
	g := FromSlice([]float32{1, 2, 3, 4}, 1, 2, 2)
	back := AvgPool2DBackward(g, 2, 4, 4)
	if !almostEq(back.Sum(), g.Sum(), 1e-6) {
		t.Fatalf("pool backward mass %v vs %v", back.Sum(), g.Sum())
	}
}

func TestAvgPoolRaggedEdges(t *testing.T) {
	x := New(1, 5, 5)
	x.Fill(2)
	p := AvgPool2D(x, 2)
	if p.Shape[1] != 3 || p.Shape[2] != 3 {
		t.Fatalf("ragged pool shape %v", p.Shape)
	}
	for _, v := range p.Data {
		if v != 2 {
			t.Fatalf("constant input must pool to constant, got %v", p.Data)
		}
	}
	back := AvgPool2DBackward(p, 2, 5, 5)
	if !almostEq(back.Sum(), p.Sum(), 1e-5) {
		t.Fatal("ragged pool backward lost mass")
	}
}

func TestMaxPoolAndBackward(t *testing.T) {
	x := FromSlice([]float32{
		1, 5, 2, 0,
		3, 4, 1, 9,
		0, 0, 7, 1,
		2, 1, 3, 4,
	}, 1, 4, 4)
	p, arg := MaxPool2D(x, 2)
	want := []float32{5, 9, 2, 7}
	for i, v := range p.Data {
		if v != want[i] {
			t.Fatalf("MaxPool = %v, want %v", p.Data, want)
		}
	}
	g := FromSlice([]float32{1, 1, 1, 1}, 1, 2, 2)
	back := MaxPool2DBackward(g, arg, 1, 4, 4)
	if back.Data[0*4+1] != 1 || back.Data[1*4+3] != 1 || back.Data[3*4+0] != 1 || back.Data[2*4+2] != 1 {
		t.Fatalf("MaxPool backward wrong: %v", back.Data)
	}
	if !almostEq(back.Sum(), 4, 1e-6) {
		t.Fatal("max pool backward mass wrong")
	}
}

func TestSoftmax(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3}, 3)
	s := Softmax(x)
	if !almostEq(s.Sum(), 1, 1e-6) {
		t.Fatalf("softmax sum %v", s.Sum())
	}
	if !(s.Data[2] > s.Data[1] && s.Data[1] > s.Data[0]) {
		t.Fatalf("softmax not monotone: %v", s.Data)
	}
	// Numerical stability with large logits.
	big := FromSlice([]float32{1000, 1001, 1002}, 3)
	sb := Softmax(big)
	if math.IsNaN(float64(sb.Data[0])) || !almostEq(sb.Sum(), 1, 1e-6) {
		t.Fatalf("softmax unstable: %v", sb.Data)
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		x := New(7)
		for i := range x.Data {
			x.Data[i] = r.NormFloat32()
		}
		y := x.Clone()
		for i := range y.Data {
			y.Data[i] += 5
		}
		a, b := Softmax(x), Softmax(y)
		for i := range a.Data {
			if !almostEq(float64(a.Data[i]), float64(b.Data[i]), 1e-5) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape panic")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

func BenchmarkMatMul64(b *testing.B) {
	r := rng.New(1)
	a, c := New(64, 64), New(64, 64)
	for i := range a.Data {
		a.Data[i] = r.NormFloat32()
		c.Data[i] = r.NormFloat32()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = MatMul(a, c)
	}
}

func BenchmarkIm2Col(b *testing.B) {
	g := Conv2DGeom{InC: 8, InH: 16, InW: 16, KH: 3, KW: 3, Stride: 1, Pad: 1}
	x := New(8, 16, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Im2Col(x, g)
	}
}
