// Package tensor implements dense float32 N-dimensional arrays and the
// small set of linear-algebra kernels the SNN substrate needs: matrix
// multiplication, im2col convolution lowering, pooling and elementwise
// arithmetic.
//
// Tensors are row-major. The package favours explicit shapes and fails
// loudly (panics) on shape mismatches: inside this repository a mismatch is
// always a programming error, never an input error.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense row-major float32 array with an explicit shape.
type Tensor struct {
	Shape []int
	Data  []float32
}

// New returns a zero-filled tensor of the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in %v", d, shape)) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is not
// copied; it must have exactly the product of shape elements.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (=%d)", len(data), shape, n)) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Len returns the number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Dim returns the size of axis i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Rank returns the number of axes.
func (t *Tensor) Rank() int { return len(t.Shape) }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view with a new shape covering the same data.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", t.Shape, shape)) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
}

// At returns the element at the given multi-index (rank must match).
func (t *Tensor) At(idx ...int) float32 {
	return t.Data[t.offset(idx)]
}

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d vs shape %v", len(idx), t.Shape)) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for %v", idx, t.Shape)) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// SameShape reports whether two tensors have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.Shape) != len(b.Shape) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	return true
}

func mustSameShape(op string, a, b *Tensor) {
	if !SameShape(a, b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.Shape, b.Shape)) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero resets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// Add accumulates o into t elementwise.
func (t *Tensor) Add(o *Tensor) *Tensor {
	mustSameShape("Add", t, o)
	for i, v := range o.Data {
		t.Data[i] += v
	}
	return t
}

// Sub subtracts o from t elementwise.
func (t *Tensor) Sub(o *Tensor) *Tensor {
	mustSameShape("Sub", t, o)
	for i, v := range o.Data {
		t.Data[i] -= v
	}
	return t
}

// Mul multiplies t by o elementwise (Hadamard).
func (t *Tensor) Mul(o *Tensor) *Tensor {
	mustSameShape("Mul", t, o)
	for i, v := range o.Data {
		t.Data[i] *= v
	}
	return t
}

// Scale multiplies every element by s.
func (t *Tensor) Scale(s float32) *Tensor {
	for i := range t.Data {
		t.Data[i] *= s
	}
	return t
}

// AddScaled accumulates s*o into t (axpy).
func (t *Tensor) AddScaled(s float32, o *Tensor) *Tensor {
	mustSameShape("AddScaled", t, o)
	for i, v := range o.Data {
		t.Data[i] += s * v
	}
	return t
}

// Clamp limits every element to [lo, hi].
func (t *Tensor) Clamp(lo, hi float32) *Tensor {
	for i, v := range t.Data {
		if v < lo {
			t.Data[i] = lo
		} else if v > hi {
			t.Data[i] = hi
		}
	}
	return t
}

// Sum returns the float64 sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += float64(v)
	}
	return s
}

// Mean returns the arithmetic mean (0 for empty tensors).
func (t *Tensor) Mean() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.Data))
}

// AbsMean returns the mean of |x| (0 for empty tensors).
func (t *Tensor) AbsMean() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range t.Data {
		s += math.Abs(float64(v))
	}
	return s / float64(len(t.Data))
}

// Max returns the maximum element; -Inf for empty tensors.
func (t *Tensor) Max() float32 {
	m := float32(math.Inf(-1))
	for _, v := range t.Data {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element; +Inf for empty tensors.
func (t *Tensor) Min() float32 {
	m := float32(math.Inf(1))
	for _, v := range t.Data {
		if v < m {
			m = v
		}
	}
	return m
}

// Argmax returns the index of the first maximal element (-1 if empty).
func (t *Tensor) Argmax() int {
	if len(t.Data) == 0 {
		return -1
	}
	best, bi := t.Data[0], 0
	for i, v := range t.Data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// L2Norm returns the Euclidean norm of the flattened tensor.
func (t *Tensor) L2Norm() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// LInfNorm returns max |x|.
func (t *Tensor) LInfNorm() float64 {
	m := 0.0
	for _, v := range t.Data {
		a := math.Abs(float64(v))
		if a > m {
			m = a
		}
	}
	return m
}

// Sign replaces each element with -1, 0 or +1.
func (t *Tensor) Sign() *Tensor {
	for i, v := range t.Data {
		switch {
		case v > 0:
			t.Data[i] = 1
		case v < 0:
			t.Data[i] = -1
		default:
			t.Data[i] = 0
		}
	}
	return t
}

// Transpose returns the transpose of a rank-2 tensor.
func Transpose(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose wants rank-2, got %v", a.Shape)) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
	}
	t := New(a.Shape[1], a.Shape[0])
	TransposeInto(t, a)
	return t
}

// TransposeInto writes aᵀ into the caller-owned (n,m) tensor dst,
// overwriting its contents (the allocation-free form).
func TransposeInto(dst, a *Tensor) {
	if a.Rank() != 2 || dst.Rank() != 2 || dst.Shape[0] != a.Shape[1] || dst.Shape[1] != a.Shape[0] {
		panic(fmt.Sprintf("tensor: TransposeInto %v ← %vᵀ", dst.Shape, a.Shape)) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
	}
	m, n := a.Shape[0], a.Shape[1]
	for i := 0; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		for j, v := range row {
			dst.Data[j*m+i] = v
		}
	}
}

// Conv2DGeom describes a 2-D convolution geometry shared by the forward
// lowering and its transpose.
type Conv2DGeom struct {
	InC, InH, InW int
	KH, KW        int
	Stride, Pad   int
}

// OutH returns the output height of the geometry.
func (g Conv2DGeom) OutH() int { return (g.InH+2*g.Pad-g.KH)/g.Stride + 1 }

// OutW returns the output width of the geometry.
func (g Conv2DGeom) OutW() int { return (g.InW+2*g.Pad-g.KW)/g.Stride + 1 }

// Im2Col lowers a (C,H,W) input to a (C*KH*KW, OutH*OutW) matrix so a
// convolution becomes one MatMul with the (OutC, C*KH*KW) filter matrix.
func Im2Col(x *Tensor, g Conv2DGeom) *Tensor {
	if x.Rank() != 3 || x.Shape[0] != g.InC || x.Shape[1] != g.InH || x.Shape[2] != g.InW {
		panic(fmt.Sprintf("tensor: Im2Col input %v does not match geom %+v", x.Shape, g)) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
	}
	oh, ow := g.OutH(), g.OutW()
	cols := New(g.InC*g.KH*g.KW, oh*ow)
	row := 0
	for c := 0; c < g.InC; c++ {
		plane := x.Data[c*g.InH*g.InW:]
		for ki := 0; ki < g.KH; ki++ {
			for kj := 0; kj < g.KW; kj++ {
				dst := cols.Data[row*oh*ow:]
				idx := 0
				for oi := 0; oi < oh; oi++ {
					si := oi*g.Stride + ki - g.Pad
					for oj := 0; oj < ow; oj++ {
						sj := oj*g.Stride + kj - g.Pad
						if si >= 0 && si < g.InH && sj >= 0 && sj < g.InW {
							dst[idx] = plane[si*g.InW+sj]
						} else {
							dst[idx] = 0
						}
						idx++
					}
				}
				row++
			}
		}
	}
	return cols
}

// Col2Im is the transpose of Im2Col: it scatters a (C*KH*KW, OutH*OutW)
// matrix of column gradients back into a (C,H,W) input-gradient tensor.
func Col2Im(cols *Tensor, g Conv2DGeom) *Tensor {
	oh, ow := g.OutH(), g.OutW()
	if cols.Rank() != 2 || cols.Shape[0] != g.InC*g.KH*g.KW || cols.Shape[1] != oh*ow {
		panic(fmt.Sprintf("tensor: Col2Im input %v does not match geom %+v", cols.Shape, g)) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
	}
	x := New(g.InC, g.InH, g.InW)
	row := 0
	for c := 0; c < g.InC; c++ {
		plane := x.Data[c*g.InH*g.InW:]
		for ki := 0; ki < g.KH; ki++ {
			for kj := 0; kj < g.KW; kj++ {
				src := cols.Data[row*oh*ow:]
				idx := 0
				for oi := 0; oi < oh; oi++ {
					si := oi*g.Stride + ki - g.Pad
					for oj := 0; oj < ow; oj++ {
						sj := oj*g.Stride + kj - g.Pad
						if si >= 0 && si < g.InH && sj >= 0 && sj < g.InW {
							plane[si*g.InW+sj] += src[idx]
						}
						idx++
					}
				}
				row++
			}
		}
	}
	return x
}

// AvgPool2D performs non-overlapping average pooling with window k on a
// (C,H,W) tensor. H and W need not be multiples of k; edge windows shrink.
func AvgPool2D(x *Tensor, k int) *Tensor {
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	out := New(c, (h+k-1)/k, (w+k-1)/k)
	AvgPool2DInto(out, x, k)
	return out
}

// AvgPool2DInto pools x into the caller-owned (C,OutH,OutW) tensor dst,
// overwriting every element (the allocation-free form).
func AvgPool2DInto(out, x *Tensor, k int) {
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	oh, ow := (h+k-1)/k, (w+k-1)/k
	if out.Rank() != 3 || out.Shape[0] != c || out.Shape[1] != oh || out.Shape[2] != ow {
		panic(fmt.Sprintf("tensor: AvgPool2DInto dst %v, want [%d %d %d]", out.Shape, c, oh, ow)) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
	}
	if k == 2 && h%2 == 0 && w%2 == 0 {
		// The common 2×2 window on even planes: no edge handling, no
		// per-window division loop.
		for ci := 0; ci < c; ci++ {
			plane := x.Data[ci*h*w : (ci+1)*h*w]
			dst := out.Data[ci*oh*ow : (ci+1)*oh*ow]
			for oi := 0; oi < oh; oi++ {
				top := plane[2*oi*w : (2*oi+1)*w]
				bot := plane[(2*oi+1)*w : (2*oi+2)*w]
				row := dst[oi*ow : (oi+1)*ow]
				for oj := range row {
					row[oj] = (top[2*oj] + top[2*oj+1] + bot[2*oj] + bot[2*oj+1]) * 0.25
				}
			}
		}
		return
	}
	for ci := 0; ci < c; ci++ {
		for oi := 0; oi < oh; oi++ {
			for oj := 0; oj < ow; oj++ {
				var s float32
				n := 0
				for di := 0; di < k; di++ {
					for dj := 0; dj < k; dj++ {
						i, j := oi*k+di, oj*k+dj
						if i < h && j < w {
							s += x.Data[(ci*h+i)*w+j]
							n++
						}
					}
				}
				out.Data[(ci*oh+oi)*ow+oj] = s / float32(n)
			}
		}
	}
}

// AvgPool2DBackward scatters the pooled gradient back to input resolution.
func AvgPool2DBackward(grad *Tensor, k, h, w int) *Tensor {
	c := grad.Shape[0]
	out := New(c, h, w)
	AvgPool2DBackwardInto(out, grad, k)
	return out
}

// AvgPool2DBackwardInto scatters the pooled gradient into the
// caller-owned (C,H,W) tensor out, overwriting its contents — the
// allocation-free form the training arena uses. The scatter order is
// exactly AvgPool2DBackward's, so results are bit-identical.
func AvgPool2DBackwardInto(out, grad *Tensor, k int) {
	c, oh, ow := grad.Shape[0], grad.Shape[1], grad.Shape[2]
	if out.Rank() != 3 || out.Shape[0] != c {
		panic(fmt.Sprintf("tensor: AvgPool2DBackwardInto dst %v for grad %v", out.Shape, grad.Shape)) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
	}
	h, w := out.Shape[1], out.Shape[2]
	out.Zero()
	for ci := 0; ci < c; ci++ {
		for oi := 0; oi < oh; oi++ {
			for oj := 0; oj < ow; oj++ {
				n := 0
				for di := 0; di < k; di++ {
					for dj := 0; dj < k; dj++ {
						if oi*k+di < h && oj*k+dj < w {
							n++
						}
					}
				}
				g := grad.Data[(ci*oh+oi)*ow+oj] / float32(n)
				for di := 0; di < k; di++ {
					for dj := 0; dj < k; dj++ {
						i, j := oi*k+di, oj*k+dj
						if i < h && j < w {
							out.Data[(ci*h+i)*w+j] += g
						}
					}
				}
			}
		}
	}
}

// MaxPool2D performs non-overlapping max pooling with window k and also
// returns the flat argmax indices used by the backward pass.
func MaxPool2D(x *Tensor, k int) (*Tensor, []int) {
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	oh, ow := (h+k-1)/k, (w+k-1)/k
	out := New(c, oh, ow)
	arg := make([]int, c*oh*ow)
	MaxPool2DWithArgInto(out, arg, x, k)
	return out, arg
}

// MaxPool2DWithArgInto pools x into the caller-owned (C,OutH,OutW)
// tensor out and writes the flat argmax indices into arg (len
// C·OutH·OutW), overwriting both — the allocation-free form of
// MaxPool2D the training arena uses for its per-step argmax ring.
func MaxPool2DWithArgInto(out *Tensor, arg []int, x *Tensor, k int) {
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	oh, ow := (h+k-1)/k, (w+k-1)/k
	if out.Rank() != 3 || out.Shape[0] != c || out.Shape[1] != oh || out.Shape[2] != ow {
		panic(fmt.Sprintf("tensor: MaxPool2DWithArgInto dst %v, want [%d %d %d]", out.Shape, c, oh, ow)) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
	}
	if len(arg) != c*oh*ow {
		panic(fmt.Sprintf("tensor: MaxPool2DWithArgInto arg %d, want %d", len(arg), c*oh*ow)) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
	}
	for ci := 0; ci < c; ci++ {
		for oi := 0; oi < oh; oi++ {
			for oj := 0; oj < ow; oj++ {
				best := float32(math.Inf(-1))
				bi := -1
				for di := 0; di < k; di++ {
					for dj := 0; dj < k; dj++ {
						i, j := oi*k+di, oj*k+dj
						if i < h && j < w {
							v := x.Data[(ci*h+i)*w+j]
							if v > best {
								best, bi = v, (ci*h+i)*w+j
							}
						}
					}
				}
				o := (ci*oh+oi)*ow + oj
				out.Data[o] = best
				arg[o] = bi
			}
		}
	}
}

// MaxPool2DInto pools x into the caller-owned (C,OutH,OutW) tensor dst,
// overwriting every element. It skips the argmax bookkeeping MaxPool2D
// keeps for the backward pass — the inference-arena form.
func MaxPool2DInto(out, x *Tensor, k int) {
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	oh, ow := (h+k-1)/k, (w+k-1)/k
	if out.Rank() != 3 || out.Shape[0] != c || out.Shape[1] != oh || out.Shape[2] != ow {
		panic(fmt.Sprintf("tensor: MaxPool2DInto dst %v, want [%d %d %d]", out.Shape, c, oh, ow)) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
	}
	for ci := 0; ci < c; ci++ {
		for oi := 0; oi < oh; oi++ {
			for oj := 0; oj < ow; oj++ {
				best := float32(math.Inf(-1))
				for di := 0; di < k; di++ {
					for dj := 0; dj < k; dj++ {
						i, j := oi*k+di, oj*k+dj
						if i < h && j < w {
							if v := x.Data[(ci*h+i)*w+j]; v > best {
								best = v
							}
						}
					}
				}
				out.Data[(ci*oh+oi)*ow+oj] = best
			}
		}
	}
}

// MaxPool2DBackward routes the pooled gradient to the argmax positions.
func MaxPool2DBackward(grad *Tensor, arg []int, c, h, w int) *Tensor {
	out := New(c, h, w)
	MaxPool2DBackwardInto(out, grad, arg)
	return out
}

// MaxPool2DBackwardInto routes the pooled gradient to the argmax
// positions of the caller-owned input-shaped tensor out, overwriting its
// contents — the allocation-free form the training arena uses.
func MaxPool2DBackwardInto(out, grad *Tensor, arg []int) {
	if len(arg) != grad.Len() {
		panic(fmt.Sprintf("tensor: MaxPool2DBackwardInto arg %d, want %d", len(arg), grad.Len())) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
	}
	out.Zero()
	for o, idx := range arg {
		if idx >= 0 {
			out.Data[idx] += grad.Data[o]
		}
	}
}

// Softmax returns the softmax of a rank-1 tensor (numerically stable).
func Softmax(x *Tensor) *Tensor {
	out := New(x.Shape...)
	maxV := float64(x.Max())
	sum := 0.0
	for i, v := range x.Data {
		e := math.Exp(float64(v) - maxV)
		out.Data[i] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for i := range out.Data {
		out.Data[i] *= inv
	}
	return out
}
