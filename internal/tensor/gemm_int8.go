// Int8 GEMM kernels: the quantized inference path. Weights arrive as
// pre-built per-channel int8 panels (codes + one step per output row,
// see quant.Int8Panel); activations are quantized per row on the fly
// with a symmetric step derived from that row alone. Accumulation is
// exact int32, the epilogue is one float32 multiply per element.
//
// Determinism: every output element is one int32 dot product over the
// row's nonzero columns in ascending order — integer accumulation is
// associative, the per-row activation step depends only on that row's
// data, and the float32 epilogue is a single rounding. The result is
// therefore bit-identical at any worker count AND any batch
// composition: adding or removing other rows of A cannot change a
// row's quantization or its dot products. (Contrast float32 GEMM,
// which is bit-stable only because the kernels pin accumulation
// order.) Spike activations (0/1 rows) quantize exactly to ±127 codes,
// so downstream layers see only the weight-quantization error.
package tensor

import (
	"fmt"
	"math"
)

// Int8Scratch is caller-owned scratch for MatMulInt8Into: one k-wide
// quantized-activation row and the nonzero-column gather. Buffers grow
// capacity-based to the high-water mark once and are reused
// thereafter, preserving the zero-alloc hot-path contract.
type Int8Scratch struct {
	qrow []int8
	idx  []int
}

// grow ensures capacity for k-wide rows.
func (s *Int8Scratch) grow(k int) {
	if cap(s.qrow) < k {
		s.qrow = make([]int8, k) //axsnn:allow-alloc scratch grows to the high-water shape once, reused thereafter
	}
	s.qrow = s.qrow[:k]
	if cap(s.idx) < k {
		s.idx = make([]int, k) //axsnn:allow-alloc scratch grows to the high-water shape once, reused thereafter
	}
	s.idx = s.idx[:k]
}

// MatMulInt8Into computes dst = A·Codesᵀ for a float32 activation
// panel A (m×k) against an (n×k) per-channel int8 weight panel: row j
// of codes holds output channel j's quantized weights with step
// steps[j]. Each A row is quantized symmetrically on the fly (step =
// max|row|/127), the dot products accumulate in int32 over the row's
// nonzero columns only (the spike-sparse skip: spike panels are mostly
// zeros), and the epilogue scales by aStep·steps[j]. dst is
// overwritten. sc is caller-owned scratch; the steady state allocates
// nothing.
func MatMulInt8Into(dst, a []float32, m, k int, codes []int8, steps []float32, n int, sc *Int8Scratch) {
	if len(a) < m*k || len(dst) < m*n {
		panic(fmt.Sprintf("tensor: MatMulInt8Into a %d dst %d, want >= %d×%d and %d×%d", len(a), len(dst), m, k, m, n)) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
	}
	if len(codes) < n*k || len(steps) < n {
		panic(fmt.Sprintf("tensor: MatMulInt8Into panel %d steps %d, want >= %d×%d and %d", len(codes), len(steps), n, k, n)) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
	}
	sc.grow(k)
	w := Workers()
	if m*k*n < gemmSerialOps || w == 1 || m < 2*w {
		matMulInt8Rows(dst, a, 0, m, k, codes, steps, n, sc.qrow, sc.idx)
		return
	}
	// Row split: blocks write disjoint dst rows; each block carries its
	// own quantization/gather scratch — the price of parallel dispatch
	// (which already allocates job state). Serial mode — the zero-alloc
	// gated path — reuses the caller's.
	parallelFor(m, gemmGrain(m, k*n), func(lo, hi int) { //axsnn:allow-alloc parallel dispatch: job closure plus per-block row scratch; serial mode reuses the caller's
		matMulInt8Rows(dst, a, lo, hi, k, codes, steps, n, make([]int8, k), make([]int, k))
	})
}

// matMulInt8Rows computes rows [i0,i1): per-row quantization + gather
// into the block-owned scratch, then n int32 dot products over the
// gathered nonzero columns.
func matMulInt8Rows(dst, a []float32, i0, i1, k int, codes []int8, steps []float32, n int, qrow []int8, idx []int) {
	for i := i0; i < i1; i++ {
		arow := a[i*k : (i+1)*k]
		// Symmetric per-row step from this row alone, so the
		// quantization is independent of the batch it rides in.
		maxAbs := float32(0)
		for _, v := range arow {
			if v < 0 {
				v = -v
			}
			if v > maxAbs {
				maxAbs = v
			}
		}
		drow := dst[i*n : (i+1)*n]
		if maxAbs == 0 {
			for j := range drow[:n] {
				drow[j] = 0
			}
			continue
		}
		aStep := maxAbs / 127
		nz := 0
		for p, v := range arow {
			if v == 0 {
				continue
			}
			q := math.Round(float64(v / aStep))
			if q > 127 {
				q = 127
			} else if q < -127 {
				q = -127
			}
			qrow[p] = int8(q)
			idx[nz] = p
			nz++
		}
		gather := idx[:nz]
		for j := 0; j < n; j++ {
			crow := codes[j*k : (j+1)*k]
			var acc int32
			for _, p := range gather {
				acc += int32(qrow[p]) * int32(crow[p])
			}
			drow[j] = float32(acc) * (aStep * steps[j])
		}
	}
}

// ConvInt8Into is the im2row-lowered int8 convolution's lowering hop:
// it lowers the (C,H,W) sample x into the caller's rows panel
// (OutH·OutW × C·KH·KW, at rowOff rows in) exactly like the float32
// rows-orient conv path, and the caller then runs MatMulInt8Into over
// the full batched panel. Splitting lowering from the GEMM keeps the
// batch shape identical to the FP32 path, so the two tiers share the
// scatter/bias epilogues.
func ConvInt8Into(rows []float32, rowOff int, x *Tensor, g Conv2DGeom) {
	ckk := g.InC * g.KH * g.KW
	n := g.OutH() * g.OutW()
	Im2RowInto(rows[rowOff*ckk:(rowOff+n)*ckk], x, g)
}
