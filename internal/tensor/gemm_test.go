package tensor

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// Naive reference kernels: the textbook triple loops, no blocking, no
// skip-zero fast paths, float64 accumulation. The production kernels
// must match these within tolerance across every shape and sparsity.

func refMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for p := 0; p < k; p++ {
				s += float64(a.Data[i*k+p]) * float64(b.Data[p*n+j])
			}
			c.Data[i*n+j] = float32(s)
		}
	}
	return c
}

func refMatMulT(a, b *Tensor) *Tensor {
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[0]
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for p := 0; p < k; p++ {
				s += float64(a.Data[i*k+p]) * float64(b.Data[j*k+p])
			}
			c.Data[i*n+j] = float32(s)
		}
	}
	return c
}

func refTMatMul(a, b *Tensor) *Tensor {
	k, m, n := a.Shape[0], a.Shape[1], b.Shape[1]
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for p := 0; p < k; p++ {
				s += float64(a.Data[p*m+i]) * float64(b.Data[p*n+j])
			}
			c.Data[i*n+j] = float32(s)
		}
	}
	return c
}

// randSparse fills a tensor with N(0,1) values at the given density
// (density 0 gives the all-zero tensor, exercising pure skip paths).
func randSparse(r *rng.RNG, density float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		if r.Float64() < density {
			t.Data[i] = r.NormFloat32()
		}
	}
	return t
}

func maxAbsDiff(a, b *Tensor) float64 {
	d := 0.0
	for i := range a.Data {
		v := math.Abs(float64(a.Data[i] - b.Data[i]))
		if v > d {
			d = v
		}
	}
	return d
}

// gemmCases covers the shape corners the kernels special-case: m=1,
// k=1, n=1, tiny panels below the parallel threshold, panels above it,
// and panels wider/taller than the cache blocks.
var gemmCases = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 7, 5},
	{3, 1, 9},
	{5, 4, 1},
	{2, 300, 3},
	{64, 54, 12},
	{12, 54, 64},
	{17, 260, 40},   // k beyond gemmKC
	{9, 33, 1100},   // n beyond gemmNC
	{130, 257, 70},  // k beyond gemmKC with many rows
	{200, 16, 1200}, // n beyond gemmNC with many rows
}

var densities = []float64{0, 0.05, 0.4, 1}

func TestMatMulMatchesReference(t *testing.T) {
	for _, workers := range []int{1, 4} {
		SetWorkers(workers)
		r := rng.New(11)
		for _, cs := range gemmCases {
			for _, d := range densities {
				a := randSparse(r, d, cs.m, cs.k)
				b := randSparse(r, 0.7, cs.k, cs.n)
				got := MatMul(a, b)
				want := refMatMul(a, b)
				if diff := maxAbsDiff(got, want); diff > 1e-5*float64(cs.k) {
					t.Fatalf("workers=%d %v d=%.2f: MatMul diff %g", workers, cs, d, diff)
				}
			}
		}
	}
	SetWorkers(0)
}

func TestMatMulTMatchesReference(t *testing.T) {
	for _, workers := range []int{1, 4} {
		SetWorkers(workers)
		r := rng.New(12)
		for _, cs := range gemmCases {
			for _, d := range densities {
				a := randSparse(r, d, cs.m, cs.k)
				b := randSparse(r, 0.7, cs.n, cs.k)
				got := MatMulT(a, b)
				want := refMatMulT(a, b)
				if diff := maxAbsDiff(got, want); diff > 1e-5*float64(cs.k) {
					t.Fatalf("workers=%d %v d=%.2f: MatMulT diff %g", workers, cs, d, diff)
				}
			}
		}
	}
	SetWorkers(0)
}

func TestTMatMulMatchesReference(t *testing.T) {
	for _, workers := range []int{1, 4} {
		SetWorkers(workers)
		r := rng.New(13)
		for _, cs := range gemmCases {
			for _, d := range densities {
				a := randSparse(r, d, cs.k, cs.m)
				b := randSparse(r, 0.7, cs.k, cs.n)
				got := TMatMul(a, b)
				want := refTMatMul(a, b)
				if diff := maxAbsDiff(got, want); diff > 1e-5*float64(cs.k) {
					t.Fatalf("workers=%d %v d=%.2f: TMatMul diff %g", workers, cs, d, diff)
				}
			}
		}
	}
	SetWorkers(0)
}

func TestAccVariantsAccumulate(t *testing.T) {
	r := rng.New(14)
	a := randSparse(r, 0.5, 23, 17)
	b := randSparse(r, 0.5, 23, 31)
	dst := randSparse(r, 1, 17, 31)
	want := dst.Clone().Add(refTMatMul(a, b))
	TMatMulAcc(dst, a, b)
	if diff := maxAbsDiff(dst, want); diff > 1e-4 {
		t.Fatalf("TMatMulAcc diff %g", diff)
	}

	a2 := randSparse(r, 0.5, 9, 40)
	b2 := randSparse(r, 0.5, 13, 40)
	dst2 := randSparse(r, 1, 9, 13)
	want2 := dst2.Clone().Add(refMatMulT(a2, b2))
	MatMulTAcc(dst2, a2, b2)
	if diff := maxAbsDiff(dst2, want2); diff > 1e-4 {
		t.Fatalf("MatMulTAcc diff %g", diff)
	}
}

// TestIntoVariantsMatch pins the Into forms to their allocating
// originals bit-for-bit: they share kernels, so even stale destination
// contents must vanish.
func TestIntoVariantsMatch(t *testing.T) {
	r := rng.New(24)
	for _, c := range gemmCases {
		for _, density := range densities {
			a := randSparse(r, density, c.k, c.m)
			b := randSparse(r, density, c.k, c.n)
			want := TMatMul(a, b)
			dst := randSparse(r, 1, c.m, c.n) // stale contents
			TMatMulInto(dst, a, b)
			for i := range want.Data {
				if dst.Data[i] != want.Data[i] {
					t.Fatalf("TMatMulInto (%v, d=%.2f) differs at %d", c, density, i)
				}
			}

			a2 := randSparse(r, density, c.m, c.k)
			b2 := randSparse(r, density, c.n, c.k)
			wantT := MatMulT(a2, b2)
			dstT := randSparse(r, 1, c.m, c.n)
			MatMulTInto(dstT, a2, b2)
			for i := range wantT.Data {
				if dstT.Data[i] != wantT.Data[i] {
					t.Fatalf("MatMulTInto (%v, d=%.2f) differs at %d", c, density, i)
				}
			}
		}
	}
}

// TestMatMulTColSkipAccMatchesDense pins the column-skip weight-gradient
// kernel to MatMulTAcc across shapes, sparsities and worker counts: the
// skipped terms are exact zero products, so results must compare equal.
func TestMatMulTColSkipAccMatchesDense(t *testing.T) {
	defer SetWorkers(0)
	r := rng.New(25)
	for _, workers := range []int{1, 4} {
		SetWorkers(workers)
		for _, c := range gemmCases {
			for _, density := range densities {
				a := randSparse(r, 1, c.m, c.k)       // gradients: dense
				b := randSparse(r, density, c.n, c.k) // spikes: sparse
				want := randSparse(r, 1, c.m, c.n)
				dst := want.Clone()
				MatMulTAcc(want, a, b)
				MatMulTColSkipAcc(dst, a, b, make([]int, c.k))
				for i := range want.Data {
					if dst.Data[i] != want.Data[i] {
						t.Fatalf("MatMulTColSkipAcc (%v, d=%.2f, w=%d) differs at %d: %v vs %v",
							c, density, workers, i, dst.Data[i], want.Data[i])
					}
				}
			}
		}
	}
}

func TestMatMulTColSkipAccShortIdxPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("undersized idx scratch must panic")
		}
	}()
	MatMulTColSkipAcc(New(2, 2), New(2, 8), New(2, 8), make([]int, 4))
}

func TestAddTransposed(t *testing.T) {
	r := rng.New(15)
	o := randSparse(r, 1, 4, 6)
	dst := New(6, 4)
	dst.AddTransposed(o)
	for i := 0; i < 6; i++ {
		for j := 0; j < 4; j++ {
			if dst.Data[i*4+j] != o.Data[j*6+i] {
				t.Fatalf("AddTransposed mismatch at (%d,%d)", i, j)
			}
		}
	}
}

// TestSingleWorkerBitIdentical pins the SetWorkers(1) determinism
// contract: the parallel kernels at any worker count must produce
// byte-for-byte the same MatMul/MatMulT results as single-worker mode
// (their row/stripe partitioning preserves accumulation order).
func TestSingleWorkerBitIdentical(t *testing.T) {
	r := rng.New(16)
	a := randSparse(r, 0.4, 37, 301)
	b := randSparse(r, 0.6, 301, 43)
	SetWorkers(1)
	serial := MatMul(a, b)
	serialT := MatMulT(a, Transpose(b))
	SetWorkers(8)
	parallel := MatMul(a, b)
	parallelT := MatMulT(a, Transpose(b))
	SetWorkers(0)
	for i := range serial.Data {
		if serial.Data[i] != parallel.Data[i] {
			t.Fatalf("MatMul not bit-identical at %d: %v vs %v", i, serial.Data[i], parallel.Data[i])
		}
	}
	for i := range serialT.Data {
		if serialT.Data[i] != parallelT.Data[i] {
			t.Fatalf("MatMulT not bit-identical at %d", i)
		}
	}
}

// TestIm2ColStripeScatterMatchesDense drives Im2ColStripeInto across
// the density crossover (the sparse scatter path vs the dense gather)
// and both stripe layouts, pinning the panel to the allocating Im2Col.
func TestIm2ColStripeScatterMatchesDense(t *testing.T) {
	r := rng.New(26)
	geoms := []Conv2DGeom{
		{InC: 2, InH: 7, InW: 7, KH: 3, KW: 3, Stride: 1, Pad: 1},
		{InC: 3, InH: 8, InW: 6, KH: 3, KW: 3, Stride: 2, Pad: 0},
		{InC: 1, InH: 5, InW: 5, KH: 2, KW: 2, Stride: 1, Pad: 2},
	}
	for _, g := range geoms {
		for _, density := range densities {
			x := randSparse(r, density, g.InC, g.InH, g.InW)
			want := Im2Col(x, g)
			n := g.OutH() * g.OutW()
			ckk := g.InC * g.KH * g.KW
			// Single-sample layout, stale destination.
			dst := randSparse(r, 1, ckk*n)
			Im2ColStripeInto(dst.Data, n, 0, x, g)
			for i := range want.Data {
				if dst.Data[i] != want.Data[i] {
					t.Fatalf("stripe (%+v, d=%.2f) differs at %d", g, density, i)
				}
			}
			// Batched layout: stripe 1 of 3, neighbours untouched.
			batchDst := randSparse(r, 1, ckk*3*n)
			before := batchDst.Clone()
			Im2ColStripeInto(batchDst.Data, 3*n, n, x, g)
			for row := 0; row < ckk; row++ {
				for j := 0; j < 3*n; j++ {
					got := batchDst.Data[row*3*n+j]
					if j >= n && j < 2*n {
						if got != want.Data[row*n+j-n] {
							t.Fatalf("batched stripe (%+v, d=%.2f) differs at row %d col %d", g, density, row, j)
						}
					} else if got != before.Data[row*3*n+j] {
						t.Fatalf("stripe (%+v, d=%.2f) clobbered neighbour at row %d col %d", g, density, row, j)
					}
				}
			}
		}
	}
}

func TestIm2RowMatchesIm2Col(t *testing.T) {
	r := rng.New(17)
	geoms := []Conv2DGeom{
		{InC: 1, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: 1},
		{InC: 3, InH: 9, InW: 7, KH: 3, KW: 3, Stride: 2, Pad: 1},
		{InC: 2, InH: 6, InW: 6, KH: 2, KW: 2, Stride: 2, Pad: 0},
	}
	for _, g := range geoms {
		for _, d := range []float64{0, 0.1, 0.9} {
			x := randSparse(r, d, g.InC, g.InH, g.InW)
			cols := Im2Col(x, g)
			rows := Im2Row(x, g)
			ckk := g.InC * g.KH * g.KW
			n := g.OutH() * g.OutW()
			for p := 0; p < ckk; p++ {
				for j := 0; j < n; j++ {
					if cols.Data[p*n+j] != rows.Data[j*ckk+p] {
						t.Fatalf("geom %+v d=%.1f: im2row(%d,%d) != im2col(%d,%d)", g, d, j, p, p, j)
					}
				}
			}
			// The strided stripe form must agree with plain Im2Col.
			stripe := make([]float32, ckk*n)
			Im2ColStripeInto(stripe, n, 0, x, g)
			for i := range stripe {
				if stripe[i] != cols.Data[i] {
					t.Fatalf("geom %+v: Im2ColStripeInto differs at %d", g, i)
				}
			}
		}
	}
}

func TestCol2ImRowRoundTrip(t *testing.T) {
	r := rng.New(18)
	g := Conv2DGeom{InC: 2, InH: 7, InW: 5, KH: 3, KW: 3, Stride: 1, Pad: 1}
	rows := randSparse(r, 0.8, g.OutH()*g.OutW(), g.InC*g.KH*g.KW)
	cols := New(g.InC*g.KH*g.KW, g.OutH()*g.OutW())
	ckk := g.InC * g.KH * g.KW
	n := g.OutH() * g.OutW()
	for p := 0; p < ckk; p++ {
		for j := 0; j < n; j++ {
			cols.Data[p*n+j] = rows.Data[j*ckk+p]
		}
	}
	a := Col2ImRow(rows, g)
	b := Col2Im(cols, g)
	if diff := maxAbsDiff(a, b); diff > 1e-5 {
		t.Fatalf("Col2ImRow vs Col2Im diff %g", diff)
	}
}
