package quant

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

func TestPerChannelBeatsPerTensor(t *testing.T) {
	// Two rows with wildly different scales: per-channel quantization
	// must reconstruct the small row far better.
	r := rng.New(1)
	x := tensor.New(2, 64)
	for i := 0; i < 64; i++ {
		x.Data[i] = r.NormFloat32() * 10 // big row
		x.Data[64+i] = r.NormFloat32() * 0.01
	}
	perTensor := Applied(x, INT8)
	perChannel := ApplyPerChannel(x.Clone(), INT8, 2)

	smallRowErr := func(q *tensor.Tensor) float64 {
		e := 0.0
		for i := 64; i < 128; i++ {
			d := float64(q.Data[i] - x.Data[i])
			e += d * d
		}
		return e
	}
	if smallRowErr(perChannel) >= smallRowErr(perTensor) {
		t.Fatalf("per-channel error %v not below per-tensor %v",
			smallRowErr(perChannel), smallRowErr(perTensor))
	}
}

func TestPerChannelFallbacks(t *testing.T) {
	r := rng.New(2)
	x := tensor.New(10)
	for i := range x.Data {
		x.Data[i] = r.NormFloat32()
	}
	// FP32: identity.
	y := ApplyPerChannel(x.Clone(), FP32, 2)
	for i := range x.Data {
		if y.Data[i] != x.Data[i] {
			t.Fatal("FP32 per-channel must be identity")
		}
	}
	// Bad row count: falls back to per-tensor (still valid INT8).
	z := ApplyPerChannel(x.Clone(), INT8, 3) // 10 % 3 != 0
	w := Applied(x, INT8)
	for i := range z.Data {
		if z.Data[i] != w.Data[i] {
			t.Fatal("fallback must equal per-tensor quantization")
		}
	}
}

func TestPerChannelZeroRow(t *testing.T) {
	x := tensor.New(2, 4)
	x.Data[0], x.Data[1] = 1, -1 // row 0 nonzero, row 1 all zero
	out := ApplyPerChannel(x, INT8, 2)
	for i := 4; i < 8; i++ {
		if out.Data[i] != 0 {
			t.Fatal("zero row must stay zero")
		}
	}
}
