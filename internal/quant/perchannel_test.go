package quant

import (
	"strings"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

func TestPerChannelBeatsPerTensor(t *testing.T) {
	// Two rows with wildly different scales: per-channel quantization
	// must reconstruct the small row far better.
	r := rng.New(1)
	x := tensor.New(2, 64)
	for i := 0; i < 64; i++ {
		x.Data[i] = r.NormFloat32() * 10 // big row
		x.Data[64+i] = r.NormFloat32() * 0.01
	}
	perTensor := Applied(x, INT8)
	perChannel, err := ApplyPerChannel(x.Clone(), INT8, 2)
	if err != nil {
		t.Fatal(err)
	}

	smallRowErr := func(q *tensor.Tensor) float64 {
		e := 0.0
		for i := 64; i < 128; i++ {
			d := float64(q.Data[i] - x.Data[i])
			e += d * d
		}
		return e
	}
	if smallRowErr(perChannel) >= smallRowErr(perTensor) {
		t.Fatalf("per-channel error %v not below per-tensor %v",
			smallRowErr(perChannel), smallRowErr(perTensor))
	}
}

func TestPerChannelFP32Identity(t *testing.T) {
	r := rng.New(2)
	x := tensor.New(10)
	for i := range x.Data {
		x.Data[i] = r.NormFloat32()
	}
	y, err := ApplyPerChannel(x.Clone(), FP32, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x.Data {
		if y.Data[i] != x.Data[i] {
			t.Fatal("FP32 per-channel must be identity")
		}
	}
}

// A rows value that does not divide the tensor used to silently fall
// back to per-tensor quantization — quietly different numerics. It is
// now an error.
func TestPerChannelBadRowsErrors(t *testing.T) {
	x := tensor.New(10)
	if _, err := ApplyPerChannel(x, INT8, 3); err == nil {
		t.Fatal("expected error for rows not dividing the tensor")
	}
	if _, err := QuantizePerChannel(x, 3); err == nil {
		t.Fatal("expected error for rows not dividing the tensor")
	}
	if _, err := QuantizePerChannel(x, 0); err == nil {
		t.Fatal("expected error for rows <= 0")
	}
}

func TestPerChannelZeroRow(t *testing.T) {
	x := tensor.New(2, 4)
	x.Data[0], x.Data[1] = 1, -1 // row 0 nonzero, row 1 all zero
	p, err := QuantizePerChannel(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Steps[1] != 1 {
		t.Fatalf("zero row step = %v, want the 1-step convention", p.Steps[1])
	}
	out, err := ApplyPerChannel(x, INT8, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 4; i < 8; i++ {
		if out.Data[i] != 0 {
			t.Fatal("zero row must stay zero")
		}
	}
}

// The panel codes dequantize to exactly the fake-quantized values —
// the int8 GEMM kernels and the fake-quantization path must agree.
func TestPanelMatchesApplyPerChannel(t *testing.T) {
	r := rng.New(3)
	x := tensor.New(4, 16)
	for i := range x.Data {
		x.Data[i] = r.NormFloat32()
	}
	p, err := QuantizePerChannel(x, 4)
	if err != nil {
		t.Fatal(err)
	}
	fake, err := ApplyPerChannel(x.Clone(), INT8, 4)
	if err != nil {
		t.Fatal(err)
	}
	for rI := 0; rI < p.Rows; rI++ {
		for c := 0; c < p.Cols; c++ {
			want := fake.Data[rI*p.Cols+c]
			got := float32(p.Codes[rI*p.Cols+c]) * p.Steps[rI]
			if got != want {
				t.Fatalf("panel[%d,%d] dequantizes to %v, fake-quant %v", rI, c, got, want)
			}
		}
	}
}

// String↔ParseScale must round-trip over every scale, in every case
// spelling — "Int8" used to parse while "Fp16" did not.
func TestScaleStringParseRoundTrip(t *testing.T) {
	for _, s := range Scales {
		for _, spell := range []string{
			s.String(),
			strings.ToLower(s.String()),
			strings.ToUpper(s.String()[:1]) + strings.ToLower(s.String()[1:]),
		} {
			got, err := ParseScale(spell)
			if err != nil {
				t.Fatalf("ParseScale(%q): %v", spell, err)
			}
			if got != s {
				t.Fatalf("ParseScale(%q) = %v, want %v", spell, got, s)
			}
		}
	}
}
