package quant

import (
	"math"
	"testing"
)

// Every one of the 65,536 binary16 bit patterns must survive the
// F16ToF32 → F32ToF16 round trip: a half is exactly representable as a
// float32, so converting it up and back must reproduce the original
// bits. NaNs keep their NaN-ness (the codec canonicalizes the payload
// to a quiet NaN, so bits may differ; sign is preserved).
func TestF16ExhaustiveRoundTrip(t *testing.T) {
	for i := 0; i <= 0xffff; i++ {
		h := uint16(i)
		f := F16ToF32(h)
		back := F32ToF16(f)
		if h&0x7c00 == 0x7c00 && h&0x3ff != 0 { // NaN
			if back&0x7c00 != 0x7c00 || back&0x3ff == 0 {
				t.Fatalf("NaN 0x%04x round-tripped to non-NaN 0x%04x", h, back)
			}
			if back&0x8000 != h&0x8000 {
				t.Fatalf("NaN 0x%04x lost its sign: 0x%04x", h, back)
			}
			continue
		}
		if back != h {
			t.Fatalf("0x%04x -> %v -> 0x%04x", h, f, back)
		}
	}
}

// Round-to-nearest-even at the normal-precision boundary: a float32
// exactly halfway between two halves must round to the half with an
// even mantissa, and anything past halfway must round up.
func TestF16RoundToNearestEvenNormals(t *testing.T) {
	for i := 0; i < 0x7bff; i++ { // every finite half except the max
		h := uint16(i)
		if h&0x7c00 == 0 {
			continue // subnormals covered below
		}
		lo := F16ToF32(h)
		hi := F16ToF32(h + 1)
		mid := float64(lo) + (float64(hi)-float64(lo))/2
		got := F32ToF16(float32(mid))
		want := h
		if h&1 == 1 { // odd mantissa: ties round away to the even neighbor
			want = h + 1
		}
		if got != want {
			t.Fatalf("midpoint of 0x%04x/0x%04x rounds to 0x%04x, want 0x%04x", h, h+1, got, want)
		}
		// Just past halfway must round up. Nextafter32, not the
		// float64 form: one float64 ulp above the midpoint rounds
		// straight back onto it when converted to float32.
		up := math.Nextafter32(float32(mid), float32(math.Inf(1)))
		if g := F32ToF16(up); g != h+1 {
			t.Fatalf("past-midpoint of 0x%04x rounds to 0x%04x, want 0x%04x", h, g, h+1)
		}
	}
}

// The subnormal boundary cases: ties between subnormal halves follow
// the same round-to-nearest-even rule.
func TestF16RoundToNearestEvenSubnormals(t *testing.T) {
	ulp := math.Pow(2, -24) // subnormal half spacing
	for i := 0; i < 64; i++ {
		lo := float64(i) * ulp
		mid := lo + ulp/2
		got := F32ToF16(float32(mid))
		want := uint16(i)
		if i&1 == 1 {
			want = uint16(i + 1)
		}
		if got != want {
			t.Fatalf("subnormal midpoint %v rounds to 0x%04x, want 0x%04x", mid, got, want)
		}
	}
}

// Rounding up the all-ones mantissa must carry into the exponent: the
// value just below a power of two rounds to the power of two itself,
// and the largest finite half's upper midpoint overflows to infinity.
func TestF16CarryIntoExponent(t *testing.T) {
	// 0x3bff = largest half below 1.0; its midpoint with 1.0 has an odd
	// low bit, so round-to-even carries up into 0x3c00 (= 1.0).
	lo := F16ToF32(0x3bff)
	mid := float32((float64(lo) + 1.0) / 2)
	if got := F32ToF16(mid); got != 0x3c00 {
		t.Fatalf("carry into exponent: got 0x%04x, want 0x3c00", got)
	}
	// Largest subnormal (0x03ff) to smallest normal (0x0400): the carry
	// crosses the subnormal/normal boundary.
	losub := F16ToF32(0x03ff)
	nrm := F16ToF32(0x0400)
	midsub := float32((float64(losub) + float64(nrm)) / 2)
	if got := F32ToF16(midsub); got != 0x0400 {
		t.Fatalf("subnormal->normal carry: got 0x%04x, want 0x0400", got)
	}
	// Past the max finite half (0x7bff = 65504): the midpoint to the
	// next would-be half (65520) ties to even upward, overflowing to Inf.
	if got := F32ToF16(65520); got != 0x7c00 {
		t.Fatalf("overflow tie: got 0x%04x, want 0x7c00 (+Inf)", got)
	}
	if got := F32ToF16(65519); got != 0x7bff {
		t.Fatalf("below overflow tie: got 0x%04x, want 0x7bff", got)
	}
}
