package quant

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/tensor"
)

func TestF16SpecialValues(t *testing.T) {
	cases := []struct {
		in   float32
		want float32
	}{
		{0, 0},
		{1, 1},
		{-1, -1},
		{0.5, 0.5},
		{2, 2},
		{65504, 65504}, // max finite half
		{1.0 / 1024, 1.0 / 1024},
		{float32(math.Inf(1)), float32(math.Inf(1))},
		{float32(math.Inf(-1)), float32(math.Inf(-1))},
	}
	for _, c := range cases {
		got := RoundF16(c.in)
		if got != c.want {
			t.Fatalf("RoundF16(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestF16NaN(t *testing.T) {
	nan := float32(math.NaN())
	if !math.IsNaN(float64(RoundF16(nan))) {
		t.Fatal("NaN must round-trip to NaN")
	}
}

func TestF16Overflow(t *testing.T) {
	if !math.IsInf(float64(RoundF16(1e30)), 1) {
		t.Fatal("large values must overflow to +Inf")
	}
	if !math.IsInf(float64(RoundF16(-1e30)), -1) {
		t.Fatal("large negatives must overflow to -Inf")
	}
}

func TestF16Underflow(t *testing.T) {
	if RoundF16(1e-30) != 0 {
		t.Fatalf("tiny values must flush to zero, got %v", RoundF16(1e-30))
	}
	// Smallest half subnormal is 2^-24 ≈ 5.96e-8.
	sub := float32(math.Pow(2, -24))
	if RoundF16(sub) != sub {
		t.Fatalf("smallest subnormal must survive: %v -> %v", sub, RoundF16(sub))
	}
}

func TestF16SignPreserved(t *testing.T) {
	if math.Signbit(float64(RoundF16(float32(math.Copysign(0, -1))))) != true {
		t.Fatal("-0 must keep its sign")
	}
}

// Round-tripping a value that is already a half must be exact, and the
// relative error for normal halves is bounded by 2^-11.
func TestF16RelativeErrorBound(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		v := float32(r.NormFloat64() * 10)
		got := RoundF16(v)
		if v == 0 {
			return got == 0
		}
		rel := math.Abs(float64(got-v)) / math.Abs(float64(v))
		// normals: 2^-11; allow slack near the subnormal boundary
		return rel <= 1.0/2048+1e-6 || math.Abs(float64(v)) < 6.2e-5
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestF16Idempotent(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		v := float32(r.NormFloat64() * 100)
		once := RoundF16(v)
		twice := RoundF16(once)
		return once == twice
	}, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestInt8RoundTrip(t *testing.T) {
	x := tensor.FromSlice([]float32{-1, -0.5, 0, 0.25, 1}, 5)
	p := Int8ParamsFor(x)
	codes := QuantizeInt8(x, p)
	back := DequantizeInt8(codes, p, 5)
	for i := range x.Data {
		if math.Abs(float64(back.Data[i]-x.Data[i])) > float64(p.Step)/2+1e-6 {
			t.Fatalf("int8 error at %d: %v vs %v (step %v)", i, back.Data[i], x.Data[i], p.Step)
		}
	}
}

func TestInt8ZeroTensor(t *testing.T) {
	x := tensor.New(4)
	p := Int8ParamsFor(x)
	codes := QuantizeInt8(x, p)
	for _, c := range codes {
		if c != 0 {
			t.Fatal("zero tensor must quantize to zero codes")
		}
	}
}

func TestInt8Saturation(t *testing.T) {
	x := tensor.FromSlice([]float32{10, -10}, 2)
	p := Int8Params{Step: 0.01} // deliberately too small
	codes := QuantizeInt8(x, p)
	if codes[0] != 127 || codes[1] != -127 {
		t.Fatalf("saturation failed: %v", codes)
	}
}

func TestApplyFP32IsIdentity(t *testing.T) {
	r := rng.New(1)
	x := tensor.New(100)
	for i := range x.Data {
		x.Data[i] = r.NormFloat32()
	}
	y := Applied(x, FP32)
	for i := range x.Data {
		if x.Data[i] != y.Data[i] {
			t.Fatal("FP32 must be identity")
		}
	}
}

func TestApplyErrorOrdering(t *testing.T) {
	// Quantization error must grow as precision shrinks: FP32 <= FP16 <= INT8
	// for a generic random tensor.
	r := rng.New(2)
	x := tensor.New(1000)
	for i := range x.Data {
		x.Data[i] = r.NormFloat32()
	}
	e32 := MSE(x, Applied(x, FP32))
	e16 := MSE(x, Applied(x, FP16))
	e8 := MSE(x, Applied(x, INT8))
	if !(e32 <= e16 && e16 <= e8) {
		t.Fatalf("error ordering violated: fp32=%v fp16=%v int8=%v", e32, e16, e8)
	}
	if e32 != 0 {
		t.Fatal("fp32 error must be zero")
	}
}

func TestApplyIdempotent(t *testing.T) {
	r := rng.New(3)
	for _, s := range []Scale{FP16, INT8} {
		x := tensor.New(64)
		for i := range x.Data {
			x.Data[i] = r.NormFloat32()
		}
		once := Applied(x, s)
		twice := Applied(once, s)
		for i := range once.Data {
			// INT8 params are recomputed; max element is preserved, so the
			// step is identical and the operation is idempotent.
			if math.Abs(float64(once.Data[i]-twice.Data[i])) > 1e-6 {
				t.Fatalf("%v not idempotent at %d: %v vs %v", s, i, once.Data[i], twice.Data[i])
			}
		}
	}
}

func TestScaleString(t *testing.T) {
	if FP32.String() != "FP32" || FP16.String() != "FP16" || INT8.String() != "INT8" {
		t.Fatal("Scale.String broken")
	}
	if FP32.Bits() != 32 || FP16.Bits() != 16 || INT8.Bits() != 8 {
		t.Fatal("Scale.Bits broken")
	}
}

func TestParseScale(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Scale
	}{{"fp32", FP32}, {"FP16", FP16}, {"int8", INT8}, {"Int8", INT8}} {
		got, err := ParseScale(c.in)
		if err != nil || got != c.want {
			t.Fatalf("ParseScale(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParseScale("fp8"); err == nil {
		t.Fatal("expected error for unknown scale")
	}
}

func TestQuantizeStep(t *testing.T) {
	x := tensor.FromSlice([]float32{0.013, 0.026, 0.031}, 3)
	QuantizeStep(x, 0.01)
	want := []float32{0.01, 0.03, 0.03}
	for i := range x.Data {
		if math.Abs(float64(x.Data[i]-want[i])) > 1e-6 {
			t.Fatalf("QuantizeStep = %v, want %v", x.Data, want)
		}
	}
	// step 0 is identity
	y := tensor.FromSlice([]float32{0.123}, 1)
	QuantizeStep(y, 0)
	if y.Data[0] != 0.123 {
		t.Fatal("step 0 must be identity")
	}
}

func BenchmarkRoundF16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = RoundF16(float32(i) * 0.001)
	}
}

func BenchmarkApplyINT8(b *testing.B) {
	r := rng.New(1)
	x := tensor.New(4096)
	for i := range x.Data {
		x.Data[i] = r.NormFloat32()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Applied(x, INT8)
	}
}
