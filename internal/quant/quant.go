// Package quant implements the precision scales used by the paper's
// precision-scaling defense: FP32 (identity), FP16 (IEEE-754 binary16
// round-trip) and INT8 (symmetric per-tensor quantization).
//
// Precision scaling in the paper means running the AxSNN with weights
// stored at reduced precision; here that is modelled by quantizing weights
// to the target format and dequantizing back to float32 for compute
// ("fake quantization"), which reproduces the numerical effect while
// keeping one compute path.
package quant

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/tensor"
)

// Scale identifies a precision scale.
type Scale int

const (
	// FP32 is full single precision (identity transform).
	FP32 Scale = iota
	// FP16 is IEEE-754 binary16 with round-to-nearest-even.
	FP16
	// INT8 is symmetric signed 8-bit per-tensor quantization.
	INT8
)

// Scales lists the precision scales evaluated by the paper (Figs. 4-6).
var Scales = []Scale{FP32, FP16, INT8}

// String returns the paper's spelling of the scale.
func (s Scale) String() string {
	switch s {
	case FP32:
		return "FP32"
	case FP16:
		return "FP16"
	case INT8:
		return "INT8"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// ParseScale converts a string such as "fp16" to a Scale. Matching is
// case-insensitive, so "FP16", "fp16" and "Fp16" all parse.
func ParseScale(s string) (Scale, error) {
	switch strings.ToUpper(s) {
	case "FP32":
		return FP32, nil
	case "FP16":
		return FP16, nil
	case "INT8":
		return INT8, nil
	}
	return FP32, fmt.Errorf("quant: unknown precision scale %q", s)
}

// Bits returns the storage width of the scale in bits.
func (s Scale) Bits() int {
	switch s {
	case FP16:
		return 16
	case INT8:
		return 8
	default:
		return 32
	}
}

// F32ToF16 converts a float32 to IEEE-754 binary16 bits with
// round-to-nearest-even, handling subnormals, infinities and NaN.
func F32ToF16(f float32) uint16 {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23&0xff) - 127 + 15
	mant := b & 0x7fffff

	switch {
	case exp >= 0x1f: // overflow or Inf/NaN
		if int32(b>>23&0xff) == 0xff { // Inf or NaN
			if mant != 0 {
				return sign | 0x7e00 // quiet NaN
			}
			return sign | 0x7c00 // Inf
		}
		return sign | 0x7c00 // overflow -> Inf
	case exp <= 0: // subnormal or underflow to zero
		if exp < -10 {
			return sign // underflow
		}
		mant |= 0x800000 // implicit leading 1
		shift := uint32(14 - exp)
		half := mant >> shift
		// round to nearest even
		rem := mant & ((1 << shift) - 1)
		halfway := uint32(1) << (shift - 1)
		if rem > halfway || (rem == halfway && half&1 == 1) {
			half++
		}
		return sign | uint16(half)
	default:
		half := uint16(exp)<<10 | uint16(mant>>13)
		rem := mant & 0x1fff
		if rem > 0x1000 || (rem == 0x1000 && half&1 == 1) {
			half++ // may carry into the exponent, which is correct
		}
		return sign | half
	}
}

// F16ToF32 converts IEEE-754 binary16 bits to float32.
func F16ToF32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1f)
	mant := uint32(h & 0x3ff)
	switch exp {
	case 0:
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		// subnormal: normalize
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3ff
		return math.Float32frombits(sign | e<<23 | mant<<13)
	case 0x1f:
		if mant == 0 {
			return math.Float32frombits(sign | 0x7f800000)
		}
		return math.Float32frombits(sign | 0x7fc00000 | mant<<13)
	default:
		return math.Float32frombits(sign | (exp-15+127)<<23 | mant<<13)
	}
}

// RoundF16 rounds a float32 through binary16 and back.
func RoundF16(f float32) float32 { return F16ToF32(F32ToF16(f)) }

// Int8Params holds the symmetric quantization parameters of a tensor.
type Int8Params struct {
	// Step is the quantization step: real = Step * int8code.
	Step float32
}

// Int8ParamsFor computes the symmetric per-tensor step covering max|x|.
func Int8ParamsFor(t *tensor.Tensor) Int8Params {
	m := float32(t.LInfNorm())
	if m == 0 {
		return Int8Params{Step: 1}
	}
	return Int8Params{Step: m / 127}
}

// quantCode is the single rounding implementation of the package:
// round-to-nearest with symmetric clamping at ±127. Every int8
// quantizer (per-tensor, per-channel, fake-quantization) routes
// through it so their numerics cannot drift apart.
func quantCode(v, step float32) int8 {
	q := math.Round(float64(v / step))
	if q > 127 {
		q = 127
	} else if q < -127 {
		q = -127
	}
	return int8(q)
}

// QuantizeInt8 returns the int8 codes of t under p.
func QuantizeInt8(t *tensor.Tensor, p Int8Params) []int8 {
	out := make([]int8, t.Len())
	for i, v := range t.Data {
		out[i] = quantCode(v, p.Step)
	}
	return out
}

// DequantizeInt8 reconstructs float32 values from int8 codes.
func DequantizeInt8(codes []int8, p Int8Params, shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	for i, c := range codes {
		t.Data[i] = float32(c) * p.Step
	}
	return t
}

// Apply fake-quantizes t in place according to the scale and returns t.
func Apply(t *tensor.Tensor, s Scale) *tensor.Tensor {
	switch s {
	case FP32:
		return t
	case FP16:
		for i, v := range t.Data {
			t.Data[i] = RoundF16(v)
		}
		return t
	case INT8:
		p := Int8ParamsFor(t)
		for i, v := range t.Data {
			t.Data[i] = float32(quantCode(v, p.Step)) * p.Step
		}
		return t
	default:
		panic(fmt.Sprintf("quant: unknown scale %v", s))
	}
}

// Applied returns a fake-quantized copy of t, leaving t untouched.
func Applied(t *tensor.Tensor, s Scale) *tensor.Tensor {
	return Apply(t.Clone(), s)
}

// Int8Panel is a per-channel quantized weight matrix: Rows×Cols int8
// codes with one symmetric step per row (per output channel). It is the
// storage format the int8 GEMM kernels consume directly — built once at
// load or hot-swap time, shared read-only between network clones.
type Int8Panel struct {
	Rows, Cols int
	Codes      []int8    // Rows×Cols, row-major
	Steps      []float32 // one step per row: real = Steps[r] * code
}

// QuantizePerChannel quantizes a (rows × cols) weight matrix to an
// int8 panel with one symmetric step per row (per output channel), the
// finer-grained scheme deployed quantizers prefer: a channel with small
// weights keeps its resolution instead of inheriting the whole tensor's
// range. An all-zero row gets step 1 (all codes 0), matching
// Int8ParamsFor's convention. It errors when rows does not divide the
// tensor — a silent fallback would quietly change numerics.
func QuantizePerChannel(t *tensor.Tensor, rows int) (*Int8Panel, error) {
	if rows <= 0 || t.Len()%rows != 0 {
		return nil, fmt.Errorf("quant: per-channel rows %d does not divide tensor of %d elements", rows, t.Len())
	}
	cols := t.Len() / rows
	p := &Int8Panel{
		Rows:  rows,
		Cols:  cols,
		Codes: make([]int8, t.Len()),
		Steps: make([]float32, rows),
	}
	for r := 0; r < rows; r++ {
		row := t.Data[r*cols : (r+1)*cols]
		m := float32(0)
		for _, v := range row {
			a := v
			if a < 0 {
				a = -a
			}
			if a > m {
				m = a
			}
		}
		step := float32(1)
		if m != 0 {
			step = m / 127
		}
		p.Steps[r] = step
		codes := p.Codes[r*cols : (r+1)*cols]
		for i, v := range row {
			codes[i] = quantCode(v, step)
		}
	}
	return p, nil
}

// ApplyPerChannel fake-quantizes a (rows × cols) weight matrix to INT8
// with one symmetric step per row, in place, by round-tripping through
// QuantizePerChannel's codes — the fake-quantized values are exactly
// what the int8 GEMM kernels compute with. FP16 and FP32 have no
// per-tensor state, so they fall back to Apply. A rows value that does
// not divide the tensor is an error, never a silent per-tensor
// fallback.
func ApplyPerChannel(t *tensor.Tensor, s Scale, rows int) (*tensor.Tensor, error) {
	if s != INT8 {
		return Apply(t, s), nil
	}
	p, err := QuantizePerChannel(t, rows)
	if err != nil {
		return nil, err
	}
	for r := 0; r < p.Rows; r++ {
		step := p.Steps[r]
		row := t.Data[r*p.Cols : (r+1)*p.Cols]
		codes := p.Codes[r*p.Cols : (r+1)*p.Cols]
		for i := range row {
			row[i] = float32(codes[i]) * step
		}
	}
	return t, nil
}

// MSE returns the mean squared quantization error between a and b.
func MSE(a, b *tensor.Tensor) float64 {
	if a.Len() != b.Len() {
		panic("quant: MSE length mismatch")
	}
	if a.Len() == 0 {
		return 0
	}
	s := 0.0
	for i := range a.Data {
		d := float64(a.Data[i]) - float64(b.Data[i])
		s += d * d
	}
	return s / float64(a.Len())
}

// QuantizeStep rounds every element of t to multiples of step (used by the
// AQF defense to quantize event timestamps; step 0 is the identity).
func QuantizeStep(t *tensor.Tensor, step float32) *tensor.Tensor {
	if step <= 0 {
		return t
	}
	for i, v := range t.Data {
		t.Data[i] = float32(math.Round(float64(v/step))) * step
	}
	return t
}
