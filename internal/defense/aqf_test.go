package defense

import (
	"testing"

	"repro/internal/attack"
	"repro/internal/dvs"
	"repro/internal/rng"
	"repro/internal/snn"
)

func TestAQFKeepsGestureEvents(t *testing.T) {
	cfg := dvs.DefaultGestureConfig()
	cfg.NoiseRate = 0
	s := dvs.GenerateGesture(7, cfg, rng.New(1))
	f := AQF(s, DefaultAQFParams(0.01))
	kept := float64(len(f.Events)) / float64(len(s.Events))
	if kept < 0.7 {
		t.Fatalf("AQF kept only %.0f%% of genuine gesture events", 100*kept)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAQFRemovesUncorrelatedNoise(t *testing.T) {
	// A stream of pure uniform noise: almost everything should go.
	r := rng.New(2)
	s := &dvs.Stream{W: 32, H: 32, Duration: 1600}
	for i := 0; i < 800; i++ {
		p := int8(1)
		if r.Bernoulli(0.5) {
			p = -1
		}
		s.Events = append(s.Events, dvs.Event{X: r.Intn(32), Y: r.Intn(32), P: p, T: r.Float64() * 1600})
	}
	s.Sort()
	f := AQF(s, DefaultAQFParams(0.01))
	kept := float64(len(f.Events)) / float64(len(s.Events))
	if kept > 0.4 {
		t.Fatalf("AQF kept %.0f%% of uncorrelated noise", 100*kept)
	}
}

func TestAQFSelectivity(t *testing.T) {
	// Mixed stream: gesture plus sparse noise. The filter must be far
	// kinder to gesture events than to noise events.
	cfg := dvs.DefaultGestureConfig()
	cfg.NoiseRate = 0
	s := dvs.GenerateGesture(3, cfg, rng.New(3))
	nSignal := len(s.Events)
	r := rng.New(4)
	for i := 0; i < 400; i++ {
		s.Events = append(s.Events, dvs.Event{X: r.Intn(32), Y: r.Intn(32), P: 1, T: r.Float64() * cfg.Duration})
	}
	// Tag noise by index: remember signal events via a set of values.
	type key struct {
		x, y int
		t    float64
	}
	signal := make(map[key]bool, nSignal)
	for _, e := range s.Events[:nSignal] {
		signal[key{e.X, e.Y, e.T}] = true
	}
	s.Sort()
	f := AQF(s, DefaultAQFParams(0.01))
	sigKept, noiseKept := 0, 0
	for _, e := range f.Events {
		if signal[key{e.X, e.Y, e.T}] {
			sigKept++
		} else {
			noiseKept++
		}
	}
	// Note AQF quantizes timestamps, so signal keys only match when
	// qt=0.01s leaves them identifiable; use qt=0 for exact matching.
	f0 := AQF(s, DefaultAQFParams(0))
	sigKept, noiseKept = 0, 0
	for _, e := range f0.Events {
		if signal[key{e.X, e.Y, e.T}] {
			sigKept++
		} else {
			noiseKept++
		}
	}
	sigRate := float64(sigKept) / float64(nSignal)
	noiseRate := float64(noiseKept) / 400
	if sigRate < noiseRate+0.3 {
		t.Fatalf("AQF not selective: signal kept %.2f vs noise kept %.2f", sigRate, noiseRate)
	}
}

func TestAQFRemovesFrameAttackEvents(t *testing.T) {
	cfg := dvs.DefaultGestureConfig()
	s := dvs.GenerateGesture(5, cfg, rng.New(5))
	net := snn.DVSNet(snn.DefaultConfig(1.0, 10), 32, 32, 11, true, rng.New(6), nil)
	adv := attack.NewFrame().Perturb(net, s, 5)
	injected := len(adv.Events) - len(s.Events)

	f := AQF(adv, DefaultAQFParams(0.015))
	// Count surviving border events.
	border := 0
	for _, e := range f.Events {
		if e.X == 0 || e.Y == 0 || e.X == adv.W-1 || e.Y == adv.H-1 {
			border++
		}
	}
	if border > injected/3 {
		t.Fatalf("AQF left %d of ~%d frame-attack events", border, injected)
	}
}

func TestAQFEmptyStream(t *testing.T) {
	s := &dvs.Stream{W: 8, H: 8, Duration: 100}
	f := AQF(s, DefaultAQFParams(0.01))
	if len(f.Events) != 0 || f.W != 8 || f.Duration != 100 {
		t.Fatal("empty stream mishandled")
	}
}

func TestAQFDoesNotMutateInput(t *testing.T) {
	s := dvs.GenerateGesture(1, dvs.DefaultGestureConfig(), rng.New(7))
	before := len(s.Events)
	t0 := s.Events[0].T
	_ = AQF(s, DefaultAQFParams(0.015))
	if len(s.Events) != before || s.Events[0].T != t0 {
		t.Fatal("AQF mutated its input stream")
	}
}

func TestAQFQuantizesTimestamps(t *testing.T) {
	s := &dvs.Stream{W: 8, H: 8, Duration: 100}
	// A tight burst so correlation keeps them.
	for i := 0; i < 5; i++ {
		s.Events = append(s.Events, dvs.Event{X: 3 + i%2, Y: 3, P: 1, T: 1.2 + float64(i)*0.9})
	}
	f := AQF(s, AQFParams{S: 2, T1: 50, T2: 50, Qt: 0.01}) // 10 ms step
	for _, e := range f.Events {
		q := e.T / 10
		if q != float64(int(q+0.5)) && q != float64(int(q)) {
			// timestamps must sit on multiples of 10ms
			t.Fatalf("timestamp %v not quantized to 10ms", e.T)
		}
	}
}

func TestAQFSetFiltersAll(t *testing.T) {
	cfg := dvs.DefaultGestureConfig()
	cfg.Duration = 300
	set := dvs.GenerateGestureSet(6, cfg, 8)
	out := AQFSet(set, DefaultAQFParams(0.01))
	if out.Len() != set.Len() {
		t.Fatal("AQFSet changed the sample count")
	}
	for i := range out.Samples {
		if out.Samples[i].Label != set.Samples[i].Label {
			t.Fatal("AQFSet scrambled labels")
		}
		if out.Samples[i].Stream == set.Samples[i].Stream {
			t.Fatal("AQFSet must return new streams")
		}
	}
}
