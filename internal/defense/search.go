package defense

import (
	"fmt"
	"sync"

	"repro/internal/approx"
	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/encoding"
	"repro/internal/quant"
	"repro/internal/rng"
	"repro/internal/snn"
	"repro/internal/tensor"
)

// SearchSpace is Algorithm 1's input grid: threshold voltages, time
// steps, precision scales and approximation levels.
type SearchSpace struct {
	VThs   []float32
	Steps  []int
	Scales []quant.Scale
	Levels []float64
}

// SearchConfig drives PrecisionScalingSearch (Algorithm 1).
type SearchConfig struct {
	Space SearchSpace

	// AttackFor builds the adversarial attack for a given budget; the
	// paper instantiates PGD or BIM here.
	AttackFor func(eps float64) *attack.Gradient
	Eps       float64

	// Q is the quality constraint: minimum acceptable accuracy (and
	// robustness) in [0,1]. Models below Q after training are skipped
	// (Line 4); the first configuration with robustness ≥ Q is returned
	// (Lines 22-24).
	Q float64

	Train *dataset.Set
	Test  *dataset.Set

	// BuildNet constructs an untrained network for a structural point.
	BuildNet func(cfg snn.Config, r *rng.RNG) *snn.Network
	// TrainOpts yields fresh training options (a fresh optimizer!) per
	// model.
	TrainOpts func() snn.TrainOptions

	Encoder encoding.Encoder
	// CalibN is how many test samples feed the Eq. 1 calibration.
	CalibN int
	Seed   uint64

	// Workers bounds training parallelism across (Vth, T) cells;
	// 0 means GOMAXPROCS.
	Workers int
}

// Candidate is one evaluated configuration.
type Candidate struct {
	VTh   float32
	Steps int
	Scale quant.Scale
	Level float64

	CleanAcc   float64 // accurate model accuracy, no attack
	AdvAcc     float64 // approximate model accuracy under attack
	Robustness float64 // Line 21: R(ε) = 1 − adv/|Dts|
	Accepted   bool    // R ≥ Q
}

// String formats a candidate like the paper's Table I rows.
func (c Candidate) String() string {
	return fmt.Sprintf("(Vth=%.2f,T=%d) (%s, %g) acc=%.0f%%",
		c.VTh, c.Steps, c.Scale, c.Level, 100*c.AdvAcc)
}

// SearchResult carries the accepted configuration (if any) and the whole
// scan, which the experiment harness turns into Table I.
type SearchResult struct {
	Best *Candidate
	All  []Candidate
}

// PrecisionScalingSearch implements Algorithm 1. For every structural
// point (Vth, T) it trains an accurate SNN, crafts adversarial examples
// with it (the adversary's surrogate), then scans precision scales and
// approximation levels for the most robust AxSNN. Structural points are
// evaluated in parallel; results are deterministic given cfg.Seed.
func PrecisionScalingSearch(cfg SearchConfig) SearchResult {
	type cellOut struct {
		order int
		cands []Candidate
	}
	var cells []struct {
		vth float32
		ts  int
	}
	for _, v := range cfg.Space.VThs {
		for _, t := range cfg.Space.Steps {
			cells = append(cells, struct {
				vth float32
				ts  int
			}{v, t})
		}
	}

	// The structural grid shares the kernel pool's worker budget:
	// training cells fan out up to that many goroutines, and the
	// batched kernels inside each cell fill whatever capacity remains.
	workers := cfg.Workers
	if workers <= 0 {
		workers = tensor.Workers()
	}
	sem := make(chan struct{}, workers)
	outs := make([]cellOut, len(cells))
	var wg sync.WaitGroup
	for i, cell := range cells {
		wg.Add(1)
		go func(i int, vth float32, ts int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			outs[i] = cellOut{order: i, cands: searchCell(cfg, vth, ts)}
		}(i, cell.vth, cell.ts)
	}
	wg.Wait()

	var res SearchResult
	for _, o := range outs {
		for _, c := range o.cands {
			c := c
			res.All = append(res.All, c)
			if c.Accepted && res.Best == nil {
				res.Best = &res.All[len(res.All)-1]
			}
		}
	}
	// If nothing met Q, surface the most robust candidate anyway.
	if res.Best == nil && len(res.All) > 0 {
		bi := 0
		for i, c := range res.All {
			if c.Robustness > res.All[bi].Robustness {
				bi = i
			}
		}
		res.Best = &res.All[bi]
	}
	return res
}

// searchCell runs Lines 3-25 for one (Vth, T) structural point.
func searchCell(cfg SearchConfig, vth float32, ts int) []Candidate {
	seed := cfg.Seed ^ (uint64(ts)<<24 + uint64(vth*1000))
	r := rng.New(seed)

	// Line 3: train the accurate model at this structural point.
	netCfg := snn.DefaultConfig(vth, ts)
	acc := cfg.BuildNet(netCfg, r.Split())
	opts := cfg.TrainOpts()
	opts.Encoder = cfg.Encoder
	opts.Seed = seed + 1
	snn.Train(acc, cfg.Train, opts)

	// Line 4: quality gate.
	cleanAcc := snn.Accuracy(acc, cfg.Test, cfg.Encoder, seed+2)
	if cleanAcc < cfg.Q {
		return nil
	}

	// Line 5: craft the adversarial test set once. Threat model (§III):
	// the adversary knows the architecture but not the trained
	// parameters, so it trains its own surrogate of the same
	// architecture and transfers the examples to the victims.
	sur := cfg.BuildNet(snn.DefaultConfig(vth, ts), rng.New(seed+100))
	surOpts := cfg.TrainOpts()
	surOpts.Encoder = cfg.Encoder
	surOpts.Seed = seed + 101
	snn.Train(sur, cfg.Train, surOpts)

	atk := cfg.AttackFor(cfg.Eps)
	advSet := atk.PerturbSet(sur, cfg.Test, rng.New(seed+3))

	// Calibration frames for Eq. 1.
	calib := calibFrames(cfg, acc, seed+4)

	// Lines 6-25: precision scales × approximation levels.
	var cands []Candidate
	for _, scale := range cfg.Space.Scales {
		for _, level := range cfg.Space.Levels {
			ax, _ := approx.Approximate(acc, approx.Params{Level: level, Scale: scale}, calib)
			advAcc := snn.Accuracy(ax, advSet, cfg.Encoder, seed+5)
			c := Candidate{
				VTh: vth, Steps: ts, Scale: scale, Level: level,
				CleanAcc: cleanAcc, AdvAcc: advAcc,
				Robustness: advAcc, // R(ε) = 1 − adv/|Dts| = adversarial accuracy
				Accepted:   advAcc >= cfg.Q,
			}
			cands = append(cands, c)
		}
	}
	return cands
}

// calibFrames encodes the first CalibN test images for calibration.
func calibFrames(cfg SearchConfig, net *snn.Network, seed uint64) [][]*tensor.Tensor {
	n := cfg.CalibN
	if n <= 0 {
		n = 16
	}
	if n > cfg.Test.Len() {
		n = cfg.Test.Len()
	}
	r := rng.New(seed)
	out := make([][]*tensor.Tensor, n)
	for i := 0; i < n; i++ {
		out[i] = cfg.Encoder.Encode(cfg.Test.Samples[i].Image, net.Cfg.Steps, r)
	}
	return out
}
