package defense

import (
	"testing"

	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/encoding"
	"repro/internal/quant"
	"repro/internal/rng"
	"repro/internal/snn"
)

// smallSearchConfig builds a fast Algorithm-1 configuration over a tiny
// grid.
func smallSearchConfig() SearchConfig {
	dcfg := dataset.DefaultSynthConfig()
	dcfg.H, dcfg.W = 12, 12
	train := dataset.GenerateSynth(200, dcfg, 1)
	test := dataset.GenerateSynth(60, dcfg, 2)
	return SearchConfig{
		Space: SearchSpace{
			VThs:   []float32{0.5},
			Steps:  []int{5},
			Scales: []quant.Scale{quant.FP32, quant.INT8},
			Levels: []float64{0, 0.01},
		},
		AttackFor: attack.PGD,
		Eps:       0.3,
		Q:         0.4,
		Train:     train,
		Test:      test,
		BuildNet: func(cfg snn.Config, r *rng.RNG) *snn.Network {
			return snn.DenseNet(cfg, 144, 48, 10, r)
		},
		TrainOpts: func() snn.TrainOptions {
			return snn.TrainOptions{Epochs: 3, BatchSize: 16, Optimizer: snn.NewAdam(3e-3)}
		},
		Encoder: encoding.Direct{},
		CalibN:  8,
		Seed:    42,
	}
}

func TestSearchProducesCandidates(t *testing.T) {
	cfg := smallSearchConfig()
	res := PrecisionScalingSearch(cfg)
	want := len(cfg.Space.Scales) * len(cfg.Space.Levels)
	if len(res.All) != want {
		t.Fatalf("got %d candidates, want %d", len(res.All), want)
	}
	if res.Best == nil {
		t.Fatal("no best candidate returned")
	}
	for _, c := range res.All {
		if c.CleanAcc < cfg.Q {
			t.Fatalf("candidate with clean accuracy %.2f below the quality gate leaked through", c.CleanAcc)
		}
		if c.Robustness < 0 || c.Robustness > 1 {
			t.Fatalf("robustness %v out of range", c.Robustness)
		}
		if c.String() == "" {
			t.Fatal("empty candidate string")
		}
	}
}

func TestSearchDeterministic(t *testing.T) {
	a := PrecisionScalingSearch(smallSearchConfig())
	b := PrecisionScalingSearch(smallSearchConfig())
	if len(a.All) != len(b.All) {
		t.Fatal("nondeterministic candidate counts")
	}
	for i := range a.All {
		if a.All[i] != b.All[i] {
			t.Fatalf("candidate %d differs across identical runs:\n%+v\n%+v", i, a.All[i], b.All[i])
		}
	}
}

func TestSearchQualityGateSkipsWeakModels(t *testing.T) {
	cfg := smallSearchConfig()
	cfg.TrainOpts = func() snn.TrainOptions {
		// One mini-epoch on 10 samples: the model stays near chance.
		return snn.TrainOptions{Epochs: 0, BatchSize: 16, Optimizer: snn.NewAdam(1e-3)}
	}
	cfg.Q = 0.8
	res := PrecisionScalingSearch(cfg)
	if len(res.All) != 0 {
		t.Fatalf("untrained models must be gated out, got %d candidates", len(res.All))
	}
	if res.Best != nil {
		t.Fatal("no best candidate expected")
	}
}

func TestSearchAcceptsWhenRobust(t *testing.T) {
	cfg := smallSearchConfig()
	cfg.Eps = 0.05 // trivial attack: robustness should clear Q
	res := PrecisionScalingSearch(cfg)
	if res.Best == nil || !res.Best.Accepted {
		t.Fatalf("expected an accepted configuration under a weak attack, got %+v", res.Best)
	}
}

func TestSearchBestIsMostRobustWhenNoneAccepted(t *testing.T) {
	cfg := smallSearchConfig()
	cfg.Q = 0.999 // nothing will be accepted...
	// ...but the quality gate would also reject everything, so relax the
	// gate by reading robustness: use a strong attack with normal Q for
	// the gate and verify ordering instead.
	cfg.Q = 0.4
	cfg.Eps = 1.0
	res := PrecisionScalingSearch(cfg)
	if res.Best == nil {
		t.Fatal("expected a best candidate")
	}
	for _, c := range res.All {
		if c.Robustness > res.Best.Robustness && !res.Best.Accepted {
			t.Fatalf("best (R=%.2f) is not the most robust (found R=%.2f)", res.Best.Robustness, c.Robustness)
		}
	}
}
