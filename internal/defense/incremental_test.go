package defense

import (
	"fmt"
	"testing"

	"repro/internal/dvs"
	"repro/internal/rng"
)

// pushAll feeds s through a fresh IncrementalAQF in consecutive chunks
// produced by cut (which returns the size of the next chunk, >= 1) and
// returns the concatenated output.
func pushAll(t *testing.T, s *dvs.Stream, p AQFParams, cut func(remaining int) int) []dvs.Event {
	t.Helper()
	f, err := NewIncrementalAQF(s.W, s.H, s.Duration, p)
	if err != nil {
		t.Fatal(err)
	}
	return drive(t, f, s, cut)
}

func drive(t *testing.T, f *IncrementalAQF, s *dvs.Stream, cut func(remaining int) int) []dvs.Event {
	t.Helper()
	var out []dvs.Event
	events := s.Events
	for len(events) > 0 {
		n := cut(len(events))
		if n > len(events) {
			n = len(events)
		}
		got, err := f.Push(events[:n])
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, got...)
		events = events[n:]
	}
	return append(out, f.Flush()...)
}

// timeCut returns a cut function slicing a time-sorted event list at
// multiples of windowMS — the chunking a windowed pipeline would feed.
func timeCut(events []dvs.Event, windowMS float64) func(int) int {
	total := len(events)
	return func(remaining int) int {
		pos := total - remaining
		w := int(events[pos].T / windowMS)
		n := 1
		for pos+n < total && int(events[pos+n].T/windowMS) == w {
			n++
		}
		return n
	}
}

func sameEvents(t *testing.T, name string, want, got []dvs.Event) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: kept %d events, whole-stream AQF kept %d", name, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: event %d = %+v, want %+v", name, i, got[i], want[i])
		}
	}
}

// fixtureStreams are the shared equivalence fixtures: clean gestures,
// pure noise, a mixed stream, and a dense same-instant burst that
// exercises the polarity rule across chunk cuts.
func fixtureStreams(t *testing.T) map[string]*dvs.Stream {
	t.Helper()
	out := map[string]*dvs.Stream{}
	cfg := dvs.DefaultGestureConfig()
	out["gesture"] = dvs.GenerateGesture(7, cfg, rng.New(1))
	cfg2 := cfg
	cfg2.NoiseRate = 0
	out["gesture-clean"] = dvs.GenerateGesture(3, cfg2, rng.New(2))

	r := rng.New(3)
	noise := &dvs.Stream{W: 24, H: 24, Duration: 900}
	for i := 0; i < 700; i++ {
		p := int8(1)
		if r.Bernoulli(0.5) {
			p = -1
		}
		noise.Events = append(noise.Events, dvs.Event{X: r.Intn(24), Y: r.Intn(24), P: p, T: r.Float64() * 900})
	}
	noise.Sort()
	out["noise"] = noise

	// Bursts of same-pixel opposite-polarity pairs plus hot rows: the
	// polarity and hot-pixel rules both fire.
	hot := &dvs.Stream{W: 16, H: 16, Duration: 800}
	for i := 0; i < 400; i++ {
		tms := float64(i) * 2
		hot.Events = append(hot.Events, dvs.Event{X: 3, Y: 3, P: 1, T: tms})
		hot.Events = append(hot.Events, dvs.Event{X: 3, Y: 3, P: -1, T: tms})
		hot.Events = append(hot.Events, dvs.Event{X: i % 16, Y: 8, P: 1, T: tms})
	}
	hot.Sort()
	out["hot-pairs"] = hot
	return out
}

// TestIncrementalAQFMatchesAQF is the tentpole pin: any chunking of
// the flow — single events, fixed counts, time windows, one shot —
// yields output bit-identical to the whole-stream filter, across
// fixtures and quantization steps.
func TestIncrementalAQFMatchesAQF(t *testing.T) {
	for name, s := range fixtureStreams(t) {
		for _, qt := range []float64{0, 0.01, 0.015} {
			p := DefaultAQFParams(qt)
			want := AQF(s, p).Events
			cuts := map[string]func(int) int{
				"one-shot":  func(r int) int { return r },
				"single":    func(r int) int { return 1 },
				"chunk-7":   func(r int) int { return 7 },
				"chunk-64":  func(r int) int { return 64 },
				"window-50": timeCut(s.Events, 50),
				"window-97": timeCut(s.Events, 97),
			}
			for cname, cut := range cuts {
				got := pushAll(t, s, p, cut)
				sameEvents(t, fmt.Sprintf("%s/qt=%v/%s", name, qt, cname), want, got)
			}
		}
	}
}

// TestIncrementalAQFSupportVariants covers non-default support and T1
// so the equivalence is not an artifact of the paper constants.
func TestIncrementalAQFSupportVariants(t *testing.T) {
	s := fixtureStreams(t)["gesture"]
	for _, p := range []AQFParams{
		{S: 1, T1: 2, T2: 30, Qt: 0.01, Support: 1},
		{S: 3, T1: 8, T2: 120, Qt: 0, Support: 4},
		{S: 2, T1: 5, T2: 50, Qt: 0.2}, // coarse quantization: big instants
	} {
		want := AQF(s, p).Events
		got := pushAll(t, s, p, func(r int) int { return 13 })
		sameEvents(t, fmt.Sprintf("params %+v", p), want, got)
	}
}

// TestIncrementalAQFReset pins that a recycled filter behaves exactly
// like a fresh one on the next recording.
func TestIncrementalAQFReset(t *testing.T) {
	fx := fixtureStreams(t)
	p := DefaultAQFParams(0.01)
	f, err := NewIncrementalAQF(32, 32, fx["gesture"].Duration, p)
	if err != nil {
		t.Fatal(err)
	}
	drive(t, f, fx["gesture"], func(r int) int { return 17 })

	s2 := fx["gesture-clean"]
	f.Reset(s2.Duration)
	got := drive(t, f, s2, func(r int) int { return 17 })
	sameEvents(t, "after reset", AQF(s2, p).Events, got)
}

// TestIncrementalAQFErrors: out-of-order and off-sensor inputs fail
// loudly instead of silently desynchronizing the filter.
func TestIncrementalAQFErrors(t *testing.T) {
	f, err := NewIncrementalAQF(8, 8, 100, DefaultAQFParams(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Push([]dvs.Event{{X: 9, Y: 0, P: 1, T: 1}}); err == nil {
		t.Fatal("off-sensor event accepted")
	}
	f.Reset(100)
	if _, err := f.Push([]dvs.Event{{X: 1, Y: 1, P: 1, T: 50}}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Push([]dvs.Event{{X: 1, Y: 1, P: 1, T: 10}}); err == nil {
		t.Fatal("out-of-order event accepted")
	}
	if _, err := NewIncrementalAQF(0, 8, 100, DefaultAQFParams(0)); err == nil {
		t.Fatal("invalid sensor accepted")
	}
}

// TestIncrementalAQFBoundedState pins the eviction contract: live
// correlation state tracks the event *rate*, not the recording length.
// A flow four times longer at the same rate must not hold ~4x the
// entries a shorter one peaks at.
func TestIncrementalAQFBoundedState(t *testing.T) {
	build := func(durMS float64, seed uint64) *dvs.Stream {
		r := rng.New(seed)
		s := &dvs.Stream{W: 24, H: 24, Duration: durMS}
		n := int(durMS) // 1 event/ms on average
		for i := 0; i < n; i++ {
			s.Events = append(s.Events, dvs.Event{X: r.Intn(24), Y: r.Intn(24), P: 1, T: r.Float64() * durMS})
		}
		s.Sort()
		return s
	}
	peak := func(s *dvs.Stream) int {
		f, err := NewIncrementalAQF(s.W, s.H, s.Duration, DefaultAQFParams(0.01))
		if err != nil {
			t.Fatal(err)
		}
		max := 0
		for i := 0; i < len(s.Events); i += 32 {
			hi := i + 32
			if hi > len(s.Events) {
				hi = len(s.Events)
			}
			if _, err := f.Push(s.Events[i:hi]); err != nil {
				t.Fatal(err)
			}
			if e, p := f.liveState(); e+p > max {
				max = e + p
			}
		}
		f.Flush()
		return max
	}
	short := peak(build(1000, 5))
	long := peak(build(4000, 6))
	if long > short*2 {
		t.Fatalf("live state grew with duration: peak %d entries at 4s vs %d at 1s", long, short)
	}
}
