package defense

import "repro/internal/dvs"

// Filter is the single-stream event-denoiser interface shared by the
// two defenses: AQF (adapted by AQFFilter) and the background-activity
// baseline. The streaming pipeline (internal/stream) applies a Filter
// to every window of the event flow, each window viewed as a
// standalone stream starting at t=0 — the bounded-memory, online form
// of filtering: state never outlives a window, so memory stays
// O(window) however long the recording runs. The boundary semantics
// follow: an event near a window's start cannot draw support from the
// previous window (AQF's "first T2 ms pass unconditionally" rule
// applies per window), exactly as if each window had been recorded
// separately.
type Filter interface {
	// Filter returns a filtered copy; the input is not modified.
	Filter(s *dvs.Stream) *dvs.Stream
}

// AQFFilter adapts Algorithm 2 to the Filter interface.
type AQFFilter struct {
	Params AQFParams
}

// Filter runs AQF with the adapter's parameters.
func (f AQFFilter) Filter(s *dvs.Stream) *dvs.Stream { return AQF(s, f.Params) }

var (
	_ Filter = AQFFilter{}
	_ Filter = (*BackgroundActivityFilter)(nil)
)
