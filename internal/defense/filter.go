package defense

import "repro/internal/dvs"

// Filter is the single-stream event-denoiser interface shared by the
// two defenses: AQF (adapted by AQFFilter) and the background-activity
// baseline. The streaming pipeline (internal/stream) can apply a
// Filter to every window of the event flow, each window viewed as a
// standalone stream starting at t=0: state never outlives a window, so
// memory stays O(window) however long the recording runs.
//
// This per-window form is a lossy approximation of the whole-stream
// filter, and deliberately so — know what it trades away before
// choosing it. An event near a window's start cannot draw support from
// the previous window, so AQF's "first T2 ms pass unconditionally"
// rule applies per *window*, not per recording: every window opens
// with a T2 ms grace period in which all events — including injected
// adversarial ones — pass unfiltered, and hot-pixel runs restart at
// every boundary, so a flooding pixel is re-granted T1 windows of
// output each time. With the paper's T2=50 ms and a 100 ms serving
// window, half of every window is unfiltered. That is why
// stream.Pipeline's default AQF mode is the cross-window
// IncrementalAQF, which carries correlation state and hot-pixel runs
// across boundaries and matches the whole-stream AQF bit for bit; the
// per-window form stays available behind stream.Options.Filter for
// workloads that want strict window isolation (e.g. windows from
// unrelated recordings).
type Filter interface {
	// Filter returns a filtered copy; the input is not modified.
	Filter(s *dvs.Stream) *dvs.Stream
}

// AQFFilter adapts Algorithm 2 to the Filter interface.
type AQFFilter struct {
	Params AQFParams
}

// Filter runs AQF with the adapter's parameters.
func (f AQFFilter) Filter(s *dvs.Stream) *dvs.Stream { return AQF(s, f.Params) }

var (
	_ Filter = AQFFilter{}
	_ Filter = (*BackgroundActivityFilter)(nil)
)
