package defense

import (
	"testing"

	"repro/internal/dvs"
	"repro/internal/rng"
)

func TestBackgroundActivityFilterKeepsSignal(t *testing.T) {
	cfg := dvs.DefaultGestureConfig()
	cfg.NoiseRate = 0
	s := dvs.GenerateGesture(7, cfg, rng.New(1))
	f := NewBackgroundActivityFilter().Filter(s)
	kept := float64(len(f.Events)) / float64(len(s.Events))
	if kept < 0.6 {
		t.Fatalf("BAF kept only %.0f%% of gesture events", 100*kept)
	}
}

func TestBackgroundActivityFilterDropsIsolatedNoise(t *testing.T) {
	r := rng.New(2)
	s := &dvs.Stream{W: 32, H: 32, Duration: 1600}
	for i := 0; i < 300; i++ {
		s.Events = append(s.Events, dvs.Event{X: r.Intn(32), Y: r.Intn(32), P: 1, T: r.Float64() * 1600})
	}
	s.Sort()
	f := NewBackgroundActivityFilter().Filter(s)
	kept := float64(len(f.Events)) / float64(len(s.Events))
	if kept > 0.35 {
		t.Fatalf("BAF kept %.0f%% of sparse noise", 100*kept)
	}
}

// AQF must beat the plain background-activity filter against the frame
// attack (BAF has no polarity/hot-pixel logic, so boundary floods are
// self-supporting and slip through).
func TestAQFBeatsBaselineOnFrameAttack(t *testing.T) {
	cfg := dvs.DefaultGestureConfig()
	s := dvs.GenerateGesture(4, cfg, rng.New(3))
	// Synthesize a frame attack directly (avoid the attack package
	// import cycle in tests): both polarities on the border each 20 ms.
	adv := s.Clone()
	for ti := 0; ti < 80; ti++ {
		tm := float64(ti) * 20
		for x := 0; x < adv.W; x++ {
			adv.Events = append(adv.Events,
				dvs.Event{X: x, Y: 0, P: 1, T: tm}, dvs.Event{X: x, Y: 0, P: -1, T: tm},
				dvs.Event{X: x, Y: adv.H - 1, P: 1, T: tm}, dvs.Event{X: x, Y: adv.H - 1, P: -1, T: tm})
		}
	}
	adv.Sort()
	injected := len(adv.Events) - len(s.Events)

	borderCount := func(st *dvs.Stream) int {
		n := 0
		for _, e := range st.Events {
			if e.Y == 0 || e.Y == st.H-1 {
				n++
			}
		}
		return n
	}
	aqfOut := AQF(adv, DefaultAQFParams(0.015))
	bafOut := NewBackgroundActivityFilter().Filter(adv)
	aqfLeft := borderCount(aqfOut)
	bafLeft := borderCount(bafOut)
	if aqfLeft >= bafLeft {
		t.Fatalf("AQF left %d border events, baseline %d (of %d injected)", aqfLeft, bafLeft, injected)
	}
	if aqfLeft > injected/10 {
		t.Fatalf("AQF left %d of %d frame events", aqfLeft, injected)
	}
}

func TestBackgroundActivityFilterSet(t *testing.T) {
	cfg := dvs.DefaultGestureConfig()
	cfg.Duration = 300
	set := dvs.GenerateGestureSet(4, cfg, 4)
	out := NewBackgroundActivityFilter().FilterSet(set)
	if out.Len() != set.Len() {
		t.Fatal("sample count changed")
	}
	for i := range out.Samples {
		if out.Samples[i].Label != set.Samples[i].Label {
			t.Fatal("labels scrambled")
		}
	}
}
