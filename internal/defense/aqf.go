// Package defense implements the paper's two defense methods:
// Algorithm 1 (precision-scaling robustness search, search.go) and
// Algorithm 2 (approximate quantization-aware filtering, this file).
package defense

import (
	"math"

	"repro/internal/dvs"
	"repro/internal/tensor"
)

// AQFParams are Algorithm 2's constants. The paper fixes s=2, T1=5,
// T2=50 (Line 2) and passes the quantization step qt per configuration
// (Table II uses 0.015, 0.01 and 0 seconds).
type AQFParams struct {
	S  int     // spatial neighbourhood radius (pixels)
	T1 int     // activity threshold (hot-pixel run length / support count)
	T2 float64 // temporal correlation window (ms)
	Qt float64 // timestamp quantization step (seconds; 0 = no quantization)

	// Support is the minimum number of neighbourhood events within the
	// last T2 ms for an event to count as correlated; 0 selects the
	// default (2).
	Support int
}

// DefaultAQFParams returns the paper's constants with quantization step
// qt (in seconds, as Table II lists it).
func DefaultAQFParams(qt float64) AQFParams {
	return AQFParams{S: 2, T1: 5, T2: 50, Qt: qt, Support: 2}
}

// AQF removes uncorrelated (adversarial) events from a stream, returning
// a filtered copy. It implements the published Algorithm 2's evident
// intent (the pseudocode overloads its M map as both a timestamp store
// and a flag store; see DESIGN.md "Algorithm notes"):
//
//  1. Timestamps are quantized to step qt (Line 4).
//  2. Polarity-consistency ("quantization-aware") check: a pixel cannot
//     physically emit both polarities at the same (quantized) instant;
//     such pairs are sensor-impossible artifacts — the Frame attack's
//     signature — and are dropped.
//  3. Spatio-temporal correlation (Lines 5-12, 18-20): each event writes
//     its timestamp into the (2s+1)² neighbourhood activity map,
//     excluding its own pixel; an event is kept only if its own pixel
//     accumulated at least `Support` neighbourhood events within the
//     last T2 ms. Gesture events ride dense moving edges and pass;
//     isolated adversarial events do not. Events within the first T2 ms
//     of the recording pass unconditionally (the published M is
//     zero-initialized, which has exactly this effect).
//  4. Hot-pixel flag (Lines 13-17): a pixel active in more than T1
//     consecutive T2/2-windows fires continuously — defective by DVS
//     standards, and the signature of boundary flooding — and its
//     events are removed from the moment the run crosses the threshold
//     (including the crossing event itself). The rule is causal, as the
//     single-pass pseudocode is: events emitted before the pixel turned
//     hot are not retracted, which is what lets IncrementalAQF serve
//     the identical filter online with bounded memory.
//
// The input must be time-sorted (dvs.Stream.Sort order); every stream
// the loaders and generators produce is. The input is not modified.
func AQF(s *dvs.Stream, p AQFParams) *dvs.Stream {
	out := &dvs.Stream{W: s.W, H: s.H, Duration: s.Duration}
	if len(s.Events) == 0 {
		return out
	}
	support := p.Support
	if support <= 0 {
		support = 2
	}

	events := make([]dvs.Event, len(s.Events))
	copy(events, s.Events)

	// Step 1: quantize timestamps (qt is in seconds; timestamps in ms).
	qtMS := p.Qt * 1000
	if qtMS > 0 {
		for i := range events {
			events[i].T = math.Round(events[i].T/qtMS) * qtMS
			if events[i].T > s.Duration {
				events[i].T = s.Duration
			}
		}
	}

	// Step 2: drop same-pixel same-instant opposite-polarity pairs.
	type pxt struct {
		idx int
		t   float64
	}
	seenPos := make(map[pxt]int) // -> count of +1 events at (pixel, t)
	seenNeg := make(map[pxt]int)
	for _, e := range events {
		k := pxt{e.Y*s.W + e.X, e.T}
		if e.P > 0 {
			seenPos[k]++
		} else {
			seenNeg[k]++
		}
	}
	impossible := func(e dvs.Event) bool {
		k := pxt{e.Y*s.W + e.X, e.T}
		return seenPos[k] > 0 && seenNeg[k] > 0
	}

	// Step 4 bookkeeping: hot-pixel runs, updated inline in the scan
	// below so the flag is causal — an event sees the run state up to
	// and including itself, never the pixel's future.
	winLen := p.T2 / 2
	if winLen <= 0 {
		winLen = 25
	}
	lastWin := make([]int, s.W*s.H)
	runLen := make([]int, s.W*s.H)
	flag := make([]bool, s.W*s.H)
	for i := range lastWin {
		lastWin[i] = -2
	}

	// Step 3: neighbourhood-support filter. recent[idx] holds the
	// timestamps of neighbourhood events at pixel idx, pruned to the
	// trailing T2 window as the (time-sorted) scan advances.
	recent := make([][]float64, s.W*s.H)
	countRecent := func(idx int, t float64) int {
		buf := recent[idx]
		// Drop expired entries in place; only *strictly earlier*
		// neighbours count as support. A moving edge always has
		// earlier neighbours; a batch of simultaneous injected events
		// does not — simultaneity cannot vouch for itself.
		keep := buf[:0]
		n := 0
		for _, ts := range buf {
			if t-ts <= p.T2 {
				keep = append(keep, ts)
				if ts < t {
					n++
				}
			}
		}
		recent[idx] = keep
		return n
	}

	for _, e := range events {
		idx := e.Y*s.W + e.X
		// Hot-pixel run bookkeeping first: the event that pushes a run
		// past T1 is itself dropped, along with everything after it.
		win := int(e.T / winLen)
		switch {
		case win == lastWin[idx]:
			// same window: no run-length change
		case win == lastWin[idx]+1:
			runLen[idx]++
			lastWin[idx] = win
		default:
			runLen[idx] = 1
			lastWin[idx] = win
		}
		if runLen[idx] > p.T1 {
			flag[idx] = true
		}
		keep := !flag[idx] && !impossible(e)
		if keep && e.T > p.T2 {
			keep = countRecent(idx, e.T) >= support
		}
		// Write the neighbourhood map after the test: an event never
		// vouches for itself (Lines 7-8 exclude the centre pixel).
		for dy := -p.S; dy <= p.S; dy++ {
			for dx := -p.S; dx <= p.S; dx++ {
				if dx == 0 && dy == 0 {
					continue
				}
				x, y := e.X+dx, e.Y+dy
				if x < 0 || x >= s.W || y < 0 || y >= s.H {
					continue
				}
				recent[y*s.W+x] = append(recent[y*s.W+x], e.T)
			}
		}
		if keep {
			out.Events = append(out.Events, e)
		}
	}
	return out
}

// FilterSet runs AQF over a batch of streams concurrently on the shared
// tensor worker pool, returning the filtered copies in order. Streams
// are filtered independently (AQF keeps no cross-stream state), so the
// result is bit-identical to filtering serially, at any worker count.
func FilterSet(streams []*dvs.Stream, p AQFParams) []*dvs.Stream {
	out := make([]*dvs.Stream, len(streams))
	tensor.ParallelFor(len(streams), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = AQF(streams[i], p)
		}
	})
	return out
}

// AQFSet filters every stream of a gesture set through FilterSet,
// returning a new set.
func AQFSet(set *dvs.Set, p AQFParams) *dvs.Set {
	streams := make([]*dvs.Stream, len(set.Samples))
	for i := range set.Samples {
		streams[i] = set.Samples[i].Stream
	}
	out := &dvs.Set{Classes: set.Classes, W: set.W, H: set.H, Samples: make([]dvs.Sample, len(set.Samples))}
	for i, f := range FilterSet(streams, p) {
		out.Samples[i] = dvs.Sample{Stream: f, Label: set.Samples[i].Label}
	}
	return out
}
