package defense

import (
	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/rng"
	"repro/internal/snn"
	"repro/internal/tensor"
)

// AdversarialTrainOptions configures PGD adversarial training (Madry et
// al.) — an extension defense the paper leaves to future work. Each
// minibatch example is replaced, with probability Mix, by a PGD example
// crafted on the current model.
type AdversarialTrainOptions struct {
	Base snn.TrainOptions
	// Attack is the crafting attack template (its Eps is the training
	// budget).
	Attack *attack.Gradient
	// Mix is the fraction of samples replaced by adversarial versions
	// (0..1; 0.5 is the usual choice).
	Mix float64
}

// AdversarialTrain fits the network with on-the-fly adversarial
// examples. It is substantially slower than clean training (one PGD run
// per selected sample per epoch), but both halves of the loop now ride
// the training arena: PerturbBatch reuses one crafting clone + arena
// per chunk and snn.Train one arena per epoch, so the steady state
// allocates only the adversarial copies themselves.
func AdversarialTrain(n *snn.Network, train *dataset.Set, opt AdversarialTrainOptions) {
	if opt.Mix <= 0 || opt.Attack == nil {
		snn.Train(n, train, opt.Base)
		return
	}
	r := rng.New(opt.Base.Seed + 77)
	const chunk = 32
	picked := make([]int, 0, train.Len())
	imgs := make([]*tensor.Tensor, 0, chunk)
	labels := make([]int, 0, chunk)
	for epoch := 0; epoch < opt.Base.Epochs; epoch++ {
		// Craft a fresh adversarial copy of a subset against the
		// *current* model (batched), then take one clean+adversarial
		// epoch.
		mixed := train.Clone()
		picked = picked[:0]
		for i := range mixed.Samples {
			if r.Bernoulli(opt.Mix) {
				picked = append(picked, i)
			}
		}
		for b := 0; b < len(picked); b += chunk {
			end := b + chunk
			if end > len(picked) {
				end = len(picked)
			}
			imgs, labels = imgs[:0], labels[:0]
			for _, i := range picked[b:end] {
				imgs = append(imgs, mixed.Samples[i].Image)
				labels = append(labels, mixed.Samples[i].Label)
			}
			for k, adv := range opt.Attack.PerturbBatch(n, imgs, labels, r) {
				mixed.Samples[picked[b+k]].Image = adv
			}
		}
		one := opt.Base
		one.Epochs = 1
		one.Seed = opt.Base.Seed + uint64(epoch)*13
		snn.Train(n, mixed, one)
	}
}
