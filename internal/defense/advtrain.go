package defense

import (
	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/rng"
	"repro/internal/snn"
	"repro/internal/tensor"
)

// AdversarialTrainOptions configures PGD adversarial training (Madry et
// al.) — an extension defense the paper leaves to future work. Each
// minibatch example is replaced, with probability Mix, by a PGD example
// crafted on the current model.
type AdversarialTrainOptions struct {
	Base snn.TrainOptions
	// Attack is the crafting attack template (its Eps is the training
	// budget).
	Attack *attack.Gradient
	// Mix is the fraction of samples replaced by adversarial versions
	// (0..1; 0.5 is the usual choice).
	Mix float64
}

// AdversarialTrain fits the network with on-the-fly adversarial
// examples. It is substantially slower than clean training (one PGD run
// per selected sample per epoch).
func AdversarialTrain(n *snn.Network, train *dataset.Set, opt AdversarialTrainOptions) {
	if opt.Mix <= 0 || opt.Attack == nil {
		snn.Train(n, train, opt.Base)
		return
	}
	r := rng.New(opt.Base.Seed + 77)
	for epoch := 0; epoch < opt.Base.Epochs; epoch++ {
		// Craft a fresh adversarial copy of a subset against the
		// *current* model (batched), then take one clean+adversarial
		// epoch.
		mixed := train.Clone()
		var picked []int
		for i := range mixed.Samples {
			if r.Bernoulli(opt.Mix) {
				picked = append(picked, i)
			}
		}
		const chunk = 32
		for b := 0; b < len(picked); b += chunk {
			end := b + chunk
			if end > len(picked) {
				end = len(picked)
			}
			imgs := make([]*tensor.Tensor, end-b)
			labels := make([]int, end-b)
			for k, i := range picked[b:end] {
				imgs[k] = mixed.Samples[i].Image
				labels[k] = mixed.Samples[i].Label
			}
			for k, adv := range opt.Attack.PerturbBatch(n, imgs, labels, r) {
				mixed.Samples[picked[b+k]].Image = adv
			}
		}
		one := opt.Base
		one.Epochs = 1
		one.Seed = opt.Base.Seed + uint64(epoch)*13
		snn.Train(n, mixed, one)
	}
}
