package defense

import (
	"fmt"
	"math"

	"repro/internal/dvs"
)

// IncrementalAQF is Algorithm 2 as an online, chunk-fed filter: feed a
// time-sorted event flow through Push in pieces of any size (reader
// chunks, windows — the cut points are irrelevant) and the concatenated
// output is bit-identical to running the whole-stream AQF over the same
// flow. This is the cross-window form the streaming pipeline defaults
// to: unlike the per-window Filter adapter, correlation state and
// hot-pixel runs carry across window boundaries, so only the first
// T2 ms of the *recording* pass unconditionally — not the first T2 ms
// of every window (see the Filter godoc for that approximation).
//
// State is bounded however long the flow runs:
//
//   - Hot-pixel runs and flags are O(W×H), constant per recording.
//   - The neighbourhood correlation map only ever needs the trailing
//     T2 ms; a sweep every T2 of stream time evicts older timestamps,
//     so live entries are bounded by the event rate, not the duration.
//   - Events sharing one quantized instant are held back until the
//     instant advances — the polarity-consistency rule must see the
//     whole instant before any of it may be emitted — so the pending
//     buffer is bounded by the densest instant, and output lags input
//     by at most one quantization step.
//
// An IncrementalAQF is not safe for concurrent use; Reset recycles it
// for the next recording without reallocating.
type IncrementalAQF struct {
	w, h     int
	duration float64
	p        AQFParams
	support  int
	qtMS     float64
	winLen   float64

	// Hot-pixel state (step 4), carried for the whole recording.
	lastWin []int
	runLen  []int
	flag    []bool

	// Neighbourhood correlation map (step 3): recent[idx] holds the
	// timestamps neighbouring events wrote at pixel idx, time-ordered,
	// pruned on access like AQF's and swept past T2 periodically.
	recent  [][]float64
	active  []int  // pixels with a non-empty recent list
	inAct   []bool // membership in active
	sweepAt float64

	// The pending quantized-instant group (step 2).
	pend     []pendingEvent
	pendT    float64
	havePend bool
	pendPol  map[int]uint8 // pixel -> polarity bits seen at pendT

	out []dvs.Event // emission buffer, recycled across Push/Flush calls
}

// pendingEvent is one event awaiting its instant's polarity verdict;
// keep records the outcome of every other rule, decided on arrival.
type pendingEvent struct {
	e    dvs.Event
	keep bool
}

// NewIncrementalAQF builds an online AQF for a w×h sensor recording of
// the given duration (ms). The parameters follow AQFParams; the zero
// Support defaults to 2 exactly as AQF does.
func NewIncrementalAQF(w, h int, duration float64, p AQFParams) (*IncrementalAQF, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("defense: invalid sensor size %dx%d", w, h)
	}
	if math.IsNaN(duration) || math.IsInf(duration, 0) || duration < 0 {
		return nil, fmt.Errorf("defense: invalid duration %v", duration)
	}
	f := &IncrementalAQF{
		w: w, h: h, p: p,
		lastWin: make([]int, w*h),
		runLen:  make([]int, w*h),
		flag:    make([]bool, w*h),
		recent:  make([][]float64, w*h),
		inAct:   make([]bool, w*h),
		pendPol: make(map[int]uint8),
	}
	f.support = p.Support
	if f.support <= 0 {
		f.support = 2
	}
	f.qtMS = p.Qt * 1000
	f.winLen = p.T2 / 2
	if f.winLen <= 0 {
		f.winLen = 25
	}
	f.Reset(duration)
	return f, nil
}

// Reset clears all filter state for a new recording of the given
// duration, keeping every buffer so steady-state serving reallocates
// nothing per recording.
func (f *IncrementalAQF) Reset(duration float64) {
	f.duration = duration
	for i := range f.lastWin {
		f.lastWin[i] = -2
	}
	for i := range f.runLen {
		f.runLen[i] = 0
	}
	for i := range f.flag {
		f.flag[i] = false
	}
	for _, idx := range f.active {
		f.recent[idx] = f.recent[idx][:0]
		f.inAct[idx] = false
	}
	f.active = f.active[:0]
	f.sweepAt = 0
	f.resetPending()
	f.pend = f.pend[:0]
	f.havePend = false
	f.out = f.out[:0]
}

// resetPending clears the instant group's polarity map via its own
// members (the map never holds keys outside the group).
func (f *IncrementalAQF) resetPending() {
	for _, pe := range f.pend {
		delete(f.pendPol, pe.e.Y*f.w+pe.e.X)
	}
}

// Push feeds the next chunk of the time-sorted flow through the filter
// and returns the events whose verdict is now final, in stream order
// with quantized timestamps — exactly the events whole-stream AQF would
// emit for this span. The returned slice is the filter's internal
// buffer, valid until the next Push or Flush; callers that keep it copy
// it. Events must arrive sorted and on-sensor, or Push errors.
func (f *IncrementalAQF) Push(events []dvs.Event) ([]dvs.Event, error) {
	f.out = f.out[:0]
	for _, e := range events {
		if e.X < 0 || e.X >= f.w || e.Y < 0 || e.Y >= f.h {
			return nil, fmt.Errorf("defense: event at (%d,%d) off the %dx%d sensor", e.X, e.Y, f.w, f.h)
		}
		// Step 1: quantize, clamping into the recording window exactly
		// as AQF does. Rounding is monotone, so sorted input stays
		// sorted after quantization.
		if f.qtMS > 0 {
			e.T = math.Round(e.T/f.qtMS) * f.qtMS
			if e.T > f.duration {
				e.T = f.duration
			}
		}
		if f.havePend && e.T < f.pendT {
			return nil, fmt.Errorf("defense: event at %gms after instant %gms: input out of order", e.T, f.pendT)
		}
		if !f.havePend || e.T > f.pendT {
			f.resolve()
			f.pendT, f.havePend = e.T, true
			f.maybeSweep(e.T)
		}
		idx := e.Y*f.w + e.X

		// Step 4: hot-pixel run bookkeeping, identical to AQF's causal
		// scan — the event crossing T1 is itself dropped.
		win := int(e.T / f.winLen)
		switch {
		case win == f.lastWin[idx]:
			// same window: no run-length change
		case win == f.lastWin[idx]+1:
			f.runLen[idx]++
			f.lastWin[idx] = win
		default:
			f.runLen[idx] = 1
			f.lastWin[idx] = win
		}
		if f.runLen[idx] > f.p.T1 {
			f.flag[idx] = true
		}

		// Step 3: neighbourhood support. The polarity verdict (step 2)
		// is the only rule that needs the rest of the instant; every
		// other rule is decided here, on arrival.
		keep := !f.flag[idx]
		if keep && e.T > f.p.T2 {
			keep = f.countRecent(idx, e.T) >= f.support
		}
		bit := uint8(1)
		if e.P < 0 {
			bit = 2
		}
		f.pendPol[idx] |= bit

		// Write the neighbourhood map after the test: an event never
		// vouches for itself.
		for dy := -f.p.S; dy <= f.p.S; dy++ {
			for dx := -f.p.S; dx <= f.p.S; dx++ {
				if dx == 0 && dy == 0 {
					continue
				}
				x, y := e.X+dx, e.Y+dy
				if x < 0 || x >= f.w || y < 0 || y >= f.h {
					continue
				}
				n := y*f.w + x
				f.recent[n] = append(f.recent[n], e.T)
				if !f.inAct[n] {
					f.inAct[n] = true
					f.active = append(f.active, n)
				}
			}
		}
		f.pend = append(f.pend, pendingEvent{e, keep})
	}
	return f.out, nil
}

// Flush resolves the final quantized instant and returns its surviving
// events; the flow is complete. Like Push's result, the slice is valid
// until the next Push or Flush. Call Reset before reusing the filter.
func (f *IncrementalAQF) Flush() []dvs.Event {
	f.out = f.out[:0]
	f.resolve()
	return f.out
}

// resolve settles the pending instant: events that passed the causal
// rules survive unless their pixel emitted both polarities at this
// instant (step 2's sensor-impossibility), and survivors append to out
// in arrival order.
func (f *IncrementalAQF) resolve() {
	for _, pe := range f.pend {
		if pe.keep && f.pendPol[pe.e.Y*f.w+pe.e.X] != 3 {
			f.out = append(f.out, pe.e)
		}
	}
	f.resetPending()
	f.pend = f.pend[:0]
}

// countRecent counts pixel idx's strictly-earlier neighbourhood events
// within the trailing T2 window, compacting expired entries in place —
// the same accounting as AQF's countRecent, so the support verdicts
// match bit for bit.
func (f *IncrementalAQF) countRecent(idx int, t float64) int {
	buf := f.recent[idx]
	keep := buf[:0]
	n := 0
	for _, ts := range buf {
		if t-ts <= f.p.T2 {
			keep = append(keep, ts)
			if ts < t {
				n++
			}
		}
	}
	f.recent[idx] = keep
	return n
}

// maybeSweep evicts correlation entries older than T2 once per T2 of
// stream time. Evicted entries could never count again (support only
// looks back T2 from a non-decreasing clock), so the sweep is
// semantically invisible; it exists to bound memory on pixels the scan
// never touches again.
func (f *IncrementalAQF) maybeSweep(t float64) {
	if t-f.sweepAt <= f.p.T2 {
		return
	}
	f.sweepAt = t
	live := f.active[:0]
	for _, idx := range f.active {
		buf := f.recent[idx]
		keep := buf[:0]
		for _, ts := range buf {
			if t-ts <= f.p.T2 {
				keep = append(keep, ts)
			}
		}
		f.recent[idx] = keep
		if len(keep) == 0 {
			f.inAct[idx] = false
			continue
		}
		live = append(live, idx)
	}
	f.active = live
}

// liveState reports the filter's live correlation entries and pending
// events — the quantities the bounded-memory property test pins.
func (f *IncrementalAQF) liveState() (entries, pending int) {
	for _, idx := range f.active {
		entries += len(f.recent[idx])
	}
	return entries, len(f.pend)
}
