package defense

import (
	"testing"

	"repro/internal/dvs"
	"repro/internal/rng"
)

// FuzzIncrementalAQF drives the online filter over randomized sorted
// flows cut at fuzzed boundaries and holds it to the whole-stream AQF
// oracle: same events, same order, bit for bit. The fuzzer steers the
// sensor size, event density, burstiness (repeated timestamps hit the
// polarity rule), quantization step and the chunking itself.
func FuzzIncrementalAQF(f *testing.F) {
	f.Add(uint64(1), uint16(200), uint8(16), uint8(3), uint8(13))
	f.Add(uint64(7), uint16(900), uint8(8), uint8(0), uint8(1))
	f.Add(uint64(42), uint16(50), uint8(32), uint8(2), uint8(255))
	f.Add(uint64(9), uint16(1500), uint8(4), uint8(1), uint8(40))
	f.Fuzz(func(t *testing.T, seed uint64, n uint16, side, qtSel, chunk uint8) {
		w := int(side%32) + 2
		h := int(side/8%32) + 2
		r := rng.New(seed)
		dur := 200 + r.Float64()*1800
		s := &dvs.Stream{W: w, H: h, Duration: dur}
		tms := 0.0
		for i := 0; i < int(n); i++ {
			// Bursty clock: ~1/4 of events share the previous timestamp.
			if !r.Bernoulli(0.25) {
				tms += r.Float64() * 4
			}
			if tms > dur {
				break
			}
			p := int8(1)
			if r.Bernoulli(0.5) {
				p = -1
			}
			s.Events = append(s.Events, dvs.Event{X: r.Intn(w), Y: r.Intn(h), P: p, T: tms})
		}
		qt := []float64{0, 0.01, 0.015, 0.1}[qtSel%4]
		p := DefaultAQFParams(qt)
		want := AQF(s, p).Events

		inc, err := NewIncrementalAQF(w, h, dur, p)
		if err != nil {
			t.Fatal(err)
		}
		var got []dvs.Event
		step := int(chunk)%97 + 1
		for lo := 0; lo < len(s.Events); lo += step {
			hi := lo + step
			if hi > len(s.Events) {
				hi = len(s.Events)
			}
			out, err := inc.Push(s.Events[lo:hi])
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, out...)
		}
		got = append(got, inc.Flush()...)

		if len(got) != len(want) {
			t.Fatalf("incremental kept %d events, AQF kept %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("event %d = %+v, want %+v", i, got[i], want[i])
			}
		}
	})
}
