package defense

import (
	"repro/internal/dvs"
	"repro/internal/tensor"
)

// BackgroundActivityFilter is the classic DVS denoiser (Delbruck's
// background-activity filter, the baseline the R-SNN line of work builds
// on): an event is kept only if any pixel in its 8-neighbourhood fired
// within the last WindowMS milliseconds. It has no quantization step, no
// hot-pixel logic and no support count — AQF's ablation baseline.
type BackgroundActivityFilter struct {
	WindowMS float64
}

// NewBackgroundActivityFilter returns the filter with the conventional
// 50 ms window.
func NewBackgroundActivityFilter() *BackgroundActivityFilter {
	return &BackgroundActivityFilter{WindowMS: 50}
}

// Filter returns a filtered copy of the stream.
func (f *BackgroundActivityFilter) Filter(s *dvs.Stream) *dvs.Stream {
	out := &dvs.Stream{W: s.W, H: s.H, Duration: s.Duration}
	last := make([]float64, s.W*s.H)
	for i := range last {
		last[i] = -f.WindowMS - 1
	}
	for _, e := range s.Events {
		idx := e.Y*s.W + e.X
		if e.T-last[idx] <= f.WindowMS {
			out.Events = append(out.Events, e)
		}
		// Refresh the neighbourhood (8-connected), not the pixel
		// itself: an isolated pixel cannot keep itself alive.
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 {
					continue
				}
				x, y := e.X+dx, e.Y+dy
				if x < 0 || x >= s.W || y < 0 || y >= s.H {
					continue
				}
				n := y*s.W + x
				if e.T > last[n] {
					last[n] = e.T
				}
			}
		}
	}
	return out
}

// FilterSet applies the filter to every stream of a set, fanning the
// per-stream work out over the shared tensor worker pool like the AQF
// FilterSet; streams filter independently, so the result is identical
// at any worker count.
func (f *BackgroundActivityFilter) FilterSet(set *dvs.Set) *dvs.Set {
	out := &dvs.Set{Classes: set.Classes, W: set.W, H: set.H, Samples: make([]dvs.Sample, len(set.Samples))}
	tensor.ParallelFor(len(set.Samples), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.Samples[i] = dvs.Sample{Stream: f.Filter(set.Samples[i].Stream), Label: set.Samples[i].Label}
		}
	})
	return out
}
