package defense

import (
	"testing"

	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/encoding"
	"repro/internal/rng"
	"repro/internal/snn"
)

func advTrainFixture() (*dataset.Set, *dataset.Set) {
	dcfg := dataset.DefaultSynthConfig()
	dcfg.H, dcfg.W = 12, 12
	return dataset.GenerateSynth(300, dcfg, 31), dataset.GenerateSynth(80, dcfg, 32)
}

func TestAdversarialTrainImprovesRobustness(t *testing.T) {
	train, test := advTrainFixture()
	base := snn.TrainOptions{
		Epochs: 4, BatchSize: 16,
		Optimizer: snn.NewAdam(2e-3),
		Encoder:   encoding.Direct{},
		Seed:      33,
	}
	mkNet := func(seed uint64) *snn.Network {
		return snn.DenseNet(snn.DefaultConfig(0.5, 6), 144, 64, 10, rng.New(seed))
	}

	clean := mkNet(34)
	snn.Train(clean, train, base)

	robust := mkNet(34)
	atk := attack.PGD(0.15)
	atk.Encoder = encoding.Direct{}
	advBase := base
	advBase.Optimizer = snn.NewAdam(2e-3) // fresh optimizer state
	AdversarialTrain(robust, train, AdversarialTrainOptions{
		Base: advBase, Attack: atk, Mix: 0.5,
	})

	// White-box PGD at the training budget: the adversarially trained
	// model must hold up better.
	evalUnder := func(net *snn.Network) float64 {
		adv := test.Clone()
		r := rng.New(35)
		a := attack.PGD(0.15)
		a.Encoder = encoding.Direct{}
		for i := range adv.Samples {
			s := &adv.Samples[i]
			s.Image = a.Perturb(net, s.Image, s.Label, r)
		}
		return snn.Accuracy(net, adv, encoding.Direct{}, 36)
	}
	cleanRob := evalUnder(clean)
	advRob := evalUnder(robust)
	if advRob <= cleanRob {
		t.Fatalf("adversarial training did not help: %.2f vs %.2f", advRob, cleanRob)
	}
	// And it must not destroy clean accuracy.
	ca := snn.Accuracy(robust, test, encoding.Direct{}, 36)
	if ca < 0.4 {
		t.Fatalf("adversarially trained clean accuracy %.2f collapsed", ca)
	}
}

func TestAdversarialTrainFallsBackToClean(t *testing.T) {
	train, test := advTrainFixture()
	net := snn.DenseNet(snn.DefaultConfig(0.5, 6), 144, 64, 10, rng.New(37))
	AdversarialTrain(net, train, AdversarialTrainOptions{
		Base: snn.TrainOptions{
			Epochs: 3, BatchSize: 16,
			Optimizer: snn.NewAdam(2e-3),
			Encoder:   encoding.Direct{},
			Seed:      38,
		},
		// No attack: must behave exactly like snn.Train.
	})
	if acc := snn.Accuracy(net, test, encoding.Direct{}, 39); acc < 0.5 {
		t.Fatalf("fallback training accuracy %.2f", acc)
	}
}
