package defense

import (
	"sort"
	"testing"

	"repro/internal/dvs"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// attackedStreams builds gesture streams polluted with frame-style
// boundary floods and isolated noise, so AQF has real work to do.
func attackedStreams(n int, seed uint64) []*dvs.Stream {
	cfg := dvs.DefaultGestureConfig()
	out := make([]*dvs.Stream, n)
	r := rng.New(seed)
	for i := range out {
		s := dvs.GenerateGesture(i%dvs.GestureClasses, cfg, rng.New(seed+uint64(i)))
		// Boundary flood: both polarities at the same quantized instants.
		for b := 0; b < 8; b++ {
			tm := (float64(b) + 0.5) * s.Duration / 8
			for x := 0; x < s.W; x++ {
				s.Events = append(s.Events,
					dvs.Event{X: x, Y: 0, P: 1, T: tm},
					dvs.Event{X: x, Y: 0, P: -1, T: tm})
			}
		}
		// Isolated noise events.
		for k := 0; k < 40; k++ {
			s.Events = append(s.Events, dvs.Event{
				X: r.Intn(s.W), Y: r.Intn(s.H), P: 1,
				T: r.Float64() * s.Duration,
			})
		}
		s.Sort()
		out[i] = s
	}
	return out
}

func eventsEqual(a, b *dvs.Stream) bool {
	if a.W != b.W || a.H != b.H || a.Duration != b.Duration || len(a.Events) != len(b.Events) {
		return false
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			return false
		}
	}
	return true
}

func canonical(s *dvs.Stream) []dvs.Event {
	ev := append([]dvs.Event(nil), s.Events...)
	sort.Slice(ev, func(i, j int) bool {
		a, b := ev[i], ev[j]
		if a.T != b.T {
			return a.T < b.T
		}
		if a.Y != b.Y {
			return a.Y < b.Y
		}
		if a.X != b.X {
			return a.X < b.X
		}
		return a.P < b.P
	})
	return ev
}

// TestFilterSetMatchesSerialAQF pins the batch API to the serial
// reference: one worker must reproduce per-stream AQF bit-identically,
// and N workers the same events in some order.
func TestFilterSetMatchesSerialAQF(t *testing.T) {
	defer tensor.SetWorkers(0)
	streams := attackedStreams(6, 51)
	p := DefaultAQFParams(0.015)
	want := make([]*dvs.Stream, len(streams))
	for i, s := range streams {
		want[i] = AQF(s, p)
	}

	tensor.SetWorkers(1)
	got := FilterSet(streams, p)
	for i := range want {
		if !eventsEqual(want[i], got[i]) {
			t.Fatalf("stream %d: single-worker FilterSet differs from serial AQF", i)
		}
	}

	for _, w := range []int{3, 8} {
		tensor.SetWorkers(w)
		got := FilterSet(streams, p)
		for i := range want {
			wa, ga := canonical(want[i]), canonical(got[i])
			if len(wa) != len(ga) {
				t.Fatalf("stream %d: %d workers kept %d events, want %d", i, w, len(ga), len(wa))
			}
			for j := range wa {
				if wa[j] != ga[j] {
					t.Fatalf("stream %d event %d: %d workers changed the filtered events", i, j, w)
				}
			}
		}
	}
}

// TestFilterSetActuallyFilters guards against the vacuous case: the
// attacked streams must lose events through AQF, or the equivalence
// test above proves nothing.
func TestFilterSetActuallyFilters(t *testing.T) {
	streams := attackedStreams(2, 52)
	for i, f := range FilterSet(streams, DefaultAQFParams(0.015)) {
		if len(f.Events) == 0 || len(f.Events) >= len(streams[i].Events) {
			t.Fatalf("stream %d: filtered %d of %d events — not a meaningful filter run",
				i, len(streams[i].Events)-len(f.Events), len(streams[i].Events))
		}
	}
}

// TestAQFSetMatchesFilterSet: the set-level wrapper must preserve
// labels and metadata and agree with the stream-level API.
func TestAQFSetMatchesFilterSet(t *testing.T) {
	streams := attackedStreams(4, 53)
	set := &dvs.Set{Classes: dvs.GestureClasses, W: streams[0].W, H: streams[0].H}
	for i, s := range streams {
		set.Samples = append(set.Samples, dvs.Sample{Stream: s, Label: i % 3})
	}
	p := DefaultAQFParams(0.01)
	want := FilterSet(streams, p)
	got := AQFSet(set, p)
	if got.Classes != set.Classes || got.W != set.W || got.H != set.H || got.Len() != set.Len() {
		t.Fatal("AQFSet mangled set metadata")
	}
	for i := range want {
		if got.Samples[i].Label != set.Samples[i].Label {
			t.Fatalf("sample %d: label changed", i)
		}
		if !eventsEqual(want[i], got.Samples[i].Stream) {
			t.Fatalf("sample %d: AQFSet differs from FilterSet", i)
		}
	}
}

// TestBAFFilterSetWorkerInvariance: the background-activity baseline
// filter shares the pool fan-out and must be worker-count invariant.
func TestBAFFilterSetWorkerInvariance(t *testing.T) {
	defer tensor.SetWorkers(0)
	streams := attackedStreams(5, 54)
	set := &dvs.Set{Classes: dvs.GestureClasses, W: streams[0].W, H: streams[0].H}
	for i, s := range streams {
		set.Samples = append(set.Samples, dvs.Sample{Stream: s, Label: i})
	}
	baf := NewBackgroundActivityFilter()
	tensor.SetWorkers(1)
	base := baf.FilterSet(set)
	for _, w := range []int{4, 9} {
		tensor.SetWorkers(w)
		got := baf.FilterSet(set)
		for i := range base.Samples {
			if !eventsEqual(base.Samples[i].Stream, got.Samples[i].Stream) {
				t.Fatalf("sample %d: %d workers changed BAF output", i, w)
			}
		}
	}
}
