package hw

import (
	"strings"
	"testing"

	"repro/internal/approx"
	"repro/internal/encoding"
	"repro/internal/quant"
	"repro/internal/rng"
	"repro/internal/snn"
	"repro/internal/tensor"
)

// calibNet returns a small calibrated network and its workload.
func calibNet(t *testing.T, seed uint64) (*snn.Network, [][]*tensor.Tensor) {
	t.Helper()
	r := rng.New(seed)
	cfg := snn.DefaultConfig(0.3, 6)
	net := snn.MNISTNet(cfg, 1, 12, 12, true, r)
	img := tensor.New(1, 12, 12)
	er := rng.New(seed + 1)
	for i := range img.Data {
		img.Data[i] = er.Float32()
	}
	workload := [][]*tensor.Tensor{encoding.Direct{}.Encode(img, cfg.Steps, nil)}
	snn.Calibrate(net, workload)
	return net, workload
}

func TestMapRespectsCapacity(t *testing.T) {
	net, _ := calibNet(t, 1)
	spec := DefaultCoreSpec()
	spec.MaxNeurons = 100
	spec.MaxSynapses = 5000
	p, err := Map(net, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Cores) == 0 {
		t.Fatal("no cores allocated")
	}
	for i, c := range p.Cores {
		if c.Neurons > spec.MaxNeurons {
			t.Fatalf("core %d has %d neurons > %d", i, c.Neurons, spec.MaxNeurons)
		}
		if c.Synapses > spec.MaxSynapses {
			t.Fatalf("core %d has %d synapses > %d", i, c.Synapses, spec.MaxSynapses)
		}
		if c.X < 0 || c.X >= p.MeshW || c.Y < 0 || c.Y >= p.MeshH {
			t.Fatalf("core %d at (%d,%d) off the %dx%d mesh", i, c.X, c.Y, p.MeshW, p.MeshH)
		}
	}
}

func TestMapCountsAllNeurons(t *testing.T) {
	net, _ := calibNet(t, 2)
	p, err := Map(net, DefaultCoreSpec())
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range p.Cores {
		total += c.Neurons
	}
	// Expected: sum of output units of all weighted layers.
	want := 0
	for _, l := range net.Layers {
		switch v := l.(type) {
		case *snn.Conv2D:
			want += v.OutC * v.Geom.OutH() * v.Geom.OutW()
		case *snn.Dense:
			want += v.Out
		}
	}
	if total != want {
		t.Fatalf("placed %d neurons, want %d", total, want)
	}
}

func TestMapRejectsOversizedFanIn(t *testing.T) {
	net, _ := calibNet(t, 3)
	spec := DefaultCoreSpec()
	spec.MaxSynapses = 10 // conv fan-in 9 fits, dense fan-in won't
	if _, err := Map(net, spec); err == nil {
		t.Fatal("expected fan-in capacity error")
	}
}

func TestApproximationShrinksDeployment(t *testing.T) {
	net, workload := calibNet(t, 4)
	spec := DefaultCoreSpec()
	spec.MaxNeurons = 64
	spec.MaxSynapses = 3000

	pAcc, err := Map(net, spec)
	if err != nil {
		t.Fatal(err)
	}
	rAcc := pAcc.Analyze(net.Cfg.Steps)

	ax, rep := approx.Approximate(net, approx.Params{Level: 0.3, Scale: quant.FP32}, workload)
	if rep.TotalPrunedFraction() < 0.3 {
		t.Skipf("pruning too mild (%.2f) for a deployment contrast", rep.TotalPrunedFraction())
	}
	snn.Calibrate(ax, workload)
	pAx, err := Map(ax, spec)
	if err != nil {
		t.Fatal(err)
	}
	rAx := pAx.Analyze(ax.Cfg.Steps)

	if rAx.SynapsesUsed >= rAcc.SynapsesUsed {
		t.Fatalf("pruned network uses %d synapses vs accurate %d", rAx.SynapsesUsed, rAcc.SynapsesUsed)
	}
	if rAx.EnergyPerInferenceJ >= rAcc.EnergyPerInferenceJ {
		t.Fatalf("pruned network energy %v >= accurate %v", rAx.EnergyPerInferenceJ, rAcc.EnergyPerInferenceJ)
	}
	if rAx.CoresUsed > rAcc.CoresUsed {
		t.Fatalf("pruned network needs more cores (%d vs %d)", rAx.CoresUsed, rAcc.CoresUsed)
	}
}

func TestAnalyzeBasics(t *testing.T) {
	net, _ := calibNet(t, 5)
	p, err := Map(net, DefaultCoreSpec())
	if err != nil {
		t.Fatal(err)
	}
	r := p.Analyze(6)
	if r.CoresUsed != len(p.Cores) {
		t.Fatal("core count mismatch")
	}
	if r.SOPsPerStep < 0 || r.HopsPerStep < 0 || r.SpikesPerStep < 0 {
		t.Fatalf("negative rates: %+v", r)
	}
	if r.EnergyPerInferenceJ <= 0 || r.LatencyPerInferenceS <= 0 {
		t.Fatalf("non-positive cost: %+v", r)
	}
	if r.MeanCoreUtilization <= 0 || r.MeanCoreUtilization > 1 {
		t.Fatalf("utilization %v out of (0,1]", r.MeanCoreUtilization)
	}
	if !strings.Contains(r.String(), "cores=") {
		t.Fatal("report string malformed")
	}
}

func TestMoreStepsCostMore(t *testing.T) {
	net, _ := calibNet(t, 6)
	p, err := Map(net, DefaultCoreSpec())
	if err != nil {
		t.Fatal(err)
	}
	r6 := p.Analyze(6)
	r12 := p.Analyze(12)
	if r12.EnergyPerInferenceJ <= r6.EnergyPerInferenceJ {
		t.Fatal("doubling steps must increase energy")
	}
	if r12.LatencyPerInferenceS <= r6.LatencyPerInferenceS {
		t.Fatal("doubling steps must increase latency")
	}
}
