// Package hw models deployment of (approximate) spiking networks onto
// Loihi-class neuromorphic hardware: a 2-D mesh of cores, each holding a
// bounded number of neurons and synapses, exchanging spikes over a
// network-on-chip.
//
// The paper's motivation is ultra-low-power edge inference (its ref [1]
// runs on Loihi); this package turns the library's activity traces into
// hardware-level consequences: cores occupied, synaptic operations,
// NoC spike traffic, energy and latency per inference — quantifying how
// approximation (pruned synapses, skipped neurons) shrinks the deployed
// footprint.
package hw

import (
	"fmt"
	"math"

	"repro/internal/snn"
)

// CoreSpec describes one neuromorphic core and the chip's energy/timing
// constants. Defaults approximate published Loihi-1 figures.
type CoreSpec struct {
	MaxNeurons  int // compartments per core
	MaxSynapses int // synaptic memory entries per core

	EnergyPerSOpJ  float64 // energy per synaptic operation
	EnergyPerSpike float64 // energy to generate one spike
	EnergyPerHopJ  float64 // energy per spike per mesh hop
	StaticPowerW   float64 // per-core leakage

	SOpTimeNS  float64 // per-synaptic-op processing time within a core
	HopTimeNS  float64 // per-hop NoC latency contribution
	StepTimeNS float64 // fixed barrier-sync cost per time step
}

// DefaultCoreSpec returns Loihi-like constants (128 KB synaptic memory,
// 1024 compartments, ~24 pJ/SOP).
func DefaultCoreSpec() CoreSpec {
	return CoreSpec{
		MaxNeurons:     1024,
		MaxSynapses:    128 * 1024,
		EnergyPerSOpJ:  24e-12,
		EnergyPerSpike: 2e-12,
		EnergyPerHopJ:  4e-12,
		StaticPowerW:   1e-3,
		SOpTimeNS:      4,
		HopTimeNS:      6.5,
		StepTimeNS:     500,
	}
}

// layerProfile is the mapping-relevant summary of one weighted layer.
type layerProfile struct {
	name     string
	neurons  int     // output units
	synPer   []int   // live fan-in per output neuron (mask-aware)
	firing   float64 // spikes per neuron per step of the *output* population
	inSpikes float64 // spikes per step arriving from the previous layer
}

// Core is one occupied core of the placement.
type Core struct {
	Layer    int // index into the profile list
	Neurons  int
	Synapses int
	X, Y     int // mesh coordinates
}

// Placement maps a network onto a mesh of cores.
type Placement struct {
	Cores        []Core
	MeshW, MeshH int
	profiles     []layerProfile
	spec         CoreSpec
}

// profilesOf extracts per-layer neuron/synapse profiles from a network,
// honouring pruning masks, and attaches firing statistics from the LIF
// layers (populate them first with snn.Calibrate or snn.Trace).
func profilesOf(net *snn.Network) []layerProfile {
	var out []layerProfile
	lifRate := map[int]float64{} // weighted-layer index -> firing rate
	inRate := 1.0                // input population rate (assume dense)
	wi := 0
	var pending []int
	for _, l := range net.Layers {
		switch v := l.(type) {
		case *snn.Conv2D:
			positions := v.Geom.OutH() * v.Geom.OutW()
			neurons := v.OutC * positions
			fanIn := v.W.Len() / v.OutC
			p := layerProfile{name: "conv2d", neurons: neurons}
			p.synPer = make([]int, neurons)
			for oc := 0; oc < v.OutC; oc++ {
				liveOC := fanIn
				if v.Mask != nil {
					liveOC = 0
					for i := oc * fanIn; i < (oc+1)*fanIn; i++ {
						if v.Mask.Data[i] != 0 {
							liveOC++
						}
					}
				}
				for pos := 0; pos < positions; pos++ {
					p.synPer[oc*positions+pos] = liveOC
				}
			}
			out = append(out, p)
			pending = append(pending, wi)
			wi++
		case *snn.Dense:
			p := layerProfile{name: "dense", neurons: v.Out}
			p.synPer = make([]int, v.Out)
			for o := 0; o < v.Out; o++ {
				live := v.In
				if v.Mask != nil {
					live = 0
					for i := o * v.In; i < (o+1)*v.In; i++ {
						if v.Mask.Data[i] != 0 {
							live++
						}
					}
				}
				p.synPer[o] = live
			}
			out = append(out, p)
			pending = append(pending, wi)
			wi++
		case *snn.LIF:
			rate := v.MeanSpikesPerStep() / float64(maxInt(1, v.StatUnits))
			for _, j := range pending {
				lifRate[j] = rate
			}
			pending = pending[:0]
		}
	}
	// Attach rates: a layer's input spikes come from the previous
	// layer's output population (or the raw input for the first).
	prevRate := inRate
	prevNeurons := 0
	for i := range out {
		r, ok := lifRate[i]
		if !ok {
			r = prevRate // readout: no LIF, inherits input activity scale
		}
		out[i].firing = r
		if i == 0 {
			// Input spikes per step estimated as fan-in coverage; use
			// the layer's own synapse count as the SOP driver instead.
			out[i].inSpikes = float64(sumInt(out[i].synPer)) * prevRate
		} else {
			out[i].inSpikes = float64(prevNeurons) * prevRate
		}
		prevRate = r
		prevNeurons = out[i].neurons
	}
	return out
}

// Map places the network onto cores greedily, layer-major, splitting
// layers across cores when either capacity bound is hit. It returns an
// error if a single neuron's fan-in exceeds a core's synapse capacity.
func Map(net *snn.Network, spec CoreSpec) (*Placement, error) {
	profiles := profilesOf(net)
	var cores []Core
	for li, p := range profiles {
		curN, curS := 0, 0
		for n := 0; n < p.neurons; n++ {
			s := p.synPer[n]
			if s > spec.MaxSynapses {
				return nil, fmt.Errorf("hw: layer %d neuron %d needs %d synapses > core capacity %d",
					li, n, s, spec.MaxSynapses)
			}
			if curN+1 > spec.MaxNeurons || curS+s > spec.MaxSynapses {
				cores = append(cores, Core{Layer: li, Neurons: curN, Synapses: curS})
				curN, curS = 0, 0
			}
			curN++
			curS += s
		}
		if curN > 0 {
			cores = append(cores, Core{Layer: li, Neurons: curN, Synapses: curS})
		}
	}
	// Lay cores on a near-square mesh in placement order (layers are
	// contiguous, so consecutive layers sit near each other).
	w := int(math.Ceil(math.Sqrt(float64(len(cores)))))
	if w < 1 {
		w = 1
	}
	h := (len(cores) + w - 1) / w
	for i := range cores {
		cores[i].X = i % w
		cores[i].Y = i / w
	}
	return &Placement{Cores: cores, MeshW: w, MeshH: h, profiles: profiles, spec: spec}, nil
}

// Report is the hardware-level cost of running one inference of Steps
// time steps on the placement.
type Report struct {
	CoresUsed    int
	NeuronsUsed  int
	SynapsesUsed int

	SOPsPerStep   float64 // synaptic operations per time step
	SpikesPerStep float64 // spikes generated per time step
	HopsPerStep   float64 // spike·hops of NoC traffic per time step

	EnergyPerInferenceJ  float64
	LatencyPerInferenceS float64
	MeanCoreUtilization  float64 // neuron-slot occupancy
}

// Analyze computes the report for an inference of steps time steps.
// Firing statistics must be present on the network's LIF layers when Map
// was called (run snn.Calibrate on a representative workload first).
func (p *Placement) Analyze(steps int) Report {
	rep := Report{CoresUsed: len(p.Cores)}
	for _, c := range p.Cores {
		rep.NeuronsUsed += c.Neurons
		rep.SynapsesUsed += c.Synapses
	}
	if len(p.Cores) > 0 {
		rep.MeanCoreUtilization = float64(rep.NeuronsUsed) / float64(len(p.Cores)*p.spec.MaxNeurons)
	}

	// Per-layer core centroids for traffic distances.
	type centroid struct {
		x, y  float64
		cores int
	}
	cent := make([]centroid, len(p.profiles))
	for _, c := range p.Cores {
		cent[c.Layer].x += float64(c.X)
		cent[c.Layer].y += float64(c.Y)
		cent[c.Layer].cores++
	}
	for i := range cent {
		if cent[i].cores > 0 {
			cent[i].x /= float64(cent[i].cores)
			cent[i].y /= float64(cent[i].cores)
		}
	}

	for i, prof := range p.profiles {
		// SOPs: each incoming spike touches the mean live fan-in of the
		// destination layer.
		meanFan := 0.0
		if prof.neurons > 0 {
			meanFan = float64(sumInt(prof.synPer)) / float64(prof.neurons)
		}
		if i == 0 {
			rep.SOPsPerStep += prof.inSpikes // already synapse-weighted
		} else {
			rep.SOPsPerStep += prof.inSpikes * meanFan
		}
		outSpikes := prof.firing * float64(prof.neurons)
		rep.SpikesPerStep += outSpikes
		// Traffic: spikes from layer i to i+1 travel the Manhattan
		// distance between layer centroids (plus 1 hop minimum when
		// they span multiple cores).
		if i+1 < len(p.profiles) {
			d := math.Abs(cent[i].x-cent[i+1].x) + math.Abs(cent[i].y-cent[i+1].y)
			if d < 1 && (cent[i].cores > 1 || cent[i+1].cores > 1) {
				d = 1
			}
			rep.HopsPerStep += outSpikes * d
		}
	}

	s := float64(steps)
	dynamic := (rep.SOPsPerStep*p.spec.EnergyPerSOpJ +
		rep.SpikesPerStep*p.spec.EnergyPerSpike +
		rep.HopsPerStep*p.spec.EnergyPerHopJ) * s

	// Latency: per step, cores work in parallel; approximate the
	// critical path by the busiest layer's SOPs spread over its cores.
	stepLatency := p.spec.StepTimeNS
	for i, prof := range p.profiles {
		cores := cent[i].cores
		if cores == 0 {
			continue
		}
		meanFan := 0.0
		if prof.neurons > 0 {
			meanFan = float64(sumInt(prof.synPer)) / float64(prof.neurons)
		}
		sops := prof.inSpikes * meanFan
		if i == 0 {
			sops = prof.inSpikes
		}
		lat := sops / float64(cores) * p.spec.SOpTimeNS
		if lat > stepLatency-p.spec.StepTimeNS {
			stepLatency = p.spec.StepTimeNS + lat
		}
	}
	// NoC latency: mean hops per spike (pipeline, amortized).
	if rep.SpikesPerStep > 0 {
		stepLatency += rep.HopsPerStep / rep.SpikesPerStep * p.spec.HopTimeNS
	}
	rep.LatencyPerInferenceS = stepLatency * s * 1e-9
	static := p.spec.StaticPowerW * float64(rep.CoresUsed) * rep.LatencyPerInferenceS
	rep.EnergyPerInferenceJ = dynamic + static
	return rep
}

// String renders the report compactly.
func (r Report) String() string {
	return fmt.Sprintf("cores=%d util=%.0f%% sops/step=%.0f hops/step=%.0f energy=%.3gJ latency=%.3gs",
		r.CoresUsed, 100*r.MeanCoreUtilization, r.SOPsPerStep, r.HopsPerStep,
		r.EnergyPerInferenceJ, r.LatencyPerInferenceS)
}

func sumInt(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
