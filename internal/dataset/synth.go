package dataset

import (
	"math"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// SynthConfig controls the procedural digit generator.
//
// The generator substitutes for MNIST (see DESIGN.md): each digit class is
// a fixed stroke skeleton in the unit square, rendered with a per-sample
// random affine transform (rotation, scale, translation), random stroke
// thickness and additive sensor noise. The result is a 10-class image task
// with intra-class variation, which is all the paper's experiments require
// of the static dataset.
type SynthConfig struct {
	H, W      int     // image size (default 16×16)
	Noise     float64 // std-dev of additive Gaussian pixel noise
	MaxRotate float64 // max |rotation| in radians
	MaxShift  float64 // max |translation| as fraction of image
	MinScale  float64 // min per-sample scale factor
	MaxScale  float64 // max per-sample scale factor
	Thickness float64 // stroke radius as a fraction of image size
}

// DefaultSynthConfig returns the generator settings used by the
// experiment harness.
func DefaultSynthConfig() SynthConfig {
	return SynthConfig{
		H: 16, W: 16,
		Noise:     0.03,
		MaxRotate: 0.18,
		MaxShift:  0.08,
		MinScale:  0.85,
		MaxScale:  1.05,
		Thickness: 0.055,
	}
}

// point is a 2-D coordinate in the unit square (x right, y down).
type point struct{ x, y float64 }

// digitStrokes defines each digit 0-9 as a set of polylines in the unit
// square. The skeletons are deliberately simple (seven-segment-like with
// curves approximated by short polylines): class identity comes from
// topology, intra-class variation from the affine jitter.
var digitStrokes = [10][][]point{
	// 0: closed oval
	{ellipse(0.5, 0.5, 0.28, 0.38, 16)},
	// 1: vertical bar with a small flag
	{{{0.38, 0.28}, {0.55, 0.12}, {0.55, 0.88}}},
	// 2: top arc, diagonal, bottom bar
	{append(arc(0.5, 0.3, 0.26, math.Pi, 2.2*math.Pi, 10), point{0.24, 0.88}, point{0.78, 0.88})},
	// 3: two right-facing arcs
	{arc(0.45, 0.3, 0.24, 1.05*math.Pi, 2.45*math.Pi, 10),
		arc(0.45, 0.68, 0.26, 1.55*math.Pi, 2.95*math.Pi, 10)},
	// 4: diagonal, horizontal, vertical
	{{{0.62, 0.12}, {0.25, 0.62}, {0.8, 0.62}}, {{0.62, 0.12}, {0.62, 0.88}}},
	// 5: top bar, left stem, bottom bowl
	{{{0.75, 0.14}, {0.3, 0.14}, {0.28, 0.5}},
		arc(0.48, 0.66, 0.24, 1.3*math.Pi, 2.8*math.Pi, 10)},
	// 6: left curve closing into a lower loop
	{arc(0.52, 0.3, 0.26, 0.75*math.Pi, 1.35*math.Pi, 6),
		ellipse(0.5, 0.66, 0.22, 0.2, 12)},
	// 7: top bar and diagonal
	{{{0.22, 0.14}, {0.78, 0.14}, {0.42, 0.88}}},
	// 8: two stacked loops
	{ellipse(0.5, 0.3, 0.2, 0.17, 12), ellipse(0.5, 0.68, 0.24, 0.2, 12)},
	// 9: upper loop with a tail
	{ellipse(0.5, 0.32, 0.22, 0.2, 12),
		arc(0.48, 0.34, 0.26, -0.1*math.Pi, 0.45*math.Pi, 6)},
}

// ellipse approximates an axis-aligned ellipse as a closed polyline.
func ellipse(cx, cy, rx, ry float64, n int) []point {
	pts := make([]point, 0, n+1)
	for i := 0; i <= n; i++ {
		a := 2 * math.Pi * float64(i) / float64(n)
		pts = append(pts, point{cx + rx*math.Cos(a), cy + ry*math.Sin(a)})
	}
	return pts
}

// arc approximates a circular arc from a0 to a1 (radians) as a polyline.
func arc(cx, cy, r, a0, a1 float64, n int) []point {
	pts := make([]point, 0, n+1)
	for i := 0; i <= n; i++ {
		a := a0 + (a1-a0)*float64(i)/float64(n)
		pts = append(pts, point{cx + r*math.Cos(a), cy + r*math.Sin(a)})
	}
	return pts
}

// RenderDigit rasterizes one sample of class digit with per-sample jitter
// drawn from r. The returned image is (1,H,W) with intensities in [0,1].
func RenderDigit(digit int, cfg SynthConfig, r *rng.RNG) *tensor.Tensor {
	img := tensor.New(1, cfg.H, cfg.W)

	// Per-sample affine transform about the image centre.
	rot := (2*r.Float64() - 1) * cfg.MaxRotate
	scale := cfg.MinScale + r.Float64()*(cfg.MaxScale-cfg.MinScale)
	dx := (2*r.Float64() - 1) * cfg.MaxShift
	dy := (2*r.Float64() - 1) * cfg.MaxShift
	sin, cos := math.Sincos(rot)
	xform := func(p point) point {
		x, y := p.x-0.5, p.y-0.5
		x, y = x*cos-y*sin, x*sin+y*cos
		return point{(x*scale + 0.5 + dx), (y*scale + 0.5 + dy)}
	}

	thick := cfg.Thickness * (0.8 + 0.4*r.Float64()) * float64(cfg.W)
	for _, stroke := range digitStrokes[digit] {
		for i := 0; i+1 < len(stroke); i++ {
			a, b := xform(stroke[i]), xform(stroke[i+1])
			splatSegment(img, a, b, thick, cfg)
		}
	}

	if cfg.Noise > 0 {
		for i, v := range img.Data {
			nv := float64(v) + r.NormFloat64()*cfg.Noise
			img.Data[i] = float32(math.Min(1, math.Max(0, nv)))
		}
	}
	return img
}

// splatSegment draws an anti-aliased capsule from a to b with radius thick
// (in pixels) by accumulating a soft falloff into the image.
func splatSegment(img *tensor.Tensor, a, b point, thick float64, cfg SynthConfig) {
	ax, ay := a.x*float64(cfg.W), a.y*float64(cfg.H)
	bx, by := b.x*float64(cfg.W), b.y*float64(cfg.H)
	minX := int(math.Floor(math.Min(ax, bx) - thick - 1))
	maxX := int(math.Ceil(math.Max(ax, bx) + thick + 1))
	minY := int(math.Floor(math.Min(ay, by) - thick - 1))
	maxY := int(math.Ceil(math.Max(ay, by) + thick + 1))
	if minX < 0 {
		minX = 0
	}
	if minY < 0 {
		minY = 0
	}
	if maxX >= cfg.W {
		maxX = cfg.W - 1
	}
	if maxY >= cfg.H {
		maxY = cfg.H - 1
	}
	dx, dy := bx-ax, by-ay
	segLen2 := dx*dx + dy*dy
	for y := minY; y <= maxY; y++ {
		for x := minX; x <= maxX; x++ {
			px, py := float64(x)+0.5, float64(y)+0.5
			// distance from pixel centre to segment
			t := 0.0
			if segLen2 > 0 {
				t = ((px-ax)*dx + (py-ay)*dy) / segLen2
				t = math.Min(1, math.Max(0, t))
			}
			cx, cy := ax+t*dx, ay+t*dy
			d := math.Hypot(px-cx, py-cy)
			// Soft edge one pixel wide around the stroke radius.
			v := 1 - (d - thick)
			if v <= 0 {
				continue
			}
			if v > 1 {
				v = 1
			}
			idx := y*cfg.W + x
			if float32(v) > img.Data[idx] {
				img.Data[idx] = float32(v)
			}
		}
	}
}

// GenerateSynth produces a synthetic digit dataset of n samples with a
// balanced class distribution, deterministically from seed.
func GenerateSynth(n int, cfg SynthConfig, seed uint64) *Set {
	r := rng.New(seed)
	set := &Set{Classes: 10, H: cfg.H, W: cfg.W, Samples: make([]Sample, n)}
	for i := 0; i < n; i++ {
		label := i % 10
		set.Samples[i] = Sample{Image: RenderDigit(label, cfg, r), Label: label}
	}
	// Shuffle so batches are class-mixed.
	r.Shuffle(n, func(i, j int) {
		set.Samples[i], set.Samples[j] = set.Samples[j], set.Samples[i]
	})
	return set
}
