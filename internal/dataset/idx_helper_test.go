package dataset

import (
	"os"
	"path/filepath"
)

// writeFile writes data into dir/name for the IDX loader tests.
func writeFile(dir, name string, data []byte) error {
	return os.WriteFile(filepath.Join(dir, name), data, 0o644)
}
