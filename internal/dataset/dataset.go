// Package dataset provides the static image workloads for the MNIST-side
// experiments: a procedural synthetic digit corpus (the default, since
// the real MNIST files are not shipped with this repository) and a reader
// for the genuine IDX file format so real MNIST drops in transparently
// when available.
package dataset

import (
	"fmt"

	"repro/internal/tensor"
)

// Sample is one labelled image. Image is a (C,H,W) tensor of intensities
// in [0,1]; Label is the class index.
type Sample struct {
	Image *tensor.Tensor
	Label int
}

// Set is an in-memory labelled dataset.
type Set struct {
	Samples []Sample
	Classes int
	H, W    int
}

// Len returns the number of samples.
func (s *Set) Len() int { return len(s.Samples) }

// Subset returns a view of the first n samples (or all if n exceeds Len).
func (s *Set) Subset(n int) *Set {
	if n > len(s.Samples) {
		n = len(s.Samples)
	}
	return &Set{Samples: s.Samples[:n], Classes: s.Classes, H: s.H, W: s.W}
}

// Clone deep-copies the set, including image data. Attacks mutate images,
// so evaluation code clones before perturbing.
func (s *Set) Clone() *Set {
	out := &Set{Samples: make([]Sample, len(s.Samples)), Classes: s.Classes, H: s.H, W: s.W}
	for i, sm := range s.Samples {
		out.Samples[i] = Sample{Image: sm.Image.Clone(), Label: sm.Label}
	}
	return out
}

// Validate checks dataset invariants: consistent shapes, labels in range,
// pixel intensities in [0,1].
func (s *Set) Validate() error {
	for i, sm := range s.Samples {
		if sm.Image == nil {
			return fmt.Errorf("dataset: sample %d has nil image", i)
		}
		if sm.Image.Rank() != 3 {
			return fmt.Errorf("dataset: sample %d rank %d, want 3", i, sm.Image.Rank())
		}
		if sm.Image.Dim(1) != s.H || sm.Image.Dim(2) != s.W {
			return fmt.Errorf("dataset: sample %d shape %v, want (_, %d, %d)", i, sm.Image.Shape, s.H, s.W)
		}
		if sm.Label < 0 || sm.Label >= s.Classes {
			return fmt.Errorf("dataset: sample %d label %d out of [0,%d)", i, sm.Label, s.Classes)
		}
		for _, v := range sm.Image.Data {
			if v < 0 || v > 1 {
				return fmt.Errorf("dataset: sample %d pixel %v out of [0,1]", i, v)
			}
		}
	}
	return nil
}
