package dataset

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestGenerateSynthBasics(t *testing.T) {
	set := GenerateSynth(100, DefaultSynthConfig(), 1)
	if set.Len() != 100 {
		t.Fatalf("len = %d", set.Len())
	}
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateSynthBalanced(t *testing.T) {
	set := GenerateSynth(200, DefaultSynthConfig(), 2)
	counts := make([]int, 10)
	for _, s := range set.Samples {
		counts[s.Label]++
	}
	for c, n := range counts {
		if n != 20 {
			t.Fatalf("class %d has %d samples, want 20", c, n)
		}
	}
}

func TestGenerateSynthDeterministic(t *testing.T) {
	a := GenerateSynth(30, DefaultSynthConfig(), 7)
	b := GenerateSynth(30, DefaultSynthConfig(), 7)
	for i := range a.Samples {
		if a.Samples[i].Label != b.Samples[i].Label {
			t.Fatal("labels differ across identical seeds")
		}
		for p := range a.Samples[i].Image.Data {
			if a.Samples[i].Image.Data[p] != b.Samples[i].Image.Data[p] {
				t.Fatal("pixels differ across identical seeds")
			}
		}
	}
}

func TestGenerateSynthSeedsDiffer(t *testing.T) {
	a := GenerateSynth(10, DefaultSynthConfig(), 1)
	b := GenerateSynth(10, DefaultSynthConfig(), 2)
	same := true
	for i := range a.Samples {
		for p := range a.Samples[i].Image.Data {
			if a.Samples[i].Image.Data[p] != b.Samples[i].Image.Data[p] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical datasets")
	}
}

// Digits must be visually distinct: the mean rendered image of one class
// should be closer to samples of its own class than to every other class
// mean for a solid majority of samples (a nearest-mean classifier beats
// chance by a wide margin).
func TestSynthClassesSeparable(t *testing.T) {
	cfg := DefaultSynthConfig()
	train := GenerateSynth(400, cfg, 3)
	means := make([][]float32, 10)
	counts := make([]int, 10)
	dim := cfg.H * cfg.W
	for i := range means {
		means[i] = make([]float32, dim)
	}
	for _, s := range train.Samples {
		for p, v := range s.Image.Data {
			means[s.Label][p] += v
		}
		counts[s.Label]++
	}
	for c := range means {
		for p := range means[c] {
			means[c][p] /= float32(counts[c])
		}
	}
	test := GenerateSynth(200, cfg, 4)
	correct := 0
	for _, s := range test.Samples {
		best, bi := math.Inf(1), -1
		for c := range means {
			d := 0.0
			for p, v := range s.Image.Data {
				dv := float64(v - means[c][p])
				d += dv * dv
			}
			if d < best {
				best, bi = d, c
			}
		}
		if bi == s.Label {
			correct++
		}
	}
	acc := float64(correct) / float64(test.Len())
	if acc < 0.6 {
		t.Fatalf("nearest-mean accuracy %.2f; classes not separable enough", acc)
	}
}

func TestRenderDigitInkPresent(t *testing.T) {
	cfg := DefaultSynthConfig()
	r := rng.New(5)
	for d := 0; d < 10; d++ {
		img := RenderDigit(d, cfg, r)
		if img.Sum() < 3 {
			t.Fatalf("digit %d rendered almost empty (sum=%v)", d, img.Sum())
		}
		if img.Max() <= 0.5 {
			t.Fatalf("digit %d has no strong stroke (max=%v)", d, img.Max())
		}
	}
}

func TestSubsetAndClone(t *testing.T) {
	set := GenerateSynth(20, DefaultSynthConfig(), 6)
	sub := set.Subset(5)
	if sub.Len() != 5 {
		t.Fatalf("subset len %d", sub.Len())
	}
	if set.Subset(100).Len() != 20 {
		t.Fatal("oversized subset must clamp")
	}
	cl := set.Clone()
	cl.Samples[0].Image.Data[0] = 0.999
	if set.Samples[0].Image.Data[0] == 0.999 {
		t.Fatal("clone must not alias image data")
	}
}

func TestValidateCatchesBadLabel(t *testing.T) {
	set := GenerateSynth(5, DefaultSynthConfig(), 8)
	set.Samples[2].Label = 17
	if set.Validate() == nil {
		t.Fatal("Validate must reject out-of-range label")
	}
}

func TestValidateCatchesBadPixel(t *testing.T) {
	set := GenerateSynth(5, DefaultSynthConfig(), 9)
	set.Samples[1].Image.Data[0] = 1.5
	if set.Validate() == nil {
		t.Fatal("Validate must reject out-of-range pixel")
	}
}

func TestIDXRoundTrip(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + int(seed%4)
		h := 2 + int((seed>>4)%5)
		w := 2 + int((seed>>8)%5)
		data := make([]byte, n*h*w)
		for i := range data {
			data[i] = byte(r.Intn(256))
		}
		var buf bytes.Buffer
		if err := WriteIDX(&buf, []int{n, h, w}, data); err != nil {
			return false
		}
		dims, got, err := ReadIDX(&buf)
		if err != nil || len(dims) != 3 || dims[0] != n || dims[1] != h || dims[2] != w {
			return false
		}
		return bytes.Equal(got, data)
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReadIDXRejectsGarbage(t *testing.T) {
	if _, _, err := ReadIDX(bytes.NewReader([]byte{1, 2, 3, 4, 5})); err == nil {
		t.Fatal("expected error for bad magic")
	}
	if _, _, err := ReadIDX(bytes.NewReader([]byte{0, 0, 0x0d, 1, 0, 0, 0, 4})); err == nil {
		t.Fatal("expected error for unsupported element type")
	}
	// Truncated payload.
	var buf bytes.Buffer
	_ = WriteIDX(&buf, []int{4}, []byte{1, 2, 3, 4})
	tr := buf.Bytes()[:buf.Len()-2]
	if _, _, err := ReadIDX(bytes.NewReader(tr)); err == nil {
		t.Fatal("expected error for truncated payload")
	}
}

func TestWriteIDXValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteIDX(&buf, []int{3}, []byte{1, 2}); err == nil {
		t.Fatal("expected dims/data mismatch error")
	}
}

func TestMNISTOrSynthFallsBack(t *testing.T) {
	train, test, real := MNISTOrSynth(t.TempDir(), 50, 20, DefaultSynthConfig(), 1)
	if real {
		t.Fatal("empty dir must not report real MNIST")
	}
	if train.Len() != 50 || test.Len() != 20 {
		t.Fatalf("lens %d/%d", train.Len(), test.Len())
	}
}

func TestMNISTOrSynthLoadsRealIDX(t *testing.T) {
	dir := t.TempDir()
	// Write a miniature "real" MNIST pair.
	writePair := func(imgName, lblName string, n int) {
		imgs := make([]byte, n*4*4)
		lbls := make([]byte, n)
		for i := range lbls {
			lbls[i] = byte(i % 10)
			imgs[i*16] = 255
		}
		var b1 bytes.Buffer
		if err := WriteIDX(&b1, []int{n, 4, 4}, imgs); err != nil {
			t.Fatal(err)
		}
		if err := writeFile(dir, imgName, b1.Bytes()); err != nil {
			t.Fatal(err)
		}
		var b2 bytes.Buffer
		if err := WriteIDX(&b2, []int{n}, lbls); err != nil {
			t.Fatal(err)
		}
		if err := writeFile(dir, lblName, b2.Bytes()); err != nil {
			t.Fatal(err)
		}
	}
	writePair("train-images-idx3-ubyte", "train-labels-idx1-ubyte", 30)
	writePair("t10k-images-idx3-ubyte", "t10k-labels-idx1-ubyte", 10)

	train, test, real := MNISTOrSynth(dir, 20, 5, DefaultSynthConfig(), 1)
	if !real {
		t.Fatal("expected real MNIST to load")
	}
	if train.Len() != 20 || test.Len() != 5 {
		t.Fatalf("lens %d/%d", train.Len(), test.Len())
	}
	if train.Samples[0].Image.Data[0] != 1 {
		t.Fatal("pixel scaling to [0,1] broken")
	}
	if err := train.Validate(); err != nil {
		t.Fatal(err)
	}
}
