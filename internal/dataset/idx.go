package dataset

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/tensor"
)

// The IDX format is the container MNIST ships in: a magic number encoding
// the element type and rank, big-endian dimension sizes, then raw data.
// This reader supports the two layouts MNIST uses (uint8 rank-1 labels and
// uint8 rank-3 images) so the genuine dataset can replace the synthetic
// corpus without code changes.

const (
	idxTypeUint8 = 0x08
)

// ReadIDX parses an IDX stream into dimensions and raw uint8 data.
func ReadIDX(r io.Reader) (dims []int, data []byte, err error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, nil, fmt.Errorf("dataset: reading IDX magic: %w", err)
	}
	if magic[0] != 0 || magic[1] != 0 {
		return nil, nil, fmt.Errorf("dataset: bad IDX magic % x", magic)
	}
	if magic[2] != idxTypeUint8 {
		return nil, nil, fmt.Errorf("dataset: unsupported IDX element type 0x%02x", magic[2])
	}
	rank := int(magic[3])
	if rank < 1 || rank > 4 {
		return nil, nil, fmt.Errorf("dataset: unsupported IDX rank %d", rank)
	}
	dims = make([]int, rank)
	n := 1
	for i := range dims {
		var d uint32
		if err := binary.Read(br, binary.BigEndian, &d); err != nil {
			return nil, nil, fmt.Errorf("dataset: reading IDX dim %d: %w", i, err)
		}
		dims[i] = int(d)
		n *= int(d)
	}
	data = make([]byte, n)
	if _, err := io.ReadFull(br, data); err != nil {
		return nil, nil, fmt.Errorf("dataset: reading IDX payload: %w", err)
	}
	return dims, data, nil
}

// WriteIDX emits dims/data in IDX format (uint8 elements).
func WriteIDX(w io.Writer, dims []int, data []byte) error {
	n := 1
	for _, d := range dims {
		n *= d
	}
	if n != len(data) {
		return fmt.Errorf("dataset: IDX dims %v do not cover %d bytes", dims, len(data))
	}
	magic := []byte{0, 0, idxTypeUint8, byte(len(dims))}
	if _, err := w.Write(magic); err != nil {
		return err
	}
	for _, d := range dims {
		if err := binary.Write(w, binary.BigEndian, uint32(d)); err != nil {
			return err
		}
	}
	_, err := w.Write(data)
	return err
}

// openMaybeGzip opens path, transparently decompressing .gz files.
func openMaybeGzip(path string) (io.ReadCloser, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	if !strings.HasSuffix(path, ".gz") {
		return f, nil
	}
	gz, err := gzip.NewReader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &gzipFile{gz: gz, f: f}, nil
}

type gzipFile struct {
	gz *gzip.Reader
	f  *os.File
}

func (g *gzipFile) Read(p []byte) (int, error) { return g.gz.Read(p) }
func (g *gzipFile) Close() error {
	g.gz.Close()
	return g.f.Close()
}

// LoadMNIST loads an MNIST-style pair of IDX files (images + labels) into
// a Set with intensities scaled to [0,1].
func LoadMNIST(imagesPath, labelsPath string) (*Set, error) {
	ir, err := openMaybeGzip(imagesPath)
	if err != nil {
		return nil, err
	}
	defer ir.Close()
	idims, idata, err := ReadIDX(ir)
	if err != nil {
		return nil, err
	}
	if len(idims) != 3 {
		return nil, fmt.Errorf("dataset: image file rank %d, want 3", len(idims))
	}
	lr, err := openMaybeGzip(labelsPath)
	if err != nil {
		return nil, err
	}
	defer lr.Close()
	ldims, ldata, err := ReadIDX(lr)
	if err != nil {
		return nil, err
	}
	if len(ldims) != 1 || ldims[0] != idims[0] {
		return nil, fmt.Errorf("dataset: label count %v vs image count %d", ldims, idims[0])
	}
	n, h, w := idims[0], idims[1], idims[2]
	set := &Set{Classes: 10, H: h, W: w, Samples: make([]Sample, n)}
	for i := 0; i < n; i++ {
		img := tensor.New(1, h, w)
		for p := 0; p < h*w; p++ {
			img.Data[p] = float32(idata[i*h*w+p]) / 255
		}
		set.Samples[i] = Sample{Image: img, Label: int(ldata[i])}
	}
	return set, nil
}

// MNISTOrSynth returns real MNIST from dir if the canonical files exist,
// otherwise a synthetic corpus of trainN+testN samples. It always returns
// (train, test).
func MNISTOrSynth(dir string, trainN, testN int, cfg SynthConfig, seed uint64) (train, test *Set, real bool) {
	if dir != "" {
		ti := filepath.Join(dir, "train-images-idx3-ubyte")
		tl := filepath.Join(dir, "train-labels-idx1-ubyte")
		si := filepath.Join(dir, "t10k-images-idx3-ubyte")
		sl := filepath.Join(dir, "t10k-labels-idx1-ubyte")
		if fileExists(ti) && fileExists(tl) && fileExists(si) && fileExists(sl) {
			tr, err1 := LoadMNIST(ti, tl)
			te, err2 := LoadMNIST(si, sl)
			if err1 == nil && err2 == nil {
				return tr.Subset(trainN), te.Subset(testN), true
			}
		}
	}
	return GenerateSynth(trainN, cfg, seed), GenerateSynth(testN, cfg, seed+1), false
}

func fileExists(p string) bool {
	st, err := os.Stat(p)
	return err == nil && !st.IsDir()
}
