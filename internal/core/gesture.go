package core

import (
	"repro/internal/approx"
	"repro/internal/attack"
	"repro/internal/defense"
	"repro/internal/dvs"
	"repro/internal/quant"
	"repro/internal/rng"
	"repro/internal/snn"
	"repro/internal/tensor"
)

// GestureConfig assembles the design flow for the neuromorphic (DVS)
// task.
type GestureConfig struct {
	// Arch builds an untrained gesture network.
	Arch func(cfg snn.Config, r *rng.RNG) *snn.Network
	// Train / Test are labelled event-stream splits.
	Train, Test *dvs.Set
	// TrainOpts yields fresh training options per model.
	TrainOpts func() snn.TrainOptions
	CalibN    int
	Seed      uint64
}

// GestureDesigner runs the security-aware design flow for event data:
// training on voxelized streams, neuromorphic attacks, and the AQF
// defense (Algorithm 2).
type GestureDesigner struct {
	cfg GestureConfig
}

// NewGestureDesigner validates the config and returns a designer.
func NewGestureDesigner(cfg GestureConfig) *GestureDesigner {
	if cfg.Arch == nil || cfg.Train == nil || cfg.Test == nil || cfg.TrainOpts == nil {
		panic("core: incomplete gesture designer config")
	}
	if cfg.CalibN <= 0 {
		cfg.CalibN = 8
	}
	return &GestureDesigner{cfg: cfg}
}

// voxelize converts a set into frame sequences + labels for steps bins,
// fanning the per-stream binning out over the shared tensor worker pool
// (streams voxelize independently, so the result is order-exact).
func voxelize(set *dvs.Set, steps int) ([][]*tensor.Tensor, []int) {
	frames := make([][]*tensor.Tensor, set.Len())
	labels := make([]int, set.Len())
	tensor.ParallelFor(set.Len(), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			frames[i] = set.Samples[i].Stream.Voxelize(steps)
			labels[i] = set.Samples[i].Label
		}
	})
	return frames, labels
}

// TrainAccurate trains the accurate gesture SNN at a structural point.
func (d *GestureDesigner) TrainAccurate(vth float32, steps int) *snn.Network {
	seed := d.cfg.Seed ^ (uint64(steps)<<24 + uint64(vth*1000))
	net := d.cfg.Arch(snn.DefaultConfig(vth, steps), rng.New(seed))
	frames, labels := voxelize(d.cfg.Train, steps)
	opts := d.cfg.TrainOpts()
	opts.Seed = seed + 1
	snn.TrainFrames(net, frames, labels, opts)
	return net
}

// TrainSurrogate trains the adversary's copy (independent parameters).
func (d *GestureDesigner) TrainSurrogate(vth float32, steps int) *snn.Network {
	seed := d.cfg.Seed ^ 0xada ^ (uint64(steps)<<24 + uint64(vth*1000))
	net := d.cfg.Arch(snn.DefaultConfig(vth, steps), rng.New(seed))
	frames, labels := voxelize(d.cfg.Train, steps)
	opts := d.cfg.TrainOpts()
	opts.Seed = seed + 1
	snn.TrainFrames(net, frames, labels, opts)
	return net
}

// Approximate derives the AxSNN from a trained gesture network.
func (d *GestureDesigner) Approximate(net *snn.Network, level float64, scale quant.Scale) (*snn.Network, approx.Report) {
	n := d.cfg.CalibN
	if n > d.cfg.Test.Len() {
		n = d.cfg.Test.Len()
	}
	calib := make([][]*tensor.Tensor, n)
	for i := 0; i < n; i++ {
		calib[i] = d.cfg.Test.Samples[i].Stream.Voxelize(net.Cfg.Steps)
	}
	return approx.Approximate(net, approx.Params{Level: level, Scale: scale}, calib)
}

// CraftAdversarial perturbs every test stream with a neuromorphic attack
// crafted against the surrogate, returning a new set. Streams are
// crafted concurrently through the attack's PerturbSet batch API.
func (d *GestureDesigner) CraftAdversarial(surrogate *snn.Network, atk attack.StreamAttack) *dvs.Set {
	return atk.PerturbSet(surrogate, d.cfg.Test)
}

// Evaluate returns accuracy of net on a set, optionally AQF-filtered
// first (pass nil to skip filtering).
func (d *GestureDesigner) Evaluate(net *snn.Network, set *dvs.Set, aqf *defense.AQFParams) float64 {
	if aqf != nil {
		set = defense.AQFSet(set, *aqf)
	}
	frames, labels := voxelize(set, net.Cfg.Steps)
	return snn.AccuracyFrames(net, frames, labels)
}
