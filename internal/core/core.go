// Package core is the public face of the library: the security-aware
// AxSNN design flow the paper proposes. A Designer owns a dataset, an
// architecture and a training recipe, and exposes the paper's design
// loop as composable steps:
//
//	d := core.NewDesigner(cfg)
//	acc := d.TrainAccurate(0.25, 32)                  // AccSNN
//	ax, rep := d.Approximate(acc, 0.01, quant.INT8)   // AxSNN (Eq. 1)
//	adv := d.CraftAdversarial(attack.PGD(1.0), 42)    // transfer set (§III)
//	r := d.EvaluateSet(ax, adv)                       // robustness R(ε)
//	best := d.SearchRobust(space, attack.PGD, 1.0)    // Algorithm 1
//
// The DVS path (neuromorphic attacks + the AQF defense, Algorithm 2) is
// exposed through GestureDesigner in gesture.go.
package core

import (
	"repro/internal/approx"
	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/defense"
	"repro/internal/encoding"
	"repro/internal/quant"
	"repro/internal/rng"
	"repro/internal/snn"
	"repro/internal/tensor"
)

// Config assembles the ingredients of a design flow for static images.
type Config struct {
	// Arch builds an untrained network for a structural point.
	Arch func(cfg snn.Config, r *rng.RNG) *snn.Network
	// Train / Test are the dataset splits.
	Train, Test *dataset.Set
	// Encoder is the spike encoding (the paper uses rate coding).
	Encoder encoding.Encoder
	// TrainOpts yields fresh training options per model (fresh
	// optimizer state each call).
	TrainOpts func() snn.TrainOptions
	// CalibN is the number of test samples used for Eq. 1 calibration.
	CalibN int
	// Seed makes the whole flow deterministic.
	Seed uint64
}

// Designer runs the security-aware design flow for static image tasks.
type Designer struct {
	cfg Config
}

// NewDesigner validates the config and returns a Designer.
func NewDesigner(cfg Config) *Designer {
	if cfg.Arch == nil || cfg.Train == nil || cfg.Test == nil || cfg.TrainOpts == nil {
		panic("core: incomplete designer config")
	}
	if cfg.Encoder == nil {
		cfg.Encoder = encoding.Rate{}
	}
	if cfg.CalibN <= 0 {
		cfg.CalibN = 16
	}
	return &Designer{cfg: cfg}
}

// TrainAccurate trains the accurate SNN (AccSNN) at a structural point.
func (d *Designer) TrainAccurate(vth float32, steps int) *snn.Network {
	seed := d.cfg.Seed ^ (uint64(steps)<<24 + uint64(vth*1000))
	net := d.cfg.Arch(snn.DefaultConfig(vth, steps), rng.New(seed))
	opts := d.cfg.TrainOpts()
	opts.Encoder = d.cfg.Encoder
	opts.Seed = seed + 1
	snn.Train(net, d.cfg.Train, opts)
	return net
}

// TrainSurrogate trains the adversary's model (threat model §III: same
// architecture and data access, independent parameters).
func (d *Designer) TrainSurrogate(vth float32, steps int) *snn.Network {
	seed := d.cfg.Seed ^ 0xada ^ (uint64(steps)<<24 + uint64(vth*1000))
	net := d.cfg.Arch(snn.DefaultConfig(vth, steps), rng.New(seed))
	opts := d.cfg.TrainOpts()
	opts.Encoder = d.cfg.Encoder
	opts.Seed = seed + 1
	snn.Train(net, d.cfg.Train, opts)
	return net
}

// Approximate derives the AxSNN at the given approximation level and
// precision scale, calibrating Eq. 1 on held-out samples.
func (d *Designer) Approximate(net *snn.Network, level float64, scale quant.Scale) (*snn.Network, approx.Report) {
	return approx.Approximate(net, approx.Params{Level: level, Scale: scale}, d.CalibrationFrames(net))
}

// CalibrationFrames encodes the calibration subset for a network's
// time-step count.
func (d *Designer) CalibrationFrames(net *snn.Network) [][]*tensor.Tensor {
	n := d.cfg.CalibN
	if n > d.cfg.Test.Len() {
		n = d.cfg.Test.Len()
	}
	r := rng.New(d.cfg.Seed + 7)
	out := make([][]*tensor.Tensor, n)
	for i := 0; i < n; i++ {
		out[i] = d.cfg.Encoder.Encode(d.cfg.Test.Samples[i].Image, net.Cfg.Steps, r)
	}
	return out
}

// CraftAdversarial perturbs the whole test set against the surrogate
// model with the given attack, returning a new set.
func (d *Designer) CraftAdversarial(surrogate *snn.Network, atk *attack.Gradient, seed uint64) *dataset.Set {
	return atk.PerturbSet(surrogate, d.cfg.Test, rng.New(seed))
}

// EvaluateSet returns a network's accuracy on a (possibly adversarial)
// set; on an adversarial set this equals the paper's robustness
// R(ε) = 1 − adv/|Dts|.
func (d *Designer) EvaluateSet(net *snn.Network, set *dataset.Set) float64 {
	return snn.Accuracy(net, set, d.cfg.Encoder, d.cfg.Seed+9)
}

// RobustnessCurve evaluates a victim over a range of budgets, crafting
// each adversarial set on the surrogate (Figs. 1-3 shape).
func (d *Designer) RobustnessCurve(victim, surrogate *snn.Network, mk func(float64) *attack.Gradient, eps []float64) []float64 {
	out := make([]float64, len(eps))
	for i, e := range eps {
		if e == 0 {
			out[i] = d.EvaluateSet(victim, d.cfg.Test)
			continue
		}
		atk := mk(e)
		atk.Encoder = d.cfg.Encoder
		adv := d.CraftAdversarial(surrogate, atk, d.cfg.Seed+11+uint64(i))
		out[i] = d.EvaluateSet(victim, adv)
	}
	return out
}

// SearchRobust runs Algorithm 1 over the given space.
func (d *Designer) SearchRobust(space defense.SearchSpace, mk func(float64) *attack.Gradient, eps, q float64, workers int) defense.SearchResult {
	return defense.PrecisionScalingSearch(defense.SearchConfig{
		Space:     space,
		AttackFor: mk,
		Eps:       eps,
		Q:         q,
		Train:     d.cfg.Train,
		Test:      d.cfg.Test,
		BuildNet:  d.cfg.Arch,
		TrainOpts: d.cfg.TrainOpts,
		Encoder:   d.cfg.Encoder,
		CalibN:    d.cfg.CalibN,
		Seed:      d.cfg.Seed,
		Workers:   workers,
	})
}

// Energy reports the modelled synaptic-operation energy of a network on
// the calibration workload (the "up to 4X" comparison).
func (d *Designer) Energy(net *snn.Network) approx.EnergyReport {
	return approx.MeasureEnergy(net, d.CalibrationFrames(net))
}
