package core

import (
	"testing"

	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/defense"
	"repro/internal/dvs"
	"repro/internal/encoding"
	"repro/internal/quant"
	"repro/internal/rng"
	"repro/internal/snn"
)

func testDesigner() *Designer {
	dcfg := dataset.DefaultSynthConfig()
	dcfg.H, dcfg.W = 12, 12
	return NewDesigner(Config{
		Arch: func(cfg snn.Config, r *rng.RNG) *snn.Network {
			return snn.DenseNet(cfg, 144, 64, 10, r)
		},
		Train:   dataset.GenerateSynth(300, dcfg, 1),
		Test:    dataset.GenerateSynth(60, dcfg, 2),
		Encoder: encoding.Rate{},
		TrainOpts: func() snn.TrainOptions {
			return snn.TrainOptions{Epochs: 4, BatchSize: 16, Optimizer: snn.NewAdam(2e-3)}
		},
		CalibN: 8,
		Seed:   11,
	})
}

func TestDesignerEndToEnd(t *testing.T) {
	d := testDesigner()
	acc := d.TrainAccurate(0.25, 8)
	clean := d.EvaluateSet(acc, nil2set(d))
	if clean < 0.5 {
		t.Fatalf("AccSNN clean accuracy %.2f", clean)
	}

	ax, rep := d.Approximate(acc, 0.1, quant.INT8)
	if rep.TotalPrunedFraction() <= 0 {
		t.Fatal("approximation pruned nothing")
	}
	axClean := d.EvaluateSet(ax, nil2set(d))
	if axClean > clean+0.05 {
		t.Fatalf("AxSNN cleaner than AccSNN: %.2f vs %.2f", axClean, clean)
	}

	sur := d.TrainSurrogate(0.25, 8)
	adv := d.CraftAdversarial(sur, attack.PGD(0.5), 21)
	advAcc := d.EvaluateSet(acc, adv)
	if advAcc >= clean {
		t.Fatalf("attack had no effect: %.2f vs clean %.2f", advAcc, clean)
	}

	e := d.Energy(ax)
	if e.Savings() <= 1 {
		t.Fatalf("no energy savings for pruned network: %v", e.Savings())
	}
}

// nil2set returns the designer's test set (helper keeps call sites
// short).
func nil2set(d *Designer) *dataset.Set { return d.cfg.Test }

func TestDesignerDeterministic(t *testing.T) {
	a := testDesigner().TrainAccurate(0.5, 6)
	b := testDesigner().TrainAccurate(0.5, 6)
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		for j := range pa[i].Data {
			if pa[i].Data[j] != pb[i].Data[j] {
				t.Fatal("training not deterministic for identical seeds")
			}
		}
	}
}

func TestSurrogateDiffersFromVictim(t *testing.T) {
	d := testDesigner()
	acc := d.TrainAccurate(0.5, 6)
	sur := d.TrainSurrogate(0.5, 6)
	same := true
	pa, pb := acc.Params(), sur.Params()
	for i := range pa {
		for j := range pa[i].Data {
			if pa[i].Data[j] != pb[i].Data[j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("surrogate must have independent parameters")
	}
}

func TestRobustnessCurveMonotoneAtZero(t *testing.T) {
	d := testDesigner()
	acc := d.TrainAccurate(0.25, 8)
	sur := d.TrainSurrogate(0.25, 8)
	curve := d.RobustnessCurve(acc, sur, attack.PGD, []float64{0, 0.5})
	if len(curve) != 2 {
		t.Fatalf("curve length %d", len(curve))
	}
	if curve[1] >= curve[0]+0.05 {
		t.Fatalf("accuracy rose under attack: %v", curve)
	}
}

func TestSearchRobustSmoke(t *testing.T) {
	d := testDesigner()
	res := d.SearchRobust(defense.SearchSpace{
		VThs:   []float32{0.25},
		Steps:  []int{6},
		Scales: []quant.Scale{quant.FP32},
		Levels: []float64{0, 0.01},
	}, attack.PGD, 0.3, 0.4, 0)
	if res.Best == nil || len(res.All) != 2 {
		t.Fatalf("unexpected search result: %+v", res)
	}
}

func TestNewDesignerValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for incomplete config")
		}
	}()
	NewDesigner(Config{})
}

func TestGestureDesignerEndToEnd(t *testing.T) {
	gcfg := dvs.DefaultGestureConfig()
	gcfg.Duration = 500
	train := dvs.GenerateGestureSet(33, gcfg, 5)
	test := dvs.GenerateGestureSet(22, gcfg, 6)
	d := NewGestureDesigner(GestureConfig{
		Arch: func(cfg snn.Config, r *rng.RNG) *snn.Network {
			return snn.DVSNet(cfg, 32, 32, dvs.GestureClasses, true, r, rng.New(9))
		},
		Train: train,
		Test:  test,
		TrainOpts: func() snn.TrainOptions {
			return snn.TrainOptions{Epochs: 6, BatchSize: 8, Optimizer: snn.NewAdam(3e-3)}
		},
		Seed: 10,
	})
	acc := d.TrainAccurate(1.0, 8)
	clean := d.Evaluate(acc, test, nil)
	if clean < 0.4 {
		t.Fatalf("gesture clean accuracy %.2f too low", clean)
	}
	adv := d.CraftAdversarial(acc, attack.NewFrame())
	attacked := d.Evaluate(acc, adv, nil)
	aqf := defense.DefaultAQFParams(0.015)
	defended := d.Evaluate(acc, adv, &aqf)
	if defended < attacked {
		t.Fatalf("AQF made things worse: %.2f -> %.2f", attacked, defended)
	}
	ax, _ := d.Approximate(acc, 0.01, quant.FP16)
	if d.Evaluate(ax, test, nil) < clean-0.3 {
		t.Fatal("mild approximation destroyed the gesture model")
	}
}

func TestNewGestureDesignerValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for incomplete config")
		}
	}()
	NewGestureDesigner(GestureConfig{})
}
