// Package approx turns a trained accurate SNN (AccSNN) into an
// approximate SNN (AxSNN), the paper's §II/§IV mechanism:
//
//  1. weights are precision-scaled (FP32 / FP16 / INT8, package quant);
//  2. a per-layer approximation threshold a_th is derived from Eq. 1,
//     a_th = (c·Ns/T) · min(1, Vm/Vth) · Σ w_p,
//     using LIF statistics measured on a calibration set;
//  3. synapses whose |w| falls below level·a_th are pruned (deactivated)
//     and neurons whose whole fan-in is pruned are skipped.
//
// The global knob `level` is the paper's approximation level
// {0 (= AccSNN), 0.001, 0.01, 0.1, 1}. The package also provides the
// synaptic-operation energy model behind the "up to 4X more
// energy-efficient" claim.
package approx

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/quant"
	"repro/internal/snn"
	"repro/internal/tensor"
)

// Granularity selects what the approximation deactivates.
type Granularity int

const (
	// Synapses prunes individual connections below the threshold
	// (Algorithm 1's "removing the connections having weights below
	// ath"). The default.
	Synapses Granularity = iota
	// Neurons skips whole output neurons whose mean |fan-in weight|
	// falls in the pruned quantile — the AxNN-style [11] neuron
	// deactivation the paper's §II describes ("determines if the
	// respective neurons should be activated or deactivated").
	Neurons
)

// String names the granularity.
func (g Granularity) String() string {
	if g == Neurons {
		return "neurons"
	}
	return "synapses"
}

// Params selects an approximation configuration.
type Params struct {
	// Level is the approximation level a_th knob; 0 yields the
	// accurate network unchanged (apart from precision scaling).
	Level float64
	// Scale is the precision scale applied to weights before pruning.
	Scale quant.Scale
	// Granularity selects synapse- or neuron-level deactivation.
	Granularity Granularity
}

// LayerReport records what approximation did to one weighted layer.
type LayerReport struct {
	Name        string
	Ath         float64 // Eq. 1 threshold before the level knob
	Threshold   float64 // level·a_th actually applied to |w|
	Connections int     // total synapses
	Pruned      int     // synapses removed
	Neurons     int     // output neurons
	Skipped     int     // neurons with entire fan-in pruned
}

// PrunedFraction returns the fraction of synapses removed.
func (r LayerReport) PrunedFraction() float64 {
	if r.Connections == 0 {
		return 0
	}
	return float64(r.Pruned) / float64(r.Connections)
}

// Report summarizes an approximation pass.
type Report struct {
	Params Params
	Layers []LayerReport
}

// TotalPrunedFraction returns the network-wide pruned synapse fraction.
func (r Report) TotalPrunedFraction() float64 {
	conns, pruned := 0, 0
	for _, l := range r.Layers {
		conns += l.Connections
		pruned += l.Pruned
	}
	if conns == 0 {
		return 0
	}
	return float64(pruned) / float64(conns)
}

// String renders a compact human-readable report.
func (r Report) String() string {
	s := fmt.Sprintf("approx level=%g scale=%s pruned=%.1f%%", r.Params.Level, r.Params.Scale, 100*r.TotalPrunedFraction())
	for _, l := range r.Layers {
		s += fmt.Sprintf("\n  %-8s ath=%.4g thr=%.4g pruned=%d/%d skipped=%d/%d",
			l.Name, l.Ath, l.Threshold, l.Pruned, l.Connections, l.Skipped, l.Neurons)
	}
	return s
}

// Approximate builds the AxSNN: a deep copy of net with precision-scaled
// weights and Eq.1-derived pruning masks. calib supplies frame sequences
// for measuring the spike statistics Eq. 1 needs; it must not be empty
// when p.Level > 0. The original network is never modified.
func Approximate(net *snn.Network, p Params, calib [][]*tensor.Tensor) (*snn.Network, Report) {
	ax := net.DeepClone()
	rep := Report{Params: p}

	// Step 1: precision scaling of every weight matrix (biases too:
	// they travel with the weights on real reduced-precision hardware).
	for _, pl := range ax.ParamLayers() {
		for _, w := range pl.Params() {
			quant.Apply(w, p.Scale)
		}
	}

	if p.Level <= 0 {
		return ax, rep
	}
	if len(calib) == 0 {
		panic("approx: Level > 0 requires a non-empty calibration set")
	}

	// Step 2: measure spike statistics on the calibration set.
	snn.Calibrate(ax, calib)

	// Step 3: compute the Eq. 1 score for every weighted layer, then
	// prune. The published equation fixes the *relative* sensitivity of
	// the layers but not an absolute weight-unit scale (its c·Σw term
	// grows quadratically with fan-in, so no single scale fits every
	// layer); we therefore normalize scores across the network and let
	// `level` select a pruning quantile per layer — see DESIGN.md,
	// "Algorithm notes". Level 1 removes (nearly) every synapse of the
	// most sensitive layers, matching the paper's collapse to chance.
	lifAfter := nextLIF(ax)
	type entry struct {
		name    string
		w       *tensor.Tensor
		mask    **tensor.Tensor
		neurons int
		score   float64
	}
	var entries []entry
	for i, l := range ax.Layers {
		switch v := l.(type) {
		case *snn.Conv2D:
			entries = append(entries, entry{"conv2d", v.W, &v.Mask, v.OutC, eq1Score(v.W, v.OutC, lifAfter[i])})
		case *snn.Dense:
			entries = append(entries, entry{"dense", v.W, &v.Mask, v.Out, eq1Score(v.W, v.Out, lifAfter[i])})
		}
	}
	meanScore := 0.0
	for _, e := range entries {
		meanScore += e.score
	}
	if len(entries) > 0 {
		meanScore /= float64(len(entries))
	}
	for _, e := range entries {
		rel := 1.0
		if meanScore > 0 {
			rel = e.score / meanScore
		}
		rel = math.Min(4, math.Max(0.25, rel))
		// Pruned quantile: level^(0.4/rel^0.35). At level 1 every layer
		// prunes fully (the paper's collapse to chance accuracy); below
		// that, layers with a higher Eq. 1 score approximate earlier.
		// The exponent is calibrated so the paper's level ladder
		// {0.001, 0.01, 0.1} lands near its reported clean-accuracy
		// ladder (≈96%, 93%, 51%).
		frac := math.Min(1, math.Pow(p.Level, 0.4/math.Pow(rel, 0.35)))
		var lr LayerReport
		if p.Granularity == Neurons {
			lr = pruneNeurons(e.name, e.w, e.mask, e.neurons, e.score, frac)
		} else {
			lr = pruneLayer(e.name, e.w, e.mask, e.neurons, e.score, frac)
		}
		rep.Layers = append(rep.Layers, lr)
	}
	return ax, rep
}

// pruneNeurons deactivates the frac of output neurons with the smallest
// mean absolute fan-in weight by zeroing their whole mask rows.
func pruneNeurons(name string, w *tensor.Tensor, mask **tensor.Tensor, neurons int, score, frac float64) LayerReport {
	fanIn := w.Len() / neurons
	means := make([]float64, neurons)
	for o := 0; o < neurons; o++ {
		s := 0.0
		for i := o * fanIn; i < (o+1)*fanIn; i++ {
			s += math.Abs(float64(w.Data[i]))
		}
		means[o] = s / float64(fanIn)
	}
	sorted := append([]float64(nil), means...)
	sort.Float64s(sorted)
	var thr float64
	switch {
	case frac <= 0:
		thr = 0
	case frac >= 1:
		thr = sorted[neurons-1] + 1
	default:
		thr = sorted[int(frac*float64(neurons))]
	}

	m := tensor.New(w.Shape...)
	skipped, pruned := 0, 0
	for o := 0; o < neurons; o++ {
		if means[o] < thr || frac >= 1 {
			skipped++
			pruned += fanIn
			continue
		}
		for i := o * fanIn; i < (o+1)*fanIn; i++ {
			m.Data[i] = 1
		}
	}
	*mask = m
	return LayerReport{
		Name: name, Ath: score, Threshold: thr,
		Connections: w.Len(), Pruned: pruned,
		Neurons: neurons, Skipped: skipped,
	}
}

// eq1Score evaluates Eq. 1 for one weighted layer:
// (c·Ns/T) · min(1, Vm/Vth) · Σ w_p, with Ns/T the measured firing rate
// per neuron per step of the LIF the layer feeds and Σ w_p realized as
// c·mean|w_p| (Algorithm 1, Line 9). The readout layer (no LIF) uses a
// neutral activity factor of 1.
func eq1Score(w *tensor.Tensor, neurons int, lif *snn.LIF) float64 {
	fanIn := w.Len() / neurons
	meanAbs := w.AbsMean()
	nsOverT := 1.0
	spikeProb := 1.0
	if lif != nil {
		if lif.StatSteps > 0 && lif.StatUnits > 0 {
			nsOverT = lif.StatSpikes / float64(lif.StatSteps) / float64(lif.StatUnits)
		}
		vm := lif.MeanMembrane()
		spikeProb = math.Min(1, math.Max(0, vm/float64(lif.VTh)))
	}
	return float64(fanIn) * nsOverT * spikeProb * float64(fanIn) * meanAbs
}

// nextLIF maps each layer index to the first LIF layer at or after it
// (nil for the readout, which has no spiking activation).
func nextLIF(n *snn.Network) map[int]*snn.LIF {
	out := make(map[int]*snn.LIF)
	var pending []int
	for i, l := range n.Layers {
		if lif, ok := l.(*snn.LIF); ok {
			for _, j := range pending {
				out[j] = lif
			}
			pending = pending[:0]
			continue
		}
		pending = append(pending, i)
	}
	return out
}

// pruneLayer removes the lowest-magnitude frac of a layer's synapses by
// installing a 0/1 mask, and reports the result. score is the raw Eq. 1
// value recorded for diagnostics; the applied weight threshold is the
// frac-quantile of |w|.
func pruneLayer(name string, w *tensor.Tensor, mask **tensor.Tensor, neurons int, score, frac float64) LayerReport {
	fanIn := w.Len() / neurons

	thr := quantileAbs(w, frac)
	m := tensor.New(w.Shape...)
	pruned := 0
	for i, v := range w.Data {
		if math.Abs(float64(v)) < thr || frac >= 1 {
			pruned++
		} else {
			m.Data[i] = 1
		}
	}
	*mask = m

	skipped := 0
	for o := 0; o < neurons; o++ {
		alive := false
		for i := o * fanIn; i < (o+1)*fanIn; i++ {
			if m.Data[i] != 0 {
				alive = true
				break
			}
		}
		if !alive {
			skipped++
		}
	}
	return LayerReport{
		Name: name, Ath: score, Threshold: thr,
		Connections: w.Len(), Pruned: pruned,
		Neurons: neurons, Skipped: skipped,
	}
}

// quantileAbs returns the q-quantile of |w| (q clamped to [0,1]).
func quantileAbs(w *tensor.Tensor, q float64) float64 {
	if w.Len() == 0 || q <= 0 {
		return 0
	}
	abs := make([]float64, w.Len())
	for i, v := range w.Data {
		abs[i] = math.Abs(float64(v))
	}
	sort.Float64s(abs)
	if q >= 1 {
		return abs[len(abs)-1] + 1
	}
	return abs[int(q*float64(len(abs)))]
}

// Levels lists the approximation levels evaluated in Figs. 2-3.
var Levels = []float64{0, 0.001, 0.01, 0.1, 1}
