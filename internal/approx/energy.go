package approx

import (
	"repro/internal/snn"
	"repro/internal/tensor"
)

// Energy model (Sen et al., "Approximate computing for spiking neural
// networks", DATE 2017 — the paper's [2]): SNN inference energy is
// dominated by synaptic operations (SOPs), one per input spike per live
// synapse. Pruning synapses removes their SOPs, which is where the
// "up to 4X" energy saving comes from.

// EnergyReport summarizes the synaptic work of one network on a workload.
type EnergyReport struct {
	SOPs          float64 // synaptic operations performed
	PossibleSOPs  float64 // SOPs an unpruned network would have performed
	Samples       int
	EnergyPerSOpJ float64 // assumed energy per SOP (joules)
}

// TotalEnergyJ returns the modelled energy in joules.
func (e EnergyReport) TotalEnergyJ() float64 { return e.SOPs * e.EnergyPerSOpJ }

// Savings returns PossibleSOPs/SOPs, the energy-efficiency factor versus
// the accurate network (1.0 = no saving). A fully pruned network that
// performs no synaptic work at all clamps to PossibleSOPs — the factor
// as if a single SOP remained — so the value stays finite: the old +Inf
// broke encoding/json, which rejects infinities. FullyPruned reports
// whether the clamp fired.
func (e EnergyReport) Savings() float64 {
	if e.SOPs == 0 {
		if e.PossibleSOPs == 0 {
			return 1
		}
		return e.PossibleSOPs
	}
	return e.PossibleSOPs / e.SOPs
}

// FullyPruned reports whether the network performed no synaptic work at
// all while an unpruned one would have — the case Savings clamps.
func (e EnergyReport) FullyPruned() bool { return e.SOPs == 0 && e.PossibleSOPs > 0 }

// defaultEnergyPerSOp is a representative 45 nm digital synaptic-op
// energy (≈ one 32-bit MAC), used only to express results in joules.
const defaultEnergyPerSOp = 3.2e-12

// energyLayer is one weighted layer's synaptic profile: live and total
// synapses reached per unit of input activity.
type energyLayer struct {
	fanOut  float64 // live synapses per input unit
	fullFan float64 // total synapses per input unit
}

// EnergyModel is the per-layer synaptic profile of a network, built
// once (cold) so SOP accounting can run per inference batch without
// re-scanning the prune masks. The profile depends only on geometry and
// masks, which weight-sharing clones share — one model serves every
// clone of the network it was built from. Rebuild after re-pruning or
// a hot swap.
type EnergyModel struct {
	layers []energyLayer
	// EnergyPerSOpJ converts SOPs to joules (defaultEnergyPerSOp).
	EnergyPerSOpJ float64
}

// NewEnergyModel scans the network's weighted layers and masks into a
// reusable SOP-accounting model.
func NewEnergyModel(net *snn.Network) *EnergyModel {
	m := &EnergyModel{EnergyPerSOpJ: defaultEnergyPerSOp}
	for _, l := range net.Layers {
		switch v := l.(type) {
		case *snn.Conv2D:
			total := v.W.Len()
			live := total
			if v.Mask != nil {
				live = 0
				for _, mk := range v.Mask.Data {
					if mk != 0 {
						live++
					}
				}
			}
			inLen := v.Geom.InC * v.Geom.InH * v.Geom.InW
			// Each input unit participates in ~K²·OutC/stride² taps; use
			// exact total synapse count × output positions / input size.
			positions := float64(v.Geom.OutH() * v.Geom.OutW())
			m.layers = append(m.layers, energyLayer{
				fanOut:  float64(live) * positions / float64(inLen),
				fullFan: float64(total) * positions / float64(inLen),
			})
		case *snn.Dense:
			total := v.W.Len()
			live := total
			if v.Mask != nil {
				live = 0
				for _, mk := range v.Mask.Data {
					if mk != 0 {
						live++
					}
				}
			}
			m.layers = append(m.layers, energyLayer{
				fanOut:  float64(live) / float64(v.In),
				fullFan: float64(total) / float64(v.In),
			})
		}
	}
	return m
}

// BatchSOPs attributes the inference work net just performed: the
// caller resets spike statistics (net.ResetStats) before the pass and
// supplies the total input activity (sum of input frame values over the
// whole batch and all steps) plus the batch size. Each weighted layer's
// input activity is the raw input for the first and the preceding LIF's
// accumulated spikes for the rest (LIF statistics are per-sample
// averages, hence the batch multiplier). Returns performed and
// unpruned-baseline SOP counts. Allocation-free: safe on the serve
// scheduler's per-tick path.
func (m *EnergyModel) BatchSOPs(net *snn.Network, inputSum float64, batch int) (sops, possible float64) {
	if batch <= 0 {
		batch = 1
	}
	wi := 0
	var prevLIF *snn.LIF
	for _, l := range net.Layers {
		switch v := l.(type) {
		case *snn.Conv2D, *snn.Dense:
			if wi >= len(m.layers) {
				return sops, possible // model built from a different stack
			}
			sp := inputSum
			if prevLIF != nil {
				sp = prevLIF.StatSpikes * float64(batch)
			}
			sops += sp * m.layers[wi].fanOut
			possible += sp * m.layers[wi].fullFan
			wi++
		case *snn.LIF:
			prevLIF = v
		}
	}
	return sops, possible
}

// MeasureEnergy runs the network over the workload counting SOPs. For
// each weighted layer, every incoming spike costs one SOP per live
// (unpruned) synapse it fans into; the accurate baseline pays fan-out on
// every synapse. Spiking activity is taken from the actual run, so the
// two counts share one activity profile.
func MeasureEnergy(net *snn.Network, workload [][]*tensor.Tensor) EnergyReport {
	rep := EnergyReport{Samples: len(workload), EnergyPerSOpJ: defaultEnergyPerSOp}
	m := NewEnergyModel(net)

	// Instrument a run: Calibrate resets and repopulates LIF statistics,
	// then the model attributes each weighted layer's input activity.
	snn.Calibrate(net, workload)

	// Raw input activity: active input units over the workload.
	inputSum := 0.0
	for _, frames := range workload {
		for t := 0; t < net.Cfg.Steps; t++ {
			f := frames[minInt(t, len(frames)-1)]
			inputSum += f.Sum()
		}
	}
	// Calibrate runs per-sample (batch 1), so LIF statistics already
	// total the whole workload.
	rep.SOPs, rep.PossibleSOPs = m.BatchSOPs(net, inputSum, 1)
	return rep
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
