package approx

import (
	"math"

	"repro/internal/snn"
	"repro/internal/tensor"
)

// Energy model (Sen et al., "Approximate computing for spiking neural
// networks", DATE 2017 — the paper's [2]): SNN inference energy is
// dominated by synaptic operations (SOPs), one per input spike per live
// synapse. Pruning synapses removes their SOPs, which is where the
// "up to 4X" energy saving comes from.

// EnergyReport summarizes the synaptic work of one network on a workload.
type EnergyReport struct {
	SOPs          float64 // synaptic operations performed
	PossibleSOPs  float64 // SOPs an unpruned network would have performed
	Samples       int
	EnergyPerSOpJ float64 // assumed energy per SOP (joules)
}

// TotalEnergyJ returns the modelled energy in joules.
func (e EnergyReport) TotalEnergyJ() float64 { return e.SOPs * e.EnergyPerSOpJ }

// Savings returns PossibleSOPs/SOPs, the energy-efficiency factor versus
// the accurate network (1.0 = no saving). A fully pruned network that
// performs no synaptic work at all reports +Inf.
func (e EnergyReport) Savings() float64 {
	if e.SOPs == 0 {
		if e.PossibleSOPs == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return e.PossibleSOPs / e.SOPs
}

// defaultEnergyPerSOp is a representative 45 nm digital synaptic-op
// energy (≈ one 32-bit MAC), used only to express results in joules.
const defaultEnergyPerSOp = 3.2e-12

// MeasureEnergy runs the network over the workload counting SOPs. For
// each weighted layer, every incoming spike costs one SOP per live
// (unpruned) synapse it fans into; the accurate baseline pays fan-out on
// every synapse. Spiking activity is taken from the actual run, so the
// two counts share one activity profile.
func MeasureEnergy(net *snn.Network, workload [][]*tensor.Tensor) EnergyReport {
	rep := EnergyReport{Samples: len(workload), EnergyPerSOpJ: defaultEnergyPerSOp}

	// Per-layer live-synapse fraction and fan-out.
	type wl struct {
		liveFrac float64
		fanOut   float64 // live synapses per input unit
		fullFan  float64 // total synapses per input unit
		inLen    int
	}
	var weighted []wl
	for _, l := range net.Layers {
		switch v := l.(type) {
		case *snn.Conv2D:
			total := v.W.Len()
			live := total
			if v.Mask != nil {
				live = 0
				for _, m := range v.Mask.Data {
					if m != 0 {
						live++
					}
				}
			}
			inLen := v.Geom.InC * v.Geom.InH * v.Geom.InW
			// Each input unit participates in ~K²·OutC/stride² taps; use
			// exact total synapse count × output positions / input size.
			positions := float64(v.Geom.OutH() * v.Geom.OutW())
			weighted = append(weighted, wl{
				liveFrac: float64(live) / float64(total),
				fanOut:   float64(live) * positions / float64(inLen),
				fullFan:  float64(total) * positions / float64(inLen),
				inLen:    inLen,
			})
		case *snn.Dense:
			total := v.W.Len()
			live := total
			if v.Mask != nil {
				live = 0
				for _, m := range v.Mask.Data {
					if m != 0 {
						live++
					}
				}
			}
			weighted = append(weighted, wl{
				liveFrac: float64(live) / float64(total),
				fanOut:   float64(live) / float64(v.In),
				fullFan:  float64(total) / float64(v.In),
				inLen:    v.In,
			})
		}
	}

	// Measure per-layer input spike counts by instrumenting a run: we
	// re-run the network and read LIF statistics, attributing each
	// weighted layer's input activity to the spike counts of the LIF
	// (or raw input) that feeds it.
	snn.Calibrate(net, workload)

	// Input activity per weighted layer: walk the layer list tracking
	// the most recent spike source. The first weighted layer sees the
	// raw input frames; later ones see the preceding LIF's output.
	wi := 0
	var prevLIF *snn.LIF
	inputSpikes := func() float64 {
		if prevLIF == nil {
			// Raw input: count active input units over the workload.
			total := 0.0
			for _, frames := range workload {
				for t := 0; t < net.Cfg.Steps; t++ {
					f := frames[minInt(t, len(frames)-1)]
					total += f.Sum()
				}
			}
			return total
		}
		return prevLIF.StatSpikes
	}
	for _, l := range net.Layers {
		switch l.(type) {
		case *snn.Conv2D, *snn.Dense:
			sp := inputSpikes()
			rep.SOPs += sp * weighted[wi].fanOut
			rep.PossibleSOPs += sp * weighted[wi].fullFan
			wi++
		case *snn.LIF:
			prevLIF = l.(*snn.LIF)
		}
	}
	return rep
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
