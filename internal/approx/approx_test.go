package approx

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/encoding"
	"repro/internal/quant"
	"repro/internal/rng"
	"repro/internal/snn"
	"repro/internal/tensor"
)

// fixture builds a trained-ish (random but functional) network and a
// calibration workload.
func fixture(seed uint64) (*snn.Network, [][]*tensor.Tensor) {
	r := rng.New(seed)
	cfg := snn.DefaultConfig(0.5, 4)
	net := snn.MNISTNet(cfg, 1, 12, 12, true, r)
	dcfg := dataset.DefaultSynthConfig()
	dcfg.H, dcfg.W = 12, 12
	set := dataset.GenerateSynth(8, dcfg, seed)
	er := rng.New(seed + 1)
	var calib [][]*tensor.Tensor
	for _, s := range set.Samples {
		calib = append(calib, encoding.Direct{}.Encode(s.Image, cfg.Steps, er))
	}
	return net, calib
}

func TestLevelZeroIsAccurate(t *testing.T) {
	net, _ := fixture(1)
	ax, rep := Approximate(net, Params{Level: 0, Scale: quant.FP32}, nil)
	if rep.TotalPrunedFraction() != 0 {
		t.Fatal("level 0 must prune nothing")
	}
	// Weights identical, behaviour identical.
	for i, p := range net.Params() {
		q := ax.Params()[i]
		for j := range p.Data {
			if p.Data[j] != q.Data[j] {
				t.Fatal("level-0 FP32 approximation changed weights")
			}
		}
	}
}

func TestOriginalNetworkUntouched(t *testing.T) {
	net, calib := fixture(2)
	before := net.Params()[0].Clone()
	_, _ = Approximate(net, Params{Level: 0.1, Scale: quant.INT8}, calib)
	after := net.Params()[0]
	for i := range before.Data {
		if before.Data[i] != after.Data[i] {
			t.Fatal("Approximate mutated the source network")
		}
	}
	for _, l := range net.Layers {
		if c, ok := l.(*snn.Conv2D); ok && c.Mask != nil {
			t.Fatal("Approximate installed a mask on the source network")
		}
	}
}

func TestPruningMonotoneInLevel(t *testing.T) {
	net, calib := fixture(3)
	var prev float64 = -1
	for _, level := range []float64{0.001, 0.01, 0.1, 1} {
		_, rep := Approximate(net, Params{Level: level, Scale: quant.FP32}, calib)
		f := rep.TotalPrunedFraction()
		if f < prev {
			t.Fatalf("pruned fraction not monotone: level=%g f=%.3f prev=%.3f", level, f, prev)
		}
		prev = f
	}
	// Level 1 with Eq.1 thresholds must prune the vast majority.
	if prev < 0.9 {
		t.Fatalf("level 1 pruned only %.2f", prev)
	}
}

func TestMaskActuallySilencesSynapses(t *testing.T) {
	net, calib := fixture(4)
	ax, rep := Approximate(net, Params{Level: 0.1, Scale: quant.FP32}, calib)
	if rep.TotalPrunedFraction() == 0 {
		t.Skip("nothing pruned at this seed (unexpected but not a mask bug)")
	}
	// Forward output must differ from the accurate network for a generic
	// input when a significant fraction of synapses is gone.
	img := tensor.New(1, 12, 12)
	r := rng.New(5)
	for i := range img.Data {
		img.Data[i] = r.Float32()
	}
	frames := encoding.Direct{}.Encode(img, net.Cfg.Steps, nil)
	a := net.Forward(frames, false)
	b := ax.Forward(frames, false)
	same := true
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			same = false
		}
	}
	if same && rep.TotalPrunedFraction() > 0.05 {
		t.Fatal("pruning had no effect on outputs")
	}
}

func TestApproximateRequiresCalib(t *testing.T) {
	net, _ := fixture(6)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic without calibration set")
		}
	}()
	Approximate(net, Params{Level: 0.1, Scale: quant.FP32}, nil)
}

func TestReportAccounting(t *testing.T) {
	net, calib := fixture(7)
	_, rep := Approximate(net, Params{Level: 0.05, Scale: quant.FP16}, calib)
	if len(rep.Layers) == 0 {
		t.Fatal("no layer reports")
	}
	for _, l := range rep.Layers {
		if l.Pruned < 0 || l.Pruned > l.Connections {
			t.Fatalf("bad pruned count: %+v", l)
		}
		if l.Skipped < 0 || l.Skipped > l.Neurons {
			t.Fatalf("bad skipped count: %+v", l)
		}
		if l.PrunedFraction() < 0 || l.PrunedFraction() > 1 {
			t.Fatalf("bad pruned fraction: %+v", l)
		}
		if l.Ath < 0 {
			t.Fatalf("negative a_th: %+v", l)
		}
	}
	if rep.String() == "" {
		t.Fatal("empty report string")
	}
}

func TestPrecisionScaleChangesWeights(t *testing.T) {
	net, _ := fixture(8)
	ax16, _ := Approximate(net, Params{Level: 0, Scale: quant.FP16}, nil)
	ax8, _ := Approximate(net, Params{Level: 0, Scale: quant.INT8}, nil)
	w := net.Params()[0]
	w16 := ax16.Params()[0]
	w8 := ax8.Params()[0]
	e16 := quant.MSE(w, w16)
	e8 := quant.MSE(w, w8)
	if e16 <= 0 || e8 <= 0 {
		t.Fatalf("expected quantization error, got fp16=%v int8=%v", e16, e8)
	}
	if e8 < e16 {
		t.Fatalf("int8 error %v below fp16 error %v", e8, e16)
	}
}

func TestEnergySavingsGrowWithPruning(t *testing.T) {
	net, calib := fixture(9)
	accRep := MeasureEnergy(net, calib)
	if accRep.Savings() != 1 {
		t.Fatalf("unpruned network must have savings 1, got %v", accRep.Savings())
	}
	if accRep.SOPs <= 0 {
		t.Fatal("no synaptic operations counted")
	}

	ax, rep := Approximate(net, Params{Level: 0.1, Scale: quant.FP32}, calib)
	axRep := MeasureEnergy(ax, calib)
	if rep.TotalPrunedFraction() > 0.2 && axRep.Savings() < 1.1 {
		t.Fatalf("pruned %.0f%% but savings only %.2fx",
			100*rep.TotalPrunedFraction(), axRep.Savings())
	}
	if axRep.TotalEnergyJ() >= accRep.TotalEnergyJ() {
		t.Fatal("approximate network must consume less modelled energy")
	}
}

func TestLevelsListMatchesPaper(t *testing.T) {
	want := []float64{0, 0.001, 0.01, 0.1, 1}
	if len(Levels) != len(want) {
		t.Fatal("Levels list wrong length")
	}
	for i := range want {
		if Levels[i] != want[i] {
			t.Fatalf("Levels[%d] = %g", i, Levels[i])
		}
	}
}
