package approx

import (
	"testing"

	"repro/internal/quant"
	"repro/internal/snn"
)

func TestNeuronGranularitySkipsWholeRows(t *testing.T) {
	net, calib := fixture(20)
	ax, rep := Approximate(net, Params{Level: 0.1, Scale: quant.FP32, Granularity: Neurons}, calib)
	totalSkipped := 0
	for _, l := range rep.Layers {
		totalSkipped += l.Skipped
		// At neuron granularity, pruned synapses must be exactly
		// skipped × fan-in.
		fanIn := l.Connections / l.Neurons
		if l.Pruned != l.Skipped*fanIn {
			t.Fatalf("%s: pruned %d != skipped %d × fanIn %d", l.Name, l.Pruned, l.Skipped, fanIn)
		}
	}
	if totalSkipped == 0 {
		t.Fatal("no neurons skipped at level 0.1")
	}
	// Masks must be all-zero or all-one per row.
	for _, l := range ax.Layers {
		var mask []float32
		var neurons int
		switch v := l.(type) {
		case *snn.Conv2D:
			mask, neurons = v.Mask.Data, v.OutC
		case *snn.Dense:
			mask, neurons = v.Mask.Data, v.Out
		default:
			continue
		}
		fanIn := len(mask) / neurons
		for o := 0; o < neurons; o++ {
			first := mask[o*fanIn]
			for i := o*fanIn + 1; i < (o+1)*fanIn; i++ {
				if mask[i] != first {
					t.Fatal("neuron mask row is not uniform")
				}
			}
		}
	}
}

func TestGranularityString(t *testing.T) {
	if Synapses.String() != "synapses" || Neurons.String() != "neurons" {
		t.Fatal("granularity names wrong")
	}
}

func TestNeuronLevelOneKillsEverything(t *testing.T) {
	net, calib := fixture(21)
	_, rep := Approximate(net, Params{Level: 1, Scale: quant.FP32, Granularity: Neurons}, calib)
	if rep.TotalPrunedFraction() < 0.99 {
		t.Fatalf("level 1 neurons pruned only %.2f", rep.TotalPrunedFraction())
	}
}

func TestNeuronVsSynapseAccuracy(t *testing.T) {
	// At equal level, neuron skipping is coarser and must hurt at least
	// as much as synapse pruning (within noise) on a generic network.
	net, calib := fixture(22)
	axS, repS := Approximate(net, Params{Level: 0.05, Scale: quant.FP32}, calib)
	axN, repN := Approximate(net, Params{Level: 0.05, Scale: quant.FP32, Granularity: Neurons}, calib)
	_ = axS
	_ = axN
	// Equal pruned fractions by construction (same quantile), different
	// structure.
	if repN.TotalPrunedFraction() < repS.TotalPrunedFraction()-0.1 {
		t.Fatalf("granularities prune very different fractions: %v vs %v",
			repN.TotalPrunedFraction(), repS.TotalPrunedFraction())
	}
}
