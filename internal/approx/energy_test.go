package approx

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/snn"
	"repro/internal/tensor"
)

// fullyPrune installs an all-zero mask on every weighted layer.
func fullyPrune(net *snn.Network) {
	for _, l := range net.Layers {
		switch v := l.(type) {
		case *snn.Conv2D:
			v.Mask = tensor.New(v.W.Shape...)
		case *snn.Dense:
			v.Mask = tensor.New(v.W.Shape...)
		}
	}
}

// Savings used to return +Inf for a fully pruned network, which
// encoding/json rejects outright — any metrics payload carrying the
// value failed to marshal. It now clamps to PossibleSOPs and flags the
// case via FullyPruned.
func TestSavingsFullyPrunedMarshals(t *testing.T) {
	net, calib := fixture(31)
	fullyPrune(net)
	e := MeasureEnergy(net, calib)
	if e.SOPs != 0 {
		t.Fatalf("fully pruned network performed %v SOPs", e.SOPs)
	}
	if !e.FullyPruned() {
		t.Fatal("FullyPruned must report the clamp case")
	}
	s := e.Savings()
	if math.IsInf(s, 0) || math.IsNaN(s) {
		t.Fatalf("Savings must stay finite, got %v", s)
	}
	if s != e.PossibleSOPs {
		t.Fatalf("clamped Savings = %v, want PossibleSOPs %v", s, e.PossibleSOPs)
	}
	payload := struct {
		Report  EnergyReport `json:"report"`
		Savings float64      `json:"savings"`
	}{e, s}
	if _, err := json.Marshal(payload); err != nil {
		t.Fatalf("marshaling the energy metrics: %v", err)
	}
}

func TestSavingsEdgeCases(t *testing.T) {
	if s := (EnergyReport{}).Savings(); s != 1 {
		t.Fatalf("zero-activity report Savings = %v, want 1", s)
	}
	if (EnergyReport{}).FullyPruned() {
		t.Fatal("zero-activity report is not the fully-pruned case")
	}
	e := EnergyReport{SOPs: 50, PossibleSOPs: 200}
	if s := e.Savings(); s != 4 {
		t.Fatalf("Savings = %v, want 4", s)
	}
	if e.FullyPruned() {
		t.Fatal("working network is not fully pruned")
	}
}

// The batch accounting must agree with MeasureEnergy when driven by the
// same activity profile: Calibrate runs per-sample, so a batch
// multiplier of 1 over its statistics reproduces the report exactly.
func TestEnergyModelMatchesMeasure(t *testing.T) {
	net, calib := fixture(33)
	want := MeasureEnergy(net, calib)

	m := NewEnergyModel(net)
	snn.Calibrate(net, calib)
	inputSum := 0.0
	for _, frames := range calib {
		for st := 0; st < net.Cfg.Steps; st++ {
			f := frames[minInt(st, len(frames)-1)]
			inputSum += f.Sum()
		}
	}
	sops, possible := m.BatchSOPs(net, inputSum, 1)
	if sops != want.SOPs || possible != want.PossibleSOPs {
		t.Fatalf("BatchSOPs = (%v, %v), MeasureEnergy = (%v, %v)",
			sops, possible, want.SOPs, want.PossibleSOPs)
	}
	if want.SOPs <= 0 || want.PossibleSOPs < want.SOPs {
		t.Fatalf("degenerate report: %+v", want)
	}
}

// BatchSOPs must not allocate: it runs on the serve scheduler's
// per-tick path.
func TestBatchSOPsZeroAlloc(t *testing.T) {
	net, calib := fixture(35)
	m := NewEnergyModel(net)
	snn.Calibrate(net, calib)
	allocs := testing.AllocsPerRun(20, func() {
		m.BatchSOPs(net, 123, 4)
	})
	if allocs != 0 {
		t.Fatalf("BatchSOPs allocates %v/op, want 0", allocs)
	}
}
