package attack

import (
	"repro/internal/dataset"
	"repro/internal/encoding"
	"repro/internal/rng"
	"repro/internal/snn"
	"repro/internal/tensor"
)

// Universal computes a single input-agnostic l∞-bounded perturbation
// that degrades the model on as many samples as possible
// (Moosavi-Dezfooli et al.'s universal adversarial perturbations,
// adapted to the SNN's straight-through input gradients). A universal
// perturbation is the strongest practical threat for an edge deployment:
// it can be baked into a sticker or a sensor bias, needing no per-input
// computation.
type Universal struct {
	Eps     float64 // l∞ bound on the universal perturbation
	Alpha   float64 // per-sample gradient step (0 ⇒ Eps/8)
	Epochs  int     // passes over the crafting set
	Encoder encoding.Encoder
}

// NewUniversal returns a UAP attack with budget eps.
func NewUniversal(eps float64) *Universal {
	return &Universal{Eps: eps, Epochs: 3, Encoder: encoding.Direct{}}
}

// Name identifies the attack.
func (u *Universal) Name() string { return "UAP" }

// Compute crafts the universal perturbation against model using the
// given crafting set. The returned tensor has the sample image shape.
//
// Each epoch splits into two phases. The misclassification scan —
// which samples the current delta already fools, i.e. where budget
// should not be spent — evaluates every sample against the delta
// frozen at epoch start, fanned out over the shared tensor worker pool
// on weight-sharing model clones. The gradient ascent then walks the
// still-correct samples serially, because each delta update feeds the
// next sample's gradient (the algorithm's sequential core). Freezing
// the scan at the epoch boundary is what makes the scan parallel; it
// only defers "already fooled" credit by at most one epoch. Encoder
// randomness is pre-split per (epoch, sample, phase), so the result is
// deterministic for a given seed; across worker budgets it inherits
// the gradient kernels' contract (TMatMul is deterministic per worker
// count — large conv backward shapes can differ in the last ulp
// between budgets; everything else is invariant).
func (u *Universal) Compute(model *snn.Network, set *dataset.Set, r *rng.RNG) *tensor.Tensor {
	if set.Len() == 0 {
		return nil
	}
	alpha := u.Alpha
	if alpha == 0 {
		alpha = u.Eps / 8
	}
	n := set.Len()
	delta := tensor.New(set.Samples[0].Image.Shape...)
	still := make([]bool, n)
	scanR := make([]*rng.RNG, n)
	stepR := make([]*rng.RNG, n)
	for epoch := 0; epoch < u.Epochs; epoch++ {
		for i := 0; i < n; i++ {
			scanR[i] = r.Split()
			stepR[i] = r.Split()
		}
		frozen := delta.Clone()
		tensor.ParallelFor(n, cloneGrain(n), func(lo, hi int) {
			m := model.CloneArchitecture()
			for i := lo; i < hi; i++ {
				s := set.Samples[i]
				x := s.Image.Clone().Add(frozen)
				x.Clamp(0, 1)
				frames := u.Encoder.Encode(x, m.Cfg.Steps, scanR[i])
				still[i] = m.Predict(frames) == s.Label
			}
		})
		for i, s := range set.Samples {
			if !still[i] {
				continue // already fooled at epoch start; spend budget elsewhere
			}
			x := s.Image.Clone().Add(delta)
			x.Clamp(0, 1)
			frames := u.Encoder.Encode(x, model.Cfg.Steps, stepR[i])
			frameGrads := snn.InputGradient(model, frames, s.Label)
			g := encoding.SumFrameGradients(frameGrads)
			g.Sign()
			delta.AddScaled(float32(alpha), g)
			delta.Clamp(float32(-u.Eps), float32(u.Eps))
		}
	}
	return delta
}

// Apply returns a copy of img shifted by delta and clipped to [0,1].
func (u *Universal) Apply(img, delta *tensor.Tensor) *tensor.Tensor {
	out := img.Clone()
	out.Add(delta)
	out.Clamp(0, 1)
	return out
}

// PerturbSet applies a computed delta to every sample of a set.
func (u *Universal) PerturbSet(set *dataset.Set, delta *tensor.Tensor) *dataset.Set {
	out := set.Clone()
	for i := range out.Samples {
		out.Samples[i].Image = u.Apply(out.Samples[i].Image, delta)
	}
	return out
}
