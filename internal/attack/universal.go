package attack

import (
	"repro/internal/dataset"
	"repro/internal/encoding"
	"repro/internal/rng"
	"repro/internal/snn"
	"repro/internal/tensor"
)

// Universal computes a single input-agnostic l∞-bounded perturbation
// that degrades the model on as many samples as possible
// (Moosavi-Dezfooli et al.'s universal adversarial perturbations,
// adapted to the SNN's straight-through input gradients). A universal
// perturbation is the strongest practical threat for an edge deployment:
// it can be baked into a sticker or a sensor bias, needing no per-input
// computation.
type Universal struct {
	Eps     float64 // l∞ bound on the universal perturbation
	Alpha   float64 // per-sample gradient step (0 ⇒ Eps/8)
	Epochs  int     // passes over the crafting set
	Encoder encoding.Encoder
}

// NewUniversal returns a UAP attack with budget eps.
func NewUniversal(eps float64) *Universal {
	return &Universal{Eps: eps, Epochs: 3, Encoder: encoding.Direct{}}
}

// Name identifies the attack.
func (u *Universal) Name() string { return "UAP" }

// Compute crafts the universal perturbation against model using the
// given crafting set. The returned tensor has the sample image shape.
func (u *Universal) Compute(model *snn.Network, set *dataset.Set, r *rng.RNG) *tensor.Tensor {
	if set.Len() == 0 {
		return nil
	}
	alpha := u.Alpha
	if alpha == 0 {
		alpha = u.Eps / 8
	}
	delta := tensor.New(set.Samples[0].Image.Shape...)
	for epoch := 0; epoch < u.Epochs; epoch++ {
		for _, s := range set.Samples {
			x := s.Image.Clone().Add(delta)
			x.Clamp(0, 1)
			frames := u.Encoder.Encode(x, model.Cfg.Steps, r)
			if model.Predict(frames) != s.Label {
				continue // already fooled; spend budget elsewhere
			}
			frameGrads := snn.InputGradient(model, frames, s.Label)
			g := encoding.SumFrameGradients(frameGrads)
			g.Sign()
			delta.AddScaled(float32(alpha), g)
			delta.Clamp(float32(-u.Eps), float32(u.Eps))
		}
	}
	return delta
}

// Apply returns a copy of img shifted by delta and clipped to [0,1].
func (u *Universal) Apply(img, delta *tensor.Tensor) *tensor.Tensor {
	out := img.Clone()
	out.Add(delta)
	out.Clamp(0, 1)
	return out
}

// PerturbSet applies a computed delta to every sample of a set.
func (u *Universal) PerturbSet(set *dataset.Set, delta *tensor.Tensor) *dataset.Set {
	out := set.Clone()
	for i := range out.Samples {
		out.Samples[i].Image = u.Apply(out.Samples[i].Image, delta)
	}
	return out
}
