package attack

import (
	"testing"

	"repro/internal/encoding"
	"repro/internal/rng"
	"repro/internal/snn"
	"repro/internal/tensor"
)

func TestRandomNoiseBounded(t *testing.T) {
	img := tensor.New(64)
	img.Fill(0.5)
	n := NewRandomNoise(0.2)
	out := n.Perturb(img, rng.New(1))
	for i := range out.Data {
		d := out.Data[i] - img.Data[i]
		if d > 0.2+1e-6 || d < -0.2-1e-6 {
			t.Fatalf("noise %v exceeds budget", d)
		}
	}
	if n.Name() != "RandomNoise" {
		t.Fatal("name wrong")
	}
}

func TestRandomNoiseClips(t *testing.T) {
	img := tensor.New(32) // zeros
	out := NewRandomNoise(0.5).Perturb(img, rng.New(2))
	for _, v := range out.Data {
		if v < 0 || v > 1 {
			t.Fatalf("pixel %v outside [0,1]", v)
		}
	}
}

// The whole point of the control: at equal budget, aimed PGD must hurt
// far more than random noise.
func TestAdversarialBeatsRandomNoise(t *testing.T) {
	net, test := trainedDigitNet(t, 110)
	enc := encoding.Direct{}
	small := test.Subset(50)

	noiseSet := small.Clone()
	nr := rng.New(3)
	noise := NewRandomNoise(0.3)
	for i := range noiseSet.Samples {
		noiseSet.Samples[i].Image = noise.Perturb(noiseSet.Samples[i].Image, nr)
	}
	noiseAcc := snn.Accuracy(net, noiseSet, enc, 4)

	advSet := small.Clone()
	ar := rng.New(5)
	atk := PGD(0.3)
	for i := range advSet.Samples {
		s := &advSet.Samples[i]
		s.Image = atk.Perturb(net, s.Image, s.Label, ar)
	}
	advAcc := snn.Accuracy(net, advSet, enc, 4)

	if advAcc >= noiseAcc {
		t.Fatalf("PGD (%.2f) not stronger than random noise (%.2f)", advAcc, noiseAcc)
	}
}
