package attack

import (
	"sort"

	"repro/internal/dvs"
	"repro/internal/snn"
	"repro/internal/tensor"
)

// Neuromorphic attacks operate on raw event streams. Both follow
// DVS-Attacks (Marchisio et al., IJCNN 2021 — the paper's [6]).

// Sparse is the stealthy gradient-guided event attack: it iteratively
// injects (or deletes) a small number of events at the spatio-temporal
// positions where the true-label loss gradient is steepest, until the
// surrogate model misclassifies or the budget is exhausted.
type Sparse struct {
	// MaxIter bounds the greedy iterations.
	MaxIter int
	// EventsPerIter is how many event cells are flipped per iteration.
	EventsPerIter int
	// Steps is the voxelization depth used to probe the model; 0 means
	// the model's configured time steps.
	Steps int
	// AllowRemoval also lets the attack delete genuine events. The
	// default (false) matches DVS-Attacks' injection-style perturbation:
	// the attack stays stealthy and, importantly, remains *undoable* by
	// event filtering — deleted signal can never be restored.
	AllowRemoval bool
}

// NewSparse returns the sparse attack with the defaults used by the
// experiments.
func NewSparse() *Sparse { return &Sparse{MaxIter: 40, EventsPerIter: 48} }

// Name identifies the attack.
func (s *Sparse) Name() string { return "Sparse" }

// Perturb crafts an adversarial event stream against the surrogate model.
func (s *Sparse) Perturb(model *snn.Network, stream *dvs.Stream, label int) *dvs.Stream {
	steps := s.Steps
	if steps == 0 {
		steps = model.Cfg.Steps
	}
	adv := stream.Clone()
	binW := adv.Duration / float64(steps)

	for it := 0; it < s.MaxIter; it++ {
		frames := adv.Voxelize(steps)
		if model.Predict(frames) != label {
			return adv // already fooled
		}
		frameGrads := snn.InputGradient(model, frames, label)

		// Rank cells by |gradient| where flipping moves the input along
		// the ascent direction: grad > 0 on an empty cell (add events)
		// or grad < 0 on an occupied cell (remove events).
		type cell struct {
			t, ch, y, x int
			score       float64
			add         bool
		}
		var cells []cell
		h, w := stream.H, stream.W
		for t, g := range frameGrads {
			f := frames[t]
			for ch := 0; ch < 2; ch++ {
				for y := 0; y < h; y++ {
					for x := 0; x < w; x++ {
						idx := (ch*h+y)*w + x
						gv := float64(g.Data[idx])
						occupied := f.Data[idx] != 0
						switch {
						case gv > 0 && !occupied:
							cells = append(cells, cell{t, ch, y, x, gv, true})
						case gv < 0 && occupied && s.AllowRemoval:
							cells = append(cells, cell{t, ch, y, x, -gv, false})
						}
					}
				}
			}
		}
		if len(cells) == 0 {
			return adv
		}
		sort.Slice(cells, func(i, j int) bool { return cells[i].score > cells[j].score })
		if len(cells) > s.EventsPerIter {
			cells = cells[:s.EventsPerIter]
		}
		for _, c := range cells {
			p := int8(1)
			if c.ch == 1 {
				p = -1
			}
			if c.add {
				adv.Events = append(adv.Events, dvs.Event{
					X: c.x, Y: c.y, P: p,
					T: (float64(c.t) + 0.5) * binW,
				})
			} else {
				removeEventsAt(adv, c.x, c.y, p, float64(c.t)*binW, float64(c.t+1)*binW)
			}
		}
		adv.Sort()
	}
	return adv
}

// removeEventsAt deletes events at pixel (x,y) with polarity p inside
// [t0,t1).
func removeEventsAt(s *dvs.Stream, x, y int, p int8, t0, t1 float64) {
	kept := s.Events[:0]
	for _, e := range s.Events {
		if e.X == x && e.Y == y && e.P == p && e.T >= t0 && e.T < t1 {
			continue
		}
		kept = append(kept, e)
	}
	s.Events = kept
}

// Frame is the simple boundary-flooding attack: it injects events on
// every pixel of the sensor boundary for every time bin ("attacking every
// pixel of the boundary for all the events").
type Frame struct {
	// Bins is the temporal density of injected events; 0 means one
	// injection per model time step over the recording.
	Bins int
	// Thickness of the attacked border in pixels.
	Thickness int
}

// NewFrame returns the frame attack with a 1-pixel border.
func NewFrame() *Frame { return &Frame{Thickness: 1} }

// Name identifies the attack.
func (f *Frame) Name() string { return "Frame" }

// Perturb injects the boundary events. The model is consulted only for
// its time-step count (temporal density); the attack itself is blind.
func (f *Frame) Perturb(model *snn.Network, stream *dvs.Stream, _ int) *dvs.Stream {
	bins := f.Bins
	if bins == 0 {
		bins = model.Cfg.Steps
	}
	th := f.Thickness
	if th <= 0 {
		th = 1
	}
	adv := stream.Clone()
	binW := adv.Duration / float64(bins)
	for b := 0; b < bins; b++ {
		t := (float64(b) + 0.5) * binW
		for y := 0; y < adv.H; y++ {
			for x := 0; x < adv.W; x++ {
				onBorder := x < th || y < th || x >= adv.W-th || y >= adv.H-th
				if !onBorder {
					continue
				}
				adv.Events = append(adv.Events,
					dvs.Event{X: x, Y: y, P: 1, T: t},
					dvs.Event{X: x, Y: y, P: -1, T: t},
				)
			}
		}
	}
	adv.Sort()
	return adv
}

// Corner is the corner-patch variant of the boundary attack from
// DVS-Attacks: events flood a square patch in each sensor corner rather
// than the full boundary. It is stealthier than Frame (fewer events,
// away from the centre of attention) but usually weaker.
type Corner struct {
	// Size is the corner patch edge length in pixels.
	Size int
	// Bins is the temporal density; 0 means one injection per model
	// time step.
	Bins int
}

// NewCorner returns the corner attack with 4×4 patches.
func NewCorner() *Corner { return &Corner{Size: 4} }

// Name identifies the attack.
func (c *Corner) Name() string { return "Corner" }

// Perturb injects events into the four corner patches of every time bin.
func (c *Corner) Perturb(model *snn.Network, stream *dvs.Stream, _ int) *dvs.Stream {
	bins := c.Bins
	if bins == 0 {
		bins = model.Cfg.Steps
	}
	size := c.Size
	if size <= 0 {
		size = 4
	}
	adv := stream.Clone()
	binW := adv.Duration / float64(bins)
	inCorner := func(x, y int) bool {
		nearX := x < size || x >= adv.W-size
		nearY := y < size || y >= adv.H-size
		return nearX && nearY
	}
	for b := 0; b < bins; b++ {
		t := (float64(b) + 0.5) * binW
		for y := 0; y < adv.H; y++ {
			for x := 0; x < adv.W; x++ {
				if !inCorner(x, y) {
					continue
				}
				adv.Events = append(adv.Events,
					dvs.Event{X: x, Y: y, P: 1, T: t},
					dvs.Event{X: x, Y: y, P: -1, T: t},
				)
			}
		}
	}
	adv.Sort()
	return adv
}

// StreamAttack abstracts the neuromorphic attacks for the harness: a
// per-stream Perturb and a whole-set PerturbSet that crafts every
// stream concurrently on the shared tensor worker pool.
type StreamAttack interface {
	Name() string
	Perturb(model *snn.Network, stream *dvs.Stream, label int) *dvs.Stream
	PerturbSet(model *snn.Network, set *dvs.Set) *dvs.Set
}

// streamPerturber is the single-stream half of StreamAttack, what
// PerturbStreams needs from an attack.
type streamPerturber interface {
	Perturb(model *snn.Network, stream *dvs.Stream, label int) *dvs.Stream
}

// PerturbStreams crafts an adversarial copy of every stream in a set,
// fanning the per-stream work out over the shared tensor worker pool.
// Each worker block crafts against a weight-sharing evaluation clone of
// the model, so gradient probes never contend on membrane state. Every
// stream's result depends only on (weights, stream, label) — the
// attacks consume no shared RNG and worker scheduling never reorders
// anything — so at a fixed worker budget the output is bit-identical
// to looping Perturb serially. Across *different* worker counts the
// event-injection attacks (Frame, Corner) are invariant outright;
// Sparse inherits the GEMM contract of its gradient probes (TMatMul is
// deterministic per worker count, so large conv shapes can differ in
// the last ulp between budgets — see internal/tensor/gemm.go).
func PerturbStreams(atk streamPerturber, model *snn.Network, set *dvs.Set) *dvs.Set {
	out := &dvs.Set{Classes: set.Classes, W: set.W, H: set.H, Samples: make([]dvs.Sample, len(set.Samples))}
	tensor.ParallelFor(len(set.Samples), cloneGrain(len(set.Samples)), func(lo, hi int) {
		m := model.CloneArchitecture()
		for i := lo; i < hi; i++ {
			sm := set.Samples[i]
			out.Samples[i] = dvs.Sample{Stream: atk.Perturb(m, sm.Stream, sm.Label), Label: sm.Label}
		}
	})
	return out
}

// cloneGrain sizes ParallelFor blocks for loops that clone the model
// per block: ~4 blocks per worker keeps work-stealing balance (stream
// crafting cost varies wildly — Sparse exits early on fooled samples)
// without paying one CloneArchitecture per stream.
func cloneGrain(n int) int {
	g := (n + 4*tensor.Workers() - 1) / (4 * tensor.Workers())
	if g < 1 {
		g = 1
	}
	return g
}

// PerturbSet implements StreamAttack.
func (s *Sparse) PerturbSet(model *snn.Network, set *dvs.Set) *dvs.Set {
	return PerturbStreams(s, model, set)
}

// PerturbSet implements StreamAttack.
func (f *Frame) PerturbSet(model *snn.Network, set *dvs.Set) *dvs.Set {
	return PerturbStreams(f, model, set)
}

// PerturbSet implements StreamAttack.
func (c *Corner) PerturbSet(model *snn.Network, set *dvs.Set) *dvs.Set {
	return PerturbStreams(c, model, set)
}

var (
	_ StreamAttack = (*Sparse)(nil)
	_ StreamAttack = (*Frame)(nil)
	_ StreamAttack = (*Corner)(nil)
)
