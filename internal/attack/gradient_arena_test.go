package attack

import (
	"testing"

	"repro/internal/encoding"
	"repro/internal/rng"
	"repro/internal/snn"
	"repro/internal/tensor"
)

// perturbBatchReference replicates the pre-arena PerturbBatch inner
// loop — allocating StackFrames + InputGradientBatch +
// SumFrameGradients per iteration — so the arena-backed implementation
// can be pinned against the seed behaviour bit-for-bit.
func perturbBatchReference(g *Gradient, model *snn.Network, imgs []*tensor.Tensor, labels []int, r *rng.RNG) []*tensor.Tensor {
	batch := len(imgs)
	rngs := make([]*rng.RNG, batch)
	for i := range rngs {
		rngs[i] = r.Split()
	}
	alpha := g.Alpha
	if alpha == 0 {
		if g.RandomStart {
			alpha = 2.5 * g.Eps / float64(g.Steps)
		} else {
			alpha = g.Eps / float64(g.Steps)
		}
	}
	advs := make([]*tensor.Tensor, batch)
	for i, img := range imgs {
		advs[i] = img.Clone()
		if g.RandomStart {
			start := alpha
			if g.Eps < start {
				start = g.Eps
			}
			for j := range advs[i].Data {
				advs[i].Data[j] += float32((2*rngs[i].Float64() - 1) * start)
			}
			projectLinf(advs[i], img, g.Eps)
			advs[i].Clamp(0, 1)
		}
	}
	lossLabels := make([]int, batch)
	samples := make([][]*tensor.Tensor, batch)
	per := imgs[0].Len()
	for it := 0; it < g.Steps; it++ {
		for i := range advs {
			samples[i] = g.Encoder.Encode(advs[i], model.Cfg.Steps, rngs[i])
		}
		dir := float32(alpha)
		if g.Target >= 0 {
			dir = float32(-alpha)
			for i := range lossLabels {
				lossLabels[i] = g.Target
			}
		} else {
			copy(lossLabels, labels)
		}
		frames := snn.StackFrames(samples, model.Cfg.Steps)
		grad := encoding.SumFrameGradients(snn.InputGradientBatch(model, frames, lossLabels))
		for i, adv := range advs {
			gi := tensor.FromSlice(grad.Data[i*per:(i+1)*per], adv.Shape...)
			gi.Sign()
			adv.AddScaled(dir, gi)
			projectLinf(adv, imgs[i], g.Eps)
			adv.Clamp(0, 1)
		}
	}
	return advs
}

// TestPerturbBatchArenaMatchesReference pins the arena-backed
// PerturbBatch to the allocating seed path for PGD, BIM and a targeted
// variant, on both dense and convolutional surrogates.
func TestPerturbBatchArenaMatchesReference(t *testing.T) {
	cfg := snn.DefaultConfig(0.5, 5)
	nets := map[string]*snn.Network{
		"dense": snn.DenseNet(cfg, 144, 24, 10, rng.New(31)),
		"conv":  snn.MNISTNet(cfg, 1, 12, 12, true, rng.New(32)),
	}
	attacks := map[string]*Gradient{
		"pgd":      PGD(0.3),
		"bim":      BIM(0.2),
		"targeted": TargetedPGD(0.3, 4),
	}
	for _, a := range attacks {
		a.Steps = 3
		a.Encoder = encoding.Rate{}
	}
	r := rng.New(33)
	imgs := make([]*tensor.Tensor, 5)
	labels := make([]int, len(imgs))
	for i := range imgs {
		imgs[i] = tensor.New(1, 12, 12)
		for j := range imgs[i].Data {
			imgs[i].Data[j] = r.Float32()
		}
		labels[i] = i % 10
	}
	dense2d := make([]*tensor.Tensor, len(imgs))
	for i, img := range imgs {
		dense2d[i] = img.Reshape(12, 12)
	}
	for netName, net := range nets {
		batch := imgs
		if netName == "dense" {
			batch = dense2d
		}
		for atkName, atk := range attacks {
			want := perturbBatchReference(atk, net, batch, labels, rng.New(55))
			got := atk.PerturbBatch(net, batch, labels, rng.New(55))
			for i := range want {
				for j := range want[i].Data {
					if got[i].Data[j] != want[i].Data[j] {
						t.Fatalf("%s/%s sample %d pixel %d: %v, want %v (arena crafting must be bit-identical)",
							netName, atkName, i, j, got[i].Data[j], want[i].Data[j])
					}
				}
			}
		}
	}
}
