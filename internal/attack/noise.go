package attack

import (
	"repro/internal/rng"
	"repro/internal/tensor"
)

// RandomNoise is the non-adversarial control: uniform l∞-bounded noise
// with the same budget as the gradient attacks. Robustness papers use it
// to separate "the input is merely degraded" from "the input is
// adversarially aimed" — a model that fails equally under both is not
// being attacked, it is just brittle.
type RandomNoise struct {
	Eps float64
}

// NewRandomNoise returns the control with budget eps.
func NewRandomNoise(eps float64) *RandomNoise { return &RandomNoise{Eps: eps} }

// Name identifies the control.
func (n *RandomNoise) Name() string { return "RandomNoise" }

// Perturb adds uniform noise in [-eps, eps] per pixel and clips to [0,1].
// The model argument is ignored (signature-compatible with Gradient use
// sites via small adapters).
func (n *RandomNoise) Perturb(img *tensor.Tensor, r *rng.RNG) *tensor.Tensor {
	out := img.Clone()
	for i := range out.Data {
		out.Data[i] += float32((2*r.Float64() - 1) * n.Eps)
	}
	out.Clamp(0, 1)
	return out
}
