// Package attack implements the four adversarial attacks the paper
// evaluates (§II, §III): the gradient-based l∞ attacks PGD and BIM on
// static images (plus single-step FGSM as a baseline), and the
// neuromorphic Sparse and Frame attacks on DVS event streams.
//
// Threat model (paper §III): the adversary crafts examples with the
// *accurate* classifier's gradients — it does not know the victim's
// approximation level, precision scale or structural parameters — and the
// crafted inputs transfer to the AxSNN under evaluation.
package attack

import (
	"repro/internal/dataset"
	"repro/internal/encoding"
	"repro/internal/rng"
	"repro/internal/snn"
	"repro/internal/tensor"
)

// Gradient is an iterative l∞ gradient attack on pixel intensities.
// RandomStart distinguishes PGD (true) from BIM (false).
type Gradient struct {
	Eps         float64 // l∞ perturbation budget ε
	Steps       int     // iterations
	Alpha       float64 // per-step size (0 ⇒ ε/Steps·2.5 for PGD, ε/Steps for BIM)
	RandomStart bool
	Encoder     encoding.Encoder // encoding used while computing gradients

	// Target, when non-negative, switches to a targeted attack: instead
	// of maximizing the true-label loss, the attack *minimizes* the
	// loss towards Target, steering the classifier to that class.
	Target int
}

// PGD returns the projected-gradient-descent attack with budget eps.
func PGD(eps float64) *Gradient {
	return &Gradient{Eps: eps, Steps: 7, RandomStart: true, Encoder: encoding.Direct{}, Target: -1}
}

// BIM returns the basic iterative method with budget eps.
func BIM(eps float64) *Gradient {
	return &Gradient{Eps: eps, Steps: 7, RandomStart: false, Encoder: encoding.Direct{}, Target: -1}
}

// FGSM returns the single-step fast-gradient-sign baseline.
func FGSM(eps float64) *Gradient {
	return &Gradient{Eps: eps, Steps: 1, Alpha: eps, RandomStart: false, Encoder: encoding.Direct{}, Target: -1}
}

// TargetedPGD returns a PGD variant that steers inputs toward class
// target instead of merely away from the truth.
func TargetedPGD(eps float64, target int) *Gradient {
	g := PGD(eps)
	g.Target = target
	return g
}

// Name identifies the attack for reports.
func (g *Gradient) Name() string {
	switch {
	case g.Steps == 1:
		return "FGSM"
	case g.RandomStart:
		return "PGD"
	default:
		return "BIM"
	}
}

// Perturb crafts an adversarial image from img (values in [0,1]) against
// model, maximizing the true-label loss within the ε-ball. The model is
// the adversary's surrogate (the accurate SNN). r drives the random start
// and any stochastic encoding.
func (g *Gradient) Perturb(model *snn.Network, img *tensor.Tensor, label int, r *rng.RNG) *tensor.Tensor {
	if g.Eps <= 0 {
		return img.Clone()
	}
	alpha := g.Alpha
	if alpha == 0 {
		if g.RandomStart {
			alpha = 2.5 * g.Eps / float64(g.Steps)
		} else {
			alpha = g.Eps / float64(g.Steps)
		}
	}

	adv := img.Clone()
	if g.RandomStart {
		// Start inside the ball but no farther than one step: with a
		// step budget below ε (calibrated transfer attacks) a full-ball
		// start would swamp the gradient steps with noise.
		start := alpha
		if g.Eps < start {
			start = g.Eps
		}
		for i := range adv.Data {
			adv.Data[i] += float32((2*r.Float64() - 1) * start)
		}
		projectLinf(adv, img, g.Eps)
		adv.Clamp(0, 1)
	}

	for it := 0; it < g.Steps; it++ {
		frames := g.Encoder.Encode(adv, model.Cfg.Steps, r)
		lossLabel, dir := label, float32(alpha)
		if g.Target >= 0 {
			// Targeted: descend the loss towards the target class.
			lossLabel, dir = g.Target, float32(-alpha)
		}
		frameGrads := snn.InputGradient(model, frames, lossLabel)
		grad := encoding.SumFrameGradients(frameGrads)
		// Untargeted: x ← x + α·sign(∇_x L(label)).
		// Targeted:   x ← x − α·sign(∇_x L(target)).
		grad.Sign()
		adv.AddScaled(dir, grad)
		projectLinf(adv, img, g.Eps)
		adv.Clamp(0, 1)
	}
	return adv
}

// PerturbBatch crafts adversarial images for a whole batch in lockstep:
// every PGD/BIM iteration encodes all samples, runs one batched BPTT
// pass for the input gradients, and steps every image at once. The
// result is deterministic and independent of batch partitioning — the
// encoding RNG is split per sample up front — but the stream differs
// from calling Perturb sample-by-sample with a shared RNG.
//
// The backward pass runs against a training arena on one weight-sharing
// evaluation clone for the whole crafting session: frame stacking, the
// forward caches and the BPTT buffers are all reused across iterations,
// so the inner loop allocates only the encoded frames. Gradients are
// bit-identical to the allocating InputGradientBatch chain.
func (g *Gradient) PerturbBatch(model *snn.Network, imgs []*tensor.Tensor, labels []int, r *rng.RNG) []*tensor.Tensor {
	batch := len(imgs)
	if batch == 0 {
		return nil
	}
	rngs := make([]*rng.RNG, batch)
	for i := range rngs {
		rngs[i] = r.Split()
	}
	advs := make([]*tensor.Tensor, batch)
	if g.Eps <= 0 {
		for i, img := range imgs {
			advs[i] = img.Clone()
		}
		return advs
	}
	if !model.Batchable() {
		for i, img := range imgs {
			advs[i] = g.Perturb(model, img, labels[i], rngs[i])
		}
		return advs
	}

	alpha := g.Alpha
	if alpha == 0 {
		if g.RandomStart {
			alpha = 2.5 * g.Eps / float64(g.Steps)
		} else {
			alpha = g.Eps / float64(g.Steps)
		}
	}
	for i, img := range imgs {
		advs[i] = img.Clone()
		if g.RandomStart {
			start := alpha
			if g.Eps < start {
				start = g.Eps
			}
			for j := range advs[i].Data {
				advs[i].Data[j] += float32((2*rngs[i].Float64() - 1) * start)
			}
			projectLinf(advs[i], img, g.Eps)
			advs[i].Clamp(0, 1)
		}
	}

	// One evaluation clone + training arena serve every iteration:
	// dropout stays disabled (clones carry no RNG) and the caller's
	// network keeps clean state, exactly like InputGradientBatch.
	clone := model.CloneArchitecture()
	var ts *snn.TrainScratch
	if clone.TrainArenaCapable() {
		ts = clone.AcquireTrainScratch()
		defer clone.ReleaseTrain(ts)
	}

	lossLabels := make([]int, batch)
	samples := make([][]*tensor.Tensor, batch)
	per := imgs[0].Len()
	for it := 0; it < g.Steps; it++ {
		for i := range advs {
			samples[i] = g.Encoder.Encode(advs[i], model.Cfg.Steps, rngs[i])
		}
		dir := float32(alpha)
		if g.Target >= 0 {
			// Targeted: descend the loss towards the target class.
			dir = float32(-alpha)
			for i := range lossLabels {
				lossLabels[i] = g.Target
			}
		} else {
			copy(lossLabels, labels)
		}
		var grad *tensor.Tensor // (B, image shape...)
		if ts != nil {
			grad = clone.InputGradSumScratch(ts.StackFramesInto(samples), lossLabels, ts)
		} else {
			frames := snn.StackFrames(samples, model.Cfg.Steps)
			grad = encoding.SumFrameGradients(snn.InputGradientBatch(model, frames, lossLabels))
		}
		for i, adv := range advs {
			gi := tensor.FromSlice(grad.Data[i*per:(i+1)*per], adv.Shape...)
			gi.Sign()
			adv.AddScaled(dir, gi)
			projectLinf(adv, imgs[i], g.Eps)
			adv.Clamp(0, 1)
		}
	}
	return advs
}

// PerturbSet crafts an adversarial copy of a whole dataset against
// model, processing chunks through the batched path.
func (g *Gradient) PerturbSet(model *snn.Network, set *dataset.Set, r *rng.RNG) *dataset.Set {
	adv := set.Clone()
	const chunk = 32
	for b := 0; b < len(adv.Samples); b += chunk {
		end := b + chunk
		if end > len(adv.Samples) {
			end = len(adv.Samples)
		}
		imgs := make([]*tensor.Tensor, end-b)
		labels := make([]int, end-b)
		for i := b; i < end; i++ {
			imgs[i-b] = adv.Samples[i].Image
			labels[i-b] = adv.Samples[i].Label
		}
		for i, a := range g.PerturbBatch(model, imgs, labels, r) {
			adv.Samples[b+i].Image = a
		}
	}
	return adv
}

// projectLinf clips adv into the l∞ ε-ball around origin.
func projectLinf(adv, origin *tensor.Tensor, eps float64) {
	e := float32(eps)
	for i := range adv.Data {
		lo, hi := origin.Data[i]-e, origin.Data[i]+e
		if adv.Data[i] < lo {
			adv.Data[i] = lo
		} else if adv.Data[i] > hi {
			adv.Data[i] = hi
		}
	}
}
