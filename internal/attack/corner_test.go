package attack

import (
	"testing"

	"repro/internal/dvs"
	"repro/internal/rng"
	"repro/internal/snn"
)

func TestCornerAttackGeometry(t *testing.T) {
	stream := dvs.GenerateGesture(3, dvs.DefaultGestureConfig(), rng.New(1))
	net := snn.DVSNet(snn.DefaultConfig(1.0, 8), 32, 32, 11, true, rng.New(2), nil)
	atk := NewCorner()
	adv := atk.Perturb(net, stream, 3)
	if err := adv.Validate(); err != nil {
		t.Fatal(err)
	}
	injected := len(adv.Events) - len(stream.Events)
	if injected <= 0 {
		t.Fatal("corner attack added no events")
	}
	// Expected: 4 corners × size² pixels × 2 polarities × steps bins.
	want := 4 * 4 * 4 * 2 * 8
	if injected != want {
		t.Fatalf("injected %d events, want %d", injected, want)
	}
	// Injected events only in corners: count events at a centre pixel in
	// both streams — must be identical.
	centre := func(s *dvs.Stream) int {
		n := 0
		for _, e := range s.Events {
			if e.X == 16 && e.Y == 16 {
				n++
			}
		}
		return n
	}
	if centre(adv) != centre(stream) {
		t.Fatal("corner attack touched the centre")
	}
}

func TestCornerWeakerThanFrame(t *testing.T) {
	stream := dvs.GenerateGesture(5, dvs.DefaultGestureConfig(), rng.New(3))
	net := snn.DVSNet(snn.DefaultConfig(1.0, 8), 32, 32, 11, true, rng.New(4), nil)
	corner := NewCorner().Perturb(net, stream, 5)
	frame := NewFrame()
	frame.Thickness = 4
	framed := frame.Perturb(net, stream, 5)
	if len(corner.Events)-len(stream.Events) >= len(framed.Events)-len(stream.Events) {
		t.Fatal("corner attack must inject fewer events than a thick frame attack")
	}
}
