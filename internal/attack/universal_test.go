package attack

import (
	"math"
	"testing"

	"repro/internal/encoding"
	"repro/internal/rng"
	"repro/internal/snn"
)

func TestUniversalBounded(t *testing.T) {
	net, test := trainedDigitNet(t, 80)
	u := NewUniversal(0.2)
	delta := u.Compute(net, test.Subset(30), rng.New(1))
	if delta == nil {
		t.Fatal("nil delta")
	}
	if delta.LInfNorm() > 0.2+1e-6 {
		t.Fatalf("delta norm %v exceeds eps", delta.LInfNorm())
	}
	if delta.LInfNorm() == 0 {
		t.Fatal("delta is identically zero")
	}
}

func TestUniversalDegradesHeldOut(t *testing.T) {
	net, test := trainedDigitNet(t, 90)
	craft := test.Subset(40)
	holdOut := test.Clone()
	holdOut.Samples = holdOut.Samples[40:]

	u := NewUniversal(0.4)
	delta := u.Compute(net, craft, rng.New(2))

	clean := snn.Accuracy(net, holdOut, encoding.Direct{}, 3)
	adv := snn.Accuracy(net, u.PerturbSet(holdOut, delta), encoding.Direct{}, 3)
	if adv >= clean {
		t.Fatalf("UAP had no held-out effect: %.2f vs %.2f", adv, clean)
	}
}

func TestUniversalApplyClips(t *testing.T) {
	net, test := trainedDigitNet(t, 95)
	u := NewUniversal(0.5)
	delta := u.Compute(net, test.Subset(10), rng.New(4))
	out := u.Apply(test.Samples[0].Image, delta)
	for _, v := range out.Data {
		if v < 0 || v > 1 {
			t.Fatalf("pixel %v outside [0,1]", v)
		}
	}
	// Perturbed image differs from the original somewhere.
	diff := 0.0
	for i := range out.Data {
		diff += math.Abs(float64(out.Data[i] - test.Samples[0].Image.Data[i]))
	}
	if diff == 0 {
		t.Fatal("Apply changed nothing")
	}
}

func TestUniversalEmptySet(t *testing.T) {
	net, test := trainedDigitNet(t, 97)
	u := NewUniversal(0.3)
	if u.Compute(net, test.Subset(0), rng.New(5)) != nil {
		t.Fatal("empty crafting set must yield nil")
	}
	if u.Name() != "UAP" {
		t.Fatal("name wrong")
	}
}
