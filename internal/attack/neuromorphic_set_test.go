package attack

import (
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/internal/dvs"
	"repro/internal/encoding"
	"repro/internal/rng"
	"repro/internal/snn"
	"repro/internal/tensor"
)

// gestureModelAndSet builds a random-weight DVS classifier and a small
// gesture set — the gradient probes exercise the full pipeline without
// training cost.
func gestureModelAndSet(n int, seed uint64) (*snn.Network, *dvs.Set) {
	gcfg := dvs.DefaultGestureConfig()
	gcfg.Duration = 200 // keep the Sparse probes fast
	set := dvs.GenerateGestureSet(n, gcfg, seed)
	net := snn.DVSNet(snn.DefaultConfig(1.0, 6), gcfg.H, gcfg.W, dvs.GestureClasses, true, rng.New(seed+1), nil)
	return net, set
}

// setAttacks returns the three neuromorphic attacks with budgets small
// enough for tests.
func setAttacks() []StreamAttack {
	sparse := NewSparse()
	sparse.MaxIter = 3
	sparse.EventsPerIter = 16
	frame := NewFrame()
	frame.Thickness = 2
	return []StreamAttack{sparse, frame, NewCorner()}
}

func streamsExactlyEqual(a, b *dvs.Stream) bool {
	if a.W != b.W || a.H != b.H || a.Duration != b.Duration || len(a.Events) != len(b.Events) {
		return false
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			return false
		}
	}
	return true
}

// sortedEvents returns the stream's events in a canonical total order,
// for order-insensitive comparison.
func sortedEvents(s *dvs.Stream) []dvs.Event {
	ev := append([]dvs.Event(nil), s.Events...)
	sort.Slice(ev, func(i, j int) bool {
		a, b := ev[i], ev[j]
		if a.T != b.T {
			return a.T < b.T
		}
		if a.Y != b.Y {
			return a.Y < b.Y
		}
		if a.X != b.X {
			return a.X < b.X
		}
		return a.P < b.P
	})
	return ev
}

func streamsSameEvents(a, b *dvs.Stream) bool {
	if a.W != b.W || a.H != b.H || a.Duration != b.Duration || len(a.Events) != len(b.Events) {
		return false
	}
	ea, eb := sortedEvents(a), sortedEvents(b)
	for i := range ea {
		if ea[i] != eb[i] {
			return false
		}
	}
	return true
}

// TestPerturbSetMatchesLoopedSerial pins the batch APIs to the serial
// reference: with one worker, PerturbSet must reproduce looping Perturb
// bit-identically, events in the same order.
func TestPerturbSetMatchesLoopedSerial(t *testing.T) {
	tensor.SetWorkers(1)
	defer tensor.SetWorkers(0)
	net, set := gestureModelAndSet(5, 21)
	for _, atk := range setAttacks() {
		want := make([]*dvs.Stream, set.Len())
		for i, sm := range set.Samples {
			want[i] = atk.Perturb(net, sm.Stream, sm.Label)
		}
		got := atk.PerturbSet(net, set)
		if got.Len() != set.Len() || got.W != set.W || got.H != set.H || got.Classes != set.Classes {
			t.Fatalf("%s: set metadata mangled", atk.Name())
		}
		for i := range want {
			if got.Samples[i].Label != set.Samples[i].Label {
				t.Fatalf("%s sample %d: label changed", atk.Name(), i)
			}
			if !streamsExactlyEqual(want[i], got.Samples[i].Stream) {
				t.Fatalf("%s sample %d: batched stream differs from serial Perturb", atk.Name(), i)
			}
		}
	}
}

// TestPerturbSetWorkerEquivalence pins that fanning out over N workers
// yields the same event sets as the single-worker run.
func TestPerturbSetWorkerEquivalence(t *testing.T) {
	defer tensor.SetWorkers(0)
	net, set := gestureModelAndSet(6, 22)
	for _, atk := range setAttacks() {
		tensor.SetWorkers(1)
		base := atk.PerturbSet(net, set)
		for _, w := range []int{3, 8} {
			tensor.SetWorkers(w)
			got := atk.PerturbSet(net, set)
			for i := range base.Samples {
				if !streamsSameEvents(base.Samples[i].Stream, got.Samples[i].Stream) {
					t.Fatalf("%s sample %d: %d workers changed the crafted events", atk.Name(), i, w)
				}
			}
		}
	}
}

// TestPerturbSetDoesNotMutateInput: crafting must leave the source set
// untouched (the designer reuses it for clean evaluation).
func TestPerturbSetDoesNotMutateInput(t *testing.T) {
	net, set := gestureModelAndSet(3, 23)
	orig := set.Clone()
	for _, atk := range setAttacks() {
		atk.PerturbSet(net, set)
	}
	for i := range orig.Samples {
		if !streamsExactlyEqual(orig.Samples[i].Stream, set.Samples[i].Stream) {
			t.Fatalf("sample %d mutated by PerturbSet", i)
		}
	}
}

// TestSparsePerturbDeterminism: the gradient-guided attack consumes no
// RNG, so repeated runs — at any kernel worker count — must reproduce
// the identical stream.
func TestSparsePerturbDeterminism(t *testing.T) {
	defer tensor.SetWorkers(0)
	net, set := gestureModelAndSet(1, 24)
	atk := NewSparse()
	atk.MaxIter = 4
	var base *dvs.Stream
	for _, w := range []int{1, 1, 4, 4} {
		tensor.SetWorkers(w)
		adv := atk.Perturb(net, set.Samples[0].Stream, set.Samples[0].Label)
		if base == nil {
			base = adv
			continue
		}
		if !streamsExactlyEqual(base, adv) {
			t.Fatalf("Sparse.Perturb not reproducible at %d workers", w)
		}
	}
}

// TestUniversalComputeDeterminism: with a seeded RNG the universal
// perturbation must be bit-identical across runs and worker counts,
// both for deterministic and stochastic encoders (the per-sample RNG
// pre-split is what worker scheduling must not reorder).
func TestUniversalComputeDeterminism(t *testing.T) {
	defer tensor.SetWorkers(0)
	r := rng.New(31)
	cfg := snn.DefaultConfig(0.5, 5)
	net := snn.MNISTNet(cfg, 1, 12, 12, true, r)
	dcfg := dataset.DefaultSynthConfig()
	dcfg.H, dcfg.W = 12, 12
	set := dataset.GenerateSynth(24, dcfg, 32)

	for _, enc := range []encoding.Encoder{encoding.Direct{}, encoding.Rate{}} {
		u := NewUniversal(0.3)
		u.Epochs = 2
		u.Encoder = enc
		var base *tensor.Tensor
		for _, w := range []int{1, 1, 4} {
			tensor.SetWorkers(w)
			delta := u.Compute(net, set, rng.New(9))
			if base == nil {
				base = delta
				continue
			}
			for i := range base.Data {
				if base.Data[i] != delta.Data[i] {
					t.Fatalf("%s: delta[%d] differs at %d workers: %v vs %v",
						enc.Name(), i, w, delta.Data[i], base.Data[i])
				}
			}
		}
		if base.LInfNorm() == 0 {
			t.Fatalf("%s: determinism test vacuous, delta identically zero", enc.Name())
		}
	}
}
