package attack

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/dvs"
	"repro/internal/encoding"
	"repro/internal/rng"
	"repro/internal/snn"
	"repro/internal/tensor"
)

// trainedDigitNet returns a small trained digit classifier plus its
// train/test sets.
func trainedDigitNet(t *testing.T, seed uint64) (*snn.Network, *dataset.Set) {
	t.Helper()
	r := rng.New(seed)
	cfg := snn.DefaultConfig(0.5, 6)
	net := snn.MNISTNet(cfg, 1, 12, 12, true, r)
	dcfg := dataset.DefaultSynthConfig()
	dcfg.H, dcfg.W = 12, 12
	train := dataset.GenerateSynth(300, dcfg, seed)
	test := dataset.GenerateSynth(80, dcfg, seed+1)
	snn.Train(net, train, snn.TrainOptions{
		Epochs: 3, BatchSize: 16,
		Optimizer: snn.NewAdam(3e-3),
		Encoder:   encoding.Direct{},
		Seed:      seed + 2,
	})
	return net, test
}

func TestEpsilonZeroIsIdentity(t *testing.T) {
	r := rng.New(1)
	net := snn.DenseNet(snn.DefaultConfig(0.5, 4), 16, 8, 4, r)
	img := tensor.New(16)
	img.Fill(0.5)
	adv := PGD(0).Perturb(net, img, 0, rng.New(2))
	for i := range img.Data {
		if adv.Data[i] != img.Data[i] {
			t.Fatal("eps=0 must not perturb")
		}
	}
}

func TestPerturbationWithinBudget(t *testing.T) {
	net, test := trainedDigitNet(t, 10)
	for _, mk := range []func(float64) *Gradient{PGD, BIM, FGSM} {
		atk := mk(0.3)
		r := rng.New(3)
		for i := 0; i < 5; i++ {
			s := test.Samples[i]
			adv := atk.Perturb(net, s.Image, s.Label, r)
			for j := range adv.Data {
				d := math.Abs(float64(adv.Data[j] - s.Image.Data[j]))
				if d > 0.3+1e-5 {
					t.Fatalf("%s: |δ|=%v exceeds ε", atk.Name(), d)
				}
				if adv.Data[j] < 0 || adv.Data[j] > 1 {
					t.Fatalf("%s: pixel %v outside [0,1]", atk.Name(), adv.Data[j])
				}
			}
		}
	}
}

func TestAttackDegradesAccuracy(t *testing.T) {
	net, test := trainedDigitNet(t, 20)
	enc := encoding.Direct{}
	clean := snn.Accuracy(net, test, enc, 4)
	if clean < 0.5 {
		t.Fatalf("model too weak to test attacks (clean %.2f)", clean)
	}
	for _, mk := range []func(float64) *Gradient{PGD, BIM} {
		atk := mk(0.5)
		advSet := test.Clone()
		r := rng.New(5)
		for i := range advSet.Samples {
			s := &advSet.Samples[i]
			s.Image = atk.Perturb(net, s.Image, s.Label, r)
		}
		adv := snn.Accuracy(net, advSet, enc, 4)
		if adv > clean-0.15 {
			t.Fatalf("%s(ε=0.5): accuracy only dropped %.2f→%.2f", atk.Name(), clean, adv)
		}
	}
}

func TestStrongerBudgetHurtsMore(t *testing.T) {
	net, test := trainedDigitNet(t, 30)
	enc := encoding.Direct{}
	small := test.Subset(40)
	accAt := func(eps float64) float64 {
		advSet := small.Clone()
		r := rng.New(6)
		atk := BIM(eps)
		for i := range advSet.Samples {
			s := &advSet.Samples[i]
			s.Image = atk.Perturb(net, s.Image, s.Label, r)
		}
		return snn.Accuracy(net, advSet, enc, 7)
	}
	weak := accAt(0.1)
	strong := accAt(0.9)
	if strong > weak+0.05 {
		t.Fatalf("ε=0.9 accuracy %.2f not below ε=0.1 accuracy %.2f", strong, weak)
	}
}

func TestAttackNames(t *testing.T) {
	if PGD(1).Name() != "PGD" || BIM(1).Name() != "BIM" || FGSM(1).Name() != "FGSM" {
		t.Fatal("attack names wrong")
	}
	if NewSparse().Name() != "Sparse" || NewFrame().Name() != "Frame" {
		t.Fatal("stream attack names wrong")
	}
}

// trainedGestureNet returns a small trained gesture classifier and its
// test set (2 easy classes to keep the test fast).
func trainedGestureNet(t *testing.T, seed uint64) (*snn.Network, *dvs.Set) {
	t.Helper()
	gcfg := dvs.DefaultGestureConfig()
	gcfg.Duration = 600
	full := dvs.GenerateGestureSet(110, gcfg, seed)
	// Keep classes 1 and 2 (right vs left wave): spatially separable.
	sub := &dvs.Set{Classes: 2, W: full.W, H: full.H}
	for _, s := range full.Samples {
		if s.Label == 1 || s.Label == 2 {
			sub.Samples = append(sub.Samples, dvs.Sample{Stream: s.Stream, Label: s.Label - 1})
		}
	}
	cfg := snn.DefaultConfig(0.5, 8)
	r := rng.New(seed + 1)
	net := snn.DVSNet(cfg, full.H, full.W, 2, true, r, rng.New(seed+2))
	var frames [][]*tensor.Tensor
	var labels []int
	for _, s := range sub.Samples {
		frames = append(frames, s.Stream.Voxelize(cfg.Steps))
		labels = append(labels, s.Label)
	}
	snn.TrainFrames(net, frames, labels, snn.TrainOptions{
		Epochs: 4, BatchSize: 8,
		Optimizer: snn.NewAdam(3e-3),
		Seed:      seed + 3,
	})
	acc := snn.AccuracyFrames(net, frames, labels)
	if acc < 0.8 {
		t.Fatalf("gesture fixture failed to train (acc %.2f)", acc)
	}
	return net, sub
}

func TestFrameAttackAddsBoundaryEvents(t *testing.T) {
	r := rng.New(40)
	stream := dvs.GenerateGesture(1, dvs.DefaultGestureConfig(), r)
	net := snn.DVSNet(snn.DefaultConfig(0.5, 8), 32, 32, 2, true, rng.New(41), rng.New(42))
	adv := NewFrame().Perturb(net, stream, 0)
	if len(adv.Events) <= len(stream.Events) {
		t.Fatal("frame attack added no events")
	}
	if err := adv.Validate(); err != nil {
		t.Fatal(err)
	}
	// All injected events lie on the boundary.
	injected := len(adv.Events) - len(stream.Events)
	onBorder := 0
	for _, e := range adv.Events {
		if e.X == 0 || e.Y == 0 || e.X == adv.W-1 || e.Y == adv.H-1 {
			onBorder++
		}
	}
	if onBorder < injected {
		t.Fatalf("injected %d events but only %d on the border", injected, onBorder)
	}
	// Original stream untouched.
	if err := stream.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFrameAttackDistortsLogits(t *testing.T) {
	// On a binary left/right-wave problem the boundary flood is
	// label-symmetric, so accuracy may survive; what the attack must do
	// is inject substantial energy into the network output. The
	// accuracy-collapse behaviour on the 11-class problem is asserted by
	// the fig7b experiment test.
	net, set := trainedGestureNet(t, 50)
	atk := NewFrame()
	var distortion, scale float64
	n := 10
	for i := 0; i < n; i++ {
		s := set.Samples[i]
		clean := net.Forward(s.Stream.Voxelize(net.Cfg.Steps), false)
		adv := atk.Perturb(net, s.Stream, s.Label)
		dirty := net.Forward(adv.Voxelize(net.Cfg.Steps), false)
		for j := range clean.Data {
			distortion += math.Abs(float64(dirty.Data[j] - clean.Data[j]))
			scale += math.Abs(float64(clean.Data[j]))
		}
	}
	if scale == 0 || distortion < 0.1*scale {
		t.Fatalf("frame attack distortion %.3f too small vs logit scale %.3f", distortion, scale)
	}
}

func TestSparseAttackFoolsModel(t *testing.T) {
	net, set := trainedGestureNet(t, 60)
	atk := NewSparse()
	fooled, correct := 0, 0
	n := 15
	for i := 0; i < n; i++ {
		s := set.Samples[i]
		if net.Predict(s.Stream.Voxelize(net.Cfg.Steps)) != s.Label {
			continue // only attack correctly classified samples
		}
		correct++
		adv := atk.Perturb(net, s.Stream, s.Label)
		if err := adv.Validate(); err != nil {
			t.Fatal(err)
		}
		if net.Predict(adv.Voxelize(net.Cfg.Steps)) != s.Label {
			fooled++
		}
	}
	if correct == 0 {
		t.Skip("no correctly classified samples to attack")
	}
	if fooled == 0 {
		t.Fatalf("sparse attack fooled 0/%d samples", correct)
	}
}

func TestSparseAttackIsSparse(t *testing.T) {
	net, set := trainedGestureNet(t, 70)
	atk := NewSparse()
	s := set.Samples[0]
	adv := atk.Perturb(net, s.Stream, s.Label)
	// The sparse attack must add far fewer events than the frame attack.
	frameAdv := NewFrame().Perturb(net, s.Stream, s.Label)
	sparseAdded := len(adv.Events) - len(s.Stream.Events)
	frameAdded := len(frameAdv.Events) - len(s.Stream.Events)
	if sparseAdded < 0 {
		sparseAdded = -sparseAdded
	}
	if sparseAdded >= frameAdded {
		t.Fatalf("sparse attack added %d events, frame attack %d", sparseAdded, frameAdded)
	}
}
