package attack

import (
	"testing"

	"repro/internal/encoding"
	"repro/internal/rng"
)

func TestTargetedPGDSteersTowardTarget(t *testing.T) {
	net, test := trainedDigitNet(t, 120)
	enc := encoding.Direct{}
	r := rng.New(1)

	steered, attempts := 0, 0
	for i := 0; i < 30; i++ {
		s := test.Samples[i]
		target := (s.Label + 5) % 10
		atk := TargetedPGD(0.6, target)
		atk.Encoder = enc
		adv := atk.Perturb(net, s.Image, s.Label, r)
		attempts++
		if net.Predict(enc.Encode(adv, net.Cfg.Steps, r)) == target {
			steered++
		}
	}
	// White-box targeted attacks at a generous budget should land the
	// target class on a decent fraction of inputs.
	if steered < attempts/4 {
		t.Fatalf("targeted PGD hit the target on only %d/%d", steered, attempts)
	}
}

func TestTargetedRespectsBudget(t *testing.T) {
	net, test := trainedDigitNet(t, 125)
	atk := TargetedPGD(0.2, 3)
	r := rng.New(2)
	s := test.Samples[0]
	adv := atk.Perturb(net, s.Image, s.Label, r)
	for i := range adv.Data {
		d := adv.Data[i] - s.Image.Data[i]
		if d > 0.2+1e-5 || d < -0.2-1e-5 {
			t.Fatalf("perturbation %v outside budget", d)
		}
	}
}

func TestUntargetedDefaultUnchanged(t *testing.T) {
	if PGD(0.1).Target != -1 || BIM(0.1).Target != -1 || FGSM(0.1).Target != -1 {
		t.Fatal("constructors must default to untargeted")
	}
}
