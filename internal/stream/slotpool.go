package stream

import (
	"sync/atomic"

	"repro/internal/tensor"
)

// SlotPool is the bounded shared pool of window-batch classification
// slots. One BatchSlot carries the reusable frame tensors for up to
// Batch windows plus the PredictBatchInto sample view built over them —
// the dominant per-window memory (steps × 2 × H × W floats per window;
// the staged event copies a pipeline keeps per session are small next
// to it). Pipelines acquire a slot only for the duration of one batched
// classification (classifyBatch holds it across voxelize + predict and
// releases it before any result is emitted), so a server sharing one
// SlotPool across all sessions serves full occupancy with
// O(PoolSize × Batch × window) frames instead of
// O(sessions × Workers × Batch × window) — and a session stalled on a
// slow consumer holds zero pooled slots while it waits.
//
// Acquire order is fixed across the serving stack: BatchSlot first,
// then the evaluation clone (serve's CloneSource). Every holder obeys
// the same order, so the two bounded pools cannot deadlock against
// each other.
//
// A SlotPool is safe for concurrent use by any number of pipelines.
// All counters are plain atomics: reading them from a metrics
// endpoint costs no locks and the acquire/release hot path performs
// zero allocations.
type SlotPool struct {
	units     chan *BatchSlot
	batch     int
	occupancy atomic.Int64
	highWater atomic.Int64
	waits     atomic.Int64
}

// BatchSlot is one pooled classification unit: per-window frame sets
// and the sample view one PredictBatchInto call consumes. Frame
// tensors are sized lazily on first use (or on a sensor/step change)
// and recycled forever after.
type BatchSlot struct {
	frames  [][]*tensor.Tensor
	samples [][]*tensor.Tensor
}

// Frames returns the i'th window's frame set sized (steps, 2, h, w),
// reallocating only when the step count or sensor changes. The check
// is on the full shape, not the element count: (2,8,32) and (2,16,16)
// tensors are the same size but must not be conflated.
//
//axsnn:allow-alloc sizes frame tensors on first use or sensor/step change; the steady state reuses them
func (b *BatchSlot) Frames(i, steps, h, w int) []*tensor.Tensor {
	fs := b.frames[i]
	if len(fs) == steps && steps > 0 {
		sh := fs[0].Shape
		if len(sh) == 3 && sh[0] == 2 && sh[1] == h && sh[2] == w {
			return fs
		}
	}
	fs = make([]*tensor.Tensor, steps)
	for j := range fs {
		fs[j] = tensor.New(2, h, w)
	}
	b.frames[i] = fs
	return fs
}

// Samples returns the slot's reusable PredictBatchInto view, emptied:
// append one Frames set per window, capacity is the pool's batch
// width. Valid only while the slot is held.
func (b *BatchSlot) Samples() [][]*tensor.Tensor { return b.samples[:0] }

// NewSlotPool builds a pool of size BatchSlots, each covering batch
// windows. A serving tier sizes it like its clone pool (one slot per
// concurrently classifying batch); a standalone pipeline sizes it by
// its worker budget so acquisition never blocks.
func NewSlotPool(size, batch int) *SlotPool {
	if size < 1 {
		size = 1
	}
	if batch < 1 {
		batch = DefaultBatch
	}
	p := &SlotPool{units: make(chan *BatchSlot, size), batch: batch}
	for i := 0; i < size; i++ {
		p.units <- &BatchSlot{
			frames:  make([][]*tensor.Tensor, batch),
			samples: make([][]*tensor.Tensor, 0, batch),
		}
	}
	return p
}

// AcquireSlot returns a slot to classify one window batch on, blocking
// until one is free. A blocked acquire is counted in Waits — the
// contention signal a metrics endpoint exposes.
func (p *SlotPool) AcquireSlot() *BatchSlot {
	var u *BatchSlot
	select {
	case u = <-p.units:
	default:
		p.waits.Add(1)
		u = <-p.units
	}
	occ := p.occupancy.Add(1)
	for {
		hw := p.highWater.Load()
		if occ <= hw || p.highWater.CompareAndSwap(hw, occ) {
			break
		}
	}
	return u
}

// ReleaseSlot returns a slot obtained from AcquireSlot.
func (p *SlotPool) ReleaseSlot(u *BatchSlot) {
	if u == nil {
		panic("stream: ReleaseSlot of a nil BatchSlot")
	}
	p.occupancy.Add(-1)
	p.units <- u
}

// Size is the pool capacity in BatchSlots.
func (p *SlotPool) Size() int { return cap(p.units) }

// Batch is how many windows one BatchSlot covers.
func (p *SlotPool) Batch() int { return p.batch }

// Occupancy is how many slots are currently acquired.
func (p *SlotPool) Occupancy() int64 { return p.occupancy.Load() }

// HighWater is the maximum concurrent occupancy observed.
func (p *SlotPool) HighWater() int64 { return p.highWater.Load() }

// Waits counts acquisitions that had to block for a free slot.
func (p *SlotPool) Waits() int64 { return p.waits.Load() }
