package stream

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/snn"
	"repro/internal/tensor"
)

// Scheduler is the cross-session continuous-batching classifier: the
// shared half of the producer/classifier pipeline split. Producer-mode
// pipelines (Options.Scheduler) stop classifying their own windows;
// they voxelize each ready window into a pooled entry and submit it to
// the scheduler's bounded queue. The scheduler's single goroutine
// gathers whatever windows are ready from *all* producers each tick,
// coalesces them — padding-free, windows are uniform (steps, 2, H, W)
// per topology — into one PredictBatchInto call of up to MaxBatch
// windows, and demuxes the classes back to each producer in submission
// order. Many light sessions thus share one large GEMM per tick
// instead of issuing one tiny GEMM each, which is the continuous-
// batching idiom from LLM serving and the single biggest throughput
// lever for the many-light-users serving shape.
//
// Fairness: each tick takes at most FairShare windows per producer
// before any producer gets a second helping; the remainder stays
// queued, in order, for the next tick. A saturating session therefore
// cannot starve light ones — it is capped at FairShare windows per
// coalesced batch while light sessions' windows ride every tick.
//
// The steady state allocates nothing: entries, their frame tensors,
// the gather/sample/result buffers and the inference arena (capacity-
// based since the batch fill varies tick to tick) are all recycled.
// Completion channels are buffered to each producer's maximum
// in-flight window count and the entry pool bounds total submissions
// to the queue capacity, so neither side can block the other against
// the direction of flow: submit cannot fill the queue past its buffer,
// and demux delivery always has room.
type Scheduler struct {
	o SchedulerOptions

	// queue carries submitted entries to the scheduler goroutine; free
	// recycles completed ones back to producers. Both are sized to
	// SchedulerOptions.Queue — every live entry is in exactly one of
	// queue, free, a producer's hands or the scheduler's pending list,
	// so channel sends on either never block.
	queue chan *windowEntry
	free  chan *windowEntry

	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once

	// Scheduler-goroutine-only tick state, preallocated to capacity at
	// construction so the tick allocates nothing.
	pending  []*windowEntry
	gathered []*windowEntry
	samples  [][]*tensor.Tensor
	out      []int
	insums   []float64 // per-sample input activity, for the SOP split
	sopsOut  []float64 // per-sample SOP estimates, aligned with out
	timer    *time.Timer

	// tierClones is the tiered view of o.Clones, nil when the source
	// cannot pin tiers (FP32-only scheduling still works).
	tierClones TierCloneSource

	// Adopted sensor dimensions: pinned by SensorW/H when declared,
	// else adopted from the first submission and confirmed by the
	// first successful batch (an unconfirmed adoption is rolled back
	// when classification panics, so one malformed session cannot
	// poison the shared classifier for everyone after it).
	h, w      int
	confirmed bool

	ticks      atomic.Int64
	windows    atomic.Int64
	deferrals  atomic.Int64
	failures   atomic.Int64
	maxPerTick atomic.Int64
	depthGauge atomic.Int64
	fillCounts []atomic.Int64 // fillCounts[n] = ticks that coalesced n windows
}

// SchedulerOptions configure a Scheduler.
type SchedulerOptions struct {
	// Steps is the voxel step count every submitted window carries —
	// the uniform-topology contract that makes coalescing padding-free.
	// Required (> 0).
	Steps int
	// MaxBatch caps how many windows one tick coalesces into a single
	// PredictBatchInto call. <= 0 uses DefaultMaxBatch.
	MaxBatch int
	// Queue bounds the submission queue (and the total entry pool):
	// producers hold at most Queue windows in flight across all
	// sessions; further submissions block until a tick drains some.
	// <= 0 uses 2×MaxBatch.
	Queue int
	// FairShare caps how many of one producer's windows a single tick
	// may take — the starvation guard. <= 0 uses max(1, MaxBatch/4).
	FairShare int
	// TickInterval, when positive, is how long a tick waits for more
	// submissions after the first before classifying a partial batch —
	// trading latency for fill. Zero classifies whatever is ready
	// immediately (greedy ticks, the default: under load the GEMM
	// itself provides the accumulation window).
	TickInterval time.Duration
	// Clones supplies the evaluation networks ticks classify on —
	// the serve tier's shared bounded pool. Required. When it also
	// implements TierCloneSource, producers may submit non-FP32
	// windows; each tick coalesces only same-tier submissions, so
	// mixed-tier sessions share the scheduler without sharing GEMMs.
	Clones CloneSource
	// Observer, when non-nil, receives one ObserveRound per tick with
	// the coalesced window count and the tick's classify latency.
	Observer Observer
	// Energy, when non-nil, attributes estimated SOPs to every
	// classified window (see Options.Energy); producers receive each
	// window's activity-weighted share of its tick's total.
	Energy EnergyAccount
	// SensorW/SensorH, when set, pin the sensor resolution; windows
	// voxelized at any other resolution fail their session. When zero
	// the first submission's dimensions are adopted.
	SensorW, SensorH int
}

// DefaultMaxBatch is the coalescing cap used when
// SchedulerOptions.MaxBatch is unset.
const DefaultMaxBatch = 16

// ErrSchedulerClosed fails producer submissions and awaited windows
// when the scheduler shuts down mid-flight.
var ErrSchedulerClosed = errors.New("stream: scheduler closed")

// windowEntry is one pooled submission: the frame tensors a producer
// voxelized one window into, routing state for the demux, and the
// shape the scheduler validates against its adopted topology. Entries
// cycle producer → queue → scheduler → free forever; their frame
// tensors are sized lazily and recycled exactly like BatchSlot frames.
type windowEntry struct {
	owner *Producer
	slot  int // index into the owner's round: routes the class and completion back
	tier  snn.PrecisionTier

	frames []*tensor.Tensor
	steps  int
	h, w   int
}

// sizedFrames returns the entry's frame set sized (steps, 2, h, w),
// reallocating only when the step count or sensor changes — the
// BatchSlot.Frames contract, per entry.
//
//axsnn:allow-alloc sizes frame tensors on first use or sensor/step change; the steady state reuses them
func (e *windowEntry) sizedFrames(steps, h, w int) []*tensor.Tensor {
	fs := e.frames
	if len(fs) == steps && steps > 0 {
		sh := fs[0].Shape
		if len(sh) == 3 && sh[0] == 2 && sh[1] == h && sh[2] == w {
			e.steps, e.h, e.w = steps, h, w
			return fs
		}
	}
	fs = make([]*tensor.Tensor, steps)
	for j := range fs {
		fs[j] = tensor.New(2, h, w)
	}
	e.frames = fs
	e.steps, e.h, e.w = steps, h, w
	return fs
}

// NewScheduler builds and starts a shared classifier scheduler. Close
// stops it; producers blocked in submit or await unblock with
// ErrSchedulerClosed.
func NewScheduler(o SchedulerOptions) (*Scheduler, error) {
	if o.Steps <= 0 {
		return nil, fmt.Errorf("stream: scheduler Steps must be positive, got %d", o.Steps)
	}
	if o.Clones == nil {
		return nil, fmt.Errorf("stream: scheduler requires a CloneSource")
	}
	if (o.SensorW == 0) != (o.SensorH == 0) || o.SensorW < 0 || o.SensorH < 0 {
		return nil, fmt.Errorf("stream: SensorW/SensorH must be set together, got %dx%d", o.SensorW, o.SensorH)
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = DefaultMaxBatch
	}
	if o.Queue <= 0 {
		o.Queue = 2 * o.MaxBatch
	}
	if o.FairShare <= 0 {
		o.FairShare = o.MaxBatch / 4
		if o.FairShare < 1 {
			o.FairShare = 1
		}
	}
	s := newScheduler(o)
	go s.run()
	return s, nil
}

// newScheduler builds the scheduler without starting its goroutine —
// the white-box form the tick benchmark drives synchronously.
func newScheduler(o SchedulerOptions) *Scheduler {
	s := &Scheduler{
		o:          o,
		queue:      make(chan *windowEntry, o.Queue),
		free:       make(chan *windowEntry, o.Queue),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
		pending:    make([]*windowEntry, 0, o.Queue),
		gathered:   make([]*windowEntry, 0, o.MaxBatch),
		samples:    make([][]*tensor.Tensor, 0, o.MaxBatch),
		out:        make([]int, o.MaxBatch),
		insums:     make([]float64, o.MaxBatch),
		sopsOut:    make([]float64, o.MaxBatch),
		h:          o.SensorH,
		w:          o.SensorW,
		confirmed:  o.SensorW != 0,
		fillCounts: make([]atomic.Int64, o.MaxBatch+1),
	}
	if o.TickInterval > 0 {
		s.timer = time.NewTimer(o.TickInterval)
		if !s.timer.Stop() {
			<-s.timer.C
		}
	}
	for i := 0; i < o.Queue; i++ {
		s.free <- &windowEntry{}
	}
	s.tierClones, _ = o.Clones.(TierCloneSource)
	return s
}

// supportsTier reports whether producers may submit tier-t windows.
func (s *Scheduler) supportsTier(t snn.PrecisionTier) bool {
	if t == snn.TierFP32 {
		return true
	}
	return s.tierClones != nil && s.tierClones.SupportsTier(t)
}

// Steps is the uniform window step count the scheduler serves.
func (s *Scheduler) Steps() int { return s.o.Steps }

// MaxBatch is the per-tick coalescing cap.
func (s *Scheduler) MaxBatch() int { return s.o.MaxBatch }

// FairShare is the per-producer per-tick window cap.
func (s *Scheduler) FairShare() int { return s.o.FairShare }

// Close stops the scheduler and waits for its goroutine. Queued and
// in-flight windows fail with ErrSchedulerClosed.
func (s *Scheduler) Close() {
	s.closeOnce.Do(func() { close(s.stop) })
	<-s.done
}

// SchedStats is a point-in-time copy of the scheduler's counters.
type SchedStats struct {
	// Ticks is how many coalesced classification rounds have run.
	Ticks int64
	// Windows is how many windows those ticks classified.
	Windows int64
	// Deferrals counts windows held back to a later tick by MaxBatch
	// or the FairShare cap (the same window can defer repeatedly).
	Deferrals int64
	// Failures counts windows failed back to their producer (shape
	// mismatch, classification panic, shutdown).
	Failures int64
	// MaxPerTick is the most windows one producer has had classified
	// in a single tick — by construction never above FairShare.
	MaxPerTick int64
	// QueueDepth is the submissions waiting for a tick right now.
	QueueDepth int64
	// Fill[n] is how many ticks coalesced exactly n windows.
	Fill []int64
}

// Stats snapshots the scheduler's counters. Not for hot paths: the
// fill histogram copy allocates.
func (s *Scheduler) Stats() SchedStats {
	st := SchedStats{
		Ticks:      s.ticks.Load(),
		Windows:    s.windows.Load(),
		Deferrals:  s.deferrals.Load(),
		Failures:   s.failures.Load(),
		MaxPerTick: s.maxPerTick.Load(),
		QueueDepth: s.depthGauge.Load() + int64(len(s.queue)),
		Fill:       make([]int64, len(s.fillCounts)),
	}
	for i := range s.fillCounts {
		st.Fill[i] = s.fillCounts[i].Load()
	}
	return st
}

// AvgFill is the mean windows per tick — the coalescing win in one
// number (1.0 means the scheduler degenerated to per-window GEMMs).
func (st SchedStats) AvgFill() float64 {
	if st.Ticks == 0 {
		return 0
	}
	return float64(st.Windows) / float64(st.Ticks)
}

// run is the scheduler goroutine: block for work, optionally
// accumulate toward a fuller batch, tick, repeat until Close.
func (s *Scheduler) run() {
	defer close(s.done)
	for {
		if len(s.pending) == 0 {
			select {
			case e := <-s.queue:
				s.pending = append(s.pending, e)
			case <-s.stop:
				s.shutdown()
				return
			}
			s.accumulate()
		}
		s.tick()
		select {
		case <-s.stop:
			s.shutdown()
			return
		default:
		}
	}
}

// accumulate waits up to TickInterval for more submissions after the
// first, trading tick latency for batch fill. With TickInterval unset
// it returns immediately: greedy ticks, where the classify itself is
// the accumulation window for the next tick.
func (s *Scheduler) accumulate() {
	if s.timer == nil {
		return
	}
	s.timer.Reset(s.o.TickInterval)
	for len(s.pending) < s.o.MaxBatch {
		select {
		case e := <-s.queue:
			s.pending = append(s.pending, e)
			continue
		case <-s.timer.C:
			return
		case <-s.stop:
			// The outer loop runs one final tick, then shuts down.
		}
		break
	}
	if !s.timer.Stop() {
		select {
		case <-s.timer.C:
		default:
		}
	}
}

// tick is one coalesced classification round: drain the queue, select
// up to MaxBatch windows under the fairness cap, classify them in one
// batched call, demux the classes back to their producers.
//
//axsnn:hotpath
func (s *Scheduler) tick() {
	s.gather()
	s.selectBatch()
	fill := s.buildSamples()
	if fill == 0 {
		s.depthGauge.Store(int64(len(s.pending)))
		return
	}
	var t0 int64
	if s.o.Observer != nil {
		t0 = time.Now().UnixNano() //axsnn:allow-alloc observability clock read, once per tick, outside the reproducible kernels
	}
	err := s.classify(fill)
	if err != nil {
		s.failBatch(err)
	} else {
		s.demux(fill)
		s.ticks.Add(1)
		s.windows.Add(int64(fill))
		s.fillCounts[fill].Add(1)
		if s.o.Observer != nil {
			s.o.Observer.ObserveRound(fill, time.Now().UnixNano()-t0) //axsnn:allow-alloc observability clock read, once per tick, outside the reproducible kernels
		}
	}
	s.depthGauge.Store(int64(len(s.pending)))
}

// gather drains every currently queued submission into the pending
// list, preserving submission order. Capacity equals the entry pool,
// so the append can never grow.
//
//axsnn:hotpath
func (s *Scheduler) gather() {
	for len(s.pending) < cap(s.pending) {
		select {
		case e := <-s.queue:
			s.pending = append(s.pending, e) //axsnn:allow-alloc capped at the entry-pool size; backing array preallocated at construction
			continue
		default:
		}
		break
	}
}

// selectBatch moves up to MaxBatch pending entries into the gathered
// batch, at most FairShare per producer; the rest stay pending in
// order. Per-producer order is preserved on both sides of the split,
// which is what keeps the demux aligned with each session's round.
// Only entries sharing the head entry's precision tier coalesce — a
// batch runs on one clone at one tier — so other-tier windows defer to
// a later tick; they head the pending list after this batch drains, so
// alternating tiers ping-pong rather than starve.
//
//axsnn:hotpath
func (s *Scheduler) selectBatch() {
	for _, e := range s.pending {
		e.owner.taken = 0
	}
	s.gathered = s.gathered[:0]
	kept := s.pending[:0]
	deferred := 0
	var tier snn.PrecisionTier
	if len(s.pending) > 0 {
		tier = s.pending[0].tier
	}
	for _, e := range s.pending {
		if e.tier == tier && len(s.gathered) < s.o.MaxBatch && e.owner.taken < s.o.FairShare {
			e.owner.taken++
			s.noteTaken(int64(e.owner.taken))
			s.gathered = append(s.gathered, e) //axsnn:allow-alloc capped at MaxBatch; backing array preallocated at construction
		} else {
			kept = append(kept, e) //axsnn:allow-alloc in-place filter over pending: reuses pending's own backing array
			deferred++
		}
	}
	s.pending = kept
	if deferred > 0 {
		s.deferrals.Add(int64(deferred))
	}
}

// noteTaken lifts the fairness high-water gauge.
func (s *Scheduler) noteTaken(taken int64) {
	for {
		hw := s.maxPerTick.Load()
		if taken <= hw || s.maxPerTick.CompareAndSwap(hw, taken) {
			return
		}
	}
}

// buildSamples validates every gathered entry against the adopted
// topology — failing mismatches individually, adopting dimensions from
// the first submission when unpinned — and assembles the sample view
// for the batched classify. Returns the batch fill.
//
//axsnn:hotpath
func (s *Scheduler) buildSamples() int {
	valid := s.gathered[:0]
	s.samples = s.samples[:0]
	for _, e := range s.gathered {
		if e.steps != s.o.Steps {
			s.fail(e, fmt.Errorf("stream: window voxelized at %d steps, scheduler serves %d", e.steps, s.o.Steps)) //axsnn:allow-alloc failure path: formats once per rejected window
			continue
		}
		if s.h == 0 {
			s.h, s.w = e.h, e.w
		}
		if e.h != s.h || e.w != s.w {
			s.fail(e, fmt.Errorf("stream: window voxelized for a %dx%d sensor, scheduler serves %dx%d", e.w, e.h, s.w, s.h)) //axsnn:allow-alloc failure path: formats once per rejected window
			continue
		}
		valid = append(valid, e)                //axsnn:allow-alloc in-place filter over gathered: reuses gathered's own backing array
		s.samples = append(s.samples, e.frames) //axsnn:allow-alloc capped at MaxBatch; backing array preallocated at construction
		if s.o.Energy != nil {
			s.insums[len(s.samples)-1] = frameSum(e.frames)
		}
	}
	s.gathered = valid
	return len(s.gathered)
}

// classify runs the coalesced batch on a pooled clone. A panic
// (malformed frames aliasing the network input) fails the batch, not
// the process — and rolls back an unconfirmed sensor adoption so the
// session that poisoned it cannot break every session after it.
//
//axsnn:hotpath
func (s *Scheduler) classify(fill int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("stream: window classification panicked: %v", r) //axsnn:allow-alloc panic capture: formats once per failed batch
			if !s.confirmed {
				s.h, s.w = s.o.SensorH, s.o.SensorW
			}
		}
	}()
	var clone *snn.Network
	if tier := s.gathered[0].tier; tier != snn.TierFP32 {
		// selectBatch keeps batches tier-uniform; supportsTier was
		// checked when the producer's pipeline was built, so the tiered
		// source is present whenever a non-FP32 entry gets this far.
		clone = s.tierClones.AcquireCloneTier(tier)
	} else {
		clone = s.o.Clones.AcquireClone()
	}
	defer s.o.Clones.ReleaseClone(clone)
	if s.o.Energy != nil {
		clone.ResetStats()
	}
	clone.PredictBatchInto(s.samples[:fill], s.out[:fill])
	if s.o.Energy != nil {
		inputSum := 0.0
		for _, v := range s.insums[:fill] {
			inputSum += v
		}
		total, _ := s.o.Energy.BatchSOPs(clone, inputSum, fill)
		splitSOPs(total, s.insums[:fill], s.sopsOut[:fill])
	}
	s.confirmed = true
	return nil
}

// demux routes each class back to its producer in submission order and
// recycles the entries. Completion channels are buffered to the
// producer's in-flight capacity, so the send never blocks the tick.
//
//axsnn:hotpath
func (s *Scheduler) demux(fill int) {
	for i, e := range s.gathered[:fill] {
		e.owner.out[e.slot] = s.out[i]
		e.owner.sops[e.slot] = s.sopsOut[i]
		owner, slot := e.owner, e.slot
		s.recycle(e)
		owner.compl <- complMsg{slot: slot}
	}
	s.gathered = s.gathered[:0]
}

// failBatch fails every gathered entry back to its producer.
func (s *Scheduler) failBatch(err error) {
	s.failures.Add(int64(len(s.gathered)))
	for _, e := range s.gathered {
		s.fail(e, err)
	}
	s.gathered = s.gathered[:0]
}

// fail completes one entry with an error.
func (s *Scheduler) fail(e *windowEntry, err error) {
	owner, slot := e.owner, e.slot
	s.recycle(e)
	owner.compl <- complMsg{slot: slot, err: err}
}

// recycle detaches an entry from its submission and returns it to the
// pool. The frame tensors stay sized — the whole point of the pool.
func (s *Scheduler) recycle(e *windowEntry) {
	e.owner, e.slot = nil, 0
	s.free <- e
}

// shutdown fails everything queued or pending. Producers blocked in
// takeEntry, submit or await unblock through the closed stop channel.
func (s *Scheduler) shutdown() {
	s.gather()
	s.failures.Add(int64(len(s.pending)))
	for _, e := range s.pending {
		s.fail(e, ErrSchedulerClosed)
	}
	s.pending = s.pending[:0]
	s.depthGauge.Store(0)
}

// complMsg is one window completion, routed back to the producer that
// submitted it. Fixed-size, moved by value.
type complMsg struct {
	slot int
	err  error
}

// Producer is one pipeline's handle on a shared Scheduler: an entry
// source, a submission edge and a completion sink. A Producer belongs
// to a single pipeline goroutine; rounds are strictly sequential
// (submit a round, await it, emit), matching the pipeline's flush
// discipline.
type Producer struct {
	s     *Scheduler
	compl chan complMsg
	out   []int             // per-round classes, indexed by submission slot
	sops  []float64         // per-round SOP estimates, indexed by submission slot
	tier  snn.PrecisionTier // precision tier every submission carries
	taken int               // scheduler-goroutine-only: windows granted this tick
}

// NewProducer registers a producer that will have at most inflight
// windows submitted and unawaited at any time (a pipeline passes its
// round width). The completion channel is buffered to exactly that, so
// the scheduler's demux can never block on a slow producer.
func (s *Scheduler) NewProducer(inflight int) *Producer {
	if inflight < 1 {
		inflight = 1
	}
	return &Producer{
		s:     s,
		compl: make(chan complMsg, inflight),
		out:   make([]int, inflight),
		sops:  make([]float64, inflight),
	}
}

// takeEntry borrows a pooled entry to voxelize one window into,
// blocking while all entries are in flight — the scheduler-side
// backpressure that bounds total staged frame memory.
//
//axsnn:hotpath
func (p *Producer) takeEntry() (*windowEntry, error) {
	select {
	case e := <-p.s.free:
		return e, nil
	case <-p.s.stop:
		return nil, ErrSchedulerClosed
	}
}

// frames returns the entry's frame tensors sized to the scheduler's
// step count and the given sensor, ready to voxelize into.
func (p *Producer) frames(e *windowEntry, h, w int) []*tensor.Tensor {
	return e.sizedFrames(p.s.o.Steps, h, w)
}

// submit queues a voxelized entry for the next tick, tagged with the
// round slot its class and completion route back to. The queue is
// sized to the entry pool, so the send can only block during shutdown.
//
//axsnn:hotpath
func (p *Producer) submit(e *windowEntry, slot int) {
	e.owner, e.slot, e.tier = p, slot, p.tier
	select {
	case p.s.queue <- e:
	case <-p.s.stop:
		// The scheduler is gone and will never drain the queue; complete
		// the window locally so the caller's await sees a full round.
		e.owner, e.slot = nil, 0
		p.compl <- complMsg{slot: slot, err: ErrSchedulerClosed}
	}
}

// await collects n completions — one full submitted round — and
// returns the first error among them, if any. Results land in out by
// slot. Returns promptly with ErrSchedulerClosed if the scheduler
// shuts down mid-round.
//
//axsnn:hotpath
func (p *Producer) await(n int) error {
	var err error
	for i := 0; i < n; i++ {
		// Delivered completions take priority over the stop signal, so a
		// round that fully classified before Close is never mislabeled.
		select {
		case m := <-p.compl:
			if m.err != nil && err == nil {
				err = m.err
			}
			continue
		default:
		}
		select {
		case m := <-p.compl:
			if m.err != nil && err == nil {
				err = m.err
			}
		case <-p.s.stop:
			// Remaining completions may never arrive; the round is lost.
			if err == nil {
				err = ErrSchedulerClosed
			}
			return err
		}
	}
	return err
}

// releaseEntry returns an unsubmitted entry (taken but never queued —
// an error unwound the round mid-build) to the pool.
func (p *Producer) releaseEntry(e *windowEntry) {
	p.s.recycle(e)
}
