// Package stream is the bounded-memory event-serving pipeline: it
// decodes an AEDAT recording chunk by chunk (dvs.StreamReader),
// optionally denoises the flow (cross-window defense.IncrementalAQF by
// default, or the lossy per-window defense.Filter form), slices the
// event flow into fixed-duration windows (dvs.Windower), voxelizes
// windows into recycled frame tensors (dvs.VoxelizeWindowInto) and
// classifies them through the batched inference arena
// (snn.PredictBatchInto), fanning window batches out over the shared
// tensor worker pool — with clones either owned per pipeline or drawn
// from a shared bounded CloneSource (internal/serve's session pool).
// In producer mode (Options.Scheduler) the pipeline keeps the
// read → filter → voxelize half and hands classification to a shared
// Scheduler that coalesces ready windows from all sessions into
// continuous batches — see Scheduler.
//
// The memory and allocation contract, pinned by the property tests:
//
//   - Peak state is O(Workers × Batch × window) — chunk buffer, window
//     slots and arena scratch — independent of recording length; a
//     recording arbitrarily larger than the chunk buffer streams
//     through in constant space. The frame tensors (the dominant term)
//     live in a SlotPool that concurrent pipelines can share, so a
//     serving tier's frame memory scales with the pool, not with the
//     session count.
//   - Steady state performs 0 tensor allocations per window (without a
//     Filter): slots, frames, clones and arenas are recycled; only the
//     per-recording setup (reader, windower) allocates.
//
// Predictions are bit-identical to the in-memory reference — splitting
// the loaded recording with dvs.SplitWindows, voxelizing each window
// and running PredictBatch — at any worker count, chunk size and batch
// size: windows are classified independently and the batched arena
// forward is per-sample exact, so scheduling can never change a class.
package stream

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/defense"
	"repro/internal/dvs"
	"repro/internal/snn"
	"repro/internal/tensor"
)

// Options configure a Pipeline.
type Options struct {
	// WindowMS is the prediction cadence: the flow is classified once
	// per WindowMS of recording time. Required (> 0).
	WindowMS float64
	// Steps is the number of voxel bins per window; 0 uses the
	// network's configured time steps.
	Steps int
	// Workers bounds how many window batches are classified
	// concurrently (each on its own weight-sharing network clone);
	// <= 0 uses the shared pool's budget (tensor.Workers()).
	Workers int
	// Batch is how many windows one PredictBatchInto call classifies;
	// <= 0 uses 4.
	Batch int
	// ChunkEvents is the reader chunk size in events; <= 0 uses 4096.
	ChunkEvents int
	// ReorderWindow tolerates mildly out-of-order recordings: events
	// displaced at most this many positions from their time-sorted
	// place are re-sorted on the fly (dvs.StreamReaderOptions); worse
	// disorder is an error. 0 requires sorted input.
	ReorderWindow int
	// AQF, when non-nil, denoises the flow through the cross-window
	// defense.IncrementalAQF — the default AQF mode: correlation state
	// and hot-pixel runs carry across window boundaries and the
	// per-window predictions match classifying dvs.SplitWindows over
	// the whole-stream defense.AQF output. The filter runs ahead of the
	// windower, so windows see quantized timestamps, exactly as the
	// in-memory reference does. Mutually exclusive with Filter.
	// Filtering allocates — the zero-alloc contract covers the
	// unfiltered path.
	AQF *defense.AQFParams
	// Filter, when non-nil, denoises every window in isolation before
	// voxelization — the lossy per-window form kept for workloads that
	// want strict window isolation; see the defense.Filter godoc for
	// the boundary semantics it trades away. Mutually exclusive with
	// AQF.
	Filter defense.Filter
	// Clones, when non-nil, supplies the evaluation networks classify
	// runs on instead of the pipeline growing its own Workers clones —
	// the serving form: many concurrent pipelines share one bounded
	// clone pool (internal/serve), and a checkpoint hot-swap refreshes
	// clones between batches. AcquireClone may block until a clone is
	// free; every acquired clone is released after its batch.
	Clones CloneSource
	// Slots, when non-nil, is the shared pool the pipeline draws its
	// window-batch frame slots from — the serving form: all sessions'
	// frame memory is bounded by the pool instead of growing with the
	// session count. Its batch width must match Batch. When nil the
	// pipeline builds a private pool of Workers slots, which never
	// blocks (at most Workers batches classify concurrently).
	Slots *SlotPool
	// Scheduler, when non-nil, switches the pipeline into producer
	// mode — the cross-session continuous-batching split: the pipeline
	// keeps the whole read → filter → voxelize half but submits every
	// voxelized window to the shared Scheduler instead of classifying
	// on its own clones, and the scheduler coalesces windows from all
	// producers into shared GEMMs (see Scheduler). Results are
	// bit-identical to the private path: the batched arena forward is
	// per-sample exact, so batch composition cannot change a class.
	// Mutually exclusive with Clones and Slots (the scheduler owns the
	// clone source and the frame memory); Steps must match the
	// scheduler's uniform step count.
	Scheduler *Scheduler
	// Observer, when non-nil, receives one ObserveRound per
	// classification round — the serving tier's latency/throughput
	// tap. In producer mode the round latency includes the scheduler
	// round trip (submit → coalesced classify → demux), which is the
	// latency a session actually experiences. The calls happen on the
	// pipeline's Run goroutine, outside the reproducible kernels;
	// implementations must not block.
	Observer Observer
	// SensorW/SensorH, when set, are the sensor resolution the network
	// was built for: Run rejects any recording that declares different
	// dimensions (a mismatched frame layout would otherwise alias into
	// the network's input buffer and classify garbage). When zero, the
	// first recording's dimensions are adopted and every later Run must
	// match them.
	SensorW, SensorH int
	// Tier is the precision tier this pipeline classifies on
	// (snn.TierFP32 by default). TierINT8 requires int8 panels: on the
	// served network for pipeline-owned clones, or a CloneSource /
	// Scheduler whose clone source implements TierCloneSource.
	Tier snn.PrecisionTier
	// Energy, when non-nil, attributes estimated synaptic operations
	// (SOPs) to every classified window: Result.SOPs carries each
	// window's share of its batch's total, split proportionally to the
	// windows' input activity. The accounting is an estimate — spiking
	// statistics are aggregated per batch, so a window's SOPs can vary
	// with the batch it rode in — and is allocation-free in the steady
	// state. The serve tier passes its per-checkpoint energy model.
	Energy EnergyAccount
}

// EnergyAccount attributes a batch's synaptic work. The approx
// package's EnergyModel is the canonical implementation; the interface
// keeps stream free of the approx dependency. BatchSOPs runs on the
// classification hot path and must not allocate or block.
type EnergyAccount interface {
	// BatchSOPs returns the performed and unpruned-baseline SOP counts
	// of the batch net just classified: the caller reset spike
	// statistics before the forward and supplies the batch's total
	// input activity and sample count.
	BatchSOPs(net *snn.Network, inputSum float64, batch int) (sops, possible float64)
}

// TierCloneSource is a CloneSource that can hand out clones pinned to
// a precision tier — the serve pool implements it so INT8 sessions
// draw int8-panel clones from the same bounded pool FP32 sessions use.
type TierCloneSource interface {
	CloneSource
	// SupportsTier reports whether AcquireCloneTier can serve tier t.
	SupportsTier(t snn.PrecisionTier) bool
	// AcquireCloneTier is AcquireClone with the clone switched to tier
	// t before it is returned.
	AcquireCloneTier(t snn.PrecisionTier) *snn.Network
}

// DefaultBatch is the window-batch width used when Options.Batch is
// unset; serve sizes its shared SlotPool with the same resolution
// rule.
const DefaultBatch = 4

// Observer taps a pipeline's classification rounds for telemetry. One
// round is one flush: up to Workers×Batch windows voxelized and
// predicted across the worker pool. The latency covers the whole round
// — including any wait for shared clone/slot pool units, which is
// exactly the cross-session contention a serving tier wants to see —
// but excludes upload pacing and consumer stalls, which are the
// client's own doing.
type Observer interface {
	// ObserveRound reports one classification round of `windows`
	// windows that took latencyNs wall-clock nanoseconds.
	ObserveRound(windows int, latencyNs int64)
}

// CloneSource hands out weight-sharing evaluation clones of a served
// model. Implementations are safe for concurrent use; the serve
// package's bounded pool is the canonical one.
type CloneSource interface {
	// AcquireClone returns a clone to classify one batch on, blocking
	// until one is free.
	AcquireClone() *snn.Network
	// ReleaseClone returns a clone obtained from AcquireClone.
	ReleaseClone(*snn.Network)
}

// withDefaults resolves the optional fields against a network.
func (o Options) withDefaults(net *snn.Network) (Options, error) {
	if o.WindowMS <= 0 {
		return o, fmt.Errorf("stream: WindowMS must be positive, got %v", o.WindowMS)
	}
	if o.AQF != nil && o.Filter != nil {
		return o, fmt.Errorf("stream: AQF and Filter are mutually exclusive filter modes")
	}
	if (o.SensorW == 0) != (o.SensorH == 0) || o.SensorW < 0 || o.SensorH < 0 {
		return o, fmt.Errorf("stream: SensorW/SensorH must be set together, got %dx%d", o.SensorW, o.SensorH)
	}
	if o.Steps <= 0 {
		o.Steps = net.Cfg.Steps
	}
	if o.Workers <= 0 {
		o.Workers = tensor.Workers()
	}
	if o.Batch <= 0 {
		o.Batch = DefaultBatch
	}
	if o.ChunkEvents <= 0 {
		o.ChunkEvents = 4096
	}
	if o.ReorderWindow < 0 {
		o.ReorderWindow = 0
	}
	if o.Slots != nil && o.Slots.Batch() != o.Batch {
		return o, fmt.Errorf("stream: shared SlotPool covers %d-window batches, pipeline wants %d",
			o.Slots.Batch(), o.Batch)
	}
	if o.Scheduler != nil {
		if o.Clones != nil {
			return o, fmt.Errorf("stream: Scheduler and Clones are mutually exclusive (the scheduler owns the clone source)")
		}
		if o.Slots != nil {
			return o, fmt.Errorf("stream: Scheduler and Slots are mutually exclusive (the scheduler owns the frame memory)")
		}
		if o.Steps != o.Scheduler.Steps() {
			return o, fmt.Errorf("stream: pipeline voxelizes %d steps, scheduler serves %d", o.Steps, o.Scheduler.Steps())
		}
		if o.Tier != snn.TierFP32 && !o.Scheduler.supportsTier(o.Tier) {
			return o, fmt.Errorf("stream: scheduler's clone source cannot serve the %v tier", o.Tier)
		}
	}
	if o.Tier != snn.TierFP32 && o.Clones != nil {
		ts, ok := o.Clones.(TierCloneSource)
		if !ok || !ts.SupportsTier(o.Tier) {
			return o, fmt.Errorf("stream: clone source cannot serve the %v tier", o.Tier)
		}
	}
	return o, nil
}

// Result is one window's prediction.
type Result struct {
	// Window is the window index (Window*WindowMS is its start).
	Window int
	// StartMS is the window's opening timestamp in milliseconds.
	StartMS float64
	// Events is how many events were voxelized (post-filter).
	Events int
	// Class is the predicted class.
	Class int
	// SOPs is the window's estimated synaptic-operation count — its
	// activity-weighted share of the batch it classified in — or 0
	// when the pipeline runs without Options.Energy. Unlike Class it
	// is an estimate, not deterministic across batch compositions.
	SOPs float64
}

// slot is one recycled in-flight staging window: its events (copied
// out of the windower) and its result fields. The frame tensors the
// events voxelize into are NOT here — they live in pooled BatchSlots,
// acquired only while a batch actually classifies. The split is
// deliberate: event staging must be held while the session reads its
// input (so it stays per-pipeline and cannot be pinned by a slow
// uploader), while the far heavier frame memory is borrowed for the
// classification instant and shared across sessions.
type slot struct {
	index   int
	start   float64
	events  []dvs.Event
	rebased []dvs.Event // filter scratch: window-rebased timestamps
	kept    int         // events voxelized (post-filter)
}

// Pipeline is a reusable streaming classifier: construct once per
// model, Run once per recording. Between recordings every buffer —
// window slots, frame tensors, network clones, inference arenas — is
// retained, so the steady state allocates nothing per window. A
// Pipeline is not safe for concurrent Runs; concurrent serving uses
// one Pipeline per goroutine (clones share the trained weights).
type Pipeline struct {
	net    *snn.Network
	o      Options
	clones []*snn.Network // one per worker; weight-sharing evaluation clones (nil with o.Clones)
	slots  []*slot        // Workers×Batch recycled staging windows
	pool   *SlotPool      // frame memory: o.Slots or a private Workers-sized pool
	chunk  []dvs.Event
	out    []int // per-round predictions, aligned with slots
	inc    *defense.IncrementalAQF
	prod   *Producer // producer mode (o.Scheduler): the shared-classifier handle

	// Tier/energy plumbing: the tiered view of o.Clones (nil when the
	// pipeline runs FP32 or owns its clones), and the per-slot SOP
	// estimates plus per-batch input-activity scratch, preallocated so
	// the accounting rides the zero-alloc hot path.
	tierSrc TierCloneSource
	sops    []float64 // per-round SOP estimates, aligned with slots
	insums  []float64 // per-slot input-activity scratch for the split

	// classify's bound-method closure, created once so the steady-state
	// flush does not allocate; runH/runW are the current recording's
	// sensor dims, set at the top of Run.
	body       func(lo, hi int)
	runH, runW int

	// classify may run on shared pool worker goroutines, where an
	// uncaught panic would kill the whole process (a serving tier must
	// fail the session, not the server). Panics are captured here and
	// surfaced as flush errors on the caller's goroutine.
	panicMu  sync.Mutex
	panicErr error //axsnn:guardedby panicMu
}

// NewPipeline builds a streaming classifier over net. The network is
// used read-only: every worker classifies on a CloneArchitecture clone
// sharing the trained weights.
func NewPipeline(net *snn.Network, o Options) (*Pipeline, error) {
	o, err := o.withDefaults(net)
	if err != nil {
		return nil, err
	}
	p := &Pipeline{net: net, o: o}
	if o.Scheduler == nil {
		if o.Clones == nil {
			p.clones = make([]*snn.Network, o.Workers)
			for i := range p.clones {
				p.clones[i] = net.CloneArchitecture()
				if err := p.clones[i].SetTier(o.Tier); err != nil {
					return nil, fmt.Errorf("stream: %w", err)
				}
			}
		} else if o.Tier != snn.TierFP32 {
			p.tierSrc = o.Clones.(TierCloneSource) // validated in withDefaults
		}
		p.pool = o.Slots
		if p.pool == nil {
			// Private pool: at most min(tensor.Workers(), Workers) batches
			// classify concurrently, so Workers slots can never block.
			p.pool = NewSlotPool(o.Workers, o.Batch)
		}
	}
	p.slots = make([]*slot, o.Workers*o.Batch)
	for i := range p.slots {
		p.slots[i] = &slot{}
	}
	p.chunk = make([]dvs.Event, o.ChunkEvents)
	p.out = make([]int, len(p.slots))
	p.sops = make([]float64, len(p.slots))
	p.insums = make([]float64, len(p.slots))
	p.body = p.classify
	if o.Scheduler != nil {
		// Producer mode: the round width bounds this pipeline's windows
		// in flight at the scheduler, so the completion channel sized to
		// it can never block the shared demux.
		p.prod = o.Scheduler.NewProducer(len(p.slots))
		p.prod.tier = o.Tier
	}
	return p, nil
}

// Run streams one AEDAT recording from r and calls emit for every
// window, in window order. The recording's sensor must match what the
// network was built for; emit returning an error aborts the run.
func (p *Pipeline) Run(r io.Reader, emit func(Result) error) error {
	sr, err := dvs.NewStreamReaderOptions(r, dvs.StreamReaderOptions{ReorderWindow: p.o.ReorderWindow})
	if err != nil {
		return err
	}
	h, w := sr.H(), sr.W()
	// The frame layout is (2, H, W): a recording with the wrong sensor
	// would alias into the network's input buffer and classify garbage,
	// so dimensions are pinned — by Options.SensorW/H when declared, by
	// the first recording otherwise.
	if p.o.SensorW == 0 && p.o.SensorH == 0 {
		p.o.SensorW, p.o.SensorH = w, h
	}
	if w != p.o.SensorW || h != p.o.SensorH {
		return fmt.Errorf("stream: recording declares a %dx%d sensor, pipeline serves %dx%d",
			w, h, p.o.SensorW, p.o.SensorH)
	}
	win, err := dvs.NewWindower(p.o.WindowMS, sr.Duration())
	if err != nil {
		return err
	}
	p.runH, p.runW = h, w
	if p.o.AQF != nil {
		// The incremental filter runs ahead of the windower: windows
		// are cut on quantized timestamps, exactly as splitting the
		// whole-stream AQF output would cut them. The filter is built
		// once the sensor is pinned and recycled across recordings.
		if p.inc == nil {
			p.inc, err = defense.NewIncrementalAQF(w, h, sr.Duration(), *p.o.AQF)
			if err != nil {
				return err
			}
		} else {
			p.inc.Reset(sr.Duration())
		}
	}

	ready := 0
	// takeWindow pops the windower's current window into the next free
	// slot, flushing a full round of slots through the classifiers.
	takeWindow := func() error {
		idx, start, evs := win.Pop()
		s := p.slots[ready]
		s.index, s.start = idx, start
		s.events = append(s.events[:0], evs...)
		ready++
		if ready == len(p.slots) {
			if err := p.flush(ready, emit); err != nil {
				return err
			}
			ready = 0
		}
		return nil
	}

	// offer feeds filtered (or raw) events into the windower, flushing
	// full slot rounds as windows close.
	offer := func(events []dvs.Event) error {
		for _, e := range events {
			for {
				ok, oerr := win.Offer(e)
				if oerr != nil {
					return oerr
				}
				if ok {
					break
				}
				if err := takeWindow(); err != nil {
					return err
				}
			}
		}
		return nil
	}

	for {
		n, rerr := sr.ReadChunk(p.chunk)
		events := p.chunk[:n]
		if p.inc != nil {
			events, err = p.inc.Push(events)
			if err != nil {
				return err
			}
		}
		if err := offer(events); err != nil {
			return err
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return rerr
		}
	}
	if p.inc != nil {
		if err := offer(p.inc.Flush()); err != nil {
			return err
		}
	}
	// The tail of the recording window: silent stretches still produce
	// (empty-window) predictions, so a run always emits NumWindows
	// results.
	for !win.Done() {
		if err := takeWindow(); err != nil {
			return err
		}
	}
	return p.flush(ready, emit)
}

// classify is the worker body: filter, voxelize and predict the slots
// in [lo, hi). Pool blocks are always grain-aligned, so every
// Batch-sized sub-range below has a unique batch index — no two
// concurrent groups ever share a network clone or an arena. (The
// serial path hands the whole range to one call; the loop re-splits
// it, so clone assignment is identical either way.)
//
//axsnn:hotpath
func (p *Pipeline) classify(lo, hi int) {
	defer func() {
		if r := recover(); r != nil {
			p.panicMu.Lock()
			if p.panicErr == nil {
				p.panicErr = fmt.Errorf("stream: window classification panicked: %v", r) //axsnn:allow-alloc panic capture: formats once per failed run
			}
			p.panicMu.Unlock()
		}
	}()
	for lo < hi {
		end := lo + p.o.Batch - lo%p.o.Batch
		if end > hi {
			end = hi
		}
		p.classifyBatch(lo, end)
		lo = end
	}
}

// classifyBatch filters, voxelizes and predicts one Batch-aligned slot
// group. It is a separate frame so the pooled units' releases are
// deferred: even a panicking classification returns the frame slot and
// the clone to their shared pools instead of draining them. Acquire
// order is fixed — BatchSlot first, then clone — and uniform across
// every session, so the two bounded pools cannot deadlock against each
// other; both are released before flush emits any result, so a session
// stalled on a slow consumer holds no pooled memory.
//
//axsnn:hotpath
func (p *Pipeline) classifyBatch(lo, end int) {
	h, w := p.runH, p.runW
	bs := p.pool.AcquireSlot()
	defer p.pool.ReleaseSlot(bs)
	var clone *snn.Network
	if p.tierSrc != nil {
		// Tiered serving mode: the pool pins the clone to this
		// pipeline's precision tier before handing it over.
		clone = p.tierSrc.AcquireCloneTier(p.o.Tier)
		defer p.o.Clones.ReleaseClone(clone)
	} else if p.o.Clones != nil {
		// Serving mode: draw a clone from the shared bounded pool
		// for just this batch. All pooled clones share the served
		// weights, so which one answers cannot change a class.
		clone = p.o.Clones.AcquireClone()
		defer p.o.Clones.ReleaseClone(clone)
	} else {
		clone = p.clones[lo/p.o.Batch]
	}
	samples := bs.Samples()
	for j, s := range p.slots[lo:end] {
		frames := bs.Frames(j, p.o.Steps, h, w)
		p.stageWindow(s, frames)
		if p.o.Energy != nil {
			p.insums[lo+j] = frameSum(frames)
		}
		samples = append(samples, frames) //axsnn:allow-alloc capped at Batch; backing array preallocated at pool construction
	}
	if p.o.Energy != nil {
		clone.ResetStats()
	}
	clone.PredictBatchInto(samples, p.out[lo:end])
	if p.o.Energy != nil {
		inputSum := 0.0
		for _, v := range p.insums[lo:end] {
			inputSum += v
		}
		total, _ := p.o.Energy.BatchSOPs(clone, inputSum, end-lo)
		splitSOPs(total, p.insums[lo:end], p.sops[lo:end])
	}
}

// frameSum totals a window's voxelized input activity — the weight its
// SOP share is split by.
//
//axsnn:hotpath
func frameSum(frames []*tensor.Tensor) float64 {
	sum := 0.0
	for _, f := range frames {
		sum += f.Sum()
	}
	return sum
}

// splitSOPs distributes a batch's total SOP estimate over its windows
// proportionally to their input activity (equal split when the whole
// batch was silent — zero activity still pays the readout's baseline).
//
//axsnn:hotpath
func splitSOPs(total float64, insums, sops []float64) {
	weight := 0.0
	for _, v := range insums {
		weight += v
	}
	for i := range sops {
		if weight > 0 {
			sops[i] = total * insums[i] / weight
		} else {
			sops[i] = total / float64(len(sops))
		}
	}
}

// stageWindow filters one staged window and voxelizes it into frames —
// the per-window half both classification paths share (private
// classifyBatch and the producer-mode submission loop), so the two are
// input-identical by construction.
//
//axsnn:hotpath
func (p *Pipeline) stageWindow(s *slot, frames []*tensor.Tensor) {
	h, w := p.runH, p.runW
	events, start := s.events, s.start
	if p.o.Filter != nil {
		// Rebase the window to t=0 so the filter sees the same
		// standalone stream the in-memory reference builds with
		// SplitWindows.
		s.rebased = s.rebased[:0]
		for _, e := range events {
			e.T -= start
			s.rebased = append(s.rebased, e) //axsnn:allow-alloc grows to the window's event count, then reuses the backing array
		}
		view := &dvs.Stream{W: w, H: h, Duration: p.o.WindowMS, Events: s.rebased} //axsnn:allow-alloc documented Filter cost: one stream header per filtered window
		filtered := p.o.Filter.Filter(view)
		events, start = filtered.Events, 0
	}
	dvs.VoxelizeWindowInto(frames, events, w, h, start, p.o.WindowMS)
	s.kept = len(events)
}

// flush classifies slots[:ready] — filter, voxelize, predict — fanning
// Batch-sized window groups out over the shared worker pool, then
// emits the results in window order. Window results are independent of
// scheduling, so any worker count yields identical classes.
//
//axsnn:hotpath
func (p *Pipeline) flush(ready int, emit func(Result) error) error {
	if ready == 0 {
		return nil
	}
	if p.prod != nil {
		return p.flushShared(ready, emit)
	}
	var t0 int64
	if p.o.Observer != nil {
		t0 = time.Now().UnixNano() //axsnn:allow-alloc observability clock read, once per round, outside the reproducible kernels
	}
	tensor.ParallelFor(ready, p.o.Batch, p.body)
	p.panicMu.Lock()
	perr := p.panicErr
	p.panicErr = nil
	p.panicMu.Unlock()
	if perr != nil {
		// A classification panic (e.g. a recording whose adopted sensor
		// mismatches the network's input layout) fails this run, not the
		// process: pool worker goroutines have no recover of their own.
		return perr
	}
	if p.o.Observer != nil {
		// Observed before the emit loop: a consumer stalling emit (a
		// credit-blocked session) must not smear the classification
		// latency other sessions are measured against.
		p.o.Observer.ObserveRound(ready, time.Now().UnixNano()-t0) //axsnn:allow-alloc observability clock read, once per round, outside the reproducible kernels
	}
	for i, s := range p.slots[:ready] {
		r := Result{Window: s.index, StartMS: s.start, Events: s.kept, Class: p.out[i], SOPs: p.sops[i]}
		if err := emit(r); err != nil {
			return err
		}
	}
	return nil
}

// flushShared is the producer-mode round: voxelize every ready slot
// into a pooled scheduler entry, submit the round, await the coalesced
// completions, emit in window order. Staging and submitting interleave
// deliberately — the scheduler can start classifying this round's
// early windows (alongside other sessions') while the later ones are
// still voxelizing.
//
//axsnn:hotpath
func (p *Pipeline) flushShared(ready int, emit func(Result) error) error {
	var t0 int64
	if p.o.Observer != nil {
		t0 = time.Now().UnixNano() //axsnn:allow-alloc observability clock read, once per round, outside the reproducible kernels
	}
	submitted := 0
	var serr error
	for i := 0; i < ready; i++ {
		e, err := p.prod.takeEntry()
		if err != nil {
			serr = err
			break
		}
		p.stageWindow(p.slots[i], p.prod.frames(e, p.runH, p.runW))
		p.prod.submit(e, i)
		submitted++
	}
	// Await everything actually submitted even on a mid-round error:
	// in-flight entries must come home before the round unwinds.
	if err := p.prod.await(submitted); err != nil && serr == nil {
		serr = err
	}
	if serr != nil {
		return serr
	}
	if p.o.Observer != nil {
		// Observed before the emit loop, like the private path: a
		// credit-stalled consumer must not smear the classification
		// latency. Unlike the private path the round includes the
		// scheduler queue wait — the latency a session actually sees.
		p.o.Observer.ObserveRound(ready, time.Now().UnixNano()-t0) //axsnn:allow-alloc observability clock read, once per round, outside the reproducible kernels
	}
	for i, s := range p.slots[:ready] {
		r := Result{Window: s.index, StartMS: s.start, Events: s.kept, Class: p.prod.out[i], SOPs: p.prod.sops[i]}
		if err := emit(r); err != nil {
			return err
		}
	}
	return nil
}

// Predict streams one recording through a fresh pipeline and collects
// the per-window results — the convenience form; long-lived serving
// builds a Pipeline once and Runs it per recording.
func Predict(r io.Reader, net *snn.Network, o Options) ([]Result, error) {
	p, err := NewPipeline(net, o)
	if err != nil {
		return nil, err
	}
	var out []Result
	if err := p.Run(r, func(res Result) error {
		out = append(out, res)
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// PredictFile is Predict over an .aedat file.
func PredictFile(path string, net *snn.Network, o Options) ([]Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Predict(f, net, o)
}
