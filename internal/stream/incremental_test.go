package stream

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/defense"
	"repro/internal/dvs"
	"repro/internal/rng"
	"repro/internal/snn"
	"repro/internal/tensor"
)

// noisyStream is a gesture polluted with isolated noise and a flooding
// pixel, so every AQF rule (support, polarity, hot pixel) does real
// work during the equivalence runs.
func noisyStream(t *testing.T, class int, durMS float64, seed uint64) *dvs.Stream {
	t.Helper()
	s := testStream(class, durMS, seed)
	r := rng.New(seed + 1000)
	for k := 0; k < 80; k++ {
		s.Events = append(s.Events, dvs.Event{X: r.Intn(16), Y: r.Intn(16), P: 1, T: r.Float64() * durMS})
	}
	for k := 0; k < int(durMS/4); k++ {
		tms := float64(k) * 4
		s.Events = append(s.Events, dvs.Event{X: 0, Y: 0, P: 1, T: tms})
		s.Events = append(s.Events, dvs.Event{X: 0, Y: 0, P: -1, T: tms})
	}
	s.Sort()
	return s
}

// incrementalReference is the in-memory path the incremental mode is
// pinned to: whole-stream AQF first, then window the filtered flow —
// windows cut on quantized timestamps, classified in one batch.
func incrementalReference(net *snn.Network, s *dvs.Stream, p defense.AQFParams, windowMS float64, steps int) ([]int, []int) {
	filtered := defense.AQF(s, p)
	subs := dvs.SplitWindows(filtered, windowMS)
	samples := make([][]*tensor.Tensor, len(subs))
	counts := make([]int, len(subs))
	for i, sub := range subs {
		samples[i] = sub.Voxelize(steps)
		counts[i] = len(sub.Events)
	}
	return net.PredictBatch(samples), counts
}

// TestStreamingIncrementalAQFMatchesWholeStream is the serving-side pin
// of the cross-window filter: pipeline predictions with Options.AQF
// equal classifying SplitWindows over the whole-stream AQF output, at
// every worker count and across chunk/batch/window geometry — the
// guarantee the lossy per-window mode never had.
func TestStreamingIncrementalAQFMatchesWholeStream(t *testing.T) {
	defer tensor.SetWorkers(0)
	steps := 5
	net := testNet(steps)
	s := noisyStream(t, 2, 400, 51)
	data := encode(t, s)
	p := defense.DefaultAQFParams(0.015)

	for _, windowMS := range []float64{400, 100, 61.5, 25} {
		tensor.SetWorkers(1)
		want, wantCounts := incrementalReference(net, s, p, windowMS, steps)
		for _, cfg := range []struct {
			workers, chunk, batch int
		}{
			{1, 1, 1},
			{1, 7, 3},
			{2, 4096, 2},
			{4, 13, 4},
		} {
			tensor.SetWorkers(cfg.workers)
			results, err := Predict(bytes.NewReader(data), net, Options{
				WindowMS: windowMS, Steps: steps, AQF: &p,
				Workers: cfg.workers, ChunkEvents: cfg.chunk, Batch: cfg.batch,
			})
			if err != nil {
				t.Fatal(err)
			}
			got := make([]int, len(results))
			for i, r := range results {
				got[i] = r.Class
				if r.Events != wantCounts[i] {
					t.Fatalf("window=%gms workers=%d chunk=%d batch=%d: window %d kept %d events, reference kept %d",
						windowMS, cfg.workers, cfg.chunk, cfg.batch, i, r.Events, wantCounts[i])
				}
			}
			assertSameClasses(t, want, got, fmt.Sprintf(
				"incremental window=%gms workers=%d chunk=%d batch=%d",
				windowMS, cfg.workers, cfg.chunk, cfg.batch))
		}
	}
}

// TestStreamingIncrementalBeatsPerWindowGrace demonstrates the defect
// the incremental mode fixes: with a window no longer than T2, the
// per-window form filters nothing at all (every event falls in its
// window's grace period), while the incremental form keeps filtering
// after the recording's first T2 ms.
func TestStreamingIncrementalBeatsPerWindowGrace(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(1)
	steps := 4
	net := testNet(steps)
	// Sparse isolated noise (sparse enough that it cannot vouch for
	// itself through the support rule): the whole-stream filter should
	// remove most of it past the opening grace period.
	r := rng.New(77)
	s := &dvs.Stream{W: 16, H: 16, Duration: 800}
	for i := 0; i < 150; i++ {
		s.Events = append(s.Events, dvs.Event{X: r.Intn(16), Y: r.Intn(16), P: 1, T: r.Float64() * 800})
	}
	s.Sort()
	data := encode(t, s)
	p := defense.DefaultAQFParams(0.01) // T2 = 50ms

	kept := func(o Options) int {
		results, err := Predict(bytes.NewReader(data), net, o)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, res := range results {
			n += res.Events
		}
		return n
	}
	perWindow := kept(Options{WindowMS: 50, Steps: steps,
		Filter: defense.AQFFilter{Params: p}})
	incremental := kept(Options{WindowMS: 50, Steps: steps, AQF: &p})
	if perWindow != len(s.Events) {
		t.Fatalf("per-window AQF at window=T2 should pass all %d events (every window is grace period), kept %d",
			len(s.Events), perWindow)
	}
	if incremental*2 > len(s.Events) {
		t.Fatalf("incremental AQF kept %d of %d noise events", incremental, len(s.Events))
	}
}

// TestStreamingIncrementalPipelineReuse reruns one pipeline across
// recordings: the recycled filter state must reset per run.
func TestStreamingIncrementalPipelineReuse(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(1)
	steps := 4
	net := testNet(steps)
	p := defense.DefaultAQFParams(0.01)
	pipe, err := NewPipeline(net, Options{WindowMS: 80, Steps: steps, AQF: &p, ChunkEvents: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{81, 82, 83} {
		s := noisyStream(t, int(seed%11), 250, seed)
		want, _ := incrementalReference(net, s, p, 80, steps)
		var got []int
		if err := pipe.Run(bytes.NewReader(encode(t, s)), func(r Result) error {
			got = append(got, r.Class)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		assertSameClasses(t, want, got, fmt.Sprintf("reuse seed=%d", seed))
	}
}

// TestStreamingFilterModeExclusive pins the option validation.
func TestStreamingFilterModeExclusive(t *testing.T) {
	net := testNet(3)
	p := defense.DefaultAQFParams(0.01)
	_, err := NewPipeline(net, Options{WindowMS: 50, AQF: &p,
		Filter: defense.AQFFilter{Params: p}})
	if err == nil {
		t.Fatal("AQF and Filter accepted together")
	}
}
