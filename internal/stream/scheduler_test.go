package stream

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/dvs"
	"repro/internal/snn"
	"repro/internal/tensor"
)

// testClones is a bounded CloneSource over deep copies of one master —
// the shape internal/serve's pool presents, without the server.
type testClones struct{ ch chan *snn.Network }

func newTestClones(master *snn.Network, n int) *testClones {
	c := &testClones{ch: make(chan *snn.Network, n)}
	for i := 0; i < n; i++ {
		c.ch <- master.DeepClone()
	}
	return c
}

func (c *testClones) AcquireClone() *snn.Network  { return <-c.ch }
func (c *testClones) ReleaseClone(n *snn.Network) { c.ch <- n }

// TestSchedulerMatchesPrivate is the shared-batching equivalence gate:
// producer-mode pipelines riding one shared scheduler must emit classes
// bit-identical to private pipelines, for every mix of window, chunk
// and round sizes, at several worker counts and coalescing caps, with
// all sessions streaming concurrently so ticks really interleave
// windows from different producers into one batch.
func TestSchedulerMatchesPrivate(t *testing.T) {
	defer tensor.SetWorkers(0)
	steps := 4
	net := testNet(steps)
	clones := newTestClones(net, 2)

	type session struct {
		data []byte
		want []int
		o    Options
	}
	shapes := []Options{
		{WindowMS: 50, Steps: steps, Batch: 1, ChunkEvents: 64},
		{WindowMS: 45, Steps: steps, Batch: 2, ChunkEvents: 96},
		{WindowMS: 60, Steps: steps, Batch: 4, ChunkEvents: 48},
		{WindowMS: 35, Steps: steps, Batch: 3, ChunkEvents: 128},
	}
	sessions := make([]session, len(shapes))
	total := 0
	for i, o := range shapes {
		data := encode(t, testStream(i%dvs.GestureClasses, 260, uint64(70+i)))
		sessions[i] = session{data: data, want: streamClasses(t, net, data, o), o: o}
		total += len(sessions[i].want)
	}

	for _, workers := range []int{1, 2, 3} {
		for _, maxBatch := range []int{2, 16} {
			t.Run(fmt.Sprintf("workers=%d/maxbatch=%d", workers, maxBatch), func(t *testing.T) {
				tensor.SetWorkers(workers)
				sched, err := NewScheduler(SchedulerOptions{Steps: steps, MaxBatch: maxBatch, Clones: clones})
				if err != nil {
					t.Fatal(err)
				}
				var wg sync.WaitGroup
				errs := make(chan error, len(sessions))
				for i, ss := range sessions {
					wg.Add(1)
					go func(i int, ss session) {
						defer wg.Done()
						o := ss.o
						o.Scheduler = sched
						results, err := Predict(bytes.NewReader(ss.data), net, o)
						if err != nil {
							errs <- fmt.Errorf("session %d: %w", i, err)
							return
						}
						if len(results) != len(ss.want) {
							errs <- fmt.Errorf("session %d: %d windows, want %d", i, len(results), len(ss.want))
							return
						}
						for k, r := range results {
							if r.Window != k {
								errs <- fmt.Errorf("session %d: result %d carries window %d: demux broke ordering", i, k, r.Window)
								return
							}
							if r.Class != ss.want[k] {
								errs <- fmt.Errorf("session %d window %d: class %d, want %d", i, k, r.Class, ss.want[k])
								return
							}
						}
					}(i, ss)
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					t.Error(err)
				}
				st := sched.Stats()
				sched.Close()
				if st.Windows != int64(total) {
					t.Fatalf("scheduler classified %d windows, sessions streamed %d", st.Windows, total)
				}
				if fair := int64(sched.FairShare()); st.MaxPerTick > fair {
					t.Fatalf("one producer took %d windows in a tick, fairness cap is %d", st.MaxPerTick, fair)
				}
				if st.QueueDepth != 0 {
					t.Fatalf("queue depth %d after every session drained, want 0", st.QueueDepth)
				}
			})
		}
	}
}

// schedTestWindows precomputes window event sets and their reference
// classes — voxelized and classified one window at a time, independent
// of any batching — for the white-box scheduler tests.
func schedTestWindows(t *testing.T, net *snn.Network, steps, n int) ([]*dvs.Stream, []int) {
	t.Helper()
	windows := dvs.SplitWindows(longStream(2, 200, 77), 40)
	if len(windows) < n {
		t.Fatalf("only %d windows generated, need %d", len(windows), n)
	}
	frames := make([]*tensor.Tensor, steps)
	for i := range frames {
		frames[i] = tensor.New(2, 16, 16)
	}
	ref := make([]int, n)
	for i := 0; i < n; i++ {
		dvs.VoxelizeWindowInto(frames, windows[i].Events, 16, 16, 0, 40)
		ref[i] = net.PredictBatch([][]*tensor.Tensor{frames})[0]
	}
	return windows[:n], ref
}

// submitWindow voxelizes one precomputed window into a pooled entry and
// queues it on the producer's round slot.
func submitWindow(t *testing.T, p *Producer, slot int, win *dvs.Stream) {
	t.Helper()
	e, err := p.takeEntry()
	if err != nil {
		t.Fatal(err)
	}
	dvs.VoxelizeWindowInto(p.frames(e, 16, 16), win.Events, 16, 16, 0, 40)
	p.submit(e, slot)
}

// TestSchedulerFairShare drives ticks synchronously against a heavy
// producer with a 6-window backlog and a light producer with one
// window: the fairness cap must bound the heavy session's take per
// tick, the light window must ride the very first tick, and every
// deferred window must still come back in order with its own class.
func TestSchedulerFairShare(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(1)
	steps := 3
	net := testNet(steps)
	windows, ref := schedTestWindows(t, net, steps, 7)

	s := newScheduler(SchedulerOptions{
		Steps: steps, MaxBatch: 4, Queue: 16, FairShare: 2,
		Clones: newTestClones(net, 1),
	})
	heavy := s.NewProducer(6)
	light := s.NewProducer(1)
	for k := 0; k < 6; k++ {
		submitWindow(t, heavy, k, windows[k])
	}
	submitWindow(t, light, 0, windows[6])

	s.tick()
	st := s.Stats()
	if st.Windows != 3 {
		t.Fatalf("first tick classified %d windows, want 3 (heavy capped at FairShare=2 + the light window)", st.Windows)
	}
	if st.MaxPerTick != 2 {
		t.Fatalf("max windows per producer per tick = %d, want the FairShare cap 2", st.MaxPerTick)
	}
	if st.Deferrals != 4 {
		t.Fatalf("first tick deferred %d windows, want 4", st.Deferrals)
	}
	if err := light.await(1); err != nil {
		t.Fatalf("light producer's window did not complete on the first tick: %v", err)
	}
	if light.out[0] != ref[6] {
		t.Fatalf("light window class %d, want %d", light.out[0], ref[6])
	}

	s.tick()
	s.tick()
	if err := heavy.await(6); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 6; k++ {
		if heavy.out[k] != ref[k] {
			t.Fatalf("heavy window %d class %d, want %d: deferral broke the demux routing", k, heavy.out[k], ref[k])
		}
	}
	st = s.Stats()
	if st.Ticks != 3 || st.Windows != 7 || st.Deferrals != 6 {
		t.Fatalf("ticks=%d windows=%d deferrals=%d, want 3/7/6", st.Ticks, st.Windows, st.Deferrals)
	}
	if st.QueueDepth != 0 {
		t.Fatalf("queue depth %d after the backlog drained, want 0", st.QueueDepth)
	}
}

// TestSchedulerClose pins the shutdown contract: a window submitted
// before Close either classifies on the final tick or fails with
// ErrSchedulerClosed — never hangs — and every round attempted after
// Close fails with ErrSchedulerClosed.
func TestSchedulerClose(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(1)
	steps := 3
	net := testNet(steps)
	windows, ref := schedTestWindows(t, net, steps, 1)

	sched, err := NewScheduler(SchedulerOptions{
		Steps: steps, TickInterval: time.Hour, Clones: newTestClones(net, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	p := sched.NewProducer(1)
	submitWindow(t, p, 0, windows[0])
	// Let the scheduler move the window into its accumulation wait (the
	// hour-long tick interval holds it there), then close mid-wait.
	time.Sleep(20 * time.Millisecond)
	sched.Close()
	sched.Close() // idempotent
	switch err := p.await(0); err {
	case nil:
	default:
		t.Fatalf("await(0) = %v, want nil", err)
	}
	if err := p.await(1); err == nil {
		if p.out[0] != ref[0] {
			t.Fatalf("final-tick class %d, want %d", p.out[0], ref[0])
		}
	} else if !errors.Is(err, ErrSchedulerClosed) {
		t.Fatalf("in-flight window failed with %v, want ErrSchedulerClosed", err)
	}

	// A round after Close must fail cleanly, whichever edge it dies on.
	if e, err := p.takeEntry(); err == nil {
		p.submit(e, 0)
		if err := p.await(1); !errors.Is(err, ErrSchedulerClosed) {
			t.Fatalf("post-Close round failed with %v, want ErrSchedulerClosed", err)
		}
	} else if !errors.Is(err, ErrSchedulerClosed) {
		t.Fatalf("post-Close takeEntry failed with %v, want ErrSchedulerClosed", err)
	}
}

// TestSchedulerOptionValidation covers the scheduler's constructor
// contract and the pipeline-side mutual exclusions of producer mode.
func TestSchedulerOptionValidation(t *testing.T) {
	net := testNet(3)
	clones := newTestClones(net, 1)
	if _, err := NewScheduler(SchedulerOptions{Clones: clones}); err == nil {
		t.Error("Steps 0 accepted")
	}
	if _, err := NewScheduler(SchedulerOptions{Steps: 3}); err == nil {
		t.Error("nil CloneSource accepted")
	}
	if _, err := NewScheduler(SchedulerOptions{Steps: 3, Clones: clones, SensorW: 16}); err == nil {
		t.Error("SensorW without SensorH accepted")
	}

	sched, err := NewScheduler(SchedulerOptions{Steps: 3, Clones: clones})
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Close()
	if sched.MaxBatch() != DefaultMaxBatch {
		t.Errorf("default MaxBatch = %d, want %d", sched.MaxBatch(), DefaultMaxBatch)
	}
	if sched.FairShare() != DefaultMaxBatch/4 {
		t.Errorf("default FairShare = %d, want %d", sched.FairShare(), DefaultMaxBatch/4)
	}

	base := Options{WindowMS: 50, Steps: 3, Scheduler: sched}
	conflicts := map[string]Options{
		"Clones": func() Options { o := base; o.Clones = clones; return o }(),
		"Slots":  func() Options { o := base; o.Slots = NewSlotPool(1, 1); return o }(),
		"Steps":  {WindowMS: 50, Steps: 4, Scheduler: sched},
	}
	for name, o := range conflicts {
		if _, err := NewPipeline(net, o); err == nil {
			t.Errorf("producer-mode pipeline with conflicting %s accepted", name)
		}
	}
}

// TestSchedulerTickZeroAllocs pins the scheduler's steady state to zero
// allocations across *varying* batch fills — the case that forced the
// inference arena to capacity-based reuse: a tick of 3 after a tick of
// 8 must reslice every arena buffer, not reallocate it.
func TestSchedulerTickZeroAllocs(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(1)
	steps := 4
	net := testNet(steps)
	s := newScheduler(SchedulerOptions{
		Steps: steps, MaxBatch: 8, Queue: 16, FairShare: 8,
		Clones: newTestClones(net, 1),
	})
	p := s.NewProducer(8)
	windows := dvs.SplitWindows(longStream(2, 200, 91), 50)

	round := func(fill int) {
		for k := 0; k < fill; k++ {
			e, err := p.takeEntry()
			if err != nil {
				t.Fatal(err)
			}
			dvs.VoxelizeWindowInto(p.frames(e, 16, 16), windows[k%len(windows)].Events, 16, 16, 0, 50)
			p.submit(e, k)
		}
		s.tick()
		if err := p.await(fill); err != nil {
			t.Fatal(err)
		}
	}
	// Warm every pooled entry (two max-fill rounds cycle the whole FIFO
	// pool) and the arena's high-water capacity.
	round(8)
	round(8)

	fills := []int{8, 3, 7, 1, 5}
	i := 0
	if allocs := testing.AllocsPerRun(30, func() {
		round(fills[i%len(fills)])
		i++
	}); allocs != 0 {
		t.Fatalf("steady-state scheduler tick performed %g allocs, want 0", allocs)
	}
}

// BenchmarkSchedulerTick measures one coalesced round — submit fill
// windows, tick, demux — at several fills. CI's zero-alloc gate holds
// it at 0 allocs/op; windows/s against BenchmarkServeSessions shows
// the coalescing win directly.
func BenchmarkSchedulerTick(b *testing.B) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(1)
	steps := 4
	net := testNet(steps)
	windows := dvs.SplitWindows(longStream(2, 200, 91), 50)
	for _, fill := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("fill=%d", fill), func(b *testing.B) {
			s := newScheduler(SchedulerOptions{
				Steps: steps, MaxBatch: 16, Queue: 32, FairShare: 16,
				Clones: newTestClones(net, 1),
			})
			p := s.NewProducer(16)
			round := func(n int) {
				for k := 0; k < n; k++ {
					e, err := p.takeEntry()
					if err != nil {
						b.Fatal(err)
					}
					dvs.VoxelizeWindowInto(p.frames(e, 16, 16), windows[k%len(windows)].Events, 16, 16, 0, 50)
					p.submit(e, k)
				}
				s.tick()
				if err := p.await(n); err != nil {
					b.Fatal(err)
				}
			}
			round(16) // two max-fill rounds touch all 32 pooled entries
			round(16)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				round(fill)
			}
			b.StopTimer()
			b.ReportMetric(float64(fill)*float64(b.N)/b.Elapsed().Seconds(), "windows/s")
		})
	}
}
