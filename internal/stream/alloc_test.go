package stream

import (
	"bytes"
	"testing"

	"repro/internal/dvs"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// The bounded-memory / zero-alloc contract of the pipeline, asserted
// two ways: the per-window hot path (windowed voxelization + batched
// arena inference) performs zero allocations once warm, and a whole
// Run's allocation count is a per-recording constant — it does not grow
// with recording length, so memory stays O(window) however long the
// flow runs.

// longStream concatenates segments time-shifted gesture recordings
// into one continuous flow (the generator normalizes motion to the
// recording length, so a single long recording would not carry more
// events; a concatenation does — event count scales with duration).
func longStream(segments int, segMS float64, seed uint64) *dvs.Stream {
	cfg := dvs.DefaultGestureConfig()
	cfg.W, cfg.H = 16, 16
	cfg.Duration = segMS
	cfg.BlobR = 2
	segs := make([]*dvs.Stream, segments)
	for k := range segs {
		segs[k] = dvs.GenerateGesture(k%dvs.GestureClasses, cfg, rng.New(seed+uint64(k)))
	}
	out, err := dvs.ConcatStreams(segs...)
	if err != nil {
		panic(err)
	}
	return out
}

// TestStreamWindowZeroAllocs pins the steady-state per-window work to
// zero allocations: VoxelizeWindowInto into recycled frames plus
// PredictBatchInto through a warm arena.
func TestStreamWindowZeroAllocs(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(1)
	steps := 5
	net := testNet(steps)
	s := longStream(1, 200, 51)
	windows := dvs.SplitWindows(s, 50)

	frames := make([]*tensor.Tensor, steps)
	for i := range frames {
		frames[i] = tensor.New(2, 16, 16)
	}
	samples := [][]*tensor.Tensor{frames}
	out := make([]int, 1)

	window := func(i int) {
		sub := windows[i%len(windows)]
		dvs.VoxelizeWindowInto(frames, sub.Events, 16, 16, 0, 50)
		net.PredictBatchInto(samples, out)
	}
	window(0) // warm the arena and the frame buffers

	i := 0
	if allocs := testing.AllocsPerRun(50, func() {
		window(i)
		i++
	}); allocs != 0 {
		t.Fatalf("steady-state window performed %g allocs, want 0", allocs)
	}
}

// TestStreamReadChunkZeroAllocs pins the decode side: once a reader is
// warm, draining chunks allocates nothing (the record slab and the
// reorder heap are recycled).
func TestStreamReadChunkZeroAllocs(t *testing.T) {
	s := longStream(10, 400, 52)
	var buf bytes.Buffer
	if err := dvs.WriteAEDAT(&buf, s); err != nil {
		t.Fatal(err)
	}
	sr, err := dvs.NewStreamReaderOptions(bytes.NewReader(buf.Bytes()), dvs.StreamReaderOptions{ReorderWindow: 8})
	if err != nil {
		t.Fatal(err)
	}
	chunk := make([]dvs.Event, 64)
	if _, err := sr.ReadChunk(chunk); err != nil { // warm the heap
		t.Fatal(err)
	}
	reads := 0
	if allocs := testing.AllocsPerRun(20, func() {
		if _, err := sr.ReadChunk(chunk); err != nil {
			t.Fatalf("read %d: %v", reads, err)
		}
		reads++
	}); allocs != 0 {
		t.Fatalf("steady-state ReadChunk performed %g allocs, want 0", allocs)
	}
}

// TestPipelineMemoryBounded is the growth gate: one warm Pipeline runs
// a short and a 4× longer recording (both several times larger than
// the chunk buffer), and the total allocation counts must be EQUAL —
// every per-window buffer is recycled, so only the per-recording setup
// (reader, windower) allocates and memory cannot grow with recording
// length.
func TestPipelineMemoryBounded(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(1)
	steps := 4
	net := testNet(steps)
	shortRec := encode(t, longStream(2, 200, 53))
	longRec := encode(t, longStream(8, 200, 53))
	if len(longRec) < 3*len(shortRec) {
		t.Fatalf("long recording (%dB) not meaningfully longer than short (%dB)", len(longRec), len(shortRec))
	}

	p, err := NewPipeline(net, Options{WindowMS: 50, Steps: steps, Workers: 1, Batch: 2, ChunkEvents: 256})
	if err != nil {
		t.Fatal(err)
	}
	classes := 0
	emit := func(Result) error { classes++; return nil }
	run := func(data []byte) float64 {
		return testing.AllocsPerRun(5, func() {
			if err := p.Run(bytes.NewReader(data), emit); err != nil {
				t.Fatal(err)
			}
		})
	}
	// Warm with the long recording so every slot's event buffer reaches
	// its high-water mark before measuring.
	if err := p.Run(bytes.NewReader(longRec), emit); err != nil {
		t.Fatal(err)
	}

	shortAllocs := run(shortRec)
	longAllocs := run(longRec)
	if longAllocs != shortAllocs {
		t.Fatalf("allocations grew with recording length: %g (8 windows) vs %g (32 windows)",
			shortAllocs, longAllocs)
	}
	if classes == 0 {
		t.Fatal("vacuous: no windows were classified")
	}
}
