package stream

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/defense"
	"repro/internal/dvs"
	"repro/internal/rng"
	"repro/internal/snn"
	"repro/internal/tensor"
)

// testNet builds a small deterministic gesture classifier (untrained
// weights are fine: predictions only need to be deterministic, not
// accurate, for equivalence pinning).
func testNet(steps int) *snn.Network {
	return snn.DVSNet(snn.DefaultConfig(1.0, steps), 16, 16, dvs.GestureClasses, true, rng.New(3), nil)
}

// testStream records one synthetic gesture on the 16×16 sensor.
func testStream(class int, durMS float64, seed uint64) *dvs.Stream {
	cfg := dvs.DefaultGestureConfig()
	cfg.W, cfg.H = 16, 16
	cfg.Duration = durMS
	cfg.BlobR = 2
	return dvs.GenerateGesture(class, cfg, rng.New(seed))
}

// encode serializes a stream to an in-memory AEDAT container.
func encode(t *testing.T, s *dvs.Stream) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := dvs.WriteAEDAT(&buf, s); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// referenceClasses is the in-memory path the ROADMAP names: load the
// whole recording, split it into windows, voxelize each and run one
// batched prediction. SplitWindows is implemented independently of the
// streaming Windower, so agreement pins two implementations against
// each other.
func referenceClasses(net *snn.Network, s *dvs.Stream, windowMS float64, steps int, f defense.Filter) []int {
	subs := dvs.SplitWindows(s, windowMS)
	samples := make([][]*tensor.Tensor, len(subs))
	for i, sub := range subs {
		if f != nil {
			sub = f.Filter(sub)
		}
		samples[i] = sub.Voxelize(steps)
	}
	return net.PredictBatch(samples)
}

// streamClasses runs the streaming pipeline and returns the classes in
// window order, failing on any ordering or index gap.
func streamClasses(t *testing.T, net *snn.Network, data []byte, o Options) []int {
	t.Helper()
	results, err := Predict(bytes.NewReader(data), net, o)
	if err != nil {
		t.Fatalf("stream.Predict: %v", err)
	}
	classes := make([]int, len(results))
	for i, r := range results {
		if r.Window != i {
			t.Fatalf("result %d has window index %d: emission out of order", i, r.Window)
		}
		classes[i] = r.Class
	}
	return classes
}

func assertSameClasses(t *testing.T, want, got []int, ctx string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d windows, want %d", ctx, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: window %d class %d, want %d", ctx, i, got[i], want[i])
		}
	}
}

// TestStreamingMatchesInMemory is the core equivalence suite: the
// streaming pipeline's per-window classes must be bit-identical to the
// in-memory LoadAEDAT+SplitWindows+Voxelize+PredictBatch path at every
// worker count, across chunk and window sizes that do and don't divide
// the event count and the recording duration evenly.
func TestStreamingMatchesInMemory(t *testing.T) {
	defer tensor.SetWorkers(0)
	steps := 5
	net := testNet(steps)
	s := testStream(4, 400, 11)
	data := encode(t, s)

	// Load back through the streaming-codec-backed reader so the
	// reference consumes exactly what the pipeline consumes.
	loaded, err := dvs.ReadAEDAT(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}

	for _, windowMS := range []float64{400, 100, 77, 13.5} {
		tensor.SetWorkers(1)
		want := referenceClasses(net, loaded, windowMS, steps, nil)
		if len(want) != dvs.NumWindows(400, windowMS) {
			t.Fatalf("reference emitted %d windows, want %d", len(want), dvs.NumWindows(400, windowMS))
		}
		for _, cfg := range []struct {
			workers, chunk, batch int
		}{
			{1, 1, 1},                  // event-at-a-time, serial
			{1, 7, 3},                  // chunk not dividing the count
			{2, 4096, 2},               // chunk larger than the recording
			{4, 1, 3},                  // max fan-out, minimal chunks
			{3, len(s.Events) + 99, 4}, // single over-sized chunk
			{2, len(s.Events) / 3, 1},  // batch of one window
		} {
			tensor.SetWorkers(cfg.workers)
			got := streamClasses(t, net, data, Options{
				WindowMS: windowMS, Steps: steps,
				Workers: cfg.workers, ChunkEvents: cfg.chunk, Batch: cfg.batch,
			})
			assertSameClasses(t, want, got, fmt.Sprintf(
				"window=%gms workers=%d chunk=%d batch=%d",
				windowMS, cfg.workers, cfg.chunk, cfg.batch))
		}
	}
}

// TestStreamingWholeRecordingMatchesPredict pins the degenerate single
// window to the classic whole-recording path: WindowMS = Duration must
// reproduce Predict(Voxelize) exactly.
func TestStreamingWholeRecordingMatchesPredict(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(1)
	steps := 6
	net := testNet(steps)
	s := testStream(7, 300, 21)
	want := net.Predict(s.Voxelize(steps))
	got := streamClasses(t, net, encode(t, s), Options{WindowMS: s.Duration, Steps: steps})
	if len(got) != 1 || got[0] != want {
		t.Fatalf("single-window streaming predicted %v, want [%d]", got, want)
	}
}

// TestStreamingEmptyWindows covers silent stretches and a silent tail:
// windows with no events must still be emitted (they are the pipeline's
// heartbeat) and classified identically to the in-memory reference.
func TestStreamingEmptyWindows(t *testing.T) {
	defer tensor.SetWorkers(0)
	steps := 4
	net := testNet(steps)
	s := &dvs.Stream{W: 16, H: 16, Duration: 200}
	// Events only in [0, 20]; everything after is silence.
	for i := 0; i < 30; i++ {
		s.Events = append(s.Events, dvs.Event{X: i % 16, Y: (i * 3) % 16, P: 1 - 2*int8(i%2), T: float64(i) * 20 / 30})
	}
	s.Sort()
	data := encode(t, s)
	tensor.SetWorkers(1)
	want := referenceClasses(net, s, 25, steps, nil)
	for _, workers := range []int{1, 3} {
		tensor.SetWorkers(workers)
		got := streamClasses(t, net, data, Options{WindowMS: 25, Steps: steps, Workers: workers, ChunkEvents: 8})
		if len(got) != 8 {
			t.Fatalf("%d workers: %d windows, want 8", workers, len(got))
		}
		assertSameClasses(t, want, got, "empty windows")
	}
}

// TestStreamingWithFilterMatchesReference runs the pipeline with
// per-window AQF and BAF denoising and pins it to the in-memory
// reference (SplitWindows → Filter → Voxelize → PredictBatch).
func TestStreamingWithFilterMatchesReference(t *testing.T) {
	defer tensor.SetWorkers(0)
	steps := 5
	net := testNet(steps)
	s := testStream(2, 300, 31)
	// Pollute with isolated noise so the filters have work to do.
	r := rng.New(99)
	for k := 0; k < 60; k++ {
		s.Events = append(s.Events, dvs.Event{X: r.Intn(16), Y: r.Intn(16), P: 1, T: r.Float64() * 300})
	}
	s.Sort()
	data := encode(t, s)

	for name, f := range map[string]defense.Filter{
		"aqf": defense.AQFFilter{Params: defense.DefaultAQFParams(0.015)},
		"baf": defense.NewBackgroundActivityFilter(),
	} {
		tensor.SetWorkers(1)
		want := referenceClasses(net, s, 60, steps, f)
		for _, workers := range []int{1, 4} {
			tensor.SetWorkers(workers)
			got := streamClasses(t, net, data, Options{
				WindowMS: 60, Steps: steps, Workers: workers, Batch: 2, Filter: f,
			})
			assertSameClasses(t, want, got, name)
		}
	}
}

// TestStreamingUnsortedInput is the regression test for the ordering
// fix: a recording with mildly out-of-order events (bounded
// displacement) streams correctly through the reader's reorder buffer,
// matching the sorted in-memory reference; without the buffer the
// windower refuses instead of silently misbinning.
func TestStreamingUnsortedInput(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(1)
	steps := 4
	net := testNet(steps)
	sorted := testStream(5, 200, 41)
	want := referenceClasses(net, sorted, 50, steps, nil)

	// Perturb the order with bounded displacement: swap events up to 6
	// positions apart, deterministically.
	shuffled := sorted.Clone()
	r := rng.New(7)
	for k := 0; k < len(shuffled.Events)/2; k++ {
		i := r.Intn(len(shuffled.Events) - 6)
		j := i + 1 + r.Intn(6)
		shuffled.Events[i], shuffled.Events[j] = shuffled.Events[j], shuffled.Events[i]
	}
	data := encode(t, shuffled)

	got := streamClasses(t, net, data, Options{
		WindowMS: 50, Steps: steps, ReorderWindow: 16, ChunkEvents: 5,
	})
	assertSameClasses(t, want, got, "reordered input")

	// Without the reorder buffer, an event that steps back across a
	// window boundary must fail loudly, not misbin.
	boundary := -1
	for i := 1; i < len(sorted.Events); i++ {
		if int(sorted.Events[i].T/50) != int(sorted.Events[i-1].T/50) {
			boundary = i
			break
		}
	}
	if boundary < 0 {
		t.Fatal("no window boundary in the test stream")
	}
	bad := sorted.Clone()
	bad.Events[boundary-1], bad.Events[boundary] = bad.Events[boundary], bad.Events[boundary-1]
	if _, err := Predict(bytes.NewReader(encode(t, bad)), net, Options{WindowMS: 50, Steps: steps}); err == nil {
		t.Fatal("expected an out-of-order error without a reorder buffer")
	}
}

// TestPipelineReuse runs two different recordings through one Pipeline:
// recycled slots, frames and clones must not leak state between runs.
func TestPipelineReuse(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(2)
	steps := 4
	net := testNet(steps)
	p, err := NewPipeline(net, Options{WindowMS: 60, Steps: steps, Workers: 2, Batch: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{61, 62} {
		s := testStream(int(seed%11), 250, seed)
		tensor.SetWorkers(1)
		want := referenceClasses(net, s, 60, steps, nil)
		tensor.SetWorkers(2)
		var got []int
		if err := p.Run(bytes.NewReader(encode(t, s)), func(r Result) error {
			got = append(got, r.Class)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		assertSameClasses(t, want, got, "pipeline reuse")
	}
}

// TestPipelineOptionValidation pins the option errors.
func TestPipelineOptionValidation(t *testing.T) {
	net := testNet(3)
	if _, err := NewPipeline(net, Options{}); err == nil {
		t.Fatal("expected an error for WindowMS = 0")
	}
	if _, err := NewPipeline(net, Options{WindowMS: -5}); err == nil {
		t.Fatal("expected an error for negative WindowMS")
	}
	if _, err := NewPipeline(net, Options{WindowMS: 50, SensorW: 16}); err == nil {
		t.Fatal("expected an error for a half-set sensor declaration")
	}
}

// TestPipelineRejectsSensorMismatch pins the dimension guard: a
// recording whose sensor differs from the pipeline's — by declaration
// or from a previous run — is refused, not silently misclassified
// (the frame layouts could even alias: (2,8,32) and (2,16,16) are the
// same buffer size).
func TestPipelineRejectsSensorMismatch(t *testing.T) {
	net := testNet(3)
	wrong := &dvs.Stream{W: 8, H: 32, Duration: 100,
		Events: []dvs.Event{{X: 2, Y: 3, P: 1, T: 5}}}
	emit := func(Result) error { return nil }

	// Declared dims: refused outright.
	p, err := NewPipeline(net, Options{WindowMS: 50, Steps: 3, SensorW: 16, SensorH: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(bytes.NewReader(encode(t, wrong)), emit); err == nil {
		t.Fatal("declared 16x16 pipeline accepted an 8x32 recording")
	}

	// Adopted dims: the first recording pins them for later runs.
	p, err = NewPipeline(net, Options{WindowMS: 50, Steps: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(bytes.NewReader(encode(t, testStream(1, 100, 71))), emit); err != nil {
		t.Fatal(err)
	}
	if err := p.Run(bytes.NewReader(encode(t, wrong)), emit); err == nil {
		t.Fatal("pipeline pinned to 16x16 accepted an 8x32 recording")
	}
}
