package dvs

import (
	"bytes"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestAEDATRoundTrip(t *testing.T) {
	s := GenerateGesture(4, DefaultGestureConfig(), rng.New(1))
	var buf bytes.Buffer
	if err := WriteAEDAT(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAEDAT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != s.W || got.H != s.H || got.Duration != s.Duration {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Events) != len(s.Events) {
		t.Fatalf("event count %d vs %d", len(got.Events), len(s.Events))
	}
	for i := range s.Events {
		if got.Events[i] != s.Events[i] {
			t.Fatalf("event %d: %+v vs %+v", i, got.Events[i], s.Events[i])
		}
	}
}

func TestAEDATRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		s := &Stream{W: 16, H: 16, Duration: 100}
		n := r.Intn(50)
		for i := 0; i < n; i++ {
			p := int8(1)
			if r.Bernoulli(0.5) {
				p = -1
			}
			s.Events = append(s.Events, Event{X: r.Intn(16), Y: r.Intn(16), P: p, T: r.Float64() * 100})
		}
		var buf bytes.Buffer
		if err := WriteAEDAT(&buf, s); err != nil {
			return false
		}
		got, err := ReadAEDAT(&buf)
		if err != nil || len(got.Events) != len(s.Events) {
			return false
		}
		for i := range s.Events {
			if got.Events[i] != s.Events[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAEDATRejectsGarbage(t *testing.T) {
	if _, err := ReadAEDAT(bytes.NewReader([]byte("not an aedat file at all"))); err == nil {
		t.Fatal("expected magic error")
	}
	// Truncated payload.
	s := &Stream{W: 4, H: 4, Duration: 10, Events: []Event{{X: 1, Y: 1, P: 1, T: 5}}}
	var buf bytes.Buffer
	if err := WriteAEDAT(&buf, s); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-4]
	if _, err := ReadAEDAT(bytes.NewReader(trunc)); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestAEDATFileHelpers(t *testing.T) {
	s := GenerateGesture(1, DefaultGestureConfig(), rng.New(2))
	path := filepath.Join(t.TempDir(), "g.aedat")
	if err := s.SaveAEDAT(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadAEDAT(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != len(s.Events) {
		t.Fatal("file round-trip lost events")
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}
