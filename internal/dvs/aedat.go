package dvs

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Minimal binary container for event streams, modelled on the AEDAT
// polarity-event format used by DVS cameras (a simplified single-stream
// variant: fixed header, then one 16-byte record per event). It lets
// recordings and attacked/filtered streams be stored and exchanged.
//
// Layout (little endian):
//
//	magic   [8]byte  "AXSNNEV1"
//	width   uint32
//	height  uint32
//	duration float64 (ms)
//	count   uint64
//	events  count × {x uint16, y uint16, polarity int16, pad uint16, t float64}

var aedatMagic = [8]byte{'A', 'X', 'S', 'N', 'N', 'E', 'V', '1'}

// WriteAEDAT serializes the stream to w.
func WriteAEDAT(w io.Writer, s *Stream) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(aedatMagic[:]); err != nil {
		return err
	}
	hdr := struct {
		W, H     uint32
		Duration float64
		Count    uint64
	}{uint32(s.W), uint32(s.H), s.Duration, uint64(len(s.Events))}
	if err := binary.Write(bw, binary.LittleEndian, &hdr); err != nil {
		return err
	}
	for _, e := range s.Events {
		rec := struct {
			X, Y uint16
			P    int16
			Pad  uint16
			T    float64
		}{uint16(e.X), uint16(e.Y), int16(e.P), 0, e.T}
		if err := binary.Write(bw, binary.LittleEndian, &rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadAEDAT deserializes a stream written by WriteAEDAT.
func ReadAEDAT(r io.Reader) (*Stream, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("dvs: reading magic: %w", err)
	}
	if magic != aedatMagic {
		return nil, fmt.Errorf("dvs: bad magic %q", magic)
	}
	var hdr struct {
		W, H     uint32
		Duration float64
		Count    uint64
	}
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("dvs: reading header: %w", err)
	}
	if hdr.W == 0 || hdr.H == 0 || hdr.W > 1<<14 || hdr.H > 1<<14 {
		return nil, fmt.Errorf("dvs: implausible sensor size %dx%d", hdr.W, hdr.H)
	}
	const maxEvents = 100 << 20 / 16
	if hdr.Count > maxEvents {
		return nil, fmt.Errorf("dvs: event count %d exceeds limit", hdr.Count)
	}
	s := &Stream{W: int(hdr.W), H: int(hdr.H), Duration: hdr.Duration,
		Events: make([]Event, hdr.Count)}
	for i := range s.Events {
		var rec struct {
			X, Y uint16
			P    int16
			Pad  uint16
			T    float64
		}
		if err := binary.Read(br, binary.LittleEndian, &rec); err != nil {
			return nil, fmt.Errorf("dvs: reading event %d: %w", i, err)
		}
		s.Events[i] = Event{X: int(rec.X), Y: int(rec.Y), P: int8(rec.P), T: rec.T}
	}
	// A parsed stream must be internally consistent before it reaches
	// the batch pipelines: coordinates on the declared sensor, polarity
	// ±1, finite in-window timestamps. Hostile or corrupt files fail
	// here instead of panicking a voxelization worker later.
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("dvs: invalid stream: %w", err)
	}
	return s, nil
}

// SaveAEDAT writes the stream to path.
func (s *Stream) SaveAEDAT(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return WriteAEDAT(f, s)
}

// LoadAEDAT reads a stream from path.
func LoadAEDAT(path string) (*Stream, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadAEDAT(f)
}
