package dvs

import (
	"fmt"
	"io"
	"os"
)

// Minimal binary container for event streams, modelled on the AEDAT
// polarity-event format used by DVS cameras (a simplified single-stream
// variant: fixed header, then one 16-byte record per event). It lets
// recordings and attacked/filtered streams be stored and exchanged.
//
// Layout (little endian):
//
//	magic   [8]byte  "AXSNNEV1"
//	width   uint32
//	height  uint32
//	duration float64 (ms)
//	count   uint64
//	events  count × {x uint16, y uint16, polarity int16, pad uint16, t float64}
//
// The codec itself lives in stream_io.go (StreamReader/StreamWriter);
// the whole-stream helpers here are thin adapters over it, so the
// in-memory and streaming paths share one implementation of the format
// and of its validation rules.

var aedatMagic = [8]byte{'A', 'X', 'S', 'N', 'N', 'E', 'V', '1'}

// WriteAEDAT serializes the stream to w. Events are validated against
// the declared sensor and window as they are encoded.
func WriteAEDAT(w io.Writer, s *Stream) error {
	sw, err := NewStreamWriterCount(w, s.W, s.H, s.Duration, len(s.Events))
	if err != nil {
		return err
	}
	if err := sw.WriteEvents(s.Events); err != nil {
		return err
	}
	return sw.Close()
}

// ReadAEDAT deserializes a stream written by WriteAEDAT. A parsed
// stream is internally consistent before it reaches the batch
// pipelines: coordinates on the declared sensor, polarity ±1, finite
// in-window timestamps (StreamReader validates every record). Hostile
// or corrupt files fail here instead of panicking a voxelization
// worker later.
func ReadAEDAT(r io.Reader) (*Stream, error) {
	sr, err := NewStreamReader(r)
	if err != nil {
		return nil, err
	}
	// The whole-file loader materializes count events up front, so it —
	// unlike the streaming reader — must cap what a hostile header can
	// make it allocate. Recordings past the cap stream chunk by chunk
	// instead.
	if sr.Count() > maxStreamEvents {
		return nil, fmt.Errorf("dvs: event count %d exceeds limit", sr.Count())
	}
	s := &Stream{W: sr.W(), H: sr.H(), Duration: sr.Duration(),
		Events: make([]Event, sr.Count())}
	for off := 0; off < len(s.Events); {
		n, err := sr.ReadChunk(s.Events[off:])
		off += n
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

// SaveAEDAT writes the stream to path.
func (s *Stream) SaveAEDAT(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return WriteAEDAT(f, s)
}

// LoadAEDAT reads a stream from path.
func LoadAEDAT(path string) (*Stream, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadAEDAT(f)
}
