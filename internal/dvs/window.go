package dvs

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Windowing: the streaming pipeline (internal/stream) does not classify
// whole recordings — it slices the event flow into consecutive
// fixed-duration windows and classifies each one, so an unbounded
// recording produces a prediction every WindowMS with O(window) state.
//
// Window k covers [k·WindowMS, (k+1)·WindowMS); membership is decided
// by comparisons against float64(k)·WindowMS in every implementation
// here (never by division alone), so the incremental Windower and the
// in-memory SplitWindows reference agree bit-for-bit at the float
// boundaries. Events at or past the end of the recording window clamp
// into the last window, mirroring Voxelize's last-bin clamp.

// NumWindows returns how many fixed-duration windows cover a recording:
// ceil(duration/windowMS), at least 1.
func NumWindows(duration, windowMS float64) int {
	if windowMS <= 0 {
		return 1
	}
	n := int(math.Ceil(duration / windowMS))
	if n < 1 {
		n = 1
	}
	return n
}

// VoxelizeWindowInto bins the events of one window into caller-owned
// frames (shape (2, h, w) each, zeroed first): channel 0 positive
// polarity, channel 1 negative, values clamped to {0,1} — exactly
// Stream.Voxelize over a stream starting at `start` with duration
// windowMS. Off-sensor events are skipped (defense in depth, mirroring
// Voxelize); events before `start` or past the window clamp into the
// first/last bin.
//
//axsnn:hotpath
func VoxelizeWindowInto(frames []*tensor.Tensor, events []Event, w, h int, start, windowMS float64) {
	for i := range frames {
		frames[i].Zero()
	}
	steps := len(frames)
	if windowMS <= 0 || steps == 0 {
		return
	}
	binW := windowMS / float64(steps)
	for _, e := range events {
		if e.X < 0 || e.X >= w || e.Y < 0 || e.Y >= h {
			continue
		}
		rel := e.T - start
		b := int(rel / binW)
		if b >= steps {
			b = steps - 1
		}
		if b < 0 {
			b = 0
		}
		ch := 0
		if e.P < 0 {
			ch = 1
		}
		frames[b].Data[(ch*h+e.Y)*w+e.X] = 1
	}
}

// Windower slices a time-ordered event flow into consecutive
// fixed-duration windows without ever holding more than one window of
// events. Offer events in timestamp order; when Offer reports the
// event belongs to a later window, Pop the current window (possibly
// empty — silent stretches still produce predictions) and re-Offer.
// After input ends, keep Popping until Done: the tail of the recording
// window is emitted as (possibly empty) windows too, so a recording
// always yields exactly NumWindows windows.
type Windower struct {
	// WindowMS is the window duration in milliseconds.
	WindowMS float64
	// Num is the total number of windows (from the recording duration);
	// events at or past the end clamp into the last window.
	Num int

	cur int
	buf []Event
}

// NewWindower builds a windower for a recording of the given duration.
func NewWindower(windowMS, duration float64) (*Windower, error) {
	if windowMS <= 0 || math.IsNaN(windowMS) || math.IsInf(windowMS, 0) {
		return nil, fmt.Errorf("dvs: invalid window duration %vms", windowMS)
	}
	if math.IsNaN(duration) || math.IsInf(duration, 0) || duration < 0 {
		return nil, fmt.Errorf("dvs: invalid duration %v", duration)
	}
	return &Windower{WindowMS: windowMS, Num: NumWindows(duration, windowMS)}, nil
}

// start returns window k's opening timestamp.
func (w *Windower) start(k int) float64 { return float64(k) * w.WindowMS }

// Offer places e in the current window, or reports false when e belongs
// to a later window — Pop the current window first, then re-Offer. An
// event earlier than the current window is an error: the flow is out of
// order beyond what the reader's reorder buffer absorbed, and silently
// misbinning it would desynchronize the windowed predictions. (This is
// the ordering enforcement Voxelize alone never had: the windower
// refuses to proceed instead of producing wrong windows.)
func (w *Windower) Offer(e Event) (bool, error) {
	if e.T < w.start(w.cur) {
		return false, fmt.Errorf("dvs: event at %gms before window %d start (%gms): input out of order beyond the reorder window",
			e.T, w.cur, w.start(w.cur))
	}
	if w.cur+1 < w.Num && e.T >= w.start(w.cur+1) {
		return false, nil
	}
	w.buf = append(w.buf, e)
	return true, nil
}

// Pop emits the current (possibly empty) window and advances to the
// next. The returned slice is the windower's internal buffer, valid
// only until the next Offer; callers that keep a window copy it.
func (w *Windower) Pop() (idx int, start float64, events []Event) {
	idx, start, events = w.cur, w.start(w.cur), w.buf
	w.cur++
	w.buf = w.buf[:0]
	return idx, start, events
}

// Done reports whether every window has been popped.
func (w *Windower) Done() bool { return w.cur >= w.Num }

// SplitWindows slices a time-sorted in-memory stream into NumWindows
// standalone sub-streams of duration windowMS with window-rebased
// timestamps — the in-memory reference of the streaming pipeline's
// windowing, implemented independently of Windower so the equivalence
// tests pin two implementations against each other. Voxelizing
// sub-stream k reproduces VoxelizeWindowInto over window k bit-for-bit
// (same rebasing subtraction, same bin arithmetic).
func SplitWindows(s *Stream, windowMS float64) []*Stream {
	num := NumWindows(s.Duration, windowMS)
	out := make([]*Stream, num)
	for k := range out {
		out[k] = &Stream{W: s.W, H: s.H, Duration: windowMS}
	}
	for _, e := range s.Events {
		k := 0
		if windowMS > 0 {
			k = int(e.T / windowMS)
		}
		// Float division can land one off at an exact boundary; settle
		// membership with the same float64(k)*windowMS comparisons the
		// Windower uses.
		for k+1 < num && e.T >= float64(k+1)*windowMS {
			k++
		}
		for k > 0 && e.T < float64(k)*windowMS {
			k--
		}
		if k >= num {
			k = num - 1
		}
		e.T -= float64(k) * windowMS
		out[k].Events = append(out[k].Events, e)
	}
	return out
}
