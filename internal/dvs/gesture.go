package dvs

import (
	"math"

	"repro/internal/rng"
)

// The synthetic gesture generator substitutes for the DVS128 Gesture
// recordings (DESIGN.md substitution #2). Each of the 11 classes is a
// parametric moving emitter; as the emitter moves, its leading edge fires
// +1 events and its trailing edge fires -1 events, which is how a real DVS
// responds to a moving bright object. Background sensor noise is Poisson.
//
// What matters for the paper's experiments is preserved: gesture events
// are spatio-temporally *correlated* (dense trajectories), while attack
// events are not — the contrast AQF exploits — and the classes are
// separable by their motion signature, so an SNN can learn them.

// GestureClasses matches DVS128 Gesture's 11 classes.
const GestureClasses = 11

// GestureNames gives a readable name per class index.
var GestureNames = [GestureClasses]string{
	"hand_clap",
	"rh_wave",
	"lh_wave",
	"rh_clockwise",
	"rh_counter_clockwise",
	"lh_clockwise",
	"lh_counter_clockwise",
	"arm_roll",
	"air_drums",
	"air_guitar",
	"other",
}

// GestureConfig controls the synthetic recorder.
type GestureConfig struct {
	W, H      int     // sensor resolution
	Duration  float64 // recording length in ms
	StepMS    float64 // simulation step in ms
	BlobR     float64 // emitter radius in pixels
	NoiseRate float64 // mean background-noise events per ms over the sensor
	SpeedJit  float64 // relative speed jitter between samples
}

// DefaultGestureConfig returns the settings used by the harness: a 32×32
// sensor (scaled from 128×128) over a 1.6 s window.
func DefaultGestureConfig() GestureConfig {
	return GestureConfig{
		W: 32, H: 32,
		Duration:  1600,
		StepMS:    4,
		BlobR:     2.6,
		NoiseRate: 0.08,
		SpeedJit:  0.25,
	}
}

// emitterPos returns the emitter centre for class at phase u ∈ [0,1),
// in unit coordinates. Two-emitter classes return both positions; single
// emitter classes return ok2 = false.
func emitterPos(class int, u float64) (x1, y1 float64, x2, y2 float64, ok2 bool) {
	twoPi := 2 * math.Pi
	switch class {
	case 0: // hand_clap: two blobs oscillate toward/away horizontally
		d := 0.18 + 0.14*math.Abs(math.Sin(twoPi*u*2))
		return 0.5 - d, 0.55, 0.5 + d, 0.55, true
	case 1: // rh_wave: right-side bar swings vertically
		return 0.72, 0.5 + 0.3*math.Sin(twoPi*u*2), 0, 0, false
	case 2: // lh_wave
		return 0.28, 0.5 + 0.3*math.Sin(twoPi*u*2), 0, 0, false
	case 3: // rh_clockwise: right-side orbit, clockwise
		return 0.68 + 0.16*math.Cos(twoPi*u*1.5), 0.5 + 0.16*math.Sin(twoPi*u*1.5), 0, 0, false
	case 4: // rh_counter_clockwise
		return 0.68 + 0.16*math.Cos(-twoPi*u*1.5), 0.5 + 0.16*math.Sin(-twoPi*u*1.5), 0, 0, false
	case 5: // lh_clockwise
		return 0.32 + 0.16*math.Cos(twoPi*u*1.5), 0.5 + 0.16*math.Sin(twoPi*u*1.5), 0, 0, false
	case 6: // lh_counter_clockwise
		return 0.32 + 0.16*math.Cos(-twoPi*u*1.5), 0.5 + 0.16*math.Sin(-twoPi*u*1.5), 0, 0, false
	case 7: // arm_roll: wide full-frame orbit
		return 0.5 + 0.32*math.Cos(twoPi*u), 0.5 + 0.32*math.Sin(twoPi*u), 0, 0, false
	case 8: // air_drums: two blobs strike vertically in antiphase
		return 0.35, 0.35 + 0.3*math.Abs(math.Sin(twoPi*u*3)),
			0.65, 0.35 + 0.3*math.Abs(math.Cos(twoPi*u*3)), true
	case 9: // air_guitar: diagonal strum
		s := 0.5 + 0.5*math.Sin(twoPi*u*2.5)
		return 0.3 + 0.4*s, 0.7 - 0.35*s, 0, 0, false
	default: // other: slow figure-eight drift
		return 0.5 + 0.25*math.Sin(twoPi*u), 0.5 + 0.25*math.Sin(2*twoPi*u), 0, 0, false
	}
}

// GenerateGesture records one synthetic gesture of the given class.
func GenerateGesture(class int, cfg GestureConfig, r *rng.RNG) *Stream {
	s := &Stream{W: cfg.W, H: cfg.H, Duration: cfg.Duration}
	speed := 1 + (2*r.Float64()-1)*cfg.SpeedJit
	phase := r.Float64()

	prevOn := make([]bool, cfg.W*cfg.H)
	curOn := make([]bool, cfg.W*cfg.H)

	markBlob := func(on []bool, cx, cy float64) {
		rad := cfg.BlobR
		minX := int(math.Floor(cx*float64(cfg.W) - rad - 1))
		maxX := int(math.Ceil(cx*float64(cfg.W) + rad + 1))
		minY := int(math.Floor(cy*float64(cfg.H) - rad - 1))
		maxY := int(math.Ceil(cy*float64(cfg.H) + rad + 1))
		for y := max(0, minY); y <= min(cfg.H-1, maxY); y++ {
			for x := max(0, minX); x <= min(cfg.W-1, maxX); x++ {
				dx := float64(x) + 0.5 - cx*float64(cfg.W)
				dy := float64(y) + 0.5 - cy*float64(cfg.H)
				if dx*dx+dy*dy <= rad*rad {
					on[y*cfg.W+x] = true
				}
			}
		}
	}

	for t := 0.0; t < cfg.Duration; t += cfg.StepMS {
		u := math.Mod(phase+speed*t/cfg.Duration, 1)
		for i := range curOn {
			curOn[i] = false
		}
		x1, y1, x2, y2, two := emitterPos(class, u)
		markBlob(curOn, x1, y1)
		if two {
			markBlob(curOn, x2, y2)
		}
		// Edge events: pixels that turned on fire +1, turned off fire -1.
		for i := range curOn {
			if curOn[i] == prevOn[i] {
				continue
			}
			// A real sensor is slightly lossy; drop ~15% of edge events.
			if r.Float64() < 0.15 {
				continue
			}
			p := int8(1)
			if !curOn[i] {
				p = -1
			}
			s.Events = append(s.Events, Event{
				X: i % cfg.W, Y: i / cfg.W, P: p,
				T: t + r.Float64()*cfg.StepMS,
			})
		}
		prevOn, curOn = curOn, prevOn

		// Background noise: spatially and temporally uncorrelated.
		n := r.Poisson(cfg.NoiseRate * cfg.StepMS)
		for k := 0; k < n; k++ {
			p := int8(1)
			if r.Bernoulli(0.5) {
				p = -1
			}
			s.Events = append(s.Events, Event{
				X: r.Intn(cfg.W), Y: r.Intn(cfg.H), P: p,
				T: t + r.Float64()*cfg.StepMS,
			})
		}
	}
	s.Sort()
	// Clamp any timestamp jitter past the window end.
	for i := range s.Events {
		if s.Events[i].T > s.Duration {
			s.Events[i].T = s.Duration
		}
	}
	return s
}

// GenerateGestureSet produces n labelled recordings with a balanced class
// distribution, deterministically from seed.
func GenerateGestureSet(n int, cfg GestureConfig, seed uint64) *Set {
	r := rng.New(seed)
	set := &Set{Classes: GestureClasses, W: cfg.W, H: cfg.H, Samples: make([]Sample, n)}
	for i := 0; i < n; i++ {
		label := i % GestureClasses
		set.Samples[i] = Sample{Stream: GenerateGesture(label, cfg, r), Label: label}
	}
	r.Shuffle(n, func(i, j int) {
		set.Samples[i], set.Samples[j] = set.Samples[j], set.Samples[i]
	})
	return set
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
