package dvs

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestNumWindows(t *testing.T) {
	for _, c := range []struct {
		dur, win float64
		want     int
	}{
		{400, 100, 4}, {400, 77, 6}, {400, 400, 1}, {400, 1000, 1},
		{0, 50, 1}, {10, 0, 1}, {100.5, 25, 5},
	} {
		if got := NumWindows(c.dur, c.win); got != c.want {
			t.Fatalf("NumWindows(%g, %g) = %d, want %d", c.dur, c.win, got, c.want)
		}
	}
}

// TestWindowerSplitWindowsAgree pins the two window-assignment
// implementations — the incremental Windower and the in-memory
// SplitWindows — against each other on random streams, including
// boundary-exact timestamps.
func TestWindowerSplitWindowsAgree(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		s := &Stream{W: 8, H: 8, Duration: 120}
		n := r.Intn(300)
		for i := 0; i < n; i++ {
			tm := r.Float64() * 120
			if r.Bernoulli(0.2) {
				// Land exactly on a window boundary (multiples of 30).
				tm = float64(r.Intn(5)) * 30
			}
			s.Events = append(s.Events, Event{X: r.Intn(8), Y: r.Intn(8), P: 1, T: tm})
		}
		s.Sort()

		want := SplitWindows(s, 30)
		w, err := NewWindower(30, s.Duration)
		if err != nil {
			return false
		}
		var got [][]Event
		for _, e := range s.Events {
			for {
				ok, err := w.Offer(e)
				if err != nil {
					return false
				}
				if ok {
					break
				}
				_, _, evs := w.Pop()
				got = append(got, append([]Event(nil), evs...))
			}
		}
		for !w.Done() {
			_, _, evs := w.Pop()
			got = append(got, append([]Event(nil), evs...))
		}

		if len(got) != len(want) {
			return false
		}
		for k := range want {
			if len(got[k]) != len(want[k].Events) {
				return false
			}
			start := float64(k) * 30
			for i, e := range want[k].Events {
				// SplitWindows rebases; the windower keeps absolute
				// times. Compare after the same subtraction.
				g := got[k][i]
				g.T -= start
				if g != e {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestWindowerRejectsBackwardEvents pins the ordering enforcement: an
// event earlier than the current window errors instead of misbinning.
func TestWindowerRejectsBackwardEvents(t *testing.T) {
	w, err := NewWindower(50, 200)
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := w.Offer(Event{X: 0, Y: 0, P: 1, T: 120}); ok || err != nil {
		t.Fatalf("event two windows ahead: ok=%v err=%v, want deferral", ok, err)
	}
	w.Pop() // window 0
	w.Pop() // window 1
	if ok, err := w.Offer(Event{X: 0, Y: 0, P: 1, T: 120}); !ok || err != nil {
		t.Fatalf("re-offer after draining: ok=%v err=%v", ok, err)
	}
	if _, err := w.Offer(Event{X: 0, Y: 0, P: 1, T: 99}); err == nil {
		t.Fatal("event before the current window must error")
	}
}

// TestVoxelizeIntoMatchesVoxelize pins the Into form bit-for-bit to
// the allocating form, including the degenerate zero-duration case.
func TestVoxelizeIntoMatchesVoxelize(t *testing.T) {
	s := GenerateGesture(2, DefaultGestureConfig(), rng.New(3))
	for _, steps := range []int{1, 7, 12} {
		want := s.Voxelize(steps)
		got := s.Voxelize(steps) // correctly-shaped buffers to overwrite
		for i := range got {
			for j := range got[i].Data {
				got[i].Data[j] = 99 // must be fully overwritten/zeroed
			}
		}
		s.VoxelizeInto(got)
		for i := range want {
			for j := range want[i].Data {
				if want[i].Data[j] != got[i].Data[j] {
					t.Fatalf("steps=%d frame %d voxel %d: %v vs %v", steps, i, j, got[i].Data[j], want[i].Data[j])
				}
			}
		}
	}
	empty := &Stream{W: 4, H: 4, Duration: 0, Events: []Event{{X: 1, Y: 1, P: 1, T: 0}}}
	frames := empty.Voxelize(3)
	for _, f := range frames {
		for _, v := range f.Data {
			if v != 0 {
				t.Fatal("zero-duration stream must voxelize to zero frames")
			}
		}
	}
}
