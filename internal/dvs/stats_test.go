package dvs

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestComputeStats(t *testing.T) {
	s := &Stream{W: 4, H: 4, Duration: 2000, Events: []Event{
		{X: 0, Y: 0, P: 1, T: 10},
		{X: 0, Y: 0, P: 1, T: 20},
		{X: 1, Y: 1, P: -1, T: 30},
		{X: 2, Y: 3, P: 1, T: 40},
	}}
	st := s.ComputeStats()
	if st.Events != 4 {
		t.Fatalf("events %d", st.Events)
	}
	if st.PositiveFrac != 0.75 {
		t.Fatalf("positive frac %v", st.PositiveFrac)
	}
	if st.ActivePixels != 3 || st.MaxPixelCount != 2 {
		t.Fatalf("pixels %d max %d", st.ActivePixels, st.MaxPixelCount)
	}
	if math.Abs(st.MeanRateHz-2) > 1e-9 { // 4 events / 2 s
		t.Fatalf("rate %v Hz", st.MeanRateHz)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	s := &Stream{W: 2, H: 2, Duration: 100}
	st := s.ComputeStats()
	if st.Events != 0 || st.ActivePixels != 0 || st.MeanRateHz != 0 {
		t.Fatalf("empty stats wrong: %+v", st)
	}
}

func TestRateOverTime(t *testing.T) {
	s := &Stream{W: 2, H: 2, Duration: 100, Events: []Event{
		{X: 0, Y: 0, P: 1, T: 5},
		{X: 0, Y: 0, P: 1, T: 6},
		{X: 0, Y: 0, P: 1, T: 55},
		{X: 0, Y: 0, P: 1, T: 100}, // clamps into last bin
	}}
	r := s.RateOverTime(2)
	if r[0] != 2 || r[1] != 2 {
		t.Fatalf("rate profile %v", r)
	}
	if got := s.RateOverTime(0); len(got) != 0 {
		t.Fatal("bins=0 must yield empty profile")
	}
}

func TestGestureStatsPlausible(t *testing.T) {
	s := GenerateGesture(7, DefaultGestureConfig(), rng.New(1))
	st := s.ComputeStats()
	if st.PositiveFrac < 0.3 || st.PositiveFrac > 0.7 {
		t.Fatalf("gesture polarity balance off: %v", st.PositiveFrac)
	}
	if st.MeanRateHz < 100 {
		t.Fatalf("gesture rate implausibly low: %v Hz", st.MeanRateHz)
	}
	profile := s.RateOverTime(10)
	sum := 0.0
	for _, v := range profile {
		sum += v
	}
	if int(sum) != st.Events {
		t.Fatalf("profile mass %v != events %d", sum, st.Events)
	}
}
