package dvs

// Stream statistics used by the analysis tooling, the examples and the
// AQF diagnostics.

// Stats summarizes an event stream.
type Stats struct {
	Events        int
	PositiveFrac  float64 // fraction of +1 events
	MeanRateHz    float64 // events per second over the recording
	ActivePixels  int     // pixels with at least one event
	MaxPixelCount int     // busiest pixel's event count
}

// ComputeStats gathers summary statistics for the stream.
func (s *Stream) ComputeStats() Stats {
	st := Stats{Events: len(s.Events)}
	if len(s.Events) == 0 {
		return st
	}
	counts := make([]int, s.W*s.H)
	pos := 0
	for _, e := range s.Events {
		if e.P > 0 {
			pos++
		}
		counts[e.Y*s.W+e.X]++
	}
	st.PositiveFrac = float64(pos) / float64(len(s.Events))
	for _, c := range counts {
		if c > 0 {
			st.ActivePixels++
		}
		if c > st.MaxPixelCount {
			st.MaxPixelCount = c
		}
	}
	if s.Duration > 0 {
		st.MeanRateHz = float64(len(s.Events)) / (s.Duration / 1000)
	}
	return st
}

// RateOverTime returns events-per-bin over `bins` equal time windows,
// the temporal activity profile (used by the raster views and by
// hot-pixel diagnostics).
func (s *Stream) RateOverTime(bins int) []float64 {
	out := make([]float64, bins)
	if s.Duration <= 0 || bins <= 0 {
		return out
	}
	binW := s.Duration / float64(bins)
	for _, e := range s.Events {
		b := int(e.T / binW)
		if b >= bins {
			b = bins - 1
		}
		if b < 0 {
			b = 0
		}
		out[b]++
	}
	return out
}
