package dvs

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestGenerateGestureValid(t *testing.T) {
	cfg := DefaultGestureConfig()
	r := rng.New(1)
	for class := 0; class < GestureClasses; class++ {
		s := GenerateGesture(class, cfg, r)
		if err := s.Validate(); err != nil {
			t.Fatalf("class %d (%s): %v", class, GestureNames[class], err)
		}
		if len(s.Events) < 100 {
			t.Fatalf("class %d produced only %d events", class, len(s.Events))
		}
	}
}

func TestGenerateGestureSorted(t *testing.T) {
	s := GenerateGesture(3, DefaultGestureConfig(), rng.New(2))
	for i := 1; i < len(s.Events); i++ {
		if s.Events[i].T < s.Events[i-1].T {
			t.Fatalf("events out of order at %d", i)
		}
	}
}

func TestGestureSetBalancedAndDeterministic(t *testing.T) {
	cfg := DefaultGestureConfig()
	cfg.Duration = 400 // keep the test fast
	a := GenerateGestureSet(22, cfg, 5)
	b := GenerateGestureSet(22, cfg, 5)
	counts := make([]int, GestureClasses)
	for i := range a.Samples {
		counts[a.Samples[i].Label]++
		if a.Samples[i].Label != b.Samples[i].Label {
			t.Fatal("labels differ across identical seeds")
		}
		if len(a.Samples[i].Stream.Events) != len(b.Samples[i].Stream.Events) {
			t.Fatal("event counts differ across identical seeds")
		}
	}
	for c, n := range counts {
		if n != 2 {
			t.Fatalf("class %d has %d samples, want 2", c, n)
		}
	}
}

func TestVoxelizeShapeAndBinning(t *testing.T) {
	s := &Stream{W: 4, H: 4, Duration: 100, Events: []Event{
		{X: 1, Y: 2, P: 1, T: 10},   // bin 0 of 4
		{X: 3, Y: 0, P: -1, T: 60},  // bin 2
		{X: 0, Y: 0, P: 1, T: 100},  // clamped into last bin
		{X: 2, Y: 2, P: 1, T: 99.9}, // bin 3
	}}
	frames := s.Voxelize(4)
	if len(frames) != 4 {
		t.Fatalf("got %d frames", len(frames))
	}
	if frames[0].At(0, 2, 1) != 1 {
		t.Fatal("positive event missing from bin 0")
	}
	if frames[2].At(1, 0, 3) != 1 {
		t.Fatal("negative event missing from channel 1, bin 2")
	}
	if frames[3].At(0, 0, 0) != 1 || frames[3].At(0, 2, 2) != 1 {
		t.Fatal("end-of-window events not clamped into the last bin")
	}
	// Values stay in [0,1] even with duplicates.
	s.Events = append(s.Events, Event{X: 1, Y: 2, P: 1, T: 11})
	frames = s.Voxelize(4)
	if frames[0].At(0, 2, 1) != 1 {
		t.Fatal("duplicate events must clamp to 1")
	}
}

func TestVoxelizeEmptyAndZeroDuration(t *testing.T) {
	s := &Stream{W: 2, H: 2, Duration: 0}
	frames := s.Voxelize(3)
	for _, f := range frames {
		if f.Sum() != 0 {
			t.Fatal("zero-duration stream must voxelize to empty frames")
		}
	}
}

func TestEventCountGrid(t *testing.T) {
	s := &Stream{W: 3, H: 2, Duration: 10, Events: []Event{
		{X: 0, Y: 0, P: 1, T: 1}, {X: 0, Y: 0, P: -1, T: 2}, {X: 2, Y: 1, P: 1, T: 3},
	}}
	g := s.EventCountGrid()
	if g.At(0, 0) != 2 || g.At(1, 2) != 1 {
		t.Fatalf("counts wrong: %v", g.Data)
	}
}

func TestStreamCloneIndependent(t *testing.T) {
	s := GenerateGesture(0, DefaultGestureConfig(), rng.New(3))
	c := s.Clone()
	c.Events[0].X = 31
	c.Events[0].T = 0
	if s.Events[0].X == 31 && s.Events[0].T == 0 {
		t.Fatal("clone aliases events")
	}
}

func TestSetCloneAndSubset(t *testing.T) {
	cfg := DefaultGestureConfig()
	cfg.Duration = 200
	set := GenerateGestureSet(11, cfg, 7)
	sub := set.Subset(3)
	if sub.Len() != 3 || set.Subset(100).Len() != 11 {
		t.Fatal("subset sizing broken")
	}
	cl := set.Clone()
	cl.Samples[0].Stream.Events[0].X = 0
	cl.Samples[0].Stream.Events[0].Y = 0
	cl.Samples[0].Stream.Events = cl.Samples[0].Stream.Events[:1]
	if len(set.Samples[0].Stream.Events) == 1 {
		t.Fatal("clone aliases streams")
	}
}

func TestValidateCatchesOffSensor(t *testing.T) {
	s := &Stream{W: 4, H: 4, Duration: 10, Events: []Event{{X: 4, Y: 0, P: 1, T: 1}}}
	if s.Validate() == nil {
		t.Fatal("expected off-sensor error")
	}
	s = &Stream{W: 4, H: 4, Duration: 10, Events: []Event{{X: 0, Y: 0, P: 0, T: 1}}}
	if s.Validate() == nil {
		t.Fatal("expected polarity error")
	}
	s = &Stream{W: 4, H: 4, Duration: 10, Events: []Event{{X: 0, Y: 0, P: 1, T: 11}}}
	if s.Validate() == nil {
		t.Fatal("expected time-window error")
	}
}

// Gesture events must be spatio-temporally correlated (a dense moving
// trajectory), in contrast with uniform noise: the fraction of events that
// have a nearby-in-space-and-time neighbour should be much higher than in
// a shuffled control. This is the property AQF exploits.
func TestGestureEventsCorrelated(t *testing.T) {
	cfg := DefaultGestureConfig()
	cfg.Duration = 400
	cfg.NoiseRate = 0 // look at signal events only
	s := GenerateGesture(7, cfg, rng.New(11))

	correlated := func(events []Event) float64 {
		n := 0
		for i, e := range events {
			found := false
			for j := max(0, i-40); j < min(len(events), i+40); j++ {
				if j == i {
					continue
				}
				o := events[j]
				if math.Abs(o.T-e.T) <= 20 && abs(o.X-e.X) <= 2 && abs(o.Y-e.Y) <= 2 {
					found = true
					break
				}
			}
			if found {
				n++
			}
		}
		return float64(n) / float64(len(events))
	}

	sig := correlated(s.Events)

	// Control: same number of events, uniformly random.
	r := rng.New(12)
	ctl := make([]Event, len(s.Events))
	for i := range ctl {
		ctl[i] = Event{X: r.Intn(cfg.W), Y: r.Intn(cfg.H), P: 1, T: r.Float64() * cfg.Duration}
	}
	// sort control by time
	ctlStream := &Stream{W: cfg.W, H: cfg.H, Duration: cfg.Duration, Events: ctl}
	ctlStream.Sort()
	noise := correlated(ctlStream.Events)

	if sig < noise+0.2 {
		t.Fatalf("gesture correlation %.2f not clearly above noise %.2f", sig, noise)
	}
}

// Different gesture classes must differ in their spatial event footprint,
// otherwise the SNN has nothing to learn. Compare mean column of activity
// for left- vs right-hand waves.
func TestGestureClassesSpatiallyDistinct(t *testing.T) {
	cfg := DefaultGestureConfig()
	cfg.Duration = 400
	r := rng.New(13)
	meanX := func(class int) float64 {
		s := GenerateGesture(class, cfg, r)
		sum := 0.0
		for _, e := range s.Events {
			sum += float64(e.X)
		}
		return sum / float64(len(s.Events))
	}
	right := meanX(1) // rh_wave
	left := meanX(2)  // lh_wave
	if right-left < 4 {
		t.Fatalf("rh_wave meanX %.1f vs lh_wave %.1f: classes not distinct", right, left)
	}
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

func BenchmarkGenerateGesture(b *testing.B) {
	cfg := DefaultGestureConfig()
	r := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = GenerateGesture(i%GestureClasses, cfg, r)
	}
}

func BenchmarkVoxelize(b *testing.B) {
	s := GenerateGesture(7, DefaultGestureConfig(), rng.New(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Voxelize(20)
	}
}
