package dvs

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// The streaming AEDAT codec. ReadAEDAT/WriteAEDAT materialize the whole
// recording; StreamReader and StreamWriter speak the same container
// (see aedat.go for the layout) in fixed-size chunks, so a recording
// arbitrarily larger than memory can be validated, filtered, windowed
// and classified while only ever holding O(chunk) events. The batch
// helpers in aedat.go are rewired through this codec, so there is a
// single implementation of the format and of its validation rules.
//
// Validation matches the in-memory path: the header is checked up
// front (sensor bounds, finite duration, sane event count) and every
// decoded event passes the same bounds/polarity/timestamp checks
// Stream.Validate applies, so a hostile or corrupt file fails at the
// offending record instead of poisoning a voxelization worker later.
//
// Real sensors jitter: events can arrive mildly out of order (USB
// packet reordering, multi-chip mux). ReorderWindow re-sorts the flow
// through a bounded min-heap — any event displaced at most ReorderWindow
// positions from its time-sorted place is emitted in order (ties keep
// file order, matching Stream.Sort's stability); a displacement beyond
// the window is an error, never a silently unsorted output.

// eventRecSize is the wire size of one event record.
const eventRecSize = 16

// maxStreamEvents caps the event count the WHOLE-FILE loader
// (ReadAEDAT) will materialize (100 MB of payload), so a hostile
// header cannot balloon its preallocation. The streaming codec is
// deliberately uncapped: StreamReader's memory is bounded by the
// caller's chunk buffer and the reorder window whatever the header
// declares — serving recordings past this limit is its whole point.
const maxStreamEvents = 100 << 20 / eventRecSize

// headerSize is magic + width + height + duration + count.
const headerSize = 8 + 4 + 4 + 8 + 8

// countOffset is the byte offset of the count field, which StreamWriter
// backpatches on Close when the sink is seekable.
const countOffset = 8 + 4 + 4 + 8

// validateHeader checks the container-level fields shared by reader and
// writer: sensor bounds and a finite, non-negative recording window.
func validateHeader(w, h int, duration float64) error {
	if w <= 0 || h <= 0 || w > 1<<14 || h > 1<<14 {
		return fmt.Errorf("dvs: implausible sensor size %dx%d", w, h)
	}
	if math.IsNaN(duration) || math.IsInf(duration, 0) || duration < 0 {
		return fmt.Errorf("dvs: invalid duration %v", duration)
	}
	return nil
}

// validateEvent checks one event against a w×h sensor and a recording
// window of duration ms — the per-event subset of Stream.Validate,
// shared by the in-memory path, StreamReader and StreamWriter.
func validateEvent(e Event, w, h int, duration float64) error {
	if e.X < 0 || e.X >= w || e.Y < 0 || e.Y >= h {
		return fmt.Errorf("at (%d,%d) off the %dx%d sensor", e.X, e.Y, w, h)
	}
	if e.P != 1 && e.P != -1 {
		return fmt.Errorf("polarity %d", e.P)
	}
	if math.IsNaN(e.T) || e.T < 0 || e.T > duration {
		return fmt.Errorf("time %v outside [0,%v]", e.T, duration)
	}
	return nil
}

// putEvent encodes one event record into rec.
func putEvent(rec []byte, e Event) {
	binary.LittleEndian.PutUint16(rec[0:], uint16(e.X))
	binary.LittleEndian.PutUint16(rec[2:], uint16(e.Y))
	binary.LittleEndian.PutUint16(rec[4:], uint16(int16(e.P)))
	binary.LittleEndian.PutUint16(rec[6:], 0)
	binary.LittleEndian.PutUint64(rec[8:], math.Float64bits(e.T))
}

// getEvent decodes one event record from rec.
func getEvent(rec []byte) Event {
	return Event{
		X: int(binary.LittleEndian.Uint16(rec[0:])),
		Y: int(binary.LittleEndian.Uint16(rec[2:])),
		P: int8(int16(binary.LittleEndian.Uint16(rec[4:]))),
		T: math.Float64frombits(binary.LittleEndian.Uint64(rec[8:])),
	}
}

// StreamReaderOptions configure a StreamReader.
type StreamReaderOptions struct {
	// ReorderWindow is the capacity (in events) of the bounded reorder
	// buffer. 0 (the default) emits events exactly in file order, like
	// ReadAEDAT. With K > 0 the reader emits the flow in timestamp
	// order as long as no event is displaced more than K positions from
	// its sorted place; a larger displacement is an error.
	ReorderWindow int
}

// StreamReader decodes an AEDAT container incrementally: the header is
// read and validated at construction, events are handed out in
// caller-sized chunks with every record validated. After the first
// chunk the reader allocates nothing.
type StreamReader struct {
	br      *bufio.Reader
	w, h    int
	dur     float64
	count   uint64
	opts    StreamReaderOptions
	decoded uint64 // records decoded from the container
	rec     [eventRecSize]byte
	heap    []heapEvent // reorder buffer, min-heap on (T, seq)
	seq     uint64
	lastT   float64
	started bool
	err     error // sticky terminal state (including io.EOF)
}

type heapEvent struct {
	e   Event
	seq uint64
}

// NewStreamReader opens a strict (file-order) streaming decoder on r.
func NewStreamReader(r io.Reader) (*StreamReader, error) {
	return NewStreamReaderOptions(r, StreamReaderOptions{})
}

// NewStreamReaderOptions opens a streaming decoder with options.
func NewStreamReaderOptions(r io.Reader, opts StreamReaderOptions) (*StreamReader, error) {
	if opts.ReorderWindow < 0 {
		opts.ReorderWindow = 0
	}
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("dvs: reading magic: %w", err)
	}
	if magic != aedatMagic {
		return nil, fmt.Errorf("dvs: bad magic %q", magic)
	}
	var hdr [headerSize - 8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("dvs: reading header: %w", err)
	}
	w := int(binary.LittleEndian.Uint32(hdr[0:]))
	h := int(binary.LittleEndian.Uint32(hdr[4:]))
	dur := math.Float64frombits(binary.LittleEndian.Uint64(hdr[8:]))
	count := binary.LittleEndian.Uint64(hdr[16:])
	if err := validateHeader(w, h, dur); err != nil {
		return nil, err
	}
	return &StreamReader{br: br, w: w, h: h, dur: dur, count: count, opts: opts}, nil
}

// W returns the sensor width.
func (sr *StreamReader) W() int { return sr.w }

// H returns the sensor height.
func (sr *StreamReader) H() int { return sr.h }

// Duration returns the recording window in milliseconds.
func (sr *StreamReader) Duration() float64 { return sr.dur }

// Count returns the declared event count.
func (sr *StreamReader) Count() uint64 { return sr.count }

// decodeEvent reads and validates the next record from the container.
func (sr *StreamReader) decodeEvent() (Event, error) {
	if _, err := io.ReadFull(sr.br, sr.rec[:]); err != nil {
		return Event{}, fmt.Errorf("dvs: reading event %d: %w", sr.decoded, err)
	}
	e := getEvent(sr.rec[:])
	if err := validateEvent(e, sr.w, sr.h, sr.dur); err != nil {
		return Event{}, fmt.Errorf("dvs: invalid stream: event %d %v", sr.decoded, err)
	}
	sr.decoded++
	return e, nil
}

// heapPush inserts into the (T, seq) min-heap.
func (sr *StreamReader) heapPush(e Event) {
	sr.heap = append(sr.heap, heapEvent{e, sr.seq})
	sr.seq++
	i := len(sr.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !heapLess(sr.heap[i], sr.heap[p]) {
			break
		}
		sr.heap[i], sr.heap[p] = sr.heap[p], sr.heap[i]
		i = p
	}
}

// heapPop removes the minimum.
func (sr *StreamReader) heapPop() Event {
	h := sr.heap
	top := h[0].e
	n := len(h) - 1
	h[0] = h[n]
	sr.heap = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && heapLess(h[l], h[s]) {
			s = l
		}
		if r < n && heapLess(h[r], h[s]) {
			s = r
		}
		if s == i {
			break
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
	return top
}

func heapLess(a, b heapEvent) bool {
	if a.e.T != b.e.T {
		return a.e.T < b.e.T
	}
	return a.seq < b.seq
}

// ReadChunk fills buf with the next events of the flow and returns how
// many were written. It returns io.EOF (and 0) once every declared
// event has been emitted; a short container (fewer records than the
// header declared) surfaces as an io.ErrUnexpectedEOF-wrapped error,
// never as a clean EOF. Errors are sticky.
func (sr *StreamReader) ReadChunk(buf []Event) (int, error) {
	if sr.err != nil {
		return 0, sr.err
	}
	if len(buf) == 0 {
		// (0, nil) would spin a drain-until-EOF loop forever; an empty
		// buffer is a caller bug, not a readable state.
		return 0, fmt.Errorf("dvs: ReadChunk with an empty buffer")
	}
	n := 0
	if sr.opts.ReorderWindow == 0 {
		// Strict mode decodes straight into buf: the heap would always
		// hold exactly one event, and ReadAEDAT rides this path for
		// every whole-file load.
		for n < len(buf) && sr.decoded < sr.count {
			e, err := sr.decodeEvent()
			if err != nil {
				sr.err = err
				return n, err
			}
			buf[n] = e
			n++
		}
		if n == 0 {
			sr.err = io.EOF
			return 0, io.EOF
		}
		return n, nil
	}
	for n < len(buf) {
		// Keep the reorder buffer at capacity: the heap top is only
		// safe to emit once K later events have been seen (or input
		// ended).
		for sr.decoded < sr.count && len(sr.heap) <= sr.opts.ReorderWindow {
			e, err := sr.decodeEvent()
			if err != nil {
				sr.err = err
				return n, err
			}
			sr.heapPush(e)
		}
		if len(sr.heap) == 0 {
			break
		}
		e := sr.heapPop()
		if sr.started && e.T < sr.lastT {
			sr.err = fmt.Errorf("dvs: event at %gms out of order beyond the %d-event reorder window (last emitted %gms)",
				e.T, sr.opts.ReorderWindow, sr.lastT)
			return n, sr.err
		}
		sr.lastT = e.T
		sr.started = true
		buf[n] = e
		n++
	}
	if n == 0 {
		sr.err = io.EOF
		return 0, io.EOF
	}
	return n, nil
}

// StreamWriter encodes an AEDAT container incrementally, validating
// every event against the declared sensor and window. When the sink is
// an io.WriteSeeker the event count may be left open and is backpatched
// on Close; otherwise the exact count must be declared up front
// (NewStreamWriterCount) and Close enforces it.
type StreamWriter struct {
	bw       *bufio.Writer
	ws       io.WriteSeeker // non-nil when the count is backpatchable
	w, h     int
	dur      float64
	declared int64 // -1 = unknown, backpatched on Close
	written  uint64
	rec      [eventRecSize]byte
	closed   bool
	closeErr error // first Close's verdict, sticky across re-Closes
}

// NewStreamWriter opens a streaming encoder with an open event count;
// w must be an io.WriteSeeker (a file) so Close can backpatch the
// count. For non-seekable sinks use NewStreamWriterCount.
func NewStreamWriter(w io.Writer, width, height int, duration float64) (*StreamWriter, error) {
	ws, ok := w.(io.WriteSeeker)
	if !ok {
		return nil, fmt.Errorf("dvs: open event count needs an io.WriteSeeker sink (use NewStreamWriterCount)")
	}
	return newStreamWriter(w, ws, width, height, duration, -1)
}

// NewStreamWriterCount opens a streaming encoder that will write
// exactly count events; Close fails on a mismatch, so a truncated
// producer cannot silently emit a well-formed-looking container.
// Like the open-count writer (and the streaming reader) it accepts any
// count: only the whole-file loader caps what it will materialize.
func NewStreamWriterCount(w io.Writer, width, height int, duration float64, count int) (*StreamWriter, error) {
	if count < 0 {
		return nil, fmt.Errorf("dvs: negative event count %d", count)
	}
	return newStreamWriter(w, nil, width, height, duration, int64(count))
}

func newStreamWriter(w io.Writer, ws io.WriteSeeker, width, height int, duration float64, declared int64) (*StreamWriter, error) {
	if err := validateHeader(width, height, duration); err != nil {
		return nil, err
	}
	sw := &StreamWriter{bw: bufio.NewWriter(w), ws: ws, w: width, h: height, dur: duration, declared: declared}
	var hdr [headerSize]byte
	copy(hdr[:8], aedatMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], uint32(width))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(height))
	binary.LittleEndian.PutUint64(hdr[16:], math.Float64bits(duration))
	if declared >= 0 {
		binary.LittleEndian.PutUint64(hdr[24:], uint64(declared))
	}
	if _, err := sw.bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return sw, nil
}

// WriteEvent appends one validated event to the container.
func (sw *StreamWriter) WriteEvent(e Event) error {
	if sw.closed {
		return fmt.Errorf("dvs: write on closed StreamWriter")
	}
	if err := validateEvent(e, sw.w, sw.h, sw.dur); err != nil {
		return fmt.Errorf("dvs: invalid stream: event %d %v", sw.written, err)
	}
	if sw.declared >= 0 && sw.written >= uint64(sw.declared) {
		return fmt.Errorf("dvs: more than the declared %d events", sw.declared)
	}
	putEvent(sw.rec[:], e)
	if _, err := sw.bw.Write(sw.rec[:]); err != nil {
		return err
	}
	sw.written++
	return nil
}

// WriteEvents appends a chunk of validated events to the container.
func (sw *StreamWriter) WriteEvents(events []Event) error {
	for _, e := range events {
		if err := sw.WriteEvent(e); err != nil {
			return err
		}
	}
	return nil
}

// Written returns how many events have been written so far.
func (sw *StreamWriter) Written() uint64 { return sw.written }

// Close flushes the container and finalizes the event count: with a
// declared count it enforces the exact number written; with an open
// count it seeks back and backpatches the header. A failed Close stays
// failed: re-Closing returns the first verdict, so a deferred retry
// cannot launder a truncated container into a success.
func (sw *StreamWriter) Close() error {
	if sw.closed {
		return sw.closeErr
	}
	sw.closed = true
	sw.closeErr = sw.finalize()
	return sw.closeErr
}

func (sw *StreamWriter) finalize() error {
	if err := sw.bw.Flush(); err != nil {
		return err
	}
	if sw.declared >= 0 {
		if sw.written != uint64(sw.declared) {
			return fmt.Errorf("dvs: wrote %d events, declared %d", sw.written, sw.declared)
		}
		return nil
	}
	if _, err := sw.ws.Seek(countOffset, io.SeekStart); err != nil {
		return fmt.Errorf("dvs: backpatching event count: %w", err)
	}
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], sw.written)
	if _, err := sw.ws.Write(cnt[:]); err != nil {
		return fmt.Errorf("dvs: backpatching event count: %w", err)
	}
	if _, err := sw.ws.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("dvs: backpatching event count: %w", err)
	}
	return nil
}
