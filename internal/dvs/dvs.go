// Package dvs models dynamic-vision-sensor (event camera) data: the event
// representation used by the neuromorphic side of the paper, a synthetic
// DVS128-Gesture-like generator, and voxelization of event streams into
// the per-time-step frames the SNN consumes.
//
// An event is (x, y, p, t): pixel coordinates, polarity and timestamp in
// milliseconds. Real DVS128 Gesture recordings are 128×128; the synthetic
// generator defaults to 32×32 so pure-Go experiments stay fast, and the
// resolution is a parameter throughout (see DESIGN.md substitution #2).
package dvs

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/tensor"
)

// Event is one DVS event. Polarity is +1 (brightness increase) or -1.
type Event struct {
	X, Y int
	P    int8
	T    float64 // milliseconds
}

// Stream is a time-ordered list of events from a W×H sensor.
type Stream struct {
	W, H     int
	Duration float64 // milliseconds
	Events   []Event
}

// Clone deep-copies the stream.
func (s *Stream) Clone() *Stream {
	out := &Stream{W: s.W, H: s.H, Duration: s.Duration, Events: make([]Event, len(s.Events))}
	copy(out.Events, s.Events)
	return out
}

// Sort orders events by timestamp (stable on ties).
func (s *Stream) Sort() {
	sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].T < s.Events[j].T })
}

// Validate checks that the recording window is finite and that every
// event lies on the sensor and inside the window, with polarity ±1.
// Timestamps must be finite: NaN compares false against every bound, so
// without the explicit checks a hostile stream could smuggle NaN times
// through the range tests (and then poison every voxel-bin division
// downstream).
func (s *Stream) Validate() error {
	if s.W <= 0 || s.H <= 0 {
		return fmt.Errorf("dvs: invalid sensor size %dx%d", s.W, s.H)
	}
	if math.IsNaN(s.Duration) || math.IsInf(s.Duration, 0) || s.Duration < 0 {
		return fmt.Errorf("dvs: invalid duration %v", s.Duration)
	}
	for i, e := range s.Events {
		// The per-event checks are shared with the streaming codec
		// (stream_io.go), so a stream assembled in memory and one
		// decoded chunk by chunk pass exactly the same gate.
		if err := validateEvent(e, s.W, s.H, s.Duration); err != nil {
			return fmt.Errorf("dvs: event %d %v", i, err)
		}
	}
	return nil
}

// Voxelize bins the stream into steps frames of shape (2, H, W): channel 0
// holds positive-polarity events, channel 1 negative. Values are clamped
// to [0,1] (spike presence), which is the standard SNN input encoding for
// event data.
func (s *Stream) Voxelize(steps int) []*tensor.Tensor {
	frames := make([]*tensor.Tensor, steps)
	for i := range frames {
		frames[i] = tensor.New(2, s.H, s.W)
	}
	s.VoxelizeInto(frames)
	return frames
}

// VoxelizeInto is Voxelize writing into caller-owned frames — the
// allocation-free form the streaming pipeline runs per window. frames
// must hold len(frames) tensors of shape (2, H, W); they are zeroed
// first. Results are bit-identical to Voxelize(len(frames)).
//
//axsnn:hotpath
func (s *Stream) VoxelizeInto(frames []*tensor.Tensor) {
	VoxelizeWindowInto(frames, s.Events, s.W, s.H, 0, s.Duration)
}

// EventCountGrid returns per-pixel event counts summed over time and
// polarity, used by analysis and by attack budgeting.
func (s *Stream) EventCountGrid() *tensor.Tensor {
	g := tensor.New(s.H, s.W)
	for _, e := range s.Events {
		if e.X < 0 || e.X >= s.W || e.Y < 0 || e.Y >= s.H {
			continue // defense in depth, mirroring Voxelize
		}
		g.Data[e.Y*s.W+e.X]++
	}
	return g
}

// ConcatStreams joins recordings end to end into one continuous flow:
// segment k's events are shifted by the total duration of the segments
// before it (clamped to the flow's window against end-of-segment
// jitter). All segments must share one sensor. The demo flows, the
// pipeline benchmarks and the bounded-memory tests all build long
// recordings through this one helper.
func ConcatStreams(segs ...*Stream) (*Stream, error) {
	if len(segs) == 0 {
		return nil, fmt.Errorf("dvs: ConcatStreams with no segments")
	}
	out := &Stream{W: segs[0].W, H: segs[0].H}
	for _, s := range segs {
		out.Duration += s.Duration
	}
	offset := 0.0
	for i, s := range segs {
		if s.W != out.W || s.H != out.H {
			return nil, fmt.Errorf("dvs: segment %d is %dx%d, flow is %dx%d", i, s.W, s.H, out.W, out.H)
		}
		for _, e := range s.Events {
			e.T += offset
			if e.T > out.Duration {
				e.T = out.Duration
			}
			out.Events = append(out.Events, e)
		}
		offset += s.Duration
	}
	return out, nil
}

// Sample is one labelled gesture recording.
type Sample struct {
	Stream *Stream
	Label  int
}

// Set is an in-memory labelled collection of gesture recordings.
type Set struct {
	Samples []Sample
	Classes int
	W, H    int
}

// Len returns the number of samples.
func (s *Set) Len() int { return len(s.Samples) }

// Subset returns a view of the first n samples.
func (s *Set) Subset(n int) *Set {
	if n > len(s.Samples) {
		n = len(s.Samples)
	}
	return &Set{Samples: s.Samples[:n], Classes: s.Classes, W: s.W, H: s.H}
}

// Clone deep-copies the set (attacks mutate streams).
func (s *Set) Clone() *Set {
	out := &Set{Samples: make([]Sample, len(s.Samples)), Classes: s.Classes, W: s.W, H: s.H}
	for i, sm := range s.Samples {
		out.Samples[i] = Sample{Stream: sm.Stream.Clone(), Label: sm.Label}
	}
	return out
}
