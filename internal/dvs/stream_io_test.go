package dvs

import (
	"bytes"
	"encoding/binary"
	"io"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// randomStream builds a small valid stream with n random events.
func randomStream(r *rng.RNG, n int) *Stream {
	s := &Stream{W: 16, H: 16, Duration: 100}
	for i := 0; i < n; i++ {
		p := int8(1)
		if r.Bernoulli(0.5) {
			p = -1
		}
		s.Events = append(s.Events, Event{X: r.Intn(16), Y: r.Intn(16), P: p, T: r.Float64() * 100})
	}
	return s
}

// readAllChunks drains a StreamReader with the given chunk size.
func readAllChunks(t *testing.T, sr *StreamReader, chunk int) []Event {
	t.Helper()
	var out []Event
	buf := make([]Event, chunk)
	for {
		n, err := sr.ReadChunk(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("ReadChunk: %v", err)
		}
	}
}

// TestStreamWriterReaderRoundTrip is the property test: whatever the
// stream and chunk size, StreamWriter→StreamReader reproduces the
// events exactly, matching the whole-stream WriteAEDAT/ReadAEDAT pair.
func TestStreamWriterReaderRoundTrip(t *testing.T) {
	if err := quick.Check(func(seed uint64, chunkRaw uint8) bool {
		r := rng.New(seed)
		s := randomStream(r, r.Intn(200))
		chunk := int(chunkRaw)%64 + 1

		var buf bytes.Buffer
		sw, err := NewStreamWriterCount(&buf, s.W, s.H, s.Duration, len(s.Events))
		if err != nil {
			return false
		}
		// Write in two pieces to cross the writer's internal buffering.
		half := len(s.Events) / 2
		if sw.WriteEvents(s.Events[:half]) != nil || sw.WriteEvents(s.Events[half:]) != nil {
			return false
		}
		if sw.Close() != nil {
			return false
		}

		// The streaming bytes must be exactly WriteAEDAT's bytes.
		var whole bytes.Buffer
		if err := WriteAEDAT(&whole, s); err != nil {
			return false
		}
		if !bytes.Equal(buf.Bytes(), whole.Bytes()) {
			return false
		}

		sr, err := NewStreamReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		if sr.W() != s.W || sr.H() != s.H || sr.Duration() != s.Duration || sr.Count() != uint64(len(s.Events)) {
			return false
		}
		got := make([]Event, 0, len(s.Events))
		cb := make([]Event, chunk)
		for {
			n, err := sr.ReadChunk(cb)
			got = append(got, cb[:n]...)
			if err == io.EOF {
				break
			}
			if err != nil {
				return false
			}
		}
		if len(got) != len(s.Events) {
			return false
		}
		for i := range got {
			if got[i] != s.Events[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestStreamWriterBackpatch exercises the open-count path: a seekable
// sink gets its header count backpatched on Close, and the file reads
// back intact.
func TestStreamWriterBackpatch(t *testing.T) {
	s := randomStream(rng.New(5), 37)
	path := filepath.Join(t.TempDir(), "bp.aedat")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := NewStreamWriter(f, s.W, s.H, s.Duration)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range s.Events {
		if err := sw.WriteEvent(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := LoadAEDAT(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != len(s.Events) {
		t.Fatalf("backpatched file has %d events, want %d", len(got.Events), len(s.Events))
	}
	for i := range got.Events {
		if got.Events[i] != s.Events[i] {
			t.Fatalf("event %d: %+v vs %+v", i, got.Events[i], s.Events[i])
		}
	}
}

// TestStreamWriterEnforcesContract pins the writer's error paths: a
// non-seekable sink with an open count, a declared-count mismatch, an
// overflow past the declared count, and invalid events.
func TestStreamWriterEnforcesContract(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewStreamWriter(&buf, 8, 8, 10); err == nil {
		t.Fatal("open count on a non-seekable sink must fail")
	}

	sw, err := NewStreamWriterCount(&buf, 8, 8, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteEvent(Event{X: 1, Y: 1, P: 1, T: 5}); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err == nil {
		t.Fatal("short write must fail Close")
	}

	buf.Reset()
	sw, _ = NewStreamWriterCount(&buf, 8, 8, 10, 1)
	if err := sw.WriteEvent(Event{X: 1, Y: 1, P: 1, T: 5}); err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteEvent(Event{X: 2, Y: 2, P: 1, T: 6}); err == nil {
		t.Fatal("writing past the declared count must fail")
	}

	buf.Reset()
	sw, _ = NewStreamWriterCount(&buf, 8, 8, 10, 1)
	for _, bad := range []Event{
		{X: 8, Y: 0, P: 1, T: 1},  // off sensor
		{X: 0, Y: 0, P: 0, T: 1},  // bad polarity
		{X: 0, Y: 0, P: 1, T: 11}, // past the window
		{X: 0, Y: 0, P: 1, T: -1}, // before the window
	} {
		if err := sw.WriteEvent(bad); err == nil {
			t.Fatalf("invalid event %+v must fail", bad)
		}
	}

	if _, err := NewStreamWriterCount(&bytes.Buffer{}, 0, 8, 10, 0); err == nil {
		t.Fatal("zero-width sensor must fail")
	}

	// A failed Close stays failed: re-Closing (the deferred-Close
	// pattern) must not launder a short container into a success.
	buf.Reset()
	sw, _ = NewStreamWriterCount(&buf, 8, 8, 10, 3)
	first := sw.Close()
	if first == nil {
		t.Fatal("short write must fail Close")
	}
	if again := sw.Close(); again != first {
		t.Fatalf("re-Close returned %v, want the sticky %v", again, first)
	}
}

// TestStreamReaderRejectsHostileInput pins the reader's error paths:
// bad magic, implausible header, truncated payloads and corrupt
// records, with errors staying sticky.
func TestStreamReaderRejectsHostileInput(t *testing.T) {
	s := randomStream(rng.New(9), 20)
	var buf bytes.Buffer
	if err := WriteAEDAT(&buf, s); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	if _, err := NewStreamReader(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("short magic must fail")
	}
	bad := append([]byte(nil), valid...)
	bad[0] = 'Z'
	if _, err := NewStreamReader(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic must fail")
	}

	// Truncation mid-payload: the reader must report an error, never a
	// clean EOF, and the error must stick.
	trunc := valid[:len(valid)-9]
	sr, err := NewStreamReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	cb := make([]Event, 7)
	var lastErr error
	for i := 0; i < 100; i++ {
		_, lastErr = sr.ReadChunk(cb)
		if lastErr != nil {
			break
		}
	}
	if lastErr == nil || lastErr == io.EOF {
		t.Fatalf("truncated payload ended with %v, want a hard error", lastErr)
	}
	if _, err := sr.ReadChunk(cb); err != lastErr {
		t.Fatalf("error did not stick: %v vs %v", err, lastErr)
	}

	// A corrupt record (off-sensor coordinates) must fail validation.
	rec := append([]byte(nil), valid...)
	rec[headerSize] = 0xff
	rec[headerSize+1] = 0xff
	sr, err = NewStreamReader(bytes.NewReader(rec))
	if err != nil {
		t.Fatal(err)
	}
	ok := false
	for i := 0; i < 100; i++ {
		if _, err := sr.ReadChunk(cb); err != nil {
			if err != io.EOF {
				ok = true
			}
			break
		}
	}
	if !ok {
		t.Fatal("corrupt record slipped through validation")
	}
}

// TestStreamReaderUncappedCount pins the cap split: a header declaring
// more events than the whole-file loader will materialize still OPENS
// through the streaming reader (its memory is caller-bounded — serving
// recordings past the cap is its purpose), while ReadAEDAT refuses to
// preallocate for it. The truncated payload then fails record decode,
// never a clean EOF.
func TestStreamReaderUncappedCount(t *testing.T) {
	var buf bytes.Buffer
	sw, err := NewStreamWriterCount(&buf, 8, 8, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteEvent(Event{X: 1, Y: 1, P: 1, T: 5}); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Rewrite the count field to 2^40 events.
	huge := append([]byte(nil), data...)
	binary.LittleEndian.PutUint64(huge[countOffset:], 1<<40)

	if _, err := ReadAEDAT(bytes.NewReader(huge)); err == nil {
		t.Fatal("ReadAEDAT must refuse to materialize 2^40 events")
	}
	sr, err := NewStreamReader(bytes.NewReader(huge))
	if err != nil {
		t.Fatalf("streaming reader must open an over-cap header: %v", err)
	}
	if sr.Count() != 1<<40 {
		t.Fatalf("Count() = %d, want 2^40", sr.Count())
	}
	cb := make([]Event, 4)
	n, err := sr.ReadChunk(cb)
	if n != 1 || err == nil || err == io.EOF {
		t.Fatalf("truncated over-cap stream: n=%d err=%v, want the one real event then a hard error", n, err)
	}
}

// TestStreamReaderReorder pins the bounded reorder buffer: a flow with
// displacement ≤ K comes out exactly time-sorted (stable on ties), and
// displacement beyond K is a loud error.
func TestStreamReaderReorder(t *testing.T) {
	s := randomStream(rng.New(13), 120)
	s.Sort()
	want := append([]Event(nil), s.Events...)

	// Displace within a bound of 5.
	disordered := s.Clone()
	r := rng.New(14)
	for k := 0; k < 80; k++ {
		i := r.Intn(len(disordered.Events) - 5)
		j := i + 1 + r.Intn(5)
		disordered.Events[i], disordered.Events[j] = disordered.Events[j], disordered.Events[i]
	}
	var buf bytes.Buffer
	if err := WriteAEDAT(&buf, disordered); err != nil {
		t.Fatal(err)
	}

	sr, err := NewStreamReaderOptions(bytes.NewReader(buf.Bytes()), StreamReaderOptions{ReorderWindow: 16})
	if err != nil {
		t.Fatal(err)
	}
	got := readAllChunks(t, sr, 11)
	if len(got) != len(want) {
		t.Fatalf("reordered read returned %d events, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("event %d: got %+v, want %+v (not time-sorted)", i, got[i], want[i])
		}
	}

	// Displacement beyond the window: the earliest event arrives last.
	// (An event arriving too *early* any distance ahead just waits in
	// the heap; arriving late is what a bounded buffer cannot absorb.)
	hostile := s.Clone()
	first := hostile.Events[0]
	copy(hostile.Events, hostile.Events[1:])
	hostile.Events[len(hostile.Events)-1] = first
	buf.Reset()
	if err := WriteAEDAT(&buf, hostile); err != nil {
		t.Fatal(err)
	}
	sr, err = NewStreamReaderOptions(bytes.NewReader(buf.Bytes()), StreamReaderOptions{ReorderWindow: 4})
	if err != nil {
		t.Fatal(err)
	}
	cb := make([]Event, 8)
	var rerr error
	for i := 0; i < 100; i++ {
		if _, rerr = sr.ReadChunk(cb); rerr != nil {
			break
		}
	}
	if rerr == nil || rerr == io.EOF {
		t.Fatalf("displacement beyond the reorder window ended with %v, want a hard error", rerr)
	}
}

// TestStreamReaderMatchesReadAEDAT pins the chunked reader to the
// whole-stream loader on the same bytes, at chunk sizes that do and do
// not divide the event count.
func TestStreamReaderMatchesReadAEDAT(t *testing.T) {
	s := GenerateGesture(6, DefaultGestureConfig(), rng.New(17))
	var buf bytes.Buffer
	if err := WriteAEDAT(&buf, s); err != nil {
		t.Fatal(err)
	}
	want, err := ReadAEDAT(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 3, 1000, len(s.Events) + 5} {
		sr, err := NewStreamReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		got := readAllChunks(t, sr, chunk)
		if len(got) != len(want.Events) {
			t.Fatalf("chunk %d: %d events, want %d", chunk, len(got), len(want.Events))
		}
		for i := range got {
			if got[i] != want.Events[i] {
				t.Fatalf("chunk %d event %d differs", chunk, i)
			}
		}
	}
}
