package dvs

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/rng"
)

// FuzzReadAEDAT throws arbitrary bytes at the stream parser. The
// contract the batch pipelines rely on: ReadAEDAT either returns an
// error or a fully valid stream — one that Validate accepts and that
// voxelization and counting can process without panicking, whatever the
// bytes claimed (out-of-bounds coordinates, NaN/negative timestamps,
// bogus polarities, absurd counts).
func FuzzReadAEDAT(f *testing.F) {
	// Seed with a genuine (short) recording...
	cfg := DefaultGestureConfig()
	cfg.Duration = 50 // keep the corpus entry small so mutation stays fast
	s := GenerateGesture(3, cfg, rng.New(1))
	var buf bytes.Buffer
	if err := WriteAEDAT(&buf, s); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	// ...a truncation, a corrupted header and a corrupted event record.
	f.Add(valid[:len(valid)/2])
	hdr := append([]byte(nil), valid...)
	hdr[9] = 0xff // width
	f.Add(hdr)
	rec := append([]byte(nil), valid...)
	for i := 32; i < 48 && i < len(rec); i++ {
		rec[i] = 0xee // first event record
	}
	f.Add(rec)

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := ReadAEDAT(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := st.Validate(); verr != nil {
			t.Fatalf("ReadAEDAT accepted a stream Validate rejects: %v", verr)
		}
		// The event-domain batch paths must be able to consume any
		// accepted stream.
		frames := st.Voxelize(4)
		for _, fr := range frames {
			for _, v := range fr.Data {
				if v != 0 && v != 1 {
					t.Fatalf("voxel value %v outside {0,1}", v)
				}
			}
		}
		st.EventCountGrid()
		st.Sort()

		// Round-trip: a valid stream serializes and re-parses intact.
		var out bytes.Buffer
		if err := WriteAEDAT(&out, st); err != nil {
			t.Fatalf("re-serializing a valid stream: %v", err)
		}
		back, err := ReadAEDAT(&out)
		if err != nil {
			t.Fatalf("re-parsing a valid stream: %v", err)
		}
		if len(back.Events) != len(st.Events) || back.W != st.W || back.H != st.H {
			t.Fatal("round-trip changed the stream")
		}
	})
}

// FuzzStreamConstruction builds streams directly from hostile field
// values and checks the Validate / processing contract: whatever the
// fields, Voxelize and EventCountGrid never panic, and Validate's
// verdict is consistent with the event actually landing in a frame.
func FuzzStreamConstruction(f *testing.F) {
	f.Add(uint16(32), uint16(32), int32(5), int32(5), int8(1), 10.0, 100.0)
	f.Add(uint16(1), uint16(1), int32(-1), int32(70000), int8(0), math.NaN(), math.Inf(1))
	f.Add(uint16(8), uint16(8), int32(7), int32(0), int8(-1), -3.0, 0.0)
	f.Fuzz(func(t *testing.T, w, h uint16, x, y int32, p int8, tm, dur float64) {
		s := &Stream{
			// Sensor dims bounded so frames stay allocatable; event
			// fields arrive raw (off-sensor, NaN, bogus polarity).
			W: int(w%128) + 1, H: int(h%128) + 1, Duration: dur,
			Events: []Event{{X: int(x), Y: int(y), P: p, T: tm}},
		}
		err := s.Validate()
		// Processing must be total regardless of validity (defense in
		// depth for streams assembled in memory, e.g. by attacks).
		frames := s.Voxelize(3)
		s.EventCountGrid()
		if err != nil {
			return
		}
		// A validated event lies on the sensor and lands in exactly one
		// voxel cell (none when the recording window is empty, which
		// Voxelize treats as "no time axis").
		want := 1
		if s.Duration <= 0 {
			want = 0
		}
		lit := 0
		for _, fr := range frames {
			for _, v := range fr.Data {
				if v == 1 {
					lit++
				}
			}
		}
		if lit != want {
			t.Fatalf("valid event lit %d voxel cells, want %d", lit, want)
		}
	})
}
