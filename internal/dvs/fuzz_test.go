package dvs

import (
	"bytes"
	"io"
	"math"
	"testing"

	"repro/internal/rng"
)

// FuzzReadAEDAT throws arbitrary bytes at the stream parser. The
// contract the batch pipelines rely on: ReadAEDAT either returns an
// error or a fully valid stream — one that Validate accepts and that
// voxelization and counting can process without panicking, whatever the
// bytes claimed (out-of-bounds coordinates, NaN/negative timestamps,
// bogus polarities, absurd counts).
func FuzzReadAEDAT(f *testing.F) {
	// Seed with a genuine (short) recording...
	cfg := DefaultGestureConfig()
	cfg.Duration = 50 // keep the corpus entry small so mutation stays fast
	s := GenerateGesture(3, cfg, rng.New(1))
	var buf bytes.Buffer
	if err := WriteAEDAT(&buf, s); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	// ...a truncation, a corrupted header and a corrupted event record.
	f.Add(valid[:len(valid)/2])
	hdr := append([]byte(nil), valid...)
	hdr[9] = 0xff // width
	f.Add(hdr)
	rec := append([]byte(nil), valid...)
	for i := 32; i < 48 && i < len(rec); i++ {
		rec[i] = 0xee // first event record
	}
	f.Add(rec)

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := ReadAEDAT(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := st.Validate(); verr != nil {
			t.Fatalf("ReadAEDAT accepted a stream Validate rejects: %v", verr)
		}
		// The event-domain batch paths must be able to consume any
		// accepted stream.
		frames := st.Voxelize(4)
		for _, fr := range frames {
			for _, v := range fr.Data {
				if v != 0 && v != 1 {
					t.Fatalf("voxel value %v outside {0,1}", v)
				}
			}
		}
		st.EventCountGrid()
		st.Sort()

		// Round-trip: a valid stream serializes and re-parses intact.
		var out bytes.Buffer
		if err := WriteAEDAT(&out, st); err != nil {
			t.Fatalf("re-serializing a valid stream: %v", err)
		}
		back, err := ReadAEDAT(&out)
		if err != nil {
			t.Fatalf("re-parsing a valid stream: %v", err)
		}
		if len(back.Events) != len(st.Events) || back.W != st.W || back.H != st.H {
			t.Fatal("round-trip changed the stream")
		}
	})
}

// FuzzStreamReader throws arbitrary bytes at the chunked decoder and
// pins it to the whole-stream loader: on the same bytes, StreamReader
// (at several chunk sizes, with and without a reorder buffer) and
// ReadAEDAT must either both fail or both succeed with identical
// headers and — chunk size notwithstanding — identical events.
// Truncated chunks, hostile headers and corrupt records land here via
// the seeds and mutation.
func FuzzStreamReader(f *testing.F) {
	cfg := DefaultGestureConfig()
	cfg.Duration = 50
	s := GenerateGesture(5, cfg, rng.New(2))
	var buf bytes.Buffer
	if err := WriteAEDAT(&buf, s); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid, uint8(16))
	f.Add(valid[:len(valid)/3], uint8(1)) // truncated mid-payload
	hdr := append([]byte(nil), valid...)
	hdr[12], hdr[13] = 0xff, 0xff // height 65535 > the 1<<14 sensor cap
	f.Add(hdr, uint8(4))
	rec := append([]byte(nil), valid...)
	for i := headerSize; i < headerSize+eventRecSize && i < len(rec); i++ {
		rec[i] = 0xab // first event record
	}
	f.Add(rec, uint8(64))

	f.Fuzz(func(t *testing.T, data []byte, chunkRaw uint8) {
		whole, wholeErr := ReadAEDAT(bytes.NewReader(data))
		chunk := int(chunkRaw)%128 + 1
		for _, reorder := range []int{0, 8} {
			sr, err := NewStreamReaderOptions(bytes.NewReader(data), StreamReaderOptions{ReorderWindow: reorder})
			if err != nil {
				if wholeErr == nil {
					t.Fatalf("StreamReader rejected a header ReadAEDAT accepts: %v", err)
				}
				continue
			}
			if wholeErr != nil && sr.Count() > 0 {
				// ReadAEDAT fails on some record; the chunked read must
				// fail too (the reorder buffer may reject extra inputs
				// for ordering, but never accept what validation
				// rejects).
				drainExpectError(t, sr, chunk)
				continue
			}
			var got []Event
			buf := make([]Event, chunk)
			failed := false
			for {
				n, err := sr.ReadChunk(buf)
				got = append(got, buf[:n]...)
				if err == io.EOF {
					break
				}
				if err != nil {
					failed = true
					break
				}
			}
			if wholeErr != nil {
				if !failed && len(got) > 0 {
					t.Fatalf("StreamReader emitted %d events from a stream ReadAEDAT rejects (%v)", len(got), wholeErr)
				}
				continue
			}
			if failed && reorder == 0 {
				t.Fatalf("strict StreamReader failed on a stream ReadAEDAT accepts")
			}
			if failed {
				continue // disorder beyond the reorder window is a legal refusal
			}
			if sr.W() != whole.W || sr.H() != whole.H || sr.Duration() != whole.Duration {
				t.Fatalf("header mismatch: %dx%d/%v vs %dx%d/%v", sr.W(), sr.H(), sr.Duration(), whole.W, whole.H, whole.Duration)
			}
			if len(got) != len(whole.Events) {
				t.Fatalf("chunked read returned %d events, ReadAEDAT %d", len(got), len(whole.Events))
			}
			if reorder == 0 {
				for i := range got {
					if got[i] != whole.Events[i] {
						t.Fatalf("event %d: chunked %+v vs whole %+v", i, got[i], whole.Events[i])
					}
				}
			} else {
				// With a reorder buffer the multiset is preserved and
				// the output is time-sorted.
				for i := 1; i < len(got); i++ {
					if got[i].T < got[i-1].T {
						t.Fatalf("reorder output not sorted at %d", i)
					}
				}
			}
		}
	})
}

func drainExpectError(t *testing.T, sr *StreamReader, chunk int) {
	t.Helper()
	buf := make([]Event, chunk)
	for i := 0; i < 1<<22; i++ {
		_, err := sr.ReadChunk(buf)
		if err == io.EOF {
			t.Fatal("StreamReader cleanly drained a stream ReadAEDAT rejects")
		}
		if err != nil {
			return
		}
	}
	t.Fatal("StreamReader never terminated")
}

// FuzzStreamRoundTrip drives StreamWriter→StreamReader from fuzzed
// event fields: whatever the writer accepts must decode back exactly,
// and whatever it rejects must be exactly what Validate rejects.
func FuzzStreamRoundTrip(f *testing.F) {
	f.Add(uint16(16), uint16(16), 100.0, int32(3), int32(5), int8(1), 40.0)
	f.Add(uint16(1), uint16(1), 0.0, int32(0), int32(0), int8(-1), 0.0)
	f.Add(uint16(64), uint16(2), 7.5, int32(-2), int32(70000), int8(3), math.NaN())
	f.Fuzz(func(t *testing.T, w, h uint16, dur float64, x, y int32, p int8, tm float64) {
		width, height := int(w%256)+1, int(h%256)+1
		e := Event{X: int(x), Y: int(y), P: p, T: tm}
		var buf bytes.Buffer
		sw, err := NewStreamWriterCount(&buf, width, height, dur, 1)
		if err != nil {
			// Header rejected: must be a duration Validate rejects too
			// (sensor dims are bounded valid by construction).
			if verr := (&Stream{W: width, H: height, Duration: dur}).Validate(); verr == nil {
				t.Fatalf("writer rejected a header Validate accepts: %v", err)
			}
			return
		}
		werr := sw.WriteEvent(e)
		verr := (&Stream{W: width, H: height, Duration: dur, Events: []Event{e}}).Validate()
		if (werr == nil) != (verr == nil) {
			t.Fatalf("writer verdict %v, Validate verdict %v", werr, verr)
		}
		if werr != nil {
			return
		}
		if err := sw.Close(); err != nil {
			t.Fatal(err)
		}
		got, err := ReadAEDAT(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-reading a writer-accepted stream: %v", err)
		}
		if len(got.Events) != 1 || got.Events[0] != e {
			t.Fatalf("round trip changed the event: %+v", got.Events)
		}
		if got.W != width || got.H != height || got.Duration != dur {
			t.Fatalf("round trip changed the header")
		}
	})
}

// FuzzStreamConstruction builds streams directly from hostile field
// values and checks the Validate / processing contract: whatever the
// fields, Voxelize and EventCountGrid never panic, and Validate's
// verdict is consistent with the event actually landing in a frame.
func FuzzStreamConstruction(f *testing.F) {
	f.Add(uint16(32), uint16(32), int32(5), int32(5), int8(1), 10.0, 100.0)
	f.Add(uint16(1), uint16(1), int32(-1), int32(70000), int8(0), math.NaN(), math.Inf(1))
	f.Add(uint16(8), uint16(8), int32(7), int32(0), int8(-1), -3.0, 0.0)
	f.Fuzz(func(t *testing.T, w, h uint16, x, y int32, p int8, tm, dur float64) {
		s := &Stream{
			// Sensor dims bounded so frames stay allocatable; event
			// fields arrive raw (off-sensor, NaN, bogus polarity).
			W: int(w%128) + 1, H: int(h%128) + 1, Duration: dur,
			Events: []Event{{X: int(x), Y: int(y), P: p, T: tm}},
		}
		err := s.Validate()
		// Processing must be total regardless of validity (defense in
		// depth for streams assembled in memory, e.g. by attacks).
		frames := s.Voxelize(3)
		s.EventCountGrid()
		if err != nil {
			return
		}
		// A validated event lies on the sensor and lands in exactly one
		// voxel cell (none when the recording window is empty, which
		// Voxelize treats as "no time axis").
		want := 1
		if s.Duration <= 0 {
			want = 0
		}
		lit := 0
		for _, fr := range frames {
			for _, v := range fr.Data {
				if v == 1 {
					lit++
				}
			}
		}
		if lit != want {
			t.Fatalf("valid event lit %d voxel cells, want %d", lit, want)
		}
	})
}
