package serve

import (
	"bytes"
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/snn"
	"repro/internal/stream"
	"repro/internal/tensor"
)

// streamAll runs one recording through cl collecting every result.
func streamAll(t testing.TB, cl *Client, data []byte) []stream.Result {
	t.Helper()
	var got []stream.Result
	if _, err := cl.Stream(bytes.NewReader(data), func(r stream.Result) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

// assertSOPs checks every window carries a positive, finite SOP
// estimate and that the done frame's total matches their sum.
func assertSOPs(t testing.TB, ctx string, cl *Client, got []stream.Result) {
	t.Helper()
	sum := 0.0
	for i, r := range got {
		if !(r.SOPs > 0) || math.IsInf(r.SOPs, 0) {
			t.Fatalf("%s: result %d SOPs = %v, want positive and finite", ctx, i, r.SOPs)
		}
		sum += r.SOPs
	}
	if ls := cl.LastSOPs(); math.Abs(ls-sum) > 1e-6*math.Max(1, sum) {
		t.Fatalf("%s: done-frame SOPs total %v, want sum of results %v", ctx, ls, sum)
	}
}

// TestServeInt8TierEndToEnd pins the quantized serving tier: an INT8
// session's results are bit-identical to a standalone INT8 pipeline
// (whatever batch shapes the shared scheduler coalesces), FP32
// sessions stay bit-identical to the FP32 reference while sharing the
// server, every result frame carries a positive SOP estimate whose sum
// matches the done frame, and the metrics snapshot accounts the energy.
func TestServeInt8TierEndToEnd(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(1)
	master := testNet(5, 17)
	o := stream.Options{WindowMS: 60, Steps: 5, Batch: 2, ChunkEvents: 64}
	srv, err := NewServer(master, ServerOptions{Pipeline: o, PoolSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !srv.SupportsTier(snn.TierINT8) {
		t.Fatal("server over a weighted net must support the INT8 tier")
	}
	data := testRecording(t, 2, 250, 11)
	wantFP := standalone(t, master, data, o)
	oI8 := o
	oI8.Tier = snn.TierINT8
	wantI8 := standalone(t, master, data, oI8)
	if len(wantI8) != len(wantFP) {
		t.Fatalf("tier references disagree on window count: %d vs %d", len(wantI8), len(wantFP))
	}

	run := func(ctx string, copts ClientOptions, want []stream.Result) {
		cl, done := startSessionOptions(srv, copts)
		defer cl.Close()
		// Two recordings back to back: the tier is latched at the first
		// and must hold for the session's lifetime.
		for rec := 0; rec < 2; rec++ {
			got := streamAll(t, cl, data)
			assertResults(t, fmt.Sprintf("%s rec %d", ctx, rec), want, got)
			assertSOPs(t, ctx, cl, got)
		}
		cl.Close()
		<-done
	}
	run("fp32 shared", ClientOptions{}, wantFP)
	run("int8 shared", ClientOptions{Config: SessionConfig{Tier: snn.TierINT8}}, wantI8)
	run("int8 private", ClientOptions{Config: SessionConfig{Tier: snn.TierINT8, PrivateBatch: true}}, wantI8)

	// Mixed tiers concurrently on the shared scheduler: same-tier
	// coalescing must keep each session on its own reference while the
	// batches fill from whichever sessions are ready.
	var wg sync.WaitGroup
	errs := make(chan error, 6)
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			copts, want := ClientOptions{}, wantFP
			if i%2 == 1 {
				copts, want = ClientOptions{Config: SessionConfig{Tier: snn.TierINT8}}, wantI8
			}
			cl, done := startSessionOptions(srv, copts)
			defer cl.Close()
			var got []stream.Result
			if _, err := cl.Stream(bytes.NewReader(data), func(r stream.Result) error {
				got = append(got, r)
				return nil
			}); err != nil {
				errs <- fmt.Errorf("session %d: %w", i, err)
				return
			}
			if len(got) != len(want) {
				errs <- fmt.Errorf("session %d: %d results, want %d", i, len(got), len(want))
				return
			}
			for k := range want {
				if !sameResult(got[k], want[k]) {
					errs <- fmt.Errorf("session %d: result %d = %+v, want %+v", i, k, got[k], want[k])
					return
				}
			}
			cl.Close()
			<-done
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	snap := srv.MetricsSnapshot()
	if !snap.Int8Supported {
		t.Fatal("snapshot must advertise the INT8 tier")
	}
	if !(snap.SOPsEstimated > 0) {
		t.Fatalf("sops_estimated = %v after traffic, want > 0", snap.SOPsEstimated)
	}
	if want := snap.SOPsEstimated * srv.energy.Load().EnergyPerSOpJ; snap.EnergyEstimatedJ != want {
		t.Fatalf("energy_estimated_j = %v, want %v", snap.EnergyEstimatedJ, want)
	}
}

// TestServeInt8HotSwapRebuildsPanels pins the LoadCheckpoint contract
// for the quantized tier: the swap rebuilds the int8 panels on the new
// weights, so an INT8 session classifying after the swap matches a
// standalone INT8 run of the new model — the tier never silently
// detaches from the served weights.
func TestServeInt8HotSwapRebuildsPanels(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(1)
	oldNet := testNet(4, 21)
	o := stream.Options{WindowMS: 40, Steps: 4, ChunkEvents: 16}
	data := testRecording(t, 3, 200, 31)
	wantOldFP := standalone(t, oldNet, data, o)

	srv, err := NewServer(oldNet, ServerOptions{Pipeline: o, PoolSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	newNet := trainedDisagreeing(t, oldNet, data, o, wantOldFP)
	if err := newNet.BuildInt8Panels(); err != nil {
		t.Fatal(err)
	}
	oI8 := o
	oI8.Tier = snn.TierINT8
	wantOldI8 := standalone(t, oldNet, data, oI8)
	wantNewI8 := standalone(t, newNet, data, oI8)
	var ckpt bytes.Buffer
	if err := newNet.Save(&ckpt); err != nil {
		t.Fatal(err)
	}

	run := func(ctx string, want []stream.Result) {
		cl, done := startSessionOptions(srv, ClientOptions{Config: SessionConfig{Tier: snn.TierINT8}})
		defer cl.Close()
		assertResults(t, ctx, want, streamAll(t, cl, data))
		cl.Close()
		<-done
	}
	run("int8 before swap", wantOldI8)
	if err := srv.LoadCheckpoint(bytes.NewReader(ckpt.Bytes())); err != nil {
		t.Fatal(err)
	}
	run("int8 after swap", wantNewI8)
}
