//go:build race

package serve

// raceEnabled reports that the race detector is instrumenting this
// build: timing-sensitive soak bounds carry extra slack for its
// overhead.
const raceEnabled = true
