// Package serve is the multi-session event-stream server: it
// multiplexes many concurrent AEDAT recordings — one stream.Pipeline
// per session — over a length-prefixed framing protocol, drawing
// evaluation clones from one shared bounded pool (sized by the tensor
// worker budget, not by the session count) and hot-swapping checkpoints
// under live traffic with RCU pointer-exchange semantics: in-flight
// window batches finish on the clone they hold, everything after picks
// up the new weights.
//
// The wire protocol is deliberately minimal. Every frame is
//
//	[1 byte type][4 bytes little-endian payload length][payload]
//
// A session is one connection serving a sequence of recordings on one
// warmed pipeline. A current client opens the session with one
// versioned frameHello carrying its SessionConfig (protocol version,
// private batching, precision tier, credit window — including the
// initial credit grant); the server answers with a frameAccept echoing
// the negotiated config. A client that skips hello keeps the legacy
// semantics instead: frameMode bit latches plus implicit credit
// latching at the first frameCredit. Per recording, the client sends
// the AEDAT container
// as a sequence of frameData frames (any chunking, including the whole
// file at once) terminated by frameEnd; the server answers with one
// frameResult per window — in window order, streamed as soon as each
// window classifies — then frameDone carrying the window count and the
// session's remaining result credits. After frameDone the client may
// start the next recording with its first frameData, or close the
// connection to end the session. A fatal error at either layer is
// reported as a frameError carrying the message, after which the
// connection closes.
//
// Backpressure is credit-based: a frameCredit from the client grants
// the server permission to send that many more frameResults. Credit
// flow is opt-in per session — it switches on at the first frameCredit
// and stays on — and a creditless session keeps the PR5 semantics
// (results stream as fast as TCP accepts them). Under credit flow the
// server buffers at most ServerOptions.ResultWindow undelivered
// results per session and stalls the result writer — never the whole
// server — when the granted window is exhausted, so a slow consumer
// bounds server memory instead of pinning it. frameCredit is accepted
// at any point: mid-recording (interleaved with frameData) and between
// recordings.
//
// Classification is continuously batched by default: sessions submit
// voxelized windows to one shared stream.Scheduler that coalesces
// ready windows from all sessions into large GEMMs and demuxes the
// classes back per session (ServerOptions.SharedBatch). Results are
// bit-identical to per-session batching — the batched forward is
// per-sample exact — and a client can still opt its session onto a
// private pipeline with a frameMode frame (modePrivate) sent before
// its first frameData, the bit-exactness debugging escape hatch.
//
// Because results stream while data is still arriving, a client MUST
// read concurrently with writing (Client.Stream does), or a fully
// synchronous transport such as net.Pipe deadlocks. The server reads
// each connection on a dedicated goroutine that applies credit grants
// the moment they arrive, so a stalled pipeline never blocks its own
// top-ups; the one asymmetry left is a client that uploads far past
// the server's bounded read-ahead runway while refusing to consume
// results — its grants queue behind the unread upload bytes and the
// session is reaped at IdleTimeout rather than waiting forever.
package serve

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/stream"
)

// Frame types. Client-to-server types have the high bit clear,
// server-to-client types have it set.
const (
	frameData       = 0x01 // raw AEDAT container bytes
	frameEnd        = 0x02 // recording complete, no payload
	frameCredit     = 0x03 // grant uint32 more result credits to the server
	frameMode       = 0x04 // legacy session mode bits (modeSize payload, see modePrivate)
	frameSwap       = 0x05 // admin checkpoint swap RPC (phase byte + path; see handshake.go)
	frameHello      = 0x06 // versioned session handshake (SessionConfig payload)
	frameResult     = 0x81 // one window result (resultSize payload)
	frameDone       = 0x82 // all windows emitted; payload = doneSize (see below)
	frameError      = 0x83 // fatal session error; payload = UTF-8 message
	frameAccept     = 0x84 // negotiated SessionConfig echo answering frameHello
	frameSwapResult = 0x85 // SwapStatus answering one frameSwap phase
)

// modePrivate, set in a frameMode payload, opts the session out of the
// server's shared-batch scheduler onto a private pipeline — the
// bit-exactness debugging escape hatch (results are bit-identical
// either way; a private pipeline isolates the session's GEMMs).
// A frameMode must precede the session's first frameData to take
// effect: the mode is latched when the session's pipeline is built,
// at the first recording. Unknown bits are reserved and ignored.
const modePrivate = 0x01

// modeInt8 requests the quantized INT8 precision tier for the session:
// weighted layers run per-channel int8 panels with int32 accumulation
// (snn.TierINT8) instead of the exact FP32 path. Results stay
// deterministic — the int8 kernel is bit-identical at any worker count
// and batch composition — but carry the bounded weight-quantization
// error the exp harness pins. Like modePrivate, the bit is latched
// when the session's pipeline is built. The shared scheduler coalesces
// only same-tier windows into a batch, so mixed-tier sessions share
// the server without sharing GEMMs.
const modeInt8 = 0x02

// modeSize is the frameMode payload: one byte of mode bits.
const modeSize = 1

// maxFramePayload bounds a frame a peer may declare, so a corrupt or
// hostile length prefix cannot balloon a read buffer. Data frames are
// typically a few KB; 1 MB is generous.
const maxFramePayload = 1 << 20

// frameHeaderSize is type + length prefix.
const frameHeaderSize = 5

// resultSize is the frameResult payload: window uint32, startMS
// float64, events uint32, class int32, then the window's estimated
// synaptic-operation count float64 (0 when the server runs without an
// energy model). Pre-energy servers sent the 20-byte prefix only; the
// client accepts both.
const resultSize = 4 + 8 + 4 + 4 + 8

// legacyResultSize is the pre-energy frameResult payload (no SOPs).
const legacyResultSize = 4 + 8 + 4 + 4

// creditSize is the frameCredit payload: uint32 additional credits.
const creditSize = 4

// doneSize is the frameDone payload: window count uint32, then the
// session's remaining result credits uint32 — the client resyncs its
// credit accounting from it, which also absorbs the benign race where
// the first grant lands after the server already streamed results
// creditlessly — then the recording's total estimated SOPs float64.
// Pre-credit servers sent only the 4-byte count and pre-energy servers
// the 8-byte count+credits; the client accepts all three.
const doneSize = 4 + 4 + 8

// legacyDoneSize is the pre-energy frameDone payload (count+credits).
const legacyDoneSize = 4 + 4

// frameWriter emits frames onto a buffered writer. The header scratch
// lives in the struct, not the stack, so the per-window result frame
// costs no allocation (a stack array would escape through the
// bufio.Writer.Write interface path).
type frameWriter struct {
	bw  *bufio.Writer
	hdr [frameHeaderSize]byte
}

func newFrameWriter(w io.Writer) *frameWriter {
	return &frameWriter{bw: bufio.NewWriter(w)}
}

// write emits one frame. The caller flushes.
func (w *frameWriter) write(typ byte, payload []byte) error {
	w.hdr[0] = typ
	binary.LittleEndian.PutUint32(w.hdr[1:], uint32(len(payload)))
	if _, err := w.bw.Write(w.hdr[:]); err != nil {
		return err
	}
	_, err := w.bw.Write(payload)
	return err
}

func (w *frameWriter) flush() error { return w.bw.Flush() }

// readHeader decodes the next frame header.
func readHeader(r *bufio.Reader) (typ byte, n int, err error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, err
	}
	n = int(binary.LittleEndian.Uint32(hdr[1:]))
	if n > maxFramePayload {
		return 0, 0, fmt.Errorf("serve: frame of %d bytes exceeds the %d-byte limit", n, maxFramePayload)
	}
	return hdr[0], n, nil
}

// appendResult encodes one window result after b — the server's
// per-window hot path, allocation-free once b has capacity.
func appendResult(b []byte, r stream.Result) []byte {
	var p [resultSize]byte
	binary.LittleEndian.PutUint32(p[0:], uint32(r.Window))
	binary.LittleEndian.PutUint64(p[4:], math.Float64bits(r.StartMS))
	binary.LittleEndian.PutUint32(p[12:], uint32(r.Events))
	binary.LittleEndian.PutUint32(p[16:], uint32(int32(r.Class)))
	binary.LittleEndian.PutUint64(p[20:], math.Float64bits(r.SOPs))
	return append(b, p[:]...)
}

// decodeResult is appendResult's inverse; a legacy 20-byte payload
// from a pre-energy server decodes with SOPs 0.
func decodeResult(p []byte) (stream.Result, error) {
	if len(p) != resultSize && len(p) != legacyResultSize {
		return stream.Result{}, fmt.Errorf("serve: result frame of %d bytes, want %d or %d", len(p), resultSize, legacyResultSize)
	}
	r := stream.Result{
		Window:  int(binary.LittleEndian.Uint32(p[0:])),
		StartMS: math.Float64frombits(binary.LittleEndian.Uint64(p[4:])),
		Events:  int(binary.LittleEndian.Uint32(p[12:])),
		Class:   int(int32(binary.LittleEndian.Uint32(p[16:]))),
	}
	if len(p) == resultSize {
		r.SOPs = math.Float64frombits(binary.LittleEndian.Uint64(p[20:]))
	}
	return r, nil
}

// readModePayload consumes a frameMode payload whose header was
// already read and returns the mode bits.
func readModePayload(br *bufio.Reader, n int) (byte, error) {
	if n != modeSize {
		return 0, fmt.Errorf("serve: mode frame of %d bytes, want %d", n, modeSize)
	}
	b, err := br.ReadByte()
	if err != nil {
		return 0, err
	}
	return b, nil
}

// readCreditPayload consumes a frameCredit payload whose header was
// already read and returns the granted credit count.
func readCreditPayload(br *bufio.Reader, n int) (int64, error) {
	if n != creditSize {
		return 0, fmt.Errorf("serve: credit frame of %d bytes, want %d", n, creditSize)
	}
	var p [creditSize]byte
	if _, err := io.ReadFull(br, p[:]); err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint32(p[:])), nil
}
