// Package serve is the multi-session event-stream server: it
// multiplexes many concurrent AEDAT recordings — one stream.Pipeline
// per session — over a length-prefixed framing protocol, drawing
// evaluation clones from one shared bounded pool (sized by the tensor
// worker budget, not by the session count) and hot-swapping checkpoints
// under live traffic with RCU pointer-exchange semantics: in-flight
// window batches finish on the clone they hold, everything after picks
// up the new weights.
//
// The wire protocol is deliberately minimal. Every frame is
//
//	[1 byte type][4 bytes little-endian payload length][payload]
//
// A session is one connection serving a sequence of recordings on one
// warmed pipeline. Per recording, the client sends the AEDAT container
// as a sequence of frameData frames (any chunking, including the whole
// file at once) terminated by frameEnd; the server answers with one
// frameResult per window — in window order, streamed as soon as each
// window classifies — then frameDone carrying the window count. After
// frameDone the client may start the next recording with its first
// frameData, or close the connection to end the session. A fatal error
// at either layer is reported as a frameError carrying the message,
// after which the connection closes.
// Because results stream while data is still arriving, a client MUST
// read concurrently with writing (Client.Stream does), or a fully
// synchronous transport such as net.Pipe deadlocks.
package serve

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/stream"
)

// Frame types. Client-to-server types have the high bit clear,
// server-to-client types have it set.
const (
	frameData   = 0x01 // raw AEDAT container bytes
	frameEnd    = 0x02 // recording complete, no payload
	frameResult = 0x81 // one window result (resultSize payload)
	frameDone   = 0x82 // all windows emitted; payload = uint32 count
	frameError  = 0x83 // fatal session error; payload = UTF-8 message
)

// maxFramePayload bounds a frame a peer may declare, so a corrupt or
// hostile length prefix cannot balloon a read buffer. Data frames are
// typically a few KB; 1 MB is generous.
const maxFramePayload = 1 << 20

// frameHeaderSize is type + length prefix.
const frameHeaderSize = 5

// resultSize is the frameResult payload: window uint32, startMS
// float64, events uint32, class int32.
const resultSize = 4 + 8 + 4 + 4

// frameWriter emits frames onto a buffered writer. The header scratch
// lives in the struct, not the stack, so the per-window result frame
// costs no allocation (a stack array would escape through the
// bufio.Writer.Write interface path).
type frameWriter struct {
	bw  *bufio.Writer
	hdr [frameHeaderSize]byte
}

func newFrameWriter(w io.Writer) *frameWriter {
	return &frameWriter{bw: bufio.NewWriter(w)}
}

// write emits one frame. The caller flushes.
func (w *frameWriter) write(typ byte, payload []byte) error {
	w.hdr[0] = typ
	binary.LittleEndian.PutUint32(w.hdr[1:], uint32(len(payload)))
	if _, err := w.bw.Write(w.hdr[:]); err != nil {
		return err
	}
	_, err := w.bw.Write(payload)
	return err
}

func (w *frameWriter) flush() error { return w.bw.Flush() }

// readHeader decodes the next frame header.
func readHeader(r *bufio.Reader) (typ byte, n int, err error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, err
	}
	n = int(binary.LittleEndian.Uint32(hdr[1:]))
	if n > maxFramePayload {
		return 0, 0, fmt.Errorf("serve: frame of %d bytes exceeds the %d-byte limit", n, maxFramePayload)
	}
	return hdr[0], n, nil
}

// appendResult encodes one window result after b — the server's
// per-window hot path, allocation-free once b has capacity.
func appendResult(b []byte, r stream.Result) []byte {
	var p [resultSize]byte
	binary.LittleEndian.PutUint32(p[0:], uint32(r.Window))
	binary.LittleEndian.PutUint64(p[4:], math.Float64bits(r.StartMS))
	binary.LittleEndian.PutUint32(p[12:], uint32(r.Events))
	binary.LittleEndian.PutUint32(p[16:], uint32(int32(r.Class)))
	return append(b, p[:]...)
}

// decodeResult is appendResult's inverse.
func decodeResult(p []byte) (stream.Result, error) {
	if len(p) != resultSize {
		return stream.Result{}, fmt.Errorf("serve: result frame of %d bytes, want %d", len(p), resultSize)
	}
	return stream.Result{
		Window:  int(binary.LittleEndian.Uint32(p[0:])),
		StartMS: math.Float64frombits(binary.LittleEndian.Uint64(p[4:])),
		Events:  int(binary.LittleEndian.Uint32(p[12:])),
		Class:   int(int32(binary.LittleEndian.Uint32(p[16:]))),
	}, nil
}

// frameReader adapts the client's frameData/frameEnd sequence into the
// io.Reader the streaming pipeline consumes: Read hands out payload
// bytes until frameEnd, then io.EOF. It allocates nothing after
// construction.
type frameReader struct {
	br        *bufio.Reader
	remaining int // unread bytes of the current data frame
	done      bool
}

func (r *frameReader) Read(p []byte) (int, error) {
	for r.remaining == 0 {
		if r.done {
			return 0, io.EOF
		}
		typ, n, err := readHeader(r.br)
		if err != nil {
			return 0, err
		}
		switch typ {
		case frameData:
			r.remaining = n
		case frameEnd:
			if n != 0 {
				return 0, fmt.Errorf("serve: end frame carries %d payload bytes", n)
			}
			r.done = true
		default:
			return 0, fmt.Errorf("serve: unexpected frame type 0x%02x from client", typ)
		}
	}
	if len(p) > r.remaining {
		p = p[:r.remaining]
	}
	n, err := r.br.Read(p)
	r.remaining -= n
	return n, err
}

// drain consumes the recording's framing tail through frameEnd. The
// AEDAT decoder reads exactly the event count its header declares and
// never touches the bytes after it, so without this the end-of-record
// frame would leak into the next recording on the session. Payload
// bytes past the container are discarded, not errors: the framing
// layer delimits recordings, the codec validates them.
func (r *frameReader) drain() error {
	var sink [512]byte
	for {
		if _, err := r.Read(sink[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
	}
}
