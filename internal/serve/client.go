package serve

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stream"
)

// DefaultCreditWindow is how many undelivered results a client
// authorizes the server to stream ahead of consumption.
const DefaultCreditWindow = 64

// DefaultDialTimeout bounds Dial's connection establishment.
const DefaultDialTimeout = 10 * time.Second

// ClientOptions configure a Client's flow control and deadlines.
type ClientOptions struct {
	// CreditWindow is the result window granted to the server: it may
	// stream at most this many results past what emit has consumed.
	// The client tops the window up as results are consumed, so a fast
	// consumer never stalls the server while a slow one bounds its
	// memory. 0 uses DefaultCreditWindow; negative disables credit
	// flow entirely (the pre-credit protocol).
	CreditWindow int
	// DialTimeout bounds Dial. 0 uses DefaultDialTimeout, negative
	// disables.
	DialTimeout time.Duration
	// IdleTimeout bounds the silence between server frames — a wedged
	// server fails the Stream instead of hanging the generator. 0 uses
	// DefaultIdleTimeout, negative disables.
	IdleTimeout time.Duration
	// WriteTimeout bounds each outgoing frame write. 0 uses
	// DefaultWriteTimeout, negative disables.
	WriteTimeout time.Duration
	// PrivateBatch opts this session out of the server's shared-batch
	// scheduler onto a private pipeline (a frameMode frame sent ahead
	// of the first recording). Results are bit-identical either way;
	// this is the bit-exactness debugging escape hatch.
	PrivateBatch bool
	// Int8 requests the quantized INT8 precision tier for the session
	// (modeInt8 on the same frameMode frame): weighted layers run
	// per-channel int8 panels instead of exact FP32. Deterministic, but
	// carries the pinned weight-quantization error; a server without
	// int8 panels rejects the session's first recording.
	Int8 bool
}

// Client speaks the serve framing protocol over one session
// connection. It is not safe for concurrent use; one Stream call runs
// at a time, and a session may Stream several recordings back to back.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	pbuf []byte
	o    ClientOptions

	// wmu serializes the two frame producers — the upload goroutine's
	// data frames and the read loop's credit grants — onto the shared
	// frameWriter. Held per frame, so grants interleave with chunks.
	wmu sync.Mutex
	fw  *frameWriter

	// granted is the client-side credit account: how many results the
	// server may still send. Decremented per consumed result on the
	// read loop, topped up under wmu, resynced from frameDone.
	granted atomic.Int64
	started bool

	// lastSOPs is the total estimated synaptic-operation count the
	// server reported for the most recent recording (0 from a
	// pre-energy server). Read via LastSOPs after Stream returns.
	lastSOPs float64
}

// NewClient wraps an established session connection (TCP or net.Pipe)
// with default options.
func NewClient(conn net.Conn) *Client {
	return NewClientOptions(conn, ClientOptions{})
}

// NewClientOptions wraps an established session connection.
func NewClientOptions(conn net.Conn, o ClientOptions) *Client {
	if o.CreditWindow == 0 {
		o.CreditWindow = DefaultCreditWindow
	}
	if o.CreditWindow < 0 {
		o.CreditWindow = 0
	}
	o.IdleTimeout = normTimeout(o.IdleTimeout, DefaultIdleTimeout)
	o.WriteTimeout = normTimeout(o.WriteTimeout, DefaultWriteTimeout)
	dc := &deadlineConn{conn: conn, idle: o.IdleTimeout, write: o.WriteTimeout}
	return &Client{conn: conn, br: bufio.NewReader(dc), fw: newFrameWriter(dc), o: o}
}

// Dial connects a session to a serve address.
func Dial(addr string, o ClientOptions) (*Client, error) {
	dt := normTimeout(o.DialTimeout, DefaultDialTimeout)
	var conn net.Conn
	var err error
	if dt > 0 {
		conn, err = net.DialTimeout("tcp", addr, dt)
	} else {
		conn, err = net.Dial("tcp", addr)
	}
	if err != nil {
		return nil, err
	}
	return NewClientOptions(conn, o), nil
}

// Close ends the session.
func (c *Client) Close() error { return c.conn.Close() }

// LastSOPs returns the server's total estimated synaptic-operation
// count for the most recent completed recording, 0 when the server
// runs without an energy model (or predates one). Valid after Stream
// returns nil; not safe concurrently with Stream.
func (c *Client) LastSOPs() float64 { return c.lastSOPs }

// Stream sends one AEDAT recording and calls emit for every window
// result, in window order, as the server classifies them. It returns
// the server's window count. Sending and receiving run concurrently —
// the server streams results while the recording is still uploading —
// which is what makes the protocol deadlock-free over synchronous
// transports. Under credit flow (the default) the initial grant rides
// ahead of the first data frame on the upload goroutine, and top-ups
// are sent from the read loop once half the window is consumed.
func (c *Client) Stream(recording io.Reader, emit func(stream.Result) error) (int, error) {
	initialGrant, sendMode := 0, false
	if !c.started {
		c.started = true
		sendMode = c.o.PrivateBatch || c.o.Int8
		if c.o.CreditWindow > 0 {
			initialGrant = c.o.CreditWindow
		}
	}
	writeErr := make(chan error, 1)
	go func() { writeErr <- c.send(recording, initialGrant, sendMode) }()

	for {
		typ, n, err := readHeader(c.br)
		if err != nil {
			c.conn.Close()
			<-writeErr
			return 0, fmt.Errorf("serve: reading result frame: %w", err)
		}
		if cap(c.pbuf) < n {
			c.pbuf = make([]byte, n)
		}
		payload := c.pbuf[:n]
		if _, err := io.ReadFull(c.br, payload); err != nil {
			c.conn.Close()
			<-writeErr
			return 0, err
		}
		switch typ {
		case frameResult:
			res, err := decodeResult(payload)
			if err == nil && emit != nil {
				err = emit(res)
			}
			if err == nil {
				err = c.consumed()
			}
			if err != nil {
				c.conn.Close()
				<-writeErr
				return 0, err
			}
		case frameDone:
			if n != 4 && n != legacyDoneSize && n != doneSize {
				c.conn.Close()
				<-writeErr
				return 0, fmt.Errorf("serve: done frame of %d bytes", n)
			}
			count := int(binary.LittleEndian.Uint32(payload))
			c.lastSOPs = 0
			if n == doneSize {
				c.lastSOPs = math.Float64frombits(binary.LittleEndian.Uint64(payload[8:]))
			}
			if err := <-writeErr; err != nil {
				return count, err
			}
			if n >= legacyDoneSize && c.o.CreditWindow > 0 {
				// Resync from the server's view — it also absorbs the
				// benign startup race where results streamed before the
				// first grant was processed — then restore a full
				// window for the next recording.
				c.granted.Store(int64(binary.LittleEndian.Uint32(payload[4:])))
				if err := c.topUp(); err != nil {
					return count, err
				}
			}
			return count, nil
		case frameError:
			// The server aborted; it may have stopped reading our
			// upload, so unblock the sender before reporting.
			msg := string(payload)
			c.conn.Close()
			<-writeErr
			return 0, errors.New(msg)
		default:
			c.conn.Close()
			<-writeErr
			return 0, fmt.Errorf("serve: unexpected frame type 0x%02x from server", typ)
		}
	}
}

// consumed accounts one delivered result and tops the server's window
// up once half of it is spent — batched grants, not one per result, so
// credit traffic stays a small fraction of result traffic.
func (c *Client) consumed() error {
	if c.o.CreditWindow == 0 {
		return nil
	}
	if c.granted.Add(-1) <= int64(c.o.CreditWindow/2) {
		return c.topUp()
	}
	return nil
}

// topUp grants the server credits back to a full window.
func (c *Client) topUp() error {
	n := int64(c.o.CreditWindow) - c.granted.Load()
	if n <= 0 {
		return nil
	}
	if err := c.writeCredit(uint32(n)); err != nil {
		return err
	}
	c.granted.Add(n)
	return nil
}

func (c *Client) writeCredit(n uint32) error {
	var p [creditSize]byte
	binary.LittleEndian.PutUint32(p[:], n)
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.fw.write(frameCredit, p[:]); err != nil {
		return err
	}
	return c.fw.flush()
}

// send uploads the recording as data frames and terminates it. The
// session-opening frames — the mode bits, then the initial credit
// grant (first recording of the session) — lead the upload from this
// goroutine: sending them synchronously from Stream would deadlock a
// synchronous transport against a server that writes before reading
// (e.g. the capacity refusal). The mode frame precedes the first data
// frame, as the server's pipeline-build latch requires.
func (c *Client) send(recording io.Reader, initialGrant int, sendMode bool) error {
	if sendMode {
		var bits byte
		if c.o.PrivateBatch {
			bits |= modePrivate
		}
		if c.o.Int8 {
			bits |= modeInt8
		}
		if err := c.writeFrame(frameMode, []byte{bits}); err != nil {
			return err
		}
	}
	if initialGrant > 0 {
		if err := c.writeCredit(uint32(initialGrant)); err != nil {
			return err
		}
		c.granted.Add(int64(initialGrant))
	}
	buf := make([]byte, 32<<10)
	for {
		n, err := recording.Read(buf)
		if n > 0 {
			if werr := c.writeFrame(frameData, buf[:n]); werr != nil {
				return werr
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
	}
	return c.writeFrame(frameEnd, nil)
}

// writeFrame emits and flushes one frame under the write lock. Flushed
// per frame so the server classifies while the rest of the recording
// uploads, and so grants never sit buffered behind a held lock.
func (c *Client) writeFrame(typ byte, p []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.fw.write(typ, p); err != nil {
		return err
	}
	return c.fw.flush()
}
