package serve

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/snn"
	"repro/internal/stream"
)

// DefaultCreditWindow is how many undelivered results a client
// authorizes the server to stream ahead of consumption.
const DefaultCreditWindow = 64

// DefaultDialTimeout bounds Dial's connection establishment.
const DefaultDialTimeout = 10 * time.Second

// ClientOptions configure a Client: the session configuration it
// negotiates and the transport deadlines it applies.
type ClientOptions struct {
	// Config is the session configuration to negotiate: private
	// batching, precision tier, credit window, protocol version. Zero
	// values mean defaults (see SessionConfig); invalid values — a
	// credit window below Creditless, an unknown tier, a version this
	// build cannot speak — are reported as errors by the first Client
	// call, never silently clamped.
	Config SessionConfig
	// Legacy skips the hello handshake and speaks the pre-PR10 wire
	// protocol: mode bits latched via frameMode, credit flow switched
	// on implicitly by the first frameCredit. Config still supplies the
	// settings; only their encoding changes. Kept as a first-class
	// option so the bit-latching fallback stays regression-tested.
	Legacy bool
	// DialTimeout bounds Dial. 0 uses DefaultDialTimeout, negative
	// disables.
	DialTimeout time.Duration
	// IdleTimeout bounds the silence between server frames — a wedged
	// server fails the Stream instead of hanging the generator. 0 uses
	// DefaultIdleTimeout, negative disables.
	IdleTimeout time.Duration
	// WriteTimeout bounds each outgoing frame write. 0 uses
	// DefaultWriteTimeout, negative disables.
	WriteTimeout time.Duration
}

// Validate rejects option values the protocol cannot express. The
// timeouts keep their documented conventions (0 default, negative
// disabled) and are never errors.
func (o ClientOptions) Validate() error {
	return o.Config.Validate()
}

// Client speaks the serve framing protocol over one session
// connection. It is not safe for concurrent use; one Stream call runs
// at a time, and a session may Stream several recordings back to back.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	pbuf []byte
	o    ClientOptions
	// cfg is the resolved session config (wire form: CreditWindow 0
	// means creditless), err a construction-time validation failure
	// surfaced by the first call that would touch the wire.
	cfg SessionConfig
	err error

	// wmu serializes the two frame producers — the upload goroutine's
	// data frames and the read loop's credit grants — onto the shared
	// frameWriter. Held per frame, so grants interleave with chunks.
	wmu sync.Mutex
	fw  *frameWriter

	// granted is the client-side credit account: how many results the
	// server may still send. Decremented per consumed result on the
	// read loop, topped up under wmu, resynced from frameDone.
	granted atomic.Int64
	started bool

	// negotiated holds the server's accept echo once it has arrived.
	negotiated SessionConfig
	accepted   bool

	// lastSOPs is the total estimated synaptic-operation count the
	// server reported for the most recent recording (0 from a
	// pre-energy server). Read via LastSOPs after Stream returns.
	lastSOPs float64
}

// NewClient wraps an established session connection (TCP or net.Pipe)
// with default options.
func NewClient(conn net.Conn) *Client {
	return NewClientOptions(conn, ClientOptions{})
}

// NewClientOptions wraps an established session connection. Invalid
// options do not fail construction — the signature predates
// validation — but poison the client: the first Stream, Ping, or swap
// RPC reports the validation error without touching the wire.
func NewClientOptions(conn net.Conn, o ClientOptions) *Client {
	o.IdleTimeout = normTimeout(o.IdleTimeout, DefaultIdleTimeout)
	o.WriteTimeout = normTimeout(o.WriteTimeout, DefaultWriteTimeout)
	dc := &deadlineConn{conn: conn, idle: o.IdleTimeout, write: o.WriteTimeout}
	c := &Client{conn: conn, br: bufio.NewReader(dc), fw: newFrameWriter(dc), o: o}
	if err := o.Validate(); err != nil {
		c.err = err
		return c
	}
	c.cfg = o.Config.withDefaults()
	return c
}

// Dial connects a session to a serve address.
func Dial(addr string, o ClientOptions) (*Client, error) {
	dt := normTimeout(o.DialTimeout, DefaultDialTimeout)
	var conn net.Conn
	var err error
	if dt > 0 {
		conn, err = net.DialTimeout("tcp", addr, dt)
	} else {
		conn, err = net.Dial("tcp", addr)
	}
	if err != nil {
		return nil, err
	}
	return NewClientOptions(conn, o), nil
}

// Close ends the session.
func (c *Client) Close() error { return c.conn.Close() }

// LastSOPs returns the server's total estimated synaptic-operation
// count for the most recent completed recording, 0 when the server
// runs without an energy model (or predates one). Valid after Stream
// returns nil; not safe concurrently with Stream.
func (c *Client) LastSOPs() float64 { return c.lastSOPs }

// Negotiated returns the server's accept echo — the effective session
// configuration — and whether it has arrived yet. It is valid after the
// first Stream or Ping returns (a legacy session never receives one).
// Not safe concurrently with Stream.
func (c *Client) Negotiated() (SessionConfig, bool) {
	return c.negotiated, c.accepted
}

// Stream sends one AEDAT recording and calls emit for every window
// result, in window order, as the server classifies them. It returns
// the server's window count. Sending and receiving run concurrently —
// the server streams results while the recording is still uploading —
// which is what makes the protocol deadlock-free over synchronous
// transports. The session's first Stream leads with the hello frame
// (or the legacy mode/credit opening), whose credit window doubles as
// the initial grant; top-ups are sent from the read loop once half the
// window is consumed.
func (c *Client) Stream(recording io.Reader, emit func(stream.Result) error) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	opening := !c.started
	c.started = true
	writeErr := make(chan error, 1)
	go func() { writeErr <- c.send(recording, opening) }()

	for {
		typ, n, err := readHeader(c.br)
		if err != nil {
			c.conn.Close()
			<-writeErr
			return 0, fmt.Errorf("serve: reading result frame: %w", err)
		}
		if cap(c.pbuf) < n {
			c.pbuf = make([]byte, n)
		}
		payload := c.pbuf[:n]
		if _, err := io.ReadFull(c.br, payload); err != nil {
			c.conn.Close()
			<-writeErr
			return 0, err
		}
		switch typ {
		case frameResult:
			res, err := decodeResult(payload)
			if err == nil && emit != nil {
				err = emit(res)
			}
			if err == nil {
				err = c.consumed()
			}
			if err != nil {
				c.conn.Close()
				<-writeErr
				return 0, err
			}
		case frameAccept:
			if err := c.applyAccept(payload); err != nil {
				c.conn.Close()
				<-writeErr
				return 0, err
			}
		case frameDone:
			if n != 4 && n != legacyDoneSize && n != doneSize {
				c.conn.Close()
				<-writeErr
				return 0, fmt.Errorf("serve: done frame of %d bytes", n)
			}
			count := int(binary.LittleEndian.Uint32(payload))
			c.lastSOPs = 0
			if n == doneSize {
				c.lastSOPs = math.Float64frombits(binary.LittleEndian.Uint64(payload[8:]))
			}
			if err := <-writeErr; err != nil {
				return count, err
			}
			if n >= legacyDoneSize && c.cfg.CreditWindow > 0 {
				// Resync from the server's view — it also absorbs the
				// benign startup race where results streamed before the
				// first grant was processed — then restore a full
				// window for the next recording.
				c.granted.Store(int64(binary.LittleEndian.Uint32(payload[4:])))
				if err := c.topUp(); err != nil {
					return count, err
				}
			}
			return count, nil
		case frameError:
			// The server aborted; it may have stopped reading our
			// upload, so unblock the sender before reporting.
			msg := string(payload)
			c.conn.Close()
			<-writeErr
			return 0, errors.New(msg)
		default:
			c.conn.Close()
			<-writeErr
			return 0, fmt.Errorf("serve: unexpected frame type 0x%02x from server", typ)
		}
	}
}

// applyAccept records the server's negotiated-config echo.
func (c *Client) applyAccept(payload []byte) error {
	cfg, err := decodeHello(payload)
	if err != nil {
		return fmt.Errorf("serve: decoding accept frame: %w", err)
	}
	c.negotiated, c.accepted = cfg, true
	return nil
}

// Ping performs the hello/accept handshake without streaming a
// recording — the router's health probe, and a cheap way to learn the
// server's effective config. Requires the hello protocol (a legacy
// session has no handshake to complete). Safe to call before Stream;
// redundant calls return immediately once the accept has arrived.
func (c *Client) Ping() error {
	if c.err != nil {
		return c.err
	}
	if c.o.Legacy {
		return errors.New("serve: Ping requires the hello handshake (non-legacy client)")
	}
	if !c.started {
		c.started = true
		if err := c.sendOpening(); err != nil {
			return err
		}
	}
	for !c.accepted {
		typ, payload, err := c.readFrame()
		if err != nil {
			return err
		}
		switch typ {
		case frameAccept:
			if err := c.applyAccept(payload); err != nil {
				return err
			}
		case frameError:
			return errors.New(string(payload))
		default:
			return fmt.Errorf("serve: unexpected frame type 0x%02x awaiting accept", typ)
		}
	}
	return nil
}

// SwapPrepare asks the server to stage the checkpoint at path (a
// server-side file) without serving it: phase one of the all-or-nothing
// hot-swap fan-out. The staging is connection-scoped — commit or abort
// must ride the same Client. Requires ServerOptions.AdminSwap.
func (c *Client) SwapPrepare(path string) (SwapStatus, error) {
	return c.swapRPC(swapPrepare, path)
}

// SwapCommit makes this connection's prepared checkpoint the served
// master and reports the new generation and fingerprint.
func (c *Client) SwapCommit() (SwapStatus, error) {
	return c.swapRPC(swapCommit, "")
}

// SwapAbort discards this connection's prepared checkpoint, reporting
// the generation and fingerprint still being served.
func (c *Client) SwapAbort() (SwapStatus, error) {
	return c.swapRPC(swapAbort, "")
}

func (c *Client) swapRPC(phase byte, path string) (SwapStatus, error) {
	if c.err != nil {
		return SwapStatus{}, c.err
	}
	if err := c.writeFrame(frameSwap, append([]byte{phase}, path...)); err != nil {
		return SwapStatus{}, err
	}
	for {
		typ, payload, err := c.readFrame()
		if err != nil {
			return SwapStatus{}, err
		}
		switch typ {
		case frameSwapResult:
			return decodeSwapResult(payload)
		case frameAccept:
			// A hello sent earlier on this session may still be echoing.
			if err := c.applyAccept(payload); err != nil {
				return SwapStatus{}, err
			}
		case frameError:
			return SwapStatus{}, errors.New(string(payload))
		default:
			return SwapStatus{}, fmt.Errorf("serve: unexpected frame type 0x%02x awaiting swap result", typ)
		}
	}
}

// readFrame reads one frame into the reusable payload buffer.
func (c *Client) readFrame() (byte, []byte, error) {
	typ, n, err := readHeader(c.br)
	if err != nil {
		return 0, nil, err
	}
	if cap(c.pbuf) < n {
		c.pbuf = make([]byte, n)
	}
	payload := c.pbuf[:n]
	if _, err := io.ReadFull(c.br, payload); err != nil {
		return 0, nil, err
	}
	return typ, payload, nil
}

// consumed accounts one delivered result and tops the server's window
// up once half of it is spent — batched grants, not one per result, so
// credit traffic stays a small fraction of result traffic.
func (c *Client) consumed() error {
	if c.cfg.CreditWindow == 0 {
		return nil
	}
	if c.granted.Add(-1) <= int64(c.cfg.CreditWindow/2) {
		return c.topUp()
	}
	return nil
}

// topUp grants the server credits back to a full window.
func (c *Client) topUp() error {
	n := int64(c.cfg.CreditWindow) - c.granted.Load()
	if n <= 0 {
		return nil
	}
	if err := c.writeCredit(uint32(n)); err != nil {
		return err
	}
	c.granted.Add(n)
	return nil
}

func (c *Client) writeCredit(n uint32) error {
	var p [creditSize]byte
	binary.LittleEndian.PutUint32(p[:], n)
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.fw.write(frameCredit, p[:]); err != nil {
		return err
	}
	return c.fw.flush()
}

// sendOpening writes the session-opening frames. Current protocol: one
// hello carrying the whole config, whose credit window is also the
// initial grant. Legacy protocol: mode bits (only when set), then the
// initial credit grant.
func (c *Client) sendOpening() error {
	if !c.o.Legacy {
		if err := c.writeFrame(frameHello, appendHello(nil, c.cfg)); err != nil {
			return err
		}
		if c.cfg.CreditWindow > 0 {
			c.granted.Add(int64(c.cfg.CreditWindow))
		}
		return nil
	}
	if c.cfg.PrivateBatch || c.cfg.Tier == snn.TierINT8 {
		var bits byte
		if c.cfg.PrivateBatch {
			bits |= modePrivate
		}
		if c.cfg.Tier == snn.TierINT8 {
			bits |= modeInt8
		}
		if err := c.writeFrame(frameMode, []byte{bits}); err != nil {
			return err
		}
	}
	if c.cfg.CreditWindow > 0 {
		if err := c.writeCredit(uint32(c.cfg.CreditWindow)); err != nil {
			return err
		}
		c.granted.Add(int64(c.cfg.CreditWindow))
	}
	return nil
}

// send uploads the recording as data frames and terminates it. The
// session-opening frames (first recording of the session) lead the
// upload from this goroutine: sending them synchronously from Stream
// would deadlock a synchronous transport against a server that writes
// before reading (e.g. the capacity refusal). The hello/mode frame
// precedes the first data frame, as the server's pipeline-build latch
// requires.
func (c *Client) send(recording io.Reader, opening bool) error {
	if opening {
		if err := c.sendOpening(); err != nil {
			return err
		}
	}
	buf := make([]byte, 32<<10)
	for {
		n, err := recording.Read(buf)
		if n > 0 {
			if werr := c.writeFrame(frameData, buf[:n]); werr != nil {
				return werr
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
	}
	return c.writeFrame(frameEnd, nil)
}

// writeFrame emits and flushes one frame under the write lock. Flushed
// per frame so the server classifies while the rest of the recording
// uploads, and so grants never sit buffered behind a held lock.
func (c *Client) writeFrame(typ byte, p []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.fw.write(typ, p); err != nil {
		return err
	}
	return c.fw.flush()
}
