package serve

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"

	"repro/internal/stream"
)

// Client speaks the serve framing protocol over one session
// connection. It is not safe for concurrent use; one Stream call runs
// at a time, and a session may Stream several recordings back to back.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	fw   *frameWriter
	pbuf []byte
}

// NewClient wraps an established session connection (TCP or net.Pipe).
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, br: bufio.NewReader(conn), fw: newFrameWriter(conn)}
}

// Close ends the session.
func (c *Client) Close() error { return c.conn.Close() }

// Stream sends one AEDAT recording and calls emit for every window
// result, in window order, as the server classifies them. It returns
// the server's window count. Sending and receiving run concurrently —
// the server streams results while the recording is still uploading —
// which is what makes the protocol deadlock-free over synchronous
// transports.
func (c *Client) Stream(recording io.Reader, emit func(stream.Result) error) (int, error) {
	writeErr := make(chan error, 1)
	go func() { writeErr <- c.send(recording) }()

	for {
		typ, n, err := readHeader(c.br)
		if err != nil {
			c.conn.Close()
			<-writeErr
			return 0, fmt.Errorf("serve: reading result frame: %w", err)
		}
		if cap(c.pbuf) < n {
			c.pbuf = make([]byte, n)
		}
		payload := c.pbuf[:n]
		if _, err := io.ReadFull(c.br, payload); err != nil {
			c.conn.Close()
			<-writeErr
			return 0, err
		}
		switch typ {
		case frameResult:
			res, err := decodeResult(payload)
			if err == nil && emit != nil {
				err = emit(res)
			}
			if err != nil {
				c.conn.Close()
				<-writeErr
				return 0, err
			}
		case frameDone:
			if n != 4 {
				c.conn.Close()
				<-writeErr
				return 0, fmt.Errorf("serve: done frame of %d bytes", n)
			}
			count := int(binary.LittleEndian.Uint32(payload))
			if err := <-writeErr; err != nil {
				return count, err
			}
			return count, nil
		case frameError:
			// The server aborted; it may have stopped reading our
			// upload, so unblock the sender before reporting.
			msg := string(payload)
			c.conn.Close()
			<-writeErr
			return 0, errors.New(msg)
		default:
			c.conn.Close()
			<-writeErr
			return 0, fmt.Errorf("serve: unexpected frame type 0x%02x from server", typ)
		}
	}
}

// send uploads the recording as data frames and terminates it.
func (c *Client) send(recording io.Reader) error {
	buf := make([]byte, 32<<10)
	for {
		n, err := recording.Read(buf)
		if n > 0 {
			if werr := c.fw.write(frameData, buf[:n]); werr != nil {
				return werr
			}
			// Flush per chunk so the server classifies while the rest
			// of the recording uploads.
			if werr := c.fw.flush(); werr != nil {
				return werr
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
	}
	if err := c.fw.write(frameEnd, nil); err != nil {
		return err
	}
	return c.fw.flush()
}
