package serve

import (
	"bytes"
	"errors"
	"net"
	"os"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/stream"
	"repro/internal/tensor"
)

func hardenedServer(t *testing.T, o ServerOptions) *Server {
	t.Helper()
	if o.Pipeline.WindowMS == 0 {
		o.Pipeline = stream.Options{WindowMS: 45, Steps: 4, Batch: 2, ChunkEvents: 64}
	}
	srv, err := NewServer(testNet(4, 61), o)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// waitActive polls until srv holds exactly n active sessions — the
// admission tests need the holder parked in its slot before a
// contender arrives.
func waitActive(t *testing.T, srv *Server, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for srv.ActiveSessions() != n {
		if time.Now().After(deadline) {
			t.Fatalf("server never reached %d active sessions", n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServeHalfOpenClientReaped is the IdleTimeout regression: a
// client that connects and then goes silent must lose its session slot
// within the idle deadline instead of holding it forever (the
// pre-deadline server blocked in the first Peek indefinitely).
func TestServeHalfOpenClientReaped(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(1)
	srv := hardenedServer(t, ServerOptions{MaxSessions: 1, PoolSize: 1,
		IdleTimeout: 50 * time.Millisecond, WriteTimeout: 50 * time.Millisecond})

	cs, ss := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- srv.ServeConn(ss) }()

	select {
	case err := <-done:
		if err == nil {
			t.Fatal("half-open session ended without an error")
		}
		var ne net.Error
		if !errors.As(err, &ne) && !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Fatalf("half-open session ended with %v, want a deadline error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("half-open client still holds its session slot after 5s")
	}
	cs.Close()
	if n := srv.ActiveSessions(); n != 0 {
		t.Fatalf("%d sessions active after the reap", n)
	}

	// The freed slot must serve the next, live client.
	data := testRecording(t, 1, 200, 7)
	cl, sdone := startSession(srv)
	defer cl.Close()
	if _, err := cl.Stream(bytes.NewReader(data), nil); err != nil {
		t.Fatalf("session after the reap failed: %v", err)
	}
	cl.Close()
	<-sdone
}

// TestServeRefusalWriteDeadline is the WriteTimeout regression on the
// admission path: refusing a connection that never reads must not
// block ServeConn (pre-deadline it parked forever in the frameError
// write on a synchronous transport).
func TestServeRefusalWriteDeadline(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(1)
	srv := hardenedServer(t, ServerOptions{MaxSessions: 1, PoolSize: 1,
		WriteTimeout: 50 * time.Millisecond})

	// Occupy the only slot with an idle but live session, and wait for
	// it to actually hold the slot before contending.
	holder, hdone := startSession(srv)
	defer holder.Close()
	waitActive(t, srv, 1)

	// The refused connection never reads: on net.Pipe the refusal write
	// can only complete by deadline.
	cs, ss := net.Pipe()
	defer cs.Close()
	done := make(chan error, 1)
	go func() { done <- srv.ServeConn(ss) }()
	select {
	case err := <-done:
		if !errors.Is(err, ErrAtCapacity) {
			t.Fatalf("refusal returned %v, want ErrAtCapacity", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("capacity refusal to an unread socket blocked past 5s")
	}
	if got := srv.Metrics().SessionsRefused.Load(); got != 1 {
		t.Fatalf("SessionsRefused = %d, want 1", got)
	}
	holder.Close()
	<-hdone
}

// scriptedListener feeds Serve a fixed sequence of Accept outcomes.
type scriptedListener struct {
	script []func() (net.Conn, error)
	i      int
}

func (l *scriptedListener) Accept() (net.Conn, error) {
	if l.i >= len(l.script) {
		return nil, net.ErrClosed
	}
	step := l.script[l.i]
	l.i++
	return step()
}
func (l *scriptedListener) Close() error   { return nil }
func (l *scriptedListener) Addr() net.Addr { return &net.TCPAddr{} }

// timeoutErr is a transient net.Error (Timeout true).
type timeoutErr struct{}

func (timeoutErr) Error() string   { return "accept timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

// TestServeAcceptBackoffRetriesTransient is the accept-loop
// regression: transient errors (timeouts, ECONNABORTED, EMFILE) must
// be retried with backoff — the connection behind them still gets
// served — while a permanent listener error still ends Serve.
func TestServeAcceptBackoffRetriesTransient(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(1)
	srv := hardenedServer(t, ServerOptions{MaxSessions: 2, PoolSize: 1})

	cs, ss := net.Pipe()
	permanent := errors.New("listener torn down")
	transient := []error{
		timeoutErr{},
		&net.OpError{Op: "accept", Err: syscall.ECONNABORTED},
		&net.OpError{Op: "accept", Err: syscall.EMFILE},
	}
	var script []func() (net.Conn, error)
	for _, te := range transient {
		te := te
		script = append(script, func() (net.Conn, error) { return nil, te })
	}
	script = append(script,
		func() (net.Conn, error) { return ss, nil },
		func() (net.Conn, error) { return nil, permanent },
	)

	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(&scriptedListener{script: script}) }()

	// The session accepted after the transient burst must work.
	cl := NewClient(cs)
	defer cl.Close()
	data := testRecording(t, 2, 200, 9)
	if _, err := cl.Stream(bytes.NewReader(data), nil); err != nil {
		t.Fatalf("session accepted after transient errors failed: %v", err)
	}
	cl.Close()

	select {
	case err := <-serveDone:
		if !errors.Is(err, permanent) {
			t.Fatalf("Serve returned %v, want the permanent listener error", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return on the permanent listener error")
	}
	if got := srv.Metrics().AcceptRetries.Load(); got != int64(len(transient)) {
		t.Fatalf("AcceptRetries = %d, want %d", got, len(transient))
	}
	srv.Close()
}

// TestServeQueueAdmission: with QueueTimeout set, a connection hitting
// a full server waits for a slot instead of being refused, and is
// served once one frees.
func TestServeQueueAdmission(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(1)
	srv := hardenedServer(t, ServerOptions{MaxSessions: 1, PoolSize: 1,
		QueueTimeout: 10 * time.Second})

	holder, hdone := startSession(srv)
	waitActive(t, srv, 1)
	queued, qdone := startSession(srv)
	defer queued.Close()

	// Wait until the second connection is actually parked in the queue.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Metrics().SessionsQueued.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second connection never queued")
		}
		time.Sleep(time.Millisecond)
	}
	holder.Close() // frees the slot; ServeConn(holder) returns
	<-hdone

	data := testRecording(t, 3, 200, 11)
	if _, err := queued.Stream(bytes.NewReader(data), nil); err != nil {
		t.Fatalf("queued session failed once admitted: %v", err)
	}
	queued.Close()
	<-qdone
	m := srv.Metrics()
	if m.SessionsQueued.Load() != 1 || m.QueueTimeouts.Load() != 0 || m.SessionsRefused.Load() != 0 {
		t.Fatalf("queued=%d timeouts=%d refused=%d, want 1/0/0",
			m.SessionsQueued.Load(), m.QueueTimeouts.Load(), m.SessionsRefused.Load())
	}
}

// TestServeQueueTimeout: a queued connection that never gets a slot is
// refused at the deadline with the capacity error.
func TestServeQueueTimeout(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(1)
	srv := hardenedServer(t, ServerOptions{MaxSessions: 1, PoolSize: 1,
		QueueTimeout: 30 * time.Millisecond})

	holder, hdone := startSession(srv)
	defer holder.Close()
	waitActive(t, srv, 1)

	queued, qdone := startSession(srv)
	defer queued.Close()
	if _, err := queued.Stream(bytes.NewReader(testRecording(t, 0, 200, 13)), nil); err == nil {
		t.Fatal("queued session succeeded, want the capacity refusal")
	} else if want := ErrAtCapacity.Error(); err.Error() != want {
		t.Fatalf("queued session error = %q, want %q", err.Error(), want)
	}
	select {
	case err := <-qdone:
		if !errors.Is(err, ErrAtCapacity) {
			t.Fatalf("ServeConn returned %v, want ErrAtCapacity", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued ServeConn did not return after its timeout")
	}
	m := srv.Metrics()
	if m.QueueTimeouts.Load() != 1 || m.SessionsRefused.Load() != 1 {
		t.Fatalf("timeouts=%d refused=%d, want 1/1", m.QueueTimeouts.Load(), m.SessionsRefused.Load())
	}
	holder.Close()
	<-hdone
}

// TestServeCreditFlowMatchesReference: a tiny credit window with a
// deliberately slow consumer still yields bit-identical results in
// order, the writer stalls are counted, and no results stay buffered
// after the session drains.
func TestServeCreditFlowMatchesReference(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(2)
	master := testNet(4, 61)
	o := stream.Options{WindowMS: 45, Steps: 4, Batch: 2, ChunkEvents: 64}
	srv, err := NewServer(master, ServerOptions{Pipeline: o, MaxSessions: 2, PoolSize: 2,
		ResultWindow: 4})
	if err != nil {
		t.Fatal(err)
	}
	data := testRecording(t, 1, 500, 17)
	want := standalone(t, master, data, o)

	cl, done := startSessionOptions(srv, ClientOptions{Config: SessionConfig{CreditWindow: 1}})
	defer cl.Close()
	var got []stream.Result
	var consumed atomic.Int64
	n, err := cl.Stream(bytes.NewReader(data), func(r stream.Result) error {
		time.Sleep(2 * time.Millisecond)
		consumed.Add(1)
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(want) {
		t.Fatalf("done frame reports %d windows, want %d", n, len(want))
	}
	assertResults(t, "credit flow", want, got)
	cl.Close()
	<-done

	m := srv.Metrics()
	if m.CreditStalls.Load() == 0 {
		t.Fatal("a 1-credit window with a slow consumer produced no credit stalls")
	}
	if b := m.ResultsBuffered.Load(); b != 0 {
		t.Fatalf("%d results still buffered after the session drained", b)
	}
	if sent := m.ResultsSent.Load(); sent != int64(len(want)) {
		t.Fatalf("ResultsSent = %d, want %d", sent, len(want))
	}
}

// TestServeLegacyClientWithoutCredits: a client that never grants
// credits gets the pre-credit protocol — results stream as TCP allows,
// the 8-byte done frame is understood, nothing stalls.
func TestServeLegacyClientWithoutCredits(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(1)
	master := testNet(4, 61)
	o := stream.Options{WindowMS: 45, Steps: 4, Batch: 2, ChunkEvents: 64}
	srv, err := NewServer(master, ServerOptions{Pipeline: o, MaxSessions: 1, PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	data := testRecording(t, 2, 300, 19)
	want := standalone(t, master, data, o)

	cl, done := startSessionOptions(srv, ClientOptions{Legacy: true, Config: SessionConfig{CreditWindow: Creditless}})
	defer cl.Close()
	var got []stream.Result
	if _, err := cl.Stream(bytes.NewReader(data), func(r stream.Result) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	assertResults(t, "legacy creditless", want, got)
	cl.Close()
	<-done
	if s := srv.Metrics().CreditStalls.Load(); s != 0 {
		t.Fatalf("creditless session recorded %d credit stalls", s)
	}
}
