package serve

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/snn"
	"repro/internal/stream"
	"repro/internal/tensor"
)

func TestHelloFrameRoundTrip(t *testing.T) {
	cases := []SessionConfig{
		{Version: 1, CreditWindow: 64},
		{Version: 1, PrivateBatch: true, CreditWindow: 0},
		{Version: 1, Tier: snn.TierINT8, CreditWindow: 1 << 20},
	}
	for _, in := range cases {
		out, err := decodeHello(appendHello(nil, in))
		if err != nil {
			t.Fatalf("%+v: %v", in, err)
		}
		if out != in {
			t.Fatalf("round trip %+v, want %+v", out, in)
		}
	}
	if _, err := decodeHello(make([]byte, helloSize-1)); err == nil {
		t.Fatal("short hello accepted")
	}
	// Trailing bytes are the forward-compatibility seam: a version-1
	// hello with extra fields decodes to the fields this build knows.
	padded := append(appendHello(nil, cases[0]), 0xde, 0xad)
	if out, err := decodeHello(padded); err != nil || out != cases[0] {
		t.Fatalf("padded hello = %+v, %v; want %+v accepted", out, err, cases[0])
	}
	// Version skew: 0 and anything above ProtoVersion are refused.
	for _, v := range []uint16{0, ProtoVersion + 1} {
		p := appendHello(nil, cases[0])
		binary.LittleEndian.PutUint16(p[0:], v)
		if _, err := decodeHello(p); err == nil {
			t.Fatalf("hello version %d accepted", v)
		}
	}
	// Unknown tier ordinal.
	p := appendHello(nil, cases[0])
	p[3] = 0x7f
	if _, err := decodeHello(p); err == nil {
		t.Fatal("unknown tier accepted")
	}
}

func TestSwapResultRoundTrip(t *testing.T) {
	cases := []SwapStatus{
		{OK: true, Generation: 7, Fingerprint: 0xdeadbeefcafef00d},
		{OK: false, Msg: "decode failed: unexpected EOF"},
	}
	for _, in := range cases {
		out, err := decodeSwapResult(appendSwapResult(nil, in))
		if err != nil {
			t.Fatalf("%+v: %v", in, err)
		}
		if out != in {
			t.Fatalf("round trip %+v, want %+v", out, in)
		}
	}
	if _, err := decodeSwapResult(make([]byte, swapResultSize-1)); err == nil {
		t.Fatal("short swap result accepted")
	}
}

// TestOptionsValidation pins the API redesign's error contract:
// configurations the protocol cannot express are reported, not silently
// clamped into something else.
func TestOptionsValidation(t *testing.T) {
	clientCases := []struct {
		name string
		cfg  SessionConfig
		ok   bool
	}{
		{"zero defaults", SessionConfig{}, true},
		{"creditless", SessionConfig{CreditWindow: Creditless}, true},
		{"explicit version", SessionConfig{Version: ProtoVersion}, true},
		{"int8", SessionConfig{Tier: snn.TierINT8}, true},
		{"window below creditless", SessionConfig{CreditWindow: -2}, false},
		{"window above limit", SessionConfig{CreditWindow: maxCreditWindow + 1}, false},
		{"future version", SessionConfig{Version: ProtoVersion + 1}, false},
		{"negative version", SessionConfig{Version: -1}, false},
		{"unknown tier", SessionConfig{Tier: snn.PrecisionTier(99)}, false},
	}
	for _, tc := range clientCases {
		err := ClientOptions{Config: tc.cfg}.Validate()
		if tc.ok && err != nil {
			t.Errorf("client %s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("client %s: invalid config accepted", tc.name)
		}
	}

	serverCases := []struct {
		name string
		o    ServerOptions
		ok   bool
	}{
		{"zero defaults", ServerOptions{}, true},
		{"negative sessions", ServerOptions{MaxSessions: -1}, false},
		{"negative pool", ServerOptions{PoolSize: -2}, false},
		{"negative result window", ServerOptions{ResultWindow: -1}, false},
		{"negative max batch", ServerOptions{MaxBatch: -1}, false},
		{"negative fair share", ServerOptions{FairShare: -1}, false},
		{"negative sched queue", ServerOptions{SchedQueue: -3}, false},
		{"negative queue timeout", ServerOptions{QueueTimeout: -1}, false},
	}
	for _, tc := range serverCases {
		tc.o.Pipeline = stream.Options{WindowMS: 50, Steps: 3}
		_, err := NewServer(testNet(3, 1), tc.o)
		if tc.ok && err != nil {
			t.Errorf("server %s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("server %s: invalid options accepted", tc.name)
		}
	}

	// A poisoned client reports the validation error on first use
	// instead of writing a frame the server would refuse.
	cs, ss := net.Pipe()
	defer cs.Close()
	defer ss.Close()
	cl := NewClientOptions(cs, ClientOptions{Config: SessionConfig{CreditWindow: -5}})
	if _, err := cl.Stream(bytes.NewReader(nil), nil); err == nil ||
		!strings.Contains(err.Error(), "credit window") {
		t.Fatalf("poisoned client Stream error = %v, want credit window validation error", err)
	}
	if err := cl.Ping(); err == nil {
		t.Fatal("poisoned client Ping succeeded")
	}
}

// TestServeHelloMatchesLegacy is the handshake redesign's equivalence
// gate: a session negotiated through the versioned hello produces
// bit-identical results to the equivalent legacy bit-latching session,
// across the config surface the old frames could express.
func TestServeHelloMatchesLegacy(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(1)
	master := testNet(4, 61)
	o := stream.Options{WindowMS: 45, Steps: 4, Batch: 2, ChunkEvents: 64}
	srv, err := NewServer(master, ServerOptions{Pipeline: o, MaxSessions: 4, PoolSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !srv.SupportsTier(snn.TierINT8) {
		t.Fatal("server over a weighted net must support the INT8 tier")
	}
	data := testRecording(t, 1, 400, 23)
	wantFP := standalone(t, master, data, o)
	oI8 := o
	oI8.Tier = snn.TierINT8
	wantI8 := standalone(t, master, data, oI8)

	variants := []struct {
		name string
		cfg  SessionConfig
		want []stream.Result
	}{
		{"default", SessionConfig{}, wantFP},
		{"private", SessionConfig{PrivateBatch: true}, wantFP},
		{"int8", SessionConfig{Tier: snn.TierINT8}, wantI8},
		{"tiny window", SessionConfig{CreditWindow: 1}, wantFP},
		{"creditless", SessionConfig{CreditWindow: Creditless}, wantFP},
	}
	for _, v := range variants {
		for _, legacy := range []bool{false, true} {
			ctx := fmt.Sprintf("%s legacy=%v", v.name, legacy)
			cl, done := startSessionOptions(srv, ClientOptions{Config: v.cfg, Legacy: legacy})
			var got []stream.Result
			n, err := cl.Stream(bytes.NewReader(data), func(r stream.Result) error {
				got = append(got, r)
				return nil
			})
			if err != nil {
				t.Fatalf("%s: %v", ctx, err)
			}
			if n != len(v.want) {
				t.Fatalf("%s: done frame reports %d windows, want %d", ctx, n, len(v.want))
			}
			assertResults(t, ctx, v.want, got)
			if _, accepted := cl.Negotiated(); accepted == legacy {
				t.Fatalf("%s: accept echo arrived=%v", ctx, accepted)
			}
			cl.Close()
			<-done
		}
	}
}

// TestServeHelloAcceptEcho pins the negotiation semantics: the accept
// frame reports the server's effective settings, not a parrot of the
// request.
func TestServeHelloAcceptEcho(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(1)
	o := stream.Options{WindowMS: 50, Steps: 3}

	shared, err := NewServer(testNet(3, 5), ServerOptions{Pipeline: o, PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	cl, done := startSessionOptions(shared, ClientOptions{})
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	got, ok := cl.Negotiated()
	if !ok {
		t.Fatal("no accept after Ping")
	}
	want := SessionConfig{Version: ProtoVersion, CreditWindow: DefaultCreditWindow}
	if got != want {
		t.Fatalf("negotiated %+v, want %+v", got, want)
	}
	cl.Close()
	<-done

	// A server without a shared scheduler serves every session on a
	// private pipeline; the echo must say so even when the client did
	// not ask.
	private, err := NewServer(testNet(3, 5), ServerOptions{Pipeline: o, PoolSize: 1,
		SharedBatch: Bool(false)})
	if err != nil {
		t.Fatal(err)
	}
	cl2, done2 := startSessionOptions(private, ClientOptions{Config: SessionConfig{CreditWindow: Creditless}})
	if err := cl2.Ping(); err != nil {
		t.Fatal(err)
	}
	got2, _ := cl2.Negotiated()
	want2 := SessionConfig{Version: ProtoVersion, PrivateBatch: true, CreditWindow: 0}
	if got2 != want2 {
		t.Fatalf("negotiated %+v, want %+v", got2, want2)
	}
	cl2.Close()
	<-done2
}

// rawSession opens a ServeConn over a pipe and hands back raw frame I/O
// for protocol-level tests that a well-behaved Client cannot express.
func rawSession(t *testing.T, srv *Server) (*frameWriter, *bufio.Reader, net.Conn, chan error) {
	t.Helper()
	cs, ss := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- srv.ServeConn(ss) }()
	return newFrameWriter(cs), bufio.NewReader(cs), cs, done
}

// expectFrame reads one frame and asserts its type, returning the
// payload.
func expectFrame(t *testing.T, br *bufio.Reader, ctx string, want byte) []byte {
	t.Helper()
	typ, n, err := readHeader(br)
	if err != nil {
		t.Fatalf("%s: %v", ctx, err)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		t.Fatalf("%s: %v", ctx, err)
	}
	if typ != want {
		t.Fatalf("%s: frame 0x%02x %q, want 0x%02x", ctx, typ, payload, want)
	}
	return payload
}

// TestServeHelloVersionSkew drives raw hello frames at the server: the
// versions this build does not speak are refused with a frameError
// naming the version, and a newer minor client — version 1 plus
// trailing fields — is accepted and fully functional.
func TestServeHelloVersionSkew(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(1)
	master := testNet(3, 71)
	o := stream.Options{WindowMS: 50, Steps: 3}
	srv, err := NewServer(master, ServerOptions{Pipeline: o, PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}

	for _, v := range []uint16{0, ProtoVersion + 1} {
		fw, br, cs, done := rawSession(t, srv)
		p := appendHello(nil, SessionConfig{Version: ProtoVersion, CreditWindow: 0})
		binary.LittleEndian.PutUint16(p[0:], v)
		if err := fw.write(frameHello, p); err != nil {
			t.Fatal(err)
		}
		if err := fw.flush(); err != nil {
			t.Fatal(err)
		}
		msg := expectFrame(t, br, fmt.Sprintf("version %d", v), frameError)
		if !strings.Contains(string(msg), "version") {
			t.Fatalf("version %d refusal %q does not name the version", v, msg)
		}
		cs.Close()
		if err := <-done; err == nil {
			t.Fatalf("version %d: ServeConn reported no error", v)
		}
	}

	// Newer-client forward compatibility: version 1 with trailing bytes
	// past the fields this build defines is accepted, and the session
	// works end to end.
	fw, br, cs, done := rawSession(t, srv)
	defer cs.Close()
	p := appendHello(nil, SessionConfig{Version: ProtoVersion, CreditWindow: 0})
	p = append(p, 0xaa, 0xbb, 0xcc) // a hypothetical version-1.1 extension
	if err := fw.write(frameHello, p); err != nil {
		t.Fatal(err)
	}
	if err := fw.flush(); err != nil {
		t.Fatal(err)
	}
	expectFrame(t, br, "padded hello", frameAccept)

	data := testRecording(t, 2, 120, 72)
	want := standalone(t, master, data, o)
	if err := fw.write(frameData, data); err != nil {
		t.Fatal(err)
	}
	if err := fw.write(frameEnd, nil); err != nil {
		t.Fatal(err)
	}
	if err := fw.flush(); err != nil {
		t.Fatal(err)
	}
	var got []stream.Result
	for {
		typ, n, err := readHeader(br)
		if err != nil {
			t.Fatal(err)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			t.Fatal(err)
		}
		if typ == frameDone {
			break
		}
		if typ != frameResult {
			t.Fatalf("frame 0x%02x %q, want result or done", typ, payload)
		}
		r, err := decodeResult(payload)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, r)
	}
	assertResults(t, "padded hello session", want, got)
	cs.Close()
	<-done
}

// TestServeHelloOrdering pins the handshake's place in the protocol: at
// most one hello, before any mode or data frame.
func TestServeHelloOrdering(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(1)
	srv, err := NewServer(testNet(3, 81), ServerOptions{
		Pipeline: stream.Options{WindowMS: 50, Steps: 3}, PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	hello := appendHello(nil, SessionConfig{Version: ProtoVersion, CreditWindow: 0})

	cases := []struct {
		name string
		lead func(fw *frameWriter) error // frames before the offending hello
		want string
	}{
		{"duplicate", func(fw *frameWriter) error {
			return fw.write(frameHello, hello)
		}, "duplicate"},
		{"after mode", func(fw *frameWriter) error {
			return fw.write(frameMode, []byte{modePrivate})
		}, "mode"},
		{"after data", func(fw *frameWriter) error {
			return fw.write(frameData, []byte{0x01})
		}, "data"},
	}
	for _, tc := range cases {
		fw, br, cs, done := rawSession(t, srv)
		if err := tc.lead(fw); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if err := fw.write(frameHello, hello); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if err := fw.flush(); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		// The duplicate case's first hello is answered with an accept
		// before the error surfaces.
		if tc.name == "duplicate" {
			expectFrame(t, br, tc.name, frameAccept)
		}
		msg := expectFrame(t, br, tc.name, frameError)
		if !strings.Contains(string(msg), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, msg, tc.want)
		}
		cs.Close()
		<-done
	}
}

// TestServeHelloInt8Refused: a server that cannot serve the INT8 tier
// refuses the hello outright instead of silently downgrading the
// session to FP32.
func TestServeHelloInt8Refused(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(1)
	srv, err := NewServer(testNet(3, 83), ServerOptions{
		Pipeline: stream.Options{WindowMS: 50, Steps: 3}, PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv.int8OK = false // simulate a master the quantizer cannot panel

	cl, done := startSessionOptions(srv, ClientOptions{Config: SessionConfig{Tier: snn.TierINT8}})
	defer cl.Close()
	if err := cl.Ping(); err == nil || !strings.Contains(err.Error(), "int8") {
		t.Fatalf("Ping error = %v, want int8 refusal", err)
	}
	cl.Close()
	<-done
}

// TestServeSwapRPC drives the two-phase checkpoint swap over one admin
// connection: prepare stages without serving, commit makes it live with
// a stable fingerprint, abort discards, and the RPC is refused entirely
// unless the server opts in.
func TestServeSwapRPC(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(1)
	oldNet := testNet(4, 21)
	o := stream.Options{WindowMS: 40, Steps: 4, ChunkEvents: 16}
	data := testRecording(t, 3, 200, 31)
	wantOld := standalone(t, oldNet, data, o)
	newNet := trainedDisagreeing(t, oldNet, data, o, wantOld)
	wantNew := standalone(t, newNet, data, o)
	ckpt := filepath.Join(t.TempDir(), "model.gob")
	f, err := os.Create(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := newNet.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Off by default: the RPC names server-side files.
	locked, err := NewServer(oldNet, ServerOptions{Pipeline: o, PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	cl0, done0 := startSessionOptions(locked, ClientOptions{})
	if _, err := cl0.SwapPrepare(ckpt); err == nil || !strings.Contains(err.Error(), "AdminSwap") {
		t.Fatalf("swap on a locked server = %v, want AdminSwap refusal", err)
	}
	cl0.Close()
	<-done0

	srv, err := NewServer(oldNet.DeepClone(), ServerOptions{Pipeline: o, PoolSize: 1, AdminSwap: true})
	if err != nil {
		t.Fatal(err)
	}
	serveRec := func(ctx string, want []stream.Result) {
		t.Helper()
		scl, sdone := startSessionOptions(srv, ClientOptions{})
		var got []stream.Result
		if _, err := scl.Stream(bytes.NewReader(data), func(r stream.Result) error {
			got = append(got, r)
			return nil
		}); err != nil {
			t.Fatalf("%s: %v", ctx, err)
		}
		assertResults(t, ctx, want, got)
		scl.Close()
		<-sdone
	}

	cl, done := startSessionOptions(srv, ClientOptions{Config: SessionConfig{CreditWindow: Creditless}})
	defer cl.Close()

	// Commit without a staged checkpoint is answered in-band.
	if st, err := cl.SwapCommit(); err != nil || st.OK {
		t.Fatalf("bare commit = %+v, %v; want in-band refusal", st, err)
	}

	st, err := cl.SwapPrepare(ckpt)
	if err != nil || !st.OK {
		t.Fatalf("prepare = %+v, %v", st, err)
	}
	if st.Fingerprint == 0 {
		t.Fatal("prepare reported a zero fingerprint")
	}
	serveRec("staged but not committed", wantOld)

	// Abort discards the staging; the model is untouched.
	if ab, err := cl.SwapAbort(); err != nil || !ab.OK {
		t.Fatalf("abort = %+v, %v", ab, err)
	}
	if ci, err := cl.SwapCommit(); err != nil || ci.OK {
		t.Fatalf("commit after abort = %+v, %v; want refusal", ci, err)
	}
	serveRec("after abort", wantOld)

	// Prepare again and commit for real.
	st2, err := cl.SwapPrepare(ckpt)
	if err != nil || !st2.OK {
		t.Fatalf("re-prepare = %+v, %v", st2, err)
	}
	if st2.Fingerprint != st.Fingerprint {
		t.Fatalf("same file fingerprints diverge: %x vs %x", st2.Fingerprint, st.Fingerprint)
	}
	ci, err := cl.SwapCommit()
	if err != nil || !ci.OK {
		t.Fatalf("commit = %+v, %v", ci, err)
	}
	if ci.Generation != 1 {
		t.Fatalf("commit generation = %d, want 1", ci.Generation)
	}
	if ci.Fingerprint != st2.Fingerprint || srv.CheckpointFP() != ci.Fingerprint {
		t.Fatalf("fingerprints disagree: commit %x, prepare %x, server %x",
			ci.Fingerprint, st2.Fingerprint, srv.CheckpointFP())
	}
	serveRec("after commit", wantNew)

	// A prepare that fails to decode is reported in-band; the session
	// and the served model both survive.
	junk := filepath.Join(t.TempDir(), "junk.gob")
	if err := os.WriteFile(junk, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if st, err := cl.SwapPrepare(junk); err != nil || st.OK {
		t.Fatalf("junk prepare = %+v, %v; want in-band failure", st, err)
	}
	serveRec("after failed prepare", wantNew)

	cl.Close()
	<-done
}
