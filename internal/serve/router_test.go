package serve

import (
	"bytes"
	"fmt"
	"net"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/snn"
	"repro/internal/stream"
	"repro/internal/tensor"
)

// testReplica is one TCP backend in a router test fleet.
type testReplica struct {
	srv  *Server
	ln   net.Listener
	addr string
}

// startReplica serves a deep clone of master on a loopback listener.
// Skips the test when loopback TCP is unavailable (the router is
// transport-level; net.Pipe cannot stand in for redial and rejoin).
func startReplica(t *testing.T, master *snn.Network, o stream.Options, so ServerOptions) *testReplica {
	t.Helper()
	so.Pipeline = o
	srv, err := NewServer(master.DeepClone(), so)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("tcp listen unavailable: %v", err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { srv.Close() })
	return &testReplica{srv: srv, ln: ln, addr: ln.Addr().String()}
}

// relisten restarts a replica on the address it previously held — the
// rejoin path after a simulated crash.
func (r *testReplica) relisten(t *testing.T, master *snn.Network, o stream.Options, so ServerOptions) {
	t.Helper()
	so.Pipeline = o
	srv, err := NewServer(master.DeepClone(), so)
	if err != nil {
		t.Fatal(err)
	}
	var ln net.Listener
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err = net.Listen("tcp", r.addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("re-listen on %s: %v", r.addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { srv.Close() })
	r.srv, r.ln = srv, ln
}

func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// startRouter builds a router over the replicas, waits until every one
// is up, and serves it on its own loopback listener.
func startRouter(t *testing.T, reps []*testReplica, o RouterOptions) (*Router, string) {
	t.Helper()
	for _, r := range reps {
		o.Replicas = append(o.Replicas, r.addr)
	}
	if o.HealthInterval == 0 {
		o.HealthInterval = 20 * time.Millisecond
	}
	rt, err := NewRouter(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })
	waitFor(t, "replicas up", 10*time.Second, func() bool { return rt.Healthy() == len(reps) })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("tcp listen unavailable: %v", err)
	}
	go func() { _ = rt.Serve(ln) }()
	return rt, ln.Addr().String()
}

// streamThrough runs one recording through addr and returns the
// results.
func streamThrough(t *testing.T, addr string, copts ClientOptions, data []byte) []stream.Result {
	t.Helper()
	cl, err := Dial(addr, copts)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var got []stream.Result
	if _, err := cl.Stream(bytes.NewReader(data), func(r stream.Result) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

// TestRouterMatchesDirect is the proxy-fidelity gate: sessions through
// the router — hello-negotiated and legacy alike — produce results
// bit-identical to the same sessions against a replica directly.
func TestRouterMatchesDirect(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(1)
	master := testNet(4, 61)
	o := stream.Options{WindowMS: 45, Steps: 4, Batch: 2, ChunkEvents: 64}
	reps := []*testReplica{
		startReplica(t, master, o, ServerOptions{MaxSessions: 8, PoolSize: 2}),
		startReplica(t, master, o, ServerOptions{MaxSessions: 8, PoolSize: 2}),
	}
	rt, raddr := startRouter(t, reps, RouterOptions{})
	data := testRecording(t, 2, 400, 29)
	want := standalone(t, master, data, o)

	for _, tc := range []struct {
		name  string
		copts ClientOptions
	}{
		{"hello", ClientOptions{}},
		{"hello creditless", ClientOptions{Config: SessionConfig{CreditWindow: Creditless}}},
		{"hello tiny window", ClientOptions{Config: SessionConfig{CreditWindow: 1}}},
		{"legacy", ClientOptions{Legacy: true}},
	} {
		direct := streamThrough(t, reps[0].addr, tc.copts, data)
		routed := streamThrough(t, raddr, tc.copts, data)
		assertResults(t, tc.name+" direct", want, direct)
		assertResults(t, tc.name+" routed", want, routed)
	}

	// Placement spread: run enough sessions that rendezvous hashing with
	// per-session salt lands on both replicas.
	for i := 0; i < 16; i++ {
		streamThrough(t, raddr, ClientOptions{}, data)
	}
	snap := rt.MetricsSnapshot()
	if snap.SessionsProxied < 20 || snap.FramesRelayed == 0 {
		t.Fatalf("router metrics implausible: %+v", snap)
	}
	for i, rep := range snap.Replicas {
		if rep.Placements == 0 {
			t.Fatalf("replica %d (%s) took no placements across 20 sessions", i, rep.Addr)
		}
	}

	// The metrics endpoint speaks both formats: JSON by default,
	// Prometheus text exposition when asked.
	h := rt.MetricsHandler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("default Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), `"sessions_proxied"`) {
		t.Fatalf("JSON snapshot missing sessions_proxied: %s", rec.Body.String())
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=prometheus", nil))
	if ct := rec.Header().Get("Content-Type"); ct != promContentType {
		t.Fatalf("prometheus Content-Type = %q", ct)
	}
	text := rec.Body.String()
	for _, want := range []string{
		"# TYPE axsnn_router_sessions_proxied_total counter",
		"axsnn_router_replicas_up 2",
		fmt.Sprintf("axsnn_router_replica_up{replica=%q} 1", reps[0].addr),
		"axsnn_router_proxy_p99_ms",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus exposition missing %q:\n%s", want, text)
		}
	}

	// The server-side handler negotiates the same way.
	rec = httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	reps[0].srv.MetricsHandler().ServeHTTP(rec, req)
	if !strings.Contains(rec.Body.String(), "# TYPE axsnn_serve_windows_served_total counter") {
		t.Fatalf("server prometheus exposition missing windows_served:\n%s", rec.Body.String())
	}
}

// TestRouterReplicaLossAndRejoin kills a replica mid-stream: the
// affected client fails fast with an error (never hangs), new sessions
// re-place onto the survivor, and a replica restarted on the same
// address rejoins and takes placements again.
func TestRouterReplicaLossAndRejoin(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(1)
	master := testNet(4, 63)
	o := stream.Options{WindowMS: 45, Steps: 4, Batch: 2, ChunkEvents: 64}
	so := ServerOptions{MaxSessions: 8, PoolSize: 2}
	reps := []*testReplica{
		startReplica(t, master, o, so),
		startReplica(t, master, o, so),
	}
	rt, raddr := startRouter(t, reps, RouterOptions{})
	data := testRecording(t, 3, 500, 37)
	want := standalone(t, master, data, o)

	// A session the replica cannot run ahead of: a one-result credit
	// window, and a consumer that parks after the first result until
	// the kill has landed — the session is pinned in flight, not racing
	// the killer on a sleep.
	cl, err := Dial(raddr, ClientOptions{Config: SessionConfig{CreditWindow: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	firstResult := make(chan struct{})
	release := make(chan struct{})
	var seen int
	streamErr := make(chan error, 1)
	go func() {
		_, err := cl.Stream(bytes.NewReader(data), func(stream.Result) error {
			seen++
			if seen == 1 {
				close(firstResult)
				<-release
			}
			return nil
		})
		streamErr <- err
	}()
	<-firstResult

	// Kill whichever replica holds the session — identified through the
	// router's per-replica active count, which tracks proxied sessions
	// only (the replica server's own count also includes transient
	// health-probe pings, which would finger the wrong replica).
	var killed *testReplica
	for _, rs := range rt.MetricsSnapshot().Replicas {
		if rs.ActiveSessions > 0 {
			for _, rep := range reps {
				if rep.addr == rs.Addr {
					killed = rep
				}
			}
		}
	}
	if killed == nil {
		t.Fatal("no replica reports the in-flight session")
	}
	killed.srv.Close()
	close(release)

	select {
	case err := <-streamErr:
		if err == nil {
			t.Fatal("stream over a killed replica reported success")
		}
	case <-time.After(20 * time.Second):
		t.Fatal("stream over a killed replica hung instead of failing")
	}
	waitFor(t, "loss detected", 10*time.Second, func() bool { return rt.Healthy() == 1 })

	// New sessions re-place onto the survivor and still match the
	// reference.
	for i := 0; i < 4; i++ {
		assertResults(t, fmt.Sprintf("survivor session %d", i), want,
			streamThrough(t, raddr, ClientOptions{}, data))
	}

	// Restart the dead replica on its old address: the health loop must
	// bring it back and placements must reach it again.
	killed.relisten(t, master, o, so)
	waitFor(t, "replica rejoin", 10*time.Second, func() bool { return rt.Healthy() == 2 })
	before := func() int64 {
		for _, rep := range rt.MetricsSnapshot().Replicas {
			if rep.Addr == killed.addr {
				return rep.Placements
			}
		}
		return -1
	}()
	waitFor(t, "placements on the rejoined replica", 20*time.Second, func() bool {
		assertResults(t, "rejoin-era session", want, streamThrough(t, raddr, ClientOptions{}, data))
		for _, rep := range rt.MetricsSnapshot().Replicas {
			if rep.Addr == killed.addr {
				return rep.Placements > before
			}
		}
		return false
	})
}

// TestRouterNoReplica: with every replica down, a session is refused
// with a clean error frame instead of a hang or a bare close.
func TestRouterNoReplica(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(1)
	// An address nothing listens on: bind a port, then free it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("tcp listen unavailable: %v", err)
	}
	dead := ln.Addr().String()
	ln.Close()

	rt, err := NewRouter(RouterOptions{Replicas: []string{dead}, HealthInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("tcp listen unavailable: %v", err)
	}
	go func() { _ = rt.Serve(rln) }()

	cl, err := Dial(rln.Addr().String(), ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Ping(); err == nil || !strings.Contains(err.Error(), "no replica") {
		t.Fatalf("Ping against an empty fleet = %v, want no-replica refusal", err)
	}
	if rt.MetricsSnapshot().NoReplica == 0 {
		t.Fatal("NoReplica counter did not move")
	}
}

// TestRouterSwapAll pins the fan-out's all-or-nothing contract: one
// replica that cannot stage the checkpoint rolls the whole fleet back,
// and a clean fleet lands on the same generation and fingerprint
// everywhere — then serves the new weights through the router.
func TestRouterSwapAll(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(1)
	oldNet := testNet(4, 21)
	o := stream.Options{WindowMS: 40, Steps: 4, ChunkEvents: 16}
	data := testRecording(t, 3, 200, 31)
	wantOld := standalone(t, oldNet, data, o)
	newNet := trainedDisagreeing(t, oldNet, data, o, wantOld)
	wantNew := standalone(t, newNet, data, o)
	ckpt := filepath.Join(t.TempDir(), "model.gob")
	var buf bytes.Buffer
	if err := newNet.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckpt, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	// Mixed fleet: one replica refuses the swap RPC entirely. The
	// prepared replica must be rolled back and keep the old weights.
	mixed := []*testReplica{
		startReplica(t, oldNet, o, ServerOptions{PoolSize: 1, AdminSwap: true}),
		startReplica(t, oldNet, o, ServerOptions{PoolSize: 1}),
	}
	rtMixed, mixedAddr := startRouter(t, mixed, RouterOptions{})
	statuses, err := rtMixed.SwapAll(ckpt)
	if err == nil || !strings.Contains(err.Error(), "rolled back") {
		t.Fatalf("mixed-fleet SwapAll error = %v, want rollback", err)
	}
	for _, st := range statuses {
		switch st.Addr {
		case mixed[0].addr:
			if !st.RolledBack {
				t.Fatalf("prepared replica not rolled back: %+v", st)
			}
		case mixed[1].addr:
			if st.OK || !strings.Contains(st.Err, "AdminSwap") {
				t.Fatalf("locked replica status = %+v, want AdminSwap refusal", st)
			}
		}
	}
	for i, rep := range mixed {
		if g := rep.srv.Swaps(); g != 0 {
			t.Fatalf("replica %d committed generation %d during a rolled-back fan-out", i, g)
		}
	}
	assertResults(t, "after rollback", wantOld, streamThrough(t, mixedAddr, ClientOptions{}, data))

	// Clean fleet: the swap commits everywhere, same generation and
	// fingerprint, and routed sessions serve the new weights.
	fleet := []*testReplica{
		startReplica(t, oldNet, o, ServerOptions{PoolSize: 1, AdminSwap: true}),
		startReplica(t, oldNet, o, ServerOptions{PoolSize: 1, AdminSwap: true}),
		startReplica(t, oldNet, o, ServerOptions{PoolSize: 1, AdminSwap: true}),
	}
	rt, raddr := startRouter(t, fleet, RouterOptions{})
	statuses, err = rt.SwapAll(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(statuses) != len(fleet) {
		t.Fatalf("%d statuses for %d replicas", len(statuses), len(fleet))
	}
	for _, st := range statuses {
		if !st.OK || st.Generation != 1 || st.Fingerprint != statuses[0].Fingerprint {
			t.Fatalf("fleet status %+v diverges from %+v", st, statuses[0])
		}
	}
	for i, rep := range fleet {
		if fp := rep.srv.CheckpointFP(); fp != statuses[0].Fingerprint {
			t.Fatalf("replica %d fingerprint %x, want %x", i, fp, statuses[0].Fingerprint)
		}
		if g := rep.srv.Swaps(); g != 1 {
			t.Fatalf("replica %d generation %d, want 1", i, g)
		}
	}
	assertResults(t, "after fleet swap", wantNew, streamThrough(t, raddr, ClientOptions{}, data))

	// A replica restarted after the fan-out — fresh process, old
	// weights — is resynced to the swapped checkpoint BEFORE it is
	// marked up, so it never serves stale weights.
	fleet[2].srv.Close()
	waitFor(t, "restarted replica down", 10*time.Second, func() bool { return rt.Healthy() == 2 })
	fleet[2].relisten(t, oldNet, o, ServerOptions{PoolSize: 1, AdminSwap: true})
	waitFor(t, "restarted replica rejoined", 10*time.Second, func() bool { return rt.Healthy() == 3 })
	if fp := fleet[2].srv.CheckpointFP(); fp != statuses[0].Fingerprint {
		t.Fatalf("rejoined replica fingerprint %x, want %x (resync must precede rejoin)", fp, statuses[0].Fingerprint)
	}
	if g := fleet[2].srv.Swaps(); g != 1 {
		t.Fatalf("rejoined replica generation %d, want 1", g)
	}
}
