package serve

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/stream"
	"repro/internal/tensor"
)

// BenchmarkServeWindow measures one steady-state served window — pool
// acquire, windowed voxelization, batched arena inference, pool
// release, result framing — the per-window cost that must stay at
// 0 allocs/op (CI's zero-alloc gate covers this benchmark).
func BenchmarkServeWindow(b *testing.B) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(1)
	master := testNet(8, 71)
	srv, err := NewServer(master, ServerOptions{
		Pipeline: stream.Options{WindowMS: 50, Steps: 8}, PoolSize: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	body := serveWindowBody(b, srv)
	body(0) // warm the arena, frames and frame buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body(i + 1)
	}
}

// BenchmarkServeSessions measures end-to-end session throughput — the
// full protocol stack over in-process pipes — at 1, 4 and 16 concurrent
// sessions sharing one bounded clone pool, reporting aggregate
// windows/s.
func BenchmarkServeSessions(b *testing.B) {
	for _, sessions := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			defer tensor.SetWorkers(0)
			tensor.SetWorkers(1)
			master := testNet(6, 81)
			o := stream.Options{WindowMS: 60, Steps: 6, Batch: 2, ChunkEvents: 1024}
			srv, err := NewServer(master, ServerOptions{
				Pipeline: o, MaxSessions: sessions, PoolSize: 2,
			})
			if err != nil {
				b.Fatal(err)
			}
			data := testRecording(b, 3, 360, 91)
			windows := len(standalone(b, master, data, o))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				errs := make(chan error, sessions)
				for s := 0; s < sessions; s++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						cl, done := startSession(srv)
						defer cl.Close()
						if _, err := cl.Stream(bytes.NewReader(data), nil); err != nil {
							errs <- err
							return
						}
						cl.Close()
						<-done
					}()
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N*sessions*windows)/b.Elapsed().Seconds(), "windows/s")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*sessions*windows), "ns/window")
		})
	}
}
