package serve

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/snn"
	"repro/internal/stream"
	"repro/internal/tensor"
)

// BenchmarkServeWindow measures one steady-state served window — pool
// acquire, windowed voxelization, batched arena inference, pool
// release, result framing — the per-window cost that must stay at
// 0 allocs/op (CI's zero-alloc gate covers this benchmark).
func BenchmarkServeWindow(b *testing.B) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(1)
	master := testNet(8, 71)
	srv, err := NewServer(master, ServerOptions{
		Pipeline: stream.Options{WindowMS: 50, Steps: 8}, PoolSize: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	body := serveWindowBody(b, srv)
	body(0) // warm the arena, frames and frame buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body(i + 1)
	}
}

// BenchmarkServeCreditWindow measures the credit-flow additions to the
// per-window serving path — ring staging, the credit CAS, counters and
// the latency histogram — and is covered by CI's zero-alloc gate: the
// backpressure machinery must stay free on the hot path.
func BenchmarkServeCreditWindow(b *testing.B) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(1)
	master := testNet(8, 71)
	srv, err := NewServer(master, ServerOptions{
		Pipeline: stream.Options{WindowMS: 50, Steps: 8}, PoolSize: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	ss := newTestSession(srv)
	ss.addCredits(1 << 30)
	body := serveCreditWindowBody(b, srv, ss)
	body(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body(i + 1)
	}
}

// BenchmarkServeSlowConsumer measures a 4-session server where one
// consumer sleeps per result while three drain freely — the
// backpressure scenario: the slow session must cost credit stalls, not
// pool units or the fast sessions' throughput. Reports the fast
// sessions' aggregate windows/s and the stall count per iteration.
func BenchmarkServeSlowConsumer(b *testing.B) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(1)
	master := testNet(6, 81)
	o := stream.Options{WindowMS: 60, Steps: 6, Batch: 2, ChunkEvents: 1024}
	srv, err := NewServer(master, ServerOptions{
		Pipeline: o, MaxSessions: 4, PoolSize: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	data := testRecording(b, 3, 360, 91)
	windows := len(standalone(b, master, data, o))
	stall := func(stream.Result) error { time.Sleep(time.Millisecond); return nil }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		errs := make(chan error, 4)
		for s := 0; s < 4; s++ {
			emit := func(stream.Result) error { return nil }
			copts := ClientOptions{}
			if s == 0 {
				emit = stall
				copts.Config.CreditWindow = 2
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				cl, done := startSessionOptions(srv, copts)
				defer cl.Close()
				if _, err := cl.Stream(bytes.NewReader(data), emit); err != nil {
					errs <- err
					return
				}
				cl.Close()
				<-done
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N*3*windows)/b.Elapsed().Seconds(), "fastwindows/s")
	b.ReportMetric(float64(srv.Metrics().CreditStalls.Load())/float64(b.N), "stalls/op")
}

// benchSessions runs one benchmark iteration shape: `sessions`
// concurrent clients each streaming the same recording once, on a
// server built from opts. Reports aggregate windows/s and ns/window
// (and, under shared batching, the mean coalesced batch fill). The
// full tensor-worker budget is in play, as deployed (`axsnn-serve
// -workers 0`): the point of coalescing is handing the kernels one
// wide GEMM to parallelize instead of many two-window slivers, and a
// single-worker pin would benchmark exactly the shape the scheduler
// exists to avoid.
func benchSessions(b *testing.B, sessions int, opts ServerOptions) {
	benchSessionsClients(b, sessions, opts, func(int) ClientOptions { return ClientOptions{} })
}

// benchSessionsClients is benchSessions with per-session client
// options, so tiered mixes can reuse the same iteration shape.
func benchSessionsClients(b *testing.B, sessions int, opts ServerOptions, copts func(int) ClientOptions) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(0)
	master := testNet(6, 81)
	o := stream.Options{WindowMS: 60, Steps: 6, Batch: 2, ChunkEvents: 1024}
	opts.Pipeline = o
	opts.MaxSessions = sessions
	opts.PoolSize = 2
	srv, err := NewServer(master, opts)
	if err != nil {
		b.Fatal(err)
	}
	data := testRecording(b, 3, 360, 91)
	windows := len(standalone(b, master, data, o))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		errs := make(chan error, sessions)
		for s := 0; s < sessions; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				cl, done := startSessionOptions(srv, copts(s))
				defer cl.Close()
				if _, err := cl.Stream(bytes.NewReader(data), nil); err != nil {
					errs <- err
					return
				}
				cl.Close()
				<-done
			}(s)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N*sessions*windows)/b.Elapsed().Seconds(), "windows/s")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*sessions*windows), "ns/window")
	if sched := srv.Scheduler(); sched != nil {
		b.ReportMetric(sched.Stats().AvgFill(), "fill")
	}
}

// BenchmarkServeSessions measures end-to-end session throughput — the
// full protocol stack over in-process pipes — at 1, 4 and 16 concurrent
// sessions sharing one bounded clone pool, with per-session batching
// pinned: this is the baseline the shared-scheduler benchmark below is
// judged against, so it must keep measuring the private path.
func BenchmarkServeSessions(b *testing.B) {
	for _, sessions := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			benchSessions(b, sessions, ServerOptions{SharedBatch: Bool(false)})
		})
	}
}

// BenchmarkServeSessionsShared is the continuous-batching headline:
// the same protocol stack with every session's windows coalesced
// through the shared scheduler. Per-session batching issues one
// Batch-wide GEMM per session round regardless of how many sessions
// are live; the scheduler turns concurrent light sessions into
// MaxBatch-wide GEMMs, so windows/s must scale with session count
// where the private baseline stays flat.
func BenchmarkServeSessionsShared(b *testing.B) {
	for _, sessions := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			benchSessions(b, sessions, ServerOptions{})
		})
	}
}

// BenchmarkServeSessionsTiered measures the mixed-precision serving
// path: half the sessions request the INT8 tier, half stay FP32, all
// on the shared scheduler. Same-tier coalescing means each tick's
// batch fills from one tier's pending windows only, so this benchmark
// prices the cost of splitting the coalescing stream in two (compare
// windows/s and fill against BenchmarkServeSessionsShared at the same
// session count) plus the int8 kernel's share of the work.
func BenchmarkServeSessionsTiered(b *testing.B) {
	for _, sessions := range []int{4, 16} {
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			benchSessionsClients(b, sessions, ServerOptions{}, func(s int) ClientOptions {
				cfg := SessionConfig{}
				if s%2 == 1 {
					cfg.Tier = snn.TierINT8
				}
				return ClientOptions{Config: cfg}
			})
		})
	}
}

// BenchmarkServeRouted prices the router tier: the same concurrent
// session load over loopback TCP against one replica directly
// (mode=direct) and through one router fronting two replicas
// (mode=routed). Compare windows/s for the relay's throughput cost; the
// routed run also reports the router's per-frame proxy p99 — the
// latency the front tier adds to each result frame.
func BenchmarkServeRouted(b *testing.B) {
	const sessions = 8
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(0)
	master := testNet(6, 81)
	o := stream.Options{WindowMS: 60, Steps: 6, Batch: 2, ChunkEvents: 1024}
	data := testRecording(b, 3, 360, 91)
	windows := len(standalone(b, master, data, o))

	newReplica := func(b *testing.B) string {
		b.Helper()
		// Session teardown over TCP is asynchronous (the server reaps a
		// session after the client's Close lands), so consecutive
		// iterations briefly overlap; 4x headroom keeps admission from
		// becoming the bottleneck being measured.
		srv, err := NewServer(master.DeepClone(), ServerOptions{
			Pipeline: o, MaxSessions: 4 * sessions, PoolSize: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Skipf("tcp listen unavailable: %v", err)
		}
		go func() { _ = srv.Serve(ln) }()
		b.Cleanup(func() { srv.Close() })
		return ln.Addr().String()
	}

	run := func(b *testing.B, addr string) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			errs := make(chan error, sessions)
			for s := 0; s < sessions; s++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					cl, err := Dial(addr, ClientOptions{})
					if err != nil {
						errs <- err
						return
					}
					defer cl.Close()
					if _, err := cl.Stream(bytes.NewReader(data), nil); err != nil {
						errs <- err
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N*sessions*windows)/b.Elapsed().Seconds(), "windows/s")
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*sessions*windows), "ns/window")
	}

	b.Run("mode=direct", func(b *testing.B) {
		run(b, newReplica(b))
	})
	b.Run("mode=routed", func(b *testing.B) {
		rt, err := NewRouter(RouterOptions{
			Replicas:       []string{newReplica(b), newReplica(b)},
			HealthInterval: 50 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { rt.Close() })
		deadline := time.Now().Add(30 * time.Second)
		for rt.Healthy() < 2 {
			if time.Now().After(deadline) {
				b.Fatal("replicas never came up")
			}
			time.Sleep(5 * time.Millisecond)
		}
		rln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Skipf("tcp listen unavailable: %v", err)
		}
		go func() { _ = rt.Serve(rln) }()
		run(b, rln.Addr().String())
		hist := rt.metrics.ProxyLatency.Snapshot()
		b.ReportMetric(float64(hist.Quantile(0.99))/float64(time.Millisecond), "proxyp99ms")
	})
}
