package serve

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/snn"
	"repro/internal/stream"
	"repro/internal/tensor"
)

// ErrAtCapacity is the session-manager refusal: the server already
// holds MaxSessions concurrent sessions. The client sees it as a
// frameError before the connection closes.
var ErrAtCapacity = errors.New("serve: server at session capacity")

// ServerOptions configure a Server.
type ServerOptions struct {
	// Pipeline is the per-session streaming configuration (window,
	// steps, chunking, filter mode, sensor pinning). Clones is
	// overwritten: sessions always draw from the server's shared pool.
	Pipeline stream.Options
	// MaxSessions bounds how many sessions run concurrently; further
	// connections are refused with ErrAtCapacity instead of queueing
	// (a loaded serving tier fails fast so the balancer can retry
	// elsewhere). <= 0 uses 16.
	MaxSessions int
	// PoolSize is the shared clone/arena pool capacity — how many
	// window batches classify at once across ALL sessions. <= 0 sizes
	// it by tensor.Workers(): the pool matches the compute budget, so
	// memory stays O(workers × batch), not O(sessions × batch).
	PoolSize int
}

// unit is one pooled evaluation resource: a weight-sharing clone (its
// inference arena rides inside, recycled by PredictBatchInto) tagged
// with the master it was cloned from, so a checkpoint hot-swap is
// detected at the next acquire.
type unit struct {
	master *snn.Network
	clone  *snn.Network
}

// Server multiplexes concurrent event-stream sessions over one model.
// The model is replaceable under load: LoadCheckpoint swaps the master
// atomically and pooled clones refresh on their next acquire, so
// in-flight window batches finish on the weights they hold and
// everything afterwards — later windows, later recordings, new
// sessions — classifies on the new ones.
type Server struct {
	opts   ServerOptions
	master atomic.Pointer[snn.Network]
	swapMu sync.Mutex // serializes LoadCheckpoint
	swaps  atomic.Int64

	units   chan *unit
	cloneMu sync.Mutex
	byClone map[*snn.Network]*unit //axsnn:guardedby cloneMu

	sem    chan struct{}
	active atomic.Int64
	served atomic.Int64
	mu     sync.Mutex
	closed bool                      //axsnn:guardedby mu
	lns    map[net.Listener]struct{} //axsnn:guardedby mu
	conns  map[net.Conn]struct{}     //axsnn:guardedby mu
	wg     sync.WaitGroup
}

// NewServer builds a server over master. The master is used read-only;
// every classification runs on pooled weight-sharing clones.
func NewServer(master *snn.Network, o ServerOptions) (*Server, error) {
	if o.MaxSessions <= 0 {
		o.MaxSessions = 16
	}
	if o.PoolSize <= 0 {
		o.PoolSize = tensor.Workers()
	}
	s := &Server{
		opts:    o,
		units:   make(chan *unit, o.PoolSize),
		byClone: make(map[*snn.Network]*unit, o.PoolSize),
		sem:     make(chan struct{}, o.MaxSessions),
		lns:     make(map[net.Listener]struct{}),
		conns:   make(map[net.Conn]struct{}),
	}
	s.master.Store(master)
	for i := 0; i < o.PoolSize; i++ {
		s.units <- &unit{master: master, clone: master.CloneArchitecture()}
	}
	// Validate the session pipeline configuration now, not at the first
	// connection: a probe pipeline exercises the same option checks.
	probe := o.Pipeline
	probe.Clones = s
	if _, err := stream.NewPipeline(master, probe); err != nil {
		return nil, err
	}
	return s, nil
}

// AcquireClone implements stream.CloneSource over the shared pool,
// refreshing stale units so a hot-swapped checkpoint reaches every
// batch classified after the swap.
func (s *Server) AcquireClone() *snn.Network {
	u := <-s.units
	if m := s.master.Load(); u.master != m {
		u.master = m
		u.clone = m.CloneArchitecture()
	}
	s.cloneMu.Lock()
	s.byClone[u.clone] = u
	s.cloneMu.Unlock()
	return u.clone
}

// ReleaseClone implements stream.CloneSource.
func (s *Server) ReleaseClone(c *snn.Network) {
	s.cloneMu.Lock()
	u := s.byClone[c]
	delete(s.byClone, c)
	s.cloneMu.Unlock()
	if u == nil {
		panic("serve: ReleaseClone of a clone that was not acquired")
	}
	s.units <- u
}

// LoadCheckpoint reads a snn checkpoint and swaps it in as the master:
// an RCU-style pointer exchange. The swap is atomic — a checkpoint that
// fails to decode or mismatches the architecture leaves the served
// model untouched — and asynchronous for traffic: sessions never stall,
// in-flight batches finish on the clone they hold, and every batch
// acquired after the swap classifies on the new weights.
func (s *Server) LoadCheckpoint(r io.Reader) error {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	fresh := s.master.Load().DeepClone()
	if err := fresh.Load(r); err != nil {
		return err
	}
	s.master.Store(fresh)
	s.swaps.Add(1)
	return nil
}

// LoadCheckpointFile is LoadCheckpoint over a file path.
func (s *Server) LoadCheckpointFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.LoadCheckpoint(f)
}

// Master returns the currently served model (the value new sessions
// and refreshed clones draw weights from).
func (s *Server) Master() *snn.Network { return s.master.Load() }

// Swaps reports how many checkpoints have been hot-swapped in.
func (s *Server) Swaps() int64 { return s.swaps.Load() }

// ActiveSessions reports the sessions currently being served.
func (s *Server) ActiveSessions() int64 { return s.active.Load() }

// ServedSessions reports the sessions completed since start.
func (s *Server) ServedSessions() int64 { return s.served.Load() }

// Serve accepts sessions from ln until the listener fails or the
// server closes. Each connection is one session, served concurrently.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("serve: server closed")
	}
	s.lns[ln] = struct{}{}
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			delete(s.lns, ln)
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			_ = s.ServeConn(conn)
		}()
	}
}

// ServeConn serves one session on conn (closing it when the session
// ends) and returns the session's terminal error, if any. It is the
// transport-agnostic entry point: production traffic arrives through
// Serve's TCP listener, tests drive it directly over net.Pipe.
func (s *Server) ServeConn(conn net.Conn) error {
	defer conn.Close()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("serve: server closed")
	}
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	select {
	case s.sem <- struct{}{}:
	default:
		fw := newFrameWriter(conn)
		_ = fw.write(frameError, []byte(ErrAtCapacity.Error()))
		_ = fw.flush()
		return ErrAtCapacity
	}
	s.active.Add(1)
	defer func() {
		s.active.Add(-1)
		s.served.Add(1)
		<-s.sem
	}()
	return s.serveSession(conn)
}

// serveSession runs one session: a reusable pipeline classifying one
// or more framed recordings back to back, streaming every window's
// result as soon as it is known. A session failure — protocol, codec,
// windowing or classification — is reported as a frameError and ends
// the session; it never takes the server down.
func (s *Server) serveSession(conn net.Conn) (err error) {
	br := bufio.NewReader(conn)
	fw := newFrameWriter(conn)
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("serve: session panic: %v", p)
		}
		if err != nil {
			_ = fw.write(frameError, []byte(err.Error()))
			_ = fw.flush()
		}
	}()

	o := s.opts.Pipeline
	o.Clones = s
	p, err := stream.NewPipeline(s.master.Load(), o)
	if err != nil {
		return err
	}

	rbuf := make([]byte, 0, resultSize)
	for {
		// Between recordings a clean connection close ends the session.
		if _, perr := br.Peek(1); perr != nil {
			if perr == io.EOF {
				return nil
			}
			return perr
		}
		windows := uint32(0)
		fr := &frameReader{br: br}
		err = p.Run(fr, func(r stream.Result) error {
			rbuf = appendResult(rbuf[:0], r)
			if werr := fw.write(frameResult, rbuf); werr != nil {
				return werr
			}
			windows++
			// Flush per window: results are the serving heartbeat, not
			// a batch artifact — a slow recording still answers live.
			return fw.flush()
		})
		if err != nil {
			return err
		}
		if err = fr.drain(); err != nil {
			return err
		}
		var cnt [4]byte
		binary.LittleEndian.PutUint32(cnt[:], windows)
		if err = fw.write(frameDone, cnt[:]); err != nil {
			return err
		}
		if err = fw.flush(); err != nil {
			return err
		}
	}
}

// Close stops accepting, closes every live connection and waits for
// session goroutines started by Serve to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for ln := range s.lns {
		ln.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}
