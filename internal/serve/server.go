package serve

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/approx"
	"repro/internal/snn"
	"repro/internal/stream"
	"repro/internal/tensor"
)

// ErrAtCapacity is the session-manager refusal: the server already
// holds MaxSessions concurrent sessions. The client sees it as a
// frameError before the connection closes.
var ErrAtCapacity = errors.New("serve: server at session capacity")

// ServerOptions configure a Server.
type ServerOptions struct {
	// Pipeline is the per-session streaming configuration (window,
	// steps, chunking, filter mode, sensor pinning). Clones is
	// overwritten: sessions always draw from the server's shared pool.
	Pipeline stream.Options
	// MaxSessions bounds how many sessions run concurrently; further
	// connections are refused with ErrAtCapacity instead of queueing
	// (a loaded serving tier fails fast so the balancer can retry
	// elsewhere) unless QueueTimeout opts into bounded waiting. 0 uses
	// 16; negative is a configuration error.
	MaxSessions int
	// PoolSize is the shared clone/arena/slot pool capacity — how many
	// window batches classify at once across ALL sessions. 0 sizes it
	// by tensor.Workers(): the pools match the compute budget, so
	// memory stays O(workers × batch), not O(sessions × batch).
	// Negative is a configuration error.
	PoolSize int
	// QueueTimeout, when positive, queues connections arriving at a
	// full server for up to this long before refusing them — bounded
	// admission waiting instead of fail-fast. Zero (the default) keeps
	// the immediate ErrAtCapacity refusal; negative is a configuration
	// error.
	QueueTimeout time.Duration
	// IdleTimeout bounds peer silence: every frame read arms it, and a
	// credit stall (an exhausted window the client never tops up) is
	// reaped by it too. 0 uses DefaultIdleTimeout, negative disables.
	IdleTimeout time.Duration
	// WriteTimeout bounds every frame write, including the capacity
	// refusal to a client that never reads. 0 uses
	// DefaultWriteTimeout, negative disables.
	WriteTimeout time.Duration
	// ResultWindow caps the undelivered results buffered per session
	// under credit flow (the ring between the pipeline and the wire
	// writer); the pipeline stalls beyond it. 0 uses 256 — at 20
	// bytes per staged result the worst case is ~5 KB per session.
	// Negative is a configuration error.
	ResultWindow int
	// SharedBatch enables cross-session continuous batching: sessions
	// submit voxelized windows to one shared stream.Scheduler that
	// coalesces ready windows from all sessions into large GEMMs and
	// demuxes the classes back per session. Results are bit-identical
	// to per-session batching. nil (the zero value) and &true enable
	// it; &false pins every session to a private pipeline. Individual
	// clients can still opt out per session with a frameMode frame
	// (the bit-exactness debugging escape hatch). Use Bool.
	SharedBatch *bool
	// MaxBatch caps how many windows one scheduler tick coalesces into
	// a single batched classify. 0 uses stream.DefaultMaxBatch;
	// negative is a configuration error.
	MaxBatch int
	// TickInterval is how long a scheduler tick waits to fill its
	// batch after the first ready window — trading latency for fill.
	// 0 (the default) classifies whatever is ready immediately.
	TickInterval time.Duration
	// FairShare caps how many of one session's windows a single tick
	// may take, so a saturating session cannot starve light ones.
	// 0 uses max(1, MaxBatch/4); negative is a configuration error.
	FairShare int
	// SchedQueue bounds the scheduler's submission queue (total
	// windows staged across all sessions). 0 uses 2×MaxBatch; negative
	// is a configuration error.
	SchedQueue int
	// AdminSwap enables the frameSwap checkpoint RPC
	// (prepare/commit/abort) on client connections — the seam the
	// router's all-or-nothing hot-swap fan-out rides. Off by default on
	// purpose: the RPC names server-side files, so a server exposed to
	// untrusted clients must not honor it.
	AdminSwap bool
}

// Bool is a *bool literal helper for ServerOptions.SharedBatch.
func Bool(v bool) *bool { return &v }

// validate rejects option values NewServer used to clamp silently: a
// negative size or window is a caller bug worth reporting, not a
// request for the default. Negative timeouts are NOT errors — the
// deadline fields document them as "disabled".
func (o ServerOptions) validate() error {
	for _, f := range []struct {
		name string
		v    int
	}{
		{"MaxSessions", o.MaxSessions},
		{"PoolSize", o.PoolSize},
		{"ResultWindow", o.ResultWindow},
		{"MaxBatch", o.MaxBatch},
		{"FairShare", o.FairShare},
		{"SchedQueue", o.SchedQueue},
	} {
		if f.v < 0 {
			return fmt.Errorf("serve: ServerOptions.%s is %d; it must not be negative (0 means default)", f.name, f.v)
		}
	}
	if o.QueueTimeout < 0 {
		return fmt.Errorf("serve: ServerOptions.QueueTimeout is %v; it must not be negative (0 disables queueing)", o.QueueTimeout)
	}
	return nil
}

// unit is one pooled evaluation resource: a weight-sharing clone (its
// inference arena rides inside, recycled by PredictBatchInto) tagged
// with the master it was cloned from, so a checkpoint hot-swap is
// detected at the next acquire.
type unit struct {
	master *snn.Network
	clone  *snn.Network
}

// Server multiplexes concurrent event-stream sessions over one model.
// The model is replaceable under load: LoadCheckpoint swaps the master
// atomically and pooled clones refresh on their next acquire, so
// in-flight window batches finish on the weights they hold and
// everything afterwards — later windows, later recordings, new
// sessions — classifies on the new ones.
type Server struct {
	opts   ServerOptions
	master atomic.Pointer[snn.Network]
	swapMu sync.Mutex // serializes checkpoint commits
	swaps  atomic.Int64
	// ckptFP fingerprints the committed checkpoint bytes (FNV-1a); 0
	// until the first swap. The router asserts replicas converged on
	// the same checkpoint by comparing fingerprints, which generation
	// counters alone cannot prove.
	ckptFP atomic.Uint64

	units   chan *unit
	cloneMu sync.Mutex
	byClone map[*snn.Network]*unit //axsnn:guardedby cloneMu

	// slots is the shared frame-slot pool every session pipeline draws
	// from — sized like the clone pool, so full occupancy costs
	// O(PoolSize × Batch × window) frames however many sessions run.
	slots *stream.SlotPool

	// sched is the shared continuous-batching classifier (nil when
	// SharedBatch is off). Sessions default onto it; frameMode lets a
	// client pin its session to a private pipeline instead.
	sched *stream.Scheduler

	// energy is the SOP-accounting model over the served master's
	// geometry and prune masks — RCU like the master itself, rebuilt by
	// every LoadCheckpoint so accounting follows the swapped-in weights.
	energy atomic.Pointer[approx.EnergyModel]
	// int8OK records whether per-channel int8 panels built on the
	// master at construction — the gate for the modeInt8 session tier.
	// Set once in NewServer, read-only after.
	int8OK bool

	metrics Metrics
	start   time.Time

	sem    chan struct{}
	done   chan struct{} // closed by Close: unblocks queued admissions and stalled writers
	active atomic.Int64
	served atomic.Int64
	mu     sync.Mutex
	closed bool                      //axsnn:guardedby mu
	lns    map[net.Listener]struct{} //axsnn:guardedby mu
	conns  map[net.Conn]struct{}     //axsnn:guardedby mu
	wg     sync.WaitGroup
}

// NewServer builds a server over master. The master is used read-only;
// every classification runs on pooled weight-sharing clones.
//
// Zero option values mean "use the default"; negative sizes and
// windows are configuration errors, reported instead of silently
// clamped (negative timeouts stay meaningful: they disable the
// deadline, per ServerOptions).
func NewServer(master *snn.Network, o ServerOptions) (*Server, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	if o.MaxSessions == 0 {
		o.MaxSessions = 16
	}
	if o.PoolSize == 0 {
		o.PoolSize = tensor.Workers()
	}
	o.IdleTimeout = normTimeout(o.IdleTimeout, DefaultIdleTimeout)
	o.WriteTimeout = normTimeout(o.WriteTimeout, DefaultWriteTimeout)
	if o.ResultWindow == 0 {
		o.ResultWindow = 256
	}
	batch := o.Pipeline.Batch
	if batch <= 0 {
		batch = stream.DefaultBatch
	}
	s := &Server{
		opts:    o,
		units:   make(chan *unit, o.PoolSize),
		byClone: make(map[*snn.Network]*unit, o.PoolSize),
		slots:   stream.NewSlotPool(o.PoolSize, batch),
		start:   time.Now(),
		sem:     make(chan struct{}, o.MaxSessions),
		done:    make(chan struct{}),
		lns:     make(map[net.Listener]struct{}),
		conns:   make(map[net.Conn]struct{}),
	}
	// Build the int8 panels before the clones: CloneArchitecture shares
	// panels, so clones made after the build serve the INT8 tier without
	// a build of their own. A master the quantizer cannot panel (no
	// weighted layers, degenerate shapes) just disables the tier —
	// sessions requesting it are refused at pipeline build.
	s.int8OK = master.BuildInt8Panels() == nil
	s.energy.Store(approx.NewEnergyModel(master))
	s.master.Store(master)
	for i := 0; i < o.PoolSize; i++ {
		s.units <- &unit{master: master, clone: master.CloneArchitecture()}
	}
	// Validate the session pipeline configuration now, not at the first
	// connection: a probe pipeline exercises the same option checks.
	probe := o.Pipeline
	probe.Clones = s
	probe.Slots = s.slots
	if _, err := stream.NewPipeline(master, probe); err != nil {
		return nil, err
	}
	if o.SharedBatch == nil || *o.SharedBatch {
		steps := o.Pipeline.Steps
		if steps <= 0 {
			steps = master.Cfg.Steps
		}
		sched, err := stream.NewScheduler(stream.SchedulerOptions{
			Steps:        steps,
			MaxBatch:     o.MaxBatch,
			Queue:        o.SchedQueue,
			FairShare:    o.FairShare,
			TickInterval: o.TickInterval,
			Clones:       s,
			Observer:     s,
			Energy:       s,
			SensorW:      o.Pipeline.SensorW,
			SensorH:      o.Pipeline.SensorH,
		})
		if err != nil {
			return nil, err
		}
		// Probe the shared-mode pipeline configuration too: it is what
		// most sessions will actually build.
		shared := o.Pipeline
		shared.Scheduler = sched
		if _, err := stream.NewPipeline(master, shared); err != nil {
			sched.Close()
			return nil, err
		}
		s.sched = sched
	}
	return s, nil
}

// Scheduler exposes the shared continuous-batching classifier — nil
// when SharedBatch is off. Its Stats feed the metrics endpoint and the
// fairness assertions.
func (s *Server) Scheduler() *stream.Scheduler { return s.sched }

// Slots exposes the shared frame-slot pool (occupancy and high-water
// gauges feed the metrics endpoint and the soak assertions).
func (s *Server) Slots() *stream.SlotPool { return s.slots }

// AcquireClone implements stream.CloneSource over the shared pool,
// refreshing stale units so a hot-swapped checkpoint reaches every
// batch classified after the swap. The tier resets to exact FP32 on
// every acquire: the pool is shared across tiers, and a clone released
// by an INT8 session must never carry its tier into an FP32 batch.
func (s *Server) AcquireClone() *snn.Network {
	return s.AcquireCloneTier(snn.TierFP32)
}

// AcquireCloneTier implements stream.TierCloneSource: an AcquireClone
// whose clone comes back set to tier t. SupportsTier gates every tiered
// submission and LoadCheckpoint rebuilds panels on swap, so SetTier
// cannot fail here.
func (s *Server) AcquireCloneTier(t snn.PrecisionTier) *snn.Network {
	u := <-s.units
	if m := s.master.Load(); u.master != m {
		u.master = m
		u.clone = m.CloneArchitecture()
	}
	if err := u.clone.SetTier(t); err != nil {
		s.units <- u
		panic(fmt.Sprintf("serve: pooled clone cannot serve tier %v: %v", t, err))
	}
	s.cloneMu.Lock()
	s.byClone[u.clone] = u
	s.cloneMu.Unlock()
	return u.clone
}

// SupportsTier implements stream.TierCloneSource: exact FP32 always,
// quantized INT8 when the master's per-channel panels built.
func (s *Server) SupportsTier(t snn.PrecisionTier) bool {
	return t == snn.TierFP32 || (t == snn.TierINT8 && s.int8OK)
}

// ReleaseClone implements stream.CloneSource.
func (s *Server) ReleaseClone(c *snn.Network) {
	s.cloneMu.Lock()
	u := s.byClone[c]
	delete(s.byClone, c)
	s.cloneMu.Unlock()
	if u == nil {
		panic("serve: ReleaseClone of a clone that was not acquired")
	}
	s.units <- u
}

// LoadCheckpoint reads a snn checkpoint and swaps it in as the master:
// an RCU-style pointer exchange. The swap is atomic — a checkpoint that
// fails to decode or mismatches the architecture leaves the served
// model untouched — and asynchronous for traffic: sessions never stall,
// in-flight batches finish on the clone they hold, and every batch
// acquired after the swap classifies on the new weights.
func (s *Server) LoadCheckpoint(r io.Reader) error {
	fresh, fp, err := s.prepareSwapReader(r)
	if err != nil {
		return err
	}
	s.commitSwap(fresh, fp)
	return nil
}

// LoadCheckpointFile is LoadCheckpoint over a file path.
func (s *Server) LoadCheckpointFile(path string) error {
	fresh, fp, err := s.prepareSwap(path)
	if err != nil {
		return err
	}
	s.commitSwap(fresh, fp)
	return nil
}

// prepareSwap stages a checkpoint file without touching the served
// model: the first phase of the frameSwap RPC, and the loading half of
// LoadCheckpointFile. Safe without swapMu — it only reads the master
// (atomically) and builds a private network.
func (s *Server) prepareSwap(path string) (*snn.Network, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	return s.prepareSwapReader(f)
}

// prepareSwapReader decodes checkpoint bytes onto a fresh deep clone of
// the master and rebuilds whatever capabilities the server advertises,
// returning the network plus the FNV-1a fingerprint of the bytes read.
func (s *Server) prepareSwapReader(r io.Reader) (*snn.Network, uint64, error) {
	h := fnv.New64a()
	fresh := s.master.Load().DeepClone()
	if err := fresh.Load(io.TeeReader(r, h)); err != nil {
		return nil, 0, err
	}
	// DeepClone drops the int8 panels (clones exist to be mutated);
	// rebuild them on the new weights before the swap becomes visible,
	// or the INT8 tier would silently detach from the served model. A
	// panel failure aborts the swap like a decode failure: the served
	// model keeps its advertised capabilities.
	if s.int8OK {
		if err := fresh.BuildInt8Panels(); err != nil {
			return nil, 0, fmt.Errorf("serve: int8 panels for the new checkpoint: %w", err)
		}
	}
	return fresh, h.Sum64(), nil
}

// commitSwap makes a prepared checkpoint the served master and returns
// the new swap generation. The commit itself is cheap — three stores
// under swapMu — which is what lets the router hold every replica's
// prepared checkpoint ready and commit the fleet near-simultaneously.
func (s *Server) commitSwap(fresh *snn.Network, fp uint64) int64 {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	s.energy.Store(approx.NewEnergyModel(fresh))
	s.master.Store(fresh)
	s.ckptFP.Store(fp)
	return s.swaps.Add(1)
}

// CheckpointFP reports the FNV-1a fingerprint of the last committed
// checkpoint's bytes — 0 until the first swap. Replicas serving the
// same checkpoint report the same fingerprint.
func (s *Server) CheckpointFP() uint64 { return s.ckptFP.Load() }

// BatchSOPs implements stream.EnergyAccount over the served model's
// energy profile, feeding the per-batch estimate into the server-wide
// metrics accumulator on the way through. Allocation-free — it runs on
// the scheduler tick and private classify paths.
func (s *Server) BatchSOPs(net *snn.Network, inputSum float64, batch int) (sops, possible float64) {
	sops, possible = s.energy.Load().BatchSOPs(net, inputSum, batch)
	s.metrics.AddSOPs(sops)
	return sops, possible
}

// Master returns the currently served model (the value new sessions
// and refreshed clones draw weights from).
func (s *Server) Master() *snn.Network { return s.master.Load() }

// Swaps reports how many checkpoints have been hot-swapped in.
func (s *Server) Swaps() int64 { return s.swaps.Load() }

// ActiveSessions reports the sessions currently being served.
func (s *Server) ActiveSessions() int64 { return s.active.Load() }

// ServedSessions reports the sessions completed since start.
func (s *Server) ServedSessions() int64 { return s.served.Load() }

// Serve accepts sessions from ln until the listener fails or the
// server closes. Each connection is one session, served concurrently.
// Transient accept errors — timeouts, aborted handshakes, fd
// exhaustion (EMFILE/ENFILE) — are retried with capped exponential
// backoff instead of killing the listener: under fd pressure the
// server degrades to slower accepts, not to deafness.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errServerClosed
	}
	s.lns[ln] = struct{}{}
	s.mu.Unlock()
	var backoff time.Duration
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				s.forgetListener(ln)
				return nil
			}
			if isTransientAccept(err) {
				s.metrics.AcceptRetries.Add(1)
				if backoff == 0 {
					backoff = 5 * time.Millisecond
				} else if backoff *= 2; backoff > time.Second {
					backoff = time.Second
				}
				t := time.NewTimer(backoff)
				select {
				case <-t.C:
				case <-s.done:
					t.Stop()
					s.forgetListener(ln)
					return nil
				}
				continue
			}
			s.forgetListener(ln)
			return err
		}
		backoff = 0
		// The Add must be ordered against Close's closed-flag write:
		// an accept that races the shutdown would otherwise Add while
		// Close is already in Wait.
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			s.forgetListener(ln)
			return nil
		}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			_ = s.ServeConn(conn)
		}()
	}
}

func (s *Server) forgetListener(ln net.Listener) {
	s.mu.Lock()
	delete(s.lns, ln)
	s.mu.Unlock()
}

// isTransientAccept classifies accept errors worth retrying: listener
// timeouts and the classic load-shedding errnos. Everything else
// (closed listener, fatal socket state) ends Serve.
func isTransientAccept(err error) bool {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	for _, errno := range []syscall.Errno{
		syscall.ECONNABORTED, syscall.ECONNRESET,
		syscall.EMFILE, syscall.ENFILE, syscall.EINTR,
	} {
		if errors.Is(err, errno) {
			return true
		}
	}
	return false
}

// ServeConn serves one session on conn (closing it when the session
// ends) and returns the session's terminal error, if any. It is the
// transport-agnostic entry point: production traffic arrives through
// Serve's TCP listener, tests drive it directly over net.Pipe.
func (s *Server) ServeConn(conn net.Conn) error {
	defer conn.Close()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errServerClosed
	}
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	// All session I/O — including the refusal below — rides per-frame
	// deadlines: a half-open peer can stall one frame for at most
	// IdleTimeout/WriteTimeout, never a session slot forever.
	dc := &deadlineConn{conn: conn, idle: s.opts.IdleTimeout, write: s.opts.WriteTimeout}
	if !s.admit() {
		s.metrics.SessionsRefused.Add(1)
		fw := newFrameWriter(dc)
		_ = fw.write(frameError, []byte(ErrAtCapacity.Error()))
		_ = fw.flush()
		return ErrAtCapacity
	}
	s.active.Add(1)
	defer func() {
		s.active.Add(-1)
		s.served.Add(1)
		<-s.sem
	}()
	err := s.serveSession(dc)
	if err != nil {
		s.metrics.SessionErrors.Add(1)
	}
	return err
}

// admit takes a session slot. A full server refuses immediately unless
// QueueTimeout opts into bounded waiting, in which case the connection
// queues until a slot frees, the deadline passes, or the server closes.
func (s *Server) admit() bool {
	select {
	case s.sem <- struct{}{}:
		return true
	default:
	}
	if s.opts.QueueTimeout <= 0 {
		return false
	}
	s.metrics.SessionsQueued.Add(1)
	t := time.NewTimer(s.opts.QueueTimeout)
	defer t.Stop()
	select {
	case s.sem <- struct{}{}:
		return true
	case <-t.C:
		s.metrics.QueueTimeouts.Add(1)
		return false
	case <-s.done:
		return false
	}
}

// serveSession runs one session: a reusable pipeline classifying one
// or more framed recordings back to back. The pipeline runs on this
// goroutine over the reader goroutine's demuxed chunks and stages
// results into the session's bounded ring; the session's writer
// goroutine streams them to the client as credits allow (see session).
// A session failure — protocol, codec, windowing, classification, a
// write error or a reaped credit stall — is reported as a frameError
// (after the writer has stopped, so the error frame cannot interleave
// with a result) and ends the session; it never takes the server down.
func (s *Server) serveSession(dc *deadlineConn) (err error) {
	ss := newSession(s, dc)
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("serve: session panic: %v", p)
		}
		ss.stopWriter()
		if werr := ss.writeErr(); werr != nil && werr != errWriterStopped &&
			(err == nil || err == errWriterStopped) {
			err = werr
		}
		if err == errWriterStopped {
			err = errors.New("serve: session writer exited")
		}
		if err != nil {
			_ = ss.fw.write(frameError, []byte(err.Error()))
			_ = ss.fw.flush()
		}
		ss.stopReader()
	}()

	// The pipeline is built lazily, at the first recording: by then the
	// reader has processed the frameHello (or legacy frameMode) the
	// client led with — frames are relayed in wire order — so the
	// shared-vs-private and tier choices are latched correctly. It is
	// then reused for every recording on the session.
	var p *stream.Pipeline
	for {
		more, err := ss.nextRecording()
		if err != nil {
			return err
		}
		if !more {
			return nil
		}
		if p == nil {
			o := s.opts.Pipeline
			if ss.tierInt8.Load() {
				// A tier the server cannot serve (no panels) is rejected
				// by the pipeline's option validation below and surfaces
				// to the client as a frameError.
				o.Tier = snn.TierINT8
			}
			if s.sched != nil && !ss.privateBatch.Load() {
				// Shared batching: this session produces windows for the
				// server-wide scheduler. The scheduler observes its own
				// coalesced ticks — a producer-side observer would count
				// every window twice — and carries the energy account,
				// so the producer side leaves Energy unset too.
				o.Scheduler = s.sched
			} else {
				o.Clones = s
				o.Slots = s.slots
				o.Observer = s
				o.Energy = s
			}
			p, err = stream.NewPipeline(s.master.Load(), o)
			if err != nil {
				return err
			}
		}
		windows := uint32(0)
		sops := 0.0
		err = p.Run(ss, func(r stream.Result) error {
			windows++
			sops += r.SOPs
			return ss.emit(r)
		})
		if err != nil {
			return err
		}
		if err = ss.drainRecording(); err != nil {
			return err
		}
		if err = ss.finishRecording(windows, sops); err != nil {
			return err
		}
	}
}

// Close stops accepting, closes every live connection and waits for
// session goroutines started by Serve to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	first := !s.closed
	s.closed = true
	for ln := range s.lns {
		ln.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	if first {
		// Unblocks queued admissions and credit-stalled writers.
		close(s.done)
	}
	s.wg.Wait()
	if first && s.sched != nil {
		// After the session drain: an active producer round would
		// otherwise fail with ErrSchedulerClosed instead of finishing.
		// Sessions driven through ServeConn directly (not Serve) that
		// are still mid-round unblock through the scheduler's stop
		// channel rather than hanging.
		s.sched.Close()
	}
	return nil
}
