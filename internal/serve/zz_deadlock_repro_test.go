package serve

import (
	"net"
	"testing"
	"time"

	"repro/internal/stream"
)

// Repro: session errors (bad frame from codec) while the client keeps
// uploading past the 256KB runway. stopReader must not deadlock.
func TestServeAbortWhileClientUploads(t *testing.T) {
	master := testNet(8, 71)
	srv, err := NewServer(master, ServerOptions{
		Pipeline: stream.Options{WindowMS: 50, Steps: 8}, PoolSize: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cliConn, srvConn := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- srv.ServeConn(srvConn) }()

	// Upload garbage data frames forever: the codec rejects the
	// container early, the session aborts, the client keeps pushing.
	go func() {
		fw := newFrameWriter(cliConn)
		junk := make([]byte, 32<<10)
		for {
			if err := fw.write(frameData, junk); err != nil {
				return
			}
			if err := fw.flush(); err != nil {
				return
			}
		}
	}()
	// Drain server->client so the error frame write doesn't block on
	// the synchronous pipe.
	go func() {
		buf := make([]byte, 4096)
		for {
			if _, err := cliConn.Read(buf); err != nil {
				return
			}
		}
	}()

	select {
	case err := <-done:
		t.Logf("session ended: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("deadlock: session never ended while client kept uploading")
	}
}
