package serve

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/defense"
	"repro/internal/dvs"
	"repro/internal/rng"
	"repro/internal/snn"
	"repro/internal/stream"
	"repro/internal/tensor"
)

// testNet builds a small deterministic 16×16 gesture classifier;
// untrained weights are fine for equivalence pinning.
func testNet(steps int, seed uint64) *snn.Network {
	return snn.DVSNet(snn.DefaultConfig(1.0, steps), 16, 16, dvs.GestureClasses, true, rng.New(seed), nil)
}

// testRecording encodes one synthetic 16×16 gesture as AEDAT bytes.
func testRecording(t testing.TB, class int, durMS float64, seed uint64) []byte {
	t.Helper()
	cfg := dvs.DefaultGestureConfig()
	cfg.W, cfg.H = 16, 16
	cfg.Duration = durMS
	cfg.BlobR = 2
	s := dvs.GenerateGesture(class, cfg, rng.New(seed))
	var buf bytes.Buffer
	if err := dvs.WriteAEDAT(&buf, s); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// startSession connects a client to srv over an in-process pipe.
func startSession(srv *Server) (*Client, chan error) {
	return startSessionOptions(srv, ClientOptions{})
}

// startSessionOptions is startSession with explicit client options
// (credit window, deadlines).
func startSessionOptions(srv *Server, o ClientOptions) (*Client, chan error) {
	cs, ss := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- srv.ServeConn(ss) }()
	return NewClientOptions(cs, o), done
}

// standalone is the reference: the same recording through a fresh
// single-recording pipeline on the given network.
func standalone(t testing.TB, net *snn.Network, data []byte, o stream.Options) []stream.Result {
	t.Helper()
	o.Clones = nil
	res, err := stream.Predict(bytes.NewReader(data), net, o)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// sameResult compares two window results ignoring the SOPs estimate:
// the server attributes a batch's SOPs proportionally across the
// windows it coalesced, so the per-window estimate depends on batch
// composition, while everything else stays bit-exact against a
// standalone reference (which runs without an energy model, SOPs 0).
func sameResult(a, b stream.Result) bool {
	a.SOPs, b.SOPs = 0, 0
	return a == b
}

func assertResults(t testing.TB, ctx string, want, got []stream.Result) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d results, want %d", ctx, len(got), len(want))
	}
	for i := range want {
		if !sameResult(want[i], got[i]) {
			t.Fatalf("%s: result %d = %+v, want %+v", ctx, i, got[i], want[i])
		}
	}
}

func TestResultFrameRoundTrip(t *testing.T) {
	in := stream.Result{Window: 41, StartMS: 512.25, Events: 7, Class: 10}
	out, err := decodeResult(appendResult(nil, in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip %+v, want %+v", out, in)
	}
	if _, err := decodeResult(make([]byte, 3)); err == nil {
		t.Fatal("short result frame accepted")
	}
}

// TestServeSessionMatchesStandalone pins the tentpole equivalence: a
// served session's results — including several recordings back to back
// on one session — are identical to fresh standalone pipeline runs.
func TestServeSessionMatchesStandalone(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(1)
	master := testNet(5, 3)
	o := stream.Options{WindowMS: 60, Steps: 5, Batch: 2, ChunkEvents: 64}
	srv, err := NewServer(master, ServerOptions{Pipeline: o, PoolSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	cl, done := startSession(srv)
	defer cl.Close()

	for rec := 0; rec < 3; rec++ {
		data := testRecording(t, rec+1, 250, uint64(10+rec))
		want := standalone(t, master, data, o)
		var got []stream.Result
		n, err := cl.Stream(bytes.NewReader(data), func(r stream.Result) error {
			got = append(got, r)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if n != len(want) {
			t.Fatalf("recording %d: server reported %d windows, want %d", rec, n, len(want))
		}
		assertResults(t, fmt.Sprintf("recording %d", rec), want, got)
	}
	cl.Close()
	if err := <-done; err != nil {
		t.Fatalf("session ended with %v", err)
	}
}

// TestServeSessionWithIncrementalAQF serves the default filter mode:
// session results must match the whole-stream-AQF standalone pipeline.
func TestServeSessionWithIncrementalAQF(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(1)
	master := testNet(4, 5)
	p := defense.DefaultAQFParams(0.01)
	o := stream.Options{WindowMS: 50, Steps: 4, AQF: &p, ChunkEvents: 32}
	srv, err := NewServer(master, ServerOptions{Pipeline: o, PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	cl, done := startSession(srv)
	defer cl.Close()
	data := testRecording(t, 6, 300, 44)
	want := standalone(t, master, data, o)
	var got []stream.Result
	if _, err := cl.Stream(bytes.NewReader(data), func(r stream.Result) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	assertResults(t, "incremental AQF session", want, got)
	cl.Close()
	<-done
}

// TestServeConcurrentSessions runs several sessions at once against
// one bounded pool and pins every session to its standalone reference.
func TestServeConcurrentSessions(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(1)
	master := testNet(4, 7)
	o := stream.Options{WindowMS: 50, Steps: 4, Batch: 2, ChunkEvents: 32}
	srv, err := NewServer(master, ServerOptions{Pipeline: o, MaxSessions: 8, PoolSize: 2})
	if err != nil {
		t.Fatal(err)
	}

	const sessions = 6
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		data := testRecording(t, i%dvs.GestureClasses, 220, uint64(100+i))
		want := standalone(t, master, data, o)
		wg.Add(1)
		go func(i int, data []byte, want []stream.Result) {
			defer wg.Done()
			cl, done := startSession(srv)
			defer cl.Close()
			var got []stream.Result
			if _, err := cl.Stream(bytes.NewReader(data), func(r stream.Result) error {
				got = append(got, r)
				return nil
			}); err != nil {
				errs <- fmt.Errorf("session %d: %w", i, err)
				return
			}
			if len(got) != len(want) {
				errs <- fmt.Errorf("session %d: %d results, want %d", i, len(got), len(want))
				return
			}
			for k := range want {
				if !sameResult(got[k], want[k]) {
					errs <- fmt.Errorf("session %d: result %d = %+v, want %+v", i, k, got[k], want[k])
					return
				}
			}
			cl.Close()
			<-done
		}(i, data, want)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := srv.ActiveSessions(); n != 0 {
		t.Fatalf("%d sessions still active after drain", n)
	}
}

// TestServeSessionLimit pins the session manager's bound: the
// MaxSessions+1'th connection is refused with ErrAtCapacity, loudly.
func TestServeSessionLimit(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(1)
	master := testNet(3, 9)
	o := stream.Options{WindowMS: 50, Steps: 3}
	srv, err := NewServer(master, ServerOptions{Pipeline: o, MaxSessions: 1, PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Occupy the only slot with a session that holds its recording open.
	cl1, done1 := startSession(srv)
	defer cl1.Close()
	started := make(chan struct{})
	finished := make(chan error, 1)
	go func() {
		data := testRecording(t, 1, 120, 11)
		r, w := net.Pipe() // a recording source we can hold open
		go func() {
			w.Write(data[:len(data)/2])
			<-started
			w.Write(data[len(data)/2:])
			w.Close()
		}()
		_, err := cl1.Stream(readerOf(r), nil)
		finished <- err
	}()

	// Wait until the first session is actually admitted.
	for srv.ActiveSessions() == 0 {
		runtime.Gosched()
	}
	cl2, done2 := startSession(srv)
	defer cl2.Close()
	if _, err := cl2.Stream(bytes.NewReader(testRecording(t, 2, 120, 12)), nil); err == nil ||
		!strings.Contains(err.Error(), "capacity") {
		t.Fatalf("second session error = %v, want capacity refusal", err)
	}
	if err := <-done2; !errors.Is(err, ErrAtCapacity) {
		t.Fatalf("ServeConn returned %v, want ErrAtCapacity", err)
	}

	close(started)
	if err := <-finished; err != nil {
		t.Fatalf("first session failed: %v", err)
	}
	cl1.Close()
	<-done1
}

// readerOf adapts a net.Conn to the io.Reader Stream consumes.
func readerOf(c net.Conn) *connReader { return &connReader{c} }

type connReader struct{ c net.Conn }

func (r *connReader) Read(p []byte) (int, error) { return r.c.Read(p) }

// trainedDisagreeing deep-clones base and trains it on synthetic
// gestures until its windowed predictions on data differ from avoid.
func trainedDisagreeing(t testing.TB, base *snn.Network, data []byte, o stream.Options, avoid []stream.Result) *snn.Network {
	t.Helper()
	cfg := dvs.DefaultGestureConfig()
	cfg.W, cfg.H = 16, 16
	cfg.Duration = 120
	cfg.BlobR = 2
	set := dvs.GenerateGestureSet(8, cfg, 900)
	frames := make([][]*tensor.Tensor, set.Len())
	labels := make([]int, set.Len())
	for i, sm := range set.Samples {
		frames[i] = sm.Stream.Voxelize(base.Cfg.Steps)
		labels[i] = sm.Label
	}
	cand := base.DeepClone()
	for epoch := 0; epoch < 8; epoch++ {
		snn.TrainFrames(cand, frames, labels, snn.TrainOptions{
			Epochs: 1, BatchSize: 4, Optimizer: snn.NewAdam(5e-3), Seed: uint64(1000 + epoch),
		})
		if fmt.Sprint(standalone(t, cand, data, o)) != fmt.Sprint(avoid) {
			return cand
		}
	}
	t.Fatal("could not train a model that disagrees with the base; test would be vacuous")
	return nil
}

// TestServeHotSwapNewWeights pins the visible half of the RCU swap:
// after LoadCheckpoint, sessions classify on the new weights — results
// match the new model's standalone pipeline, not the old one's.
func TestServeHotSwapNewWeights(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(1)
	oldNet := testNet(4, 21)
	o := stream.Options{WindowMS: 40, Steps: 4, ChunkEvents: 16}
	data := testRecording(t, 3, 200, 31)
	wantOld := standalone(t, oldNet, data, o)

	// Train a replacement until it visibly disagrees with the old model
	// on this recording, so the swap's effect is observable (untrained
	// random nets often share one constant prediction).
	newNet := trainedDisagreeing(t, oldNet, data, o, wantOld)
	wantNew := standalone(t, newNet, data, o)
	var ckpt bytes.Buffer
	if err := newNet.Save(&ckpt); err != nil {
		t.Fatal(err)
	}

	srv, err := NewServer(oldNet, ServerOptions{Pipeline: o, PoolSize: 2})
	if err != nil {
		t.Fatal(err)
	}

	run := func(ctx string, want []stream.Result) {
		cl, done := startSession(srv)
		defer cl.Close()
		var got []stream.Result
		if _, err := cl.Stream(bytes.NewReader(data), func(r stream.Result) error {
			got = append(got, r)
			return nil
		}); err != nil {
			t.Fatalf("%s: %v", ctx, err)
		}
		assertResults(t, ctx, want, got)
		cl.Close()
		<-done
	}
	run("before swap", wantOld)
	if err := srv.LoadCheckpoint(bytes.NewReader(ckpt.Bytes())); err != nil {
		t.Fatal(err)
	}
	if srv.Swaps() != 1 {
		t.Fatalf("Swaps() = %d, want 1", srv.Swaps())
	}
	run("after swap", wantNew)

	// A corrupt checkpoint must not disturb the served model.
	if err := srv.LoadCheckpoint(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
	run("after failed swap", wantNew)
}

// TestServeBadClientFrame: an unknown frame type is answered with a
// frameError, and the server survives to serve the next session.
func TestServeBadClientFrame(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(1)
	master := testNet(3, 41)
	o := stream.Options{WindowMS: 50, Steps: 3}
	srv, err := NewServer(master, ServerOptions{Pipeline: o, PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	cs, ss := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- srv.ServeConn(ss) }()
	if _, err := cs.Write([]byte{0x7f, 0, 0, 0, 0}); err != nil { // unknown type, empty payload
		t.Fatal(err)
	}
	br := bufio.NewReader(cs)
	typ, n, err := readHeader(br)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		t.Fatal(err)
	}
	if typ != frameError || !strings.Contains(string(payload), "frame type") {
		t.Fatalf("got frame 0x%02x %q, want frameError naming the bad type", typ, payload)
	}
	cs.Close()
	if err := <-done; err == nil {
		t.Fatal("ServeConn reported no error for a bad frame")
	}

	// The server is still healthy.
	cl2, done2 := startSession(srv)
	defer cl2.Close()
	data := testRecording(t, 1, 100, 42)
	if _, err := cl2.Stream(bytes.NewReader(data), nil); err != nil {
		t.Fatalf("server unhealthy after bad frame: %v", err)
	}
	cl2.Close()
	<-done2
}

// TestServeSurvivesMismatchedSensorSession is the panic-containment
// regression test: a session whose recording declares a valid but
// wrong sensor (the pipeline adopts 8×8, the network expects 16×16)
// panics deep in classification. That must fail the SESSION with an
// error frame — never the process — and must not leak the pooled
// clone: with PoolSize 1, a leak would hang every later session.
func TestServeSurvivesMismatchedSensorSession(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(1)
	master := testNet(3, 91) // built for 16×16 input
	o := stream.Options{WindowMS: 50, Steps: 3}
	srv, err := NewServer(master, ServerOptions{Pipeline: o, PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}

	wrong := &dvs.Stream{W: 8, H: 8, Duration: 100}
	for i := 0; i < 40; i++ {
		wrong.Events = append(wrong.Events, dvs.Event{X: i % 8, Y: (i / 8) % 8, P: 1, T: float64(i)})
	}
	var buf bytes.Buffer
	if err := dvs.WriteAEDAT(&buf, wrong); err != nil {
		t.Fatal(err)
	}

	cl, done := startSession(srv)
	defer cl.Close()
	if _, err := cl.Stream(bytes.NewReader(buf.Bytes()), nil); err == nil ||
		!strings.Contains(err.Error(), "panicked") {
		t.Fatalf("mismatched-sensor session error = %v, want a contained classification panic", err)
	}
	cl.Close()
	if err := <-done; err == nil {
		t.Fatal("ServeConn reported no error")
	}

	// The pool must be whole: the next session classifies normally.
	cl2, done2 := startSession(srv)
	defer cl2.Close()
	data := testRecording(t, 2, 120, 92)
	want := standalone(t, master, data, o)
	var got []stream.Result
	if _, err := cl2.Stream(bytes.NewReader(data), func(r stream.Result) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatalf("server unhealthy after contained panic: %v", err)
	}
	assertResults(t, "post-panic session", want, got)
	cl2.Close()
	<-done2
}

// TestServeTCP exercises the production transport end to end: a real
// listener, a real dial, a session matching the standalone reference.
func TestServeTCP(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(1)
	master := testNet(4, 51)
	o := stream.Options{WindowMS: 60, Steps: 4}
	srv, err := NewServer(master, ServerOptions{Pipeline: o, PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("tcp listen unavailable: %v", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	cl := NewClient(conn)
	data := testRecording(t, 5, 240, 52)
	want := standalone(t, master, data, o)
	var got []stream.Result
	if _, err := cl.Stream(bytes.NewReader(data), func(r stream.Result) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	assertResults(t, "tcp session", want, got)
	cl.Close()
	srv.Close()
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve returned %v", err)
	}
}
