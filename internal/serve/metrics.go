package serve

import (
	"encoding/json"
	"expvar"
	"math"
	"net/http"
	"sync/atomic"
	"time"
)

// The window-latency histogram uses fixed quarter-octave buckets (four
// per power of two) from 1µs to ~16.7s, plus one overflow bucket. The
// geometry is the point: bucket resolution is a constant ~19% of the
// value everywhere, comfortably finer than the 2× latency budget the
// soak test enforces, while Observe stays a lock-free binary search
// plus one atomic add — safe to call from the serving path.
const (
	histMinNs   = int64(1000) // 1µs
	histBuckets = 96          // 24 octaves × 4
)

// histBounds[i] is bucket i's inclusive upper bound in nanoseconds.
var histBounds = func() [histBuckets]int64 {
	var b [histBuckets]int64
	f := float64(histMinNs)
	r := math.Pow(2, 0.25)
	for i := range b {
		b[i] = int64(f)
		f *= r
	}
	return b
}()

// LatencyHist is a fixed-bucket concurrent latency histogram. The zero
// value is ready to use; Observe and Snapshot are safe from any
// goroutine and allocation-free.
type LatencyHist struct {
	counts [histBuckets + 1]atomic.Int64
}

// Observe records n samples of ns nanoseconds each (a pipeline round
// reports once for all its windows; per-window latency within a round
// is indistinguishable anyway).
func (h *LatencyHist) Observe(ns int64, n int64) {
	lo, hi := 0, histBuckets
	for lo < hi {
		mid := (lo + hi) / 2
		if histBounds[mid] < ns {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(n)
}

// HistSnapshot is a point-in-time copy of a LatencyHist.
type HistSnapshot struct {
	Counts [histBuckets + 1]int64
}

// Snapshot copies the current counts.
func (h *LatencyHist) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Sub returns the histogram delta since prev — the interval form the
// soak test compares phases with.
func (s HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	var d HistSnapshot
	for i := range s.Counts {
		d.Counts[i] = s.Counts[i] - prev.Counts[i]
	}
	return d
}

// Count is the total samples in the snapshot.
func (s HistSnapshot) Count() int64 {
	var t int64
	for _, c := range s.Counts {
		t += c
	}
	return t
}

// Quantile returns the upper bound of the bucket containing the q'th
// quantile (0 < q <= 1), 0 for an empty snapshot. Overflow samples
// report twice the last bound.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	total := s.Count()
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum >= target {
			if i < histBuckets {
				return time.Duration(histBounds[i])
			}
			return time.Duration(2 * histBounds[histBuckets-1])
		}
	}
	return time.Duration(2 * histBounds[histBuckets-1])
}

// Metrics is the server's counter registry. Everything is a plain
// atomic — no locks, no allocation on update — so the serving path can
// bump counters freely and an expvar scrape reads a consistent-enough
// point-in-time view.
type Metrics struct {
	SessionsRefused atomic.Int64 // admission refusals (capacity or queue timeout)
	SessionsQueued  atomic.Int64 // sessions that waited in the admission queue
	QueueTimeouts   atomic.Int64 // queued sessions that timed out unadmitted
	SessionErrors   atomic.Int64 // sessions that ended with an error
	AcceptRetries   atomic.Int64 // transient Accept errors retried with backoff

	WindowsServed atomic.Int64 // windows classified across all sessions
	ResultsSent   atomic.Int64 // result frames actually delivered

	CreditStalls    atomic.Int64 // writer waits on an exhausted credit window
	ResultsBuffered atomic.Int64 // gauge: undelivered results across sessions

	Latency LatencyHist // per-round window classification latency

	// sops accumulates the energy model's estimated synaptic operations
	// across every classified batch, as math.Float64bits in an
	// atomic.Uint64 — the float analogue of the counters above, updated
	// by a CAS loop so the batch-classify path stays lock-free.
	sops atomic.Uint64
}

// AddSOPs accumulates estimated synaptic operations from one classified
// batch. Lock-free and allocation-free: it runs on the scheduler tick
// and private classify paths.
func (m *Metrics) AddSOPs(v float64) {
	for {
		old := m.sops.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if m.sops.CompareAndSwap(old, next) {
			return
		}
	}
}

// SOPsEstimated reads the accumulated synaptic-operation estimate.
func (m *Metrics) SOPsEstimated() float64 { return math.Float64frombits(m.sops.Load()) }

// Metrics exposes the live counter registry (primarily for tests and
// embedders; HTTP scraping goes through MetricsHandler).
func (s *Server) Metrics() *Metrics { return &s.metrics }

// ObserveRound implements stream.Observer for the server's sessions
// and its shared scheduler: every classification round — a private
// pipeline's flush or a coalesced scheduler tick — lands in the shared
// histogram and the windows-served counter. Exactly one of the two
// observes any given window (shared sessions run with a nil pipeline
// observer), so nothing double-counts.
func (s *Server) ObserveRound(windows int, latencyNs int64) {
	s.metrics.WindowsServed.Add(int64(windows))
	s.metrics.Latency.Observe(latencyNs, int64(windows))
}

// MetricsSnapshot is the JSON document the metrics endpoint serves.
type MetricsSnapshot struct {
	SessionsActive  int64 `json:"sessions_active"`
	SessionsServed  int64 `json:"sessions_served"`
	SessionsRefused int64 `json:"sessions_refused"`
	SessionsQueued  int64 `json:"sessions_queued"`
	QueueTimeouts   int64 `json:"queue_timeouts"`
	SessionErrors   int64 `json:"session_errors"`
	AcceptRetries   int64 `json:"accept_retries"`

	WindowsServed int64   `json:"windows_served"`
	ResultsSent   int64   `json:"results_sent"`
	WindowsPerSec float64 `json:"windows_per_sec"`

	WindowLatencyP50Ms float64 `json:"window_latency_p50_ms"`
	WindowLatencyP99Ms float64 `json:"window_latency_p99_ms"`

	CreditStalls    int64 `json:"credit_stalls"`
	ResultsBuffered int64 `json:"results_buffered"`

	// Continuous-batching gauges (zero when SharedBatch is off): how
	// full the coalesced GEMMs run, how deep the submission queue sits,
	// and the fairness-cap high water (never above FairShare).
	SharedBatch     bool    `json:"shared_batch"`
	SchedTicks      int64   `json:"sched_ticks"`
	SchedWindows    int64   `json:"sched_windows"`
	BatchFillAvg    float64 `json:"batch_fill_avg"`
	BatchFillHist   []int64 `json:"batch_fill_hist,omitempty"`
	SchedQueueDepth int64   `json:"sched_queue_depth"`
	SchedDeferrals  int64   `json:"sched_deferrals"`
	SchedFailures   int64   `json:"sched_failures"`
	SchedMaxPerTick int64   `json:"sched_max_per_tick"`

	SlotCap       int64 `json:"slot_cap"`
	SlotOccupancy int64 `json:"slot_occupancy"`
	SlotHighWater int64 `json:"slot_high_water"`
	SlotWaits     int64 `json:"slot_waits"`
	CloneCap      int64 `json:"clone_cap"`

	// Energy accounting (see approx.EnergyModel): total estimated
	// synaptic operations attributed across all classified windows and
	// the modelled energy they cost, plus whether the quantized INT8
	// precision tier is available to sessions (per-channel panels built
	// on the served master).
	SOPsEstimated    float64 `json:"sops_estimated"`
	EnergyEstimatedJ float64 `json:"energy_estimated_j"`
	Int8Supported    bool    `json:"int8_supported"`

	SwapGeneration int64   `json:"swap_generation"`
	CheckpointFP   uint64  `json:"checkpoint_fp"`
	UptimeSec      float64 `json:"uptime_sec"`
}

// MetricsSnapshot assembles the current counters, pool gauges and
// latency quantiles.
func (s *Server) MetricsSnapshot() MetricsSnapshot {
	m := &s.metrics
	hist := m.Latency.Snapshot()
	up := time.Since(s.start).Seconds()
	var wps float64
	if up > 0 {
		wps = float64(m.WindowsServed.Load()) / up
	}
	snap := MetricsSnapshot{
		SessionsActive:  s.active.Load(),
		SessionsServed:  s.served.Load(),
		SessionsRefused: m.SessionsRefused.Load(),
		SessionsQueued:  m.SessionsQueued.Load(),
		QueueTimeouts:   m.QueueTimeouts.Load(),
		SessionErrors:   m.SessionErrors.Load(),
		AcceptRetries:   m.AcceptRetries.Load(),

		WindowsServed: m.WindowsServed.Load(),
		ResultsSent:   m.ResultsSent.Load(),
		WindowsPerSec: wps,

		WindowLatencyP50Ms: float64(hist.Quantile(0.50)) / float64(time.Millisecond),
		WindowLatencyP99Ms: float64(hist.Quantile(0.99)) / float64(time.Millisecond),

		CreditStalls:    m.CreditStalls.Load(),
		ResultsBuffered: m.ResultsBuffered.Load(),

		SlotCap:       int64(s.slots.Size()),
		SlotOccupancy: s.slots.Occupancy(),
		SlotHighWater: s.slots.HighWater(),
		SlotWaits:     s.slots.Waits(),
		CloneCap:      int64(s.opts.PoolSize),

		SOPsEstimated: m.SOPsEstimated(),
		Int8Supported: s.int8OK,

		SwapGeneration: s.swaps.Load(),
		CheckpointFP:   s.ckptFP.Load(),
		UptimeSec:      up,
	}
	if em := s.energy.Load(); em != nil {
		snap.EnergyEstimatedJ = snap.SOPsEstimated * em.EnergyPerSOpJ
	}
	if s.sched != nil {
		st := s.sched.Stats()
		snap.SharedBatch = true
		snap.SchedTicks = st.Ticks
		snap.SchedWindows = st.Windows
		snap.BatchFillAvg = st.AvgFill()
		snap.BatchFillHist = st.Fill
		snap.SchedQueueDepth = st.QueueDepth
		snap.SchedDeferrals = st.Deferrals
		snap.SchedFailures = st.Failures
		snap.SchedMaxPerTick = st.MaxPerTick
	}
	return snap
}

// MetricsHandler serves MetricsSnapshot — the handler cmd/axsnn-serve
// mounts on its -metrics listener, and what tests hit through httptest.
// JSON by default; Prometheus text exposition when the request asks for
// it (?format=prometheus, or a text/plain / OpenMetrics Accept header —
// what a Prometheus scraper sends). Registry-free so any number of
// servers (and test instances) can each have one.
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if wantsPromText(r) {
			w.Header().Set("Content-Type", promContentType)
			writeServerProm(w, s.MetricsSnapshot())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.MetricsSnapshot())
	})
}

// PublishExpvar registers the snapshot under name in the process-global
// expvar namespace. expvar panics on duplicate names, so this is for
// the binary's main (cmd/axsnn-serve), never for library or test code
// — those use MetricsHandler.
func (s *Server) PublishExpvar(name string) {
	expvar.Publish(name, expvar.Func(func() any { return s.MetricsSnapshot() }))
}
