package serve

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/defense"
	"repro/internal/dvs"
	"repro/internal/stream"
	"repro/internal/tensor"
)

// TestServeSharedMatchesPrivate is the serve-tier half of the
// continuous-batching equivalence gate: sessions riding the shared
// scheduler and sessions opted out onto private pipelines run
// concurrently against one server — plain and AQF-filtered pipeline
// shapes — and every one of them must stream results bit-identical to
// the standalone reference. The scheduler's counters must account for
// exactly the shared sessions' windows, no more and no fewer.
func TestServeSharedMatchesPrivate(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(2)
	aqf := defense.DefaultAQFParams(0.01)
	configs := []struct {
		name string
		o    stream.Options
	}{
		{"plain", stream.Options{WindowMS: 45, Steps: 4, Batch: 2, ChunkEvents: 64}},
		{"aqf", stream.Options{WindowMS: 50, Steps: 4, Batch: 3, ChunkEvents: 48, AQF: &aqf}},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			master := testNet(4, 61)
			srv, err := NewServer(master, ServerOptions{
				Pipeline: cfg.o, MaxSessions: 6, PoolSize: 2, MaxBatch: 4,
			})
			if err != nil {
				t.Fatal(err)
			}
			const sessions = 6 // even indices shared, odd opted out
			type job struct {
				data []byte
				want []stream.Result
			}
			jobs := make([][]job, sessions)
			sharedWant := 0
			for i := range jobs {
				jobs[i] = make([]job, 2)
				for r := range jobs[i] {
					data := testRecording(t, (i+r)%dvs.GestureClasses, 220, uint64(500+10*i+r))
					jobs[i][r] = job{data: data, want: standalone(t, master, data, cfg.o)}
					if i%2 == 0 {
						sharedWant += len(jobs[i][r].want)
					}
				}
			}
			var wg sync.WaitGroup
			errs := make(chan error, sessions)
			for i := 0; i < sessions; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					cl, done := startSessionOptions(srv, ClientOptions{Config: SessionConfig{PrivateBatch: i%2 == 1}})
					defer cl.Close()
					for r, j := range jobs[i] {
						var got []stream.Result
						if _, err := cl.Stream(bytes.NewReader(j.data), func(res stream.Result) error {
							got = append(got, res)
							return nil
						}); err != nil {
							errs <- fmt.Errorf("session %d recording %d: %w", i, r, err)
							return
						}
						if len(got) != len(j.want) {
							errs <- fmt.Errorf("session %d recording %d: %d results, want %d", i, r, len(got), len(j.want))
							return
						}
						for k := range j.want {
							if !sameResult(got[k], j.want[k]) {
								errs <- fmt.Errorf("session %d recording %d: result %d = %+v, want %+v",
									i, r, k, got[k], j.want[k])
								return
							}
						}
					}
					cl.Close()
					<-done
				}(i)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
			st := srv.Scheduler().Stats()
			if st.Windows != int64(sharedWant) {
				t.Fatalf("scheduler classified %d windows; the shared sessions streamed %d (opted-out windows must not ride it)",
					st.Windows, sharedWant)
			}
			if fair := int64(srv.Scheduler().FairShare()); st.MaxPerTick > fair {
				t.Fatalf("one session took %d windows in a tick, fairness cap is %d", st.MaxPerTick, fair)
			}
			if st.Failures != 0 {
				t.Fatalf("%d scheduler failures during a clean run", st.Failures)
			}
		})
	}
}

// TestServeSharedOptOut pins the escape hatch by itself: a PrivateBatch
// client on a shared-default server gets exact results from a private
// pipeline — the scheduler sees zero traffic, the slot pool sees all
// of it.
func TestServeSharedOptOut(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(1)
	master := testNet(4, 61)
	o := stream.Options{WindowMS: 45, Steps: 4, Batch: 2, ChunkEvents: 64}
	srv, err := NewServer(master, ServerOptions{Pipeline: o, MaxSessions: 2, PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	data := testRecording(t, 2, 300, 37)
	want := standalone(t, master, data, o)

	cl, done := startSessionOptions(srv, ClientOptions{Config: SessionConfig{PrivateBatch: true}})
	defer cl.Close()
	var got []stream.Result
	if _, err := cl.Stream(bytes.NewReader(data), func(r stream.Result) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	cl.Close()
	<-done
	assertResults(t, "opted-out session", want, got)
	if st := srv.Scheduler().Stats(); st.Windows != 0 || st.Ticks != 0 {
		t.Fatalf("scheduler saw %d windows over %d ticks from an opted-out session, want none", st.Windows, st.Ticks)
	}
	if hw := srv.Slots().HighWater(); hw < 1 {
		t.Fatalf("slot high water = %d: the opted-out session did not ride the private slot pool", hw)
	}
}

// TestServeSharedStarvation is the fairness soak: one heavy session
// with a deep backlog (round width 4 against FairShare 1) shares the
// scheduler with three light sessions. The cap must hold — no tick
// gives any session more than FairShare windows — deferrals must
// actually happen, and every session, heavy included, still gets exact
// results. (go test -race runs this in CI's race job.)
func TestServeSharedStarvation(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(2)
	master := testNet(4, 61)
	o := stream.Options{WindowMS: 40, Steps: 4, Batch: 4, ChunkEvents: 48}
	srv, err := NewServer(master, ServerOptions{
		Pipeline: o, MaxSessions: 4, PoolSize: 2,
		MaxBatch: 2, FairShare: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	heavy := testRecording(t, 1, 1200, 83) // ~30 windows, 4 in flight at a time
	light := testRecording(t, 2, 160, 84)  // ~4 windows
	heavyWant := standalone(t, master, heavy, o)
	lightWant := standalone(t, master, light, o)

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	run := func(name string, data []byte, want []stream.Result, repeats int) {
		defer wg.Done()
		cl, done := startSession(srv)
		defer cl.Close()
		for rec := 0; rec < repeats; rec++ {
			var got []stream.Result
			if _, err := cl.Stream(bytes.NewReader(data), func(r stream.Result) error {
				got = append(got, r)
				return nil
			}); err != nil {
				errs <- fmt.Errorf("%s recording %d: %w", name, rec, err)
				return
			}
			if len(got) != len(want) {
				errs <- fmt.Errorf("%s recording %d: %d results, want %d", name, rec, len(got), len(want))
				return
			}
			for k := range want {
				if !sameResult(got[k], want[k]) {
					errs <- fmt.Errorf("%s recording %d: result %d = %+v, want %+v", name, rec, k, got[k], want[k])
					return
				}
			}
		}
		cl.Close()
		<-done
	}
	wg.Add(4)
	go run("heavy", heavy, heavyWant, 2)
	for i := 0; i < 3; i++ {
		go run(fmt.Sprintf("light-%d", i), light, lightWant, 4)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := srv.Scheduler().Stats()
	if st.MaxPerTick > 1 {
		t.Fatalf("a session got %d windows in one tick; FairShare=1 must cap it at 1", st.MaxPerTick)
	}
	if st.Deferrals == 0 {
		t.Fatal("a 4-wide round against FairShare=1 produced no deferrals; the test did not exercise the cap")
	}
	if st.QueueDepth != 0 {
		t.Fatalf("queue depth %d after every session drained, want 0", st.QueueDepth)
	}
}

// TestServeSharedCreditInterleave is the satellite regression for
// frame-done accounting when windows complete across tick boundaries:
// tiny credit and result windows (2 each) against FairShare 1 and
// MaxBatch 2 force every session's rounds to interleave with other
// sessions' ticks and with its own credit top-ups. Window order, done
// counts and the client/server credit resync must all survive several
// recordings back to back, and nothing may stay buffered at the end.
// (go test -race runs this in CI's race job.)
func TestServeSharedCreditInterleave(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(2)
	master := testNet(4, 61)
	o := stream.Options{WindowMS: 40, Steps: 4, Batch: 4, ChunkEvents: 48}
	srv, err := NewServer(master, ServerOptions{
		Pipeline: o, MaxSessions: 3, PoolSize: 2,
		MaxBatch: 2, FairShare: 1, ResultWindow: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	data := testRecording(t, 3, 600, 71)
	want := standalone(t, master, data, o)
	if len(want) < 8 {
		t.Fatalf("recording yields %d windows; need a multiple of the 2-credit window to interleave", len(want))
	}

	const sessions = 3
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl, done := startSessionOptions(srv, ClientOptions{Config: SessionConfig{CreditWindow: 2}})
			defer cl.Close()
			for rec := 0; rec < 3; rec++ {
				next := 0
				n, err := cl.Stream(bytes.NewReader(data), func(r stream.Result) error {
					if r.Window != next {
						return fmt.Errorf("window %d delivered out of order (want %d)", r.Window, next)
					}
					if !sameResult(r, want[next]) {
						return fmt.Errorf("window %d = %+v, want %+v", next, r, want[next])
					}
					next++
					return nil
				})
				if err != nil {
					errs <- fmt.Errorf("session %d recording %d: %w", i, rec, err)
					return
				}
				if n != len(want) || next != len(want) {
					errs <- fmt.Errorf("session %d recording %d: declared %d, delivered %d, want %d",
						i, rec, n, next, len(want))
					return
				}
			}
			cl.Close()
			<-done
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	m := srv.Metrics()
	if b := m.ResultsBuffered.Load(); b != 0 {
		t.Fatalf("%d results still buffered after every session drained", b)
	}
	if st := srv.Scheduler().Stats(); st.Deferrals == 0 {
		t.Fatal("no deferrals: the credit interleave never crossed a tick boundary")
	}
	if n := srv.ActiveSessions(); n != 0 {
		t.Fatalf("%d sessions still active after drain", n)
	}
}

// TestServeSharedAbortDrainsBufferedGauge is the gauge-leak regression:
// a 1-credit client that consumes one result and then dies leaves the
// session with staged, undeliverable results. Aborting the session
// must hand every one of them back to the ResultsBuffered gauge — a
// server that leaks the gauge here reports phantom buffered results
// forever.
func TestServeSharedAbortDrainsBufferedGauge(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(1)
	master := testNet(4, 61)
	o := stream.Options{WindowMS: 40, Steps: 4, Batch: 2, ChunkEvents: 48}
	srv, err := NewServer(master, ServerOptions{Pipeline: o, MaxSessions: 1, PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	data := testRecording(t, 1, 500, 57)
	if want := standalone(t, master, data, o); len(want) < 4 {
		t.Fatalf("recording yields %d windows; need enough to stay staged past 1 credit", len(want))
	}

	cl, done := startSessionOptions(srv, ClientOptions{Config: SessionConfig{CreditWindow: 1}})
	defer cl.Close()
	seen := 0
	_, err = cl.Stream(bytes.NewReader(data), func(stream.Result) error {
		seen++
		return fmt.Errorf("consumer died")
	})
	if err == nil {
		t.Fatal("Stream returned nil after the emit callback failed")
	}
	if seen != 1 {
		t.Fatalf("consumer saw %d results before dying, want 1", seen)
	}
	cl.Close()
	<-done
	if n := srv.ActiveSessions(); n != 0 {
		t.Fatalf("%d sessions still active after the abort", n)
	}
	if b := srv.Metrics().ResultsBuffered.Load(); b != 0 {
		t.Fatalf("results_buffered = %d after the aborted session tore down, want 0 (gauge leak)", b)
	}
}
