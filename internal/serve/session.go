package serve

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/snn"
	"repro/internal/stream"
)

var (
	// errCreditStall is the slow-consumer reap: the client let the
	// credit window sit exhausted for a full IdleTimeout.
	errCreditStall = errors.New("serve: credit window exhausted past the idle timeout (slow consumer)")
	// errWriterStopped marks an abort-path writer exit; it is internal
	// bookkeeping, never surfaced as the session error.
	errWriterStopped = errors.New("serve: session writer stopped")
	errServerClosed  = errors.New("serve: server closed")
)

// wireCmd is one unit of the session's result ring: a window result,
// the end-of-recording marker, the negotiated handshake echo, or a
// swap RPC answer. Fixed-size by construction — ring traffic moves by
// value and allocates nothing on the result path (the zero kind is
// cmdResult, so the hot path stages `wireCmd{res: r}` untouched).
type wireCmd struct {
	kind    byte
	windows uint32  // cmdDone: the recording's window count
	sops    float64 // cmdDone: the recording's total estimated SOPs
	res     stream.Result
	cfg     SessionConfig // cmdAccept: the negotiated config to echo
	swap    SwapStatus    // cmdSwap: the phase's answer
}

const (
	cmdResult = iota // res: one window result (credit-gated)
	cmdDone          // windows/sops: end-of-recording marker
	cmdAccept        // cfg: frameAccept echo (bypasses credits)
	cmdSwap          // swap: frameSwapResult answer (bypasses credits)
)

// Inbound chunk queue geometry: the reader goroutine relays data bytes
// to the pipeline through readBuffers recycled chunks of readChunk
// bytes — a bounded upload runway (256 KB) the server will read ahead
// of a stalled pipeline, past which the socket itself backpressures
// the uploader.
const (
	readChunk   = 32 << 10
	readBuffers = 8
)

// rmsg is one message from the reader goroutine to the session
// goroutine: a data chunk, a recording boundary, a clean connection
// close, a read error, a hello handshake, or a swap RPC phase.
// Fixed-size, moved by value.
type rmsg struct {
	kind  byte
	buf   []byte        // rData: a free-list chunk holding payload bytes
	err   error         // rErr
	cfg   SessionConfig // rHello: the negotiated config to echo
	phase byte          // rSwap: swapPrepare/swapCommit/swapAbort
	path  string        // rSwap: checkpoint path (prepare only)
}

const (
	rData  = iota // payload bytes of the current recording
	rEnd          // frameEnd: the recording is complete
	rEOF          // connection closed cleanly
	rErr          // read or protocol error
	rHello        // frameHello accepted; the accept echo must be staged
	rSwap         // frameSwap phase for the session goroutine to execute
)

// session is one connection's serving state, three goroutines wide:
//
//   - the reader owns the connection's receive side, demuxing
//     frameCredit grants into the credit account the moment they
//     arrive and relaying data bytes through a bounded chunk queue;
//   - the session goroutine runs the pipeline over those chunks and
//     stages results into a bounded ring;
//   - the writer drains the ring onto the wire, pausing when the
//     client's credit window is exhausted.
//
// The reader's independence is what makes credit-based backpressure
// deadlock-free on one full-duplex connection: top-ups keep flowing
// even while the pipeline is blocked on a full result ring. Undelivered
// state per session is capped at ResultWindow staged results plus the
// readBuffers×readChunk upload runway plus one in-flight round — none
// of it pooled memory (classifyBatch releases slots and clones before
// emit can block).
type session struct {
	srv *Server
	dc  *deadlineConn
	br  *bufio.Reader // reader-goroutine-only after newSession
	fw  *frameWriter

	credits    atomic.Int64 // results the client has authorized
	creditMode atomic.Bool  // latched by the first frameCredit
	topup      chan struct{}

	// privateBatch opts the session out of the server's shared-batch
	// scheduler (frameHello, or legacy frameMode/modePrivate). Set by
	// the reader goroutine, read by the session goroutine when it
	// builds the pipeline at the first recording.
	privateBatch atomic.Bool
	// tierInt8 requests the quantized INT8 precision tier (frameHello,
	// or legacy frameMode/modeInt8). Latched like privateBatch: the
	// session goroutine reads it when the pipeline is built.
	tierInt8 atomic.Bool

	// Reader-goroutine-only handshake ordering state: a hello must
	// precede the first data frame and cannot follow a legacy mode
	// frame or a second hello; a swap phase is refused mid-recording.
	sawHello    bool
	sawMode     bool
	sawData     bool
	inRecording bool

	// Session-goroutine-only swap staging: the checkpoint prepared on
	// this connection, waiting for commit or abort. Connection-scoped
	// on purpose — the router's all-or-nothing fan-out holds one admin
	// connection per replica open across prepare and commit.
	staged   *snn.Network
	stagedFP uint64

	msgs chan rmsg   // reader → session
	free chan []byte // recycled data chunks

	// Session-goroutine-only demux state: the staged-back message and
	// the partially consumed chunk.
	pending    rmsg
	hasPending bool
	cur        []byte
	curBuf     []byte

	cmds       chan wireCmd
	quit       chan struct{} // closed at stop: once the receive side is done no credit can arrive, so a stalled writer must not wait out the idle timeout
	writerDone chan struct{}
	stopped    bool // session-goroutine-only

	errMu sync.Mutex
	werr  error //axsnn:guardedby errMu
}

func newSession(srv *Server, dc *deadlineConn) *session {
	ss := &session{
		srv:        srv,
		dc:         dc,
		br:         bufio.NewReader(dc),
		fw:         newFrameWriter(dc),
		topup:      make(chan struct{}, 1),
		msgs:       make(chan rmsg, readBuffers+2),
		free:       make(chan []byte, readBuffers),
		cmds:       make(chan wireCmd, srv.opts.ResultWindow),
		quit:       make(chan struct{}),
		writerDone: make(chan struct{}),
	}
	for i := 0; i < readBuffers; i++ {
		ss.free <- make([]byte, readChunk)
	}
	go ss.reader()
	go ss.writer()
	return ss
}

// reader owns the connection's receive side for the whole session. It
// consumes frames as they arrive — applying frameCredit grants inline,
// relaying data through the bounded chunk queue — so a pipeline
// stalled on a full result ring never stops the credit top-ups that
// will unblock it. The price of the bounded queue: a client that
// uploads more than the runway ahead while refusing to consume results
// stalls its own grants behind the unread upload and is reaped at
// IdleTimeout.
func (ss *session) reader() {
	defer close(ss.msgs)
	for {
		typ, n, err := readHeader(ss.br)
		if err != nil {
			if err == io.EOF {
				ss.msgs <- rmsg{kind: rEOF}
			} else {
				ss.msgs <- rmsg{kind: rErr, err: err}
			}
			return
		}
		switch typ {
		case frameCredit:
			grant, cerr := readCreditPayload(ss.br, n)
			if cerr != nil {
				ss.msgs <- rmsg{kind: rErr, err: cerr}
				return
			}
			ss.addCredits(grant)
		case frameMode:
			bits, merr := readModePayload(ss.br, n)
			if merr != nil {
				ss.msgs <- rmsg{kind: rErr, err: merr}
				return
			}
			if ss.sawHello {
				ss.msgs <- rmsg{kind: rErr, err: errors.New("serve: legacy mode frame after hello")}
				return
			}
			ss.sawMode = true
			ss.privateBatch.Store(bits&modePrivate != 0)
			ss.tierInt8.Store(bits&modeInt8 != 0)
		case frameHello:
			cfg, herr := ss.readHello(n)
			if herr != nil {
				ss.msgs <- rmsg{kind: rErr, err: herr}
				return
			}
			ss.msgs <- rmsg{kind: rHello, cfg: cfg}
		case frameSwap:
			phase, path, serr := ss.readSwap(n)
			if serr != nil {
				ss.msgs <- rmsg{kind: rErr, err: serr}
				return
			}
			ss.msgs <- rmsg{kind: rSwap, phase: phase, path: path}
		case frameData:
			ss.sawData, ss.inRecording = true, true
			for n > 0 {
				buf := <-ss.free
				m := n
				if m > readChunk {
					m = readChunk
				}
				if _, err := io.ReadFull(ss.br, buf[:m]); err != nil {
					ss.msgs <- rmsg{kind: rErr, err: err}
					return
				}
				ss.msgs <- rmsg{kind: rData, buf: buf[:m]}
				n -= m
			}
		case frameEnd:
			if n != 0 {
				ss.msgs <- rmsg{kind: rErr, err: fmt.Errorf("serve: end frame carries %d payload bytes", n)}
				return
			}
			ss.inRecording = false
			ss.msgs <- rmsg{kind: rEnd}
		default:
			ss.msgs <- rmsg{kind: rErr, err: fmt.Errorf("serve: unexpected frame type 0x%02x from client", typ)}
			return
		}
	}
}

// readHello consumes a frameHello payload, negotiates, and applies the
// resulting config: the private/tier latches are stored and the hello's
// credit window becomes the initial grant, exactly as if a legacy
// client had sent the equivalent mode and credit frames. Returns the
// negotiated config the session goroutine must echo as frameAccept.
// Reader-goroutine only.
func (ss *session) readHello(n int) (SessionConfig, error) {
	switch {
	case ss.sawHello:
		return SessionConfig{}, errors.New("serve: duplicate hello frame")
	case ss.sawMode:
		return SessionConfig{}, errors.New("serve: hello frame after a legacy mode frame")
	case ss.sawData:
		return SessionConfig{}, errors.New("serve: hello frame after the first data frame")
	}
	p := make([]byte, n)
	if _, err := io.ReadFull(ss.br, p); err != nil {
		return SessionConfig{}, err
	}
	cfg, err := decodeHello(p)
	if err != nil {
		return SessionConfig{}, err
	}
	if cfg.Tier == snn.TierINT8 && !ss.srv.SupportsTier(snn.TierINT8) {
		return SessionConfig{}, errors.New("serve: hello requests the int8 precision tier, which this server cannot serve")
	}
	ss.sawHello = true
	// The echo reports effective settings, not requested ones: a server
	// running without a shared scheduler serves every session privately
	// and says so. Version stays the client's (already capped at
	// ProtoVersion by decodeHello) — the highest both sides speak.
	if ss.srv.sched == nil {
		cfg.PrivateBatch = true
	}
	ss.privateBatch.Store(cfg.PrivateBatch)
	ss.tierInt8.Store(cfg.Tier == snn.TierINT8)
	if cfg.CreditWindow > 0 {
		ss.addCredits(int64(cfg.CreditWindow))
	}
	return cfg, nil
}

// readSwap consumes a frameSwap payload and validates the phase; the
// session goroutine executes it (checkpoint loading does not belong on
// the reader, which must keep draining credit frames). Reader-goroutine
// only.
func (ss *session) readSwap(n int) (byte, string, error) {
	if !ss.srv.opts.AdminSwap {
		return 0, "", errors.New("serve: swap frames are refused unless the server enables AdminSwap")
	}
	if ss.inRecording {
		return 0, "", errors.New("serve: swap frame mid-recording")
	}
	if n < 1 {
		return 0, "", errors.New("serve: swap frame without a phase byte")
	}
	p := make([]byte, n)
	if _, err := io.ReadFull(ss.br, p); err != nil {
		return 0, "", err
	}
	phase, path := p[0], string(p[1:])
	switch phase {
	case swapPrepare:
		if path == "" {
			return 0, "", errors.New("serve: swap prepare without a checkpoint path")
		}
	case swapCommit, swapAbort:
		if path != "" {
			return 0, "", fmt.Errorf("serve: swap phase %d carries %d unexpected payload bytes", phase, n-1)
		}
	default:
		return 0, "", fmt.Errorf("serve: unknown swap phase %d", phase)
	}
	return phase, path, nil
}

// takeMsg returns the staged-back message, if any, else the next one
// from the reader. Session-goroutine only.
func (ss *session) takeMsg() (rmsg, bool) {
	if ss.hasPending {
		ss.hasPending = false
		return ss.pending, true
	}
	m, ok := <-ss.msgs
	return m, ok
}

// recycle returns a fully consumed chunk to the free list.
func (ss *session) recycle() {
	if len(ss.cur) == 0 && ss.curBuf != nil {
		ss.free <- ss.curBuf[:cap(ss.curBuf)]
		ss.curBuf, ss.cur = nil, nil
	}
}

// Read hands the current recording's payload bytes to the pipeline's
// decoder, ending with io.EOF at the recording boundary (or at a
// connection close mid-recording, which the decoder then rejects as a
// truncated container). It is the session goroutine's view of the
// reader's demuxed chunk queue and allocates nothing.
func (ss *session) Read(p []byte) (int, error) {
	for {
		if len(ss.cur) > 0 {
			n := copy(p, ss.cur)
			ss.cur = ss.cur[n:]
			ss.recycle()
			return n, nil
		}
		m, ok := ss.takeMsg()
		if !ok {
			return 0, io.ErrUnexpectedEOF
		}
		switch m.kind {
		case rData:
			ss.cur, ss.curBuf = m.buf, m.buf
		case rEnd:
			return 0, io.EOF
		case rEOF:
			// Stage the close back so the between-recordings loop sees
			// the clean session end after the drain.
			ss.pending, ss.hasPending = m, true
			return 0, io.EOF
		case rHello, rSwap:
			// Unreachable: the reader refuses both mid-recording. Kept as
			// a loud failure rather than a silent drop.
			return 0, errors.New("serve: handshake frame mid-recording")
		default: // rErr
			return 0, m.err
		}
	}
}

// drainRecording discards the recording's framing tail through its
// frameEnd. The AEDAT decoder reads exactly the event count its header
// declares and never touches the bytes after it; without the drain the
// tail would leak into the next recording on the session. Payload
// bytes past the container are discarded, not errors: the framing
// layer delimits recordings, the codec validates them.
func (ss *session) drainRecording() error {
	ss.cur = nil
	ss.recycle()
	for {
		m, ok := ss.takeMsg()
		if !ok {
			return nil
		}
		switch m.kind {
		case rData:
			ss.free <- m.buf[:cap(m.buf)]
		case rEnd:
			return nil
		case rEOF, rHello, rSwap:
			// Between-recordings traffic (a swap can follow the frameEnd
			// the decoder already consumed through Read): stage it back
			// for nextRecording.
			ss.pending, ss.hasPending = m, true
			return nil
		default: // rErr
			return m.err
		}
	}
}

// nextRecording blocks until the next recording's first frame arrives,
// returning false on a clean session end (connection closed between
// recordings). Credit top-ups never surface here — the reader applies
// them inline. Hello echoes and swap phases are handled here, between
// recordings, then the wait continues: a probe client may hello and
// close without ever streaming, and an admin connection may run swap
// phases with no recordings at all.
func (ss *session) nextRecording() (bool, error) {
	for {
		m, ok := ss.takeMsg()
		if !ok {
			return false, nil
		}
		switch m.kind {
		case rEOF:
			return false, nil
		case rErr:
			return false, m.err
		case rHello:
			if err := ss.stageCmd(wireCmd{kind: cmdAccept, cfg: m.cfg}); err != nil {
				return false, err
			}
		case rSwap:
			if err := ss.handleSwap(m.phase, m.path); err != nil {
				return false, err
			}
		default:
			// rData or rEnd opens the next recording (an immediate rEnd is
			// an empty recording the decoder will reject).
			ss.pending, ss.hasPending = m, true
			return true, nil
		}
	}
}

// handleSwap executes one swap phase against the server and stages the
// answer. A failed prepare is answered in-band (OK false) instead of
// ending the session: the coordinating router still needs this
// connection to abort its peers' staging.
func (ss *session) handleSwap(phase byte, path string) error {
	var st SwapStatus
	switch phase {
	case swapPrepare:
		fresh, fp, err := ss.srv.prepareSwap(path)
		if err != nil {
			st.Msg = err.Error()
		} else {
			ss.staged, ss.stagedFP = fresh, fp
			st = SwapStatus{OK: true, Generation: ss.srv.Swaps(), Fingerprint: fp}
		}
	case swapCommit:
		if ss.staged == nil {
			st.Msg = "serve: swap commit without a prepared checkpoint"
		} else {
			gen := ss.srv.commitSwap(ss.staged, ss.stagedFP)
			st = SwapStatus{OK: true, Generation: gen, Fingerprint: ss.stagedFP}
			ss.staged, ss.stagedFP = nil, 0
		}
	case swapAbort:
		ss.staged, ss.stagedFP = nil, 0
		st = SwapStatus{OK: true, Generation: ss.srv.Swaps(), Fingerprint: ss.srv.CheckpointFP()}
	}
	return ss.stageCmd(wireCmd{kind: cmdSwap, swap: st})
}

// stageCmd stages a non-result command (accept echo, swap answer) into
// the ring, failing fast once the writer has died. Unlike emit it never
// touches the buffered-results gauge — these frames bypass credits.
func (ss *session) stageCmd(cmd wireCmd) error {
	select {
	case ss.cmds <- cmd:
		return nil
	case <-ss.writerDone:
		if err := ss.writeErr(); err != nil && err != errWriterStopped {
			return err
		}
		return errWriterStopped
	}
}

// stopReader ends the reader goroutine and waits for it: closing the
// connection unblocks a reader parked in a socket read, draining the
// queue unblocks one parked on a full queue — and the drain must
// recycle data chunks, because a reader that exhausted the free list
// (a client uploading past the runway while the session was aborting)
// is parked on the free channel, where only a returned chunk can
// reach it. Session-goroutine only, after the writer has stopped and
// any error frame has been written.
func (ss *session) stopReader() {
	ss.dc.conn.Close()
	for m := range ss.msgs {
		if m.kind == rData {
			ss.free <- m.buf[:cap(m.buf)]
		}
	}
}

// addCredits applies one frameCredit grant. Called from the reader
// goroutine while the writer may be waiting in awaitCredit.
func (ss *session) addCredits(n int64) {
	if n <= 0 {
		return
	}
	ss.credits.Add(n)
	ss.creditMode.Store(true)
	select {
	case ss.topup <- struct{}{}:
	default:
	}
}

// emit is the pipeline's result sink: stage the window into the ring.
// Blocks when the ring is full (the sanctioned backpressure point) and
// fails fast once the writer has died.
func (ss *session) emit(r stream.Result) error {
	select {
	case ss.cmds <- wireCmd{res: r}:
		ss.srv.metrics.ResultsBuffered.Add(1)
		return nil
	case <-ss.writerDone:
		if err := ss.writeErr(); err != nil && err != errWriterStopped {
			return err
		}
		return errWriterStopped
	}
}

// finishRecording stages the end-of-recording marker carrying the
// window count and the recording's total estimated SOPs.
func (ss *session) finishRecording(windows uint32, sops float64) error {
	return ss.stageCmd(wireCmd{kind: cmdDone, windows: windows, sops: sops})
}

// writer drains the ring onto the wire: one credit per result, a
// per-window flush (results are the serving heartbeat, not a batch
// artifact), frameDone echoing the remaining credits. Accept echoes and
// swap answers bypass the credit gate — they are control traffic, not
// results the client budgeted for. Write deadlines ride the
// deadlineConn underneath the frameWriter.
func (ss *session) writer() {
	defer close(ss.writerDone)
	rbuf := make([]byte, 0, resultSize)
	for cmd := range ss.cmds {
		switch cmd.kind {
		case cmdDone:
			var p [doneSize]byte
			binary.LittleEndian.PutUint32(p[0:], cmd.windows)
			binary.LittleEndian.PutUint32(p[4:], creditU32(ss.credits.Load()))
			binary.LittleEndian.PutUint64(p[8:], math.Float64bits(cmd.sops))
			if err := ss.writeFlush(frameDone, p[:]); err != nil {
				return
			}
		case cmdAccept:
			rbuf = appendHello(rbuf[:0], cmd.cfg)
			if err := ss.writeFlush(frameAccept, rbuf); err != nil {
				return
			}
		case cmdSwap:
			if err := ss.writeFlush(frameSwapResult, appendSwapResult(nil, cmd.swap)); err != nil {
				return
			}
		default: // cmdResult
			if err := ss.sendResult(cmd.res, &rbuf); err != nil {
				// The result in hand was counted into the buffered gauge at
				// emit, will never be delivered, and is no longer in the ring
				// for stopWriter's drain to see — account for it here or the
				// gauge leaks one phantom result per writer that dies
				// mid-delivery.
				ss.srv.metrics.ResultsBuffered.Add(-1)
				ss.setWriteErr(err)
				return
			}
		}
	}
}

// writeFlush emits one control frame and flushes, recording a write
// error for the session goroutine. Writer-goroutine only.
func (ss *session) writeFlush(typ byte, payload []byte) error {
	if err := ss.fw.write(typ, payload); err != nil {
		ss.setWriteErr(err)
		return err
	}
	if err := ss.fw.flush(); err != nil {
		ss.setWriteErr(err)
		return err
	}
	return nil
}

// sendResult delivers one staged result: wait for a credit, frame it,
// flush it, move it from the buffered gauge to the sent counter.
func (ss *session) sendResult(r stream.Result, rbuf *[]byte) error {
	if err := ss.awaitCredit(); err != nil {
		return err
	}
	*rbuf = appendResult((*rbuf)[:0], r)
	if err := ss.fw.write(frameResult, *rbuf); err != nil {
		return err
	}
	if err := ss.fw.flush(); err != nil {
		return err
	}
	ss.srv.metrics.ResultsBuffered.Add(-1)
	ss.srv.metrics.ResultsSent.Add(1)
	return nil
}

// awaitCredit consumes one result credit, waiting for a top-up when
// the window is exhausted. Creditless sessions (no frameCredit seen
// yet) pass straight through — the legacy flow. The fast path is one
// CAS, no allocation; the stall path is cold and metered.
func (ss *session) awaitCredit() error {
	if !ss.creditMode.Load() {
		return nil
	}
	for {
		if c := ss.credits.Load(); c > 0 {
			if ss.credits.CompareAndSwap(c, c-1) {
				return nil
			}
			continue
		}
		ss.srv.metrics.CreditStalls.Add(1)
		// A grant that raced past the credit check wins over the quit
		// signal: results that can still be delivered are delivered.
		select {
		case <-ss.topup:
			continue
		default:
		}
		var timeout <-chan time.Time
		var t *time.Timer
		if idle := ss.srv.opts.IdleTimeout; idle > 0 {
			t = time.NewTimer(idle)
			timeout = t.C
		}
		select {
		case <-ss.topup:
		case <-timeout:
			return errCreditStall
		case <-ss.quit:
			stopTimer(t)
			return errWriterStopped
		case <-ss.srv.done:
			stopTimer(t)
			return errServerClosed
		}
		stopTimer(t)
	}
}

func stopTimer(t *time.Timer) {
	if t != nil {
		t.Stop()
	}
}

// stopWriter ends the writer goroutine and waits for it. The writer
// keeps draining staged results while credits last, but a *stalled*
// writer is released immediately: stopWriter only runs once the
// session's receive side is done (clean EOF or error), after which no
// credit top-up can ever arrive — waiting out the idle timeout on a
// dead connection would just pin the session slot. Session-goroutine
// only.
func (ss *session) stopWriter() {
	if ss.stopped {
		return
	}
	ss.stopped = true
	close(ss.quit)
	close(ss.cmds)
	<-ss.writerDone
	// The writer can exit early — a write error, a reaped credit stall,
	// the abort itself — leaving staged results in the closed ring it
	// never drained. They were counted into the buffered gauge at emit,
	// so they must come off it here or the gauge leaks one session's
	// ring worth of phantom results forever.
	for cmd := range ss.cmds {
		if cmd.kind == cmdResult {
			ss.srv.metrics.ResultsBuffered.Add(-1)
		}
	}
}

func (ss *session) setWriteErr(err error) {
	ss.errMu.Lock()
	if ss.werr == nil {
		ss.werr = err
	}
	ss.errMu.Unlock()
}

func (ss *session) writeErr() error {
	ss.errMu.Lock()
	defer ss.errMu.Unlock()
	return ss.werr
}

// creditU32 clamps the credit gauge for the frameDone field.
func creditU32(c int64) uint32 {
	if c < 0 {
		return 0
	}
	if c > int64(^uint32(0)) {
		return ^uint32(0)
	}
	return uint32(c)
}
