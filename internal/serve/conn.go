package serve

import (
	"net"
	"time"
)

// Deadline defaults. Zero-valued options resolve to these; a negative
// option disables the deadline entirely (trusted transports, tests
// that park connections on purpose).
const (
	// DefaultIdleTimeout bounds how long a peer may go silent between
	// frames — the half-open-client reaper. It also bounds a credit
	// stall: a consumer that grants nothing for this long loses the
	// session instead of squatting on it.
	DefaultIdleTimeout = 2 * time.Minute
	// DefaultWriteTimeout bounds one frame write, including the
	// ErrAtCapacity refusal to a client that never reads.
	DefaultWriteTimeout = 30 * time.Second
)

// normTimeout resolves an option against its default: 0 means "use the
// default", negative means "disabled" (normalized to 0 internally).
func normTimeout(d, def time.Duration) time.Duration {
	if d == 0 {
		return def
	}
	if d < 0 {
		return 0
	}
	return d
}

// deadlineConn wraps a connection so every physical read refreshes the
// read deadline and every physical write refreshes the write deadline.
// Framing layers (bufio, frameWriter) stack on top unchanged: the
// deadline is per I/O operation, so a long recording streamed by a
// live peer never times out, while a peer that goes quiet mid-frame —
// or stops draining its results — fails within one timeout. A zero
// duration leaves that direction deadline-free.
type deadlineConn struct {
	conn        net.Conn
	idle, write time.Duration
}

func (d *deadlineConn) Read(p []byte) (int, error) {
	if d.idle > 0 {
		if err := d.conn.SetReadDeadline(time.Now().Add(d.idle)); err != nil {
			return 0, err
		}
	}
	return d.conn.Read(p)
}

func (d *deadlineConn) Write(p []byte) (int, error) {
	if d.write > 0 {
		if err := d.conn.SetWriteDeadline(time.Now().Add(d.write)); err != nil {
			return 0, err
		}
	}
	return d.conn.Write(p)
}
