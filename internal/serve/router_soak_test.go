//go:build race

// Multi-process router soak: real replica subprocesses, a real router,
// the race detector watching the relay and swap paths. Only built into
// the race job — the subprocess fleet is too heavy for the tier-1 run.
package serve

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/stream"
	"repro/internal/tensor"
)

// soakPipeline must match replicaMain's server pipeline exactly: the
// parent computes the bit-identity reference with it.
var soakPipeline = stream.Options{WindowMS: 45, Steps: 4, Batch: 2, ChunkEvents: 64}

// TestMain doubles as the replica entrypoint: re-executing the test
// binary with AXSNN_SOAK_REPLICA=<addr> runs a serve replica instead of
// the test suite — how the soak builds a fleet of real processes from
// one binary.
func TestMain(m *testing.M) {
	if addr := os.Getenv("AXSNN_SOAK_REPLICA"); addr != "" {
		replicaMain(addr)
		return
	}
	os.Exit(m.Run())
}

// replicaMain serves the deterministic soak model on addr (with a
// retry window for rebinding a just-killed replica's port), announcing
// the bound address on stdout.
func replicaMain(addr string) {
	tensor.SetWorkers(1)
	srv, err := NewServer(testNet(4, 61), ServerOptions{
		Pipeline: soakPipeline, MaxSessions: 16, PoolSize: 2, AdminSwap: true,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "replica:", err)
		os.Exit(1)
	}
	var ln net.Listener
	deadline := time.Now().Add(10 * time.Second)
	for {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			fmt.Fprintln(os.Stderr, "replica:", err)
			os.Exit(1)
		}
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Printf("LISTEN %s\n", ln.Addr())
	if err := srv.Serve(ln); err != nil {
		fmt.Fprintln(os.Stderr, "replica:", err)
		os.Exit(1)
	}
}

// soakReplica is one replica subprocess.
type soakReplica struct {
	cmd  *exec.Cmd
	addr string
}

// spawnReplica re-executes the test binary as a replica on addr
// (127.0.0.1:0 for an ephemeral port) and waits for its LISTEN line.
func spawnReplica(t *testing.T, addr string) *soakReplica {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), "AXSNN_SOAK_REPLICA="+addr)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Skipf("cannot spawn replica subprocess: %v", err)
	}
	rep := &soakReplica{cmd: cmd}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})

	lines := bufio.NewScanner(stdout)
	got := make(chan string, 1)
	go func() {
		for lines.Scan() {
			if a, ok := strings.CutPrefix(lines.Text(), "LISTEN "); ok {
				got <- a
				break
			}
		}
		// Keep draining so the child never blocks on stdout.
		_, _ = io.Copy(io.Discard, stdout)
		close(got)
	}()
	select {
	case a, ok := <-got:
		if !ok {
			t.Fatal("replica exited before announcing its address")
		}
		rep.addr = a
	case <-time.After(60 * time.Second):
		t.Fatal("replica did not announce its address")
	}
	return rep
}

// kill terminates the subprocess and reaps it.
func (r *soakReplica) kill(t *testing.T) {
	t.Helper()
	if err := r.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = r.cmd.Process.Wait()
}

// TestRouterMultiProcessSoak is the PR 10 acceptance soak: three
// replica subprocesses behind an in-process router under -race.
// Sessions through the router stay bit-identical to the direct
// reference while a fleet-wide hot-swap fans out; a replica killed
// mid-stream turns into a prompt session error, never a hang; the
// survivors keep serving bit-identically; the restarted replica rejoins
// and takes placements; and a final fleet swap lands every replica on
// the same generation and fingerprint.
func TestRouterMultiProcessSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process soak skipped in -short")
	}
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(1)
	master := testNet(4, 61) // the same net every replica builds
	o := soakPipeline
	data := testRecording(t, 2, 400, 91)
	want := standalone(t, master, data, o)

	// The swap checkpoint carries the master's own weights, so results
	// are invariant under swap timing — the same trick as the
	// single-process soak.
	ckpt := filepath.Join(t.TempDir(), "soak.gob")
	var buf bytes.Buffer
	if err := master.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckpt, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	reps := []*soakReplica{
		spawnReplica(t, "127.0.0.1:0"),
		spawnReplica(t, "127.0.0.1:0"),
		spawnReplica(t, "127.0.0.1:0"),
	}
	rt, err := NewRouter(RouterOptions{
		Replicas:       []string{reps[0].addr, reps[1].addr, reps[2].addr},
		HealthInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	waitFor(t, "fleet up", 60*time.Second, func() bool { return rt.Healthy() == 3 })
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("tcp listen unavailable: %v", err)
	}
	go func() { _ = rt.Serve(rln) }()
	raddr := rln.Addr().String()

	// Phase 1: concurrent sessions through the router while a fleet
	// swap fans out mid-load. Every session must match the reference.
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for rec := 0; rec < 2; rec++ {
				cl, err := Dial(raddr, ClientOptions{})
				if err != nil {
					errs <- fmt.Errorf("session %d: %w", i, err)
					return
				}
				var got []stream.Result
				_, err = cl.Stream(bytes.NewReader(data), func(r stream.Result) error {
					got = append(got, r)
					return nil
				})
				cl.Close()
				if err != nil {
					errs <- fmt.Errorf("session %d rec %d: %w", i, rec, err)
					return
				}
				if len(got) != len(want) {
					errs <- fmt.Errorf("session %d rec %d: %d results, want %d", i, rec, len(got), len(want))
					return
				}
				for k := range want {
					if !sameResult(got[k], want[k]) {
						errs <- fmt.Errorf("session %d rec %d: result %d = %+v, want %+v", i, rec, k, got[k], want[k])
						return
					}
				}
			}
		}(i)
	}
	statuses, err := rt.SwapAll(ckpt)
	if err != nil {
		t.Fatalf("mid-load SwapAll: %v", err)
	}
	for _, st := range statuses {
		// Fingerprints identify the checkpoint bytes and must agree
		// fleet-wide; the generation is each process's local swap count
		// (a probe-triggered resync bumps it), so it is only required to
		// have advanced.
		if !st.OK || st.Generation < 1 || st.Fingerprint != statuses[0].Fingerprint {
			t.Fatalf("mid-load swap status %+v diverges from %+v", st, statuses[0])
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Phase 2: a session pinned in flight — a one-result credit window
	// and a consumer that parks after the first result until the kill
	// has landed; kill its replica process under it.
	cl, err := Dial(raddr, ClientOptions{Config: SessionConfig{CreditWindow: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	firstResult := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	streamErr := make(chan error, 1)
	go func() {
		_, err := cl.Stream(bytes.NewReader(data), func(stream.Result) error {
			once.Do(func() {
				close(firstResult)
				<-release
			})
			return nil
		})
		streamErr <- err
	}()
	<-firstResult

	var victim *soakReplica
	waitFor(t, "victim identified", 10*time.Second, func() bool {
		for _, rep := range rt.MetricsSnapshot().Replicas {
			if rep.ActiveSessions > 0 {
				for _, sr := range reps {
					if sr.addr == rep.Addr {
						victim = sr
						return true
					}
				}
			}
		}
		return false
	})
	killStart := time.Now()
	victim.kill(t)
	close(release)
	select {
	case err := <-streamErr:
		if err == nil {
			t.Fatal("stream over a killed replica process reported success")
		}
		if d := time.Since(killStart); d > 30*time.Second {
			t.Fatalf("session error took %v after the kill, past the deadline budget", d)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("stream over a killed replica process hung")
	}
	waitFor(t, "loss detected", 30*time.Second, func() bool { return rt.Healthy() == 2 })

	// Phase 3: survivors keep serving bit-identically.
	for i := 0; i < 4; i++ {
		assertResults(t, fmt.Sprintf("survivor session %d", i), want,
			streamThrough(t, raddr, ClientOptions{}, data))
	}

	// Phase 4: restart the killed replica on its old address. The
	// health loop resyncs it to the fanned-out checkpoint and brings it
	// back; placements must reach it again.
	restarted := spawnReplica(t, victim.addr)
	if restarted.addr != victim.addr {
		t.Fatalf("restarted replica bound %s, want %s", restarted.addr, victim.addr)
	}
	waitFor(t, "replica rejoin", 60*time.Second, func() bool { return rt.Healthy() == 3 })
	before := func() int64 {
		for _, rep := range rt.MetricsSnapshot().Replicas {
			if rep.Addr == victim.addr {
				return rep.Placements
			}
		}
		return -1
	}()
	waitFor(t, "placements on the rejoined replica", 60*time.Second, func() bool {
		assertResults(t, "rejoin-era session", want, streamThrough(t, raddr, ClientOptions{}, data))
		for _, rep := range rt.MetricsSnapshot().Replicas {
			if rep.Addr == victim.addr {
				return rep.Placements > before
			}
		}
		return false
	})

	// Phase 5: a final fleet swap must land all three processes —
	// two originals and one restarted-and-resynced — on the same
	// generation and fingerprint.
	statuses, err = rt.SwapAll(ckpt)
	if err != nil {
		t.Fatalf("final SwapAll: %v", err)
	}
	if len(statuses) != 3 {
		t.Fatalf("final swap reached %d replicas, want 3", len(statuses))
	}
	for _, st := range statuses {
		if !st.OK || st.Generation < 2 || st.Fingerprint != statuses[0].Fingerprint {
			t.Fatalf("final swap status %+v diverges from %+v", st, statuses[0])
		}
	}
}
