package serve

import (
	"encoding/binary"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/stream"
	"repro/internal/tensor"
)

// fuzzServer is one small shared server for the whole fuzz run:
// sessions are independent, so reusing it keeps each iteration at
// connection cost instead of pool-construction cost. Short deadlines
// keep an input that leaves the server waiting for more frames from
// stalling an iteration.
var fuzzSrv = struct {
	once sync.Once
	srv  *Server
}{}

func fuzzServer(t testing.TB) *Server {
	fuzzSrv.once.Do(func() {
		tensor.SetWorkers(1)
		srv, err := NewServer(testNet(3, 2), ServerOptions{
			Pipeline:     stream.Options{WindowMS: 40, Steps: 3, ChunkEvents: 64},
			PoolSize:     1,
			IdleTimeout:  200 * time.Millisecond,
			WriteTimeout: 200 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		fuzzSrv.srv = srv
	})
	return fuzzSrv.srv
}

// fuzzFrame appends one well-formed frame header + payload.
func fuzzFrame(b []byte, typ byte, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	return append(append(b, hdr[:]...), payload...)
}

// FuzzServeFraming throws hostile client bytes at a live session — the
// raw fuzz input is the client's entire send stream — and requires the
// server to terminate the session cleanly: no panic (serveSession's
// recover would convert one into a session error, but a crash in the
// reader or writer goroutine would kill the process and fail the run),
// no hang past the deadlines, and the server stays serviceable for the
// next iteration. Seeds cover the valid opening handshakes, truncated
// and oversized headers, unknown frame types, and mode/credit frames
// with wrong payload sizes.
func FuzzServeFraming(f *testing.F) {
	rec := testRecording(f, 1, 120, 5)

	f.Add([]byte{})
	f.Add([]byte{frameData})                              // truncated header
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff})           // unknown type, huge length
	f.Add(fuzzFrame(nil, frameData, []byte("not aedat"))) // garbage container bytes
	f.Add(fuzzFrame(nil, frameEnd, []byte{1}))            // end frame with payload
	f.Add(fuzzFrame(nil, frameMode, []byte{0x55, 0x55}))  // oversized mode payload
	f.Add(fuzzFrame(nil, frameCredit, []byte{1, 0}))      // undersized credit payload
	f.Add(fuzzFrame(nil, frameResult, make([]byte, 20)))  // server-only frame type
	f.Add(fuzzFrame(fuzzFrame(nil, frameMode, []byte{modePrivate | modeInt8}), frameEnd, nil))
	valid := fuzzFrame(nil, frameMode, []byte{modeInt8})
	valid = fuzzFrame(valid, frameCredit, []byte{8, 0, 0, 0})
	valid = fuzzFrame(valid, frameData, rec)
	f.Add(fuzzFrame(valid, frameEnd, nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		srv := fuzzServer(t)
		cs, ss := net.Pipe()
		done := make(chan error, 1)
		go func() { done <- srv.ServeConn(ss) }()
		// Drain everything the server sends so its writes never block;
		// a real hostile client that refuses to read is covered by the
		// write deadline, which this harness keeps short.
		drained := make(chan struct{})
		go func() {
			defer close(drained)
			_, _ = io.Copy(io.Discard, cs)
		}()
		_ = cs.SetWriteDeadline(time.Now().Add(200 * time.Millisecond))
		_, _ = cs.Write(data)
		_ = cs.Close()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("session did not terminate after hostile input")
		}
		<-drained
	})
}
