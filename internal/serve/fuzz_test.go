package serve

import (
	"encoding/binary"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/stream"
	"repro/internal/tensor"
)

// fuzzServer is one small shared server for the whole fuzz run:
// sessions are independent, so reusing it keeps each iteration at
// connection cost instead of pool-construction cost. Short deadlines
// keep an input that leaves the server waiting for more frames from
// stalling an iteration.
var fuzzSrv = struct {
	once sync.Once
	srv  *Server
}{}

func fuzzServer(t testing.TB) *Server {
	fuzzSrv.once.Do(func() {
		tensor.SetWorkers(1)
		srv, err := NewServer(testNet(3, 2), ServerOptions{
			Pipeline:     stream.Options{WindowMS: 40, Steps: 3, ChunkEvents: 64},
			PoolSize:     1,
			IdleTimeout:  200 * time.Millisecond,
			WriteTimeout: 200 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		fuzzSrv.srv = srv
	})
	return fuzzSrv.srv
}

// fuzzFrame appends one well-formed frame header + payload.
func fuzzFrame(b []byte, typ byte, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	return append(append(b, hdr[:]...), payload...)
}

// FuzzServeFraming throws hostile client bytes at a live session — the
// raw fuzz input is the client's entire send stream — and requires the
// server to terminate the session cleanly: no panic (serveSession's
// recover would convert one into a session error, but a crash in the
// reader or writer goroutine would kill the process and fail the run),
// no hang past the deadlines, and the server stays serviceable for the
// next iteration. Seeds cover the valid opening handshakes, truncated
// and oversized headers, unknown frame types, and mode/credit frames
// with wrong payload sizes.
func FuzzServeFraming(f *testing.F) {
	rec := testRecording(f, 1, 120, 5)

	f.Add([]byte{})
	f.Add([]byte{frameData})                              // truncated header
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff})           // unknown type, huge length
	f.Add(fuzzFrame(nil, frameData, []byte("not aedat"))) // garbage container bytes
	f.Add(fuzzFrame(nil, frameEnd, []byte{1}))            // end frame with payload
	f.Add(fuzzFrame(nil, frameMode, []byte{0x55, 0x55}))  // oversized mode payload
	f.Add(fuzzFrame(nil, frameCredit, []byte{1, 0}))      // undersized credit payload
	f.Add(fuzzFrame(nil, frameResult, make([]byte, 20)))  // server-only frame type
	f.Add(fuzzFrame(fuzzFrame(nil, frameMode, []byte{modePrivate | modeInt8}), frameEnd, nil))
	valid := fuzzFrame(nil, frameMode, []byte{modeInt8})
	valid = fuzzFrame(valid, frameCredit, []byte{8, 0, 0, 0})
	valid = fuzzFrame(valid, frameData, rec)
	f.Add(fuzzFrame(valid, frameEnd, nil))

	// Handshake-era seeds: the versioned hello, its version-skew and
	// truncation edges, and the admin swap RPC (refused here — the fuzz
	// server does not enable AdminSwap).
	hello := appendHello(nil, SessionConfig{Version: ProtoVersion, CreditWindow: 4})
	f.Add(fuzzFrame(nil, frameHello, hello))                            // bare valid hello
	f.Add(fuzzFrame(fuzzFrame(nil, frameHello, hello), frameData, rec)) // hello then data
	f.Add(fuzzFrame(nil, frameHello, hello[:3]))                        // truncated hello
	future := appendHello(nil, SessionConfig{Version: ProtoVersion, CreditWindow: 4})
	future[0] = ProtoVersion + 1
	f.Add(fuzzFrame(nil, frameHello, future))                              // version this build refuses
	f.Add(fuzzFrame(nil, frameHello, append(hello, 0xaa, 0xbb)))           // newer-minor trailing bytes
	f.Add(fuzzFrame(fuzzFrame(nil, frameHello, hello), frameHello, hello)) // duplicate hello
	f.Add(fuzzFrame(nil, frameSwap, append([]byte{swapPrepare}, "x.gob"...)))
	f.Add(fuzzFrame(nil, frameSwap, []byte{swapCommit}))
	f.Add(fuzzFrame(nil, frameSwap, nil)) // swap without a phase byte

	f.Fuzz(func(t *testing.T, data []byte) {
		srv := fuzzServer(t)
		cs, ss := net.Pipe()
		done := make(chan error, 1)
		go func() { done <- srv.ServeConn(ss) }()
		fuzzDrive(t, cs, data, done)
	})
}

// fuzzDrive writes hostile bytes at a live session endpoint, drains
// whatever comes back, and requires termination within the harness
// deadlines.
func fuzzDrive(t *testing.T, cs net.Conn, data []byte, done chan error) {
	t.Helper()
	// Drain everything the server sends so its writes never block;
	// a real hostile client that refuses to read is covered by the
	// write deadline, which this harness keeps short.
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		_, _ = io.Copy(io.Discard, cs)
	}()
	_ = cs.SetWriteDeadline(time.Now().Add(200 * time.Millisecond))
	_, _ = cs.Write(data)
	_ = cs.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("session did not terminate after hostile input")
	}
	<-drained
}

// fuzzRouter is a shared single-replica router in front of the shared
// fuzz server, dialing it over loopback TCP.
var fuzzRt = struct {
	once sync.Once
	rt   *Router
	err  error
}{}

func fuzzRouter(t testing.TB) *Router {
	fuzzRt.once.Do(func() {
		srv := fuzzServer(t)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fuzzRt.err = err
			return
		}
		go func() { _ = srv.Serve(ln) }()
		rt, err := NewRouter(RouterOptions{
			Replicas:       []string{ln.Addr().String()},
			HealthInterval: 50 * time.Millisecond,
			IdleTimeout:    200 * time.Millisecond,
			WriteTimeout:   200 * time.Millisecond,
		})
		if err != nil {
			fuzzRt.err = err
			return
		}
		deadline := time.Now().Add(30 * time.Second)
		for rt.Healthy() == 0 {
			if time.Now().After(deadline) {
				fuzzRt.err = io.ErrNoProgress
				rt.Close()
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		fuzzRt.rt = rt
	})
	if fuzzRt.err != nil {
		t.Skipf("router fuzz needs loopback tcp: %v", fuzzRt.err)
	}
	return fuzzRt.rt
}

// FuzzRouterProxy feeds hostile client byte streams through the router's
// frame-aware relay onto a live replica: the proxy must never panic or
// hang, must keep relaying only well-formed frame boundaries, and both
// tiers must survive for the next iteration. Seeds mirror the framing
// fuzzer plus relay-specific edges (headers declaring payloads past the
// frame cap).
func FuzzRouterProxy(f *testing.F) {
	rec := testRecording(f, 1, 120, 5)
	hello := appendHello(nil, SessionConfig{Version: ProtoVersion, CreditWindow: 4})

	f.Add([]byte{})
	f.Add([]byte{frameData}) // truncated header
	f.Add(fuzzFrame(nil, frameHello, hello))
	f.Add(fuzzFrame(fuzzFrame(fuzzFrame(nil, frameHello, hello), frameData, rec), frameEnd, nil))
	f.Add(fuzzFrame(fuzzFrame(nil, frameCredit, []byte{8, 0, 0, 0}), frameData, rec))
	f.Add([]byte{frameData, 0xff, 0xff, 0xff, 0x7f}) // payload length past the frame cap
	f.Add(fuzzFrame(nil, frameSwap, append([]byte{swapPrepare}, "x.gob"...)))

	f.Fuzz(func(t *testing.T, data []byte) {
		rt := fuzzRouter(t)
		cs, ss := net.Pipe()
		done := make(chan error, 1)
		go func() { done <- rt.ServeConn(ss) }()
		fuzzDrive(t, cs, data, done)
	})
}
