package serve

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultHealthInterval is how often the router probes each replica.
const DefaultHealthInterval = 2 * time.Second

// ErrNoReplica is the router's placement refusal: no replica is up. The
// client sees it as a frameError before the connection closes.
var ErrNoReplica = errors.New("serve: no replica available")

// RouterOptions configure a Router.
type RouterOptions struct {
	// Replicas are the backend serve addresses sessions are placed
	// onto. At least one is required; duplicates are configuration
	// errors.
	Replicas []string
	// HealthInterval is how often each replica is probed (a hello
	// handshake on a fresh connection). 0 uses DefaultHealthInterval;
	// negative is a configuration error. The probe also doubles as the
	// rejoin path: a replica that comes back is resynced to the last
	// fanned-out checkpoint before taking placements again.
	HealthInterval time.Duration
	// DialTimeout bounds each placement and probe dial. 0 uses
	// DefaultDialTimeout, negative disables.
	DialTimeout time.Duration
	// IdleTimeout bounds client silence, exactly like
	// ServerOptions.IdleTimeout: every client frame read arms it. The
	// replica side runs without a read deadline on purpose — a replica
	// is legitimately silent for as long as its client is idle — so
	// session lifetime is bounded by this client-side deadline (which
	// ends both relay directions) plus the replica's own deadlines.
	// 0 uses DefaultIdleTimeout, negative disables.
	IdleTimeout time.Duration
	// WriteTimeout bounds each relayed frame write, on both sides.
	// 0 uses DefaultWriteTimeout, negative disables.
	WriteTimeout time.Duration
}

func (o RouterOptions) validate() error {
	if len(o.Replicas) == 0 {
		return errors.New("serve: router requires at least one replica address")
	}
	seen := make(map[string]struct{}, len(o.Replicas))
	for _, addr := range o.Replicas {
		if addr == "" {
			return errors.New("serve: router replica address is empty")
		}
		if _, dup := seen[addr]; dup {
			return fmt.Errorf("serve: router replica %q listed twice", addr)
		}
		seen[addr] = struct{}{}
	}
	if o.HealthInterval < 0 {
		return fmt.Errorf("serve: RouterOptions.HealthInterval is %v; it must not be negative (0 means default)", o.HealthInterval)
	}
	return nil
}

// replica is the router's view of one backend: liveness plus placement
// accounting, all atomics — the placement path reads them lock-free.
type replica struct {
	addr       string
	up         atomic.Bool
	active     atomic.Int64 // sessions currently proxied to this replica
	placements atomic.Int64 // sessions ever placed here
	failures   atomic.Int64 // failed dials/probes charged to this replica
	lost       atomic.Int64 // sessions cut mid-stream by this replica dying
}

// RouterMetrics is the router's counter registry, atomic like Metrics.
type RouterMetrics struct {
	SessionsProxied atomic.Int64 // sessions accepted and placed
	SessionsActive  atomic.Int64 // gauge: sessions currently relaying
	Placements      atomic.Int64 // successful placements
	RePlacements    atomic.Int64 // placements retried on another replica after a dead dial
	NoReplica       atomic.Int64 // sessions refused with ErrNoReplica
	ReplicasLost    atomic.Int64 // replicas that died mid-session
	FramesRelayed   atomic.Int64 // frames proxied, both directions
	ProxyLatency    LatencyHist  // per-frame relay cost, replica→client side
}

// Router is the horizontal scale-out front tier: it accepts client
// connections, places each session onto a backend replica by rendezvous
// hash, and relays the length-prefixed framing both ways — hello
// handshakes, credit grants and all — without interpreting it beyond
// frame boundaries. Replicas are health-checked; a replica dying
// mid-session turns into a clean frameError on the affected clients
// (never a hang), new sessions re-place onto survivors, and a recovered
// replica rejoins after being resynced to the last fanned-out
// checkpoint. SwapAll propagates a checkpoint hot-swap to every replica
// with all-or-nothing semantics.
type Router struct {
	opts RouterOptions
	reps []*replica
	seq  atomic.Uint64 // per-session placement salt

	// swapMu serializes SwapAll fan-outs and guards the checkpoint a
	// rejoining replica must be resynced to.
	swapMu   sync.Mutex
	lastCkpt string //axsnn:guardedby swapMu

	metrics RouterMetrics
	start   time.Time

	done     chan struct{}
	mu       sync.Mutex
	closed   bool                      //axsnn:guardedby mu
	lns      map[net.Listener]struct{} //axsnn:guardedby mu
	conns    map[net.Conn]struct{}     //axsnn:guardedby mu
	wg       sync.WaitGroup
	healthWG sync.WaitGroup
}

// NewRouter builds a router over the given replica set and starts the
// health loops. Replicas start down; the first probe round brings the
// live ones up, so callers that need placements immediately should wait
// for Healthy() > 0.
func NewRouter(o RouterOptions) (*Router, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	if o.HealthInterval == 0 {
		o.HealthInterval = DefaultHealthInterval
	}
	o.IdleTimeout = normTimeout(o.IdleTimeout, DefaultIdleTimeout)
	o.WriteTimeout = normTimeout(o.WriteTimeout, DefaultWriteTimeout)
	rt := &Router{
		opts:  o,
		start: time.Now(),
		done:  make(chan struct{}),
		lns:   make(map[net.Listener]struct{}),
		conns: make(map[net.Conn]struct{}),
	}
	for _, addr := range o.Replicas {
		rt.reps = append(rt.reps, &replica{addr: addr})
	}
	for _, rep := range rt.reps {
		rt.healthWG.Add(1)
		go rt.health(rep)
	}
	return rt, nil
}

// Metrics exposes the live router counters.
func (rt *Router) Metrics() *RouterMetrics { return &rt.metrics }

// Healthy reports how many replicas are currently up.
func (rt *Router) Healthy() int {
	n := 0
	for _, rep := range rt.reps {
		if rep.up.Load() {
			n++
		}
	}
	return n
}

// health probes one replica until the router closes: an immediate probe
// (so a fresh router converges fast), then one per HealthInterval.
func (rt *Router) health(rep *replica) {
	defer rt.healthWG.Done()
	t := time.NewTicker(rt.opts.HealthInterval)
	defer t.Stop()
	for {
		rt.probe(rep)
		select {
		case <-t.C:
		case <-rt.done:
			return
		}
	}
}

// probe checks one replica with a hello handshake on a fresh
// connection. A down replica that answers is resynced to the last
// fanned-out checkpoint BEFORE being marked up, so a restarted replica
// never takes placements while serving stale weights.
func (rt *Router) probe(rep *replica) {
	if err := rt.checkReplica(rep.addr); err != nil {
		if rep.up.Swap(false) {
			rep.failures.Add(1)
		}
		return
	}
	if rep.up.Load() {
		return
	}
	if err := rt.syncCheckpoint(rep.addr); err != nil {
		rep.failures.Add(1)
		return
	}
	rep.up.Store(true)
}

// checkReplica dials and completes a creditless hello handshake — a
// liveness check that exercises the real session path, not just the
// accept queue. Bounded by DialTimeout plus a probe read deadline of at
// least one second: a momentarily busy replica must not be demoted (and
// later resynced) over a sub-second HealthInterval.
func (rt *Router) checkReplica(addr string) error {
	idle := rt.opts.HealthInterval
	if idle < time.Second {
		idle = time.Second
	}
	cl, err := Dial(addr, ClientOptions{
		Config:      SessionConfig{CreditWindow: Creditless},
		DialTimeout: rt.opts.DialTimeout,
		IdleTimeout: idle,
	})
	if err != nil {
		return err
	}
	defer cl.Close()
	return cl.Ping()
}

// syncCheckpoint brings one replica onto the last fanned-out
// checkpoint (a no-op before the first SwapAll).
func (rt *Router) syncCheckpoint(addr string) error {
	rt.swapMu.Lock()
	path := rt.lastCkpt
	rt.swapMu.Unlock()
	if path == "" {
		return nil
	}
	cl, err := Dial(addr, ClientOptions{
		Config:      SessionConfig{CreditWindow: Creditless},
		DialTimeout: rt.opts.DialTimeout,
		IdleTimeout: rt.opts.IdleTimeout,
	})
	if err != nil {
		return err
	}
	defer cl.Close()
	st, err := cl.SwapPrepare(path)
	if err == nil && !st.OK {
		err = errors.New(st.Msg)
	}
	if err != nil {
		return fmt.Errorf("serve: router: resync prepare on %s: %w", addr, err)
	}
	if st, err = cl.SwapCommit(); err == nil && !st.OK {
		err = errors.New(st.Msg)
	}
	if err != nil {
		return fmt.Errorf("serve: router: resync commit on %s: %w", addr, err)
	}
	return nil
}

// sessionKey derives a placement key for one client connection: the
// remote address hashed with a router-global sequence number, so
// reconnects spread instead of pinning to one replica.
func (rt *Router) sessionKey(conn net.Conn) uint64 {
	h := fnv.New64a()
	if ra := conn.RemoteAddr(); ra != nil {
		_, _ = io.WriteString(h, ra.String())
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], rt.seq.Add(1))
	_, _ = h.Write(b[:])
	return h.Sum64()
}

// score is the rendezvous (highest-random-weight) hash: every replica
// scores every key independently, the maximum wins. Removing a replica
// only moves the sessions that scored it highest — the consistent-hash
// property — and needs no ring state to keep in sync.
func score(key uint64, addr string) uint64 {
	h := fnv.New64a()
	_, _ = io.WriteString(h, addr)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], key)
	_, _ = h.Write(b[:])
	return h.Sum64()
}

// best returns the up replica with the highest rendezvous score for
// key, nil when none is up. Ties break by address so every router
// instance agrees.
func (rt *Router) best(key uint64) *replica {
	var win *replica
	var winScore uint64
	for _, rep := range rt.reps {
		if !rep.up.Load() {
			continue
		}
		s := score(key, rep.addr)
		if win == nil || s > winScore || (s == winScore && rep.addr < win.addr) {
			win, winScore = rep, s
		}
	}
	return win
}

// place picks a replica for key and dials it, demoting dead winners and
// retrying on the survivors — a failed dial is the router's fastest
// down-detector, ahead of the next health probe.
func (rt *Router) place(key uint64) (*replica, net.Conn, error) {
	dt := normTimeout(rt.opts.DialTimeout, DefaultDialTimeout)
	for tries := 0; tries <= len(rt.reps); tries++ {
		rep := rt.best(key)
		if rep == nil {
			return nil, nil, ErrNoReplica
		}
		var conn net.Conn
		var err error
		if dt > 0 {
			conn, err = net.DialTimeout("tcp", rep.addr, dt)
		} else {
			conn, err = net.Dial("tcp", rep.addr)
		}
		if err == nil {
			return rep, conn, nil
		}
		rep.up.Store(false)
		rep.failures.Add(1)
		rt.metrics.RePlacements.Add(1)
	}
	return nil, nil, ErrNoReplica
}

// Serve accepts sessions from ln until the listener fails or the router
// closes, with the same transient-error backoff as Server.Serve.
func (rt *Router) Serve(ln net.Listener) error {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return errServerClosed
	}
	rt.lns[ln] = struct{}{}
	rt.mu.Unlock()
	var backoff time.Duration
	for {
		conn, err := ln.Accept()
		if err != nil {
			rt.mu.Lock()
			closed := rt.closed
			rt.mu.Unlock()
			if closed {
				rt.forgetListener(ln)
				return nil
			}
			if isTransientAccept(err) {
				if backoff == 0 {
					backoff = 5 * time.Millisecond
				} else if backoff *= 2; backoff > time.Second {
					backoff = time.Second
				}
				t := time.NewTimer(backoff)
				select {
				case <-t.C:
				case <-rt.done:
					t.Stop()
					rt.forgetListener(ln)
					return nil
				}
				continue
			}
			rt.forgetListener(ln)
			return err
		}
		backoff = 0
		rt.wg.Add(1)
		go func() {
			defer rt.wg.Done()
			_ = rt.ServeConn(conn)
		}()
	}
}

func (rt *Router) forgetListener(ln net.Listener) {
	rt.mu.Lock()
	delete(rt.lns, ln)
	rt.mu.Unlock()
}

// ServeConn proxies one client session onto a replica, closing conn
// when the session ends. Transport-agnostic like Server.ServeConn.
func (rt *Router) ServeConn(conn net.Conn) error {
	defer conn.Close()
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return errServerClosed
	}
	rt.conns[conn] = struct{}{}
	rt.mu.Unlock()
	defer func() {
		rt.mu.Lock()
		delete(rt.conns, conn)
		rt.mu.Unlock()
	}()

	cdc := &deadlineConn{conn: conn, idle: rt.opts.IdleTimeout, write: rt.opts.WriteTimeout}
	rep, rconn, err := rt.place(rt.sessionKey(conn))
	if err != nil {
		rt.metrics.NoReplica.Add(1)
		fw := newFrameWriter(cdc)
		_ = fw.write(frameError, []byte(err.Error()))
		_ = fw.flush()
		return err
	}
	defer rconn.Close()
	rep.placements.Add(1)
	rt.metrics.Placements.Add(1)
	rep.active.Add(1)
	defer rep.active.Add(-1)
	rt.metrics.SessionsProxied.Add(1)
	rt.metrics.SessionsActive.Add(1)
	defer rt.metrics.SessionsActive.Add(-1)

	// Replica side: write deadline only. See RouterOptions.IdleTimeout
	// for why the read side is unbounded here.
	rdc := &deadlineConn{conn: rconn, idle: 0, write: rt.opts.WriteTimeout}

	// Two relay directions with clean write ownership: this goroutine
	// owns all writes to the client, the upload goroutine owns all
	// writes to the replica.
	var clientDone atomic.Bool
	up := make(chan relayEnd, 1)
	go func() {
		end := rt.relay(rdc, bufio.NewReader(cdc), false)
		clientDone.Store(true)
		// Half-close toward the replica so results still in flight keep
		// draining while it learns the upload is over.
		if tc, ok := rconn.(*net.TCPConn); ok {
			_ = tc.CloseWrite()
		} else {
			rconn.Close()
		}
		up <- end
	}()
	down := rt.relay(cdc, bufio.NewReader(rdc), true)

	if !clientDone.Load() && !down.write && !down.lastErrFrame {
		// The replica ended the session — EOF or a broken read — without
		// a terminal error frame and before the client finished: that is
		// a replica loss, not a protocol goodbye. Fail the client loudly
		// and take the replica out of rotation ahead of the next probe.
		rep.up.Store(false)
		rep.lost.Add(1)
		rt.metrics.ReplicasLost.Add(1)
		fw := newFrameWriter(cdc)
		_ = fw.write(frameError, []byte(fmt.Sprintf("serve: router: replica %s lost: %v", rep.addr, down.err)))
		_ = fw.flush()
	}
	// Unblock whichever relay is still parked in a read, then reap it.
	conn.Close()
	rconn.Close()
	<-up
	if down.err != nil && down.err != io.EOF {
		return down.err
	}
	return nil
}

// relayEnd reports how one relay direction terminated.
type relayEnd struct {
	err          error // terminal error; io.EOF is a clean close at a frame boundary
	write        bool  // the failure was on the write side (destination gone)
	lastErrFrame bool  // the last relayed frame was a frameError
}

// relay copies length-prefixed frames from src to dst until EOF or
// error: header, payload (bounded by maxFramePayload, copied through a
// fixed 32 KB buffer — the router's per-session memory is this buffer
// plus bufio, regardless of frame size), flush per frame so results
// keep their streaming latency. observe meters the replica→client
// direction into the proxy latency histogram.
func (rt *Router) relay(dst io.Writer, src *bufio.Reader, observe bool) relayEnd {
	bw := bufio.NewWriter(dst)
	buf := make([]byte, 32<<10)
	var hdr [frameHeaderSize]byte
	var lastErrFrame bool
	for {
		typ, n, err := readHeader(src)
		if err != nil {
			return relayEnd{err: err, lastErrFrame: lastErrFrame}
		}
		start := time.Now()
		hdr[0] = typ
		binary.LittleEndian.PutUint32(hdr[1:], uint32(n))
		if _, werr := bw.Write(hdr[:]); werr != nil {
			return relayEnd{err: werr, write: true, lastErrFrame: lastErrFrame}
		}
		for rem := n; rem > 0; {
			m := rem
			if m > len(buf) {
				m = len(buf)
			}
			if _, rerr := io.ReadFull(src, buf[:m]); rerr != nil {
				return relayEnd{err: rerr, lastErrFrame: lastErrFrame}
			}
			if _, werr := bw.Write(buf[:m]); werr != nil {
				return relayEnd{err: werr, write: true, lastErrFrame: lastErrFrame}
			}
			rem -= m
		}
		if werr := bw.Flush(); werr != nil {
			return relayEnd{err: werr, write: true, lastErrFrame: lastErrFrame}
		}
		lastErrFrame = typ == frameError
		rt.metrics.FramesRelayed.Add(1)
		if observe {
			rt.metrics.ProxyLatency.Observe(time.Since(start).Nanoseconds(), 1)
		}
	}
}

// ReplicaSwapStatus is one replica's outcome in a SwapAll fan-out.
type ReplicaSwapStatus struct {
	Addr        string `json:"addr"`
	OK          bool   `json:"ok"`
	RolledBack  bool   `json:"rolled_back"`
	Generation  int64  `json:"generation"`
	Fingerprint uint64 `json:"fingerprint"`
	Err         string `json:"err,omitempty"`
}

// SwapAll propagates a checkpoint hot-swap to every up replica with
// all-or-nothing semantics: prepare everywhere over per-replica admin
// connections (the staging is connection-scoped), then commit everywhere
// only if every prepare succeeded — otherwise abort whatever staged and
// report the rollback per replica. On success the path is recorded so
// replicas that rejoin later are resynced to it. The returned statuses
// are per-replica even when the call errors.
func (rt *Router) SwapAll(path string) ([]ReplicaSwapStatus, error) {
	rt.swapMu.Lock()
	defer rt.swapMu.Unlock()
	var ups []*replica
	for _, rep := range rt.reps {
		if rep.up.Load() {
			ups = append(ups, rep)
		}
	}
	if len(ups) == 0 {
		return nil, errors.New("serve: router: no replica up to swap")
	}
	statuses := make([]ReplicaSwapStatus, len(ups))
	clients := make([]*Client, len(ups))
	var wg sync.WaitGroup
	for i, rep := range ups {
		statuses[i].Addr = rep.addr
		wg.Add(1)
		go func(i int, rep *replica) {
			defer wg.Done()
			cl, err := Dial(rep.addr, ClientOptions{
				Config:      SessionConfig{CreditWindow: Creditless},
				DialTimeout: rt.opts.DialTimeout,
				IdleTimeout: rt.opts.IdleTimeout,
			})
			if err != nil {
				statuses[i].Err = err.Error()
				return
			}
			clients[i] = cl
			st, err := cl.SwapPrepare(path)
			switch {
			case err != nil:
				statuses[i].Err = err.Error()
			case !st.OK:
				statuses[i].Err = st.Msg
			default:
				statuses[i].OK = true
				statuses[i].Fingerprint = st.Fingerprint
			}
		}(i, rep)
	}
	wg.Wait()
	allOK := true
	for _, st := range statuses {
		allOK = allOK && st.OK
	}
	for i := range ups {
		cl := clients[i]
		if cl == nil {
			continue
		}
		wg.Add(1)
		go func(i int, cl *Client) {
			defer wg.Done()
			defer cl.Close()
			if allOK {
				st, err := cl.SwapCommit()
				switch {
				case err != nil:
					statuses[i].OK, statuses[i].Err = false, err.Error()
				case !st.OK:
					statuses[i].OK, statuses[i].Err = false, st.Msg
				default:
					statuses[i].Generation = st.Generation
					statuses[i].Fingerprint = st.Fingerprint
				}
				return
			}
			if !statuses[i].OK {
				return // nothing staged to roll back
			}
			statuses[i].OK = false
			if st, err := cl.SwapAbort(); err == nil && st.OK {
				statuses[i].RolledBack = true
			} else if err != nil {
				statuses[i].Err = err.Error()
			} else {
				statuses[i].Err = st.Msg
			}
		}(i, cl)
	}
	wg.Wait()
	if !allOK {
		failed := 0
		for _, st := range statuses {
			if st.Err != "" && !st.RolledBack {
				failed++
			}
		}
		return statuses, fmt.Errorf("serve: router: swap rolled back: %d of %d replicas failed to prepare", failed, len(ups))
	}
	for _, st := range statuses {
		if !st.OK {
			return statuses, fmt.Errorf("serve: router: swap commit failed on %s: %s", st.Addr, st.Err)
		}
		if st.Fingerprint != statuses[0].Fingerprint {
			return statuses, fmt.Errorf("serve: router: fingerprint divergence: %s staged %x, %s staged %x",
				statuses[0].Addr, statuses[0].Fingerprint, st.Addr, st.Fingerprint)
		}
	}
	rt.lastCkpt = path
	return statuses, nil
}

// Close stops the health loops, closes listeners and live connections,
// and waits for relays to drain.
func (rt *Router) Close() error {
	rt.mu.Lock()
	first := !rt.closed
	rt.closed = true
	for ln := range rt.lns {
		ln.Close()
	}
	for conn := range rt.conns {
		conn.Close()
	}
	rt.mu.Unlock()
	if first {
		close(rt.done)
	}
	rt.healthWG.Wait()
	rt.wg.Wait()
	return nil
}
