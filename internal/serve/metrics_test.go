package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/stream"
	"repro/internal/tensor"
)

func TestLatencyHistObserveQuantile(t *testing.T) {
	var h LatencyHist
	// 90 samples at ~1ms, 10 at ~100ms: p50 lands in the 1ms bucket's
	// neighborhood, p99 in the 100ms one. Quantile reports the bucket
	// upper bound, so allow one quarter-octave (~19%) of geometry slop.
	h.Observe(int64(time.Millisecond), 90)
	h.Observe(int64(100*time.Millisecond), 10)
	s := h.Snapshot()
	if got := s.Count(); got != 100 {
		t.Fatalf("Count = %d, want 100", got)
	}
	checkQ := func(q float64, want time.Duration) {
		t.Helper()
		got := s.Quantile(q)
		if got < want || float64(got) > float64(want)*1.2 {
			t.Fatalf("Quantile(%.2f) = %v, want within [%v, %v]", q, got, want, time.Duration(float64(want)*1.2))
		}
	}
	checkQ(0.50, time.Millisecond)
	checkQ(0.90, time.Millisecond)
	checkQ(0.99, 100*time.Millisecond)
}

func TestLatencyHistEdges(t *testing.T) {
	var h LatencyHist
	if got := h.Snapshot().Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram Quantile = %v, want 0", got)
	}
	// Below the first bound and past the last both land somewhere
	// finite: the floor bucket and the overflow bucket.
	h.Observe(1, 1)
	if got := h.Snapshot().Quantile(1.0); got != time.Duration(histMinNs) {
		t.Fatalf("sub-minimum sample reports %v, want the %v floor", got, time.Duration(histMinNs))
	}
	h.Observe(int64(time.Hour), 1)
	if got := h.Snapshot().Quantile(1.0); got != time.Duration(2*histBounds[histBuckets-1]) {
		t.Fatalf("overflow sample reports %v, want %v", got, time.Duration(2*histBounds[histBuckets-1]))
	}
}

func TestLatencyHistSub(t *testing.T) {
	var h LatencyHist
	h.Observe(int64(time.Millisecond), 5)
	before := h.Snapshot()
	h.Observe(int64(time.Millisecond), 3)
	delta := h.Snapshot().Sub(before)
	if got := delta.Count(); got != 3 {
		t.Fatalf("interval count = %d, want 3", got)
	}
}

// TestServeMetricsEndpoint is the metrics smoke: after serving real
// traffic, the HTTP handler must report the session, window, credit
// and pool gauges consistently with the load that just ran.
func TestServeMetricsEndpoint(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(1)
	master := testNet(4, 61)
	o := stream.Options{WindowMS: 45, Steps: 4, Batch: 2, ChunkEvents: 64}
	srv, err := NewServer(master, ServerOptions{Pipeline: o, MaxSessions: 2, PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	data := testRecording(t, 1, 300, 29)
	want := standalone(t, master, data, o)
	cl, done := startSession(srv)
	defer cl.Close()
	if _, err := cl.Stream(bytes.NewReader(data), nil); err != nil {
		t.Fatal(err)
	}
	cl.Close()
	<-done

	ts := httptest.NewServer(srv.MetricsHandler())
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q, want application/json", ct)
	}
	var snap MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("metrics endpoint served undecodable JSON: %v", err)
	}
	if snap.SessionsServed != 1 || snap.SessionsActive != 0 {
		t.Fatalf("served=%d active=%d, want 1/0", snap.SessionsServed, snap.SessionsActive)
	}
	if snap.WindowsServed != int64(len(want)) || snap.ResultsSent != int64(len(want)) {
		t.Fatalf("windows=%d results=%d, want %d/%d", snap.WindowsServed, snap.ResultsSent, len(want), len(want))
	}
	if snap.SlotCap != 1 || snap.CloneCap != 1 {
		t.Fatalf("slot_cap=%d clone_cap=%d, want 1/1", snap.SlotCap, snap.CloneCap)
	}
	// The session rode the default shared-batch scheduler, so frame
	// memory lived in its entry pool — the slot pool stayed untouched —
	// and every window must show up in the continuous-batching gauges.
	if snap.SlotOccupancy != 0 || snap.SlotHighWater != 0 {
		t.Fatalf("slot occupancy=%d high_water=%d, want 0/0 under shared batching", snap.SlotOccupancy, snap.SlotHighWater)
	}
	if !snap.SharedBatch {
		t.Fatal("shared_batch = false, want true by default")
	}
	if snap.SchedWindows != int64(len(want)) || snap.SchedTicks <= 0 {
		t.Fatalf("sched windows=%d ticks=%d, want %d windows over > 0 ticks", snap.SchedWindows, snap.SchedTicks, len(want))
	}
	if snap.BatchFillAvg <= 0 {
		t.Fatalf("batch_fill_avg = %v, want > 0", snap.BatchFillAvg)
	}
	var filled int64
	for n, c := range snap.BatchFillHist {
		filled += int64(n) * c
	}
	if filled != snap.SchedWindows {
		t.Fatalf("batch_fill_hist sums to %d windows, counters say %d", filled, snap.SchedWindows)
	}
	if snap.SchedQueueDepth != 0 {
		t.Fatalf("sched_queue_depth = %d after drain, want 0", snap.SchedQueueDepth)
	}
	if fair := int64(srv.Scheduler().FairShare()); snap.SchedMaxPerTick > fair {
		t.Fatalf("sched_max_per_tick = %d exceeds the fairness cap %d", snap.SchedMaxPerTick, fair)
	}
	if snap.WindowLatencyP99Ms <= 0 || snap.WindowsPerSec <= 0 || snap.UptimeSec <= 0 {
		t.Fatalf("p99=%v windows/s=%v uptime=%v, want all positive",
			snap.WindowLatencyP99Ms, snap.WindowsPerSec, snap.UptimeSec)
	}
	if snap.ResultsBuffered != 0 {
		t.Fatalf("results_buffered = %d after drain, want 0", snap.ResultsBuffered)
	}
}
