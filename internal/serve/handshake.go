package serve

import (
	"encoding/binary"
	"fmt"

	"repro/internal/snn"
)

// ProtoVersion is the session-handshake protocol version this build
// speaks. A hello declaring a higher version is refused with a
// frameError; a hello at this version or lower is accepted, with any
// payload bytes past the fields this version defines ignored — the
// forward-compatibility seam for newer minor clients.
const ProtoVersion = 1

// Creditless, as a SessionConfig.CreditWindow, disables credit flow
// for the session entirely: results stream as fast as the transport
// accepts them (the pre-credit protocol). Values below Creditless are
// invalid and rejected by validation, not silently clamped.
const Creditless = -1

// SessionConfig is a session's negotiated configuration — the payload
// of the versioned hello frame a client leads its session with, and of
// the accept frame the server echoes back.
//
// Before PR 10 these settings accreted across ad-hoc frames: mode bits
// latched private batching and the precision tier, and credit flow
// switched on implicitly at the first credit grant — none of which a
// router could faithfully reason about. The hello frame carries all of
// it explicitly, versioned, before the first data frame.
//
// Field conventions on the way in (ClientOptions.Config): Version 0
// means ProtoVersion; CreditWindow 0 means DefaultCreditWindow and
// Creditless (-1) disables credit flow. In a negotiated config — the
// accept echo, Client.Negotiated — every field is resolved:
// CreditWindow is the actual window, 0 meaning credit flow is off.
type SessionConfig struct {
	// Version is the handshake protocol version. 0 resolves to
	// ProtoVersion; the server refuses versions it does not speak.
	Version int
	// PrivateBatch opts the session out of the server's shared-batch
	// scheduler onto a private pipeline — the bit-exactness debugging
	// escape hatch. The accept echo reports the effective value: a
	// server running without a shared scheduler echoes true.
	PrivateBatch bool
	// Tier is the session's precision tier (snn.TierFP32 or
	// snn.TierINT8). A server that cannot serve the requested tier
	// refuses the hello instead of silently downgrading.
	Tier snn.PrecisionTier
	// CreditWindow is how many undelivered results the client
	// authorizes the server to stream ahead of consumption. The hello
	// frame carries the initial grant, replacing the separate leading
	// credit frame of the legacy protocol; top-ups still ride
	// frameCredit.
	CreditWindow int
}

// withDefaults resolves the zero-value conventions into wire form:
// Version 0 becomes ProtoVersion, CreditWindow 0 becomes
// DefaultCreditWindow and Creditless becomes 0 (credit flow off).
func (c SessionConfig) withDefaults() SessionConfig {
	if c.Version == 0 {
		c.Version = ProtoVersion
	}
	switch c.CreditWindow {
	case 0:
		c.CreditWindow = DefaultCreditWindow
	case Creditless:
		c.CreditWindow = 0
	}
	return c
}

// maxCreditWindow bounds a sane credit window; the wire field is a
// uint32 and a window past this is a configuration error, not a
// request the server should honor.
const maxCreditWindow = 1 << 30

// Validate rejects configurations the protocol cannot express instead
// of silently clamping them.
func (c SessionConfig) Validate() error {
	if c.Version < 0 || c.Version > ProtoVersion {
		return fmt.Errorf("serve: session config version %d (this build speaks up to %d)", c.Version, ProtoVersion)
	}
	if c.CreditWindow < Creditless {
		return fmt.Errorf("serve: credit window %d is invalid (use %d to disable credit flow)", c.CreditWindow, Creditless)
	}
	if c.CreditWindow > maxCreditWindow {
		return fmt.Errorf("serve: credit window %d exceeds the %d limit", c.CreditWindow, maxCreditWindow)
	}
	if c.Tier != snn.TierFP32 && c.Tier != snn.TierINT8 {
		return fmt.Errorf("serve: unknown precision tier %v", c.Tier)
	}
	return nil
}

// The hello/accept payload, version 1:
//
//	[2 bytes LE version][1 byte flags][1 byte tier][4 bytes LE credit window]
//
// flags bit 0 is private batching; the remaining bits are reserved and
// ignored. tier is the snn.PrecisionTier ordinal. credit window 0
// means credit flow is off (the resolved form of Creditless). Payload
// bytes past helloSize are ignored when the declared version is one
// this build speaks — a newer client may append fields this build does
// not know about.
const helloSize = 2 + 1 + 1 + 4

const helloFlagPrivate = 0x01

// appendHello encodes a resolved SessionConfig as a hello/accept
// payload after b.
func appendHello(b []byte, c SessionConfig) []byte {
	var p [helloSize]byte
	binary.LittleEndian.PutUint16(p[0:], uint16(c.Version))
	if c.PrivateBatch {
		p[2] |= helloFlagPrivate
	}
	p[3] = byte(c.Tier)
	binary.LittleEndian.PutUint32(p[4:], uint32(c.CreditWindow))
	return append(b, p[:]...)
}

// decodeHello is appendHello's inverse, enforcing the version-skew
// rules: version 0 and versions above ProtoVersion are refused,
// trailing bytes beyond the version-1 fields are tolerated.
func decodeHello(p []byte) (SessionConfig, error) {
	if len(p) < helloSize {
		return SessionConfig{}, fmt.Errorf("serve: hello frame of %d bytes, want at least %d", len(p), helloSize)
	}
	v := int(binary.LittleEndian.Uint16(p[0:]))
	if v == 0 || v > ProtoVersion {
		return SessionConfig{}, fmt.Errorf("serve: hello declares protocol version %d; this server speaks 1..%d", v, ProtoVersion)
	}
	c := SessionConfig{
		Version:      v,
		PrivateBatch: p[2]&helloFlagPrivate != 0,
		Tier:         snn.PrecisionTier(p[3]),
		CreditWindow: int(binary.LittleEndian.Uint32(p[4:])),
	}
	if c.Tier != snn.TierFP32 && c.Tier != snn.TierINT8 {
		return SessionConfig{}, fmt.Errorf("serve: hello requests unknown precision tier %d", p[3])
	}
	if c.CreditWindow > maxCreditWindow {
		return SessionConfig{}, fmt.Errorf("serve: hello requests a %d credit window, limit %d", c.CreditWindow, maxCreditWindow)
	}
	return c, nil
}

// Swap RPC phases (the first byte of a frameSwap payload). The
// two-phase shape exists for the router: prepare loads and validates
// the checkpoint on every replica without touching the served model,
// and only when every replica has prepared does commit make it live —
// all-or-nothing, with abort as the rollback.
const (
	swapPrepare = 1 // payload: phase byte + checkpoint path
	swapCommit  = 2 // payload: phase byte only
	swapAbort   = 3 // payload: phase byte only
)

// SwapStatus is one replica's answer to a swap RPC (frameSwapResult).
type SwapStatus struct {
	// OK reports whether the phase succeeded. A failed prepare is
	// reported in-band (OK false, Msg set) rather than ending the
	// admin session, so the coordinator can still abort its peers.
	OK bool
	// Generation is the server's swap generation after the phase
	// (meaningful on commit and abort).
	Generation int64
	// Fingerprint identifies the checkpoint bytes: FNV-1a over the
	// serialized form. Replicas that prepared the same file report the
	// same fingerprint — the router's same-generation assertion.
	Fingerprint uint64
	// Msg carries the failure detail when OK is false.
	Msg string
}

// swapResultSize is the fixed prefix of a frameSwapResult payload:
// ok byte, generation, fingerprint; the message fills the rest.
const swapResultSize = 1 + 8 + 8

// appendSwapResult encodes a SwapStatus as a frameSwapResult payload.
func appendSwapResult(b []byte, st SwapStatus) []byte {
	var p [swapResultSize]byte
	if st.OK {
		p[0] = 1
	}
	binary.LittleEndian.PutUint64(p[1:], uint64(st.Generation))
	binary.LittleEndian.PutUint64(p[9:], st.Fingerprint)
	return append(append(b, p[:]...), st.Msg...)
}

// decodeSwapResult is appendSwapResult's inverse.
func decodeSwapResult(p []byte) (SwapStatus, error) {
	if len(p) < swapResultSize {
		return SwapStatus{}, fmt.Errorf("serve: swap result frame of %d bytes, want at least %d", len(p), swapResultSize)
	}
	return SwapStatus{
		OK:          p[0] != 0,
		Generation:  int64(binary.LittleEndian.Uint64(p[1:])),
		Fingerprint: binary.LittleEndian.Uint64(p[9:]),
		Msg:         string(p[swapResultSize:]),
	}, nil
}
