package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// promContentType is the Prometheus text exposition format version the
// writers below emit.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// wantsPromText decides the exposition format for a metrics request.
// Explicit ?format=prometheus always wins; otherwise a text/plain or
// OpenMetrics Accept header (what a Prometheus scraper sends) selects
// text. Requests without either — curl, http.Get, the existing JSON
// consumers — keep the JSON snapshot.
func wantsPromText(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus", "text":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
}

// promWriter accumulates exposition lines; errors latch so callers emit
// unconditionally and HTTP handlers ignore the (client-side) failure.
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) metric(name, typ string, v float64) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, "# TYPE %s %s\n%s %g\n", name, typ, name, v)
}

// labeled emits one sample with a label set; the TYPE line is emitted
// only on the first sample of the family.
func (p *promWriter) labeled(name, typ string, first bool, labels string, v float64) {
	if p.err != nil {
		return
	}
	if first {
		if _, p.err = fmt.Fprintf(p.w, "# TYPE %s %s\n", name, typ); p.err != nil {
			return
		}
	}
	_, p.err = fmt.Fprintf(p.w, "%s{%s} %g\n", name, labels, v)
}

func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// writeServerProm renders a MetricsSnapshot as Prometheus text — the
// same numbers the JSON snapshot carries, under the axsnn_serve_
// namespace.
func writeServerProm(w io.Writer, s MetricsSnapshot) {
	p := &promWriter{w: w}
	p.metric("axsnn_serve_sessions_active", "gauge", float64(s.SessionsActive))
	p.metric("axsnn_serve_sessions_served_total", "counter", float64(s.SessionsServed))
	p.metric("axsnn_serve_sessions_refused_total", "counter", float64(s.SessionsRefused))
	p.metric("axsnn_serve_sessions_queued_total", "counter", float64(s.SessionsQueued))
	p.metric("axsnn_serve_queue_timeouts_total", "counter", float64(s.QueueTimeouts))
	p.metric("axsnn_serve_session_errors_total", "counter", float64(s.SessionErrors))
	p.metric("axsnn_serve_accept_retries_total", "counter", float64(s.AcceptRetries))
	p.metric("axsnn_serve_windows_served_total", "counter", float64(s.WindowsServed))
	p.metric("axsnn_serve_results_sent_total", "counter", float64(s.ResultsSent))
	p.metric("axsnn_serve_windows_per_sec", "gauge", s.WindowsPerSec)
	p.metric("axsnn_serve_window_latency_p50_ms", "gauge", s.WindowLatencyP50Ms)
	p.metric("axsnn_serve_window_latency_p99_ms", "gauge", s.WindowLatencyP99Ms)
	p.metric("axsnn_serve_credit_stalls_total", "counter", float64(s.CreditStalls))
	p.metric("axsnn_serve_results_buffered", "gauge", float64(s.ResultsBuffered))
	p.metric("axsnn_serve_shared_batch", "gauge", b2f(s.SharedBatch))
	p.metric("axsnn_serve_sched_ticks_total", "counter", float64(s.SchedTicks))
	p.metric("axsnn_serve_sched_windows_total", "counter", float64(s.SchedWindows))
	p.metric("axsnn_serve_batch_fill_avg", "gauge", s.BatchFillAvg)
	p.metric("axsnn_serve_sched_queue_depth", "gauge", float64(s.SchedQueueDepth))
	p.metric("axsnn_serve_sched_deferrals_total", "counter", float64(s.SchedDeferrals))
	p.metric("axsnn_serve_sched_failures_total", "counter", float64(s.SchedFailures))
	p.metric("axsnn_serve_slot_cap", "gauge", float64(s.SlotCap))
	p.metric("axsnn_serve_slot_occupancy", "gauge", float64(s.SlotOccupancy))
	p.metric("axsnn_serve_slot_high_water", "gauge", float64(s.SlotHighWater))
	p.metric("axsnn_serve_slot_waits_total", "counter", float64(s.SlotWaits))
	p.metric("axsnn_serve_clone_cap", "gauge", float64(s.CloneCap))
	p.metric("axsnn_serve_sops_estimated_total", "counter", s.SOPsEstimated)
	p.metric("axsnn_serve_energy_estimated_joules_total", "counter", s.EnergyEstimatedJ)
	p.metric("axsnn_serve_int8_supported", "gauge", b2f(s.Int8Supported))
	p.metric("axsnn_serve_swap_generation", "gauge", float64(s.SwapGeneration))
	p.metric("axsnn_serve_checkpoint_fingerprint", "gauge", float64(s.CheckpointFP))
	p.metric("axsnn_serve_uptime_seconds", "gauge", s.UptimeSec)
}

// ReplicaSnapshot is one backend's state in a RouterSnapshot.
type ReplicaSnapshot struct {
	Addr           string `json:"addr"`
	Up             bool   `json:"up"`
	ActiveSessions int64  `json:"active_sessions"`
	Placements     int64  `json:"placements"`
	Failures       int64  `json:"failures"`
	Lost           int64  `json:"lost"`
}

// RouterSnapshot is the JSON document the router metrics endpoint
// serves.
type RouterSnapshot struct {
	SessionsProxied int64   `json:"sessions_proxied"`
	SessionsActive  int64   `json:"sessions_active"`
	Placements      int64   `json:"placements"`
	RePlacements    int64   `json:"re_placements"`
	NoReplica       int64   `json:"no_replica"`
	ReplicasLost    int64   `json:"replicas_lost"`
	FramesRelayed   int64   `json:"frames_relayed"`
	ProxyP50Ms      float64 `json:"proxy_p50_ms"`
	ProxyP99Ms      float64 `json:"proxy_p99_ms"`

	ReplicasUp int64             `json:"replicas_up"`
	Replicas   []ReplicaSnapshot `json:"replicas"`
	UptimeSec  float64           `json:"uptime_sec"`
}

// MetricsSnapshot assembles the router's counters and per-replica
// state.
func (rt *Router) MetricsSnapshot() RouterSnapshot {
	m := &rt.metrics
	hist := m.ProxyLatency.Snapshot()
	snap := RouterSnapshot{
		SessionsProxied: m.SessionsProxied.Load(),
		SessionsActive:  m.SessionsActive.Load(),
		Placements:      m.Placements.Load(),
		RePlacements:    m.RePlacements.Load(),
		NoReplica:       m.NoReplica.Load(),
		ReplicasLost:    m.ReplicasLost.Load(),
		FramesRelayed:   m.FramesRelayed.Load(),
		ProxyP50Ms:      float64(hist.Quantile(0.50)) / float64(time.Millisecond),
		ProxyP99Ms:      float64(hist.Quantile(0.99)) / float64(time.Millisecond),
		UptimeSec:       time.Since(rt.start).Seconds(),
	}
	for _, rep := range rt.reps {
		up := rep.up.Load()
		if up {
			snap.ReplicasUp++
		}
		snap.Replicas = append(snap.Replicas, ReplicaSnapshot{
			Addr:           rep.addr,
			Up:             up,
			ActiveSessions: rep.active.Load(),
			Placements:     rep.placements.Load(),
			Failures:       rep.failures.Load(),
			Lost:           rep.lost.Load(),
		})
	}
	return snap
}

// writeRouterProm renders a RouterSnapshot as Prometheus text under the
// axsnn_router_ namespace, with per-replica families labeled by
// address.
func writeRouterProm(w io.Writer, s RouterSnapshot) {
	p := &promWriter{w: w}
	p.metric("axsnn_router_sessions_proxied_total", "counter", float64(s.SessionsProxied))
	p.metric("axsnn_router_sessions_active", "gauge", float64(s.SessionsActive))
	p.metric("axsnn_router_placements_total", "counter", float64(s.Placements))
	p.metric("axsnn_router_re_placements_total", "counter", float64(s.RePlacements))
	p.metric("axsnn_router_no_replica_total", "counter", float64(s.NoReplica))
	p.metric("axsnn_router_replicas_lost_total", "counter", float64(s.ReplicasLost))
	p.metric("axsnn_router_frames_relayed_total", "counter", float64(s.FramesRelayed))
	p.metric("axsnn_router_proxy_p50_ms", "gauge", s.ProxyP50Ms)
	p.metric("axsnn_router_proxy_p99_ms", "gauge", s.ProxyP99Ms)
	p.metric("axsnn_router_replicas_up", "gauge", float64(s.ReplicasUp))
	p.metric("axsnn_router_uptime_seconds", "gauge", s.UptimeSec)
	for _, fam := range []struct {
		name, typ string
		value     func(ReplicaSnapshot) float64
	}{
		{"axsnn_router_replica_up", "gauge", func(r ReplicaSnapshot) float64 { return b2f(r.Up) }},
		{"axsnn_router_replica_active_sessions", "gauge", func(r ReplicaSnapshot) float64 { return float64(r.ActiveSessions) }},
		{"axsnn_router_replica_placements_total", "counter", func(r ReplicaSnapshot) float64 { return float64(r.Placements) }},
		{"axsnn_router_replica_failures_total", "counter", func(r ReplicaSnapshot) float64 { return float64(r.Failures) }},
		{"axsnn_router_replica_lost_total", "counter", func(r ReplicaSnapshot) float64 { return float64(r.Lost) }},
	} {
		for i, rep := range s.Replicas {
			p.labeled(fam.name, fam.typ, i == 0, fmt.Sprintf("replica=%q", rep.Addr), fam.value(rep))
		}
	}
}

// MetricsHandler serves RouterSnapshot with the same content
// negotiation as Server.MetricsHandler: JSON by default, Prometheus
// text on request.
func (rt *Router) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if wantsPromText(r) {
			w.Header().Set("Content-Type", promContentType)
			writeRouterProm(w, rt.MetricsSnapshot())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rt.MetricsSnapshot())
	})
}
