package serve

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dvs"
	"repro/internal/stream"
	"repro/internal/tensor"
)

// TestServeSoakHotSwapUnderLoad is the concurrency soak: many live
// sessions, each streaming several recordings over net.Pipe, while a
// swapper goroutine hot-swaps checkpoints into the server the whole
// time. The checkpoints carry the master's own weights, so every
// prediction is invariant under swap timing — which is exactly what
// lets the test assert bit-identical results per session while the
// race detector watches the RCU exchange, the pool refresh and the
// session fan-out collide. (go test -race runs this in CI's race job.)
func TestServeSoakHotSwapUnderLoad(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(2)
	master := testNet(4, 61)
	var ckpt bytes.Buffer
	if err := master.Save(&ckpt); err != nil {
		t.Fatal(err)
	}

	o := stream.Options{WindowMS: 45, Steps: 4, Batch: 2, ChunkEvents: 48}
	srv, err := NewServer(master, ServerOptions{Pipeline: o, MaxSessions: 12, PoolSize: 2})
	if err != nil {
		t.Fatal(err)
	}

	const (
		sessions   = 5
		recordings = 3
	)
	// Precompute recordings and references serially (deterministic
	// regardless of worker count — pinned by the stream equivalence
	// suite).
	type job struct {
		data []byte
		want []stream.Result
	}
	jobs := make([][]job, sessions)
	for i := range jobs {
		jobs[i] = make([]job, recordings)
		for r := range jobs[i] {
			data := testRecording(t, (i+r)%dvs.GestureClasses, 200, uint64(300+10*i+r))
			jobs[i][r] = job{data: data, want: standalone(t, master, data, o)}
		}
	}

	var stop atomic.Bool
	var swapWG sync.WaitGroup
	swapWG.Add(1)
	go func() {
		defer swapWG.Done()
		for !stop.Load() {
			if err := srv.LoadCheckpoint(bytes.NewReader(ckpt.Bytes())); err != nil {
				t.Errorf("hot swap failed: %v", err)
				return
			}
			runtime.Gosched()
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl, done := startSession(srv)
			defer cl.Close()
			for r, j := range jobs[i] {
				var got []stream.Result
				if _, err := cl.Stream(bytes.NewReader(j.data), func(res stream.Result) error {
					got = append(got, res)
					return nil
				}); err != nil {
					errs <- fmt.Errorf("session %d recording %d: %w", i, r, err)
					return
				}
				if len(got) != len(j.want) {
					errs <- fmt.Errorf("session %d recording %d: %d results, want %d", i, r, len(got), len(j.want))
					return
				}
				for k := range j.want {
					if !sameResult(got[k], j.want[k]) {
						errs <- fmt.Errorf("session %d recording %d: result %d = %+v, want %+v",
							i, r, k, got[k], j.want[k])
						return
					}
				}
			}
			cl.Close()
			<-done
		}(i)
	}
	wg.Wait()
	stop.Store(true)
	swapWG.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if srv.Swaps() == 0 {
		t.Fatal("soak ran without a single hot swap; the test did not exercise the exchange")
	}
	if n := srv.ActiveSessions(); n != 0 {
		t.Fatalf("%d sessions still active after drain", n)
	}
}

// TestServeSlowConsumerSoak is the backpressure soak: one session
// consuming a result every 10ms on a 1-credit window shares a
// 4-session server with three full-speed sessions. The slow consumer
// must cost credit stalls — never pooled memory (slot high water stays
// within PoolSize) or the fast sessions' latency (the concurrent p99
// classification latency stays within 2× the solo baseline, with a
// floor absorbing scheduler noise on tiny absolute latencies). Every
// session still gets bit-identical results, and nothing stays buffered
// once the sessions drain. (go test -race runs this in CI's race job.)
func TestServeSlowConsumerSoak(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(2)
	master := testNet(4, 61)
	o := stream.Options{WindowMS: 45, Steps: 4, Batch: 2, ChunkEvents: 48}
	const poolSize = 2
	// Pinned to per-session batching: the assertions below are about
	// the private path's shared SlotPool (shared-batch sessions stage
	// frames in the scheduler's bounded entry pool instead; that
	// path's memory and fairness bounds are pinned by the shared-batch
	// suite).
	srv, err := NewServer(master, ServerOptions{
		Pipeline: o, MaxSessions: 4, PoolSize: poolSize, SharedBatch: Bool(false),
	})
	if err != nil {
		t.Fatal(err)
	}
	data := testRecording(t, 1, 400, 23)
	want := standalone(t, master, data, o)

	// run streams the recording `repeats` times on one session and
	// checks each pass against the serial reference. Errors return (not
	// Fatal) — phase 2 calls it from worker goroutines.
	run := func(copts ClientOptions, repeats int, emit func(stream.Result) error) error {
		cl, done := startSessionOptions(srv, copts)
		defer cl.Close()
		for rec := 0; rec < repeats; rec++ {
			var got []stream.Result
			if _, err := cl.Stream(bytes.NewReader(data), func(r stream.Result) error {
				if emit != nil {
					if err := emit(r); err != nil {
						return err
					}
				}
				got = append(got, r)
				return nil
			}); err != nil {
				return fmt.Errorf("recording %d: %w", rec, err)
			}
			if len(got) != len(want) {
				return fmt.Errorf("recording %d: %d results, want %d", rec, len(got), len(want))
			}
			for k := range want {
				if !sameResult(got[k], want[k]) {
					return fmt.Errorf("recording %d: result %d = %+v, want %+v", rec, k, got[k], want[k])
				}
			}
		}
		cl.Close()
		<-done
		return nil
	}

	// phase runs 4 concurrent sessions — session 0 configured by the
	// caller, the rest full speed — and returns the phase's latency
	// histogram delta.
	phase := func(slowOpts ClientOptions, slowRepeats int, slowEmit func(stream.Result) error) HistSnapshot {
		mark := srv.Metrics().Latency.Snapshot()
		var wg sync.WaitGroup
		errs := make(chan error, 4)
		for s := 0; s < 4; s++ {
			copts, repeats, emit := ClientOptions{}, 3, (func(stream.Result) error)(nil)
			if s == 0 {
				copts, repeats, emit = slowOpts, slowRepeats, slowEmit
			}
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				if err := run(copts, repeats, emit); err != nil {
					errs <- fmt.Errorf("session %d: %w", s, err)
				}
			}(s)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
		return srv.Metrics().Latency.Snapshot().Sub(mark)
	}

	// Phase 1 — baseline: the same 4-session load shape, every consumer
	// full speed, so the baseline carries the pool and worker contention
	// that 4 concurrent pipelines cost by themselves.
	base := phase(ClientOptions{}, 3, nil)
	p99base := base.Quantile(0.99)
	if base.Count() == 0 || p99base == 0 {
		t.Fatalf("baseline phase recorded no latency samples (count=%d p99=%v)", base.Count(), p99base)
	}

	// Phase 2 — identical load, except session 0 consumes one result
	// per 10ms on a 1-credit window.
	slow := func(stream.Result) error { time.Sleep(10 * time.Millisecond); return nil }
	conc := phase(ClientOptions{Config: SessionConfig{CreditWindow: 1}}, 1, slow)

	m := srv.Metrics()
	if m.CreditStalls.Load() == 0 {
		t.Error("a 10ms-per-result consumer on a 1-credit window produced no credit stalls")
	}
	if hw := srv.Slots().HighWater(); hw < 1 || hw > poolSize {
		t.Errorf("slot high water = %d, want within [1, %d]: the slow session must not pin pooled frame memory", hw, poolSize)
	}
	if b := m.ResultsBuffered.Load(); b != 0 {
		t.Errorf("%d results still buffered after every session drained", b)
	}
	if n := srv.ActiveSessions(); n != 0 {
		t.Fatalf("%d sessions still active after drain", n)
	}

	// Serving latency must not degrade past 2× the all-fast baseline
	// because one consumer went slow: stalls park that session's
	// writer, not the shared pools. ObserveRound measures pool wait +
	// classification and excludes result delivery, so the slow
	// session's own rounds don't smear the histogram. The additive
	// slack absorbs scheduler jitter on small absolute baselines —
	// wider under the race detector, whose instrumentation both
	// inflates and destabilizes latencies. A pre-hardening server,
	// where a slow consumer pinned pool slots for its full consumption
	// time, blows through the bound by an order of magnitude.
	p99conc := conc.Quantile(0.99)
	slack := 10 * time.Millisecond
	if raceEnabled {
		slack = 60 * time.Millisecond
	}
	limit := 2*p99base + slack
	if p99conc > limit {
		t.Errorf("slow-consumer phase p99 = %v exceeds %v (2× baseline p99 %v + %v slack)", p99conc, limit, p99base, slack)
	}
}
