package serve

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/dvs"
	"repro/internal/stream"
	"repro/internal/tensor"
)

// TestServeSoakHotSwapUnderLoad is the concurrency soak: many live
// sessions, each streaming several recordings over net.Pipe, while a
// swapper goroutine hot-swaps checkpoints into the server the whole
// time. The checkpoints carry the master's own weights, so every
// prediction is invariant under swap timing — which is exactly what
// lets the test assert bit-identical results per session while the
// race detector watches the RCU exchange, the pool refresh and the
// session fan-out collide. (go test -race runs this in CI's race job.)
func TestServeSoakHotSwapUnderLoad(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(2)
	master := testNet(4, 61)
	var ckpt bytes.Buffer
	if err := master.Save(&ckpt); err != nil {
		t.Fatal(err)
	}

	o := stream.Options{WindowMS: 45, Steps: 4, Batch: 2, ChunkEvents: 48}
	srv, err := NewServer(master, ServerOptions{Pipeline: o, MaxSessions: 12, PoolSize: 2})
	if err != nil {
		t.Fatal(err)
	}

	const (
		sessions   = 5
		recordings = 3
	)
	// Precompute recordings and references serially (deterministic
	// regardless of worker count — pinned by the stream equivalence
	// suite).
	type job struct {
		data []byte
		want []stream.Result
	}
	jobs := make([][]job, sessions)
	for i := range jobs {
		jobs[i] = make([]job, recordings)
		for r := range jobs[i] {
			data := testRecording(t, (i+r)%dvs.GestureClasses, 200, uint64(300+10*i+r))
			jobs[i][r] = job{data: data, want: standalone(t, master, data, o)}
		}
	}

	var stop atomic.Bool
	var swapWG sync.WaitGroup
	swapWG.Add(1)
	go func() {
		defer swapWG.Done()
		for !stop.Load() {
			if err := srv.LoadCheckpoint(bytes.NewReader(ckpt.Bytes())); err != nil {
				t.Errorf("hot swap failed: %v", err)
				return
			}
			runtime.Gosched()
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl, done := startSession(srv)
			defer cl.Close()
			for r, j := range jobs[i] {
				var got []stream.Result
				if _, err := cl.Stream(bytes.NewReader(j.data), func(res stream.Result) error {
					got = append(got, res)
					return nil
				}); err != nil {
					errs <- fmt.Errorf("session %d recording %d: %w", i, r, err)
					return
				}
				if len(got) != len(j.want) {
					errs <- fmt.Errorf("session %d recording %d: %d results, want %d", i, r, len(got), len(j.want))
					return
				}
				for k := range j.want {
					if got[k] != j.want[k] {
						errs <- fmt.Errorf("session %d recording %d: result %d = %+v, want %+v",
							i, r, k, got[k], j.want[k])
						return
					}
				}
			}
			cl.Close()
			<-done
		}(i)
	}
	wg.Wait()
	stop.Store(true)
	swapWG.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if srv.Swaps() == 0 {
		t.Fatal("soak ran without a single hot swap; the test did not exercise the exchange")
	}
	if n := srv.ActiveSessions(); n != 0 {
		t.Fatalf("%d sessions still active after drain", n)
	}
}
