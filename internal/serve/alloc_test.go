package serve

import (
	"io"
	"testing"

	"repro/internal/dvs"
	"repro/internal/rng"
	"repro/internal/stream"
	"repro/internal/tensor"
)

// The serving layer inherits the pipeline's zero-alloc window contract
// and must not spend it: drawing a clone from the shared pool,
// classifying a window and framing the result onto the wire may not
// touch the allocator once warm. (The recording-level setup — session
// pipeline, reader, windower — allocates per session/recording, which
// is amortized over every window it serves.)

// serveWindowBody builds the steady-state per-window serving closure:
// shared slot acquire → voxelize → batched arena inference via a
// pooled clone → pool releases → result framing + flush. It mirrors
// exactly what a session does per window inside serveSession/classify.
func serveWindowBody(t testing.TB, srv *Server) func(i int) {
	cfg := dvs.DefaultGestureConfig()
	cfg.W, cfg.H = 16, 16
	cfg.Duration = 400
	s := dvs.GenerateGesture(4, cfg, rng.New(8))
	const windowMS = 50.0
	windows := dvs.SplitWindows(s, windowMS)
	steps := srv.Master().Cfg.Steps
	out := make([]int, 1)
	fw := newFrameWriter(io.Discard)
	rbuf := make([]byte, 0, resultSize)
	return func(i int) {
		w := windows[i%len(windows)]
		bs := srv.Slots().AcquireSlot()
		frames := bs.Frames(0, steps, 16, 16)
		dvs.VoxelizeWindowInto(frames, w.Events, 16, 16, 0, windowMS)
		samples := append(bs.Samples(), frames)
		clone := srv.AcquireClone()
		clone.PredictBatchInto(samples, out)
		srv.ReleaseClone(clone)
		srv.Slots().ReleaseSlot(bs)
		rbuf = appendResult(rbuf[:0], stream.Result{Window: i, StartMS: float64(i) * windowMS, Events: len(w.Events), Class: out[0]})
		if err := fw.write(frameResult, rbuf); err != nil {
			t.Fatal(err)
		}
		if err := fw.flush(); err != nil {
			t.Fatal(err)
		}
	}
}

// serveCreditWindowBody builds the credit-flow per-window closure the
// session writer runs once a result leaves the pipeline: ring staging,
// credit consumption (the CAS fast path), result framing + flush, the
// atomic counters and the latency histogram. The ring is buffered and
// drained on the same goroutine so the measurement is deterministic —
// the goroutine handoff itself is scheduling, not allocation.
func serveCreditWindowBody(t testing.TB, srv *Server, ss *session) func(i int) {
	fw := newFrameWriter(io.Discard)
	rbuf := make([]byte, 0, resultSize)
	m := srv.Metrics()
	return func(i int) {
		ss.cmds <- wireCmd{res: stream.Result{Window: i, StartMS: float64(i) * 50, Events: 40, Class: 1}}
		m.ResultsBuffered.Add(1)
		cmd := <-ss.cmds
		if err := ss.awaitCredit(); err != nil {
			t.Fatal(err)
		}
		rbuf = appendResult(rbuf[:0], cmd.res)
		if err := fw.write(frameResult, rbuf); err != nil {
			t.Fatal(err)
		}
		if err := fw.flush(); err != nil {
			t.Fatal(err)
		}
		m.ResultsBuffered.Add(-1)
		m.ResultsSent.Add(1)
		srv.ObserveRound(1, int64(1000+i))
	}
}

// newTestSession builds a session skeleton without a connection or a
// writer goroutine — the synchronous form the zero-alloc gate drives.
func newTestSession(srv *Server) *session {
	return &session{
		srv:        srv,
		topup:      make(chan struct{}, 1),
		cmds:       make(chan wireCmd, srv.opts.ResultWindow),
		quit:       make(chan struct{}),
		writerDone: make(chan struct{}),
	}
}

func TestServeWindowZeroAllocs(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(1)
	master := testNet(8, 71)
	srv, err := NewServer(master, ServerOptions{
		Pipeline: stream.Options{WindowMS: 50, Steps: 8}, PoolSize: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	body := serveWindowBody(t, srv)
	body(0) // warm the arena, frames and frame buffers
	i := 1
	allocs := testing.AllocsPerRun(100, func() {
		body(i)
		i++
	})
	if allocs != 0 {
		t.Fatalf("serve window path allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestServeCreditWindowZeroAllocs pins the credit-flow additions to
// the per-window serving path — ring staging, the credit CAS, the
// metrics counters and the latency histogram — at zero allocations:
// backpressure accounting must not spend the zero-alloc contract it
// protects.
func TestServeCreditWindowZeroAllocs(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(1)
	master := testNet(8, 71)
	srv, err := NewServer(master, ServerOptions{
		Pipeline: stream.Options{WindowMS: 50, Steps: 8}, PoolSize: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ss := newTestSession(srv)
	ss.addCredits(1 << 20) // never stall: the gate measures the fast path
	body := serveCreditWindowBody(t, srv, ss)
	body(0) // warm the frame buffers
	i := 1
	allocs := testing.AllocsPerRun(100, func() {
		body(i)
		i++
	})
	if allocs != 0 {
		t.Fatalf("serve credit path allocates %.1f allocs/op, want 0", allocs)
	}
}
