package serve

import (
	"io"
	"testing"

	"repro/internal/dvs"
	"repro/internal/rng"
	"repro/internal/stream"
	"repro/internal/tensor"
)

// The serving layer inherits the pipeline's zero-alloc window contract
// and must not spend it: drawing a clone from the shared pool,
// classifying a window and framing the result onto the wire may not
// touch the allocator once warm. (The recording-level setup — session
// pipeline, reader, windower — allocates per session/recording, which
// is amortized over every window it serves.)

// serveWindowBody builds the steady-state per-window serving closure:
// pool acquire → voxelize → batched arena inference → pool release →
// result framing + flush. It mirrors exactly what a session does per
// window inside serveSession/classify.
func serveWindowBody(t testing.TB, srv *Server) func(i int) {
	cfg := dvs.DefaultGestureConfig()
	cfg.W, cfg.H = 16, 16
	cfg.Duration = 400
	s := dvs.GenerateGesture(4, cfg, rng.New(8))
	const windowMS = 50.0
	windows := dvs.SplitWindows(s, windowMS)
	steps := srv.Master().Cfg.Steps
	frames := make([]*tensor.Tensor, steps)
	for i := range frames {
		frames[i] = tensor.New(2, 16, 16)
	}
	samples := [][]*tensor.Tensor{frames}
	out := make([]int, 1)
	fw := newFrameWriter(io.Discard)
	rbuf := make([]byte, 0, resultSize)
	return func(i int) {
		w := windows[i%len(windows)]
		clone := srv.AcquireClone()
		dvs.VoxelizeWindowInto(frames, w.Events, 16, 16, 0, windowMS)
		clone.PredictBatchInto(samples, out)
		srv.ReleaseClone(clone)
		rbuf = appendResult(rbuf[:0], stream.Result{Window: i, StartMS: float64(i) * windowMS, Events: len(w.Events), Class: out[0]})
		if err := fw.write(frameResult, rbuf); err != nil {
			t.Fatal(err)
		}
		if err := fw.flush(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestServeWindowZeroAllocs(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(1)
	master := testNet(8, 71)
	srv, err := NewServer(master, ServerOptions{
		Pipeline: stream.Options{WindowMS: 50, Steps: 8}, PoolSize: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	body := serveWindowBody(t, srv)
	body(0) // warm the arena, frames and frame buffers
	i := 1
	allocs := testing.AllocsPerRun(100, func() {
		body(i)
		i++
	})
	if allocs != 0 {
		t.Fatalf("serve window path allocates %.1f allocs/op, want 0", allocs)
	}
}
