// Package encoding converts static images into spike trains for the SNN.
// The paper uses rate coding ("activation activity corresponds to the mean
// firing rates of spikes over certain time steps", §II); a deterministic
// direct-current encoder and a time-to-first-spike encoder are provided as
// well for comparison experiments.
package encoding

import (
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Encoder turns a (C,H,W) intensity image in [0,1] into steps spike
// frames of the same shape.
type Encoder interface {
	Encode(img *tensor.Tensor, steps int, r *rng.RNG) []*tensor.Tensor
	Name() string
}

// Rate is Bernoulli rate coding: each pixel fires independently each step
// with probability equal to its intensity. Gradients pass straight
// through (∂spike/∂intensity ≈ 1 in expectation), which is how gradient
// attacks reach the pixels.
type Rate struct{}

// Name implements Encoder.
func (Rate) Name() string { return "rate" }

// Encode implements Encoder.
func (Rate) Encode(img *tensor.Tensor, steps int, r *rng.RNG) []*tensor.Tensor {
	frames := make([]*tensor.Tensor, steps)
	for t := range frames {
		f := tensor.New(img.Shape...)
		for i, p := range img.Data {
			if r.Bernoulli(float64(p)) {
				f.Data[i] = 1
			}
		}
		frames[t] = f
	}
	return frames
}

// Direct presents the analog intensities as input current every step
// (a.k.a. constant-current or "direct" coding). Deterministic.
type Direct struct{}

// Name implements Encoder.
func (Direct) Name() string { return "direct" }

// Encode implements Encoder.
func (Direct) Encode(img *tensor.Tensor, steps int, _ *rng.RNG) []*tensor.Tensor {
	frames := make([]*tensor.Tensor, steps)
	for t := range frames {
		frames[t] = img.Clone()
	}
	return frames
}

// TTFS is time-to-first-spike coding: brighter pixels fire earlier, each
// pixel fires exactly once (or never, for zero intensity). Deterministic.
type TTFS struct{}

// Name implements Encoder.
func (TTFS) Name() string { return "ttfs" }

// Encode implements Encoder.
func (TTFS) Encode(img *tensor.Tensor, steps int, _ *rng.RNG) []*tensor.Tensor {
	frames := make([]*tensor.Tensor, steps)
	for t := range frames {
		frames[t] = tensor.New(img.Shape...)
	}
	for i, p := range img.Data {
		if p <= 0 {
			continue
		}
		// intensity 1 fires at t=0, intensity→0 fires at the last step.
		t := int(float32(steps-1) * (1 - p))
		if t >= steps {
			t = steps - 1
		}
		frames[t].Data[i] = 1
	}
	return frames
}

// SumFrameGradients folds per-step input-frame gradients back to pixel
// space under the straight-through assumption used by rate coding:
// dL/dpixel = Σ_t dL/dframe_t.
func SumFrameGradients(frameGrads []*tensor.Tensor) *tensor.Tensor {
	if len(frameGrads) == 0 {
		return nil
	}
	out := tensor.New(frameGrads[0].Shape...)
	for _, g := range frameGrads {
		out.Add(g)
	}
	return out
}
