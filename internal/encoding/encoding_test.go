package encoding

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

func TestRateEncodingFrequency(t *testing.T) {
	img := tensor.FromSlice([]float32{0, 0.25, 0.5, 1}, 4)
	r := rng.New(1)
	const steps = 4000
	frames := Rate{}.Encode(img, steps, r)
	counts := make([]float64, 4)
	for _, f := range frames {
		for i, v := range f.Data {
			counts[i] += float64(v)
		}
	}
	want := []float64{0, 0.25, 0.5, 1}
	for i := range counts {
		rate := counts[i] / steps
		if math.Abs(rate-want[i]) > 0.02 {
			t.Fatalf("pixel %d fires at %.3f, want %.2f", i, rate, want[i])
		}
	}
}

func TestRateEncodingBinary(t *testing.T) {
	img := tensor.FromSlice([]float32{0.5}, 1)
	frames := Rate{}.Encode(img, 100, rng.New(2))
	for _, f := range frames {
		if f.Data[0] != 0 && f.Data[0] != 1 {
			t.Fatalf("non-binary spike %v", f.Data[0])
		}
	}
}

func TestDirectEncodingIsConstant(t *testing.T) {
	img := tensor.FromSlice([]float32{0.3, 0.7}, 2)
	frames := Direct{}.Encode(img, 5, nil)
	if len(frames) != 5 {
		t.Fatalf("got %d frames", len(frames))
	}
	for _, f := range frames {
		if f.Data[0] != 0.3 || f.Data[1] != 0.7 {
			t.Fatal("direct encoding must repeat the image")
		}
	}
	// Frames are copies, not aliases.
	frames[0].Data[0] = 9
	if frames[1].Data[0] == 9 || img.Data[0] == 9 {
		t.Fatal("direct frames must not alias")
	}
}

func TestTTFSTiming(t *testing.T) {
	img := tensor.FromSlice([]float32{1, 0.5, 0.01, 0}, 4)
	frames := TTFS{}.Encode(img, 10, nil)
	// Each nonzero pixel fires exactly once.
	counts := make([]int, 4)
	first := []int{-1, -1, -1, -1}
	for t0, f := range frames {
		for i, v := range f.Data {
			if v == 1 {
				counts[i]++
				if first[i] == -1 {
					first[i] = t0
				}
			}
		}
	}
	if counts[0] != 1 || counts[1] != 1 || counts[2] != 1 || counts[3] != 0 {
		t.Fatalf("spike counts %v", counts)
	}
	if !(first[0] < first[1] && first[1] < first[2]) {
		t.Fatalf("brighter must fire earlier: %v", first)
	}
	if first[0] != 0 {
		t.Fatalf("intensity 1 must fire at t=0, got %d", first[0])
	}
}

func TestSumFrameGradients(t *testing.T) {
	a := tensor.FromSlice([]float32{1, 2}, 2)
	b := tensor.FromSlice([]float32{3, -1}, 2)
	s := SumFrameGradients([]*tensor.Tensor{a, b})
	if s.Data[0] != 4 || s.Data[1] != 1 {
		t.Fatalf("sum = %v", s.Data)
	}
	if SumFrameGradients(nil) != nil {
		t.Fatal("empty input must return nil")
	}
}

func TestEncoderNames(t *testing.T) {
	if (Rate{}).Name() != "rate" || (Direct{}).Name() != "direct" || (TTFS{}).Name() != "ttfs" {
		t.Fatal("encoder names wrong")
	}
}
