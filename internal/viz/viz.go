// Package viz renders images, event streams and spike rasters as ASCII
// art for terminals — the repository's examples and CLIs use it to show
// what the attacks and defenses actually do to the inputs.
package viz

import (
	"fmt"
	"strings"

	"repro/internal/dvs"
	"repro/internal/tensor"
)

// ramp is the intensity ramp from empty to full.
const ramp = " .:-=+*#%@"

// Image renders a (1,H,W) or (H,W) tensor of [0,1] intensities.
func Image(t *tensor.Tensor) string {
	var h, w int
	switch t.Rank() {
	case 2:
		h, w = t.Shape[0], t.Shape[1]
	case 3:
		h, w = t.Shape[1], t.Shape[2]
	default:
		return fmt.Sprintf("viz: unsupported rank %d", t.Rank())
	}
	var b strings.Builder
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := t.Data[y*w+x]
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			idx := int(v * float32(len(ramp)-1))
			b.WriteByte(ramp[idx])
			b.WriteByte(ramp[idx]) // double width: terminal cells are tall
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Events renders an event stream's spatial footprint: '+' where positive
// events dominate, '-' where negative dominate, intensity by count.
func Events(s *dvs.Stream) string {
	pos := make([]int, s.W*s.H)
	neg := make([]int, s.W*s.H)
	maxC := 1
	for _, e := range s.Events {
		idx := e.Y*s.W + e.X
		if e.P > 0 {
			pos[idx]++
		} else {
			neg[idx]++
		}
		if c := pos[idx] + neg[idx]; c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	for y := 0; y < s.H; y++ {
		for x := 0; x < s.W; x++ {
			idx := y*s.W + x
			total := pos[idx] + neg[idx]
			switch {
			case total == 0:
				b.WriteString("  ")
			case pos[idx] >= neg[idx]:
				b.WriteString(density(total, maxC, "+"))
			default:
				b.WriteString(density(total, maxC, "-"))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func density(c, maxC int, glyph string) string {
	if c*3 >= maxC*2 {
		return strings.ToUpper(glyph) + glyph // dense
	}
	return glyph + " "
}

// Raster renders per-step spike counts of one layer as a bar chart, one
// row per time step.
func Raster(countsPerStep []float64, width int) string {
	if width <= 0 {
		width = 40
	}
	maxV := 0.0
	for _, v := range countsPerStep {
		if v > maxV {
			maxV = v
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	var b strings.Builder
	for t, v := range countsPerStep {
		n := int(v / maxV * float64(width))
		fmt.Fprintf(&b, "t=%3d |%-*s| %.0f\n", t, width, strings.Repeat("#", n), v)
	}
	return b.String()
}

// Curve renders a simple accuracy-vs-x line plot with height rows.
func Curve(xs, ys []float64, height int) string {
	if len(xs) == 0 || len(xs) != len(ys) {
		return "viz: empty or mismatched series\n"
	}
	if height <= 0 {
		height = 10
	}
	var b strings.Builder
	for row := height; row >= 0; row-- {
		lo := float64(row) / float64(height)
		fmt.Fprintf(&b, "%5.2f |", lo)
		for _, y := range ys {
			if y >= lo {
				b.WriteString(" *")
			} else {
				b.WriteString("  ")
			}
		}
		b.WriteByte('\n')
	}
	b.WriteString("       ")
	for _, x := range xs {
		fmt.Fprintf(&b, "%2.0f", x*10)
	}
	b.WriteString("  (x·10)\n")
	return b.String()
}
