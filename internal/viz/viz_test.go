package viz

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/dvs"
	"repro/internal/rng"
	"repro/internal/tensor"
)

func TestImageDimensionsAndRamp(t *testing.T) {
	img := tensor.New(1, 4, 6)
	img.Data[0] = 1 // top-left fully bright
	s := Image(img)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 rows, got %d", len(lines))
	}
	for _, l := range lines {
		if len(l) != 12 { // double-width cells
			t.Fatalf("row width %d, want 12", len(l))
		}
	}
	if !strings.HasPrefix(lines[0], "@@") {
		t.Fatalf("bright pixel not rendered: %q", lines[0])
	}
	if !strings.HasSuffix(lines[3], "  ") {
		t.Fatalf("dark pixel not blank: %q", lines[3])
	}
}

func TestImageAcceptsRank2AndClamps(t *testing.T) {
	img := tensor.FromSlice([]float32{-1, 2}, 1, 2)
	s := Image(img)
	if !strings.Contains(s, " ") || !strings.Contains(s, "@") {
		t.Fatalf("clamping broken: %q", s)
	}
	bad := tensor.New(2, 2, 2, 2)
	if !strings.Contains(Image(bad), "unsupported") {
		t.Fatal("rank-4 must be rejected gracefully")
	}
}

func TestImageRendersDigit(t *testing.T) {
	img := dataset.RenderDigit(0, dataset.DefaultSynthConfig(), rng.New(1))
	s := Image(img)
	if strings.Count(s, "@") < 5 {
		t.Fatal("digit render suspiciously empty")
	}
}

func TestEventsPolarities(t *testing.T) {
	s := &dvs.Stream{W: 3, H: 2, Duration: 10, Events: []dvs.Event{
		{X: 0, Y: 0, P: 1, T: 1},
		{X: 2, Y: 1, P: -1, T: 2},
	}}
	out := Events(s)
	if !strings.Contains(out, "+") || !strings.Contains(out, "-") {
		t.Fatalf("polarities missing: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 rows, got %d", len(lines))
	}
}

func TestEventsEmptyStream(t *testing.T) {
	s := &dvs.Stream{W: 2, H: 2, Duration: 10}
	out := Events(s)
	if strings.TrimSpace(out) != "" {
		t.Fatalf("empty stream must render blank: %q", out)
	}
}

func TestRaster(t *testing.T) {
	out := Raster([]float64{0, 5, 10}, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 rows, got %d", len(lines))
	}
	if strings.Count(lines[2], "#") != 10 {
		t.Fatalf("max row must fill the width: %q", lines[2])
	}
	if strings.Count(lines[0], "#") != 0 {
		t.Fatalf("zero row must be empty: %q", lines[0])
	}
	// All-zero input must not divide by zero.
	_ = Raster([]float64{0, 0}, 5)
}

func TestCurve(t *testing.T) {
	out := Curve([]float64{0, 0.5, 1}, []float64{1, 0.5, 0}, 4)
	if !strings.Contains(out, "*") {
		t.Fatalf("no points plotted: %q", out)
	}
	if !strings.Contains(Curve(nil, nil, 4), "empty") {
		t.Fatal("empty input must be reported")
	}
	if !strings.Contains(Curve([]float64{1}, []float64{1, 2}, 4), "mismatched") {
		t.Fatal("mismatched input must be reported")
	}
}
