package snn

import (
	"fmt"
	"strings"

	"repro/internal/tensor"
)

// ActivityTrace captures per-LIF-layer spiking statistics from one or
// more forward passes, for debugging, energy analysis and the raster
// views in the examples.
type ActivityTrace struct {
	// Layers holds one entry per LIF layer, in network order.
	Layers []LayerActivity
	// Steps is the total forward steps traced.
	Steps int
}

// LayerActivity is one LIF layer's activity profile.
type LayerActivity struct {
	Index         int     // position in the network's layer list
	Units         int     // neurons
	SpikesPerStep float64 // mean spikes per time step
	FiringRate    float64 // mean spikes per neuron per step
	MeanMembrane  float64 // mean pre-reset membrane potential
}

// Trace runs the network over the workload (inference mode) and returns
// its spiking activity profile. Statistics are reset first and left
// populated afterwards for further inspection.
func Trace(n *Network, workload [][]*tensor.Tensor) ActivityTrace {
	Calibrate(n, workload)
	tr := ActivityTrace{}
	for i, l := range n.Layers {
		lif, ok := l.(*LIF)
		if !ok {
			continue
		}
		tr.Steps = lif.StatSteps
		tr.Layers = append(tr.Layers, LayerActivity{
			Index:         i,
			Units:         lif.StatUnits,
			SpikesPerStep: lif.MeanSpikesPerStep(),
			FiringRate:    lif.MeanSpikesPerStep() / float64(max(1, lif.StatUnits)),
			MeanMembrane:  lif.MeanMembrane(),
		})
	}
	return tr
}

// String renders the trace as an aligned table.
func (t ActivityTrace) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-8s %-14s %-12s %s\n", "layer", "units", "spikes/step", "rate", "mean Vm")
	for _, l := range t.Layers {
		fmt.Fprintf(&b, "%-6d %-8d %-14.2f %-12.4f %.4f\n",
			l.Index, l.Units, l.SpikesPerStep, l.FiringRate, l.MeanMembrane)
	}
	return b.String()
}

// TotalSpikesPerStep sums spiking activity across layers.
func (t ActivityTrace) TotalSpikesPerStep() float64 {
	s := 0.0
	for _, l := range t.Layers {
		s += l.SpikesPerStep
	}
	return s
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
