package snn

import (
	"sync"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// TestPredictBatchIntoReleasesOnPanic pins the deferred-release
// contract poolrelease enforces: a classification that panics mid-pass
// (here: samples disagreeing on frame size) must still park the
// acquired arena, or every such failure would leak one arena and a
// recovering caller would slowly drain the pool.
func TestPredictBatchIntoReleasesOnPanic(t *testing.T) {
	cfg := DefaultConfig(0.5, 4)
	net := DenseNet(cfg, 16, 8, 4, rng.New(1))
	r := rng.New(2)
	samples := [][]*tensor.Tensor{
		spikeFrames(r, cfg.Steps, []int{4, 4}),
		spikeFrames(r, cfg.Steps, []int{2, 4}), // wrong frame size: panics in predictBatchScratch
	}
	out := make([]int, len(samples))

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("PredictBatchInto with mismatched frame sizes did not panic")
			}
		}()
		net.PredictBatchInto(samples, out)
	}()
	if got := len(net.scratchFree); got != 1 {
		t.Fatalf("after a panicking batch, %d arenas parked on the free list, want 1 (deferred Release must run)", got)
	}

	// The parked arena must still serve correct predictions.
	good := [][]*tensor.Tensor{samples[0]}
	net.PredictBatchInto(good, out[:1])
	if want := net.Forward(samples[0], false).Argmax(); out[0] != want {
		t.Fatalf("prediction after recovered panic: %d, want %d", out[0], want)
	}
}

// TestPredictConcurrentClones runs the arena Predict path (deferred
// Release inside Network.Predict) from several goroutines, each on its
// own weight-sharing clone — the serving tier's concurrency model.
// Under -race this is the regression test for the acquire/defer
// conversion: clones share the trained weight tensors read-only while
// every goroutine churns its own arena free list.
func TestPredictConcurrentClones(t *testing.T) {
	cfg := DefaultConfig(0.5, 4)
	master := DenseNet(cfg, 16, 8, 4, rng.New(3))
	r := rng.New(4)
	const rounds = 20
	frames := make([][]*tensor.Tensor, rounds)
	want := make([]int, rounds)
	for i := range frames {
		frames[i] = spikeFrames(r, cfg.Steps, []int{4, 4})
		want[i] = master.Predict(frames[i])
	}

	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			clone := master.CloneArchitecture()
			for i := range frames {
				if got := clone.Predict(frames[i]); got != want[i] {
					t.Errorf("clone predicted %d for sample %d, want %d", got, i, want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
}
