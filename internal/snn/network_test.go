package snn

import (
	"bytes"
	"testing"

	"repro/internal/dataset"
	"repro/internal/encoding"
	"repro/internal/rng"
	"repro/internal/tensor"
)

func tinyTrainSet(n int, seed uint64) *dataset.Set {
	cfg := dataset.DefaultSynthConfig()
	cfg.H, cfg.W = 12, 12
	return dataset.GenerateSynth(n, cfg, seed)
}

// An SNN trained for a couple of epochs on the synthetic digits must beat
// chance by a wide margin. This is the substrate's core end-to-end test.
func TestTrainLearnsDigits(t *testing.T) {
	r := rng.New(10)
	cfg := DefaultConfig(0.5, 6)
	net := MNISTNet(cfg, 1, 12, 12, true, r)
	train := tinyTrainSet(300, 1)
	test := tinyTrainSet(100, 2)

	Train(net, train, TrainOptions{
		Epochs:    3,
		BatchSize: 16,
		Optimizer: NewAdam(3e-3),
		Encoder:   encoding.Direct{},
		Seed:      3,
	})
	acc := Accuracy(net, test, encoding.Direct{}, 4)
	if acc < 0.5 {
		t.Fatalf("trained accuracy %.2f, want > 0.5 (chance is 0.1)", acc)
	}
}

func TestTrainWithRateEncoding(t *testing.T) {
	r := rng.New(11)
	cfg := DefaultConfig(0.5, 8)
	net := DenseNet(cfg, 12*12, 64, 10, r)
	train := tinyTrainSet(300, 5)
	test := tinyTrainSet(100, 6)
	Train(net, train, TrainOptions{
		Epochs:    4,
		BatchSize: 16,
		Optimizer: NewAdam(2e-3),
		Encoder:   encoding.Rate{},
		Seed:      7,
	})
	acc := Accuracy(net, test, encoding.Rate{}, 8)
	if acc < 0.4 {
		t.Fatalf("rate-encoded accuracy %.2f, want > 0.4", acc)
	}
}

func TestAccuracyDeterministicGivenSeed(t *testing.T) {
	r := rng.New(12)
	cfg := DefaultConfig(0.5, 4)
	net := DenseNet(cfg, 144, 32, 10, r)
	test := tinyTrainSet(50, 9)
	a := Accuracy(net, test, encoding.Rate{}, 42)
	b := Accuracy(net, test, encoding.Rate{}, 42)
	if a != b {
		t.Fatalf("same seed, different accuracy: %v vs %v", a, b)
	}
}

func TestPredictShapeIndependence(t *testing.T) {
	// A single static frame must be accepted (repeats across steps).
	r := rng.New(13)
	cfg := DefaultConfig(0.5, 5)
	net := MNISTNet(cfg, 1, 12, 12, true, r)
	img := tensor.New(1, 12, 12)
	p := net.Predict([]*tensor.Tensor{img})
	if p < 0 || p > 9 {
		t.Fatalf("prediction %d out of range", p)
	}
}

func TestForwardPanicsOnEmptyInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r := rng.New(14)
	net := DenseNet(DefaultConfig(1, 4), 4, 8, 2, r)
	net.Forward(nil, false)
}

func TestSaveLoadRoundTrip(t *testing.T) {
	r := rng.New(15)
	cfg := DefaultConfig(0.7, 6)
	a := MNISTNet(cfg, 1, 12, 12, true, r)
	test := tinyTrainSet(30, 16)

	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b := MNISTNet(DefaultConfig(0.1, 2), 1, 12, 12, true, rng.New(99))
	if err := b.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if b.Cfg.VTh != 0.7 || b.Cfg.Steps != 6 {
		t.Fatalf("config not restored: %+v", b.Cfg)
	}
	accA := Accuracy(a, test, encoding.Direct{}, 1)
	accB := Accuracy(b, test, encoding.Direct{}, 1)
	if accA != accB {
		t.Fatalf("loaded model behaves differently: %v vs %v", accA, accB)
	}
}

func TestLoadRejectsWrongArchitecture(t *testing.T) {
	r := rng.New(17)
	a := DenseNet(DefaultConfig(1, 4), 16, 8, 4, r)
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b := DenseNet(DefaultConfig(1, 4), 16, 12, 4, rng.New(18))
	if err := b.Load(&buf); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestSaveLoadFile(t *testing.T) {
	r := rng.New(19)
	a := DenseNet(DefaultConfig(1, 4), 16, 8, 4, r)
	path := t.TempDir() + "/model.bin"
	if err := a.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	b := DenseNet(DefaultConfig(1, 4), 16, 8, 4, rng.New(20))
	if err := b.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	for i, p := range a.Params() {
		q := b.Params()[i]
		for j := range p.Data {
			if p.Data[j] != q.Data[j] {
				t.Fatal("weights differ after file round-trip")
			}
		}
	}
}

func TestCloneArchitectureSharesWeights(t *testing.T) {
	r := rng.New(21)
	a := MNISTNet(DefaultConfig(0.5, 4), 1, 12, 12, true, r)
	b := a.CloneArchitecture()
	// Same weight tensors by pointer.
	if a.Layers[0].(*Conv2D).W != b.Layers[0].(*Conv2D).W {
		t.Fatal("clone must share weight tensors")
	}
	// Independent state: running b must not disturb a's caches.
	img := tensor.New(1, 12, 12)
	img.Fill(0.5)
	frames := []*tensor.Tensor{img}
	pa := a.Predict(frames)
	pb := b.Predict(frames)
	if pa != pb {
		t.Fatalf("shared-weight clone predicts differently: %d vs %d", pa, pb)
	}
}

func TestDeepCloneIndependent(t *testing.T) {
	r := rng.New(22)
	a := DenseNet(DefaultConfig(0.5, 4), 16, 8, 4, r)
	b := a.DeepClone()
	b.Layers[1].(*Dense).W.Data[0] += 100
	if a.Layers[1].(*Dense).W.Data[0] == b.Layers[1].(*Dense).W.Data[0] {
		t.Fatal("deep clone aliases weights")
	}
}

func TestSetVTh(t *testing.T) {
	r := rng.New(23)
	n := MNISTNet(DefaultConfig(0.5, 4), 1, 12, 12, true, r)
	n.SetVTh(1.5)
	if n.Cfg.VTh != 1.5 {
		t.Fatal("config VTh not updated")
	}
	for _, l := range n.LIFLayers() {
		if l.VTh != 1.5 {
			t.Fatal("LIF VTh not updated")
		}
	}
}

func TestInputGradientLeavesParamsClean(t *testing.T) {
	r := rng.New(24)
	n := DenseNet(DefaultConfig(0.5, 4), 16, 8, 4, r)
	img := tensor.New(16)
	img.Fill(0.7)
	frames := []*tensor.Tensor{img, img, img, img}
	grads := InputGradient(n, frames, 1)
	if len(grads) != 4 {
		t.Fatalf("got %d frame gradients", len(grads))
	}
	for _, g := range n.Grads() {
		for _, v := range g.Data {
			if v != 0 {
				t.Fatal("InputGradient must zero parameter gradients")
			}
		}
	}
}

func TestCalibratePopulatesStats(t *testing.T) {
	r := rng.New(25)
	n := DenseNet(DefaultConfig(0.2, 6), 16, 8, 4, r)
	img := tensor.New(16)
	img.Fill(1)
	Calibrate(n, [][]*tensor.Tensor{{img}, {img}})
	lifs := n.LIFLayers()
	if len(lifs) == 0 {
		t.Fatal("no LIF layers")
	}
	if lifs[0].StatSteps != 12 { // 2 samples × 6 steps
		t.Fatalf("StatSteps = %d, want 12", lifs[0].StatSteps)
	}
	if lifs[0].StatSpikes == 0 {
		t.Fatal("expected spikes with low threshold and saturated input")
	}
}

func TestDropoutTrainVsEval(t *testing.T) {
	r := rng.New(26)
	d := NewDropout(0.5, r)
	x := tensor.New(1000)
	x.Fill(1)
	// Eval: identity.
	y := d.Forward(x, false)
	for _, v := range y.Data {
		if v != 1 {
			t.Fatal("dropout must be identity in eval mode")
		}
	}
	// Train: ~half dropped, survivors scaled by 2.
	d.Reset()
	y = d.Forward(x, true)
	zeros, twos := 0, 0
	for _, v := range y.Data {
		switch v {
		case 0:
			zeros++
		case 2:
			twos++
		default:
			t.Fatalf("unexpected dropout output %v", v)
		}
	}
	if zeros < 350 || zeros > 650 {
		t.Fatalf("dropout rate off: %d/1000 dropped", zeros)
	}
	// Mask persists across steps within one sample.
	y2 := d.Forward(x, true)
	for i := range y.Data {
		if y.Data[i] != y2.Data[i] {
			t.Fatal("dropout mask must persist across time steps")
		}
	}
	// And is redrawn after Reset.
	d.Reset()
	y3 := d.Forward(x, true)
	same := true
	for i := range y.Data {
		if y.Data[i] != y3.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("dropout mask must be redrawn after Reset")
	}
}

func TestSGDAndAdamReduceLoss(t *testing.T) {
	for name, opt := range map[string]Optimizer{
		"sgd":  NewSGD(0.05, 0.9),
		"adam": NewAdam(0.01),
	} {
		r := rng.New(27)
		n := DenseNet(DefaultConfig(0.5, 4), 16, 16, 4, r)
		img := tensor.New(16)
		for i := range img.Data {
			img.Data[i] = r.Float32()
		}
		frames := []*tensor.Tensor{img}
		label := 2
		first, last := 0.0, 0.0
		for it := 0; it < 40; it++ {
			logits := n.Forward(frames, true)
			loss, g := SoftmaxCrossEntropy(logits, label)
			if it == 0 {
				first = loss
			}
			last = loss
			n.ZeroGrads()
			n.Backward(g)
			opt.Step(n.Params(), n.Grads(), 1)
		}
		if last >= first {
			t.Fatalf("%s: loss did not decrease (%.4f -> %.4f)", name, first, last)
		}
	}
}

func TestTrainFramesLearns(t *testing.T) {
	// Two trivially separable "gesture" classes: activity on the left
	// half vs the right half.
	r := rng.New(28)
	cfg := DefaultConfig(0.5, 4)
	net := DenseNet(cfg, 2*4*4, 16, 2, r)
	var samples [][]*tensor.Tensor
	var labels []int
	gen := rng.New(29)
	for i := 0; i < 60; i++ {
		label := i % 2
		frames := make([]*tensor.Tensor, 4)
		for t := range frames {
			f := tensor.New(2, 4, 4)
			for y := 0; y < 4; y++ {
				for x := 0; x < 2; x++ {
					col := x
					if label == 1 {
						col = x + 2
					}
					if gen.Bernoulli(0.8) {
						f.Set(1, 0, y, col)
					}
				}
			}
			frames[t] = f
		}
		samples = append(samples, frames)
		labels = append(labels, label)
	}
	TrainFrames(net, samples, labels, TrainOptions{
		Epochs:    5,
		BatchSize: 8,
		Optimizer: NewAdam(5e-3),
		Seed:      30,
	})
	acc := AccuracyFrames(net, samples, labels)
	if acc < 0.8 {
		t.Fatalf("frame training accuracy %.2f, want > 0.8", acc)
	}
}
