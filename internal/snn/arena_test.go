package snn

import (
	"fmt"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// arenaCase is one (network, input shape) pair covering the three layer
// stacks the arena must reproduce exactly: pure dense, conv+avgpool and
// the DVS topology with dropout.
type arenaCase struct {
	name  string
	net   *Network
	shape []int
}

func arenaCases() []arenaCase {
	cfg := DefaultConfig(0.5, 6)
	return []arenaCase{
		{"dense", DenseNet(cfg, 144, 32, 10, rng.New(1)), []int{12, 12}},
		{"mnist-conv", MNISTNet(cfg, 1, 12, 12, true, rng.New(2)), []int{1, 12, 12}},
		{"dvs", DVSNet(DefaultConfig(1.0, 6), 16, 16, 11, true, rng.New(3), nil), []int{2, 16, 16}},
	}
}

// spikeFrames builds steps sparse 0/1 frames of the given shape.
func spikeFrames(r *rng.RNG, steps int, shape []int) []*tensor.Tensor {
	out := make([]*tensor.Tensor, steps)
	for t := range out {
		f := tensor.New(shape...)
		for i := range f.Data {
			if r.Float64() < 0.25 {
				f.Data[i] = 1
			}
		}
		out[t] = f
	}
	return out
}

func TestForwardScratchMatchesForward(t *testing.T) {
	for _, tc := range arenaCases() {
		r := rng.New(11)
		for trial := 0; trial < 3; trial++ {
			frames := spikeFrames(r, tc.net.Cfg.Steps, tc.shape)
			want := tc.net.Forward(frames, false)
			s := tc.net.AcquireScratch()
			got := tc.net.forwardScratch(frames, s, 0)
			if !tensor.SameShape(want, got) {
				t.Fatalf("%s trial %d: shape %v vs %v", tc.name, trial, want.Shape, got.Shape)
			}
			for i := range want.Data {
				if want.Data[i] != got.Data[i] {
					t.Fatalf("%s trial %d: logit %d = %v, want %v (arena must be bit-identical)",
						tc.name, trial, i, got.Data[i], want.Data[i])
				}
			}
			tc.net.Release(s)
		}
	}
}

func TestPredictBatchArenaMatchesPerSample(t *testing.T) {
	for _, tc := range arenaCases() {
		r := rng.New(12)
		for _, batch := range []int{1, 3, 7} {
			samples := make([][]*tensor.Tensor, batch)
			for b := range samples {
				samples[b] = spikeFrames(r, tc.net.Cfg.Steps, tc.shape)
			}
			got := tc.net.PredictBatch(samples)
			for b := range samples {
				if want := tc.net.Predict(samples[b]); got[b] != want {
					t.Fatalf("%s batch %d sample %d: %d, want %d", tc.name, batch, b, got[b], want)
				}
			}
			// And against the pre-arena batched path.
			logits := tc.net.ForwardSamples(samples, false)
			per := logits.Len() / batch
			for b := range samples {
				want := tensor.FromSlice(logits.Data[b*per:(b+1)*per], per).Argmax()
				if got[b] != want {
					t.Fatalf("%s batch %d sample %d: arena %d, ForwardSamples %d", tc.name, batch, b, got[b], want)
				}
			}
		}
	}
}

// TestArenaShapeChanges drives one network through alternating batch
// sizes and the per-sample path, so every arena buffer is resized and
// reused; each configuration must keep matching the allocating path.
func TestArenaShapeChanges(t *testing.T) {
	tc := arenaCases()[1]
	r := rng.New(13)
	for _, batch := range []int{5, 2, 8, 1, 5} {
		samples := make([][]*tensor.Tensor, batch)
		for b := range samples {
			samples[b] = spikeFrames(r, tc.net.Cfg.Steps, tc.shape)
		}
		got := tc.net.PredictBatch(samples)
		for b := range samples {
			want := tc.net.Forward(samples[b], false).Argmax()
			if got[b] != want {
				t.Fatalf("batch %d sample %d: %d, want %d", batch, b, got[b], want)
			}
		}
	}
}

// TestArenaStatsMatch pins that the arena path accumulates the exact
// LIF calibration statistics of the allocating path — the approx
// package's level equation depends on them.
func TestArenaStatsMatch(t *testing.T) {
	for _, tc := range arenaCases() {
		r := rng.New(14)
		frames := spikeFrames(r, tc.net.Cfg.Steps, tc.shape)
		clone := tc.net.DeepClone()

		tc.net.ResetStats()
		tc.net.Forward(frames, false)
		clone.ResetStats()
		clone.Predict(frames)

		a, b := tc.net.LIFLayers(), clone.LIFLayers()
		for i := range a {
			if a[i].StatSpikes != b[i].StatSpikes || a[i].StatVSum != b[i].StatVSum ||
				a[i].StatSteps != b[i].StatSteps || a[i].StatUnits != b[i].StatUnits {
				t.Fatalf("%s LIF %d stats diverge: %+v vs %+v", tc.name, i,
					[4]float64{a[i].StatSpikes, a[i].StatVSum, float64(a[i].StatSteps), float64(a[i].StatUnits)},
					[4]float64{b[i].StatSpikes, b[i].StatVSum, float64(b[i].StatSteps), float64(b[i].StatUnits)})
			}
		}
	}
}

// TestArenaWithMask pins arena equivalence for pruned networks (the
// approx path installs weight masks, which the arena re-applies once
// per pass like Reset did).
func TestArenaWithMask(t *testing.T) {
	tc := arenaCases()[1]
	mr := rng.New(15)
	for _, l := range tc.net.Layers {
		switch v := l.(type) {
		case *Conv2D:
			v.Mask = tensor.New(v.W.Shape...)
			for i := range v.Mask.Data {
				if mr.Float64() < 0.7 {
					v.Mask.Data[i] = 1
				}
			}
		case *Dense:
			v.Mask = tensor.New(v.W.Shape...)
			for i := range v.Mask.Data {
				if mr.Float64() < 0.7 {
					v.Mask.Data[i] = 1
				}
			}
		}
	}
	frames := spikeFrames(rng.New(16), tc.net.Cfg.Steps, tc.shape)
	want := tc.net.Forward(frames, false)
	s := tc.net.AcquireScratch()
	got := tc.net.forwardScratch(frames, s, 0)
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("masked logit %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
	tc.net.Release(s)
}

// TestPredictZeroAllocs asserts the arena's headline property: after
// warm-up, the Predict hot path allocates nothing — no tensors, no
// headers — in the deterministic serial mode (the pool's parallel
// dispatch allocates per-kernel job descriptors, so worker fan-out is
// excluded here).
func TestPredictZeroAllocs(t *testing.T) {
	tensor.SetWorkers(1)
	defer tensor.SetWorkers(0)
	for _, tc := range arenaCases() {
		frames := spikeFrames(rng.New(17), tc.net.Cfg.Steps, tc.shape)
		tc.net.Predict(frames) // warm the arena
		tc.net.Predict(frames)
		avg := testing.AllocsPerRun(20, func() { tc.net.Predict(frames) })
		if avg != 0 {
			t.Errorf("%s: Predict allocates %.1f objects/op in steady state, want 0", tc.name, avg)
		}
	}
}

// TestPredictBatchIntoZeroAllocs asserts the batched form of the same
// property via PredictBatchInto (PredictBatch itself allocates only the
// result slice).
func TestPredictBatchIntoZeroAllocs(t *testing.T) {
	tensor.SetWorkers(1)
	defer tensor.SetWorkers(0)
	for _, tc := range arenaCases() {
		r := rng.New(18)
		samples := make([][]*tensor.Tensor, 4)
		for b := range samples {
			samples[b] = spikeFrames(r, tc.net.Cfg.Steps, tc.shape)
		}
		out := make([]int, len(samples))
		tc.net.PredictBatchInto(samples, out) // warm the arena
		tc.net.PredictBatchInto(samples, out)
		avg := testing.AllocsPerRun(20, func() { tc.net.PredictBatchInto(samples, out) })
		if avg != 0 {
			t.Errorf("%s: PredictBatchInto allocates %.1f objects/op in steady state, want 0", tc.name, avg)
		}
	}
}

// TestPredictBatchIntoVariableBatchZeroAllocs pins the capacity-based
// arena reuse the shared-batch scheduler depends on: once an arena has
// seen its high-water batch, every *smaller* batch must reslice the
// same buffers — zero allocations — and still classify each sample
// exactly as the per-sample path does (a shorter batch reslices state
// buffers over memory a larger pass dirtied, so this doubles as the
// stale-state regression).
func TestPredictBatchIntoVariableBatchZeroAllocs(t *testing.T) {
	tensor.SetWorkers(1)
	defer tensor.SetWorkers(0)
	for _, tc := range arenaCases() {
		r := rng.New(21)
		samples := make([][]*tensor.Tensor, 8)
		for b := range samples {
			samples[b] = spikeFrames(r, tc.net.Cfg.Steps, tc.shape)
		}
		out := make([]int, len(samples))
		tc.net.PredictBatchInto(samples, out) // high-water warm at batch 8
		for _, batch := range []int{3, 5, 1, 8, 7} {
			sub, subOut := samples[:batch], out[:batch]
			avg := testing.AllocsPerRun(10, func() { tc.net.PredictBatchInto(sub, subOut) })
			if avg != 0 {
				t.Errorf("%s: batch %d after a warm batch 8 allocates %.1f objects/op, want 0 (capacity reuse)",
					tc.name, batch, avg)
			}
			for b := 0; b < batch; b++ {
				if want := tc.net.Predict(samples[b]); subOut[b] != want {
					t.Fatalf("%s: batch %d sample %d classified %d, want %d (resliced arena must stay exact)",
						tc.name, batch, b, subOut[b], want)
				}
			}
			// Re-warm at the high water so Predict's batch-1 pass above
			// doesn't define the next iteration's length transition.
			tc.net.PredictBatchInto(samples, out)
		}
	}
}

// TestPredictScratchReuse exercises a caller-held arena across many
// predictions, the long-evaluation-loop pattern.
func TestPredictScratchReuse(t *testing.T) {
	tc := arenaCases()[2]
	r := rng.New(19)
	s := tc.net.AcquireScratch()
	defer tc.net.Release(s)
	for trial := 0; trial < 5; trial++ {
		frames := spikeFrames(r, tc.net.Cfg.Steps, tc.shape)
		want := tc.net.Forward(frames, false).Argmax()
		if got := tc.net.PredictScratch(frames, s); got != want {
			t.Fatalf("trial %d: %d, want %d", trial, got, want)
		}
	}
}

func TestPredictBatchIntoLengthMismatch(t *testing.T) {
	tc := arenaCases()[0]
	frames := spikeFrames(rng.New(20), tc.net.Cfg.Steps, tc.shape)
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch must panic")
		}
	}()
	tc.net.PredictBatchInto([][]*tensor.Tensor{frames}, make([]int, 2))
}

func init() {
	// Guard against accidental metric drift in the suite above: the
	// cases must stay arena-capable or every test silently weakens.
	for _, tc := range arenaCases() {
		if !tc.net.arenaCapable() {
			panic(fmt.Sprintf("snn: arena test case %q not arena-capable", tc.name))
		}
	}
}
