package snn

import (
	"math"
	"strings"
	"testing"

	"repro/internal/encoding"
	"repro/internal/rng"
	"repro/internal/tensor"
)

func TestTraceCollectsAllLIFLayers(t *testing.T) {
	r := rng.New(1)
	cfg := DefaultConfig(0.2, 5)
	net := MNISTNet(cfg, 1, 12, 12, true, r)
	img := tensor.New(1, 12, 12)
	img.Fill(0.9)
	tr := Trace(net, [][]*tensor.Tensor{{img}, {img}})
	if len(tr.Layers) != len(net.LIFLayers()) {
		t.Fatalf("traced %d layers, network has %d", len(tr.Layers), len(net.LIFLayers()))
	}
	if tr.Steps != 10 { // 2 samples × 5 steps
		t.Fatalf("steps = %d, want 10", tr.Steps)
	}
	// With a low threshold and saturated input, the first layer spikes.
	if tr.Layers[0].SpikesPerStep == 0 {
		t.Fatal("first LIF layer silent despite saturated input")
	}
	if tr.TotalSpikesPerStep() < tr.Layers[0].SpikesPerStep {
		t.Fatal("total must include every layer")
	}
	s := tr.String()
	if !strings.Contains(s, "spikes/step") || len(strings.Split(s, "\n")) < len(tr.Layers)+1 {
		t.Fatalf("trace table malformed:\n%s", s)
	}
}

func TestTraceRatesBounded(t *testing.T) {
	r := rng.New(2)
	net := DenseNet(DefaultConfig(0.5, 4), 16, 8, 4, r)
	img := tensor.New(16)
	img.Fill(1)
	tr := Trace(net, [][]*tensor.Tensor{{img}})
	for _, l := range tr.Layers {
		if l.FiringRate < 0 || l.FiringRate > 1 {
			t.Fatalf("firing rate %v out of [0,1]", l.FiringRate)
		}
		if l.Units <= 0 {
			t.Fatalf("bad unit count %d", l.Units)
		}
	}
}

func TestClipGradients(t *testing.T) {
	g1 := tensor.FromSlice([]float32{3, 0}, 2)
	g2 := tensor.FromSlice([]float32{0, 4}, 2)
	clipGradients([]*tensor.Tensor{g1, g2}, 1) // global norm 5 -> 1
	n := 0.0
	for _, g := range []*tensor.Tensor{g1, g2} {
		v := g.L2Norm()
		n += v * v
	}
	if got := math.Sqrt(n); got > 1.0001 || got < 0.999 {
		t.Fatalf("clipped norm %v, want 1", got)
	}
	// Below the threshold: untouched.
	g3 := tensor.FromSlice([]float32{0.1}, 1)
	clipGradients([]*tensor.Tensor{g3}, 1)
	if g3.Data[0] != 0.1 {
		t.Fatal("clip must not touch small gradients")
	}
	// Disabled: untouched.
	g4 := tensor.FromSlice([]float32{100}, 1)
	clipGradients([]*tensor.Tensor{g4}, 0)
	if g4.Data[0] != 100 {
		t.Fatal("clip 0 must be a no-op")
	}
}

func TestTrainWithClipNormStillLearns(t *testing.T) {
	r := rng.New(3)
	net := DenseNet(DefaultConfig(0.5, 4), 144, 32, 10, r)
	train := tinyTrainSet(200, 11)
	Train(net, train, TrainOptions{
		Epochs: 3, BatchSize: 16,
		Optimizer: NewAdam(2e-3),
		Encoder:   encoding.Direct{},
		Seed:      12,
		ClipNorm:  1.0,
	})
	acc := Accuracy(net, train, encoding.Direct{}, 13)
	if acc < 0.3 {
		t.Fatalf("clipped training accuracy %.2f", acc)
	}
}
