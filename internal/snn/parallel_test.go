package snn

import (
	"bytes"
	"testing"

	"repro/internal/encoding"
	"repro/internal/rng"
	"repro/internal/tensor"
)

func TestAccuracyParallelWorkerInvariance(t *testing.T) {
	r := rng.New(1)
	net := DenseNet(DefaultConfig(0.5, 6), 144, 32, 10, r)
	test := tinyTrainSet(60, 2)
	a1 := AccuracyParallel(net, test, encoding.Rate{}, 42, 1)
	a4 := AccuracyParallel(net, test, encoding.Rate{}, 42, 4)
	a9 := AccuracyParallel(net, test, encoding.Rate{}, 42, 9)
	if a1 != a4 || a4 != a9 {
		t.Fatalf("worker count changed the result: %v %v %v", a1, a4, a9)
	}
}

func TestAccuracyParallelMatchesSerialWithDirect(t *testing.T) {
	// With a deterministic encoder the parallel and serial paths must
	// agree exactly.
	r := rng.New(3)
	net := DenseNet(DefaultConfig(0.5, 6), 144, 32, 10, r)
	test := tinyTrainSet(50, 4)
	serial := Accuracy(net, test, encoding.Direct{}, 7)
	parallel := AccuracyParallel(net, test, encoding.Direct{}, 7, 0)
	if serial != parallel {
		t.Fatalf("serial %v vs parallel %v", serial, parallel)
	}
}

func TestAccuracyParallelEmptySet(t *testing.T) {
	r := rng.New(5)
	net := DenseNet(DefaultConfig(0.5, 4), 4, 4, 2, r)
	if AccuracyParallel(net, tinyTrainSet(0, 6), encoding.Direct{}, 1, 4) != 0 {
		t.Fatal("empty set must yield 0")
	}
}

func TestSaveLoadPreservesMasks(t *testing.T) {
	r := rng.New(7)
	a := DenseNet(DefaultConfig(0.5, 4), 16, 8, 4, r)
	// Install a mask by hand on the first dense layer.
	d := a.Layers[1].(*Dense)
	d.Mask = tensor.New(d.W.Shape...)
	for i := range d.Mask.Data {
		if i%2 == 0 {
			d.Mask.Data[i] = 1
		}
	}
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b := DenseNet(DefaultConfig(0.5, 4), 16, 8, 4, rng.New(8))
	if err := b.Load(&buf); err != nil {
		t.Fatal(err)
	}
	bd := b.Layers[1].(*Dense)
	if bd.Mask == nil {
		t.Fatal("mask lost in round-trip")
	}
	for i := range d.Mask.Data {
		if bd.Mask.Data[i] != d.Mask.Data[i] {
			t.Fatal("mask values differ after round-trip")
		}
	}
	// Unmasked layers stay unmasked.
	if b.Layers[3].(*Dense).Mask != nil {
		t.Fatal("phantom mask appeared")
	}
	// Behavioural equality.
	img := tensor.New(16)
	img.Fill(0.8)
	fr := []*tensor.Tensor{img}
	la := a.Forward(fr, false)
	lb := b.Forward(fr, false)
	for i := range la.Data {
		if la.Data[i] != lb.Data[i] {
			t.Fatal("masked networks diverge after round-trip")
		}
	}
}
