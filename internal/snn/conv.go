package snn

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// Conv2D is a 2-D convolution over (C,H,W) inputs, lowered to matrix
// multiplication via im2col. Weights are stored as (OutC, InC·KH·KW) plus
// a per-output-channel bias.
type Conv2D struct {
	Geom tensor.Conv2DGeom
	OutC int

	W *tensor.Tensor // (OutC, InC*KH*KW)
	B *tensor.Tensor // (OutC)

	// Mask, when non-nil, zeroes pruned connections after every weight
	// read; the approx package installs it (same shape as W).
	Mask *tensor.Tensor

	dW *tensor.Tensor
	dB *tensor.Tensor

	cols []*tensor.Tensor // cached im2col per step (training)
}

// NewConv2D creates a convolution with Kaiming-uniform-ish Gaussian init.
func NewConv2D(inC, outC, k, stride, pad, inH, inW int, r *rng.RNG) *Conv2D {
	g := tensor.Conv2DGeom{InC: inC, InH: inH, InW: inW, KH: k, KW: k, Stride: stride, Pad: pad}
	c := &Conv2D{Geom: g, OutC: outC}
	fanIn := inC * k * k
	c.W = tensor.New(outC, fanIn)
	sd := sqrt32(2 / float32(fanIn))
	for i := range c.W.Data {
		c.W.Data[i] = r.NormFloat32() * sd
	}
	c.B = tensor.New(outC)
	c.dW = tensor.New(outC, fanIn)
	c.dB = tensor.New(outC)
	return c
}

func sqrt32(x float32) float32 {
	if x <= 0 {
		return 0
	}
	// Newton iterations on float64 then narrow; precision is irrelevant
	// for initialization.
	z := float64(x)
	y := z
	for i := 0; i < 20; i++ {
		y = 0.5 * (y + z/y)
	}
	return float32(y)
}

// Name implements Layer.
func (c *Conv2D) Name() string { return "conv2d" }

// effectiveW returns the weight matrix with the prune mask applied.
func (c *Conv2D) effectiveW() *tensor.Tensor {
	if c.Mask == nil {
		return c.W
	}
	w := c.W.Clone()
	w.Mul(c.Mask)
	return w
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 3 {
		panic(fmt.Sprintf("snn: Conv2D input rank %d (shape %s)", x.Rank(), shapeStr(x.Shape)))
	}
	cols := tensor.Im2Col(x, c.Geom)
	out := tensor.MatMul(c.effectiveW(), cols) // (OutC, oh*ow)
	oh, ow := c.Geom.OutH(), c.Geom.OutW()
	for oc := 0; oc < c.OutC; oc++ {
		b := c.B.Data[oc]
		row := out.Data[oc*oh*ow : (oc+1)*oh*ow]
		for i := range row {
			row[i] += b
		}
	}
	if train {
		c.cols = append(c.cols, cols)
	}
	return out.Reshape(c.OutC, oh, ow)
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := len(c.cols)
	if n == 0 {
		panic("snn: Conv2D.Backward without cached forward step")
	}
	cols := c.cols[n-1]
	c.cols = c.cols[:n-1]

	oh, ow := c.Geom.OutH(), c.Geom.OutW()
	g2 := grad.Reshape(c.OutC, oh*ow)

	// dW += g2 · colsᵀ ; dB += row sums of g2.
	c.dW.Add(tensor.MatMulT(g2, cols))
	for oc := 0; oc < c.OutC; oc++ {
		var s float32
		row := g2.Data[oc*oh*ow : (oc+1)*oh*ow]
		for _, v := range row {
			s += v
		}
		c.dB.Data[oc] += s
	}

	// dX = col2im(Wᵀ · g2).
	dcols := tensor.TMatMul(c.effectiveW(), g2)
	return tensor.Col2Im(dcols, c.Geom)
}

// Reset implements Layer.
func (c *Conv2D) Reset() { c.cols = c.cols[:0] }

// Params implements ParamLayer.
func (c *Conv2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.W, c.B} }

// Grads implements ParamLayer.
func (c *Conv2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.dW, c.dB} }

// Dense is a fully connected layer y = Wx + b over rank-1 inputs.
type Dense struct {
	In, Out int

	W *tensor.Tensor // (Out, In)
	B *tensor.Tensor // (Out)

	// Mask, when non-nil, zeroes pruned connections (approx package).
	Mask *tensor.Tensor

	dW *tensor.Tensor
	dB *tensor.Tensor

	xs []*tensor.Tensor // cached inputs per step (training)
}

// NewDense creates a dense layer with Gaussian init scaled by fan-in.
func NewDense(in, out int, r *rng.RNG) *Dense {
	d := &Dense{In: in, Out: out}
	d.W = tensor.New(out, in)
	sd := sqrt32(2 / float32(in))
	for i := range d.W.Data {
		d.W.Data[i] = r.NormFloat32() * sd
	}
	d.B = tensor.New(out)
	d.dW = tensor.New(out, in)
	d.dB = tensor.New(out)
	return d
}

// Name implements Layer.
func (d *Dense) Name() string { return "dense" }

func (d *Dense) effectiveW() *tensor.Tensor {
	if d.Mask == nil {
		return d.W
	}
	w := d.W.Clone()
	w.Mul(d.Mask)
	return w
}

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Len() != d.In {
		panic(fmt.Sprintf("snn: Dense input %d, want %d", x.Len(), d.In))
	}
	w := d.effectiveW()
	out := tensor.New(d.Out)
	for o := 0; o < d.Out; o++ {
		row := w.Data[o*d.In : (o+1)*d.In]
		var s float32
		for i, xv := range x.Data {
			s += row[i] * xv
		}
		out.Data[o] = s + d.B.Data[o]
	}
	if train {
		d.xs = append(d.xs, x.Clone())
	}
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := len(d.xs)
	if n == 0 {
		panic("snn: Dense.Backward without cached forward step")
	}
	x := d.xs[n-1]
	d.xs = d.xs[:n-1]

	for o := 0; o < d.Out; o++ {
		g := grad.Data[o]
		if g == 0 {
			continue
		}
		drow := d.dW.Data[o*d.In : (o+1)*d.In]
		for i, xv := range x.Data {
			drow[i] += g * xv
		}
		d.dB.Data[o] += g
	}

	w := d.effectiveW()
	dx := tensor.New(d.In)
	for o := 0; o < d.Out; o++ {
		g := grad.Data[o]
		if g == 0 {
			continue
		}
		row := w.Data[o*d.In : (o+1)*d.In]
		for i, wv := range row {
			dx.Data[i] += g * wv
		}
	}
	return dx
}

// Reset implements Layer.
func (d *Dense) Reset() { d.xs = d.xs[:0] }

// Params implements ParamLayer.
func (d *Dense) Params() []*tensor.Tensor { return []*tensor.Tensor{d.W, d.B} }

// Grads implements ParamLayer.
func (d *Dense) Grads() []*tensor.Tensor { return []*tensor.Tensor{d.dW, d.dB} }
