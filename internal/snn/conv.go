package snn

import (
	"fmt"

	"repro/internal/quant"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Conv2D is a 2-D convolution over (C,H,W) inputs, lowered to matrix
// multiplication via im2row. Weights are stored as (OutC, InC·KH·KW)
// plus a per-output-channel bias.
//
// Both the single-sample and the batched path share one kernel: the
// input lowers to receptive-field rows (B·OutH·OutW, InC·KH·KW), one
// MatMul against the transposed weights computes every output position
// of every sample, and spike-sparse rows ride the GEMM skip-zero fast
// path. Per-forward caches (the transposed and mask-applied weights)
// live until Reset, which every network-level pass calls first.
type Conv2D struct {
	Geom tensor.Conv2DGeom
	OutC int

	W *tensor.Tensor // (OutC, InC*KH*KW)
	B *tensor.Tensor // (OutC)

	// Mask, when non-nil, zeroes pruned connections after every weight
	// read; the approx package installs it (same shape as W).
	Mask *tensor.Tensor

	dW *tensor.Tensor
	dB *tensor.Tensor

	rows []*tensor.Tensor // cached lowering matrices per step (training)

	effW       *tensor.Tensor // mask-applied weights, valid until Reset
	wT         *tensor.Tensor // transposed effective weights, valid until Reset
	lowScratch *tensor.Tensor // inference-mode lowering buffer, reused across steps

	// Int8 tier state (tier.go): the per-channel panel built cold by
	// Network.BuildInt8Panels (shared read-only between clones), the
	// latch SetTier flips, and the kernel's activation scratch.
	panel   *quant.Int8Panel
	useInt8 bool
	i8      tensor.Int8Scratch
}

// rowsOrient selects the GEMM orientation. When the filter bank is wide
// or the receptive field large, lowering to im2row rows lets
// spike-sparse rows ride the GEMM skip-zero fast path; tiny banks over
// tiny receptive fields keep the classic im2col panel, whose long
// contiguous inner loops beat the sparse win when the per-spike work is
// only a handful of output channels.
func (c *Conv2D) rowsOrient() bool {
	return c.OutC >= 16 || c.Geom.InC*c.Geom.KH*c.Geom.KW >= 32
}

// NewConv2D creates a convolution with Kaiming-uniform-ish Gaussian init.
func NewConv2D(inC, outC, k, stride, pad, inH, inW int, r *rng.RNG) *Conv2D {
	g := tensor.Conv2DGeom{InC: inC, InH: inH, InW: inW, KH: k, KW: k, Stride: stride, Pad: pad}
	c := &Conv2D{Geom: g, OutC: outC}
	fanIn := inC * k * k
	c.W = tensor.New(outC, fanIn)
	sd := sqrt32(2 / float32(fanIn))
	for i := range c.W.Data {
		c.W.Data[i] = r.NormFloat32() * sd
	}
	c.B = tensor.New(outC)
	c.dW = tensor.New(outC, fanIn)
	c.dB = tensor.New(outC)
	return c
}

func sqrt32(x float32) float32 {
	if x <= 0 {
		return 0
	}
	// Newton iterations on float64 then narrow; precision is irrelevant
	// for initialization.
	z := float64(x)
	y := z
	for i := 0; i < 20; i++ {
		y = 0.5 * (y + z/y)
	}
	return float32(y)
}

// Name implements Layer.
func (c *Conv2D) Name() string { return "conv2d" }

// effectiveW returns the weight matrix with the prune mask applied,
// cached until the next Reset.
func (c *Conv2D) effectiveW() *tensor.Tensor {
	if c.Mask == nil {
		return c.W
	}
	if c.effW == nil {
		c.effW = c.W.Clone()
		c.effW.Mul(c.Mask)
	}
	return c.effW
}

// transposedW returns effectiveW transposed to (InC·KH·KW, OutC),
// cached until the next Reset.
func (c *Conv2D) transposedW() *tensor.Tensor {
	if c.wT == nil {
		c.wT = tensor.Transpose(c.effectiveW())
	}
	return c.wT
}

// Forward implements Layer (single sample, (C,H,W)).
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 3 {
		panic(fmt.Sprintf("snn: Conv2D input rank %d (shape %s)", x.Rank(), shapeStr(x.Shape))) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
	}
	g := c.Geom
	out := c.forwardBatch(x.Reshape(1, g.InC, g.InH, g.InW), train)
	return out.Reshape(c.OutC, g.OutH(), g.OutW())
}

// ForwardBatch implements BatchLayer ((B,C,H,W) → (B,OutC,OutH,OutW)).
func (c *Conv2D) ForwardBatch(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("snn: Conv2D batch input rank %d (shape %s)", x.Rank(), shapeStr(x.Shape))) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
	}
	return c.forwardBatch(x, train)
}

// scatterRowsBias de-interleaves a rows-orient GEMM result (B·N, OutC)
// into (B, OutC, N) output layout, adding the channel bias. Shared by
// the allocating and arena forwards so they stay bit-identical.
func (c *Conv2D) scatterRowsBias(out, outT *tensor.Tensor, batch, n int) {
	for b := 0; b < batch; b++ {
		for j := 0; j < n; j++ {
			src := outT.Data[(b*n+j)*c.OutC : (b*n+j+1)*c.OutC]
			for oc, v := range src {
				out.Data[(b*c.OutC+oc)*n+j] = v + c.B.Data[oc]
			}
		}
	}
}

// scatterColsBias de-interleaves a cols-orient GEMM result (OutC, B·N)
// into (B, OutC, N) output layout, adding the channel bias.
func (c *Conv2D) scatterColsBias(out, big *tensor.Tensor, batch, n int) {
	for b := 0; b < batch; b++ {
		for oc := 0; oc < c.OutC; oc++ {
			src := big.Data[oc*batch*n+b*n : oc*batch*n+(b+1)*n]
			dst := out.Data[(b*c.OutC+oc)*n : (b*c.OutC+oc+1)*n]
			bias := c.B.Data[oc]
			for j, v := range src {
				dst[j] = v + bias
			}
		}
	}
}

func (c *Conv2D) forwardBatch(x *tensor.Tensor, train bool) *tensor.Tensor {
	g := c.Geom
	batch := x.Shape[0]
	oh, ow := g.OutH(), g.OutW()
	n := oh * ow
	ckk := g.InC * g.KH * g.KW
	chw := g.InC * g.InH * g.InW

	var low *tensor.Tensor // lowering: (B·N, CKK) rows or (CKK, B·N) cols
	if train {
		low = tensor.New(batch * n * ckk)
	} else {
		if c.lowScratch == nil || c.lowScratch.Len() != batch*n*ckk {
			c.lowScratch = tensor.New(batch * n * ckk)
		}
		low = c.lowScratch
	}

	var out *tensor.Tensor
	if !train && c.rowsOrient() {
		rows := low.Reshape(batch*n, ckk)
		for b := 0; b < batch; b++ {
			sample := tensor.FromSlice(x.Data[b*chw:(b+1)*chw], g.InC, g.InH, g.InW)
			tensor.Im2RowInto(rows.Data[b*n*ckk:(b+1)*n*ckk], sample, g)
		}
		// (B·N, CKK) · (CKK, OutC): sparse receptive-field rows skip.
		outT := tensor.MatMul(rows, c.transposedW())
		out = tensor.New(batch, c.OutC, oh, ow)
		c.scatterRowsBias(out, outT, batch, n)
	} else {
		cols := low.Reshape(ckk, batch*n)
		for b := 0; b < batch; b++ {
			sample := tensor.FromSlice(x.Data[b*chw:(b+1)*chw], g.InC, g.InH, g.InW)
			tensor.Im2ColStripeInto(cols.Data, batch*n, b*n, sample, g)
		}
		// (OutC, CKK) · (CKK, B·N): one panel GEMM for the batch.
		big := tensor.MatMul(c.effectiveW(), cols)
		if batch == 1 {
			for oc := 0; oc < c.OutC; oc++ {
				row := big.Data[oc*n : (oc+1)*n]
				bias := c.B.Data[oc]
				for j := range row {
					row[j] += bias
				}
			}
			out = big.Reshape(1, c.OutC, oh, ow)
		} else {
			out = tensor.New(batch, c.OutC, oh, ow)
			c.scatterColsBias(out, big, batch, n)
		}
	}
	if train {
		c.rows = append(c.rows, low)
	}
	return out
}

// forwardArena implements arenaLayer: the same lowering + GEMM + bias
// sequence as the allocating inference path, with the lowering panel,
// GEMM result, output tensor and once-per-pass weight panels all drawn
// from the arena.
func (c *Conv2D) forwardArena(x *tensor.Tensor, s *Scratch, li, batch int) *tensor.Tensor {
	g := c.Geom
	b := batch
	if b == 0 {
		b = 1
	}
	oh, ow := g.OutH(), g.OutW()
	n := oh * ow
	ckk := g.InC * g.KH * g.KW
	chw := g.InC * g.InH * g.InW
	if x.Len() != b*chw {
		panic(fmt.Sprintf("snn: Conv2D input %s does not match geom %+v (batch %d)", shapeStr(x.Shape), g, b)) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
	}

	var out *tensor.Tensor
	if batch == 0 {
		out = s.buf3(li, slotOut, c.OutC, oh, ow)
	} else {
		out = s.buf4(li, slotOut, b, c.OutC, oh, ow)
	}
	if c.useInt8 {
		// Quantized tier: the panel already carries the prune mask, so
		// the effW/wT derivations are skipped entirely.
		return c.forwardArenaInt8(x, s, li, batch, out)
	}

	// Effective weights, re-derived once per pass — the cadence the
	// allocating path gets from Reset clearing its caches.
	w := c.W
	if c.Mask != nil {
		effW, fresh := s.once2(li, slotEffW, c.OutC, ckk)
		if fresh {
			copy(effW.Data, c.W.Data)
			effW.Mul(c.Mask)
		}
		w = effW
	}

	if c.rowsOrient() {
		wT, fresh := s.once2(li, slotWT, ckk, c.OutC)
		if fresh {
			tensor.TransposeInto(wT, w)
		}
		rows := s.buf2(li, slotLow, b*n, ckk)
		for bi := 0; bi < b; bi++ {
			sample := s.view3(li, slotInView, x.Data[bi*chw:(bi+1)*chw], g.InC, g.InH, g.InW)
			tensor.Im2RowInto(rows.Data[bi*n*ckk:(bi+1)*n*ckk], sample, g)
		}
		// (B·N, CKK) · (CKK, OutC): sparse receptive-field rows skip.
		outT := s.buf2(li, slotGemm, b*n, c.OutC)
		tensor.MatMulInto(outT, rows, wT)
		c.scatterRowsBias(out, outT, b, n)
	} else {
		cols := s.buf2(li, slotLow, ckk, b*n)
		for bi := 0; bi < b; bi++ {
			sample := s.view3(li, slotInView, x.Data[bi*chw:(bi+1)*chw], g.InC, g.InH, g.InW)
			tensor.Im2ColStripeInto(cols.Data, b*n, bi*n, sample, g)
		}
		// (OutC, CKK) · (CKK, B·N): one panel GEMM for the batch.
		big := s.buf2(li, slotGemm, c.OutC, b*n)
		tensor.MatMulInto(big, w, cols)
		c.scatterColsBias(out, big, b, n)
	}
	return out
}

// trainEffW returns the weight matrix with the prune mask applied from
// the arena's once-per-pass slot (the cadence Reset gives the
// allocating path), or the raw weights when unmasked. Forward derives
// it; the backward calls of the same pass reuse it.
func (c *Conv2D) trainEffW(ts *TrainScratch, li int) *tensor.Tensor {
	if c.Mask == nil {
		return c.W
	}
	effW, fresh := ts.once2(li, slotEffW, c.OutC, c.Geom.InC*c.Geom.KH*c.Geom.KW)
	if fresh {
		copy(effW.Data, c.W.Data)
		effW.Mul(c.Mask)
	}
	return effW
}

// ForwardBatchInto implements trainLayer: the training forward
// (ForwardBatch(x, true)) with the per-step im2col panel cached in the
// arena's step ring instead of freshly allocated, and the GEMM result,
// output tensor and weight panels all reused.
func (c *Conv2D) ForwardBatchInto(x *tensor.Tensor, ts *TrainScratch, li, t int) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("snn: Conv2D batch input rank %d (shape %s)", x.Rank(), shapeStr(x.Shape))) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
	}
	g := c.Geom
	batch := x.Shape[0]
	oh, ow := g.OutH(), g.OutW()
	n := oh * ow
	ckk := g.InC * g.KH * g.KW
	chw := g.InC * g.InH * g.InW
	w := c.trainEffW(ts, li)

	// Training always lowers to the im2col panel — the layout the
	// backward kernels consume, matching forwardBatch's train branch.
	cols := ts.buf2(li, slotLow, t, ckk, batch*n)
	for b := 0; b < batch; b++ {
		sample := ts.view3(li, slotInView, x.Data[b*chw:(b+1)*chw], g.InC, g.InH, g.InW)
		tensor.Im2ColStripeInto(cols.Data, batch*n, b*n, sample, g)
	}
	big := ts.buf2(li, slotGemm, -1, c.OutC, batch*n)
	tensor.MatMulInto(big, w, cols)
	out := ts.buf4(li, slotOut, -1, batch, c.OutC, oh, ow)
	c.scatterColsBias(out, big, batch, n)
	return out
}

// BackwardBatchInto implements trainLayer: backwardBatch against the
// arena's cached panel for this step. The weight-gradient GEMM runs the
// spike-sparse column-skip kernel — the cached im2col panel is the
// transposed operand and is mostly zero taps, so its dead columns skip
// wholesale (bit-identical accumulation, see tensor.MatMulTColSkipAcc).
// With needDX false (no parameter layer below) the input-gradient GEMM
// and col2im scatter are skipped entirely.
func (c *Conv2D) BackwardBatchInto(grad *tensor.Tensor, ts *TrainScratch, li, t int, needDX bool) *tensor.Tensor {
	g := c.Geom
	batch := grad.Shape[0]
	oh, ow := g.OutH(), g.OutW()
	n := oh * ow
	ckk := g.InC * g.KH * g.KW
	chw := g.InC * g.InH * g.InW
	cols := ts.buf2(li, slotLow, t, ckk, batch*n)

	// g2B[oc, b·N+j] = grad[b, oc, j]; for a single sample the gradient
	// already is that matrix.
	var g2B *tensor.Tensor
	if batch == 1 {
		g2B = ts.view2(li, slotGradView, grad.Data, c.OutC, n)
	} else {
		g2B = ts.buf2(li, slotG2B, -1, c.OutC, batch*n)
		for b := 0; b < batch; b++ {
			for oc := 0; oc < c.OutC; oc++ {
				copy(g2B.Data[oc*batch*n+b*n:oc*batch*n+(b+1)*n],
					grad.Data[(b*c.OutC+oc)*n:(b*c.OutC+oc)*n+n])
			}
		}
	}
	for oc := 0; oc < c.OutC; oc++ {
		row := g2B.Data[oc*batch*n : (oc+1)*batch*n]
		var s float32
		for _, v := range row {
			s += v
		}
		c.dB.Data[oc] += s
	}
	// dW += g2B·colsᵀ over the nonzero panel columns only.
	tensor.MatMulTColSkipAcc(c.dW, g2B, cols, ts.ints(li, slotIdx, -1, batch*n))
	if !needDX {
		return nil
	}
	// dX = col2im(Wᵀ·g2B) per sample.
	dcols := ts.buf2(li, slotDCols, -1, ckk, batch*n)
	tensor.TMatMulInto(dcols, c.trainEffW(ts, li), g2B)
	dx := ts.buf4(li, slotGrad, -1, batch, g.InC, g.InH, g.InW)
	dx.Zero()
	for b := 0; b < batch; b++ {
		sample := ts.view3(li, slotOutView, dx.Data[b*chw:(b+1)*chw], g.InC, g.InH, g.InW)
		tensor.Col2ImStripeInto(sample, dcols.Data, batch*n, b*n, g)
	}
	return dx
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	g := c.Geom
	dx := c.backwardBatch(grad.Reshape(1, c.OutC, g.OutH(), g.OutW()))
	return dx.Reshape(g.InC, g.InH, g.InW)
}

// BackwardBatch implements BatchLayer.
func (c *Conv2D) BackwardBatch(grad *tensor.Tensor) *tensor.Tensor {
	return c.backwardBatch(grad)
}

func (c *Conv2D) backwardBatch(grad *tensor.Tensor) *tensor.Tensor {
	nc := len(c.rows)
	if nc == 0 {
		panic("snn: Conv2D.Backward without cached forward step")
	}
	low := c.rows[nc-1]
	c.rows = c.rows[:nc-1]

	g := c.Geom
	batch := grad.Shape[0]
	oh, ow := g.OutH(), g.OutW()
	n := oh * ow
	ckk := g.InC * g.KH * g.KW
	chw := g.InC * g.InH * g.InW
	dx := tensor.New(batch, g.InC, g.InH, g.InW)

	// Training forwards always cache the im2col panel (the im2row
	// orientation only serves inference), so the backward kernels are
	// the classic panel forms.
	cols := low.Reshape(ckk, batch*n)
	// g2B[oc, b·N+j] = grad[b, oc, j]; for a single sample the gradient
	// already is that matrix.
	var g2B *tensor.Tensor
	if batch == 1 {
		g2B = grad.Reshape(c.OutC, n)
	} else {
		g2B = tensor.New(c.OutC, batch*n)
		for b := 0; b < batch; b++ {
			for oc := 0; oc < c.OutC; oc++ {
				copy(g2B.Data[oc*batch*n+b*n:oc*batch*n+(b+1)*n],
					grad.Data[(b*c.OutC+oc)*n:(b*c.OutC+oc+1)*n])
			}
		}
	}
	for oc := 0; oc < c.OutC; oc++ {
		row := g2B.Data[oc*batch*n : (oc+1)*batch*n]
		var s float32
		for _, v := range row {
			s += v
		}
		c.dB.Data[oc] += s
	}
	// dW += g2B·colsᵀ ; dX = col2im(Wᵀ·g2B) per sample.
	tensor.MatMulTAcc(c.dW, g2B, cols)
	dcols := tensor.TMatMul(c.effectiveW(), g2B)
	for b := 0; b < batch; b++ {
		sample := tensor.FromSlice(dx.Data[b*chw:(b+1)*chw], g.InC, g.InH, g.InW)
		tensor.Col2ImStripeInto(sample, dcols.Data, batch*n, b*n, g)
	}
	return dx
}

// Reset implements Layer.
func (c *Conv2D) Reset() {
	c.rows = c.rows[:0]
	c.effW = nil
	c.wT = nil
}

// Params implements ParamLayer.
func (c *Conv2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.W, c.B} }

// Grads implements ParamLayer.
func (c *Conv2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.dW, c.dB} }

// Dense is a fully connected layer y = Wx + b over rank-1 inputs (or
// (B,In) batches).
type Dense struct {
	In, Out int

	W *tensor.Tensor // (Out, In)
	B *tensor.Tensor // (Out)

	// Mask, when non-nil, zeroes pruned connections (approx package).
	Mask *tensor.Tensor

	dW *tensor.Tensor
	dB *tensor.Tensor

	xs []*tensor.Tensor // cached inputs per step (training)

	effW *tensor.Tensor // mask-applied weights, valid until Reset
	wT   *tensor.Tensor // transposed effective weights, valid until Reset
	idx  []int          // scratch: nonzero input indices (spike fast path)

	// Int8 tier state (tier.go), mirroring Conv2D's.
	panel   *quant.Int8Panel
	useInt8 bool
	i8      tensor.Int8Scratch
}

// NewDense creates a dense layer with Gaussian init scaled by fan-in.
func NewDense(in, out int, r *rng.RNG) *Dense {
	d := &Dense{In: in, Out: out}
	d.W = tensor.New(out, in)
	sd := sqrt32(2 / float32(in))
	for i := range d.W.Data {
		d.W.Data[i] = r.NormFloat32() * sd
	}
	d.B = tensor.New(out)
	d.dW = tensor.New(out, in)
	d.dB = tensor.New(out)
	return d
}

// Name implements Layer.
func (d *Dense) Name() string { return "dense" }

func (d *Dense) effectiveW() *tensor.Tensor {
	if d.Mask == nil {
		return d.W
	}
	if d.effW == nil {
		d.effW = d.W.Clone()
		d.effW.Mul(d.Mask)
	}
	return d.effW
}

func (d *Dense) transposedW() *tensor.Tensor {
	if d.wT == nil {
		d.wT = tensor.Transpose(d.effectiveW())
	}
	return d.wT
}

// nonzero fills d.idx with the indices of nonzero elements of x.
func (d *Dense) nonzero(x []float32) []int {
	idx := d.idx[:0]
	for i, v := range x {
		if v != 0 {
			idx = append(idx, i) //axsnn:allow-alloc grows d.idx to the densest frame seen, then reuses it
		}
	}
	d.idx = idx
	return idx
}

// forwardInto computes out = w·x + b for one sample. Spiking inputs are
// mostly zeros, so the dot products gather only the nonzero indices;
// dense inputs fall back to the straight loops. Shared by Forward and
// forwardArena so the arena stays bit-identical by construction.
func (d *Dense) forwardInto(w, x, out *tensor.Tensor) {
	idx := d.nonzero(x.Data)
	if 2*len(idx) <= d.In {
		for o := 0; o < d.Out; o++ {
			row := w.Data[o*d.In : (o+1)*d.In]
			var s float32
			for _, i := range idx {
				s += row[i] * x.Data[i]
			}
			out.Data[o] = s + d.B.Data[o]
		}
	} else {
		for o := 0; o < d.Out; o++ {
			row := w.Data[o*d.In : (o+1)*d.In]
			var s float32
			for i, xv := range x.Data {
				s += row[i] * xv
			}
			out.Data[o] = s + d.B.Data[o]
		}
	}
}

// Forward implements Layer (single sample).
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Len() != d.In {
		panic(fmt.Sprintf("snn: Dense input %d, want %d", x.Len(), d.In)) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
	}
	out := tensor.New(d.Out)
	d.forwardInto(d.effectiveW(), x, out)
	if train {
		d.xs = append(d.xs, x.Clone())
	}
	return out
}

// ForwardBatch implements BatchLayer ((B,In) → (B,Out)): one GEMM
// against the transposed weights, sparse input rows skipping wholesale.
func (d *Dense) ForwardBatch(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 2 || x.Shape[1] != d.In {
		panic(fmt.Sprintf("snn: Dense batch input %s, want (B,%d)", shapeStr(x.Shape), d.In)) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
	}
	out := tensor.MatMul(x, d.transposedW())
	batch := x.Shape[0]
	for b := 0; b < batch; b++ {
		row := out.Data[b*d.Out : (b+1)*d.Out]
		for o := range row {
			row[o] += d.B.Data[o]
		}
	}
	if train {
		d.xs = append(d.xs, x.Clone())
	}
	return out
}

// forwardArena implements arenaLayer: the per-sample path keeps the
// spike-sparse gather loops, the batched path the single GEMM; outputs
// and weight panels live in the arena.
func (d *Dense) forwardArena(x *tensor.Tensor, s *Scratch, li, batch int) *tensor.Tensor {
	if d.useInt8 {
		// Quantized tier: the panel already carries the prune mask.
		return d.forwardArenaInt8(x, s, li, batch)
	}
	w := d.W
	if d.Mask != nil {
		effW, fresh := s.once2(li, slotEffW, d.Out, d.In)
		if fresh {
			copy(effW.Data, d.W.Data)
			effW.Mul(d.Mask)
		}
		w = effW
	}
	if batch == 0 {
		if x.Len() != d.In {
			panic(fmt.Sprintf("snn: Dense input %d, want %d", x.Len(), d.In)) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
		}
		out := s.buf1(li, slotOut, d.Out)
		d.forwardInto(w, x, out)
		return out
	}
	wT, fresh := s.once2(li, slotWT, d.In, d.Out)
	if fresh {
		tensor.TransposeInto(wT, w)
	}
	out := s.buf2(li, slotOut, batch, d.Out)
	tensor.MatMulInto(out, x, wT)
	for b := 0; b < batch; b++ {
		row := out.Data[b*d.Out : (b+1)*d.Out]
		for o := range row {
			row[o] += d.B.Data[o]
		}
	}
	return out
}

// trainEffW is Conv2D.trainEffW for the dense layer.
func (d *Dense) trainEffW(ts *TrainScratch, li int) *tensor.Tensor {
	if d.Mask == nil {
		return d.W
	}
	effW, fresh := ts.once2(li, slotEffW, d.Out, d.In)
	if fresh {
		copy(effW.Data, d.W.Data)
		effW.Mul(d.Mask)
	}
	return effW
}

// ForwardBatchInto implements trainLayer: ForwardBatch(x, true) with
// the GEMM output, weight panels and the per-step input cache (the
// allocating path's Clone) drawn from the arena.
func (d *Dense) ForwardBatchInto(x *tensor.Tensor, ts *TrainScratch, li, t int) *tensor.Tensor {
	if x.Rank() != 2 || x.Shape[1] != d.In {
		panic(fmt.Sprintf("snn: Dense batch input %s, want (B,%d)", shapeStr(x.Shape), d.In)) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
	}
	batch := x.Shape[0]
	w := d.trainEffW(ts, li)
	wT, fresh := ts.once2(li, slotWT, d.In, d.Out)
	if fresh {
		tensor.TransposeInto(wT, w)
	}
	out := ts.buf2(li, slotOut, -1, batch, d.Out)
	tensor.MatMulInto(out, x, wT)
	for b := 0; b < batch; b++ {
		row := out.Data[b*d.Out : (b+1)*d.Out]
		for o := range row {
			row[o] += d.B.Data[o]
		}
	}
	xc := ts.buf2(li, slotXCache, t, batch, d.In)
	copy(xc.Data, x.Data)
	return out
}

// BackwardBatchInto implements trainLayer: BackwardBatch against the
// arena's per-step input cache, with the weight-gradient panel and the
// input-gradient GEMM result reused. Kernels and accumulation order
// match BackwardBatch exactly; with needDX false (no parameter layer
// below) the input-gradient GEMM is skipped.
func (d *Dense) BackwardBatchInto(grad *tensor.Tensor, ts *TrainScratch, li, t int, needDX bool) *tensor.Tensor {
	batch := grad.Shape[0]
	x := ts.buf2(li, slotXCache, t, batch, d.In)
	// dWᵀ = xᵀ·grad with the spike-sparse x rows driving the skip path,
	// then the cheap transposed add — BackwardBatch's kernels on a
	// reusable panel.
	dwT := ts.buf2(li, slotDW, -1, d.In, d.Out)
	tensor.TMatMulInto(dwT, x, grad)
	d.dW.AddTransposed(dwT)
	for b := 0; b < batch; b++ {
		row := grad.Data[b*d.Out : (b+1)*d.Out]
		for o, g := range row {
			d.dB.Data[o] += g
		}
	}
	if !needDX {
		return nil
	}
	dx := ts.buf2(li, slotGrad, -1, batch, d.In)
	tensor.MatMulInto(dx, grad, d.trainEffW(ts, li))
	return dx
}

// Backward implements Layer.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := len(d.xs)
	if n == 0 {
		panic("snn: Dense.Backward without cached forward step")
	}
	x := d.xs[n-1]
	d.xs = d.xs[:n-1]

	idx := d.nonzero(x.Data)
	sparse := 2*len(idx) <= d.In
	for o := 0; o < d.Out; o++ {
		g := grad.Data[o]
		if g == 0 {
			continue
		}
		drow := d.dW.Data[o*d.In : (o+1)*d.In]
		if sparse {
			for _, i := range idx {
				drow[i] += g * x.Data[i]
			}
		} else {
			for i, xv := range x.Data {
				drow[i] += g * xv
			}
		}
		d.dB.Data[o] += g
	}

	w := d.effectiveW()
	dx := tensor.New(d.In)
	for o := 0; o < d.Out; o++ {
		g := grad.Data[o]
		if g == 0 {
			continue
		}
		row := w.Data[o*d.In : (o+1)*d.In]
		for i, wv := range row {
			dx.Data[i] += g * wv
		}
	}
	return dx
}

// BackwardBatch implements BatchLayer.
func (d *Dense) BackwardBatch(grad *tensor.Tensor) *tensor.Tensor {
	n := len(d.xs)
	if n == 0 {
		panic("snn: Dense.Backward without cached forward step")
	}
	x := d.xs[n-1]
	d.xs = d.xs[:n-1]

	// dWᵀ = xᵀ·grad with the spike-sparse x rows driving the skip
	// path; the transposed add is O(In·Out) against the O(B·In·Out)
	// GEMM it avoids.
	d.dW.AddTransposed(tensor.TMatMul(x, grad))
	batch := grad.Shape[0]
	for b := 0; b < batch; b++ {
		row := grad.Data[b*d.Out : (b+1)*d.Out]
		for o, g := range row {
			d.dB.Data[o] += g
		}
	}
	return tensor.MatMul(grad, d.effectiveW())
}

// Reset implements Layer.
func (d *Dense) Reset() {
	d.xs = d.xs[:0]
	d.effW = nil
	d.wT = nil
}

// Params implements ParamLayer.
func (d *Dense) Params() []*tensor.Tensor { return []*tensor.Tensor{d.W, d.B} }

// Grads implements ParamLayer.
func (d *Dense) Grads() []*tensor.Tensor { return []*tensor.Tensor{d.dW, d.dB} }
