package snn

import (
	"testing"

	"repro/internal/tensor"
)

func TestLIFIntegratesAndFires(t *testing.T) {
	l := NewLIF(1.0, 1.0, 4) // no leak
	in := tensor.FromSlice([]float32{0.4}, 1)
	// 0.4, 0.8, 1.2 -> fire on third step
	for step := 0; step < 2; step++ {
		out := l.Forward(in, false)
		if out.Data[0] != 0 {
			t.Fatalf("fired too early at step %d", step)
		}
	}
	out := l.Forward(in, false)
	if out.Data[0] != 1 {
		t.Fatal("expected spike on third step")
	}
	// Soft reset: V = 1.2 - 1.0 = 0.2, next step 0.6 -> no spike.
	out = l.Forward(in, false)
	if out.Data[0] != 0 {
		t.Fatal("soft reset failed")
	}
}

func TestLIFLeakPreventsFiring(t *testing.T) {
	l := NewLIF(1.0, 0.5, 4)
	in := tensor.FromSlice([]float32{0.4}, 1)
	// With λ=0.5 the membrane converges to 0.8 < 1.0: never fires.
	for step := 0; step < 50; step++ {
		if l.Forward(in, false).Data[0] != 0 {
			t.Fatalf("leaky neuron fired at step %d", step)
		}
	}
}

func TestLIFHighThresholdSilent(t *testing.T) {
	l := NewLIF(100, 0.9, 4)
	in := tensor.FromSlice([]float32{1}, 1)
	for step := 0; step < 20; step++ {
		if l.Forward(in, false).Data[0] != 0 {
			t.Fatal("neuron fired despite huge threshold")
		}
	}
	if l.StatSpikes != 0 {
		t.Fatal("stat spikes should be zero")
	}
}

func TestLIFStats(t *testing.T) {
	l := NewLIF(0.5, 1.0, 4)
	in := tensor.FromSlice([]float32{1, 0}, 2)
	for step := 0; step < 4; step++ {
		l.Forward(in, false)
	}
	if l.StatSteps != 4 || l.StatUnits != 2 {
		t.Fatalf("steps=%d units=%d", l.StatSteps, l.StatUnits)
	}
	// Neuron 0 fires every step (1 >= 0.5 immediately).
	if l.MeanSpikesPerStep() != 1 {
		t.Fatalf("mean spikes per step = %v, want 1", l.MeanSpikesPerStep())
	}
	l.ResetStats()
	if l.StatSpikes != 0 || l.StatSteps != 0 {
		t.Fatal("ResetStats incomplete")
	}
}

func TestLIFResetClearsMembrane(t *testing.T) {
	l := NewLIF(1.0, 1.0, 4)
	in := tensor.FromSlice([]float32{0.9}, 1)
	l.Forward(in, false)
	l.Reset()
	// After reset the membrane restarts from zero: 0.9 < 1.0, no spike.
	if l.Forward(in, false).Data[0] != 0 {
		t.Fatal("membrane survived Reset")
	}
}

func TestLIFBackwardRequiresCache(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Backward without Forward")
		}
	}()
	NewLIF(1, 1, 4).Backward(tensor.New(1))
}

func TestLIFSurrogatePeaksAtThreshold(t *testing.T) {
	l := NewLIF(1.0, 1.0, 4)
	grad := tensor.FromSlice([]float32{1, 1, 1}, 3)
	// Three neurons at membrane 0.2, 1.0, 1.8: surrogate is largest at
	// the threshold.
	in := tensor.FromSlice([]float32{0.2, 1.0, 1.8}, 3)
	l.Forward(in, true)
	g := l.Backward(grad)
	if !(g.Data[1] > g.Data[0] && g.Data[1] > g.Data[2]) {
		t.Fatalf("surrogate not peaked at threshold: %v", g.Data)
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	f := &Flatten{}
	x := tensor.New(2, 3, 4)
	for i := range x.Data {
		x.Data[i] = float32(i)
	}
	y := f.Forward(x, true)
	if y.Rank() != 1 || y.Len() != 24 {
		t.Fatalf("flatten shape %v", y.Shape)
	}
	g := f.Backward(y)
	if g.Rank() != 3 || g.Dim(0) != 2 || g.Dim(1) != 3 || g.Dim(2) != 4 {
		t.Fatalf("unflatten shape %v", g.Shape)
	}
}
