package snn

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// randFrames builds per-sample spike-frame sequences for a (C,H,W)
// input at the given spike density.
func randFrames(r *rng.RNG, batch, steps int, density float64, shape ...int) [][]*tensor.Tensor {
	out := make([][]*tensor.Tensor, batch)
	for b := range out {
		fr := make([]*tensor.Tensor, steps)
		for t := range fr {
			f := tensor.New(shape...)
			for i := range f.Data {
				if r.Float64() < density {
					f.Data[i] = 1
				}
			}
			fr[t] = f
		}
		out[b] = fr
	}
	return out
}

// TestForwardBatchMatchesLooped pins the batched-path contract: for any
// batch, ForwardBatch logits must match running Network.Forward on each
// sample individually (the kernels preserve per-element accumulation
// order, so the tolerance is tight).
func TestForwardBatchMatchesLooped(t *testing.T) {
	r := rng.New(41)
	cfg := DefaultConfig(0.6, 5)
	nets := map[string]*Network{
		"mnist": MNISTNet(cfg, 1, 12, 12, true, rng.New(1)),
		"dense": DenseNet(cfg, 144, 32, 10, rng.New(2)),
	}
	shapes := map[string][]int{
		"mnist": {1, 12, 12},
		"dense": {1, 12, 12},
	}
	for name, net := range nets {
		if !net.Batchable() {
			t.Fatalf("%s: built-in network not batchable", name)
		}
		for _, density := range []float64{0, 0.15, 0.8} {
			samples := randFrames(r, 7, cfg.Steps, density, shapes[name]...)
			batched := net.ForwardBatch(StackFrames(samples, cfg.Steps), false)
			for b, fr := range samples {
				single := net.Forward(fr, false)
				for j, v := range single.Data {
					got := batched.Data[b*single.Len()+j]
					if math.Abs(float64(got-v)) > 1e-5 {
						t.Fatalf("%s d=%.2f sample %d logit %d: batched %v vs looped %v",
							name, density, b, j, got, v)
					}
				}
			}
		}
	}
}

// TestMaxPoolDVSBatchMatchesLooped covers the max-pool and dropout
// layers through the DVS topology (dropout passes through on clones and
// in eval mode, so predictions must still agree).
func TestMaxPoolDVSBatchMatchesLooped(t *testing.T) {
	r := rng.New(43)
	cfg := DefaultConfig(0.8, 4)
	net := DVSNet(cfg, 16, 16, 5, true, rng.New(3), nil)
	samples := randFrames(r, 5, cfg.Steps, 0.2, 2, 16, 16)
	preds := net.PredictBatch(samples)
	for b, fr := range samples {
		if p := net.Predict(fr); p != preds[b] {
			t.Fatalf("sample %d: batched pred %d vs looped %d", b, preds[b], p)
		}
	}
}

// TestBackwardBatchMatchesLooped checks that one batched training pass
// accumulates the same parameter gradients as per-sample passes (the
// per-sample gradient terms are identical; only their summation order
// across the batch differs, so the comparison uses a scaled tolerance).
func TestBackwardBatchMatchesLooped(t *testing.T) {
	r := rng.New(44)
	cfg := DefaultConfig(0.6, 4)
	build := func() *Network { return MNISTNet(cfg, 1, 10, 10, true, rng.New(7)) }

	samples := randFrames(r, 6, cfg.Steps, 0.3, 1, 10, 10)
	labels := []int{0, 3, 1, 9, 4, 3}

	a := build()
	a.ZeroGrads()
	logits := a.ForwardBatch(StackFrames(samples, cfg.Steps), true)
	lossBatch, grad := SoftmaxCrossEntropyBatch(logits, labels)
	gradsIn := a.BackwardBatch(grad)

	b := build()
	b.ZeroGrads()
	lossLoop := 0.0
	loopGradsIn := make([][]*tensor.Tensor, len(samples))
	for i, fr := range samples {
		lg := b.Forward(fr, true)
		loss, g := SoftmaxCrossEntropy(lg, labels[i])
		lossLoop += loss
		loopGradsIn[i] = b.Backward(g)
	}

	if math.Abs(lossBatch-lossLoop) > 1e-6*math.Max(1, math.Abs(lossLoop)) {
		t.Fatalf("loss mismatch: batched %v vs looped %v", lossBatch, lossLoop)
	}
	ga, gb := a.Grads(), b.Grads()
	for gi := range ga {
		for j := range ga[gi].Data {
			d := math.Abs(float64(ga[gi].Data[j] - gb[gi].Data[j]))
			if d > 1e-4 {
				t.Fatalf("grad tensor %d elem %d: batched %v vs looped %v",
					gi, j, ga[gi].Data[j], gb[gi].Data[j])
			}
		}
	}
	// Input gradients feed the attacks; they must agree per sample.
	per := samples[0][0].Len()
	for tstep := range gradsIn {
		for i := range samples {
			for j := 0; j < per; j++ {
				got := gradsIn[tstep].Data[i*per+j]
				want := loopGradsIn[i][tstep].Data[j]
				if math.Abs(float64(got-want)) > 1e-5 {
					t.Fatalf("input grad step %d sample %d elem %d: %v vs %v",
						tstep, i, j, got, want)
				}
			}
		}
	}
}

// TestStackFramesRepeatsShortSequences pins the frame-repeat rule.
func TestStackFramesRepeatsShortSequences(t *testing.T) {
	one := tensor.FromSlice([]float32{1, 2}, 2)
	two := tensor.FromSlice([]float32{3, 4}, 2)
	three := tensor.FromSlice([]float32{5, 6}, 2)
	stacked := StackFrames([][]*tensor.Tensor{{one}, {two, three}}, 3)
	if len(stacked) != 3 {
		t.Fatalf("want 3 steps, got %d", len(stacked))
	}
	// Sample 0 repeats its single frame; sample 1 repeats its last.
	wantStep2 := []float32{1, 2, 5, 6}
	for i, v := range wantStep2 {
		if stacked[2].Data[i] != v {
			t.Fatalf("step 2 elem %d: got %v want %v", i, stacked[2].Data[i], v)
		}
	}
}

// TestAccuracyBatchedMatchesPredictLoop: the chunked Accuracy must agree
// with an explicit per-sample Predict loop over the same encoded
// stream.
func TestAccuracyBatchedMatchesPredictLoop(t *testing.T) {
	net := MNISTNet(DefaultConfig(0.5, 3), 1, 12, 12, true, rng.New(5))
	test := tinyTrainSet(40, 8)
	// Deterministic encoder so the streams cannot diverge.
	acc := Accuracy(net, test, directEnc{}, 9)
	correct := 0
	for _, s := range test.Samples {
		frames := directEnc{}.Encode(s.Image, net.Cfg.Steps, nil)
		if net.Predict(frames) == s.Label {
			correct++
		}
	}
	want := float64(correct) / float64(test.Len())
	if acc != want {
		t.Fatalf("batched accuracy %v vs looped %v", acc, want)
	}
}

// directEnc is a minimal deterministic encoder for the test above.
type directEnc struct{}

func (directEnc) Name() string { return "direct-test" }

func (directEnc) Encode(img *tensor.Tensor, steps int, _ *rng.RNG) []*tensor.Tensor {
	out := make([]*tensor.Tensor, steps)
	for t := range out {
		out[t] = img.Clone()
	}
	return out
}
