package snn

import (
	"fmt"

	"repro/internal/tensor"
)

// The training arena. PR 2's inference Scratch closed the forward-only
// allocation hole, but every BPTT minibatch still allocated fresh
// per-step forward caches (LIF pre-reset potentials, conv im2col
// panels, pool argmax maps, dense input clones), fresh gradient tensors
// on the way back, and a fresh StackFrames batch — exactly where
// training, adversarial crafting and the experiment grids spend their
// wall-clock. A TrainScratch owns all of those buffers, keyed by
// (layer, slot, time step), so a steady-state training step allocates
// no tensors at all once shapes have been seen.
//
// Layout: per-step caches (what the reverse pass pops) are a ring of
// Cfg.Steps buffers per (layer, slot), addressed by folding the step
// into the slot space; per-layer transients (outputs, gradient buffers)
// and once-per-pass panels (effective weights, dropout masks) reuse a
// single buffer. Because the caches are indexed by step rather than
// pushed on stacks, the backward pass can also skip work the allocating
// path could not: layers at or below the lowest parameter layer never
// compute input gradients unless the caller asked for them (attacks
// do, Train does not).
//
// Lifecycle: Network.AcquireTrainScratch hands out an arena (recycled
// from a per-network free list) that also caches the network's
// parameter and gradient tensor lists; Network.ReleaseTrain returns it.
// snn.Train/TrainFrames acquire one per fit and attack.Gradient one per
// batch crafting session, so callers keep the old one-line APIs. A
// TrainScratch belongs to one network and must not be shared between
// goroutines; concurrent training uses clones, each with its own arena.
//
// Correctness: the arena passes run the same kernels in the same
// accumulation order as the allocating ForwardBatch/BackwardBatch, so
// losses, input gradients and trained weights are bit-identical to the
// pre-arena path at any worker count (pinned by train_arena_test.go).
// The one kernel swap — the conv weight-gradient GEMM runs
// tensor.MatMulTColSkipAcc instead of MatMulTAcc — skips exact zero
// products only, which Go's float comparison cannot distinguish.

// trainSlotStride folds the time step into the slot space: per-step
// slot s at step t lives at s + trainSlotStride·(t+1), per-pass slots
// at s itself. The slot enumeration in arena.go must stay below it.
const trainSlotStride = 32

var _ [trainSlotStride - slotCount]struct{} // slots must fit the stride

// tslot maps (slot, step) to the folded slot index; t = -1 addresses
// the per-pass/per-layer instance.
func tslot(slot, t int) int { return slot + trainSlotStride*(t+1) }

// TrainScratch is a per-network arena of reusable BPTT buffers.
type TrainScratch struct {
	sc    Scratch
	steps int

	// params/grads are the network's parameter and gradient tensors,
	// cached so the train loop (gradient clipping, optimizer steps,
	// zeroing) never rebuilds the slices.
	params, grads []*tensor.Tensor

	// frames is the reusable header slice StackFramesInto returns.
	frames []*tensor.Tensor

	// intm holds reusable int scratch (pool argmax rings, pool dims,
	// GEMM nonzero-index buffers), keyed like the tensor buffers.
	intm map[slotKey][]int
}

// trainLayer is implemented by every built-in layer: training-mode
// batched forward/backward (ForwardBatch(x, true) semantics) that draw
// all working memory from the arena. li is the layer's position, t the
// time step (forward ascending, backward descending). BackwardBatchInto
// may return nil when needDX is false — the caller does not need the
// input gradient, so layers without parameters below them skip that
// work entirely.
type trainLayer interface {
	BatchLayer
	ForwardBatchInto(x *tensor.Tensor, ts *TrainScratch, li, t int) *tensor.Tensor
	BackwardBatchInto(grad *tensor.Tensor, ts *TrainScratch, li, t int, needDX bool) *tensor.Tensor
}

// Buffer accessors: thin wrappers folding the step into the inference
// Scratch machinery (sizing, shape reuse, state zeroing, generations).

func (ts *TrainScratch) buf2(li, slot, t, a, b int) *tensor.Tensor {
	return ts.sc.buf2(li, tslot(slot, t), a, b)
}

func (ts *TrainScratch) buf4(li, slot, t, a, b, c, d int) *tensor.Tensor {
	return ts.sc.buf4(li, tslot(slot, t), a, b, c, d)
}

func (ts *TrainScratch) bufShape(li, slot, t int, shape []int) *tensor.Tensor {
	return ts.sc.bufShape(li, tslot(slot, t), shape)
}

func (ts *TrainScratch) stateBufShape(li, slot int, shape []int) *tensor.Tensor {
	return ts.sc.stateBufShape(li, tslot(slot, -1), shape)
}

func (ts *TrainScratch) once2(li, slot, a, b int) (*tensor.Tensor, bool) {
	return ts.sc.once2(li, tslot(slot, -1), a, b)
}

func (ts *TrainScratch) onceShape(li, slot int, shape []int) (*tensor.Tensor, bool) {
	return ts.sc.onceShape(li, tslot(slot, -1), shape)
}

func (ts *TrainScratch) view2(li, slot int, data []float32, a, b int) *tensor.Tensor {
	return ts.sc.view2(li, tslot(slot, -1), data, a, b)
}

func (ts *TrainScratch) view3(li, slot int, data []float32, a, b, c int) *tensor.Tensor {
	return ts.sc.view3(li, tslot(slot, -1), data, a, b, c)
}

func (ts *TrainScratch) viewShape(li, slot int, data []float32, shape []int) *tensor.Tensor {
	return ts.sc.viewShape(li, tslot(slot, -1), data, shape)
}

// ints returns a reusable int scratch of length n for (layer, slot,
// step). Contents persist between forward and backward of one pass.
func (ts *TrainScratch) ints(li, slot, t, n int) []int {
	k := slotKey{li, tslot(slot, t)}
	b := ts.intm[k]
	if cap(b) < n {
		b = make([]int, n) //axsnn:allow-alloc grows only when the slot length increases
		ts.intm[k] = b
	}
	return b[:n]
}

// Params returns the network's parameter tensors (cached at acquire).
func (ts *TrainScratch) Params() []*tensor.Tensor { return ts.params }

// Grads returns the gradient tensors aligned with Params.
func (ts *TrainScratch) Grads() []*tensor.Tensor { return ts.grads }

// ZeroGrads clears every gradient tensor without rebuilding the slice
// (the allocation-free form of Network.ZeroGrads).
func (ts *TrainScratch) ZeroGrads() {
	for _, g := range ts.grads {
		g.Zero()
	}
}

// StackFramesInto assembles per-sample frame sequences into the arena's
// per-step batched frame buffers — StackFrames reusing one ring of
// Cfg.Steps tensors across minibatches. The returned slice and tensors
// are owned by the arena and valid until the next StackFramesInto.
func (ts *TrainScratch) StackFramesInto(samples [][]*tensor.Tensor) []*tensor.Tensor {
	if len(samples) == 0 {
		panic("snn: StackFramesInto with no samples")
	}
	batch := len(samples)
	shape := samples[0][0].Shape
	per := samples[0][0].Len()
	if cap(ts.frames) < ts.steps {
		ts.frames = make([]*tensor.Tensor, ts.steps) //axsnn:allow-alloc frame ring allocated once per arena
	}
	frames := ts.frames[:ts.steps]
	for t := 0; t < ts.steps; t++ {
		f := ts.sc.sized(netLayer, tslot(slotFrame, t), batch*per).t
		if len(f.Shape) != 1+len(shape) {
			f.Shape = make([]int, 1+len(shape)) //axsnn:allow-alloc rank changes at most once per slot
		}
		f.Shape[0] = batch
		copy(f.Shape[1:], shape)
		for b, fr := range samples {
			src := fr[min(t, len(fr)-1)]
			if src.Len() != per {
				panic(fmt.Sprintf("snn: StackFramesInto sample %d frame size %d, want %d", b, src.Len(), per)) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
			}
			copy(f.Data[b*per:(b+1)*per], src.Data)
		}
		frames[t] = f
	}
	return frames
}

// TrainArenaCapable reports whether every layer supports the training
// arena (all built-in layers do), caching the layer view on first use.
//
//axsnn:allow-alloc caches the training layer view; runs once per network
func (n *Network) TrainArenaCapable() bool {
	if !n.trainInit {
		n.trainInit = true
		n.paramFloor = len(n.Layers)
		ls := make([]trainLayer, 0, len(n.Layers))
		for i, l := range n.Layers {
			tl, ok := l.(trainLayer)
			if !ok {
				return false
			}
			if _, isParam := l.(ParamLayer); isParam && i < n.paramFloor {
				n.paramFloor = i
			}
			ls = append(ls, tl)
		}
		n.trainLs = ls
	}
	return n.trainLs != nil
}

// AcquireTrainScratch returns a training arena for this network,
// recycled from the network's free list when one is parked there. Pair
// with ReleaseTrain. Not safe for concurrent use — concurrent training
// runs on clones, each owning its arena. The arena caches the network's
// Params/Grads lists, so acquire a fresh one after structural surgery
// that replaces parameter tensors.
func (n *Network) AcquireTrainScratch() *TrainScratch {
	if k := len(n.trainFree); k > 0 {
		ts := n.trainFree[k-1]
		n.trainFree = n.trainFree[:k-1]
		ts.steps = n.Cfg.Steps
		return ts
	}
	return &TrainScratch{
		sc:     Scratch{m: make(map[slotKey]*scratchEntry)},
		steps:  n.Cfg.Steps,
		params: n.Params(),
		grads:  n.Grads(),
		intm:   make(map[slotKey][]int),
	}
}

// ReleaseTrain parks a training arena for reuse by the next
// AcquireTrainScratch, dropping any borrowed data references.
func (n *Network) ReleaseTrain(ts *TrainScratch) {
	if ts == nil {
		return
	}
	ts.sc.release()
	n.trainFree = append(n.trainFree, ts)
}

// forwardTrainScratch runs a training-mode batched forward pass against
// the arena and returns the accumulated logits, which live in the arena
// and are valid until its next pass. frames[t] is (B, sample shape...).
func (n *Network) forwardTrainScratch(frames []*tensor.Tensor, ts *TrainScratch) *tensor.Tensor {
	if len(frames) == 0 {
		panic("snn: ForwardBatch with no input frames")
	}
	if !n.TrainArenaCapable() {
		panic("snn: network has non-arena layers; use ForwardBatch")
	}
	n.Reset()
	ts.sc.begin()
	var logits *tensor.Tensor
	for t := 0; t < n.Cfg.Steps; t++ {
		x := frames[min(t, len(frames)-1)]
		for li, l := range n.trainLs {
			x = l.ForwardBatchInto(x, ts, li, t)
		}
		if logits == nil {
			logits = ts.sc.bufShape(netLayer, slotLogits, x.Shape)
			logits.Zero()
		}
		logits.Add(x)
	}
	return logits
}

// backwardTrainScratch completes BPTT after forwardTrainScratch,
// accumulating parameter gradients. When wantInput is set it also
// returns Σ_t dL/dframe_t (the attack-crafting quantity), summed in
// ascending step order exactly like encoding.SumFrameGradients folds
// the allocating path's per-step list; otherwise it returns nil and
// layers below the lowest parameter layer skip their input-gradient
// work entirely.
func (n *Network) backwardTrainScratch(gradLogits *tensor.Tensor, ts *TrainScratch, wantInput bool) *tensor.Tensor {
	for t := n.Cfg.Steps - 1; t >= 0; t-- {
		g := gradLogits
		for li := len(n.trainLs) - 1; li >= 0; li-- {
			needDX := wantInput || li > n.paramFloor
			g = n.trainLs[li].BackwardBatchInto(g, ts, li, t, needDX)
			if g == nil {
				break
			}
		}
		if wantInput {
			step := ts.bufShape(netLayer, slotGradStep, t, g.Shape)
			copy(step.Data, g.Data)
		}
	}
	if !wantInput {
		return nil
	}
	var sum *tensor.Tensor
	for t := 0; t < n.Cfg.Steps; t++ {
		step := ts.sc.entry(netLayer, tslot(slotGradStep, t)).t
		if sum == nil {
			sum = ts.bufShape(netLayer, slotGradSum, -1, step.Shape)
			sum.Zero()
		}
		sum.Add(step)
	}
	return sum
}

// TrainStepScratch runs one batched training minibatch against the
// arena — frame stacking, training-mode forward, softmax cross-entropy,
// BPTT gradient accumulation — and returns the summed loss. Gradients
// accumulate into the network's gradient tensors exactly like the
// allocating trainStep (the caller zeroes and consumes them); in the
// steady state the whole step performs zero tensor allocations.
func (n *Network) TrainStepScratch(samples [][]*tensor.Tensor, labels []int, ts *TrainScratch) float64 {
	frames := ts.StackFramesInto(samples)
	logits := n.forwardTrainScratch(frames, ts)
	grad := ts.bufShape(netLayer, slotLossGrad, -1, logits.Shape)
	loss := SoftmaxCrossEntropyBatchInto(logits, labels, grad)
	n.backwardTrainScratch(grad, ts, false)
	return loss
}

// InputGradSumScratch computes Σ_t dL/dframe_t for a batch in one
// arena-backed BPTT pass — the attack-crafting hot path. frames[t] is
// (B, sample shape...), labels[b] the loss label of sample b. The
// returned (B, sample shape...) tensor lives in the arena and is valid
// until its next pass. Callers run this on a weight-sharing
// CloneArchitecture clone, like InputGradientBatch; the clone's
// parameter gradients are zeroed first so its state stays bounded.
func (n *Network) InputGradSumScratch(frames []*tensor.Tensor, labels []int, ts *TrainScratch) *tensor.Tensor {
	ts.ZeroGrads()
	logits := n.forwardTrainScratch(frames, ts)
	grad := ts.bufShape(netLayer, slotLossGrad, -1, logits.Shape)
	SoftmaxCrossEntropyBatchInto(logits, labels, grad)
	return n.backwardTrainScratch(grad, ts, true)
}
