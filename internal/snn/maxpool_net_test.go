package snn

import (
	"testing"

	"repro/internal/encoding"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// MaxPool is not used by the paper presets (which average-pool, the SNN
// convention), but it must compose correctly into a trainable network.
func TestMaxPoolNetworkTrains(t *testing.T) {
	r := rng.New(50)
	cfg := DefaultConfig(0.5, 5)
	conv := NewConv2D(1, 6, 3, 1, 1, 12, 12, r)
	lif1 := NewLIF(cfg.VTh, cfg.Decay, cfg.Beta)
	pool := NewMaxPool(2)
	flat := &Flatten{}
	fc := NewDense(6*6*6, 10, r)
	net := NewNetwork(cfg, conv, lif1, pool, flat, fc)

	train := tinyTrainSet(250, 51)
	Train(net, train, TrainOptions{
		Epochs: 3, BatchSize: 16,
		Optimizer: NewAdam(3e-3),
		Encoder:   encoding.Direct{},
		Seed:      52,
	})
	acc := Accuracy(net, train, encoding.Direct{}, 53)
	if acc < 0.4 {
		t.Fatalf("max-pool network failed to train: %.2f", acc)
	}
}

// Max pooling of a binary spike plane stays binary, and caches drain
// across repeated samples like every other layer.
func TestMaxPoolSpikePlaneBinary(t *testing.T) {
	r := rng.New(54)
	lif := NewLIF(0.3, 0.9, 4)
	pool := NewMaxPool(2)
	for round := 0; round < 3; round++ {
		x := tensor.New(1, 8, 8)
		for i := range x.Data {
			x.Data[i] = r.Float32()
		}
		spikes := lif.Forward(x, false)
		out := pool.Forward(spikes, false)
		for _, v := range out.Data {
			if v != 0 && v != 1 {
				t.Fatalf("pooled spike plane not binary: %v", v)
			}
		}
		lif.Reset()
		pool.Reset()
	}
}
