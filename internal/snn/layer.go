// Package snn implements the spiking-neural-network substrate: leaky
// integrate-and-fire (LIF) dynamics, convolutional / dense / pooling /
// dropout layers, a network container, and surrogate-gradient
// backpropagation-through-time training.
//
// Execution model: a network processes one sample as T time steps. Each
// layer's Forward is called once per step in layer order and caches what
// its backward pass needs; Backward is then called T times in *reverse*
// step order, popping those caches. Between samples Reset clears all
// state. This mirrors how mainstream SNN frameworks (SpikingJelly, Norse)
// unroll BPTT, with the standard simplifications: the spike nonlinearity
// uses a fast-sigmoid surrogate derivative and the reset path is detached.
package snn

import (
	"fmt"

	"repro/internal/tensor"
)

// Layer is one stage of the unrolled network.
type Layer interface {
	// Forward advances the layer one time step. train enables
	// behaviours like dropout and backward caching.
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward consumes the gradient w.r.t. this step's output and
	// returns the gradient w.r.t. this step's input. Steps must be
	// processed in reverse order of Forward calls.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Reset clears membrane state and caches between samples.
	Reset()
	// Name identifies the layer type for diagnostics/serialization.
	Name() string
}

// ParamLayer is a Layer with trainable parameters.
type ParamLayer interface {
	Layer
	Params() []*tensor.Tensor
	Grads() []*tensor.Tensor
}

// BatchLayer is a Layer that can advance a whole minibatch per call:
// the leading axis of the tensors passed to ForwardBatch/BackwardBatch
// is the batch dimension, and every sample advances one time step in a
// single kernel invocation. All built-in layers implement it; a network
// whose layers all do exposes Network.ForwardBatch/BackwardBatch.
type BatchLayer interface {
	Layer
	ForwardBatch(x *tensor.Tensor, train bool) *tensor.Tensor
	BackwardBatch(grad *tensor.Tensor) *tensor.Tensor
}

// LIF is a layer of leaky integrate-and-fire neurons applied elementwise
// to its input current: V ← λV + I; spike where V ≥ Vth; soft reset
// V ← V − Vth·spike.
type LIF struct {
	VTh   float32 // threshold voltage
	Decay float32 // membrane leak λ ∈ (0,1]
	Beta  float32 // surrogate sharpness

	v     *tensor.Tensor   // membrane potential
	preVs []*tensor.Tensor // cached pre-reset potentials (training)
	carry *tensor.Tensor   // dL/dV flowing backwards through time

	// Calibration statistics used by the approximation-level equation
	// (approx package): accumulated over forward steps until ResetStats.
	StatSpikes float64 // total output spikes
	StatVSum   float64 // sum of mean pre-reset membrane potential per step
	StatSteps  int     // forward steps counted
	StatUnits  int     // neurons per step (set on first forward)
}

// NewLIF returns a LIF activation with threshold vth, leak decay and
// surrogate sharpness beta.
func NewLIF(vth, decay, beta float32) *LIF {
	return &LIF{VTh: vth, Decay: decay, Beta: beta}
}

// Name implements Layer.
func (l *LIF) Name() string { return "lif" }

// Forward implements Layer.
func (l *LIF) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	return l.step(x, train, 1)
}

// ForwardBatch implements BatchLayer: the membrane state takes the
// batch shape and every sample's neurons advance in one pass. Spike and
// membrane statistics are normalized per sample so calibration is
// batch-size invariant.
func (l *LIF) ForwardBatch(x *tensor.Tensor, train bool) *tensor.Tensor {
	return l.step(x, train, x.Shape[0])
}

// step advances the LIF dynamics one time step over x holding batch
// samples (batch=1 for the per-sample path).
func (l *LIF) step(x *tensor.Tensor, train bool, batch int) *tensor.Tensor {
	if l.v == nil || !tensor.SameShape(l.v, x) {
		l.v = tensor.New(x.Shape...)
	}
	out := tensor.New(x.Shape...)
	var spikes float64
	var vSum float64
	for i, inp := range x.Data {
		v := l.Decay*l.v.Data[i] + inp
		vSum += float64(v)
		if v >= l.VTh {
			out.Data[i] = 1
			spikes++
			v -= l.VTh
		}
		l.v.Data[i] = v
	}
	if train {
		// Cache pre-reset potential: reconstruct from post state.
		pre := tensor.New(x.Shape...)
		for i := range pre.Data {
			pre.Data[i] = l.v.Data[i] + out.Data[i]*l.VTh
		}
		l.preVs = append(l.preVs, pre)
	}
	l.StatSpikes += spikes / float64(batch)
	l.StatVSum += vSum / float64(x.Len())
	l.StatSteps++
	l.StatUnits = x.Len() / batch
	return out
}

// forwardArena implements arenaLayer: the membrane persists in the
// arena (zeroed at pass start) and the spike output overwrites a
// reusable buffer. The arithmetic is exactly step's, so outputs and
// calibration statistics are bit-identical to the allocating path.
func (l *LIF) forwardArena(x *tensor.Tensor, s *Scratch, li, batch int) *tensor.Tensor {
	b := batch
	if b == 0 {
		b = 1
	}
	v := s.stateBufShape(li, slotState, x.Shape)
	out := s.bufShape(li, slotOut, x.Shape)
	var spikes float64
	var vSum float64
	for i, inp := range x.Data {
		vv := l.Decay*v.Data[i] + inp
		vSum += float64(vv)
		var o float32
		if vv >= l.VTh {
			o = 1
			spikes++
			vv -= l.VTh
		}
		out.Data[i] = o
		v.Data[i] = vv
	}
	l.StatSpikes += spikes / float64(b)
	l.StatVSum += vSum / float64(x.Len())
	l.StatSteps++
	l.StatUnits = x.Len() / b
	return out
}

// ForwardBatchInto implements trainLayer: ForwardBatch(x, true) with
// the membrane, spike output and per-step pre-reset cache drawn from
// the training arena. Arithmetic and statistics match step exactly.
func (l *LIF) ForwardBatchInto(x *tensor.Tensor, ts *TrainScratch, li, t int) *tensor.Tensor {
	batch := x.Shape[0]
	v := ts.stateBufShape(li, slotState, x.Shape)
	out := ts.bufShape(li, slotOut, -1, x.Shape)
	var spikes float64
	var vSum float64
	for i, inp := range x.Data {
		vv := l.Decay*v.Data[i] + inp
		vSum += float64(vv)
		var o float32
		if vv >= l.VTh {
			o = 1
			spikes++
			vv -= l.VTh
		}
		out.Data[i] = o
		v.Data[i] = vv
	}
	// Cache pre-reset potential: reconstruct from post state, exactly
	// like step does, into this step's ring buffer.
	pre := ts.bufShape(li, slotPre, t, x.Shape)
	for i := range pre.Data {
		pre.Data[i] = v.Data[i] + out.Data[i]*l.VTh
	}
	l.StatSpikes += spikes / float64(batch)
	l.StatVSum += vSum / float64(x.Len())
	l.StatSteps++
	l.StatUnits = x.Len() / batch
	return out
}

// BackwardBatchInto implements trainLayer: Backward against the arena's
// per-step pre-reset cache. The dL/dV carry updates in place — the
// allocating path's fresh output plus Clone collapse into one buffer,
// with identical values (dv reads the previous step's carry element
// before overwriting it).
func (l *LIF) BackwardBatchInto(grad *tensor.Tensor, ts *TrainScratch, li, t int, needDX bool) *tensor.Tensor {
	if !needDX {
		return nil
	}
	pre := ts.bufShape(li, slotPre, t, grad.Shape)
	carry, fresh := ts.onceShape(li, slotCarry, grad.Shape)
	for i, g := range grad.Data {
		u := pre.Data[i] - l.VTh
		if u < 0 {
			u = -u
		}
		d := 1 + l.Beta*u
		surr := l.Beta / (d * d)
		dv := g * surr
		if !fresh {
			dv += l.Decay * carry.Data[i]
		}
		carry.Data[i] = dv
	}
	return carry
}

// BackwardBatch implements BatchLayer: the surrogate gradient is
// elementwise, so the batched pass is the per-sample pass over the
// larger state.
func (l *LIF) BackwardBatch(grad *tensor.Tensor) *tensor.Tensor {
	return l.Backward(grad)
}

// Backward implements Layer: dL/dI_t = dL/dS_t · σ'(V_t − Vth) + λ·carry,
// with the reset path detached (standard SNN BPTT practice).
func (l *LIF) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := len(l.preVs)
	if n == 0 {
		panic("snn: LIF.Backward without cached forward step")
	}
	pre := l.preVs[n-1]
	l.preVs = l.preVs[:n-1]

	out := tensor.New(grad.Shape...)
	hasCarry := l.carry != nil
	for i, g := range grad.Data {
		u := pre.Data[i] - l.VTh
		if u < 0 {
			u = -u
		}
		d := 1 + l.Beta*u
		surr := l.Beta / (d * d)
		dv := g * surr
		if hasCarry {
			dv += l.Decay * l.carry.Data[i]
		}
		out.Data[i] = dv
	}
	l.carry = out.Clone()
	return out
}

// Reset implements Layer.
func (l *LIF) Reset() {
	l.v = nil
	l.carry = nil
	l.preVs = l.preVs[:0]
}

// ResetStats clears the calibration counters.
func (l *LIF) ResetStats() {
	l.StatSpikes, l.StatVSum, l.StatSteps, l.StatUnits = 0, 0, 0, 0
}

// MeanSpikesPerStep returns average spikes emitted per time step.
func (l *LIF) MeanSpikesPerStep() float64 {
	if l.StatSteps == 0 {
		return 0
	}
	return l.StatSpikes / float64(l.StatSteps)
}

// MeanMembrane returns the average pre-reset membrane potential per step.
func (l *LIF) MeanMembrane() float64 {
	if l.StatSteps == 0 {
		return 0
	}
	return l.StatVSum / float64(l.StatSteps)
}

// Flatten reshapes (C,H,W) inputs to rank-1 vectors.
type Flatten struct {
	inShape []int
}

// Name implements Layer.
func (f *Flatten) Name() string { return "flatten" }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	f.inShape = append(f.inShape[:0], x.Shape...) //axsnn:allow-alloc grows to the input rank once, then reuses the backing array
	return x.Reshape(x.Len())
}

// ForwardBatch implements BatchLayer: (B, d...) reshapes to (B, Πd).
func (f *Flatten) ForwardBatch(x *tensor.Tensor, train bool) *tensor.Tensor {
	f.inShape = append(f.inShape[:0], x.Shape...) //axsnn:allow-alloc grows to the input rank once, then reuses the backing array
	return x.Reshape(x.Shape[0], x.Len()/x.Shape[0])
}

// forwardArena implements arenaLayer: the flattened result is a cached
// header view over the input data — no copy, no allocation.
func (f *Flatten) forwardArena(x *tensor.Tensor, s *Scratch, li, batch int) *tensor.Tensor {
	if batch == 0 {
		return s.view1(li, slotOutView, x.Data, x.Len())
	}
	return s.view2(li, slotOutView, x.Data, batch, x.Len()/batch)
}

// ForwardBatchInto implements trainLayer: a cached header view over the
// input data, like the inference arena's path.
func (f *Flatten) ForwardBatchInto(x *tensor.Tensor, ts *TrainScratch, li, t int) *tensor.Tensor {
	f.inShape = append(f.inShape[:0], x.Shape...) //axsnn:allow-alloc grows to the input rank once, then reuses the backing array
	return ts.view2(li, slotOutView, x.Data, x.Shape[0], x.Len()/x.Shape[0])
}

// BackwardBatchInto implements trainLayer: the gradient viewed in the
// recorded input shape — no copy, no allocation.
func (f *Flatten) BackwardBatchInto(grad *tensor.Tensor, ts *TrainScratch, li, t int, needDX bool) *tensor.Tensor {
	if !needDX {
		return nil
	}
	return ts.viewShape(li, slotGradView, grad.Data, f.inShape)
}

// Backward implements Layer.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return grad.Reshape(f.inShape...)
}

// BackwardBatch implements BatchLayer.
func (f *Flatten) BackwardBatch(grad *tensor.Tensor) *tensor.Tensor {
	return grad.Reshape(f.inShape...)
}

// Reset implements Layer.
func (f *Flatten) Reset() {}

// shapeStr renders a shape for cold panic messages.
//
//axsnn:allow-alloc cold error-path formatting, runs only on misuse
func shapeStr(s []int) string { return fmt.Sprint(s) }
