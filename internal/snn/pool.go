package snn

import (
	"repro/internal/rng"
	"repro/internal/tensor"
)

// AvgPool is non-overlapping average pooling with window K.
type AvgPool struct {
	K      int
	inDims [][3]int // cached (C,H,W) per step
}

// NewAvgPool returns an average-pooling layer with window k.
func NewAvgPool(k int) *AvgPool { return &AvgPool{K: k} }

// Name implements Layer.
func (p *AvgPool) Name() string { return "avgpool" }

// Forward implements Layer.
func (p *AvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		p.inDims = append(p.inDims, [3]int{x.Shape[0], x.Shape[1], x.Shape[2]})
	}
	return tensor.AvgPool2D(x, p.K)
}

// ForwardBatch implements BatchLayer: samples pool independently.
func (p *AvgPool) ForwardBatch(x *tensor.Tensor, train bool) *tensor.Tensor {
	batch, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if train {
		p.inDims = append(p.inDims, [3]int{c, h, w})
	}
	oh, ow := (h+p.K-1)/p.K, (w+p.K-1)/p.K
	out := tensor.New(batch, c, oh, ow)
	for b := 0; b < batch; b++ {
		po := tensor.AvgPool2D(sampleView(x, b), p.K)
		copy(out.Data[b*c*oh*ow:(b+1)*c*oh*ow], po.Data)
	}
	return out
}

// forwardArena implements arenaLayer: samples pool directly into one
// reused output tensor through cached sample views.
func (p *AvgPool) forwardArena(x *tensor.Tensor, s *Scratch, li, batch int) *tensor.Tensor {
	if batch == 0 {
		c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
		out := s.buf3(li, slotOut, c, (h+p.K-1)/p.K, (w+p.K-1)/p.K)
		tensor.AvgPool2DInto(out, x, p.K)
		return out
	}
	b, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow := (h+p.K-1)/p.K, (w+p.K-1)/p.K
	out := s.buf4(li, slotOut, b, c, oh, ow)
	for bi := 0; bi < b; bi++ {
		sv := s.view3(li, slotInView, x.Data[bi*c*h*w:(bi+1)*c*h*w], c, h, w)
		dv := s.view3(li, slotOutView, out.Data[bi*c*oh*ow:(bi+1)*c*oh*ow], c, oh, ow)
		tensor.AvgPool2DInto(dv, sv, p.K)
	}
	return out
}

// ForwardBatchInto implements trainLayer: samples pool into one reused
// output tensor; the input dims the backward needs live in the arena.
func (p *AvgPool) ForwardBatchInto(x *tensor.Tensor, ts *TrainScratch, li, t int) *tensor.Tensor {
	b, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	dims := ts.ints(li, slotDims, -1, 3)
	dims[0], dims[1], dims[2] = c, h, w
	oh, ow := (h+p.K-1)/p.K, (w+p.K-1)/p.K
	out := ts.buf4(li, slotOut, -1, b, c, oh, ow)
	for bi := 0; bi < b; bi++ {
		sv := ts.view3(li, slotInView, x.Data[bi*c*h*w:(bi+1)*c*h*w], c, h, w)
		dv := ts.view3(li, slotOutView, out.Data[bi*c*oh*ow:(bi+1)*c*oh*ow], c, oh, ow)
		tensor.AvgPool2DInto(dv, sv, p.K)
	}
	return out
}

// BackwardBatchInto implements trainLayer: BackwardBatch scattering
// directly into one reused input-shaped tensor.
func (p *AvgPool) BackwardBatchInto(grad *tensor.Tensor, ts *TrainScratch, li, t int, needDX bool) *tensor.Tensor {
	if !needDX {
		return nil
	}
	dims := ts.ints(li, slotDims, -1, 3)
	c, h, w := dims[0], dims[1], dims[2]
	batch := grad.Shape[0]
	oh, ow := grad.Shape[2], grad.Shape[3]
	out := ts.buf4(li, slotGrad, -1, batch, c, h, w)
	for bi := 0; bi < batch; bi++ {
		gv := ts.view3(li, slotInView, grad.Data[bi*c*oh*ow:(bi+1)*c*oh*ow], c, oh, ow)
		dv := ts.view3(li, slotOutView, out.Data[bi*c*h*w:(bi+1)*c*h*w], c, h, w)
		tensor.AvgPool2DBackwardInto(dv, gv, p.K)
	}
	return out
}

// Backward implements Layer.
func (p *AvgPool) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := len(p.inDims)
	if n == 0 {
		panic("snn: AvgPool.Backward without cached forward step")
	}
	d := p.inDims[n-1]
	p.inDims = p.inDims[:n-1]
	return tensor.AvgPool2DBackward(grad, p.K, d[1], d[2])
}

// BackwardBatch implements BatchLayer.
func (p *AvgPool) BackwardBatch(grad *tensor.Tensor) *tensor.Tensor {
	n := len(p.inDims)
	if n == 0 {
		panic("snn: AvgPool.Backward without cached forward step")
	}
	d := p.inDims[n-1]
	p.inDims = p.inDims[:n-1]
	batch := grad.Shape[0]
	out := tensor.New(batch, d[0], d[1], d[2])
	chw := d[0] * d[1] * d[2]
	for b := 0; b < batch; b++ {
		dx := tensor.AvgPool2DBackward(sampleView(grad, b), p.K, d[1], d[2])
		copy(out.Data[b*chw:(b+1)*chw], dx.Data)
	}
	return out
}

// Reset implements Layer.
func (p *AvgPool) Reset() { p.inDims = p.inDims[:0] }

// sampleView returns sample b of a batched (B, d...) tensor as a view
// with the batch axis stripped; no data is copied.
func sampleView(x *tensor.Tensor, b int) *tensor.Tensor {
	per := x.Len() / x.Shape[0]
	return tensor.FromSlice(x.Data[b*per:(b+1)*per], x.Shape[1:]...)
}

// MaxPool is non-overlapping max pooling with window K.
type MaxPool struct {
	K      int
	args   [][]int
	inDims [][3]int
}

// NewMaxPool returns a max-pooling layer with window k.
func NewMaxPool(k int) *MaxPool { return &MaxPool{K: k} }

// Name implements Layer.
func (p *MaxPool) Name() string { return "maxpool" }

// Forward implements Layer.
func (p *MaxPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out, arg := tensor.MaxPool2D(x, p.K)
	if train {
		p.args = append(p.args, arg)
		p.inDims = append(p.inDims, [3]int{x.Shape[0], x.Shape[1], x.Shape[2]})
	}
	return out
}

// ForwardBatch implements BatchLayer: per-sample argmax indices are
// concatenated in batch order for the backward scatter.
func (p *MaxPool) ForwardBatch(x *tensor.Tensor, train bool) *tensor.Tensor {
	batch, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow := (h+p.K-1)/p.K, (w+p.K-1)/p.K
	out := tensor.New(batch, c, oh, ow)
	var args []int
	if train {
		args = make([]int, 0, batch*c*oh*ow)
	}
	for b := 0; b < batch; b++ {
		po, arg := tensor.MaxPool2D(sampleView(x, b), p.K)
		copy(out.Data[b*c*oh*ow:(b+1)*c*oh*ow], po.Data)
		if train {
			args = append(args, arg...)
		}
	}
	if train {
		p.args = append(p.args, args)
		p.inDims = append(p.inDims, [3]int{c, h, w})
	}
	return out
}

// forwardArena implements arenaLayer: inference needs no argmax
// bookkeeping, so the arena path uses the Into kernel that skips it.
func (p *MaxPool) forwardArena(x *tensor.Tensor, s *Scratch, li, batch int) *tensor.Tensor {
	if batch == 0 {
		c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
		out := s.buf3(li, slotOut, c, (h+p.K-1)/p.K, (w+p.K-1)/p.K)
		tensor.MaxPool2DInto(out, x, p.K)
		return out
	}
	b, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow := (h+p.K-1)/p.K, (w+p.K-1)/p.K
	out := s.buf4(li, slotOut, b, c, oh, ow)
	for bi := 0; bi < b; bi++ {
		sv := s.view3(li, slotInView, x.Data[bi*c*h*w:(bi+1)*c*h*w], c, h, w)
		dv := s.view3(li, slotOutView, out.Data[bi*c*oh*ow:(bi+1)*c*oh*ow], c, oh, ow)
		tensor.MaxPool2DInto(dv, sv, p.K)
	}
	return out
}

// ForwardBatchInto implements trainLayer: the per-sample argmax indices
// land in the arena's per-step int ring instead of a fresh slice.
func (p *MaxPool) ForwardBatchInto(x *tensor.Tensor, ts *TrainScratch, li, t int) *tensor.Tensor {
	b, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	dims := ts.ints(li, slotDims, -1, 3)
	dims[0], dims[1], dims[2] = c, h, w
	oh, ow := (h+p.K-1)/p.K, (w+p.K-1)/p.K
	per := c * oh * ow
	arg := ts.ints(li, slotArg, t, b*per)
	out := ts.buf4(li, slotOut, -1, b, c, oh, ow)
	for bi := 0; bi < b; bi++ {
		sv := ts.view3(li, slotInView, x.Data[bi*c*h*w:(bi+1)*c*h*w], c, h, w)
		dv := ts.view3(li, slotOutView, out.Data[bi*per:(bi+1)*per], c, oh, ow)
		tensor.MaxPool2DWithArgInto(dv, arg[bi*per:(bi+1)*per], sv, p.K)
	}
	return out
}

// BackwardBatchInto implements trainLayer: BackwardBatch routing the
// gradient through the arena's per-step argmax ring into one reused
// input-shaped tensor.
func (p *MaxPool) BackwardBatchInto(grad *tensor.Tensor, ts *TrainScratch, li, t int, needDX bool) *tensor.Tensor {
	if !needDX {
		return nil
	}
	dims := ts.ints(li, slotDims, -1, 3)
	c, h, w := dims[0], dims[1], dims[2]
	batch := grad.Shape[0]
	per := grad.Len() / batch
	arg := ts.ints(li, slotArg, t, batch*per)
	out := ts.buf4(li, slotGrad, -1, batch, c, h, w)
	for bi := 0; bi < batch; bi++ {
		gv := ts.view3(li, slotInView, grad.Data[bi*per:(bi+1)*per], c, grad.Shape[2], grad.Shape[3])
		dv := ts.view3(li, slotOutView, out.Data[bi*c*h*w:(bi+1)*c*h*w], c, h, w)
		tensor.MaxPool2DBackwardInto(dv, gv, arg[bi*per:(bi+1)*per])
	}
	return out
}

// Backward implements Layer.
func (p *MaxPool) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := len(p.args)
	if n == 0 {
		panic("snn: MaxPool.Backward without cached forward step")
	}
	arg := p.args[n-1]
	d := p.inDims[n-1]
	p.args = p.args[:n-1]
	p.inDims = p.inDims[:n-1]
	return tensor.MaxPool2DBackward(grad, arg, d[0], d[1], d[2])
}

// BackwardBatch implements BatchLayer.
func (p *MaxPool) BackwardBatch(grad *tensor.Tensor) *tensor.Tensor {
	n := len(p.args)
	if n == 0 {
		panic("snn: MaxPool.Backward without cached forward step")
	}
	arg := p.args[n-1]
	d := p.inDims[n-1]
	p.args = p.args[:n-1]
	p.inDims = p.inDims[:n-1]
	batch := grad.Shape[0]
	out := tensor.New(batch, d[0], d[1], d[2])
	chw := d[0] * d[1] * d[2]
	per := grad.Len() / batch
	for b := 0; b < batch; b++ {
		dx := tensor.MaxPool2DBackward(sampleView(grad, b), arg[b*per:(b+1)*per], d[0], d[1], d[2])
		copy(out.Data[b*chw:(b+1)*chw], dx.Data)
	}
	return out
}

// Reset implements Layer.
func (p *MaxPool) Reset() { p.args = p.args[:0]; p.inDims = p.inDims[:0] }

// Dropout zeroes a random unit subset during training, with inverted
// scaling. The mask is drawn once per sample (on the first step after
// Reset) and reused across time steps, the convention for SNN training.
type Dropout struct {
	P float32 // drop probability

	r    *rng.RNG
	mask *tensor.Tensor
}

// NewDropout returns a dropout layer with drop probability p, drawing
// masks from r.
func NewDropout(p float32, r *rng.RNG) *Dropout { return &Dropout{P: p, r: r} }

// Name implements Layer.
func (d *Dropout) Name() string { return "dropout" }

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	// Evaluation clones carry no RNG: dropout is then a pass-through even
	// when caches are being recorded (e.g. attack gradient computation).
	if !train || d.P <= 0 || d.r == nil {
		return x
	}
	if d.mask == nil || !tensor.SameShape(d.mask, x) {
		d.mask = tensor.New(x.Shape...)
		keep := 1 - d.P
		inv := 1 / keep
		for i := range d.mask.Data {
			if d.r.Float32() >= d.P {
				d.mask.Data[i] = inv
			}
		}
	}
	out := x.Clone()
	out.Mul(d.mask)
	return out
}

// ForwardBatch implements BatchLayer: the mask matches the batched
// shape, so every sample draws its own mask, once per network reset.
func (d *Dropout) ForwardBatch(x *tensor.Tensor, train bool) *tensor.Tensor {
	return d.Forward(x, train)
}

// forwardArena implements arenaLayer: inference dropout is the identity.
func (d *Dropout) forwardArena(x *tensor.Tensor, _ *Scratch, _, _ int) *tensor.Tensor {
	return x
}

// ForwardBatchInto implements trainLayer: the mask is drawn once per
// pass into an arena buffer (consuming the RNG stream exactly like the
// allocating path) and applied into a reused output tensor. Evaluation
// clones carry no RNG, so they pass through like Forward does.
func (d *Dropout) ForwardBatchInto(x *tensor.Tensor, ts *TrainScratch, li, t int) *tensor.Tensor {
	if d.P <= 0 || d.r == nil {
		return x
	}
	mask, fresh := ts.onceShape(li, slotMask, x.Shape)
	if fresh {
		keep := 1 - d.P
		inv := 1 / keep
		for i := range mask.Data {
			if d.r.Float32() >= d.P {
				mask.Data[i] = inv
			} else {
				mask.Data[i] = 0
			}
		}
	}
	out := ts.bufShape(li, slotOut, -1, x.Shape)
	for i, v := range x.Data {
		out.Data[i] = v * mask.Data[i]
	}
	return out
}

// BackwardBatchInto implements trainLayer: the pass's mask gates the
// gradient into a reused buffer.
func (d *Dropout) BackwardBatchInto(grad *tensor.Tensor, ts *TrainScratch, li, t int, needDX bool) *tensor.Tensor {
	if !needDX {
		return nil
	}
	if d.P <= 0 || d.r == nil {
		return grad
	}
	mask := ts.bufShape(li, slotMask, -1, grad.Shape)
	out := ts.bufShape(li, slotGrad, -1, grad.Shape)
	for i, g := range grad.Data {
		out.Data[i] = g * mask.Data[i]
	}
	return out
}

// Backward implements Layer.
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.mask == nil {
		return grad
	}
	out := grad.Clone()
	out.Mul(d.mask)
	return out
}

// BackwardBatch implements BatchLayer.
func (d *Dropout) BackwardBatch(grad *tensor.Tensor) *tensor.Tensor {
	return d.Backward(grad)
}

// Reset implements Layer.
func (d *Dropout) Reset() { d.mask = nil }
