package snn

import (
	"fmt"

	"repro/internal/tensor"
)

// The batched execution path: a whole minibatch advances through every
// layer in one kernel call per step, instead of per-sample Go loops.
// Tensors carry the batch on the leading axis — frames are
// (B,C,H,W), dense activations (B,F), logits (B,classes). Results are
// numerically identical to running the per-sample path on each sample:
// every kernel preserves the per-element accumulation order; only the
// order in which *gradient sums across samples* accumulate differs.

// Batchable reports whether every layer implements BatchLayer (all
// built-in layers do). Helpers fall back to the per-sample path when it
// is false, so custom layers keep working unbatched.
func (n *Network) Batchable() bool {
	for _, l := range n.Layers {
		if _, ok := l.(BatchLayer); !ok {
			return false
		}
	}
	return true
}

// StepForwardBatch runs one batched time step through all layers.
func (n *Network) StepForwardBatch(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range n.Layers {
		bl, ok := l.(BatchLayer)
		if !ok {
			panic(fmt.Sprintf("snn: layer %s does not implement BatchLayer", l.Name())) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
		}
		x = bl.ForwardBatch(x, train)
	}
	return x
}

// StepBackwardBatch runs one reverse batched time step.
func (n *Network) StepBackwardBatch(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].(BatchLayer).BackwardBatch(grad)
	}
	return grad
}

// ForwardBatch processes a batch of samples: frames[t] is the batched
// input at step t, shape (B, sample shape...); if fewer frames than
// Steps are supplied the last frame repeats. It returns the accumulated
// readout logits, shape (B, classes). Requires Batchable().
func (n *Network) ForwardBatch(frames []*tensor.Tensor, train bool) *tensor.Tensor {
	if len(frames) == 0 {
		panic("snn: ForwardBatch with no input frames")
	}
	n.Reset()
	var logits *tensor.Tensor
	for t := 0; t < n.Cfg.Steps; t++ {
		f := frames[min(t, len(frames)-1)]
		out := n.StepForwardBatch(f, train)
		if logits == nil {
			logits = tensor.New(out.Shape...)
		}
		logits.Add(out)
	}
	return logits
}

// BackwardBatch completes BPTT after a training ForwardBatch:
// gradLogits is dL/d(accumulated logits), shape (B, classes). It
// returns per-step batched input gradients in forward order.
func (n *Network) BackwardBatch(gradLogits *tensor.Tensor) []*tensor.Tensor {
	grads := make([]*tensor.Tensor, n.Cfg.Steps)
	for t := n.Cfg.Steps - 1; t >= 0; t-- {
		grads[t] = n.StepBackwardBatch(gradLogits.Clone())
	}
	return grads
}

// ForwardSamples stacks per-sample frame sequences and runs one batched
// forward, returning (B, classes) logits. When the network is not
// batchable it falls back to per-sample Forward calls.
//
//axsnn:allow-alloc legacy allocating batch API; the zero-alloc path is PredictBatchInto
func (n *Network) ForwardSamples(samples [][]*tensor.Tensor, train bool) *tensor.Tensor {
	if !n.Batchable() {
		var logits *tensor.Tensor
		for b, fr := range samples {
			out := n.Forward(fr, train)
			if logits == nil {
				logits = tensor.New(len(samples), out.Len())
			}
			copy(logits.Data[b*out.Len():(b+1)*out.Len()], out.Data)
		}
		return logits
	}
	return n.ForwardBatch(StackFrames(samples, n.Cfg.Steps), train)
}

// PredictBatch returns the argmax class of every sample in one batched
// pass. Batchable built-in networks run against the inference arena:
// frames are stacked step by step into one reused buffer and every
// layer draws its working memory from the network's scratch pool, so
// the steady state allocates nothing but the result slice.
func (n *Network) PredictBatch(samples [][]*tensor.Tensor) []int {
	if len(samples) == 0 {
		return nil
	}
	out := make([]int, len(samples))
	n.PredictBatchInto(samples, out)
	return out
}

// PredictBatchInto is PredictBatch writing the predicted classes into a
// caller-owned slice (len(out) == len(samples)) — the fully
// allocation-free form of the batched hot path.
func (n *Network) PredictBatchInto(samples [][]*tensor.Tensor, out []int) {
	if len(out) != len(samples) {
		panic(fmt.Sprintf("snn: PredictBatchInto out length %d, want %d", len(out), len(samples))) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
	}
	if len(samples) == 0 {
		return
	}
	if n.arenaCapable() && n.Batchable() {
		s := n.AcquireScratch()
		defer n.Release(s)
		n.predictBatchScratch(samples, s, out)
		return
	}
	logits := n.ForwardSamples(samples, false)
	batch := len(samples)
	per := logits.Len() / batch
	for b := range out {
		row := tensor.FromSlice(logits.Data[b*per:(b+1)*per], per) //axsnn:allow-alloc non-batchable fallback: one header per row on the legacy path
		out[b] = row.Argmax()
	}
}

// StackFrames assembles per-sample frame sequences into per-step
// batched tensors: out[t] has shape (B, frame shape...). A sample with
// fewer frames than steps contributes its last frame to the remaining
// steps (the same repeat rule as Network.Forward); a sample with a
// single frame is a static image presented every step.
func StackFrames(samples [][]*tensor.Tensor, steps int) []*tensor.Tensor {
	if len(samples) == 0 {
		panic("snn: StackFrames with no samples")
	}
	batch := len(samples)
	shape := samples[0][0].Shape
	per := samples[0][0].Len()
	out := make([]*tensor.Tensor, steps)
	for t := 0; t < steps; t++ {
		f := tensor.New(append([]int{batch}, shape...)...)
		for b, fr := range samples {
			src := fr[min(t, len(fr)-1)]
			if src.Len() != per {
				panic(fmt.Sprintf("snn: StackFrames sample %d frame size %d, want %d", b, src.Len(), per)) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
			}
			copy(f.Data[b*per:(b+1)*per], src.Data)
		}
		out[t] = f
	}
	return out
}

// InputGradientBatch computes dL/dframe_t for a batch of samples in one
// batched BPTT pass — the attack-crafting hot path. Like InputGradient
// it runs on a weight-sharing evaluation clone, so dropout stays
// disabled and the caller's network keeps clean state. frames[t] is
// (B, sample shape...); labels[b] is the loss label of sample b. The
// returned grads[t] is the batched gradient at step t.
func InputGradientBatch(n *Network, frames []*tensor.Tensor, labels []int) []*tensor.Tensor {
	clone := n.CloneArchitecture()
	logits := clone.ForwardBatch(frames, true)
	_, grad := SoftmaxCrossEntropyBatch(logits, labels)
	return clone.BackwardBatch(grad)
}
