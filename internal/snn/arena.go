package snn

import "repro/internal/tensor"

// The inference arena. Every pre-arena Predict allocated ~250 KB of
// LIF/pool/GEMM scratch per sample (ROADMAP open item 3): each time step
// built fresh output tensors for every layer, and each sample re-derived
// the transposed weight panels. A Scratch owns all of those buffers,
// keyed by (layer index, slot), so steady-state inference — the
// event-domain evaluation loops, the attack inner loops, batched
// accuracy sweeps — allocates no tensors at all once shapes have been
// seen.
//
// Lifecycle: Network.AcquireScratch hands out an arena (recycled from a
// per-network free list), Predict/PredictBatch thread it through every
// layer, Network.Release returns it. The helpers do this implicitly, so
// callers keep the old one-line API; long evaluation loops can also
// acquire once and run many predictions against it. A Scratch belongs to
// one network (buffer shapes are keyed by layer position) and must not
// be shared between goroutines; concurrent evaluation uses
// CloneArchitecture clones, each with its own arena, exactly like the
// training paths.
//
// Correctness: the arena forward runs the same kernels in the same
// order as the allocating forward, so logits are bit-identical (pinned
// by the property tests in arena_test.go). Weight-derived panels (mask
// application, transposition) are re-derived once per forward pass —
// the same cadence Reset gave the allocating path — so weight mutation
// between passes stays safe.

// slotKey addresses one reusable buffer: the owning layer's position in
// the network and a layer-chosen slot number.
type slotKey struct {
	layer, slot int
}

// slot numbers shared by the layer implementations. Buffers and views
// may not collide on (layer, slot), so each layer type draws from this
// single enumeration. The training arena folds the time step into the
// slot (see trainSlotStride in train_arena.go), so the enumeration must
// stay below that stride.
const (
	slotOut      = iota // layer output buffer
	slotState           // persistent per-pass state (LIF membrane)
	slotLow             // conv lowering panel
	slotGemm            // GEMM result panel
	slotEffW            // mask-applied weights, once per pass
	slotWT              // transposed weights, once per pass
	slotInView          // view of one input sample
	slotOutView         // view of one output sample
	slotLogits          // accumulated readout (network-level)
	slotFrame           // batched input frame (network-level)
	slotPre             // LIF pre-reset potential, per step (training)
	slotCarry           // LIF dL/dV carry across reverse steps (training)
	slotXCache          // dense input cache, per step (training)
	slotGrad            // layer input-gradient buffer (training)
	slotGradView        // view of the gradient in another shape (training)
	slotDW              // dense per-step weight-gradient panel (training)
	slotMask            // dropout mask, once per pass (training)
	slotArg             // maxpool argmax indices, per step (training)
	slotDims            // pool input dims, per pass (training)
	slotG2B             // conv gradient de-interleave panel (training)
	slotDCols           // conv column-gradient panel (training)
	slotGradStep        // per-step input-gradient copy (network-level)
	slotGradSum         // summed input gradient (network-level)
	slotLossGrad        // dL/dlogits buffer (network-level)
	slotIdx             // nonzero-index scratch for col-skip GEMMs
	slotCount           // number of slots; must stay <= trainSlotStride
)

// netLayer is the pseudo layer index for network-level buffers.
const netLayer = -1

type scratchEntry struct {
	t *tensor.Tensor
	// state entries are zeroed at the start of every pass (begin).
	state bool
	// view entries borrow caller data; Release drops the reference.
	view bool
	// gen is the pass generation that last refreshed a once-per-pass
	// entry (effective/transposed weights).
	gen uint64
}

// Scratch is a per-network arena of reusable inference buffers.
type Scratch struct {
	m   map[slotKey]*scratchEntry
	gen uint64
}

func newScratch() *Scratch {
	return &Scratch{m: make(map[slotKey]*scratchEntry)} //axsnn:allow-alloc builds the arena once; recycled via the free list thereafter
}

// begin opens a new forward pass: persistent state buffers (membranes)
// are cleared and once-per-pass entries invalidated.
func (s *Scratch) begin() {
	s.gen++
	for _, e := range s.m {
		if e.state {
			e.t.Zero()
		}
	}
}

// entry returns the (layer, slot) entry, creating it on first use.
func (s *Scratch) entry(layer, slot int) *scratchEntry {
	k := slotKey{layer, slot}
	e := s.m[k]
	if e == nil {
		e = &scratchEntry{} //axsnn:allow-alloc one entry per (layer, slot), created on first use
		s.m[k] = e
	}
	return e
}

// sized returns the entry with a data buffer of exactly n elements.
// Reuse is capacity-based: the buffer reallocates only when n exceeds
// the largest size the slot has ever held and shrinks by reslicing —
// so a caller whose batch width varies pass to pass (the serve tier's
// shared scheduler coalesces whatever windows are ready: 16, 3, 7, …)
// settles at the high-water size and then never allocates again.
func (s *Scratch) sized(layer, slot, n int) *scratchEntry {
	e := s.entry(layer, slot)
	switch {
	case e.t == nil || cap(e.t.Data) < n:
		e.t = &tensor.Tensor{Data: make([]float32, n)} //axsnn:allow-alloc grows only past the slot's high-water capacity (a larger shape or batch); smaller sizes reslice
	case len(e.t.Data) != n:
		// Reslicing can expose stale values a larger pass left beyond
		// the previous length. Working buffers are overwritten by
		// contract (see buf1..4); state buffers must open the pass at
		// zero, and begin() only zeroed the previous length.
		e.t.Data = e.t.Data[:n]
		if e.state {
			e.t.Zero()
		}
	}
	return e
}

// setShape1..4 reshape a tensor header in place, only allocating when
// the rank changes (which a given slot does at most once).
func setShape1(t *tensor.Tensor, a int) {
	if len(t.Shape) != 1 {
		t.Shape = make([]int, 1)
	}
	t.Shape[0] = a
}

func setShape2(t *tensor.Tensor, a, b int) {
	if len(t.Shape) != 2 {
		t.Shape = make([]int, 2) //axsnn:allow-alloc rank changes at most once per slot
	}
	t.Shape[0], t.Shape[1] = a, b
}

func setShape3(t *tensor.Tensor, a, b, c int) {
	if len(t.Shape) != 3 {
		t.Shape = make([]int, 3) //axsnn:allow-alloc rank changes at most once per slot
	}
	t.Shape[0], t.Shape[1], t.Shape[2] = a, b, c
}

func setShape4(t *tensor.Tensor, a, b, c, d int) {
	if len(t.Shape) != 4 {
		t.Shape = make([]int, 4) //axsnn:allow-alloc rank changes at most once per slot
	}
	t.Shape[0], t.Shape[1], t.Shape[2], t.Shape[3] = a, b, c, d
}

// buf1..buf4 return a reusable buffer of the given shape. Contents are
// unspecified; callers overwrite every element.
func (s *Scratch) buf1(layer, slot, a int) *tensor.Tensor {
	e := s.sized(layer, slot, a)
	setShape1(e.t, a)
	return e.t
}

func (s *Scratch) buf2(layer, slot, a, b int) *tensor.Tensor {
	e := s.sized(layer, slot, a*b)
	setShape2(e.t, a, b)
	return e.t
}

func (s *Scratch) buf3(layer, slot, a, b, c int) *tensor.Tensor {
	e := s.sized(layer, slot, a*b*c)
	setShape3(e.t, a, b, c)
	return e.t
}

func (s *Scratch) buf4(layer, slot, a, b, c, d int) *tensor.Tensor {
	e := s.sized(layer, slot, a*b*c*d)
	setShape4(e.t, a, b, c, d)
	return e.t
}

// bufShape is buf for an existing shape slice (e.g. mirroring an input).
func (s *Scratch) bufShape(layer, slot int, shape []int) *tensor.Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	e := s.sized(layer, slot, n)
	t := e.t
	if len(t.Shape) != len(shape) {
		t.Shape = make([]int, len(shape)) //axsnn:allow-alloc rank changes at most once per slot
	}
	copy(t.Shape, shape)
	return t
}

// stateBufShape is bufShape for a buffer that must persist across the
// steps of one pass and read as zero at the start of every pass (the
// LIF membrane).
func (s *Scratch) stateBufShape(layer, slot int, shape []int) *tensor.Tensor {
	s.entry(layer, slot).state = true
	return s.bufShape(layer, slot, shape)
}

// once returns a once-per-pass buffer plus whether the caller must
// (re)fill it this pass — the weight-panel cache (mask application,
// transposition) that the allocating path re-derived after every Reset.
func (s *Scratch) once2(layer, slot, a, b int) (*tensor.Tensor, bool) {
	t := s.buf2(layer, slot, a, b)
	e := s.entry(layer, slot)
	fresh := e.gen != s.gen
	e.gen = s.gen
	return t, fresh
}

// onceShape is once2 for an arbitrary shape. The training arena also
// uses the freshness bit for per-pass state whose first use must see it
// uninitialized (the LIF backward carry, the dropout mask).
func (s *Scratch) onceShape(layer, slot int, shape []int) (*tensor.Tensor, bool) {
	t := s.bufShape(layer, slot, shape)
	e := s.entry(layer, slot)
	fresh := e.gen != s.gen
	e.gen = s.gen
	return t, fresh
}

// view1..3 return a cached tensor header wrapping caller data — the
// allocation-free Reshape/FromSlice. The header is reused, so a view is
// only valid until the slot's next use.
func (s *Scratch) viewEntry(layer, slot int, data []float32) *scratchEntry {
	e := s.entry(layer, slot)
	if e.t == nil {
		e.t = &tensor.Tensor{} //axsnn:allow-alloc one view header per slot, created on first use
	}
	e.view = true
	e.t.Data = data
	return e
}

func (s *Scratch) view1(layer, slot int, data []float32, a int) *tensor.Tensor {
	e := s.viewEntry(layer, slot, data)
	setShape1(e.t, a)
	return e.t
}

func (s *Scratch) view2(layer, slot int, data []float32, a, b int) *tensor.Tensor {
	e := s.viewEntry(layer, slot, data)
	setShape2(e.t, a, b)
	return e.t
}

func (s *Scratch) view3(layer, slot int, data []float32, a, b, c int) *tensor.Tensor {
	e := s.viewEntry(layer, slot, data)
	setShape3(e.t, a, b, c)
	return e.t
}

// viewShape is view1..3 for an arbitrary shape slice.
func (s *Scratch) viewShape(layer, slot int, data []float32, shape []int) *tensor.Tensor {
	e := s.viewEntry(layer, slot, data)
	if len(e.t.Shape) != len(shape) {
		e.t.Shape = make([]int, len(shape)) //axsnn:allow-alloc rank changes at most once per slot
	}
	copy(e.t.Shape, shape)
	return e.t
}

// release drops borrowed data references so a parked arena cannot keep
// caller tensors alive.
func (s *Scratch) release() {
	for _, e := range s.m {
		if e.view && e.t != nil {
			e.t.Data = nil
		}
	}
}

// arenaLayer is implemented by every built-in layer: an inference-mode
// forward (train=false semantics) that draws all working memory from the
// arena. li is the layer's position (the buffer key). batch distinguishes
// the two data layouts exactly like Forward vs ForwardBatch do: 0 means
// per-sample tensors (no batch axis); >= 1 means batched tensors whose
// leading axis holds batch samples.
type arenaLayer interface {
	forwardArena(x *tensor.Tensor, s *Scratch, li, batch int) *tensor.Tensor
}

// AcquireScratch returns an inference arena for this network, recycled
// from the network's free list when one is parked there. Pair with
// Release. Not safe for concurrent use — concurrent evaluation runs on
// CloneArchitecture clones, each owning its arenas.
func (n *Network) AcquireScratch() *Scratch {
	if k := len(n.scratchFree); k > 0 {
		s := n.scratchFree[k-1]
		n.scratchFree = n.scratchFree[:k-1]
		return s
	}
	return newScratch()
}

// Release parks a scratch arena for reuse by the next AcquireScratch.
func (n *Network) Release(s *Scratch) {
	if s == nil {
		return
	}
	s.release()
	n.scratchFree = append(n.scratchFree, s) //axsnn:allow-alloc free list grows to the high-water mark of live arenas
}

// arenaCapable reports whether every layer supports the arena path,
// caching the layer slice on first use.
//
//axsnn:allow-alloc caches the arena layer slice; runs once per network
func (n *Network) arenaCapable() bool {
	if !n.arenaInit {
		n.arenaInit = true
		ls := make([]arenaLayer, 0, len(n.Layers))
		for _, l := range n.Layers {
			al, ok := l.(arenaLayer)
			if !ok {
				return false
			}
			ls = append(ls, al)
		}
		n.arenaLs = ls
	}
	return n.arenaLs != nil
}

// forwardScratch runs a full inference pass against the arena and
// returns the accumulated logits — which live in the arena and are only
// valid until its next pass. batch is 0 for per-sample frames.
func (n *Network) forwardScratch(frames []*tensor.Tensor, s *Scratch, batch int) *tensor.Tensor {
	if len(frames) == 0 {
		panic("snn: Forward with no input frames")
	}
	if !n.arenaCapable() {
		panic("snn: network has non-arena layers; use Forward")
	}
	s.begin()
	var logits *tensor.Tensor
	for t := 0; t < n.Cfg.Steps; t++ {
		x := frames[min(t, len(frames)-1)]
		for li, l := range n.arenaLs {
			x = l.forwardArena(x, s, li, batch)
		}
		if logits == nil {
			logits = s.bufShape(netLayer, slotLogits, x.Shape)
			logits.Zero()
		}
		logits.Add(x)
	}
	return logits
}

// predictBatchScratch stacks samples step by step into one reused frame
// buffer (instead of materializing all Steps stacked tensors like
// StackFrames) and writes the per-sample argmax classes into out.
func (n *Network) predictBatchScratch(samples [][]*tensor.Tensor, s *Scratch, out []int) {
	if !n.arenaCapable() {
		panic("snn: network has non-arena layers; use ForwardSamples")
	}
	for _, fr := range samples {
		if len(fr) == 0 {
			panic("snn: PredictBatch sample with no input frames")
		}
	}
	s.begin()
	batch := len(samples)
	shape := samples[0][0].Shape
	per := samples[0][0].Len()
	var logits *tensor.Tensor
	for t := 0; t < n.Cfg.Steps; t++ {
		// The layers see the true batched shape (B, sample dims...).
		f := s.sized(netLayer, slotFrame, batch*per).t
		if len(f.Shape) != 1+len(shape) {
			f.Shape = make([]int, 1+len(shape)) //axsnn:allow-alloc rank changes at most once per slot
		}
		f.Shape[0] = batch
		copy(f.Shape[1:], shape)
		for b, fr := range samples {
			src := fr[min(t, len(fr)-1)]
			if src.Len() != per {
				panic("snn: PredictBatch samples disagree on frame size")
			}
			copy(f.Data[b*per:(b+1)*per], src.Data)
		}
		x := f
		for li, l := range n.arenaLs {
			x = l.forwardArena(x, s, li, batch)
		}
		if logits == nil {
			logits = s.bufShape(netLayer, slotLogits, x.Shape)
			logits.Zero()
		}
		logits.Add(x)
	}
	classes := logits.Len() / batch
	for b := range out {
		row := logits.Data[b*classes : (b+1)*classes]
		best, bi := row[0], 0
		for j, v := range row {
			if v > best {
				best, bi = v, j
			}
		}
		out[b] = bi
	}
}
