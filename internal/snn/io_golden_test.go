package snn

import (
	"bytes"
	"encoding/gob"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/rng"
)

// Golden-file compatibility for the gob checkpoint format. netState is
// the one on-disk format the project owns; these tests pin it against
// two checked-in files so a field rename, type change or reordering
// that silently breaks old checkpoints fails here first:
//
//	testdata/golden_premask.gob — written by the ORIGINAL pre-mask
//	    format (netState before the Masks field existed), regenerated
//	    through a frozen legacy struct, so files saved by old builds
//	    keep loading.
//	testdata/golden_masked.gob  — written by the current Save with a
//	    pruning mask on the first weighted layer.
//
// Regenerate with: go test ./internal/snn -run TestGolden -update-golden
// (only needed when the format changes ON PURPOSE; update the loaders
// of both files and this comment in the same commit.)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden checkpoint files")

// legacyNetState replicates the pre-mask serialized form field for
// field. gob matches by field name, so encoding this struct produces
// exactly what old builds wrote. Frozen: do not edit alongside
// netState.
type legacyNetState struct {
	VTh    float32
	Steps  int
	Decay  float32
	Beta   float32
	Shapes [][]int
	Params [][]float32
}

// goldenNet builds the fixed architecture both golden files target: a
// small DenseNet whose parameters are overwritten with a closed-form
// pattern, so the expected values are self-contained (no RNG between
// the files and the assertions).
func goldenNet() *Network {
	net := DenseNet(DefaultConfig(1.25, 6), 12, 8, 5, rng.New(1))
	for i, p := range net.Params() {
		for j := range p.Data {
			p.Data[j] = goldenValue(i, j)
		}
	}
	return net
}

// goldenValue is the closed-form parameter pattern.
func goldenValue(i, j int) float32 {
	return float32(i+1) + float32(j%17)/16
}

// goldenMask is the closed-form mask pattern for the first weighted
// layer (keep two of every three synapses).
func goldenMask(j int) float32 {
	if j%3 == 0 {
		return 0
	}
	return 1
}

func goldenPath(name string) string {
	return filepath.Join("testdata", name)
}

// TestGoldenRegenerate rewrites the golden files when -update-golden is
// set; otherwise it only checks they exist.
func TestGoldenRegenerate(t *testing.T) {
	if !*updateGolden {
		for _, name := range []string{"golden_premask.gob", "golden_masked.gob"} {
			if _, err := os.Stat(goldenPath(name)); err != nil {
				t.Fatalf("missing golden file (run with -update-golden): %v", err)
			}
		}
		return
	}
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}

	// Pre-mask file: encode through the frozen legacy struct.
	net := goldenNet()
	st := legacyNetState{VTh: net.Cfg.VTh, Steps: net.Cfg.Steps, Decay: net.Cfg.Decay, Beta: net.Cfg.Beta}
	for _, p := range net.Params() {
		st.Shapes = append(st.Shapes, append([]int(nil), p.Shape...))
		st.Params = append(st.Params, append([]float32(nil), p.Data...))
	}
	f, err := os.Create(goldenPath("golden_premask.gob"))
	if err != nil {
		t.Fatal(err)
	}
	if err := gob.NewEncoder(f).Encode(&st); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Masked file: the current Save with a mask on the first weighted
	// layer.
	w := net.Params()[0]
	mask := w.Clone()
	for j := range mask.Data {
		mask.Data[j] = goldenMask(j)
	}
	net.Layers[1].(*Dense).Mask = mask
	if err := net.SaveFile(goldenPath("golden_masked.gob")); err != nil {
		t.Fatal(err)
	}
}

// TestGoldenPreMaskLoads pins backward compatibility: a checkpoint
// written before the Masks field existed loads into the current code,
// restores every parameter and leaves masks untouched (absent Masks is
// "no pruning statement", not "clear pruning" — an AxSNN keeps its
// mask when fed a pre-mask accurate checkpoint).
func TestGoldenPreMaskLoads(t *testing.T) {
	net := DenseNet(DefaultConfig(0.5, 3), 12, 8, 5, rng.New(2))
	if err := net.LoadFile(goldenPath("golden_premask.gob")); err != nil {
		t.Fatalf("pre-mask golden failed to load: %v", err)
	}
	if net.Cfg.VTh != 1.25 || net.Cfg.Steps != 6 || net.Cfg.Decay != 0.9 || net.Cfg.Beta != 4 {
		t.Fatalf("config not restored: %+v", net.Cfg)
	}
	for i, p := range net.Params() {
		for j, v := range p.Data {
			if v != goldenValue(i, j) {
				t.Fatalf("param %d[%d] = %v, want %v", i, j, v, goldenValue(i, j))
			}
		}
	}
	for i, l := range net.Layers {
		if d, ok := l.(*Dense); ok && d.Mask != nil {
			t.Fatalf("layer %d grew a mask from a pre-mask file", i)
		}
	}

	// The absent-Masks rule: loading a pre-mask file into a pruned
	// network must keep the existing mask.
	pruned := DenseNet(DefaultConfig(0.5, 3), 12, 8, 5, rng.New(3))
	d := pruned.Layers[1].(*Dense)
	d.Mask = d.W.Clone()
	if err := pruned.LoadFile(goldenPath("golden_premask.gob")); err != nil {
		t.Fatal(err)
	}
	if pruned.Layers[1].(*Dense).Mask == nil {
		t.Fatal("pre-mask load cleared an existing mask")
	}
}

// TestGoldenMaskedLoads pins the current format: parameters, config
// and the per-layer mask vector all restore exactly, with nil entries
// for unpruned layers.
func TestGoldenMaskedLoads(t *testing.T) {
	net := DenseNet(DefaultConfig(0.5, 3), 12, 8, 5, rng.New(4))
	if err := net.LoadFile(goldenPath("golden_masked.gob")); err != nil {
		t.Fatalf("masked golden failed to load: %v", err)
	}
	if net.Cfg.VTh != 1.25 || net.Cfg.Steps != 6 {
		t.Fatalf("config not restored: %+v", net.Cfg)
	}
	for i, p := range net.Params() {
		for j, v := range p.Data {
			if v != goldenValue(i, j) {
				t.Fatalf("param %d[%d] = %v, want %v", i, j, v, goldenValue(i, j))
			}
		}
	}
	var denses []*Dense
	for _, l := range net.Layers {
		if d, ok := l.(*Dense); ok {
			denses = append(denses, d)
		}
	}
	if len(denses) != 3 {
		t.Fatalf("golden architecture drifted: %d dense layers", len(denses))
	}
	if denses[0].Mask == nil {
		t.Fatal("first weighted layer lost its mask")
	}
	for j, v := range denses[0].Mask.Data {
		if v != goldenMask(j) {
			t.Fatalf("mask[%d] = %v, want %v", j, v, goldenMask(j))
		}
	}
	if denses[1].Mask != nil || denses[2].Mask != nil {
		t.Fatal("unpruned layers grew masks")
	}

	// A masked load must also round-trip through Save bit-identically
	// at the value level.
	other := DenseNet(DefaultConfig(0.5, 3), 12, 8, 5, rng.New(5))
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := other.Load(&buf); err != nil {
		t.Fatal(err)
	}
	for i, p := range other.Params() {
		want := net.Params()[i]
		for j := range p.Data {
			if p.Data[j] != want.Data[j] {
				t.Fatalf("re-saved param %d[%d] drifted", i, j)
			}
		}
	}
}
