package snn

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// Numerical gradient checking. The network contains spike
// discontinuities, so exact finite-difference agreement is impossible in
// general; we therefore check the *linear* pieces exactly by building
// networks without LIF layers (conv/dense/pool are exactly linear and
// must gradient-check tightly), and check LIF-bearing networks
// directionally (cosine similarity between BPTT and finite differences of
// the smoothed loss must be clearly positive).

// lossOf runs a forward pass and returns the cross-entropy loss.
func lossOf(n *Network, frames []*tensor.Tensor, label int) float64 {
	logits := n.Forward(frames, false)
	l, _ := SoftmaxCrossEntropy(logits, label)
	return l
}

func TestLinearNetworkGradCheck(t *testing.T) {
	r := rng.New(1)
	cfg := DefaultConfig(1.0, 3)
	conv := NewConv2D(1, 2, 3, 1, 1, 6, 6, r)
	pool := NewAvgPool(2)
	flat := &Flatten{}
	dense := NewDense(2*3*3, 4, r)
	n := NewNetwork(cfg, conv, pool, flat, dense)

	frames := make([]*tensor.Tensor, cfg.Steps)
	for i := range frames {
		f := tensor.New(1, 6, 6)
		for j := range f.Data {
			f.Data[j] = r.NormFloat32() * 0.5
		}
		frames[i] = f
	}
	label := 2

	// Analytic gradients.
	logits := n.Forward(frames, true)
	_, gradLogits := SoftmaxCrossEntropy(logits, label)
	n.ZeroGrads()
	inGrads := n.Backward(gradLogits)

	// Check weight gradient of the dense layer numerically.
	const eps = 1e-3
	params := dense.W
	grads := dense.Grads()[0]
	for _, idx := range []int{0, 7, 33, 71} {
		orig := params.Data[idx]
		params.Data[idx] = orig + eps
		lp := lossOf(n, frames, label)
		params.Data[idx] = orig - eps
		lm := lossOf(n, frames, label)
		params.Data[idx] = orig
		num := (lp - lm) / (2 * eps)
		ana := float64(grads.Data[idx])
		if math.Abs(num-ana) > 1e-2*(math.Abs(num)+math.Abs(ana))+1e-4 {
			t.Fatalf("dense dW[%d]: numeric %v vs analytic %v", idx, num, ana)
		}
	}

	// Check conv weight gradient numerically.
	cw := conv.W
	cg := conv.Grads()[0]
	for _, idx := range []int{0, 5, 11} {
		orig := cw.Data[idx]
		cw.Data[idx] = orig + eps
		lp := lossOf(n, frames, label)
		cw.Data[idx] = orig - eps
		lm := lossOf(n, frames, label)
		cw.Data[idx] = orig
		num := (lp - lm) / (2 * eps)
		ana := float64(cg.Data[idx])
		if math.Abs(num-ana) > 1e-2*(math.Abs(num)+math.Abs(ana))+1e-4 {
			t.Fatalf("conv dW[%d]: numeric %v vs analytic %v", idx, num, ana)
		}
	}

	// Check input gradient numerically (frame 1, a few pixels).
	for _, idx := range []int{0, 13, 35} {
		orig := frames[1].Data[idx]
		frames[1].Data[idx] = orig + eps
		lp := lossOf(n, frames, label)
		frames[1].Data[idx] = orig - eps
		lm := lossOf(n, frames, label)
		frames[1].Data[idx] = orig
		num := (lp - lm) / (2 * eps)
		ana := float64(inGrads[1].Data[idx])
		if math.Abs(num-ana) > 1e-2*(math.Abs(num)+math.Abs(ana))+1e-4 {
			t.Fatalf("dX[%d]: numeric %v vs analytic %v", idx, num, ana)
		}
	}
}

// For a spiking network the surrogate gradient must still point uphill:
// perturbing the input along +grad must increase the (smoothed) loss more
// often than not. We test with the deterministic Direct encoding so the
// only nonlinearity is the spike itself.
func TestSpikingGradientAscendsLoss(t *testing.T) {
	r := rng.New(2)
	cfg := DefaultConfig(0.6, 6)
	n := DenseNet(cfg, 16, 24, 4, r)

	improved, tried := 0, 0
	for trial := 0; trial < 30; trial++ {
		img := tensor.New(16)
		for i := range img.Data {
			img.Data[i] = r.Float32()
		}
		frames := make([]*tensor.Tensor, cfg.Steps)
		for i := range frames {
			frames[i] = img.Clone()
		}
		label := trial % 4
		base := lossOf(n, frames, label)

		logits := n.Forward(frames, true)
		_, gradLogits := SoftmaxCrossEntropy(logits, label)
		n.ZeroGrads()
		inGrads := n.Backward(gradLogits)
		g := tensor.New(16)
		for _, ig := range inGrads {
			g.Add(ig)
		}
		if g.L2Norm() == 0 {
			continue
		}
		tried++
		// Step up the loss.
		step := img.Clone()
		gs := g.Clone()
		gs.Scale(float32(0.25 / g.L2Norm()))
		step.Add(gs)
		for i := range frames {
			frames[i] = step.Clone()
		}
		after := lossOf(n, frames, label)
		if after >= base {
			improved++
		}
	}
	if tried == 0 {
		t.Fatal("no trials had non-zero gradient")
	}
	if float64(improved) < 0.7*float64(tried) {
		t.Fatalf("gradient ascent increased loss in only %d/%d trials", improved, tried)
	}
}

// BPTT caches must be fully consumed by a complete backward pass, so a
// second sample can run immediately.
func TestCacheDisciplineAcrossSamples(t *testing.T) {
	r := rng.New(3)
	cfg := DefaultConfig(0.8, 4)
	n := MNISTNet(cfg, 1, 8, 8, true, r)
	frame := tensor.New(1, 8, 8)
	for i := range frame.Data {
		frame.Data[i] = r.Float32()
	}
	frames := []*tensor.Tensor{frame}
	for round := 0; round < 3; round++ {
		logits := n.Forward(frames, true)
		_, g := SoftmaxCrossEntropy(logits, 1)
		n.Backward(g)
	}
	// If caches leaked, the conv layers would have grown `cols` slices.
	for _, l := range n.Layers {
		if c, ok := l.(*Conv2D); ok && len(c.rows) != 0 {
			t.Fatalf("conv cache leaked: %d entries", len(c.rows))
		}
		if d, ok := l.(*Dense); ok && len(d.xs) != 0 {
			t.Fatalf("dense cache leaked: %d entries", len(d.xs))
		}
	}
}
