package snn

import (
	"fmt"

	"repro/internal/tensor"
)

// Config holds the structural parameters the paper sweeps: threshold
// voltage Vth and number of time steps T, plus the fixed dynamics
// constants.
type Config struct {
	VTh   float32 // LIF threshold voltage
	Steps int     // time steps T per sample
	Decay float32 // membrane leak λ
	Beta  float32 // surrogate sharpness
}

// DefaultConfig returns the dynamics constants used throughout the
// experiments (Vth and Steps are experiment parameters).
func DefaultConfig(vth float32, steps int) Config {
	return Config{VTh: vth, Steps: steps, Decay: 0.9, Beta: 4}
}

// Network is an ordered stack of layers processing one sample as
// Config.Steps time steps. The final layer acts as a non-spiking readout:
// its per-step outputs are accumulated into logits.
type Network struct {
	Cfg    Config
	Layers []Layer

	// Inference-arena bookkeeping (arena.go): parked scratch arenas and
	// the cached arena-capable layer view.
	scratchFree []*Scratch
	arenaLs     []arenaLayer
	arenaInit   bool

	// Training-arena bookkeeping (train_arena.go): parked train arenas,
	// the cached train-capable layer view, and the lowest parameter
	// layer index (layers at or below it skip input-gradient work).
	trainFree  []*TrainScratch
	trainLs    []trainLayer
	trainInit  bool
	paramFloor int

	// Inference precision tier (tier.go): FP32 exact or INT8 quantized.
	tier PrecisionTier
}

// NewNetwork assembles a network from layers.
func NewNetwork(cfg Config, layers ...Layer) *Network {
	return &Network{Cfg: cfg, Layers: layers}
}

// Reset clears all layer state (membranes, caches, dropout masks).
func (n *Network) Reset() {
	for _, l := range n.Layers {
		l.Reset()
	}
}

// ResetStats clears LIF calibration statistics network-wide.
func (n *Network) ResetStats() {
	for _, l := range n.Layers {
		if lif, ok := l.(*LIF); ok {
			lif.ResetStats()
		}
	}
}

// StepForward runs one time step through all layers.
func (n *Network) StepForward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range n.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// StepBackward runs one reverse time step, returning the gradient w.r.t.
// this step's input frame.
func (n *Network) StepBackward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
	return grad
}

// Forward processes a full sample (frames[t] is the input at step t; if
// fewer frames than Steps are supplied the last frame repeats, and a
// single frame means a static image presented every step). It returns the
// accumulated readout logits.
func (n *Network) Forward(frames []*tensor.Tensor, train bool) *tensor.Tensor {
	if len(frames) == 0 {
		panic("snn: Forward with no input frames")
	}
	n.Reset()
	var logits *tensor.Tensor
	for t := 0; t < n.Cfg.Steps; t++ {
		f := frames[min(t, len(frames)-1)]
		out := n.StepForward(f, train)
		if logits == nil {
			logits = tensor.New(out.Shape...)
		}
		logits.Add(out)
	}
	return logits
}

// Backward completes BPTT after a training Forward: gradLogits is
// dL/d(accumulated logits); since logits = Σ_t out_t, every reverse step
// receives the same top gradient. It returns per-step input gradients in
// forward order (index t), which attacks use to reach the pixels.
func (n *Network) Backward(gradLogits *tensor.Tensor) []*tensor.Tensor {
	grads := make([]*tensor.Tensor, n.Cfg.Steps)
	for t := n.Cfg.Steps - 1; t >= 0; t-- {
		grads[t] = n.StepBackward(gradLogits.Clone())
	}
	return grads
}

// Predict returns the argmax class for a sample. Built-in layer stacks
// run against a reusable inference arena (see arena.go), which makes the
// steady-state hot path allocation-free; networks with custom layers
// fall back to the allocating Forward. Results are identical either way.
func (n *Network) Predict(frames []*tensor.Tensor) int {
	if n.arenaCapable() {
		s := n.AcquireScratch()
		defer n.Release(s)
		return n.forwardScratch(frames, s, 0).Argmax()
	}
	return n.Forward(frames, false).Argmax()
}

// PredictScratch is Predict against a caller-held arena, for long
// evaluation loops that want to amortize even the acquire/release pair.
// The network must be arena-capable (all built-in layers are).
func (n *Network) PredictScratch(frames []*tensor.Tensor, s *Scratch) int {
	return n.forwardScratch(frames, s, 0).Argmax()
}

// ParamLayers returns the layers holding trainable parameters.
func (n *Network) ParamLayers() []ParamLayer {
	var out []ParamLayer
	for _, l := range n.Layers {
		if pl, ok := l.(ParamLayer); ok {
			out = append(out, pl)
		}
	}
	return out
}

// Params returns all parameter tensors in a stable order.
func (n *Network) Params() []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, pl := range n.ParamLayers() {
		out = append(out, pl.Params()...)
	}
	return out
}

// Grads returns all gradient tensors, aligned with Params.
func (n *Network) Grads() []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, pl := range n.ParamLayers() {
		out = append(out, pl.Grads()...)
	}
	return out
}

// ZeroGrads clears every gradient tensor.
func (n *Network) ZeroGrads() {
	for _, g := range n.Grads() {
		g.Zero()
	}
}

// LIFLayers returns the spiking layers in order.
func (n *Network) LIFLayers() []*LIF {
	var out []*LIF
	for _, l := range n.Layers {
		if lif, ok := l.(*LIF); ok {
			out = append(out, lif)
		}
	}
	return out
}

// SetVTh updates the threshold voltage on the config and on every LIF
// layer (used when re-deriving a network at a new structural point).
func (n *Network) SetVTh(vth float32) {
	n.Cfg.VTh = vth
	for _, l := range n.LIFLayers() {
		l.VTh = vth
	}
}

// CloneArchitecture builds a structurally identical network with *shared*
// parameter tensors but independent state/caches/masks/grad buffers. Use
// it to evaluate one trained model concurrently from several goroutines:
// workers may run Forward/Backward freely as long as nobody writes to the
// shared weights. The precision tier and any int8 panels carry over:
// panels are shared read-only, scratch is per-clone.
func (n *Network) CloneArchitecture() *Network {
	out := &Network{Cfg: n.Cfg, tier: n.tier}
	for _, l := range n.Layers {
		switch v := l.(type) {
		case *Conv2D:
			c := &Conv2D{Geom: v.Geom, OutC: v.OutC, W: v.W, B: v.B, Mask: v.Mask,
				panel: v.panel, useInt8: v.useInt8}
			c.dW = tensor.New(v.dW.Shape...)
			c.dB = tensor.New(v.dB.Shape...)
			out.Layers = append(out.Layers, c)
		case *Dense:
			d := &Dense{In: v.In, Out: v.Out, W: v.W, B: v.B, Mask: v.Mask,
				panel: v.panel, useInt8: v.useInt8}
			d.dW = tensor.New(v.dW.Shape...)
			d.dB = tensor.New(v.dB.Shape...)
			out.Layers = append(out.Layers, d)
		case *LIF:
			out.Layers = append(out.Layers, NewLIF(v.VTh, v.Decay, v.Beta))
		case *AvgPool:
			out.Layers = append(out.Layers, NewAvgPool(v.K))
		case *MaxPool:
			out.Layers = append(out.Layers, NewMaxPool(v.K))
		case *Dropout:
			// Evaluation clones never train; drop the RNG dependency.
			out.Layers = append(out.Layers, &Dropout{P: v.P})
		case *Flatten:
			out.Layers = append(out.Layers, &Flatten{})
		default:
			panic(fmt.Sprintf("snn: CloneArchitecture: unknown layer %T", l)) //axsnn:allow-alloc cold shape guard: formats the panic once on misuse
		}
	}
	return out
}

// DeepClone builds a fully independent copy, including weights. The
// approx package uses it so pruning/quantization never touches the
// original accurate model.
func (n *Network) DeepClone() *Network {
	out := n.CloneArchitecture()
	for i, l := range out.Layers {
		switch v := l.(type) {
		case *Conv2D:
			src := n.Layers[i].(*Conv2D)
			v.W = src.W.Clone()
			v.B = src.B.Clone()
			if src.Mask != nil {
				v.Mask = src.Mask.Clone()
			}
		case *Dense:
			src := n.Layers[i].(*Dense)
			v.W = src.W.Clone()
			v.B = src.B.Clone()
			if src.Mask != nil {
				v.Mask = src.Mask.Clone()
			}
		}
	}
	// Deep clones exist to be mutated (approx prunes and quantizes
	// them), which would leave shared int8 panels stale: drop them and
	// reset the tier; callers rebuild via BuildInt8Panels when needed.
	out.tier = TierFP32
	for _, l := range out.Layers {
		switch v := l.(type) {
		case *Conv2D:
			v.panel, v.useInt8 = nil, false
		case *Dense:
			v.panel, v.useInt8 = nil, false
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
