package snn

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/dataset"
	"repro/internal/encoding"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// TrainOptions configures supervised training on a static image dataset.
type TrainOptions struct {
	Epochs    int
	BatchSize int
	Optimizer Optimizer
	Encoder   encoding.Encoder
	Seed      uint64
	// ClipNorm, when positive, rescales the full gradient so its global
	// L2 norm does not exceed this value (stabilizes high-Vth training).
	ClipNorm float64
	// OnEpoch, when set, is invoked after every epoch.
	OnEpoch func(epoch int, meanLoss float64)
}

// clipGradients rescales grads in place to a global L2 norm of at most
// clip. No-op when clip <= 0.
func clipGradients(grads []*tensor.Tensor, clip float64) {
	if clip <= 0 {
		return
	}
	total := 0.0
	for _, g := range grads {
		n := g.L2Norm()
		total += n * n
	}
	norm := math.Sqrt(total)
	if norm <= clip {
		return
	}
	s := float32(clip / norm)
	for _, g := range grads {
		g.Scale(s)
	}
}

// disableTrainArena is a test hook: when set, Train/TrainFrames run the
// allocating minibatch path even on arena-capable networks, which the
// equivalence tests use as the bit-identity reference.
var disableTrainArena bool

// trainStep runs one minibatch (forward, loss, backward) and returns
// the summed loss. With a training arena the whole step draws from
// reusable buffers (zero steady-state allocations); otherwise batchable
// networks take the allocating batched path: one ForwardBatch/
// BackwardBatch per minibatch instead of per-sample loops. Gradients
// accumulate the same per-sample terms every way; only the float32
// summation order across samples differs between batched and
// per-sample (arena and allocating batched are bit-identical).
func trainStep(n *Network, samples [][]*tensor.Tensor, labels []int, ts *TrainScratch) float64 {
	if ts != nil {
		return n.TrainStepScratch(samples, labels, ts)
	}
	if n.Batchable() {
		logits := n.ForwardBatch(StackFrames(samples, n.Cfg.Steps), true)
		loss, grad := SoftmaxCrossEntropyBatch(logits, labels)
		n.BackwardBatch(grad)
		return loss
	}
	total := 0.0
	for i, fr := range samples {
		logits := n.Forward(fr, true)
		loss, grad := SoftmaxCrossEntropy(logits, labels[i])
		total += loss
		n.Backward(grad)
	}
	return total
}

// acquireTrainArena returns the training arena Train/TrainFrames use,
// or nil when the network cannot run on it (custom layers) or the test
// hook forces the allocating reference path.
func acquireTrainArena(n *Network) *TrainScratch {
	if disableTrainArena || !n.TrainArenaCapable() {
		return nil
	}
	return n.AcquireTrainScratch()
}

// minibatchUpdate applies the post-step bookkeeping shared by Train and
// TrainFrames: gradient clipping and one optimizer step, via the
// arena's cached tensor lists when one is in play.
func minibatchUpdate(n *Network, ts *TrainScratch, opt TrainOptions, batch int) {
	if ts != nil {
		clipGradients(ts.Grads(), opt.ClipNorm)
		opt.Optimizer.Step(ts.Params(), ts.Grads(), 1/float32(batch))
		return
	}
	clipGradients(n.Grads(), opt.ClipNorm)
	opt.Optimizer.Step(n.Params(), n.Grads(), 1/float32(batch))
}

// zeroGrads clears the gradients through the arena's cached list when
// available.
func zeroGrads(n *Network, ts *TrainScratch) {
	if ts != nil {
		ts.ZeroGrads()
		return
	}
	n.ZeroGrads()
}

// Train fits the network on a static image dataset with BPTT, one
// batched BPTT pass per minibatch. Built-in layer stacks run against a
// training arena acquired for the whole fit, so the per-minibatch
// steady state (stacking, forward, loss, backward, clipping, optimizer
// step) allocates no tensors; only the per-sample encoding still does.
func Train(n *Network, train *dataset.Set, opt TrainOptions) {
	if opt.BatchSize <= 0 {
		opt.BatchSize = 16
	}
	ts := acquireTrainArena(n)
	defer n.ReleaseTrain(ts)
	r := rng.New(opt.Seed)
	idx := make([]int, train.Len())
	for i := range idx {
		idx[i] = i
	}
	samples := make([][]*tensor.Tensor, 0, opt.BatchSize)
	labels := make([]int, 0, opt.BatchSize)
	for epoch := 0; epoch < opt.Epochs; epoch++ {
		r.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		totalLoss := 0.0
		for b := 0; b < len(idx); b += opt.BatchSize {
			end := b + opt.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			samples, labels = samples[:0], labels[:0]
			for _, i := range idx[b:end] {
				s := train.Samples[i]
				samples = append(samples, opt.Encoder.Encode(s.Image, n.Cfg.Steps, r))
				labels = append(labels, s.Label)
			}
			zeroGrads(n, ts)
			totalLoss += trainStep(n, samples, labels, ts)
			minibatchUpdate(n, ts, opt, end-b)
		}
		if opt.OnEpoch != nil {
			opt.OnEpoch(epoch, totalLoss/float64(len(idx)))
		}
	}
}

// TrainFrames fits the network on a pre-voxelized frame dataset (the DVS
// path): samples[i] is the frame sequence, labels[i] the class. Like
// Train, built-in layer stacks run the whole fit against one training
// arena, making the steady-state minibatch cycle allocation-free.
func TrainFrames(n *Network, samples [][]*tensor.Tensor, labels []int, opt TrainOptions) {
	if opt.BatchSize <= 0 {
		opt.BatchSize = 8
	}
	ts := acquireTrainArena(n)
	defer n.ReleaseTrain(ts)
	r := rng.New(opt.Seed)
	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	batch := make([][]*tensor.Tensor, 0, opt.BatchSize)
	blabels := make([]int, 0, opt.BatchSize)
	for epoch := 0; epoch < opt.Epochs; epoch++ {
		r.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		totalLoss := 0.0
		for b := 0; b < len(idx); b += opt.BatchSize {
			end := b + opt.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			batch, blabels = batch[:0], blabels[:0]
			for _, i := range idx[b:end] {
				batch = append(batch, samples[i])
				blabels = append(blabels, labels[i])
			}
			zeroGrads(n, ts)
			totalLoss += trainStep(n, batch, blabels, ts)
			minibatchUpdate(n, ts, opt, end-b)
		}
		if opt.OnEpoch != nil {
			opt.OnEpoch(epoch, totalLoss/float64(len(idx)))
		}
	}
}

// evalChunk is the number of samples evaluated per batched forward:
// large enough to amortize per-batch weight transposes, small enough to
// keep the stacked frames cache-resident.
const evalChunk = 32

// Accuracy evaluates classification accuracy on a static image dataset.
// Encoding randomness is reseeded per call so repeated evaluations of
// the same model agree. Samples are evaluated in batched chunks; the
// encoding stream and the per-sample predictions are identical to the
// per-sample path.
func Accuracy(n *Network, test *dataset.Set, enc encoding.Encoder, seed uint64) float64 {
	if test.Len() == 0 {
		return 0
	}
	r := rng.New(seed)
	correct := 0
	samples := make([][]*tensor.Tensor, 0, evalChunk)
	labels := make([]int, 0, evalChunk)
	flush := func() {
		for i, p := range n.PredictBatch(samples) {
			if p == labels[i] {
				correct++
			}
		}
		samples, labels = samples[:0], labels[:0]
	}
	for _, s := range test.Samples {
		samples = append(samples, enc.Encode(s.Image, n.Cfg.Steps, r))
		labels = append(labels, s.Label)
		if len(samples) == evalChunk {
			flush()
		}
	}
	if len(samples) > 0 {
		flush()
	}
	return float64(correct) / float64(test.Len())
}

// AccuracyFrames evaluates accuracy on pre-voxelized frame samples,
// batching chunks through the network.
func AccuracyFrames(n *Network, samples [][]*tensor.Tensor, labels []int) float64 {
	if len(samples) == 0 {
		return 0
	}
	correct := 0
	for b := 0; b < len(samples); b += evalChunk {
		end := b + evalChunk
		if end > len(samples) {
			end = len(samples)
		}
		for i, p := range n.PredictBatch(samples[b:end]) {
			if p == labels[b+i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(len(samples))
}

// AccuracyParallel evaluates accuracy like Accuracy but fans batched
// chunks out over workers goroutines (<= 0 takes the shared kernel
// pool's budget, i.e. GOMAXPROCS unless tensor.SetWorkers overrode it),
// each with a weight-sharing evaluation clone. The result is
// deterministic given seed and does not depend on the worker count: the
// encoding RNG is split per sample index up front and chunk boundaries
// are fixed. (It differs from Accuracy's stream for the same seed.)
func AccuracyParallel(n *Network, test *dataset.Set, enc encoding.Encoder, seed uint64, workers int) float64 {
	if test.Len() == 0 {
		return 0
	}
	if workers <= 0 {
		workers = tensor.Workers()
	}
	chunks := (test.Len() + evalChunk - 1) / evalChunk
	if workers > chunks {
		workers = chunks
	}
	// Pre-split one RNG per sample so parallel order cannot matter.
	base := rng.New(seed)
	rngs := make([]*rng.RNG, test.Len())
	for i := range rngs {
		rngs[i] = base.Split()
	}
	var correct int64
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			clone := n.CloneArchitecture()
			for ci := range work {
				lo := ci * evalChunk
				hi := lo + evalChunk
				if hi > test.Len() {
					hi = test.Len()
				}
				samples := make([][]*tensor.Tensor, 0, hi-lo)
				labels := make([]int, 0, hi-lo)
				for i := lo; i < hi; i++ {
					s := test.Samples[i]
					samples = append(samples, enc.Encode(s.Image, clone.Cfg.Steps, rngs[i]))
					labels = append(labels, s.Label)
				}
				for i, p := range clone.PredictBatch(samples) {
					if p == labels[i] {
						atomic.AddInt64(&correct, 1)
					}
				}
			}
		}()
	}
	for ci := 0; ci < chunks; ci++ {
		work <- ci
	}
	close(work)
	wg.Wait()
	return float64(correct) / float64(test.Len())
}

// InputGradient computes dL/dframe_t for a sample, the quantity attacks
// need. It runs on a weight-sharing evaluation clone so that (a) dropout
// stays disabled even though caching requires a training-mode forward,
// and (b) the caller's network keeps clean state and zero gradients.
func InputGradient(n *Network, frames []*tensor.Tensor, label int) []*tensor.Tensor {
	clone := n.CloneArchitecture()
	logits := clone.Forward(frames, true)
	_, grad := SoftmaxCrossEntropy(logits, label)
	return clone.Backward(grad)
}

// Calibrate runs the network in training=false mode over calibration
// samples to populate LIF spike/membrane statistics (used by the
// approximation-level equation). Statistics are reset first.
func Calibrate(n *Network, frames [][]*tensor.Tensor) {
	n.ResetStats()
	for _, f := range frames {
		n.Forward(f, false)
	}
}
