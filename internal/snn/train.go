package snn

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/dataset"
	"repro/internal/encoding"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// TrainOptions configures supervised training on a static image dataset.
type TrainOptions struct {
	Epochs    int
	BatchSize int
	Optimizer Optimizer
	Encoder   encoding.Encoder
	Seed      uint64
	// ClipNorm, when positive, rescales the full gradient so its global
	// L2 norm does not exceed this value (stabilizes high-Vth training).
	ClipNorm float64
	// OnEpoch, when set, is invoked after every epoch.
	OnEpoch func(epoch int, meanLoss float64)
}

// clipGradients rescales grads in place to a global L2 norm of at most
// clip. No-op when clip <= 0.
func clipGradients(grads []*tensor.Tensor, clip float64) {
	if clip <= 0 {
		return
	}
	total := 0.0
	for _, g := range grads {
		n := g.L2Norm()
		total += n * n
	}
	norm := sqrt64(total)
	if norm <= clip {
		return
	}
	s := float32(clip / norm)
	for _, g := range grads {
		g.Scale(s)
	}
}

func sqrt64(x float64) float64 {
	if x <= 0 {
		return 0
	}
	y := x
	for i := 0; i < 30; i++ {
		y = 0.5 * (y + x/y)
	}
	return y
}

// Train fits the network on a static image dataset with BPTT.
func Train(n *Network, train *dataset.Set, opt TrainOptions) {
	if opt.BatchSize <= 0 {
		opt.BatchSize = 16
	}
	r := rng.New(opt.Seed)
	idx := make([]int, train.Len())
	for i := range idx {
		idx[i] = i
	}
	for epoch := 0; epoch < opt.Epochs; epoch++ {
		r.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		totalLoss := 0.0
		for b := 0; b < len(idx); b += opt.BatchSize {
			end := b + opt.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			n.ZeroGrads()
			for _, i := range idx[b:end] {
				s := train.Samples[i]
				frames := opt.Encoder.Encode(s.Image, n.Cfg.Steps, r)
				logits := n.Forward(frames, true)
				loss, grad := SoftmaxCrossEntropy(logits, s.Label)
				totalLoss += loss
				n.Backward(grad)
			}
			clipGradients(n.Grads(), opt.ClipNorm)
			opt.Optimizer.Step(n.Params(), n.Grads(), 1/float32(end-b))
		}
		if opt.OnEpoch != nil {
			opt.OnEpoch(epoch, totalLoss/float64(len(idx)))
		}
	}
}

// TrainFrames fits the network on a pre-voxelized frame dataset (the DVS
// path): samples[i] is the frame sequence, labels[i] the class.
func TrainFrames(n *Network, samples [][]*tensor.Tensor, labels []int, opt TrainOptions) {
	if opt.BatchSize <= 0 {
		opt.BatchSize = 8
	}
	r := rng.New(opt.Seed)
	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	for epoch := 0; epoch < opt.Epochs; epoch++ {
		r.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		totalLoss := 0.0
		for b := 0; b < len(idx); b += opt.BatchSize {
			end := b + opt.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			n.ZeroGrads()
			for _, i := range idx[b:end] {
				logits := n.Forward(samples[i], true)
				loss, grad := SoftmaxCrossEntropy(logits, labels[i])
				totalLoss += loss
				n.Backward(grad)
			}
			clipGradients(n.Grads(), opt.ClipNorm)
			opt.Optimizer.Step(n.Params(), n.Grads(), 1/float32(end-b))
		}
		if opt.OnEpoch != nil {
			opt.OnEpoch(epoch, totalLoss/float64(len(idx)))
		}
	}
}

// Accuracy evaluates classification accuracy on a static image dataset.
// Encoding randomness is reseeded per call so repeated evaluations of the
// same model agree.
func Accuracy(n *Network, test *dataset.Set, enc encoding.Encoder, seed uint64) float64 {
	if test.Len() == 0 {
		return 0
	}
	r := rng.New(seed)
	correct := 0
	for _, s := range test.Samples {
		frames := enc.Encode(s.Image, n.Cfg.Steps, r)
		if n.Predict(frames) == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(test.Len())
}

// AccuracyFrames evaluates accuracy on pre-voxelized frame samples.
func AccuracyFrames(n *Network, samples [][]*tensor.Tensor, labels []int) float64 {
	if len(samples) == 0 {
		return 0
	}
	correct := 0
	for i, fr := range samples {
		if n.Predict(fr) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}

// AccuracyParallel evaluates accuracy like Accuracy but fans samples out
// over workers goroutines (0 = GOMAXPROCS), each with a weight-sharing
// evaluation clone. The result is deterministic given seed and does not
// depend on the worker count: the encoding RNG is split per sample
// index up front. (It differs from Accuracy's stream for the same seed.)
func AccuracyParallel(n *Network, test *dataset.Set, enc encoding.Encoder, seed uint64, workers int) float64 {
	if test.Len() == 0 {
		return 0
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > test.Len() {
		workers = test.Len()
	}
	// Pre-split one RNG per sample so parallel order cannot matter.
	base := rng.New(seed)
	rngs := make([]*rng.RNG, test.Len())
	for i := range rngs {
		rngs[i] = base.Split()
	}
	var correct int64
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			clone := n.CloneArchitecture()
			for i := range work {
				s := test.Samples[i]
				frames := enc.Encode(s.Image, clone.Cfg.Steps, rngs[i])
				if clone.Predict(frames) == s.Label {
					atomic.AddInt64(&correct, 1)
				}
			}
		}()
	}
	for i := 0; i < test.Len(); i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	return float64(correct) / float64(test.Len())
}

// InputGradient computes dL/dframe_t for a sample, the quantity attacks
// need. It runs on a weight-sharing evaluation clone so that (a) dropout
// stays disabled even though caching requires a training-mode forward,
// and (b) the caller's network keeps clean state and zero gradients.
func InputGradient(n *Network, frames []*tensor.Tensor, label int) []*tensor.Tensor {
	clone := n.CloneArchitecture()
	logits := clone.Forward(frames, true)
	_, grad := SoftmaxCrossEntropy(logits, label)
	return clone.Backward(grad)
}

// Calibrate runs the network in training=false mode over calibration
// samples to populate LIF spike/membrane statistics (used by the
// approximation-level equation). Statistics are reset first.
func Calibrate(n *Network, frames [][]*tensor.Tensor) {
	n.ResetStats()
	for _, f := range frames {
		n.Forward(f, false)
	}
}
