package snn

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// int8Net builds a small conv+dense stack with panels ready.
func int8Net(t testing.TB) *Network {
	t.Helper()
	net := DVSNet(DefaultConfig(1.0, 6), 16, 16, 11, true, rng.New(3), nil)
	if err := net.BuildInt8Panels(); err != nil {
		t.Fatal(err)
	}
	return net
}

func TestSetTierRequiresPanels(t *testing.T) {
	net := DVSNet(DefaultConfig(1.0, 6), 16, 16, 11, true, rng.New(3), nil)
	if err := net.SetTier(TierINT8); err == nil {
		t.Fatal("SetTier(int8) without panels must error")
	}
	if net.Tier() != TierFP32 {
		t.Fatal("failed SetTier must leave the tier unchanged")
	}
	if err := net.BuildInt8Panels(); err != nil {
		t.Fatal(err)
	}
	if err := net.SetTier(TierINT8); err != nil {
		t.Fatal(err)
	}
	if net.Tier() != TierINT8 {
		t.Fatal("tier did not switch")
	}
	if err := net.SetTier(TierFP32); err != nil {
		t.Fatal(err)
	}
	if net.Tier() != TierFP32 {
		t.Fatal("tier did not switch back")
	}
}

// The INT8 tier must be bit-identical across worker counts and across
// batch compositions: the same sample yields the same logits whether it
// runs alone, inside any batch, serial or parallel. This is the
// property the serve scheduler relies on when it coalesces same-tier
// windows from different sessions into one batch.
func TestInt8TierDeterministic(t *testing.T) {
	defer tensor.SetWorkers(0)
	net := int8Net(t)
	if err := net.SetTier(TierINT8); err != nil {
		t.Fatal(err)
	}
	r := rng.New(17)
	const batch = 5
	samples := make([][]*tensor.Tensor, batch)
	for b := range samples {
		samples[b] = spikeFrames(r, net.Cfg.Steps, []int{2, 16, 16})
	}

	// Reference: per-sample logits at one worker.
	tensor.SetWorkers(1)
	s := net.AcquireScratch()
	var want [][]float32
	for b := range samples {
		logits := net.forwardScratch(samples[b], s, 0)
		want = append(want, append([]float32(nil), logits.Data...))
	}
	net.Release(s)

	for _, workers := range []int{1, 2, 4} {
		tensor.SetWorkers(workers)
		// Full batch: every sample's row must equal its solo logits.
		s := net.AcquireScratch()
		out := make([]int, batch)
		net.predictBatchScratch(samples, s, out)
		logits := s.bufShape(netLayer, slotLogits, []int{batch, len(want[0])})
		for b := range samples {
			row := logits.Data[b*len(want[0]) : (b+1)*len(want[0])]
			for j, v := range row {
				if v != want[b][j] {
					t.Fatalf("workers=%d sample %d logit %d: batched %v vs solo %v",
						workers, b, j, v, want[b][j])
				}
			}
		}
		net.Release(s)
	}
}

// Clones share the panels and inherit the tier; their logits match the
// parent bit for bit.
func TestInt8TierClonePropagation(t *testing.T) {
	net := int8Net(t)
	if err := net.SetTier(TierINT8); err != nil {
		t.Fatal(err)
	}
	clone := net.CloneArchitecture()
	if clone.Tier() != TierINT8 {
		t.Fatal("CloneArchitecture must carry the tier")
	}
	r := rng.New(29)
	frames := spikeFrames(r, net.Cfg.Steps, []int{2, 16, 16})
	s1, s2 := net.AcquireScratch(), clone.AcquireScratch()
	a := net.forwardScratch(frames, s1, 0)
	b := clone.forwardScratch(frames, s2, 0)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("clone logit %d: %v vs %v", i, b.Data[i], a.Data[i])
		}
	}
	net.Release(s1)
	clone.Release(s2)

	// DeepClone is for mutation: it must NOT carry panels or tier.
	deep := net.DeepClone()
	if deep.Tier() != TierFP32 {
		t.Fatal("DeepClone must reset the tier to FP32")
	}
	if err := deep.SetTier(TierINT8); err == nil {
		t.Fatal("DeepClone must drop the panels")
	}
}

// The quantized tier stays close to FP32: same argmax on most inputs
// and bounded logit error — the kernel-level guarantee under the exp
// harness's end-to-end accuracy pin.
func TestInt8TierTracksFP32(t *testing.T) {
	net := int8Net(t)
	r := rng.New(41)
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		frames := spikeFrames(r, net.Cfg.Steps, []int{2, 16, 16})
		if err := net.SetTier(TierFP32); err != nil {
			t.Fatal(err)
		}
		s := net.AcquireScratch()
		ref := net.forwardScratch(frames, s, 0)
		refData := append([]float32(nil), ref.Data...)
		refClass := ref.Argmax()
		net.Release(s)

		if err := net.SetTier(TierINT8); err != nil {
			t.Fatal(err)
		}
		s = net.AcquireScratch()
		q := net.forwardScratch(frames, s, 0)
		var maxAbs, maxDiff float64
		for i := range refData {
			if a := math.Abs(float64(refData[i])); a > maxAbs {
				maxAbs = a
			}
			if d := math.Abs(float64(q.Data[i] - refData[i])); d > maxDiff {
				maxDiff = d
			}
		}
		if maxDiff > 0.15*maxAbs+0.5 {
			t.Fatalf("trial %d: INT8 logits drift %v from FP32 (max |logit| %v)", trial, maxDiff, maxAbs)
		}
		// Argmax must agree whenever FP32's decision margin exceeds the
		// drift — on this untrained net near-tied logits may flip, which
		// says nothing about the kernel; the trained-fixture accuracy pin
		// lives in the exp harness.
		top, second := -float32(math.MaxFloat32), -float32(math.MaxFloat32)
		for _, v := range refData {
			if v > top {
				top, second = v, top
			} else if v > second {
				second = v
			}
		}
		if float64(top-second) > 2*maxDiff && q.Argmax() != refClass {
			t.Fatalf("trial %d: INT8 argmax %d vs FP32 %d despite margin %v > drift %v",
				trial, q.Argmax(), refClass, top-second, maxDiff)
		}
		net.Release(s)
	}
}

// The INT8 arena path must allocate nothing in the steady state, like
// the FP32 path it shadows.
func TestInt8TierZeroAllocSteadyState(t *testing.T) {
	defer tensor.SetWorkers(0)
	tensor.SetWorkers(1)
	net := int8Net(t)
	if err := net.SetTier(TierINT8); err != nil {
		t.Fatal(err)
	}
	r := rng.New(53)
	frames := spikeFrames(r, net.Cfg.Steps, []int{2, 16, 16})
	s := net.AcquireScratch()
	defer net.Release(s)
	net.PredictScratch(frames, s) // warm shapes and scratch
	allocs := testing.AllocsPerRun(20, func() {
		net.PredictScratch(frames, s)
	})
	if allocs != 0 {
		t.Fatalf("steady-state INT8 PredictScratch allocates %v/op, want 0", allocs)
	}
}

// Panels must reflect the prune mask: a masked-out weight contributes
// nothing on the INT8 path.
func TestInt8PanelsCarryMask(t *testing.T) {
	net := DenseNet(DefaultConfig(0.5, 4), 32, 16, 5, rng.New(7))
	// Mask out every connection of the first dense layer's output 0.
	var d0 *Dense
	for _, l := range net.Layers {
		if dl, ok := l.(*Dense); ok {
			d0 = dl
			break
		}
	}
	mask := tensor.New(d0.W.Shape...)
	for i := range mask.Data {
		mask.Data[i] = 1
	}
	for i := 0; i < d0.In; i++ {
		mask.Data[i] = 0 // row 0
	}
	d0.Mask = mask
	if err := net.BuildInt8Panels(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d0.In; i++ {
		if d0.panel.Codes[i] != 0 {
			t.Fatal("masked weights must quantize to zero codes")
		}
	}
}
