package snn

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"repro/internal/tensor"
)

// netState is the serialized form of a network: the architecture is NOT
// stored (callers rebuild it from code, which keeps the format small and
// forward-compatible); only config, parameter payloads and — for AxSNNs
// — the pruning masks are.
type netState struct {
	VTh    float32
	Steps  int
	Decay  float32
	Beta   float32
	Shapes [][]int
	Params [][]float32
	// Masks aligns with the weighted layers in order; a nil entry means
	// the layer is unpruned. Absent in pre-mask files (gob zero value).
	Masks [][]float32
}

// maskedLayers returns pointers to the mask slots of the weighted layers
// in network order.
func (n *Network) maskedLayers() []**tensor.Tensor {
	var out []**tensor.Tensor
	for _, l := range n.Layers {
		switch v := l.(type) {
		case *Conv2D:
			out = append(out, &v.Mask)
		case *Dense:
			out = append(out, &v.Mask)
		}
	}
	return out
}

// Save writes the network's configuration, parameters and pruning masks
// to w.
func (n *Network) Save(w io.Writer) error {
	st := netState{VTh: n.Cfg.VTh, Steps: n.Cfg.Steps, Decay: n.Cfg.Decay, Beta: n.Cfg.Beta}
	for _, p := range n.Params() {
		st.Shapes = append(st.Shapes, append([]int(nil), p.Shape...))
		st.Params = append(st.Params, append([]float32(nil), p.Data...))
	}
	for _, mp := range n.maskedLayers() {
		if *mp == nil {
			st.Masks = append(st.Masks, nil)
		} else {
			st.Masks = append(st.Masks, append([]float32(nil), (*mp).Data...))
		}
	}
	return gob.NewEncoder(w).Encode(&st)
}

// Load restores parameters saved by Save into a structurally identical
// network. It validates shapes and updates the config.
func (n *Network) Load(r io.Reader) error {
	var st netState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("snn: decoding state: %w", err)
	}
	params := n.Params()
	if len(params) != len(st.Params) {
		return fmt.Errorf("snn: state has %d tensors, network has %d", len(st.Params), len(params))
	}
	for i, p := range params {
		if len(st.Params[i]) != p.Len() {
			return fmt.Errorf("snn: tensor %d has %d values, want %d", i, len(st.Params[i]), p.Len())
		}
		copy(p.Data, st.Params[i])
	}
	if st.Masks != nil {
		slots := n.maskedLayers()
		if len(slots) != len(st.Masks) {
			return fmt.Errorf("snn: state has %d masks, network has %d weighted layers", len(st.Masks), len(slots))
		}
		for i, m := range st.Masks {
			if m == nil {
				*slots[i] = nil
				continue
			}
			// Masks share the weight tensor's shape: weighted layer i
			// owns params[2i] (weights come before biases).
			w := params[2*i]
			if len(m) != w.Len() {
				return fmt.Errorf("snn: mask %d has %d values, want %d", i, len(m), w.Len())
			}
			mt := tensor.New(w.Shape...)
			copy(mt.Data, m)
			*slots[i] = mt
		}
	}
	n.Cfg = Config{VTh: st.VTh, Steps: st.Steps, Decay: st.Decay, Beta: st.Beta}
	n.SetVTh(st.VTh)
	return nil
}

// SaveFile writes the network state to path.
func (n *Network) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return n.Save(f)
}

// LoadFile restores network state from path.
func (n *Network) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return n.Load(f)
}
