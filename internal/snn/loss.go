package snn

import (
	"math"

	"repro/internal/tensor"
)

// SoftmaxCrossEntropy returns the cross-entropy loss of logits against
// label and the gradient dL/dlogits.
func SoftmaxCrossEntropy(logits *tensor.Tensor, label int) (float64, *tensor.Tensor) {
	p := tensor.Softmax(logits)
	eps := 1e-12
	loss := -math.Log(math.Max(float64(p.Data[label]), eps))
	grad := p.Clone()
	grad.Data[label] -= 1
	return loss, grad
}

// NegTargetLoss returns a loss whose *descent* direction reduces the
// target class probability — attacks maximize the true-class loss, which
// is the same gradient with opposite sign. Provided for readability in
// attack code: gradient ascent on SoftmaxCrossEntropy(label).
func NegTargetLoss(logits *tensor.Tensor, label int) (float64, *tensor.Tensor) {
	loss, grad := SoftmaxCrossEntropy(logits, label)
	return -loss, grad.Scale(-1)
}
